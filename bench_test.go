// Benchmarks regenerating the paper's tables and figures (one benchmark per
// artifact), micro-benchmarks of every storage format's kernels, and
// ablation benchmarks for the design choices called out in DESIGN.md.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Figure/table benches report model-engine evaluation throughput; kernel
// benches report real GFLOPS on this host via the GFLOPS metric.
package spmv_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/precision"
	"repro/internal/sched"
	"repro/internal/selector"
)

// experimentOptions keeps figure benches fast while covering the grid.
func experimentOptions() bench.Options {
	return bench.Options{Dataset: dataset.Medium, SampleN: 300, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	o := experimentOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports := e.Run(o)
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}

func BenchmarkTable4_Validation(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig1_Validation(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFig2_CrossDevice(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFig3_MemFootprint(b *testing.B) { runExperiment(b, "fig3") }
func BenchmarkFig4_RowSize(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkFig5_Imbalance(b *testing.B)    { runExperiment(b, "fig5") }
func BenchmarkFig6_Irregularity(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7_Formats(b *testing.B)      { runExperiment(b, "fig7") }
func BenchmarkFig8_DatasetSize(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFig9_Regularity(b *testing.B)   { runExperiment(b, "fig9") }

// kernelMatrix is the shared native-bench workload: mid-size, mildly skewed
// and clustered, ~2M nonzeros.
func kernelMatrix(b *testing.B) *matrix.CSR {
	b.Helper()
	m, err := gen.Generate(gen.Params{
		Rows: 100000, Cols: 100000,
		AvgNNZPerRow: 20, StdNNZPerRow: 6,
		SkewCoeff: 10, BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 1.0,
		Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchKernel(b *testing.B, m *matrix.CSR, workers int) {
	for _, fb := range formats.Registry() {
		b.Run(fb.Name, func(b *testing.B) {
			f, err := fb.Build(m)
			if err != nil {
				b.Skipf("build refused: %v", err)
			}
			x := matrix.RandomVector(m.Cols, 7)
			y := make([]float64, m.Rows)
			b.SetBytes(f.Bytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if workers <= 1 {
					f.SpMV(x, y)
				} else {
					f.SpMVParallel(x, y, workers)
				}
			}
			b.StopTimer()
			gflops := 2 * float64(m.NNZ()) * float64(b.N) / b.Elapsed().Seconds() / 1e9
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

func BenchmarkKernelSerial(b *testing.B) {
	benchKernel(b, kernelMatrix(b), 1)
}

func BenchmarkKernelParallel(b *testing.B) {
	benchKernel(b, kernelMatrix(b), runtime.GOMAXPROCS(0))
}

func BenchmarkGenerator(b *testing.B) {
	p := gen.Params{
		Rows: 100000, Cols: 100000,
		AvgNNZPerRow: 20, StdNNZPerRow: 6,
		SkewCoeff: 100, BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 1.0,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		m, err := gen.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		_ = m
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	m := kernelMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Extract(m)
	}
}

// Ablation A1: work-distribution policies under skew. The skewed matrix
// puts its heavy rows at the head, the generator's worst case for
// row-granular blocks.
func BenchmarkAblationPartitioning(b *testing.B) {
	m, err := gen.Generate(gen.Params{
		Rows: 200000, Cols: 200000,
		AvgNNZPerRow: 10, StdNNZPerRow: 3,
		SkewCoeff: 2000, BWScaled: 0.3, CrossRowSim: 0.3, AvgNumNeigh: 0.5, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	builders := map[string]formats.Builder{}
	for _, name := range []string{"Naive-CSR", "Bal-CSR", "Merge-CSR"} {
		fb, _ := formats.Lookup(name)
		builders[name] = fb
	}
	for _, name := range []string{"Naive-CSR", "Bal-CSR", "Merge-CSR"} {
		b.Run(name, func(b *testing.B) {
			f, err := builders[name].Build(m)
			if err != nil {
				b.Fatal(err)
			}
			x := matrix.RandomVector(m.Cols, 7)
			y := make([]float64, m.Rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.SpMVParallel(x, y, workers)
			}
			b.StopTimer()
			gflops := 2 * float64(m.NNZ()) * float64(b.N) / b.Elapsed().Seconds() / 1e9
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// Ablation A2: SELL-C-sigma sorting scope. Larger sigma removes more
// padding on skewed matrices at equal kernel shape.
func BenchmarkAblationSELLSigma(b *testing.B) {
	m, err := gen.Generate(gen.Params{
		Rows: 100000, Cols: 100000,
		AvgNNZPerRow: 12, StdNNZPerRow: 8,
		SkewCoeff: 200, BWScaled: 0.3, CrossRowSim: 0.3, AvgNumNeigh: 0.5, Seed: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, sigma := range []int{1, 32, 256, 4096} {
		b.Run(fmt.Sprintf("sigma=%d", sigma), func(b *testing.B) {
			f, err := formats.NewSELLCS(m, formats.DefaultChunk, sigma)
			if err != nil {
				b.Skipf("build: %v", err)
			}
			x := matrix.RandomVector(m.Cols, 7)
			y := make([]float64, m.Rows)
			b.ReportMetric(f.Traits().PaddingRatio, "pad-ratio")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.SpMV(x, y)
			}
		})
	}
}

// Ablation A3: HYB split threshold around the mean row length.
func BenchmarkAblationHYBThreshold(b *testing.B) {
	m, err := gen.Generate(gen.Params{
		Rows: 100000, Cols: 100000,
		AvgNNZPerRow: 16, StdNNZPerRow: 10,
		SkewCoeff: 100, BWScaled: 0.3, CrossRowSim: 0.3, AvgNumNeigh: 0.5, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	avg := int(m.AvgRowNNZ())
	for _, k := range []int{avg / 2, avg, 2 * avg} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			f, err := formats.NewHYBThreshold(m, k)
			if err != nil {
				b.Fatal(err)
			}
			x := matrix.RandomVector(m.Cols, 7)
			y := make([]float64, m.Rows)
			b.ReportMetric(float64(f.SpillNNZ())/float64(m.NNZ()), "spill-frac")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.SpMV(x, y)
			}
		})
	}
}

// Ablation A5: analytic x-hit model vs trace-driven LRU simulation.
func BenchmarkAblationCacheModel(b *testing.B) {
	m, err := gen.Generate(gen.Params{
		Rows: 20000, Cols: 20000,
		AvgNNZPerRow: 15, StdNNZPerRow: 5,
		BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	fv := core.Extract(m)
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cache.XVectorHitRate(fv, 1<<20)
		}
	})
	b.Run("lru-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cache.SimulateXHitRate(m, 1<<20, 8)
		}
	})
}

// Ablation A6: generator worker scaling (chunk-parallel determinism means
// the output is identical at any worker count; only wall time changes).
func BenchmarkAblationGeneratorWorkers(b *testing.B) {
	p := gen.Params{
		Rows: 200000, Cols: 200000,
		AvgNNZPerRow: 20, StdNNZPerRow: 6,
		BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 13,
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gen.GenerateParallel(p, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Merge-path search cost, the per-worker setup of Merge-CSR.
func BenchmarkMergePathSearch(b *testing.B) {
	m := kernelMatrix(b)
	total := int64(m.Rows) + int64(m.NNZ())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sched.MergePathSearch(total/2, m.RowPtr, m.Rows)
	}
}

// Extension: the precision study the paper defers to future work. The
// single-precision kernel should approach the 1.5x traffic bound over
// double precision on this bandwidth-bound workload.
func BenchmarkExtensionPrecision(b *testing.B) {
	m := kernelMatrix(b)
	m32 := precision.FromCSR(m)
	x64 := matrix.RandomVector(m.Cols, 7)
	x32 := make([]float32, m.Cols)
	for i, v := range x64 {
		x32[i] = float32(v)
	}
	b.Run("fp64", func(b *testing.B) {
		y := make([]float64, m.Rows)
		b.SetBytes(m.FootprintBytes())
		for i := 0; i < b.N; i++ {
			m.SpMV(x64, y)
		}
	})
	b.Run("fp32", func(b *testing.B) {
		y := make([]float32, m.Rows)
		b.SetBytes(m32.Bytes())
		for i := 0; i < b.N; i++ {
			m32.SpMV32(x32, y)
		}
	})
	b.Run("mixed", func(b *testing.B) {
		y := make([]float64, m.Rows)
		b.SetBytes(m32.Bytes())
		for i := 0; i < b.N; i++ {
			m32.SpMVMixed(x32, y)
		}
	})
	b.Run("fp32-parallel", func(b *testing.B) {
		y := make([]float32, m.Rows)
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			m32.SpMV32Parallel(x32, y, workers)
		}
	})
}

// Extension: format-selector quality and cost against exhaustive search.
func BenchmarkExtensionSelector(b *testing.B) {
	spec, ok := device.ByName("AMD-EPYC-24")
	if !ok {
		b.Fatal("missing testbed")
	}
	train := dataset.Medium.Sample(1000, 7)
	test := dataset.Medium.Sample(300, 11)
	knn := selector.Train(spec, train, 5)
	b.Run("rules", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := selector.Evaluate(spec, test, func(fv core.FeatureVector) string {
				return selector.Rules(spec, fv)
			})
			b.ReportMetric(ev.Retained*100, "%retained")
		}
	})
	b.Run("knn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := selector.Evaluate(spec, test, func(fv core.FeatureVector) string {
				name, _ := knn.Predict(fv)
				return name
			})
			b.ReportMetric(ev.Retained*100, "%retained")
		}
	})
}
