// Command spmv-bench runs the paper's experiments and prints their tables.
//
// Usage:
//
//	spmv-bench [flags] <experiment>...
//	spmv-bench all                     # every table and figure
//	spmv-bench fig3 fig7               # selected experiments
//	spmv-bench -list                   # list experiment ids
//
// Flags:
//
//	-dataset small|medium|large   artificial dataset size (default medium)
//	-sample N                     subsample the grid to ~N points (0 = full)
//	-devices a,b,c                restrict to these testbeds
//	-seed N                       sampling/generator seed
//	-shards N                     execution-pool shards (0 = SPMV_SHARDS or
//	                              detected topology domains)
//	-rhs K                        right-hand sides for the spmm and select
//	                              experiments; giving the flag with no
//	                              experiment ids runs spmm alone
//	-format NAME                  restrict the native experiment to one
//	                              format; "auto" runs the selection
//	                              subsystem per matrix
//	-cache-dir DIR                persist auto-selection decisions and probe
//	                              outcomes to a journal in DIR (warm cache;
//	                              empty = SPMV_CACHE_DIR, or off when that
//	                              is unset too)
//	-cold                         delete the journal before running, so the
//	                              selection subsystem starts from scratch
//	-csv DIR                      also write one CSV per report into DIR
//	-json FILE                    also write all reports as JSON into FILE
//
// With persistence configured, a "journal" report rides along on stdout
// and in -json: journal path, decisions and experiences held, appends and
// skipped lines — the state a restarted server would warm-load.
//
// The JSON output is the machine-readable perf trajectory: for example,
// `spmv-bench -sample 8 -json BENCH_spmv.json native` records the native
// per-format GFLOPS quartiles measured on this host,
// `spmv-bench -rhs 8 -json BENCH_spmm.json` records the fused multi-vector
// kernels' per-vector speedup over 8 sequential Multiply calls, and
// `spmv-bench -json BENCH_select.json select` records the auto-selection
// subsystem's retained performance vs exhaustive search, and
// `spmv-bench -json BENCH_update.json update` records the updatable
// overlay's retained throughput vs the bare base plus one compaction's
// freeze/rebuild timing split. Every run
// appends a "shards" report with the execution engine's per-shard dispatch
// counts and busy time, so concurrency behavior is visible alongside
// kernel numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/formats"
	"repro/internal/topo"
)

func main() {
	var (
		dsName   = flag.String("dataset", "medium", "dataset size: small, medium or large")
		sample   = flag.String("sample", "0", "subsample the grid to ~N points (0 = full grid)")
		devices  = flag.String("devices", "", "comma-separated testbed names (default: all)")
		seed     = flag.Int64("seed", 1, "sampling and generator seed")
		shards   = flag.Int("shards", 0, "execution-pool shards (0 = SPMV_SHARDS or detected topology domains)")
		rhs      = flag.Int("rhs", 0, "right-hand sides for the spmm/select experiments (0 = default 8)")
		format   = flag.String("format", "", "restrict the native experiment to one format (\"auto\" = selection subsystem)")
		cacheDir = flag.String("cache-dir", "", "journal directory for persistent auto-selection decisions (empty = SPMV_CACHE_DIR or off)")
		cold     = flag.Bool("cold", false, "delete the journal before running (cold selection cache)")
		csvDir   = flag.String("csv", "", "directory to also write CSV reports into")
		jsonOut  = flag.String("json", "", "file to also write all reports into as JSON")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.DefaultOptions()
	opts.Seed = *seed
	switch *dsName {
	case "small":
		opts.Dataset = dataset.Small
	case "medium":
		opts.Dataset = dataset.Medium
	case "large":
		opts.Dataset = dataset.Large
	default:
		fatalf("unknown dataset %q (small, medium, large)", *dsName)
	}
	if _, err := fmt.Sscanf(*sample, "%d", &opts.SampleN); err != nil {
		fatalf("bad -sample %q", *sample)
	}
	if *devices != "" {
		opts.Devices = strings.Split(*devices, ",")
	}
	if *shards < 0 {
		fatalf("bad -shards %d (want >= 0)", *shards)
	}
	topo.SetShards(*shards)
	if *rhs < 0 {
		fatalf("bad -rhs %d (want >= 0)", *rhs)
	}
	opts.RHS = *rhs
	if *format != "" && *format != "auto" {
		if _, ok := formats.Lookup(*format); !ok {
			fatalf("unknown format %q (use a registry name or \"auto\")", *format)
		}
	}
	opts.Format = *format

	if err := cache.ConfigureFlags(*cacheDir, *cold); err != nil {
		fatalf("%v", err)
	}

	ids := flag.Args()
	if len(ids) == 0 && *format != "" {
		ids = []string{"native"} // -format means: run the native sweep with it
	}
	if len(ids) == 0 && *rhs > 0 {
		ids = []string{"spmm"} // -rhs alone means: run the multi-vector benchmark
	}
	if len(ids) == 0 {
		fatalf("no experiments given; use 'all' or see -list")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = bench.IDs()
	}

	var collected []*bench.Report
	for _, id := range ids {
		e, ok := bench.ByID(id)
		if !ok {
			fatalf("unknown experiment %q; see -list", id)
		}
		for i, r := range e.Run(opts) {
			if err := r.Render(os.Stdout); err != nil {
				fatalf("render %s: %v", id, err)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, id, i, r); err != nil {
					fatalf("csv %s: %v", id, err)
				}
			}
			collected = append(collected, r)
		}
	}
	// Per-shard dispatch statistics ride along with every run, on stdout
	// and in the JSON trajectory.
	sr := bench.ShardReport()
	if err := sr.Render(os.Stdout); err != nil {
		fatalf("render shards: %v", err)
	}
	collected = append(collected, sr)
	// As does the SIMD kernel dispatch table — kernel numbers are never
	// read without knowing which kernels produced them.
	dr := bench.DispatchReport()
	if err := dr.Render(os.Stdout); err != nil {
		fatalf("render dispatch: %v", err)
	}
	collected = append(collected, dr)
	// So does the selection journal, when persistence is on: the state a
	// restarted server would warm-load.
	if cache.Configured() {
		if jr := journalReport(); jr != nil {
			if err := jr.Render(os.Stdout); err != nil {
				fatalf("render journal: %v", err)
			}
			collected = append(collected, jr)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, collected); err != nil {
			fatalf("json: %v", err)
		}
	}
}

// journalReport summarizes the on-disk selection journal (nil when it
// cannot be opened).
func journalReport() *bench.Report {
	dir, err := cache.Dir()
	if err != nil {
		return nil
	}
	st, err := cache.Open(dir)
	if err != nil {
		return nil
	}
	defer st.Close()
	ss := st.Stats()
	r := &bench.Report{
		ID:     "journal",
		Title:  "Persistent selection journal",
		Header: []string{"path", "decisions", "experiences", "skipped_lines", "invalidated"},
	}
	r.AddRow(ss.Path, fmt.Sprintf("%d", ss.Decisions), fmt.Sprintf("%d", ss.Experiences),
		fmt.Sprintf("%d", ss.Skipped), fmt.Sprintf("%v", ss.Invalidated))
	r.AddNote("a warm restart loads this state before the first selection; delete with -cold")
	return r
}

// writeJSON dumps the reports as an indented JSON array so external tools
// (and future PRs) can track the perf trajectory without table scraping.
func writeJSON(path string, reports []*bench.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

func writeCSV(dir, id string, i int, r *bench.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%d.csv", id, i)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spmv-bench: "+format+"\n", args...)
	os.Exit(1)
}
