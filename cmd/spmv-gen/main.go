// Command spmv-gen generates an artificial sparse matrix from the paper's
// feature parameters and writes it as MatrixMarket to stdout or a file.
//
// Usage:
//
//	spmv-gen -rows 100000 -avg 20 -skew 100 -sim 0.5 -neigh 1.0 -bw 0.3 > m.mtx
//	spmv-gen -footprint 64 -avg 20 -o m.mtx     # size from a target MiB
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
)

func main() {
	var (
		rows      = flag.Int("rows", 0, "number of rows (0: derive from -footprint)")
		cols      = flag.Int("cols", 0, "number of columns (0: square)")
		footprint = flag.Float64("footprint", 0, "target CSR footprint in MiB (used when -rows is 0)")
		avg       = flag.Float64("avg", 20, "average nonzeros per row (f2)")
		std       = flag.Float64("std", -1, "row-size standard deviation (-1: 30% of avg)")
		skew      = flag.Float64("skew", 0, "skew coefficient (f3)")
		sim       = flag.Float64("sim", 0.5, "cross-row similarity (f4.a)")
		neigh     = flag.Float64("neigh", 1.0, "average number of neighbors (f4.b)")
		bw        = flag.Float64("bw", 0.3, "scaled row bandwidth in (0,1]")
		seed      = flag.Int64("seed", 42, "generator seed")
		out       = flag.String("o", "", "output file (default stdout)")
		quiet     = flag.Bool("q", false, "suppress the feature summary on stderr")
	)
	flag.Parse()

	r := *rows
	c := *cols
	if r == 0 {
		if *footprint <= 0 {
			fatalf("need -rows or -footprint")
		}
		r = gen.RowsForFootprint(*footprint, *avg)
	}
	if c == 0 {
		c = r
	}
	s := *std
	if s < 0 {
		s = *avg * 0.3
	}
	p := gen.Params{
		Rows: r, Cols: c,
		AvgNNZPerRow: *avg, StdNNZPerRow: s,
		SkewCoeff: *skew, BWScaled: *bw,
		CrossRowSim: *sim, AvgNumNeigh: *neigh,
		Seed: *seed,
	}
	m, err := gen.Generate(p)
	if err != nil {
		fatalf("generate: %v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create: %v", err)
		}
		defer f.Close()
		w = f
	}
	bw2 := bufio.NewWriterSize(w, 1<<20)
	if err := matrix.WriteMatrixMarket(bw2, m); err != nil {
		fatalf("write: %v", err)
	}
	if err := bw2.Flush(); err != nil {
		fatalf("flush: %v", err)
	}
	if !*quiet {
		fv := core.Extract(m)
		fmt.Fprintf(os.Stderr, "generated %s\nmeasured features: %s\n", m, fv)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spmv-gen: "+format+"\n", args...)
	os.Exit(1)
}
