// Command spmv-info reads a MatrixMarket file and reports the paper's
// feature vector plus per-format structural costs and per-device model
// predictions for the matrix.
//
// Usage:
//
//	spmv-info matrix.mtx
//	spmv-info -predict matrix.mtx     # add device-model predictions
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/formats"
	"repro/internal/matrix"
)

func main() {
	predict := flag.Bool("predict", false, "print device-model predictions")
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("usage: spmv-info [-predict] matrix.mtx")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	m, err := matrix.ReadMatrixMarket(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		fatalf("parse: %v", err)
	}

	fv := core.Extract(m)
	fmt.Printf("matrix: %s\n", m)
	fmt.Printf("f1 mem_footprint   %10.2f MiB\n", fv.MemFootprintMB)
	fmt.Printf("f2 avg_nz_row      %10.2f\n", fv.AvgNNZPerRow)
	fmt.Printf("f3 skew_coeff      %10.2f\n", fv.SkewCoeff)
	fmt.Printf("f4.a cross_row_sim %10.3f\n", fv.CrossRowSim)
	fmt.Printf("f4.b avg_num_neigh %10.3f\n", fv.AvgNumNeigh)
	fmt.Printf("bw_scaled          %10.4f\n", fv.BWScaled)
	fmt.Printf("regularity label   %10s\n", fv.RegularityLabel())
	fmt.Printf("CSR op intensity   %10.4f flop/byte\n\n", fv.OperationalIntensity())

	fmt.Println("format structural costs (built):")
	for _, b := range formats.Registry() {
		ff, err := b.Build(m)
		if err != nil {
			fmt.Printf("  %-10s build refused: %v\n", b.Name, err)
			continue
		}
		tr := ff.Traits()
		fmt.Printf("  %-10s %8.2f MiB  pad %6.3f  meta %5.2f B/nnz  %s\n",
			b.Name, float64(ff.Bytes())/(1<<20), tr.PaddingRatio, tr.MetaBytesPerNNZ, tr.Balancing)
	}

	if *predict {
		fmt.Println("\ndevice-model predictions (best format):")
		for _, spec := range device.Testbeds() {
			name, res, ok := spec.BestFormat(fv)
			if !ok {
				fmt.Printf("  %-12s infeasible\n", spec.Name)
				continue
			}
			fmt.Printf("  %-12s %8.2f GFLOPS  %6.1f W  %.3f GFLOPS/W  best=%s  bottleneck=%s\n",
				spec.Name, res.GFLOPS, res.Watts, res.GFLOPSPerWatt(), name, res.Bottleneck)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spmv-info: "+format+"\n", args...)
	os.Exit(1)
}
