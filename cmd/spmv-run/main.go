// Command spmv-run measures real SpMV kernels on the host CPU for one
// matrix, either read from MatrixMarket or generated on the fly.
//
// Usage:
//
//	spmv-run -file matrix.mtx -format CSR5 -workers 8 -iters 64
//	spmv-run -rows 200000 -avg 20 -skew 100     # generated matrix, all formats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/device"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
)

func main() {
	var (
		file    = flag.String("file", "", "MatrixMarket input (empty: generate)")
		format  = flag.String("format", "", "single format to run (empty: all)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		iters   = flag.Int("iters", 32, "SpMV iterations to time")
		rows    = flag.Int("rows", 200000, "generated matrix rows")
		avg     = flag.Float64("avg", 20, "generated average nonzeros per row")
		skew    = flag.Float64("skew", 0, "generated skew coefficient")
		sim     = flag.Float64("sim", 0.5, "generated cross-row similarity")
		neigh   = flag.Float64("neigh", 1.0, "generated avg neighbors")
		bw      = flag.Float64("bw", 0.3, "generated scaled bandwidth")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	var m *matrix.CSR
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatalf("%v", err)
		}
		mm, err := matrix.ReadMatrixMarket(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			fatalf("parse: %v", err)
		}
		m = mm
	} else {
		mm, err := gen.Generate(gen.Params{
			Rows: *rows, Cols: *rows,
			AvgNNZPerRow: *avg, StdNNZPerRow: *avg * 0.3,
			SkewCoeff: *skew, BWScaled: *bw,
			CrossRowSim: *sim, AvgNumNeigh: *neigh, Seed: *seed,
		})
		if err != nil {
			fatalf("generate: %v", err)
		}
		m = mm
	}
	fmt.Printf("matrix: %s\n", m)

	engine := device.NativeEngine{Workers: *workers, Iterations: *iters}
	run := func(b formats.Builder) {
		res := engine.Run(m, b)
		if res.BuildErr != nil {
			fmt.Printf("%-10s build refused: %v\n", b.Name, res.BuildErr)
			return
		}
		fmt.Printf("%-10s %8.3f GFLOPS  (%d iters, %d workers, %.3fs)\n",
			res.Format, res.GFLOPS, res.Iterations, res.Workers, res.Seconds)
	}
	if *format != "" {
		b, ok := formats.Lookup(*format)
		if !ok {
			fatalf("unknown format %q", *format)
		}
		run(b)
		return
	}
	for _, b := range formats.Registry() {
		run(b)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spmv-run: "+format+"\n", args...)
	os.Exit(1)
}
