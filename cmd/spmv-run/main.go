// Command spmv-run measures real SpMV kernels on the host CPU for one
// matrix, either read from MatrixMarket or generated on the fly.
//
// Usage:
//
//	spmv-run -file matrix.mtx -format CSR5 -workers 8 -iters 64
//	spmv-run -rows 200000 -avg 20 -skew 100     # generated matrix, all formats
//	spmv-run -format auto -rhs 8                # let the selector choose for k=8
//	spmv-run -format auto -cache-dir /var/cache/spmv   # warm across restarts
//
// -format auto invokes the selection subsystem: the five-feature vector is
// extracted, the device model shortlists candidates for the -rhs regime, a
// micro-probe times them on a row sample, and the measured winner runs.
// With -cache-dir (or SPMV_CACHE_DIR) the decision and the probe outcome
// journal to disk, so the next process run skips ranking and probing for
// the same matrix; -cold deletes the journal first.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/selector"
	"repro/internal/simd"
)

func main() {
	var (
		file     = flag.String("file", "", "MatrixMarket input (empty: generate)")
		format   = flag.String("format", "", "single format to run (empty: all; \"auto\": selection subsystem)")
		rhs      = flag.Int("rhs", 1, "right-hand-side count the auto selector targets")
		cacheDir = flag.String("cache-dir", "", "journal directory for persistent auto-selection decisions (empty = SPMV_CACHE_DIR or off)")
		cold     = flag.Bool("cold", false, "delete the journal before selecting (cold cache)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		iters    = flag.Int("iters", 32, "SpMV iterations to time")
		rows     = flag.Int("rows", 200000, "generated matrix rows")
		avg      = flag.Float64("avg", 20, "generated average nonzeros per row")
		skew     = flag.Float64("skew", 0, "generated skew coefficient")
		sim      = flag.Float64("sim", 0.5, "generated cross-row similarity")
		neigh    = flag.Float64("neigh", 1.0, "generated avg neighbors")
		bw       = flag.Float64("bw", 0.3, "generated scaled bandwidth")
		seed     = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	// Persistence flags act regardless of -format, so `-cold` always
	// deletes the journal it names (silently ignoring it would leave the
	// cache the user asked to clear warm for the next auto run).
	if err := cache.ConfigureFlags(*cacheDir, *cold); err != nil {
		fatalf("%v", err)
	}

	var m *matrix.CSR
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatalf("%v", err)
		}
		mm, err := matrix.ReadMatrixMarket(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			fatalf("parse: %v", err)
		}
		m = mm
	} else {
		mm, err := gen.Generate(gen.Params{
			Rows: *rows, Cols: *rows,
			AvgNNZPerRow: *avg, StdNNZPerRow: *avg * 0.3,
			SkewCoeff: *skew, BWScaled: *bw,
			CrossRowSim: *sim, AvgNumNeigh: *neigh, Seed: *seed,
		})
		if err != nil {
			fatalf("generate: %v", err)
		}
		m = mm
	}
	fmt.Printf("matrix: %s\n", m)
	if fs := simd.Features(); len(fs) > 0 {
		fmt.Printf("simd: %s dispatch, %d float64 lanes (detected: %s; SPMV_NOSIMD=1 forces scalar)\n",
			simd.Level(), simd.Width(), strings.Join(fs, " "))
	} else {
		fmt.Println("simd: scalar dispatch (no accelerated kernels for this CPU)")
	}

	engine := device.NativeEngine{Workers: *workers, Iterations: *iters}
	run := func(b formats.Builder) {
		res := engine.Run(m, b)
		if res.BuildErr != nil {
			fmt.Printf("%-10s build refused: %v\n", b.Name, res.BuildErr)
			return
		}
		fmt.Printf("%-10s %8.3f GFLOPS  (%d iters, %d workers, %.3fs)\n",
			res.Format, res.GFLOPS, res.Iterations, res.Workers, res.Seconds)
	}
	if *format == "auto" {
		if cache.Configured() {
			if _, err := selector.Persist(""); err != nil {
				fatalf("persistence: %v", err)
			}
		}
		af, err := selector.BuildAuto(m, selector.AutoOptions{K: *rhs, Probe: true})
		if err != nil {
			fatalf("auto selection: %v", err)
		}
		c := af.Choice()
		fmt.Printf("auto: chose %s for k=%d on %s (shortlist %s, probed=%v, cached=%v, learned=%v)\n",
			af.Chosen(), c.K, c.Device, strings.Join(c.Shortlist, " > "), c.Probed, c.Cached, c.Learned)
		if st := cache.Decisions.Store(); st != nil {
			ss := st.Stats()
			fmt.Printf("journal: %s (%d decisions / %d experiences loaded, %d appended)\n",
				ss.Path, ss.Decisions, ss.Experiences, ss.Appended)
		}
		if *rhs > 1 {
			// Measure the regime the selector actually targeted: one fused
			// k-wide MultiplyMany per iteration, not k=1 SpMV.
			k := *rhs
			x := matrix.RandomVector(m.Cols*k, 12345)
			y := make([]float64, m.Rows*k)
			af.MultiplyMany(y, x, k) // warm-up, page-in, plan-cache fill
			start := time.Now()
			for i := 0; i < *iters; i++ {
				af.MultiplyMany(y, x, k)
			}
			secs := time.Since(start).Seconds()
			gflops := 0.0
			if secs > 0 {
				gflops = 2 * float64(m.NNZ()) * float64(k) * float64(*iters) / secs / 1e9
			}
			fmt.Printf("%-10s %8.3f GFLOPS  (%d iters of k=%d MultiplyMany, %.3fs)\n",
				af.Name(), gflops, *iters, k, secs)
			return
		}
		run(formats.Builder{
			Name:  af.Name(),
			Build: func(*matrix.CSR) (formats.Format, error) { return af, nil },
		})
		return
	}
	if *format != "" {
		b, ok := formats.Lookup(*format)
		if !ok {
			fatalf("unknown format %q", *format)
		}
		run(b)
		return
	}
	for _, b := range formats.Registry() {
		run(b)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spmv-run: "+format+"\n", args...)
	os.Exit(1)
}
