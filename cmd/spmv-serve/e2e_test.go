package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// envelope mirrors the server's uniform response shape.
type envelope struct {
	OK    bool            `json:"ok"`
	Data  json.RawMessage `json:"data,omitempty"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// captureWriter is a concurrency-safe stdout sink that also watches for
// the daemon's "listening on" banner. Writing through an io.Writer (not
// StdoutPipe) lets cmd.Wait run without racing the reader: the writer
// sees every byte before Wait returns.
type captureWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	addrc chan string
}

func (w *captureWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.buf.Write(p)
	all := w.buf.String()
	w.mu.Unlock()
	if i := strings.Index(all, "listening on "); i >= 0 {
		rest := all[i+len("listening on "):]
		if j := strings.IndexAny(rest, " \n"); j > 0 {
			select {
			case w.addrc <- rest[:j]:
			default:
			}
		}
	}
	return len(p), nil
}

func (w *captureWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// daemon is one spmv-serve process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://addr
	out  *captureWriter
	done chan error
}

// startDaemon builds the binary once per test run and boots it on an
// ephemeral port, parsing the bound address off its banner line.
func startDaemon(t *testing.T, env ...string) *daemon {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "spmv-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	out := &captureWriter{addrc: make(chan string, 1)}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-window", "5ms", "-drain", "3s")
	cmd.Env = append(os.Environ(), env...)
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	d := &daemon{cmd: cmd, out: out, done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()

	select {
	case addr := <-out.addrc:
		d.base = "http://" + addr
	case err := <-d.done:
		t.Fatalf("daemon exited before binding: %v\n%s", err, d.out.String())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never bound\n%s", d.out.String())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
		}
	})
	return d
}

// post sends a JSON body and returns status + decoded envelope, failing
// the test on transport or envelope-schema violations.
func (d *daemon) post(t *testing.T, path string, body any) (int, envelope) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeEnvelope(t, path, resp)
}

func (d *daemon) get(t *testing.T, path string) (int, envelope) {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeEnvelope(t, path, resp)
}

// decodeEnvelope asserts the uniform schema: ok xor error, error carries
// code and message.
func decodeEnvelope(t *testing.T, path string, resp *http.Response) envelope {
	t.Helper()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("%s: response is not the envelope: %v\n%s", path, err, raw)
	}
	if env.OK && env.Error != nil {
		t.Fatalf("%s: ok envelope carries an error: %s", path, raw)
	}
	if !env.OK && (env.Error == nil || env.Error.Code == "" || env.Error.Message == "") {
		t.Fatalf("%s: error envelope missing code/message: %s", path, raw)
	}
	return env
}

// tinyMM is a 4x4 MatrixMarket body small enough to inline.
const tinyMM = `%%MatrixMarket matrix coordinate real general
4 4 6
1 1 2.0
1 3 1.0
2 2 3.0
3 1 4.0
3 4 1.5
4 4 5.0
`

// The serve CI job's end-to-end smoke: boot on a random port, upload
// (auto-select), multiply, updatable Set, multiply again (update
// visible), typed 400 on a short vector, then SIGTERM with requests in
// flight and assert the drain contract: every request answered, clean
// exit 0.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon")
	}
	d := startDaemon(t)

	status, env := d.get(t, "/v1/healthz")
	if status != 200 || !env.OK {
		t.Fatalf("healthz: %d %+v", status, env)
	}

	// Upload an updatable generator-built matrix (exercises selection)
	// and the tiny literal MatrixMarket one (exercises the parser).
	status, env = d.post(t, "/v1/matrices", map[string]any{
		"name":      "gen-e2e",
		"generator": map[string]any{"rows": 500, "cols": 500, "avgnnzperrow": 8, "stdnnzperrow": 2, "bwscaled": 0.4, "seed": 7},
	})
	if status != 201 || !env.OK {
		t.Fatalf("generator upload: %d %s", status, env.Data)
	}
	status, env = d.post(t, "/v1/matrices", map[string]any{
		"name": "tiny", "matrixmarket": tinyMM, "updatable": true,
	})
	if status != 201 || !env.OK {
		t.Fatalf("mm upload: %d", status)
	}
	var up struct {
		Info struct {
			Fingerprint string `json:"fingerprint"`
			Format      string `json:"format"`
			Updatable   bool   `json:"updatable"`
		} `json:"info"`
		Created bool `json:"created"`
	}
	if err := json.Unmarshal(env.Data, &up); err != nil {
		t.Fatal(err)
	}
	if !up.Created || up.Info.Fingerprint == "" || up.Info.Format == "" || !up.Info.Updatable {
		t.Fatalf("upload response: %+v", up)
	}
	fp := up.Info.Fingerprint

	// Multiply: y = A * e1 is column 1 of the tiny matrix: (2,0,4,0).
	mult := func() []float64 {
		status, env := d.post(t, "/v1/matrices/"+fp+"/multiply", map[string]any{
			"x": []float64{1, 0, 0, 0},
		})
		if status != 200 || !env.OK {
			t.Fatalf("multiply: %d %+v", status, env.Error)
		}
		var mr struct {
			Y     []float64 `json:"y"`
			Batch int       `json:"batch"`
		}
		if err := json.Unmarshal(env.Data, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.Batch < 1 {
			t.Fatalf("batch = %d", mr.Batch)
		}
		return mr.Y
	}
	y := mult()
	if len(y) != 4 || y[0] != 2 || y[2] != 4 {
		t.Fatalf("y = %v, want [2 0 4 0]", y)
	}

	// Updatable Set, visible in the next multiply.
	status, env = d.post(t, "/v1/matrices/"+fp+"/cells", []map[string]any{
		{"row": 1, "col": 0, "val": 9.5},
	})
	if status != 200 || !env.OK {
		t.Fatalf("cells: %d %+v", status, env.Error)
	}
	if y := mult(); y[1] != 9.5 {
		t.Fatalf("cell set not visible: y = %v", y)
	}

	// Typed 400, not a leaked 500, on a wrong-length vector.
	status, env = d.post(t, "/v1/matrices/"+fp+"/multiply", map[string]any{"x": []float64{1}})
	if status != 400 || env.OK || env.Error.Code != "dimension_mismatch" {
		t.Fatalf("short vector: %d %+v", status, env.Error)
	}

	// SIGTERM with requests in flight: the 5ms window means these are
	// mid-gather when the signal lands. Drain contract: every request
	// gets an HTTP response (200/499/503 — never a torn connection), and
	// the daemon exits 0.
	const inflight = 8
	results := make(chan int, inflight)
	var launched sync.WaitGroup
	for i := 0; i < inflight; i++ {
		launched.Add(1)
		go func() {
			body, _ := json.Marshal(map[string]any{"x": []float64{0, 1, 0, 0}})
			launched.Done()
			resp, err := http.Post(d.base+"/v1/matrices/"+fp+"/multiply",
				"application/json", bytes.NewReader(body))
			if err != nil {
				results <- -1
				return
			}
			defer resp.Body.Close()
			var env envelope
			if json.NewDecoder(resp.Body).Decode(&env) != nil {
				results <- -2
				return
			}
			results <- resp.StatusCode
		}()
	}
	launched.Wait()
	time.Sleep(2 * time.Millisecond)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < inflight; i++ {
		select {
		case code := <-results:
			switch code {
			case 200, 499, 503:
			case -1:
				t.Fatal("in-flight request torn down without a response during drain")
			case -2:
				t.Fatal("in-flight request answered without a valid envelope")
			default:
				t.Fatalf("in-flight request answered %d, want 200/499/503", code)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("in-flight request hung across SIGTERM — drain broken")
		}
	}

	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, d.out.String())
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("daemon never exited after SIGTERM\n%s", d.out.String())
	}
	if !strings.Contains(d.out.String(), "drained") {
		t.Fatalf("daemon exited without the drain notice:\n%s", d.out.String())
	}
}

// The daemon resolves config flag > env > file: SPMV_SERVE_MAXBATCH is
// visible in the startup banner while the -window flag overrides it.
func TestDaemonConfigPrecedence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon")
	}
	d := startDaemon(t, "SPMV_SERVE_MAXBATCH=3", "SPMV_SERVE_WINDOW=9s")
	defer d.cmd.Process.Signal(syscall.SIGTERM)

	banner := d.out.String()
	// -window 5ms (flag) must beat SPMV_SERVE_WINDOW=9s (env); max batch
	// has no flag set, so the env value 3 shows.
	if !strings.Contains(banner, "window 5ms") {
		t.Fatalf("flag did not override env window:\n%s", banner)
	}
	if !strings.Contains(banner, "max batch 3") {
		t.Fatalf("env max batch not applied:\n%s", banner)
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-d.done:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited")
	}
}
