// Command spmv-serve hosts matrices behind an HTTP API and coalesces
// concurrent single-vector multiply requests into fused multi-vector
// kernel calls — the inference-serving recipe applied to SpMV: upload
// (and pay format selection for) a matrix once, then let k concurrent
// clients share one matrix sweep instead of issuing k.
//
// Usage:
//
//	spmv-serve [flags]
//
// Flags (resolution order: flag > environment > -config file > default):
//
//	-addr HOST:PORT   listen address (default :8097; :0 picks a free
//	                  port and the bound address is printed)
//	-window DUR       coalescing window armed by the first request of a
//	                  batch (default 200us; 0 disables batching)
//	-max-batch N      flush a batch early at N gathered requests
//	                  (default 8, where the fused kernels' per-vector
//	                  gain flattens)
//	-cache-dir DIR    selection journal directory (default
//	                  SPMV_CACHE_DIR; empty = memory-only)
//	-shards N         shard count recorded in decision keys (0 = live
//	                  topology)
//	-rhs K            default right-hand-side regime hint for uploads
//	-probe            micro-probe the selection shortlist on upload
//	-drain DUR        graceful-shutdown bound: past it, in-flight
//	                  kernels are cancelled and their requests answered
//	                  with the typed cancellation (default 5s)
//	-config FILE      JSON config file (the lowest-priority layer)
//
// Environment: SPMV_SERVE_ADDR, SPMV_SERVE_WINDOW, SPMV_SERVE_MAXBATCH,
// SPMV_SERVE_DRAIN, SPMV_SERVE_K, SPMV_SERVE_SHARDS, SPMV_SERVE_PROBE,
// SPMV_CACHE_DIR.
//
// API (all responses use the {ok, data, error:{code,message}} envelope):
//
//	GET    /v1/healthz                   liveness + hosted count
//	POST   /v1/matrices                  upload: {"matrixmarket": "..."} or
//	                                     {"generator": {...}}, plus
//	                                     "name", "updatable", "k", "probe"
//	GET    /v1/matrices                  list hosted matrices
//	GET    /v1/matrices/{fp}             one matrix's info + batching stats
//	DELETE /v1/matrices/{fp}             unhost (in-flight requests drain)
//	POST   /v1/matrices/{fp}/multiply    {"x": [...]} -> {"y": [...], "batch": n}
//	POST   /v1/matrices/{fp}/cells       [{"row","col","val"|"delete"}] on
//	                                     an updatable host
//	GET    /v1/stats                     per-matrix batching + totals
//
// SIGINT/SIGTERM drain gracefully: accepted requests get a result or a
// typed cancellation (HTTP 499) before the process exits; none hang.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spmv-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "JSON config file (lowest-priority layer)")
		addr       = flag.String("addr", "", "listen address")
		window     = flag.Duration("window", 0, "coalescing window (0 disables batching)")
		maxBatch   = flag.Int("max-batch", 0, "flush a batch early at this many requests")
		cacheDir   = flag.String("cache-dir", "", "selection journal directory")
		shards     = flag.Int("shards", 0, "shard count recorded in decision keys")
		rhs        = flag.Int("rhs", 0, "default right-hand-side regime hint for uploads")
		probe      = flag.Bool("probe", false, "micro-probe the selection shortlist on upload")
		drain      = flag.Duration("drain", 0, "graceful-shutdown bound")
	)
	flag.Parse()

	// Resolution order flag > env > file: start from defaults, overlay the
	// file, overlay the environment, then overlay only the flags the user
	// actually set.
	cfg := serve.DefaultConfig()
	if err := cfg.ApplyFile(*configPath); err != nil {
		return err
	}
	if err := cfg.ApplyEnv(nil); err != nil {
		return err
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "addr":
			cfg.Addr = *addr
		case "window":
			cfg.Window = *window
		case "max-batch":
			cfg.MaxBatch = *maxBatch
		case "cache-dir":
			cfg.CacheDir = *cacheDir
		case "shards":
			cfg.Shards = *shards
		case "rhs":
			cfg.K = *rhs
		case "probe":
			cfg.Probe = *probe
		case "drain":
			cfg.DrainTimeout = *drain
		}
	})

	srv, err := serve.NewServer(cfg, nil)
	if err != nil {
		return err
	}
	if err := srv.Listen(); err != nil {
		return err
	}
	// The e2e harness parses this line to learn the bound port (-addr :0).
	fmt.Printf("spmv-serve listening on %s (window %v, max batch %d)\n",
		srv.Addr(), cfg.Window, cfg.MaxBatch)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case err := <-errc:
		return err
	case sig := <-sigs:
		fmt.Printf("spmv-serve: %v, draining (bound %v)\n", sig, cfg.DrainTimeout)
		// Shutdown's own context outlives the drain timeout so the typed
		// cancellation path can answer the stragglers before we return.
		ctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout+5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errc // Serve has returned http.ErrServerClosed
		fmt.Println("spmv-serve: drained, bye")
		return nil
	}
}
