package spmv_test

import (
	"context"
	"fmt"
	"math"
	"os"

	spmv "repro"
)

// The examples below are the README quick start, verified by `go test`:
// generate an artificial matrix from target features, extract its feature
// vector, and run SpMV in a non-CSR storage format against the CSR
// reference.

// ExampleGenerate builds a small artificial matrix from a feature-space
// target (Listing 1 of the paper).
func ExampleGenerate() {
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 2000, Cols: 2000,
		AvgNNZPerRow: 8, StdNNZPerRow: 2,
		SkewCoeff: 5, BWScaled: 0.2,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d x %d matrix, avg %.1f nnz/row\n", m.Rows, m.Cols, m.AvgRowNNZ())
	// Output:
	// 2000 x 2000 matrix, avg 8.0 nnz/row
}

// ExampleExtract measures the five-feature vector (Section III-A) of a
// generated matrix: the generator's output lands near its targets.
func ExampleExtract() {
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 2000, Cols: 2000,
		AvgNNZPerRow: 8, StdNNZPerRow: 2,
		SkewCoeff: 5, BWScaled: 0.2,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	fv := spmv.Extract(m)
	fmt.Printf("avg nnz/row %.1f, skew %.1f, bw %.2f\n",
		fv.AvgNNZPerRow, fv.SkewCoeff, fv.BWScaled)
	// Output:
	// avg nnz/row 8.0, skew 5.1, bw 0.08
}

// ExampleFormatByName builds one storage format and checks its parallel
// SpMV kernel against the CSR reference.
func ExampleFormatByName() {
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 2000, Cols: 2000,
		AvgNNZPerRow: 8, StdNNZPerRow: 2,
		SkewCoeff: 5, BWScaled: 0.2,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	b, ok := spmv.FormatByName("SELL-C-s")
	if !ok {
		panic("unknown format")
	}
	f, err := b.Build(m)
	if err != nil {
		panic(err)
	}

	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	want := make([]float64, m.Rows) // CSR reference product
	m.SpMV(x, want)
	got := make([]float64, m.Rows)
	f.SpMVParallel(x, got, 8)

	maxDiff := 0.0
	for i := range got {
		maxDiff = math.Max(maxDiff, math.Abs(got[i]-want[i]))
	}
	fmt.Printf("%s stores %d nnz, matches CSR within 1e-9: %v\n",
		f.Name(), f.NNZ(), maxDiff < 1e-9)
	// Output:
	// SELL-C-s stores 16000 nnz, matches CSR within 1e-9: true
}

// ExampleAuto lets the selection subsystem pick the storage format: the
// five-feature vector is extracted, a k-regime-aware device model
// shortlists candidates, and (with Probe) a micro-probe times them on a
// row sample. The chosen format is a regular Format whose product matches
// the CSR reference; which format wins depends on the host, so the
// example checks the contract, not the name.
func ExampleAuto() {
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 2000, Cols: 2000,
		AvgNNZPerRow: 8, StdNNZPerRow: 2,
		SkewCoeff: 5, BWScaled: 0.2,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	f, err := spmv.Auto(m, spmv.AutoOptions{K: 8}) // selecting for an 8-wide block workload
	if err != nil {
		panic(err)
	}

	const k = 8
	x := make([]float64, m.Cols*k)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, m.Rows*k)
	f.MultiplyMany(y, x, k)

	want := make([]float64, m.Rows) // CSR reference product, all-ones RHS
	m.SpMV(x[:m.Cols], want)
	maxDiff := 0.0
	for r := 0; r < m.Rows; r++ {
		for t := 0; t < k; t++ {
			maxDiff = math.Max(maxDiff, math.Abs(y[r*k+t]-want[r]))
		}
	}
	choice := f.Choice()
	fmt.Printf("auto chose a shortlisted format for k=%d, matches CSR within 1e-9: %v\n",
		choice.K, maxDiff < 1e-9)
	// Output:
	// auto chose a shortlisted format for k=8, matches CSR within 1e-9: true
}

// ExampleMultiplyMany multiplies a block of 8 right-hand sides in one
// fused pass (SpMM) and checks it against 8 independent SpMV calls — the
// baseline it outperforms by reusing every loaded nonzero 8 times.
func ExampleMultiplyMany() {
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 2000, Cols: 2000,
		AvgNNZPerRow: 8, StdNNZPerRow: 2,
		SkewCoeff: 5, BWScaled: 0.2,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	b, _ := spmv.FormatByName("Naive-CSR")
	f, err := b.Build(m)
	if err != nil {
		panic(err)
	}

	const k = 8 // right-hand sides, stored row-major: k values per row
	x := make([]float64, m.Cols*k)
	for i := range x {
		x[i] = float64(i%7) / 7
	}
	y := make([]float64, m.Rows*k)
	if err := spmv.MultiplyMany(f, y, x, k); err != nil {
		panic(err)
	}

	// Reference: one SpMV per vector, gathered from the block layout.
	xj := make([]float64, m.Cols)
	yj := make([]float64, m.Rows)
	maxDiff := 0.0
	for t := 0; t < k; t++ {
		for c := 0; c < m.Cols; c++ {
			xj[c] = x[c*k+t]
		}
		m.SpMV(xj, yj)
		for r := 0; r < m.Rows; r++ {
			maxDiff = math.Max(maxDiff, math.Abs(y[r*k+t]-yj[r]))
		}
	}
	fmt.Printf("fused %d-vector product matches %d SpMV calls within 1e-9: %v\n",
		k, k, maxDiff < 1e-9)
	// Output:
	// fused 8-vector product matches 8 SpMV calls within 1e-9: true
}

// ExampleMultiplyCtx shows the cancellable facade: deadlines and
// cancellation propagate into the execution engine, whose worker lanes
// poll the context at partition-chunk granularity — an abandoned call
// returns the context's error promptly instead of finishing its sweep,
// and the engine keeps serving.
func ExampleMultiplyCtx() {
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 2000, Cols: 2000,
		AvgNNZPerRow: 8, StdNNZPerRow: 2,
		SkewCoeff: 5, BWScaled: 0.2,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	b, _ := spmv.FormatByName("Naive-CSR")
	f, err := b.Build(m)
	if err != nil {
		panic(err)
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)

	// A live context multiplies normally.
	if err := spmv.MultiplyCtx(context.Background(), f, y, x); err != nil {
		panic(err)
	}

	// A caller that gave up — here before the call even starts — gets the
	// context's error back; y must be treated as garbage, and the engine
	// is untouched.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = spmv.MultiplyCtx(ctx, f, y, x)
	fmt.Println("cancelled call:", err)

	// The next multiply on the same format succeeds.
	fmt.Println("engine still serves:", spmv.MultiplyCtx(context.Background(), f, y, x) == nil)
	// Output:
	// cancelled call: context canceled
	// engine still serves: true
}

// ExampleFormats lists the first of the registry's fourteen storage
// formats, state-of-practice first.
func ExampleFormats() {
	for _, b := range spmv.Formats()[:4] {
		fmt.Println(b.Name)
	}
	fmt.Printf("... %d formats total\n", len(spmv.Formats()))
	// Output:
	// COO
	// Naive-CSR
	// Vec-CSR
	// Bal-CSR
	// ... 14 formats total
}

// ExampleSetCacheDir turns on the persistence layer: auto-format
// decisions and probe outcomes journal to disk and warm-load on the next
// start, so a restarted server re-probes nothing it has seen. The example
// uses a throwaway directory; a server would pass its cache path once (or
// set SPMV_CACHE_DIR and call nothing at all).
func ExampleSetCacheDir() {
	dir, err := os.MkdirTemp("", "spmv-journal")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	if err := spmv.SetCacheDir(dir); err != nil {
		panic(err)
	}
	defer spmv.UnsetCacheDir() // the temp dir is about to vanish

	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 2000, Cols: 2000,
		AvgNNZPerRow: 8, StdNNZPerRow: 2,
		SkewCoeff: 5, BWScaled: 0.2,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	first, err := spmv.Auto(m, spmv.AutoOptions{K: 8})
	if err != nil {
		panic(err)
	}
	// A second build of the same matrix under the same (device, k, shards)
	// context resolves from the cache — after a real restart, from the
	// journal on disk.
	second, err := spmv.Auto(m, spmv.AutoOptions{K: 8})
	if err != nil {
		panic(err)
	}
	fmt.Printf("same decision: %v, second build cached: %v\n",
		first.Chosen() == second.Chosen(), second.Choice().Cached)
	// Output:
	// same decision: true, second build cached: true
}

// ExampleNewUpdatable shows the update layer: a read-optimized base with
// a concurrent delta overlay, mutated while multiplies keep running, then
// compacted back into a single fresh base.
func ExampleNewUpdatable() {
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 1000, Cols: 1000,
		AvgNNZPerRow: 6, StdNNZPerRow: 2,
		SkewCoeff: 4, BWScaled: 0.2,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 9,
	})
	if err != nil {
		panic(err)
	}
	u, err := spmv.NewUpdatable(m, spmv.UpdateOptions{Format: "Naive-CSR"})
	if err != nil {
		panic(err)
	}
	// Updates are safe while other goroutines multiply; each multiply
	// observes a consistent snapshot of base + overlay.
	u.Set(3, 4, 2.5)
	u.Add(3, 4, 0.5)
	u.Delete(7, 7)

	x := make([]float64, u.Cols())
	y := make([]float64, u.Rows())
	x[4] = 1
	u.SpMVParallel(x, y, 4)
	fmt.Printf("y[3] = %.1f, cell (7,7) = %.0f\n", y[3], u.At(7, 7))

	// Compact folds the overlay into a fresh base matrix (deletions
	// reclaim storage) and re-selects the base format.
	if err := u.Compact(); err != nil {
		panic(err)
	}
	fmt.Printf("after compaction: overlay empty: %v, still reads %.1f\n",
		u.Stats().FrozenLen == 0 && u.Stats().ActiveLen == 0, u.At(3, 4))
	// Output:
	// y[3] = 3.0, cell (7,7) = 0
	// after compaction: overlay empty: true, still reads 3.0
}
