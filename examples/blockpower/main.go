// Block power iteration: the multi-vector workload MultiplyMany exists
// for. Subspace iteration on k vectors computes the k dominant
// eigenpairs of a symmetric operator — the block analogue of the power
// method used by spectral solvers, PageRank-style rankings and Lanczos
// warm starts — and its inner loop is exactly one SpMM per iteration:
// Y = A*X, re-orthonormalize, repeat. Because the k vectors multiply
// through the matrix together, the fused kernels read every nonzero once
// per iteration instead of k times; the example reports that speedup
// alongside the eigenvalue estimates.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/matrix"
)

func main() {
	var (
		grid   = flag.Int("grid", 128, "Poisson grid side (matrix is grid^2 x grid^2)")
		k      = flag.Int("k", 4, "subspace width (dominant eigenpairs to compute)")
		iters  = flag.Int("iters", 120, "subspace iterations")
		format = flag.String("format", "SELL-C-s", "storage format to run")
	)
	flag.Parse()

	a := matrix.Laplacian2D(*grid, *grid)
	n := a.Rows
	fb, ok := formats.Lookup(*format)
	if !ok {
		log.Fatalf("unknown format %q", *format)
	}
	f, err := fb.Build(a)
	if err != nil {
		log.Fatalf("%s build: %v", *format, err)
	}
	fmt.Printf("block power iteration on %s (%d unknowns), %s format, k=%d\n\n",
		a, n, f.Name(), *k)

	// Random orthonormal start block, row-major: k values per row.
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n**k)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	orthonormalize(x, n, *k)

	y := make([]float64, n**k)
	var spmm time.Duration
	for it := 1; it <= *iters; it++ {
		t0 := time.Now()
		f.MultiplyMany(y, x, *k)
		spmm += time.Since(t0)
		copy(x, y)
		orthonormalize(x, n, *k)
	}

	// Rayleigh quotients lambda_j = x_j . A x_j (columns are unit norm)
	// and residuals ||A x_j - lambda_j x_j||_2.
	f.MultiplyMany(y, x, *k)
	fmt.Println("  j  lambda_j    ||A v - lambda v||")
	for j := 0; j < *k; j++ {
		lambda, res := 0.0, 0.0
		for i := 0; i < n; i++ {
			lambda += x[i**k+j] * y[i**k+j]
		}
		for i := 0; i < n; i++ {
			d := y[i**k+j] - lambda*x[i**k+j]
			res += d * d
		}
		fmt.Printf("%3d  %.6f    %.2e\n", j, lambda, math.Sqrt(res))
	}

	// The baseline this fused loop replaces: k sequential Multiply calls
	// per iteration over the same engine.
	xs := make([][]float64, *k)
	ys := make([][]float64, *k)
	for j := 0; j < *k; j++ {
		xs[j] = make([]float64, n)
		ys[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			xs[j][i] = x[i**k+j]
		}
	}
	workers := exec.MaxWorkers()
	f.SpMVParallel(xs[0], ys[0], workers) // warm plans
	t0 := time.Now()
	for it := 0; it < *iters; it++ {
		for j := 0; j < *k; j++ {
			f.SpMVParallel(xs[j], ys[j], workers)
		}
	}
	seq := time.Since(t0)
	fmt.Printf("\n%d iterations: fused SpMM %.3fs, %d sequential SpMV %.3fs (%.2fx per-vector speedup)\n",
		*iters, spmm.Seconds(), *k, seq.Seconds(), seq.Seconds()/spmm.Seconds())
}

// orthonormalize runs modified Gram-Schmidt over the k columns of the
// row-major block (column j lives at x[i*k+j]), keeping the iteration a
// proper subspace iteration rather than k coupled power methods.
func orthonormalize(x []float64, n, k int) {
	for j := 0; j < k; j++ {
		for p := 0; p < j; p++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += x[i*k+p] * x[i*k+j]
			}
			for i := 0; i < n; i++ {
				x[i*k+j] -= dot * x[i*k+p]
			}
		}
		norm := 0.0
		for i := 0; i < n; i++ {
			norm += x[i*k+j] * x[i*k+j]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			x[i*k+j] /= norm
		}
	}
}
