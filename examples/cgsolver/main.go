// Conjugate-gradient solver: the application the paper's introduction
// motivates — SpMV dominating a sparse iterative solver. Solves a 2-D
// Poisson problem with CG, once per storage format, and reports the SpMV
// share of solver time and the iteration count (identical across formats,
// since all kernels compute the same product).
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"repro/internal/formats"
	"repro/internal/matrix"
)

func main() {
	const grid = 192 // 36864 unknowns, SPD 5-point Laplacian
	a := matrix.Laplacian2D(grid, grid)
	n := a.Rows
	fmt.Printf("solving Poisson on a %dx%d grid: %s\n\n", grid, grid, a)

	// A right-hand side with a known solution x* = 1.
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	a.SpMV(ones, b)

	workers := runtime.GOMAXPROCS(0)
	for _, builder := range []string{"Naive-CSR", "Vec-CSR", "CSR5", "Merge-CSR", "SELL-C-s", "SparseX", "DIA"} {
		fb, ok := formats.Lookup(builder)
		if !ok {
			log.Fatalf("unknown format %s", builder)
		}
		f, err := fb.Build(a)
		if err != nil {
			fmt.Printf("%-10s build refused: %v\n", builder, err)
			continue
		}
		x, iters, spmvTime, total := solveCG(f, b, workers, 1e-10, 2000)
		fmt.Printf("%-10s %4d iters  %.3fs total  %5.1f%% in SpMV  ||x-1||_inf = %.2e\n",
			builder, iters, total.Seconds(), 100*spmvTime.Seconds()/total.Seconds(), maxErr(x))
	}
}

// solveCG runs conjugate gradients with f as the operator.
func solveCG(f formats.Format, b []float64, workers int, tol float64, maxIter int) ([]float64, int, time.Duration, time.Duration) {
	n := len(b)
	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b - A*0
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rr := dot(r, r)
	bnorm := math.Sqrt(dot(b, b))

	var spmvTime time.Duration
	start := time.Now()
	iters := 0
	for ; iters < maxIter && math.Sqrt(rr) > tol*bnorm; iters++ {
		t0 := time.Now()
		f.SpMVParallel(p, ap, workers)
		spmvTime += time.Since(t0)

		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x, iters, spmvTime, time.Since(start)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func maxErr(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if d := math.Abs(v - 1); d > max {
			max = d
		}
	}
	return max
}
