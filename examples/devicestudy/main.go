// Device study: ask the nine testbed models where three representative
// workloads run best — a cache-friendly medium matrix, a huge streaming
// matrix and an irregular graph-shaped matrix — and print the predicted
// performance, power and dominant bottleneck on every device. Reproduces
// the decision logic behind the paper's Takeaways 2-4 at a glance.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"

	spmv "repro"
)

func main() {
	workloads := []struct {
		name string
		fv   core.FeatureVector
	}{
		{"medium cache-friendly (128MB, long rows, regular)",
			dataset.Point(128, 100, 0, 0.9, 1.8, 0.05)},
		{"huge streaming (1.5GB, moderate rows)",
			dataset.Point(1536, 50, 0, 0.5, 1.0, 0.3)},
		{"irregular graph (256MB, short rows, skewed)",
			dataset.Point(256, 5, 1000, 0.05, 0.05, 0.6)},
	}

	for _, w := range workloads {
		fmt.Printf("== %s\n", w.name)
		var bestDev string
		var bestPerf, bestEffVal float64
		var bestEffDev string
		for _, spec := range spmv.Devices() {
			name, res, ok := spec.BestFormat(w.fv)
			if !ok {
				fmt.Printf("   %-12s cannot run this matrix\n", spec.Name)
				continue
			}
			fmt.Printf("   %-12s %8.2f GFLOPS  %6.1f W  %.3f GFLOPS/W  via %-9s  limited by %s\n",
				spec.Name, res.GFLOPS, res.Watts, res.GFLOPSPerWatt(), name, res.Bottleneck)
			if res.GFLOPS > bestPerf {
				bestPerf, bestDev = res.GFLOPS, spec.Name
			}
			if e := res.GFLOPSPerWatt(); e > bestEffVal {
				bestEffVal, bestEffDev = e, spec.Name
			}
		}
		fmt.Printf("   -> fastest: %s; most energy-efficient: %s\n\n", bestDev, bestEffDev)
	}
}
