// Format comparison on matrices with deliberately different structure:
// balanced/banded, skewed, clustered and hypersparse. Measures real kernels
// on the host CPU and shows that no format wins everywhere (the paper's
// Takeaway 6), then explains each winner through the structural traits.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/device"
	"repro/internal/gen"

	spmv "repro"
)

type workload struct {
	name string
	p    gen.Params
}

func main() {
	base := gen.Params{Rows: 120000, Cols: 120000, AvgNNZPerRow: 16,
		StdNNZPerRow: 5, BWScaled: 0.2, CrossRowSim: 0.4, AvgNumNeigh: 0.8, Seed: 7}

	workloads := []workload{
		{"balanced-banded", with(base, func(p *gen.Params) { p.BWScaled = 0.02; p.AvgNumNeigh = 1.6 })},
		{"heavily-skewed", with(base, func(p *gen.Params) { p.SkewCoeff = 2000 })},
		{"clustered-rows", with(base, func(p *gen.Params) { p.AvgNumNeigh = 1.9; p.CrossRowSim = 0.9 })},
		{"hypersparse", with(base, func(p *gen.Params) { p.AvgNNZPerRow = 3; p.StdNNZPerRow = 1 })},
	}

	engine := device.NativeEngine{Workers: runtime.GOMAXPROCS(0), Iterations: 12}
	for _, w := range workloads {
		m, err := gen.Generate(w.p)
		if err != nil {
			log.Fatal(err)
		}
		fv := spmv.Extract(m)
		fmt.Printf("== %s: %s\n   skew=%.0f sim=%.2f neigh=%.2f\n",
			w.name, m, fv.SkewCoeff, fv.CrossRowSim, fv.AvgNumNeigh)

		bestName, bestPerf := "", 0.0
		for _, res := range engine.RunAll(m) {
			if res.BuildErr != nil {
				fmt.Printf("   %-10s refused (%v)\n", res.Format, shortErr(res.BuildErr))
				continue
			}
			marker := ""
			if res.GFLOPS > bestPerf {
				bestName, bestPerf = res.Format, res.GFLOPS
				marker = " *"
			}
			fmt.Printf("   %-10s %7.3f GFLOPS%s\n", res.Format, res.GFLOPS, marker)
		}
		fmt.Printf("   winner: %s (%.3f GFLOPS)\n\n", bestName, bestPerf)
	}
	fmt.Println("Different structures crown different formats — exactly the paper's Takeaway 6.")
}

func with(p gen.Params, mutate func(*gen.Params)) gen.Params {
	mutate(&p)
	return p
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
