// Generator fidelity: sweep each of the paper's features across its Table I
// grid values, generate a matrix per point, and compare the requested value
// against what the generated matrix actually measures — the property the
// paper's validation (Section V-A) rests on.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	base := gen.Params{
		Rows: 30000, Cols: 30000,
		AvgNNZPerRow: 20, StdNNZPerRow: 6,
		SkewCoeff: 0, BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 0.5,
		Seed: 1,
	}

	fmt.Println("skew sweep (f3):")
	for _, skew := range []float64{0, 100, 1000} {
		p := base
		p.SkewCoeff = skew
		fv := measure(p)
		fmt.Printf("   requested %6.0f  measured %8.1f\n", skew, fv.SkewCoeff)
	}

	fmt.Println("cross-row similarity sweep (f4.a):")
	for _, sim := range []float64{0.05, 0.5, 0.95} {
		p := base
		p.CrossRowSim = sim
		fv := measure(p)
		fmt.Printf("   requested %6.2f  measured %8.3f\n", sim, fv.CrossRowSim)
	}

	fmt.Println("neighbor sweep (f4.b):")
	for _, neigh := range []float64{0.05, 0.5, 0.95, 1.4, 1.9} {
		p := base
		p.AvgNumNeigh = neigh
		fv := measure(p)
		fmt.Printf("   requested %6.2f  measured %8.3f\n", neigh, fv.AvgNumNeigh)
	}

	fmt.Println("bandwidth sweep (bw_scaled):")
	for _, bw := range []float64{0.05, 0.3, 0.6} {
		p := base
		p.BWScaled = bw
		p.CrossRowSim = 0
		fv := measure(p)
		fmt.Printf("   requested %6.2f  measured %8.3f\n", bw, fv.BWScaled)
	}

	fmt.Println("row-length sweep (f2):")
	for _, avg := range []float64{5, 20, 100} {
		p := base
		p.AvgNNZPerRow = avg
		p.StdNNZPerRow = avg * 0.3
		fv := measure(p)
		fmt.Printf("   requested %6.1f  measured %8.2f\n", avg, fv.AvgNNZPerRow)
	}
}

func measure(p gen.Params) core.FeatureVector {
	m, err := gen.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	return core.Extract(m)
}
