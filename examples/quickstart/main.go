// Quickstart: generate an artificial matrix from target features, extract
// its feature vector, run SpMV in several storage formats and check they
// agree with the CSR reference.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/matrix"

	spmv "repro"
)

func main() {
	// An artificial matrix shaped like a mid-size, slightly skewed problem.
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 50000, Cols: 50000,
		AvgNNZPerRow: 20, StdNNZPerRow: 6,
		SkewCoeff: 10, BWScaled: 0.3,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0,
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated:", m)

	// The paper's five features, measured back from the concrete matrix.
	fv := spmv.Extract(m)
	fmt.Printf("features: footprint=%.1fMiB avg=%.1f skew=%.1f sim=%.2f neigh=%.2f\n\n",
		fv.MemFootprintMB, fv.AvgNNZPerRow, fv.SkewCoeff, fv.CrossRowSim, fv.AvgNumNeigh)

	// Reference product.
	x := matrix.RandomVector(m.Cols, 7)
	want := make([]float64, m.Rows)
	m.SpMV(x, want)

	// Every storage format must agree (up to floating-point reassociation).
	got := make([]float64, m.Rows)
	for _, b := range spmv.Formats() {
		f, err := b.Build(m)
		if err != nil {
			fmt.Printf("%-10s build refused: %v\n", b.Name, err)
			continue
		}
		f.SpMVParallel(x, got, 4)
		fmt.Printf("%-10s %8.2f MiB stored, max |err| = %.2e\n",
			b.Name, float64(f.Bytes())/(1<<20), maxDiff(got, want))
	}
}

func maxDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
