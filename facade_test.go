package spmv_test

import (
	"context"
	"errors"
	"testing"

	spmv "repro"
)

func facadeMatrix(t *testing.T) *spmv.Matrix {
	t.Helper()
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 500, Cols: 400,
		AvgNNZPerRow: 6, StdNNZPerRow: 2,
		SkewCoeff: 3, BWScaled: 0.2,
		CrossRowSim: 0.4, AvgNumNeigh: 1.0, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFacadeArgumentHardening: every Multiply entry point must reject nil
// formats, bad k, and mis-sized vectors with the typed errors — never a
// panic, never silent partial output.
func TestFacadeArgumentHardening(t *testing.T) {
	m := facadeMatrix(t)
	b, _ := spmv.FormatByName("Naive-CSR")
	f, err := b.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)

	if err := spmv.Multiply(nil, y, x); !errors.Is(err, spmv.ErrNilFormat) {
		t.Errorf("Multiply(nil format) = %v, want ErrNilFormat", err)
	}
	if err := spmv.MultiplyCtx(ctx, nil, y, x); !errors.Is(err, spmv.ErrNilFormat) {
		t.Errorf("MultiplyCtx(nil format) = %v, want ErrNilFormat", err)
	}
	if err := spmv.MultiplyMany(nil, y, x, 1); !errors.Is(err, spmv.ErrNilFormat) {
		t.Errorf("MultiplyMany(nil format) = %v, want ErrNilFormat", err)
	}
	if err := spmv.MultiplyManyCtx(ctx, nil, y, x, 1); !errors.Is(err, spmv.ErrNilFormat) {
		t.Errorf("MultiplyManyCtx(nil format) = %v, want ErrNilFormat", err)
	}

	for _, k := range []int{0, -1, -100} {
		if err := spmv.MultiplyMany(f, y, x, k); !errors.Is(err, spmv.ErrInvalidK) {
			t.Errorf("MultiplyMany(k=%d) = %v, want ErrInvalidK", k, err)
		}
		if err := spmv.MultiplyManyCtx(ctx, f, y, x, k); !errors.Is(err, spmv.ErrInvalidK) {
			t.Errorf("MultiplyManyCtx(k=%d) = %v, want ErrInvalidK", k, err)
		}
	}

	bad := [][2][]float64{
		{nil, x},                                 // nil y
		{y, nil},                                 // nil x
		{y[:m.Rows-1], x},                        // short y
		{y, x[:m.Cols-1]},                        // short x
		{append(y, 0), x},                        // long y
		{y, append(x, 0)},                        // long x
		{x, y},                                   // swapped (rows != cols here)
		{make([]float64, 0), make([]float64, 0)}, // both empty
	}
	for i, pair := range bad {
		if err := spmv.Multiply(f, pair[0], pair[1]); !errors.Is(err, spmv.ErrDimension) {
			t.Errorf("Multiply bad pair %d = %v, want ErrDimension", i, err)
		}
		if err := spmv.MultiplyCtx(ctx, f, pair[0], pair[1]); !errors.Is(err, spmv.ErrDimension) {
			t.Errorf("MultiplyCtx bad pair %d = %v, want ErrDimension", i, err)
		}
	}
	// k-scaled dimension check: correct single-vector lengths are wrong
	// for k = 2.
	if err := spmv.MultiplyMany(f, y, x, 2); !errors.Is(err, spmv.ErrDimension) {
		t.Errorf("MultiplyMany(k=2, k=1 vectors) = %v, want ErrDimension", err)
	}
	if err := spmv.MultiplyManyCtx(ctx, f, y, x, 2); !errors.Is(err, spmv.ErrDimension) {
		t.Errorf("MultiplyManyCtx(k=2, k=1 vectors) = %v, want ErrDimension", err)
	}
}

// TestFacadeMultiplyMatchesKernels: the hardened entry points still
// compute the product, identical to the format's own kernels.
func TestFacadeMultiplyMatchesKernels(t *testing.T) {
	m := facadeMatrix(t)
	b, _ := spmv.FormatByName("Naive-CSR")
	f, err := b.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	want := make([]float64, m.Rows)
	f.SpMV(x, want)

	got := make([]float64, m.Rows)
	if err := spmv.Multiply(f, got, x); err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Multiply row %d = %v, want %v", i, got[i], want[i])
		}
	}
	got2 := make([]float64, m.Rows)
	if err := spmv.MultiplyCtx(ctx, f, got2, x); err != nil {
		t.Fatalf("MultiplyCtx: %v", err)
	}
	for i := range got2 {
		if got2[i] != want[i] {
			t.Fatalf("MultiplyCtx row %d = %v, want %v", i, got2[i], want[i])
		}
	}
}

// TestAutoCtxCancelled: a cancelled context aborts AutoCtx with
// context.Canceled instead of selecting.
func TestAutoCtxCancelled(t *testing.T) {
	m := facadeMatrix(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := spmv.AutoCtx(ctx, m, spmv.AutoOptions{NoCache: true, NoLearn: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AutoCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	// A live context selects normally.
	f, err := spmv.AutoCtx(context.Background(), m, spmv.AutoOptions{NoCache: true, NoLearn: true})
	if err != nil {
		t.Fatalf("AutoCtx: %v", err)
	}
	if f.Chosen() == "" {
		t.Fatal("AutoCtx chose nothing")
	}
}
