package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// fastOptions keeps experiment tests quick: a small subsample of the grid.
func fastOptions() Options {
	return Options{Dataset: dataset.Medium, SampleN: 400, Seed: 1}
}

func TestExperimentRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 12 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range []string{"table2", "table3", "table4", "fig1", "fig2", "fig3",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "native"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown experiment id resolved")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("hello %d", 7)
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var csvBuf bytes.Buffer
	if err := r.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if got := csvBuf.String(); got != "a,bb\n1,2\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestTable2And3Encode(t *testing.T) {
	t2 := RunTable2(fastOptions())
	if len(t2) != 1 || len(t2[0].Rows) != 9 {
		t.Errorf("table2: %d reports, %d rows", len(t2), len(t2[0].Rows))
	}
	t3 := RunTable3(fastOptions())
	if len(t3[0].Rows) != 45 {
		t.Errorf("table3 rows = %d, want 45", len(t3[0].Rows))
	}
}

func TestTable4ValidationError(t *testing.T) {
	reports := RunTable4(fastOptions())
	if len(reports) != 1 {
		t.Fatal("want one report")
	}
	r := reports[0]
	if len(r.Rows) != 10 { // 9 devices + average
		t.Fatalf("rows = %d, want 10", len(r.Rows))
	}
	// The reproduction's validation claim: feature-similar matrices perform
	// similarly. MAPE per device must stay within a sane band and APE-best
	// must beat MAPE (the paper's qualitative result).
	for _, row := range r.Rows {
		mape := parsePct(t, row[1])
		best := parsePct(t, row[2])
		if mape < 0 || mape > 60 {
			t.Errorf("%s: MAPE %.2f%% outside [0, 60]", row[0], mape)
		}
		if best > mape+1e-9 {
			t.Errorf("%s: APE-best %.2f%% exceeds MAPE %.2f%%", row[0], best, mape)
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func TestFig1ReportsPerDevice(t *testing.T) {
	o := fastOptions()
	o.Devices = []string{"Tesla-A100", "Alveo-U280"}
	reports := RunFig1(o)
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	for _, r := range reports {
		if len(r.Rows) != 45 {
			t.Errorf("%s: rows = %d, want 45", r.Title, len(r.Rows))
		}
	}
	// The FPGA must reject some big matrices, echoing the paper's 10.
	fpga := reports[1]
	failed := 0
	for _, row := range fpga.Rows {
		if row[1] == "FAILED" {
			failed++
		}
	}
	if failed < 3 || failed > 20 {
		t.Errorf("FPGA failures = %d, want a handful like the paper's 10", failed)
	}
}

func TestFig2Rankings(t *testing.T) {
	o := fastOptions()
	reports := RunFig2(o)
	if len(reports) != 2 {
		t.Fatal("fig2 should produce performance and efficiency reports")
	}
	perf := medianByDevice(t, reports[0], 4)
	eff := medianByDevice(t, reports[1], 4)

	// Takeaway 2: the A100 leads everyone on median performance.
	for dev, v := range perf {
		if dev != "Tesla-A100" && v > perf["Tesla-A100"] {
			t.Errorf("%s median %.2f beats the A100 %.2f", dev, v, perf["Tesla-A100"])
		}
	}
	// Takeaway 3: the FPGA leads everyone on median energy efficiency.
	for dev, v := range eff {
		if dev != "Alveo-U280" && v > eff["Alveo-U280"] {
			t.Errorf("%s efficiency median %.4f beats the U280 %.4f", dev, v, eff["Alveo-U280"])
		}
	}
	// ARM-NEON is the most energy-efficient CPU.
	for _, dev := range []string{"AMD-EPYC-24", "AMD-EPYC-64", "INTEL-XEON", "IBM-POWER9"} {
		if eff[dev] > eff["ARM-NEON"] {
			t.Errorf("%s efficiency %.4f beats ARM-NEON %.4f", dev, eff[dev], eff["ARM-NEON"])
		}
	}
}

func medianByDevice(t *testing.T, r *Report, col int) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, row := range r.Rows {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("bad median %q", row[col])
		}
		out[row[0]] = v
	}
	return out
}

func TestFig3FootprintTrends(t *testing.T) {
	o := fastOptions()
	o.SampleN = 0 // need full grid for per-bucket favorable counts
	reports := RunFig3(o)
	if len(reports) != 3 {
		t.Fatalf("fig3 reports = %d", len(reports))
	}
	for _, r := range reports {
		if len(r.Rows) != len(footprintBuckets) {
			t.Errorf("%s: %d rows", r.Title, len(r.Rows))
		}
	}
	// CPU favorable medians must fall from the first to the last bucket
	// (LLC cliff); GPU favorable medians must rise (parallelism).
	cpu := reports[1]
	first := parseCell(t, cpu.Rows[0][5])
	last := parseCell(t, cpu.Rows[len(cpu.Rows)-1][5])
	if first <= last {
		t.Errorf("EPYC favorable median should fall with footprint: %.2f -> %.2f", first, last)
	}
	gpu := reports[0]
	gFirst := parseCell(t, gpu.Rows[0][5])
	gLast := parseCell(t, gpu.Rows[len(gpu.Rows)-1][5])
	if gFirst >= gLast {
		t.Errorf("A100 favorable median should rise with footprint: %.2f -> %.2f", gFirst, gLast)
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad cell %q", s)
	}
	return v
}

func TestFig4RowSizeTrend(t *testing.T) {
	o := fastOptions()
	o.SampleN = 0
	o.Devices = []string{"AMD-EPYC-64"}
	r := RunFig4(o)[0]
	// Small-matrix median must grow from nnz/row=5 to nnz/row=500.
	first := parseCell(t, r.Rows[0][2])
	last := parseCell(t, r.Rows[len(r.Rows)-1][2])
	if last <= first {
		t.Errorf("row-size trend wrong: %.2f -> %.2f", first, last)
	}
}

func TestFig5ImbalanceTrend(t *testing.T) {
	o := fastOptions()
	o.SampleN = 0
	o.Devices = []string{"Alveo-U280"}
	r := RunFig5(o)[0]
	first := parseCell(t, r.Rows[0][4]) // large matrices, skew 0
	last := parseCell(t, r.Rows[len(r.Rows)-1][4])
	if first <= last {
		t.Errorf("FPGA skew trend wrong: %.2f -> %.2f (imbalance should hurt)", first, last)
	}
}

func TestFig6RegularityGrid(t *testing.T) {
	o := fastOptions()
	o.SampleN = 0
	o.Devices = []string{"Tesla-A100"}
	r := RunFig6(o)[0]
	if len(r.Rows) == 0 || len(r.Rows) > 9 {
		t.Fatalf("fig6 rows = %d", len(r.Rows))
	}
	// Regular (LL) large matrices beat irregular (SS) large ones on the
	// GPU at the lower quartile — the paper's "boxplot shrinks upwards".
	var ssQ1, llQ1 float64
	for _, row := range r.Rows {
		if row[0] == "S" && row[1] == "S" {
			ssQ1 = parseCell(t, row[6])
		}
		if row[0] == "L" && row[1] == "L" {
			llQ1 = parseCell(t, row[6])
		}
	}
	if llQ1 < ssQ1*1.3 {
		t.Errorf("GPU large: LL q1 %.2f should clearly beat SS q1 %.2f", llQ1, ssQ1)
	}
}

func TestFig7NoUniversalWinner(t *testing.T) {
	o := fastOptions()
	reports := RunFig7(o)
	if len(reports) != 9 {
		t.Fatalf("fig7 reports = %d", len(reports))
	}
	for _, r := range reports {
		if len(r.Rows) < 2 {
			continue // single-format devices can have a universal winner
		}
		total := 0.0
		max := 0.0
		for _, row := range r.Rows {
			w := parsePct(t, row[1])
			total += w
			if w > max {
				max = w
			}
		}
		if total < 99 || total > 101 {
			t.Errorf("%s: wins sum to %.1f%%", r.Title, total)
		}
		if max > 95 {
			t.Errorf("%s: one format wins %.1f%% — paper finds no universal winner", r.Title, max)
		}
	}
}

func TestFig8TrendStableAcrossDatasetSizes(t *testing.T) {
	o := fastOptions()
	o.SampleN = 1000
	r := RunFig8(o)[0]
	if len(r.Rows) != 3*len(footprintBuckets) {
		t.Fatalf("fig8 rows = %d", len(r.Rows))
	}
	// Within every dataset size, the 4-32MB median beats the 512-2048MB
	// median on the CPU — the trend the ablation shows is size-invariant.
	for i := 0; i < 3; i++ {
		smallMed := parseCell(t, r.Rows[i*len(footprintBuckets)][5])
		largeMed := parseCell(t, r.Rows[i*len(footprintBuckets)+3][5])
		if smallMed <= largeMed {
			t.Errorf("dataset %s: footprint trend inverted (%.2f vs %.2f)",
				r.Rows[i*4][0], smallMed, largeMed)
		}
	}
}

func TestFig9RegularityEvolution(t *testing.T) {
	o := fastOptions()
	o.SampleN = 0
	r := RunFig9(o)[0]
	if len(r.Rows) == 0 {
		t.Fatal("fig9 empty")
	}
	if len(r.Notes) < 1 {
		t.Error("fig9 should report the improvement ratios")
	}
	// Every row must have 3 class labels + one median per neigh value.
	for _, row := range r.Rows {
		if len(row) != 3+len(dataset.NeighValues) {
			t.Fatalf("fig9 row width %d", len(row))
		}
	}
}

func TestNativeExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("native kernels are slow in -short mode")
	}
	o := fastOptions()
	o.SampleN = 4
	o.Workers = 2
	reports := RunNative(o)
	if len(reports) != 1 || len(reports[0].Rows) == 0 {
		t.Fatal("native experiment produced nothing")
	}
	for _, row := range reports[0].Rows {
		if parseCell(t, row[4]) <= 0 {
			t.Errorf("format %s: nonpositive median GFLOPS", row[0])
		}
	}
}

func TestShardReport(t *testing.T) {
	r := ShardReport()
	if r.ID != "shards" || len(r.Header) != 6 {
		t.Fatalf("shard report shape: id=%q header=%v", r.ID, r.Header)
	}
	if len(r.Rows) < 1 {
		t.Fatal("shard report has no shard rows")
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("shard row width %d, want %d", len(row), len(r.Header))
		}
	}
	if len(r.Notes) < 2 {
		t.Fatalf("shard report notes missing: %v", r.Notes)
	}
}
