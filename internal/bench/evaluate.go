package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
)

// Options configures an experiment run.
type Options struct {
	Dataset dataset.Size
	SampleN int      // subsample the grid to ~N points (0: full grid)
	Seed    int64    // sampling and generator seed
	Devices []string // restrict to these testbeds (nil: all nine)
	Workers int      // native engine worker count (0: GOMAXPROCS)
	RHS     int      // right-hand sides for the spmm/select experiments (0: DefaultRHS)
	Format  string   // restrict the native experiment to one format; "auto" selects per matrix
}

// DefaultOptions runs the full medium (16200-point) dataset on all devices,
// the paper's configuration.
func DefaultOptions() Options {
	return Options{Dataset: dataset.Medium, Seed: 1}
}

func (o Options) devices() []device.Spec {
	if len(o.Devices) == 0 {
		return device.Testbeds()
	}
	var out []device.Spec
	for _, name := range o.Devices {
		if s, ok := device.ByName(name); ok {
			out = append(out, s)
		}
	}
	return out
}

func (o Options) points() []core.FeatureVector {
	if o.SampleN > 0 {
		return o.Dataset.Sample(o.SampleN, o.Seed)
	}
	return o.Dataset.Grid()
}

// Measurement is one evaluated configuration: the best feasible format for
// a matrix on a device (the paper reports best-among-formats).
type Measurement struct {
	FV     core.FeatureVector
	Format string
	device.Result
}

// EvaluateBest computes the best-format measurement for every dataset point
// on the device. Points where no format is feasible are skipped, mirroring
// the paper's missing FPGA entries.
func EvaluateBest(spec device.Spec, points []core.FeatureVector) []Measurement {
	out := make([]Measurement, 0, len(points))
	for _, fv := range points {
		name, res, ok := spec.BestFormat(fv)
		if !ok {
			continue
		}
		out = append(out, Measurement{FV: fv, Format: name, Result: res})
	}
	return out
}

// EvaluateAllFormats computes per-format results for every point: a map
// from format name to the GFLOPS series (aligned with feasible points), and
// per-point win maps for stats.Winners.
func EvaluateAllFormats(spec device.Spec, points []core.FeatureVector) (series map[string][]float64, perPoint []map[string]float64) {
	series = make(map[string][]float64, len(spec.Formats))
	perPoint = make([]map[string]float64, 0, len(points))
	for _, fv := range points {
		sample := map[string]float64{}
		for _, f := range spec.Formats {
			r := spec.Estimate(fv, f)
			if !r.Feasible {
				continue
			}
			sample[f] = r.GFLOPS
			series[f] = append(series[f], r.GFLOPS)
		}
		perPoint = append(perPoint, sample)
	}
	return series, perPoint
}

// gflopsOf extracts the GFLOPS series from measurements.
func gflopsOf(ms []Measurement) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.GFLOPS
	}
	return out
}

// effOf extracts the GFLOPS/W series from measurements.
func effOf(ms []Measurement) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.GFLOPSPerWatt()
	}
	return out
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) []*Report
}

// Experiments returns all experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Testbed characteristics (Table II)", RunTable2},
		{"table3", "Validation suite features (Table III)", RunTable3},
		{"fig1", "Validation of artificial matrices vs rooflines (Fig 1)", RunFig1},
		{"table4", "Validation MAPE / APE-best per device (Table IV)", RunTable4},
		{"fig2", "Cross-device performance and energy efficiency (Fig 2)", RunFig2},
		{"fig3", "Impact of memory footprint (Fig 3)", RunFig3},
		{"fig4", "Impact of row size (Fig 4)", RunFig4},
		{"fig5", "Impact of imbalance (Fig 5)", RunFig5},
		{"fig6", "Impact of regularity (Fig 6)", RunFig6},
		{"fig7", "Format comparison and win rates (Fig 7)", RunFig7},
		{"fig8", "Dataset-size ablation on AMD-EPYC-24 (Fig 8)", RunFig8},
		{"fig9", "Regularity evolution under fixed features (Fig 9)", RunFig9},
		{"native", "Native-engine format comparison on this host", RunNative},
		{"spmm", "Fused multi-vector SpMV (SpMM) vs sequential baseline", RunSpMM},
		{"simd", "SIMD dispatch tiers: scalar vs AVX2 vs AVX-512", RunSIMD},
		{"select", "Auto format selection vs exhaustive search (retained performance)", RunSelect},
		{"update", "Updatable overlay overhead and compaction timings", RunUpdate},
		{"serve", "Batch-coalesced serving vs per-request dispatch", RunServe},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// fmtG formats a GFLOPS value compactly.
func fmtG(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtPct formats a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// sortedKeys returns map keys in sorted order for stable reports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
