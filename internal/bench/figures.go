package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/stats"
)

// deviceByName resolves a testbed name, keeping figure code terse.
func deviceByName(name string) (device.Spec, bool) { return device.ByName(name) }

// splitMB is the small/large matrix split used by Figs 4-6 for all devices.
const splitMB = 256.0

// footprintBuckets are the Fig 3 x-axis groups.
var footprintBuckets = [][2]float64{{4, 32}, {32, 128}, {128, 512}, {512, 2048}}

func bucketLabel(b [2]float64) string { return fmt.Sprintf("%g-%gMB", b[0], b[1]) }

// favorable reports whether the point has intuitively favorable values for
// the three features other than footprint (regular, balanced, long rows) —
// the dark boxplots of Fig 3.
func favorable(fv core.FeatureVector) bool {
	return fv.SkewCoeff == 0 && fv.AvgNNZPerRow >= 50 &&
		fv.CrossRowSim >= 0.5 && fv.AvgNumNeigh >= 0.95
}

// RunFig2 reproduces Fig. 2: per-device distributions of best-format
// performance (2a) and energy efficiency (2b) over the artificial dataset.
func RunFig2(o Options) []*Report {
	perf := &Report{ID: "fig2", Title: "Performance per device (Fig 2a, GFLOPS)",
		Header: []string{"device", "n", "min", "q1", "median", "q3", "max", "boxplot [0..max]"}}
	eff := &Report{ID: "fig2", Title: "Energy efficiency per device (Fig 2b, GFLOPS/W)",
		Header: []string{"device", "n", "min", "q1", "median", "q3", "max"}}
	points := o.points()
	maxPerf := 0.0
	type row struct {
		name   string
		ps, es stats.Summary
	}
	var rows []row
	for _, spec := range o.devices() {
		ms := EvaluateBest(spec, points)
		ps := stats.Summarize(gflopsOf(ms))
		es := stats.Summarize(effOf(ms))
		if ps.Max > maxPerf {
			maxPerf = ps.Max
		}
		rows = append(rows, row{spec.Name, ps, es})
	}
	for _, rw := range rows {
		perf.AddRow(rw.name, fmt.Sprintf("%d", rw.ps.N),
			fmtG(rw.ps.Min), fmtG(rw.ps.Q1), fmtG(rw.ps.Median), fmtG(rw.ps.Q3), fmtG(rw.ps.Max),
			stats.Boxplot(rw.ps, 0, maxPerf, 32))
		eff.AddRow(rw.name, fmt.Sprintf("%d", rw.es.N),
			fmt.Sprintf("%.4f", rw.es.Min), fmt.Sprintf("%.4f", rw.es.Q1),
			fmt.Sprintf("%.4f", rw.es.Median), fmt.Sprintf("%.4f", rw.es.Q3),
			fmt.Sprintf("%.4f", rw.es.Max))
	}
	perf.AddNote("paper takeaway 2: GPUs keep the performance lead; large CPUs are a solid alternative")
	eff.AddNote("paper takeaway 3: Alveo-U280 most energy-efficient, then high-performance GPUs and ARM")
	return []*Report{perf, eff}
}

// RunFig3 reproduces Fig. 3: impact of memory footprint, with all-matrices
// (light) and favorable-featured (dark) distributions per device.
func RunFig3(o Options) []*Report {
	devices := o.Devices
	if devices == nil {
		devices = []string{"Tesla-A100", "AMD-EPYC-64", "Alveo-U280"}
	}
	points := o.points()
	var reports []*Report
	for _, dev := range devices {
		spec, ok := deviceByName(dev)
		if !ok {
			continue
		}
		r := &Report{ID: "fig3", Title: "Footprint impact on " + spec.Name,
			Header: []string{"footprint", "n(all)", "median(all)", "q3(all)", "n(fav)", "median(fav)", "max(fav)"}}
		ms := EvaluateBest(spec, points)
		for _, b := range footprintBuckets {
			var all, fav []float64
			for _, m := range ms {
				if m.FV.MemFootprintMB < b[0] || m.FV.MemFootprintMB >= b[1] {
					continue
				}
				all = append(all, m.GFLOPS)
				if favorable(m.FV) {
					fav = append(fav, m.GFLOPS)
				}
			}
			sa, sf := stats.Summarize(all), stats.Summarize(fav)
			r.AddRow(bucketLabel(b), fmt.Sprintf("%d", sa.N), fmtG(sa.Median), fmtG(sa.Q3),
				fmt.Sprintf("%d", sf.N), fmtG(sf.Median), fmtG(sf.Max))
		}
		addCliffNote(r, ms, spec.Name)
		reports = append(reports, r)
	}
	return reports
}

func addCliffNote(r *Report, ms []Measurement, dev string) {
	var smallFav, largeFav []float64
	for _, m := range ms {
		if !favorable(m.FV) {
			continue
		}
		if m.FV.MemFootprintMB < 128 {
			smallFav = append(smallFav, m.GFLOPS)
		} else if m.FV.MemFootprintMB >= 512 {
			largeFav = append(largeFav, m.GFLOPS)
		}
	}
	s, l := stats.Median(smallFav), stats.Median(largeFav)
	if s > 0 && l > 0 {
		if s > l {
			r.AddNote("%s: small/large favorable median ratio %.2fx", dev, s/l)
		} else {
			r.AddNote("%s: large/small favorable median ratio %.2fx", dev, l/s)
		}
	}
}

// RunFig4 reproduces Fig. 4: impact of row size, split at 256 MB.
func RunFig4(o Options) []*Report {
	return featureSweep(o, "fig4", "Row-size impact", func(fv core.FeatureVector) (string, bool) {
		return fmt.Sprintf("nnz/row=%g", fv.AvgNNZPerRow), true
	}, dataset.AvgNNZValues, "nnz/row=%g")
}

// RunFig5 reproduces Fig. 5: impact of imbalance (skew), split at 256 MB.
func RunFig5(o Options) []*Report {
	return featureSweep(o, "fig5", "Imbalance impact", func(fv core.FeatureVector) (string, bool) {
		return fmt.Sprintf("skew=%g", fv.SkewCoeff), true
	}, dataset.SkewValues, "skew=%g")
}

// featureSweep renders per-device small/large summaries for each value of
// one swept feature.
func featureSweep(o Options, id, title string, keyOf func(core.FeatureVector) (string, bool), values []float64, keyFmt string) []*Report {
	devices := o.Devices
	if devices == nil {
		devices = []string{"Tesla-A100", "AMD-EPYC-64", "Alveo-U280"}
	}
	points := o.points()
	var reports []*Report
	for _, dev := range devices {
		spec, ok := deviceByName(dev)
		if !ok {
			continue
		}
		r := &Report{ID: id, Title: title + " on " + spec.Name,
			Header: []string{"value", "n(small)", "med(small)", "n(large)", "med(large)"}}
		ms := EvaluateBest(spec, points)
		small := map[string][]float64{}
		large := map[string][]float64{}
		for _, m := range ms {
			key, use := keyOf(m.FV)
			if !use {
				continue
			}
			if m.FV.MemFootprintMB < splitMB {
				small[key] = append(small[key], m.GFLOPS)
			} else {
				large[key] = append(large[key], m.GFLOPS)
			}
		}
		for _, v := range values {
			key := fmt.Sprintf(keyFmt, v)
			ss, ls := stats.Summarize(small[key]), stats.Summarize(large[key])
			r.AddRow(key, fmt.Sprintf("%d", ss.N), fmtG(ss.Median),
				fmt.Sprintf("%d", ls.N), fmtG(ls.Median))
		}
		addSweepGapNote(r, small, large, values, keyFmt, spec.Name)
		reports = append(reports, r)
	}
	return reports
}

func addSweepGapNote(r *Report, small, large map[string][]float64, values []float64, keyFmt, dev string) {
	first := fmt.Sprintf(keyFmt, values[0])
	last := fmt.Sprintf(keyFmt, values[len(values)-1])
	for side, m := range map[string]map[string][]float64{"small": small, "large": large} {
		a, b := stats.Median(m[first]), stats.Median(m[last])
		if a > 0 && b > 0 {
			r.AddNote("%s %s: median %s %s -> %s %s (%.2fx)",
				dev, side, first, fmtG(a), last, fmtG(b), b/a)
		}
	}
}

// RunFig6 reproduces Fig. 6: impact of regularity as an SML x SML grid of
// the two locality subfeatures, split small/large.
func RunFig6(o Options) []*Report {
	devices := o.Devices
	if devices == nil {
		devices = []string{"Tesla-A100", "AMD-EPYC-64", "Alveo-U280"}
	}
	points := o.points()
	var reports []*Report
	for _, dev := range devices {
		spec, ok := deviceByName(dev)
		if !ok {
			continue
		}
		r := &Report{ID: "fig6", Title: "Regularity impact on " + spec.Name,
			Header: []string{"neigh class", "sim class", "n(small)", "q1(small)", "med(small)", "n(large)", "q1(large)", "med(large)"}}
		ms := EvaluateBest(spec, points)
		type cell struct{ small, large []float64 }
		grid := map[string]*cell{}
		for _, m := range ms {
			key := m.FV.RegularityLabel()
			c := grid[key]
			if c == nil {
				c = &cell{}
				grid[key] = c
			}
			if m.FV.MemFootprintMB < splitMB {
				c.small = append(c.small, m.GFLOPS)
			} else {
				c.large = append(c.large, m.GFLOPS)
			}
		}
		for _, nc := range []string{"S", "M", "L"} {
			for _, sc := range []string{"S", "M", "L"} {
				c := grid[nc+sc]
				if c == nil {
					continue
				}
				ss, ls := stats.Summarize(c.small), stats.Summarize(c.large)
				r.AddRow(nc, sc,
					fmt.Sprintf("%d", ss.N), fmtG(ss.Q1), fmtG(ss.Median),
					fmt.Sprintf("%d", ls.N), fmtG(ls.Q1), fmtG(ls.Median))
			}
		}
		// The paper: "the more regular the matrix, the more robust the
		// performance (boxplot shrinks upwards)" — a lower-quartile effect;
		// band-resident configurations keep the medians close.
		if ss, ll := grid["SS"], grid["LL"]; ss != nil && ll != nil {
			a := stats.Summarize(ss.large)
			b := stats.Summarize(ll.large)
			if a.Q1 > 0 {
				r.AddNote("%s large: regular(LL)/irregular(SS) q1 ratio %.2fx", spec.Name, b.Q1/a.Q1)
			}
		}
		reports = append(reports, r)
	}
	return reports
}

// RunFig7 reproduces Fig. 7: per-format performance distributions and the
// share of matrices each format wins, per device.
func RunFig7(o Options) []*Report {
	points := o.points()
	var reports []*Report
	for _, spec := range o.devices() {
		r := &Report{ID: "fig7", Title: "Format comparison on " + spec.Name,
			Header: []string{"format", "wins", "n", "q1", "median", "q3", "max"}}
		series, perPoint := EvaluateAllFormats(spec, points)
		wins := stats.Winners(perPoint)
		for _, f := range spec.Formats {
			s := stats.Summarize(series[f])
			r.AddRow(f, fmtPct(wins[f]), fmt.Sprintf("%d", s.N),
				fmtG(s.Q1), fmtG(s.Median), fmtG(s.Q3), fmtG(s.Max))
		}
		r.AddNote("paper takeaway 6: no format wins everywhere")
		reports = append(reports, r)
	}
	return reports
}

// RunFig8 reproduces Fig. 8: the dataset-size ablation on AMD-EPYC-24 —
// the small (~3K), medium (16200) and large (27000) grids must show the
// same footprint trend.
func RunFig8(o Options) []*Report {
	spec, ok := deviceByName("AMD-EPYC-24")
	if !ok {
		return nil
	}
	r := &Report{ID: "fig8", Title: "Dataset-size ablation on AMD-EPYC-24",
		Header: []string{"dataset", "points", "footprint", "n", "q1", "median", "q3"}}
	for _, size := range []dataset.Size{dataset.Small, dataset.Medium, dataset.Large} {
		opts := o
		opts.Dataset = size
		points := opts.points()
		ms := EvaluateBest(spec, points)
		for _, b := range footprintBuckets {
			var vals []float64
			for _, m := range ms {
				if m.FV.MemFootprintMB >= b[0] && m.FV.MemFootprintMB < b[1] {
					vals = append(vals, m.GFLOPS)
				}
			}
			s := stats.Summarize(vals)
			r.AddRow(size.String(), fmt.Sprintf("%d", len(points)), bucketLabel(b),
				fmt.Sprintf("%d", s.N), fmtG(s.Q1), fmtG(s.Median), fmtG(s.Q3))
		}
	}
	r.AddNote("paper: growing the dataset beyond the medium size does not change the trend")
	return []*Report{r}
}

// RunFig9 reproduces Fig. 9: on AMD-EPYC-24, performance as the
// avg-num-neighbors subfeature grows, for fixed S/M/L classes of the other
// three features.
func RunFig9(o Options) []*Report {
	spec, ok := deviceByName("AMD-EPYC-24")
	if !ok {
		return nil
	}
	points := o.points()
	ms := EvaluateBest(spec, points)
	r := &Report{ID: "fig9", Title: "Regularity evolution on AMD-EPYC-24 (median GFLOPS per neigh value)",
		Header: append([]string{"footprint", "rows", "skew"}, neighHeaders()...)}

	type comboKey struct{ fp, avg, skew string }
	groups := map[comboKey]map[float64][]float64{}
	for _, m := range ms {
		key := comboKey{fpClass(m.FV), avgClass(m.FV), skewClass(m.FV)}
		if groups[key] == nil {
			groups[key] = map[float64][]float64{}
		}
		groups[key][m.FV.AvgNumNeigh] = append(groups[key][m.FV.AvgNumNeigh], m.GFLOPS)
	}
	classes := []string{"S", "M", "L"}
	bestGain, worstPeak := 0.0, 1e300
	peak := 0.0
	for _, g := range groups {
		for _, vals := range g {
			if m := stats.Median(vals); m > peak {
				peak = m
			}
		}
	}
	for _, fp := range classes {
		for _, avg := range classes {
			for _, sk := range classes {
				g := groups[comboKey{fp, avg, sk}]
				if g == nil {
					continue
				}
				row := []string{fp, avg, sk}
				var first, last float64
				for i, nv := range dataset.NeighValues {
					med := stats.Median(g[nv])
					row = append(row, fmtG(med))
					if i == 0 {
						first = med
					}
					last = med
				}
				r.AddRow(row...)
				goodFixed := fp != "L" && avg != "S" && sk == "S"
				if goodFixed && first > 0 && last/first > bestGain {
					bestGain = last / first
				}
				badFixed := fp == "L" && avg == "S" && sk == "L"
				if badFixed {
					var max float64
					for _, nv := range dataset.NeighValues {
						if m := stats.Median(g[nv]); m > max {
							max = m
						}
					}
					if max < worstPeak {
						worstPeak = max
					}
				}
			}
		}
	}
	if bestGain > 0 {
		r.AddNote("good fixed features: growing neighbors improves median by up to %.2fx (paper: ~1.6x)", bestGain)
	}
	if worstPeak < 1e300 && peak > 0 {
		r.AddNote("bad fixed features: best median reaches only %.0f%% of overall peak (paper: <=40%%)", worstPeak/peak*100)
	}
	return []*Report{r}
}

func neighHeaders() []string {
	var out []string
	for _, v := range dataset.NeighValues {
		out = append(out, fmt.Sprintf("neigh=%g", v))
	}
	return out
}

// Feature-class helpers for Fig 9, splitting each fixed feature's grid
// values into three ranges.
func fpClass(fv core.FeatureVector) string {
	switch {
	case fv.MemFootprintMB < 32:
		return "S"
	case fv.MemFootprintMB < 512:
		return "M"
	default:
		return "L"
	}
}

func avgClass(fv core.FeatureVector) string {
	switch {
	case fv.AvgNNZPerRow <= 10:
		return "S"
	case fv.AvgNNZPerRow <= 50:
		return "M"
	default:
		return "L"
	}
}

func skewClass(fv core.FeatureVector) string {
	switch {
	case fv.SkewCoeff == 0:
		return "S"
	case fv.SkewCoeff <= 100:
		return "M"
	default:
		return "L"
	}
}
