package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/selector"
	"repro/internal/stats"
	"repro/internal/topo"
)

// NativeScaleMB is the footprint the native experiment scales matrices to
// fit within; real kernels on the host cannot reasonably allocate the
// paper's 2 GiB matrices in a test environment.
const NativeScaleMB = 24.0

// RunNative measures real format kernels (not models) on the host CPU over
// a scaled-down feature grid, producing the Fig 7-style per-format summary
// with actual wall-clock GFLOPS. This is the measurement path the paper
// used on its CPU testbeds, at reduced scale. Options.Format restricts the
// sweep to one format; the special name "auto" runs the selection
// subsystem per matrix, so the report shows what the auto path actually
// delivers (per-pick, under the Auto[...] names).
func RunNative(o Options) []*Report {
	points := nativePoints(o)
	engine := device.NativeEngine{Workers: o.Workers, Iterations: 8}
	series := map[string][]float64{}
	var perPoint []map[string]float64
	built := 0
	for i, fv := range points {
		p := gen.FromFeatures(fv, o.Seed+int64(i))
		m, err := gen.Generate(p)
		if err != nil {
			continue
		}
		built++
		sample := map[string]float64{}
		for _, res := range nativeResults(engine, m, o) {
			if res.BuildErr != nil || res.GFLOPS <= 0 {
				continue
			}
			sample[res.Format] = res.GFLOPS
			series[res.Format] = append(series[res.Format], res.GFLOPS)
		}
		perPoint = append(perPoint, sample)
	}
	wins := stats.Winners(perPoint)
	r := &Report{ID: "native", Title: fmt.Sprintf("Native host kernels over %d generated matrices (scaled to <=%gMB)", built, NativeScaleMB),
		Header: []string{"format", "wins", "n", "q1", "median", "q3", "max"}}
	for _, f := range sortedKeys(series) {
		s := stats.Summarize(series[f])
		r.AddRow(f, fmtPct(wins[f]), fmt.Sprintf("%d", s.N),
			fmtG(s.Q1), fmtG(s.Median), fmtG(s.Q3), fmtG(s.Max))
	}
	r.AddNote("measured wall-clock GFLOPS with up to %d workers; absolute values depend on this host", engine.EffectiveWorkers())
	r.AddNote("execution engine: %d pool shard(s) over %d topology domain(s); see the shards report for per-shard dispatch",
		topo.Shards(), topo.NumDomains())
	return []*Report{r}
}

// ShardReport snapshots the execution engine's per-shard dispatch counters
// as a report, the observability surface `spmv-bench` appends to its table
// and -json output: which shard served how many dispatches, how many calls
// gang-scheduled across shards, cumulative busy wall time per shard, and
// how often every shard was busy and a call fell back to spawned
// goroutines.
func ShardReport() *Report {
	st := exec.Stats()
	r := &Report{
		ID:     "shards",
		Title:  fmt.Sprintf("Execution engine dispatch over %d pool shard(s)", len(st.Shards)),
		Header: []string{"shard", "domain", "workers", "runs", "gang_runs", "busy_s"},
	}
	for _, s := range st.Shards {
		r.AddRow(fmt.Sprintf("%d", s.Shard), fmt.Sprintf("%d", s.Domain),
			fmt.Sprintf("%d", s.Workers), fmt.Sprintf("%d", s.Runs),
			fmt.Sprintf("%d", s.GangRuns), fmt.Sprintf("%.4f", s.Busy.Seconds()))
	}
	r.AddNote("topology: %d domain(s); shard count resolves SetShards > SPMV_SHARDS > detected domains",
		topo.NumDomains())
	r.AddNote("spawn fallbacks (dispatches that found every shard busy): %d", st.SpawnFallbacks)
	return r
}

// nativeResults measures the formats Options.Format selects on one matrix:
// everything in the registry by default, one named format, or — with
// "auto" — the single format the selection subsystem picks for this
// matrix, reported under its Auto[...] name.
func nativeResults(engine device.NativeEngine, m *matrix.CSR, o Options) []device.NativeResult {
	switch o.Format {
	case "":
		return engine.RunAll(m)
	case "auto":
		// The native experiment times single-vector SpMV, so the selector
		// must target k = 1 regardless of Options.RHS — measuring a k = 8
		// pick at k = 1 would misreport both. The k-regime auto path is
		// measured by the select experiment and `spmv-run -format auto -rhs`.
		af, err := selector.BuildAuto(m, selector.AutoOptions{K: 1, Probe: true})
		if err != nil {
			return []device.NativeResult{{Format: "auto", BuildErr: err}}
		}
		return []device.NativeResult{engine.Run(m, formats.Builder{
			Name:  af.Name(),
			Build: func(*matrix.CSR) (formats.Format, error) { return af, nil },
		})}
	default:
		b, ok := formats.Lookup(o.Format)
		if !ok {
			return []device.NativeResult{{Format: o.Format, BuildErr: fmt.Errorf("unknown format %q", o.Format)}}
		}
		return []device.NativeResult{engine.Run(m, b)}
	}
}

// nativePoints picks a small diverse feature sample and scales footprints
// down to NativeScaleMB so real matrices stay allocatable.
func nativePoints(o Options) []core.FeatureVector {
	n := o.SampleN
	if n <= 0 {
		n = 24
	}
	raw := o.Dataset.Sample(n, o.Seed)
	out := make([]core.FeatureVector, 0, len(raw))
	for _, fv := range raw {
		if fv.MemFootprintMB > NativeScaleMB {
			fv = fv.Scale(NativeScaleMB / fv.MemFootprintMB)
			fv.MemFootprintMB = NativeScaleMB
		}
		// Infeasible skews degrade generation quality; clamp to the shape
		// bound like the generator does.
		if maxSkew := float64(fv.Cols)/fv.AvgNNZPerRow - 1; fv.SkewCoeff > maxSkew {
			fv.SkewCoeff = maxSkew
		}
		out = append(out, fv)
	}
	return out
}
