// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation section, each regenerating the corresponding
// rows/series from this reproduction's device models and datasets, plus a
// native-engine experiment that measures real kernels on the host CPU.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Report is a rendered experiment artifact: a titled table with notes.
type Report struct {
	ID     string // experiment id, e.g. "fig3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row of cells.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-text note rendered under the table.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(r.Header)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", min(120, lineWidth(widths)))); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total < 20 {
		return 20
	}
	return total
}

// WriteCSV writes the rows as CSV with the header first.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
