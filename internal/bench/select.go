package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/selector"
	"repro/internal/stats"
)

// SelectScaleMB caps the select experiment's matrix footprints: the
// experiment measures every format exhaustively per matrix and k-regime,
// so matrices stay small enough that the full sweep finishes in seconds.
const SelectScaleMB = 8.0

// selectRetainedGate is the competitive threshold from the literature
// (documented in internal/selector): Auto must retain at least this mean
// fraction of exhaustive-search performance in each k-regime.
const selectRetainedGate = 0.90

// selectMinMeasure is the per-sample wall-clock floor of the exhaustive
// measurements; lower than the spmm experiment's floor because the select
// suite times 14 formats per matrix per regime.
const selectMinMeasure = 5 * time.Millisecond

// RunSelect measures the auto-format selection subsystem end-to-end
// against exhaustive search on real host kernels: for every suite matrix
// and RHS regime k ∈ {1, rhs}, it times every buildable format natively,
// asks selector.BuildAuto (model shortlist + micro-probe) for a choice,
// and reports the performance retained by the choice relative to the
// measured best. The mean retained per regime is the subsystem's
// acceptance number (>= 0.90 is competitive with the format-selection
// literature); BENCH_select.json records it.
func RunSelect(o Options) []*Report {
	rhs := o.RHS
	if rhs < 2 {
		rhs = DefaultRHS
	}
	ks := []int{1, rhs}
	points := selectPoints(o)
	exec.Prestart()

	r := &Report{
		ID:    "select",
		Title: fmt.Sprintf("Auto format selection vs exhaustive search over %d matrices, k in {1, %d}", len(points), rhs),
		Header: []string{"matrix", "k", "model_pick", "auto_pick", "best_measured",
			"retained_model", "retained_auto", "probed"},
	}
	retainedAuto := map[int][]float64{}
	retainedModel := map[int][]float64{}
	dc := cache.NewDecisionCache() // private cache: one decision per (matrix, k)
	built := 0
	for i, fv := range points {
		m, err := gen.Generate(gen.FromFeatures(fv, o.Seed+int64(i)))
		if err != nil {
			continue
		}
		built++
		for _, k := range ks {
			perf := measureAllFormats(m, k)
			if len(perf) == 0 {
				continue
			}
			bestName, bestNs := "", math.Inf(1)
			for name, ns := range perf {
				if ns < bestNs || (ns == bestNs && name < bestName) {
					bestName, bestNs = name, ns
				}
			}
			modelAuto, err := selector.BuildAuto(m, selector.AutoOptions{K: k, NoCache: true})
			if err != nil {
				r.AddNote("matrix %d k=%d: model selection failed: %v", i, k, err)
				continue
			}
			probeAuto, err := selector.BuildAuto(m, selector.AutoOptions{K: k, Probe: true, Cache: dc})
			if err != nil {
				r.AddNote("matrix %d k=%d: probed selection failed: %v", i, k, err)
				continue
			}
			retM := retainedOf(perf, modelAuto.Chosen(), bestNs, m, k)
			retA := retainedOf(perf, probeAuto.Chosen(), bestNs, m, k)
			retainedModel[k] = append(retainedModel[k], retM)
			retainedAuto[k] = append(retainedAuto[k], retA)
			r.AddRow(fmt.Sprintf("%.0fMB nzr=%.0f skew=%.0f", fv.MemFootprintMB, fv.AvgNNZPerRow, fv.SkewCoeff),
				fmt.Sprintf("%d", k), modelAuto.Chosen(), probeAuto.Chosen(), bestName,
				fmt.Sprintf("%.3f", retM), fmt.Sprintf("%.3f", retA),
				fmt.Sprintf("%v", probeAuto.Choice().Probed))
		}
	}
	for _, k := range ks {
		if s := retainedAuto[k]; len(s) > 0 {
			verdict := "PASS"
			if stats.Mean(s) < selectRetainedGate {
				verdict = "FAIL"
			}
			r.AddNote("k=%d: Auto (shortlist+probe) mean retained %.3f (min %.3f) over %d matrices — gate >= %.2f: %s",
				k, stats.Mean(s), minOf(s), len(s), selectRetainedGate, verdict)
		}
		if s := retainedModel[k]; len(s) > 0 {
			r.AddNote("k=%d: model-only pick mean retained %.3f over %d matrices", k, stats.Mean(s), len(s))
		}
	}
	hits, misses := dc.Stats()
	r.AddNote("decision cache: %d entries, %d hits / %d misses during this run", dc.Len(), hits, misses)
	r.AddNote("method: retained = measured perf of the picked format / measured best over all buildable formats; timings are min ns/op over 2 adaptive runs (>=%v), %d workers", selectMinMeasure, exec.MaxWorkers())
	return []*Report{r}
}

// measureAllFormats times one k-wide multiply in every buildable registry
// format and returns ns/op per format name (lower is better).
func measureAllFormats(m *matrix.CSR, k int) map[string]float64 {
	workers := exec.MaxWorkers()
	x := matrix.RandomVector(m.Cols*k, 77)
	y := make([]float64, m.Rows*k)
	perf := map[string]float64{}
	for _, b := range formats.Registry() {
		f, err := b.Build(m)
		if err != nil {
			continue
		}
		run := func() {
			if k > 1 {
				f.MultiplyMany(y, x, k)
			} else {
				f.SpMVParallel(x, y, workers)
			}
		}
		run() // warm plans and scratch
		perf[b.Name] = measureNsBench(run)
	}
	return perf
}

// retainedOf scores a pick against the measured best. A pick missing from
// the exhaustive table (its build refused the full matrix during
// measurement but not selection, or vice versa) is measured on demand.
func retainedOf(perf map[string]float64, pick string, bestNs float64, m *matrix.CSR, k int) float64 {
	ns, ok := perf[pick]
	if !ok {
		single := measureAllFormatsOne(m, pick, k)
		if single <= 0 {
			return 0
		}
		ns = single
	}
	if ns <= 0 {
		return 0
	}
	return bestNs / ns
}

// measureAllFormatsOne times a single named format (0 when it cannot build).
func measureAllFormatsOne(m *matrix.CSR, name string, k int) float64 {
	b, ok := formats.Lookup(name)
	if !ok {
		return 0
	}
	f, err := b.Build(m)
	if err != nil {
		return 0
	}
	x := matrix.RandomVector(m.Cols*k, 77)
	y := make([]float64, m.Rows*k)
	workers := exec.MaxWorkers()
	run := func() {
		if k > 1 {
			f.MultiplyMany(y, x, k)
		} else {
			f.SpMVParallel(x, y, workers)
		}
	}
	run()
	return measureNsBench(run)
}

// measureNsBench is the select experiment's timing policy: min ns/op over
// 2 adaptive runs with a 5ms floor.
func measureNsBench(fn func()) float64 {
	best := math.Inf(1)
	for rep := 0; rep < 2; rep++ {
		iters := 1
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			elapsed := time.Since(start)
			if elapsed >= selectMinMeasure || iters >= 1<<22 {
				if ns := float64(elapsed.Nanoseconds()) / float64(iters); ns < best {
					best = ns
				}
				break
			}
			iters *= 2
		}
	}
	return best
}

// minOf returns the smallest value (0 for an empty slice).
func minOf(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// selectPoints picks a small diverse feature sample scaled to SelectScaleMB
// so the exhaustive per-format sweep stays fast.
func selectPoints(o Options) []core.FeatureVector {
	n := o.SampleN
	if n <= 0 {
		n = 10
	}
	raw := o.Dataset.Sample(n, o.Seed)
	out := make([]core.FeatureVector, 0, len(raw))
	for _, fv := range raw {
		if fv.MemFootprintMB > SelectScaleMB {
			fv = fv.Scale(SelectScaleMB / fv.MemFootprintMB)
			fv.MemFootprintMB = SelectScaleMB
		}
		if maxSkew := float64(fv.Cols)/fv.AvgNNZPerRow - 1; fv.SkewCoeff > maxSkew {
			fv.SkewCoeff = maxSkew
		}
		out = append(out, fv)
	}
	return out
}
