package bench

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/selector"
	"repro/internal/stats"
)

// SelectScaleMB caps the select experiment's matrix footprints: the
// experiment measures every format exhaustively per matrix and k-regime,
// so matrices stay small enough that the full sweep finishes in seconds.
const SelectScaleMB = 8.0

// selectRetainedGate is the competitive threshold from the literature
// (documented in internal/selector): Auto must retain at least this mean
// fraction of exhaustive-search performance in each k-regime.
const selectRetainedGate = 0.90

// selectMinMeasure is the per-sample wall-clock floor of the exhaustive
// measurements; lower than the spmm experiment's floor because the select
// suite times 14 formats per matrix per regime.
const selectMinMeasure = 5 * time.Millisecond

// RunSelect measures the auto-format selection subsystem end-to-end
// against exhaustive search on real host kernels: for every suite matrix
// and RHS regime k ∈ {1, rhs}, it times every buildable format natively,
// asks selector.BuildAuto for three grades of choice — model-only
// (analytical ranking alone), learned (model plus the online experience
// base fed by earlier probes in the run), and probed (micro-probe over the
// shortlist) — and reports the performance each retains relative to the
// measured best. The mean retained per regime is the subsystem's
// acceptance number (>= 0.90 is competitive with the format-selection
// literature); BENCH_select.json records it.
//
// The probed decisions journal through a disk store (SPMV_CACHE_DIR when
// set, a private temp dir otherwise); after the sweep the run simulates a
// process restart — fresh caches, same directory — and replays every
// (matrix, k) pair, asserting the warm pass reproduces each decision from
// the journal with zero micro-probes. The cold/warm columns and the probe
// counts in the notes are the persistence acceptance numbers.
func RunSelect(o Options) []*Report {
	rhs := o.RHS
	if rhs < 2 {
		rhs = DefaultRHS
	}
	ks := []int{1, rhs}
	points := selectPoints(o)
	exec.Prestart()

	// Journal location: the operator's cache dir when configured
	// (SPMV_CACHE_DIR or spmv.SetCacheDir/-cache-dir), a throwaway
	// otherwise — the restart simulation below needs a disk journal either
	// way; configuration only decides whether it outlives the run.
	dir := ""
	if cache.Configured() {
		if d, err := cache.Dir(); err == nil {
			dir = d
		}
	}
	cleanup := func() {}
	if dir == "" {
		if tmp, err := os.MkdirTemp("", "spmv-select-journal"); err == nil {
			dir = tmp
			cleanup = func() { os.RemoveAll(tmp) }
		}
	}
	defer cleanup()

	r := &Report{
		ID:    "select",
		Title: fmt.Sprintf("Auto format selection vs exhaustive search over %d matrices, k in {1, %d}", len(points), rhs),
		Header: []string{"matrix", "k", "model_pick", "learned_pick", "auto_pick", "best_measured",
			"retained_model", "retained_learned", "retained_auto", "probed", "warm_pick", "warm_cached"},
	}
	// The warm pass fills its two columns after the fact; derive the
	// indices from the header so inserting a column cannot silently write
	// warm results into the wrong one.
	warmPickCol := headerIndex(r.Header, "warm_pick")
	warmCachedCol := headerIndex(r.Header, "warm_cached")

	// Journal wiring. With persistence configured the experiment uses the
	// process-global store (selector.Persist attaches it to the global
	// decision cache and warm-loads the experience base exactly once — a
	// second private Open of the same file would replay every experience
	// twice and leave two append handles racing a compaction). With a
	// throwaway dir the store is private and closed at the end.
	dc := cache.NewDecisionCache() // one decision per (matrix, k)
	var st *cache.Store
	if cache.Configured() {
		if s, err := selector.Persist(""); err == nil {
			st = s
			dc = cache.Decisions
			if ss := st.Stats(); ss.Decisions > 0 || ss.Experiences > 0 {
				r.AddNote("journal %s: warm-started with %d decisions, %d experiences", ss.Path, ss.Decisions, ss.Experiences)
			}
		} else {
			r.AddNote("journal unavailable (%v); running memory-only", err)
		}
	} else if dir != "" {
		if s, err := cache.Open(dir); err == nil {
			st = s
			dc.AttachStore(st)
			defer func() {
				dc.AttachStore(nil)
				st.Close()
			}()
		} else {
			r.AddNote("journal unavailable (%v); running memory-only", err)
		}
	}

	type cell struct {
		fv       core.FeatureVector
		seed     int64
		k        int
		row      int
		coldPick string
	}
	var cells []cell
	retainedAuto := map[int][]float64{}
	retainedModel := map[int][]float64{}
	retainedLearned := map[int][]float64{}
	probesBefore := selector.ProbeCount()
	for i, fv := range points {
		m, err := gen.Generate(gen.FromFeatures(fv, o.Seed+int64(i)))
		if err != nil {
			continue
		}
		for _, k := range ks {
			perf := measureAllFormats(m, k)
			if len(perf) == 0 {
				continue
			}
			bestName, bestNs := "", math.Inf(1)
			for name, ns := range perf {
				if ns < bestNs || (ns == bestNs && name < bestName) {
					bestName, bestNs = name, ns
				}
			}
			modelAuto, err := selector.BuildAuto(m, selector.AutoOptions{K: k, NoCache: true, NoLearn: true})
			if err != nil {
				r.AddNote("matrix %d k=%d: model selection failed: %v", i, k, err)
				continue
			}
			// Learned grade: experience accumulated from earlier matrices'
			// probes steers the shortlist; no probe of its own. On the first
			// matrices this degenerates to the model pick — the point is
			// watching it pull ahead as the run learns.
			learnedAuto, err := selector.BuildAuto(m, selector.AutoOptions{K: k, NoCache: true})
			if err != nil {
				r.AddNote("matrix %d k=%d: learned selection failed: %v", i, k, err)
				continue
			}
			probeAuto, err := selector.BuildAuto(m, selector.AutoOptions{K: k, Probe: true, Cache: dc})
			if err != nil {
				r.AddNote("matrix %d k=%d: probed selection failed: %v", i, k, err)
				continue
			}
			retM := retainedOf(perf, modelAuto.Chosen(), bestNs, m, k)
			retL := retainedOf(perf, learnedAuto.Chosen(), bestNs, m, k)
			retA := retainedOf(perf, probeAuto.Chosen(), bestNs, m, k)
			retainedModel[k] = append(retainedModel[k], retM)
			retainedLearned[k] = append(retainedLearned[k], retL)
			retainedAuto[k] = append(retainedAuto[k], retA)
			r.AddRow(fmt.Sprintf("%.0fMB nzr=%.0f skew=%.0f", fv.MemFootprintMB, fv.AvgNNZPerRow, fv.SkewCoeff),
				fmt.Sprintf("%d", k), modelAuto.Chosen(), learnedAuto.Chosen(), probeAuto.Chosen(), bestName,
				fmt.Sprintf("%.3f", retM), fmt.Sprintf("%.3f", retL), fmt.Sprintf("%.3f", retA),
				fmt.Sprintf("%v", probeAuto.Choice().Probed), "", "")
			// The matrix itself is NOT retained (a full-grid run holds
			// hundreds): the warm pass regenerates it from (fv, seed),
			// which reproduces the identical structure and fingerprint.
			cells = append(cells, cell{fv: fv, seed: o.Seed + int64(i), k: k, row: len(r.Rows) - 1, coldPick: probeAuto.Chosen()})
		}
	}
	coldProbes := selector.ProbeCount() - probesBefore

	// Simulated restart: a fresh process would open the same journal and
	// warm-load; previously-seen keys must resolve without a single probe.
	// The journal is re-opened on a second handle into fresh caches (the
	// live store stays open — a cache hit neither probes nor appends, so
	// the handles cannot conflict) and each matrix is regenerated from its
	// (features, seed) pair, reproducing the identical fingerprint.
	warmOK := 0
	var warmProbes int64
	if st != nil {
		st2, err := cache.Open(dir)
		if err == nil {
			warmDC := cache.NewDecisionCache()
			warmDC.AttachStore(st2)
			warmBefore := selector.ProbeCount()
			for _, c := range cells {
				m, err := gen.Generate(gen.FromFeatures(c.fv, c.seed))
				if err != nil {
					continue
				}
				a, err := selector.BuildAuto(m, selector.AutoOptions{K: c.k, Probe: true, Cache: warmDC, NoLearn: true})
				if err != nil {
					continue
				}
				r.Rows[c.row][warmPickCol] = a.Chosen()
				r.Rows[c.row][warmCachedCol] = fmt.Sprintf("%v", a.Choice().Cached)
				if a.Choice().Cached && a.Chosen() == c.coldPick {
					warmOK++
				}
			}
			warmProbes = selector.ProbeCount() - warmBefore
			warmDC.AttachStore(nil)
			st2.Close()
		} else {
			r.AddNote("warm restart skipped: %v", err)
		}
	}

	for _, k := range ks {
		if s := retainedAuto[k]; len(s) > 0 {
			verdict := "PASS"
			if stats.Mean(s) < selectRetainedGate {
				verdict = "FAIL"
			}
			r.AddNote("k=%d: Auto (shortlist+probe) mean retained %.3f (min %.3f) over %d matrices — gate >= %.2f: %s",
				k, stats.Mean(s), minOf(s), len(s), selectRetainedGate, verdict)
		}
		if s := retainedModel[k]; len(s) > 0 {
			r.AddNote("k=%d: model-only pick mean retained %.3f over %d matrices", k, stats.Mean(s), len(s))
		}
		if s := retainedLearned[k]; len(s) > 0 {
			r.AddNote("k=%d: learned (model+experience) pick mean retained %.3f over %d matrices", k, stats.Mean(s), len(s))
		}
	}
	hits, misses := dc.Stats()
	r.AddNote("decision cache: %d entries, %d hits / %d misses during the cold pass; cold probes executed: %d", dc.Len(), hits, misses, coldProbes)
	if st != nil {
		r.AddNote("warm restart: %d/%d decisions reproduced from the journal, probes executed: %d", warmOK, len(cells), warmProbes)
		ss := st.Stats()
		r.AddNote("journal: %s — %d decisions / %d experiences loaded, %d appended this run", ss.Path, ss.Decisions, ss.Experiences, ss.Appended)
	}
	r.AddNote("method: retained = measured perf of the picked format / measured best over all buildable formats; timings are min ns/op over 2 adaptive runs (>=%v), %d workers", selectMinMeasure, exec.MaxWorkers())
	return []*Report{r}
}

// measureAllFormats times one k-wide multiply in every buildable registry
// format and returns ns/op per format name (lower is better).
func measureAllFormats(m *matrix.CSR, k int) map[string]float64 {
	workers := exec.MaxWorkers()
	x := matrix.RandomVector(m.Cols*k, 77)
	y := make([]float64, m.Rows*k)
	perf := map[string]float64{}
	for _, b := range formats.Registry() {
		f, err := b.Build(m)
		if err != nil {
			continue
		}
		run := func() {
			if k > 1 {
				f.MultiplyMany(y, x, k)
			} else {
				f.SpMVParallel(x, y, workers)
			}
		}
		run() // warm plans and scratch
		perf[b.Name] = measureNsBench(run)
	}
	return perf
}

// retainedOf scores a pick against the measured best. A pick missing from
// the exhaustive table (its build refused the full matrix during
// measurement but not selection, or vice versa) is measured on demand.
func retainedOf(perf map[string]float64, pick string, bestNs float64, m *matrix.CSR, k int) float64 {
	ns, ok := perf[pick]
	if !ok {
		single := measureAllFormatsOne(m, pick, k)
		if single <= 0 {
			return 0
		}
		ns = single
	}
	if ns <= 0 {
		return 0
	}
	return bestNs / ns
}

// measureAllFormatsOne times a single named format (0 when it cannot build).
func measureAllFormatsOne(m *matrix.CSR, name string, k int) float64 {
	b, ok := formats.Lookup(name)
	if !ok {
		return 0
	}
	f, err := b.Build(m)
	if err != nil {
		return 0
	}
	x := matrix.RandomVector(m.Cols*k, 77)
	y := make([]float64, m.Rows*k)
	workers := exec.MaxWorkers()
	run := func() {
		if k > 1 {
			f.MultiplyMany(y, x, k)
		} else {
			f.SpMVParallel(x, y, workers)
		}
	}
	run()
	return measureNsBench(run)
}

// measureNsBench is the select experiment's timing policy: min ns/op over
// 2 adaptive runs with a 5ms floor.
func measureNsBench(fn func()) float64 {
	best := math.Inf(1)
	for rep := 0; rep < 2; rep++ {
		iters := 1
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			elapsed := time.Since(start)
			if elapsed >= selectMinMeasure || iters >= 1<<22 {
				if ns := float64(elapsed.Nanoseconds()) / float64(iters); ns < best {
					best = ns
				}
				break
			}
			iters *= 2
		}
	}
	return best
}

// headerIndex returns the column index of name, panicking on drift
// between the header literal and the code that fills it.
func headerIndex(header []string, name string) int {
	for i, h := range header {
		if h == name {
			return i
		}
	}
	panic("bench: select header misses column " + name)
}

// minOf returns the smallest value (0 for an empty slice).
func minOf(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// selectPoints picks a small diverse feature sample scaled to SelectScaleMB
// so the exhaustive per-format sweep stays fast.
func selectPoints(o Options) []core.FeatureVector {
	n := o.SampleN
	if n <= 0 {
		n = 10
	}
	raw := o.Dataset.Sample(n, o.Seed)
	out := make([]core.FeatureVector, 0, len(raw))
	for _, fv := range raw {
		if fv.MemFootprintMB > SelectScaleMB {
			fv = fv.Scale(SelectScaleMB / fv.MemFootprintMB)
			fv.MemFootprintMB = SelectScaleMB
		}
		if maxSkew := float64(fv.Cols)/fv.AvgNNZPerRow - 1; fv.SkewCoeff > maxSkew {
			fv.SkewCoeff = maxSkew
		}
		out = append(out, fv)
	}
	return out
}
