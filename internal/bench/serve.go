package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/topo"
)

// Serving experiment shape: closed-loop concurrent clients hammering one
// hosted matrix through the batch coalescer, against the same clients on
// the direct (uncoalesced) path. The coalescer is driven in-process — no
// HTTP — so the measured ratio is the kernel-fusion win itself, not JSON
// codec overhead masking it.
const (
	serveClients  = 8 // concurrent single-vector clients, the CI gate's shape
	serveMeasure  = 300 * time.Millisecond
	serveGateTier = "medium-600k"
	serveGateMin  = 2.0 // coalesced must beat sequential by this factor
)

// serveTiers: the spmm generator tiers minus the largest (the gate is a
// throughput ratio at fixed shape, not a bandwidth sweep).
func serveTiers() []spmmTier {
	all := spmmTiers()
	return all[:2] // small-80k, medium-600k
}

// serveThroughput runs n closed-loop clients against co for the
// measurement window and returns aggregate completed requests/second.
// Every client uses its own request vector; results are checked against
// nothing here — correctness is the serve package's tests, this is the
// throughput A/B.
func serveThroughput(co *serve.Coalescer, cols int, n int, seed int64) (rps float64, meanBatch float64) {
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = matrix.RandomVector(cols, seed+int64(i))
	}
	// Warm: one round outside the window so pools and plans are hot.
	var warm sync.WaitGroup
	for i := 0; i < n; i++ {
		warm.Add(1)
		go func(i int) {
			defer warm.Done()
			co.Multiply(context.Background(), xs[i])
		}(i)
	}
	warm.Wait()

	before := co.Stats()
	var completed atomic.Uint64
	deadline := time.Now().Add(serveMeasure)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, _, err := co.Multiply(context.Background(), xs[i]); err == nil {
					completed.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	after := co.Stats()
	if db := after.Batches - before.Batches; db > 0 {
		meanBatch = float64(after.Requests-before.Requests) / float64(db)
	}
	return float64(completed.Load()) / elapsed, meanBatch
}

// RunServe measures the serving layer's batch-coalescing win: aggregate
// throughput of concurrent single-vector clients through the coalescer
// (window + fused MultiplyMany) vs the same clients on the direct path
// (each request its own parallel SpMV). The acceptance gate requires the
// coalesced path to carry at least serveGateMin times the sequential
// throughput at 8 clients on the medium tier — the "one sweep feeds k
// users" property the serving daemon exists for.
func RunServe(o Options) []*Report {
	exec.Prestart()

	r := &Report{
		ID:     "serve",
		Title:  "Batch-coalesced serving vs per-request dispatch",
		Header: []string{"tier", "clients", "seq_rps", "coal_rps", "mean_batch", "speedup"},
	}
	var gateSpeedup float64 = -1
	for _, tier := range serveTiers() {
		m, err := tier.build(o.Seed)
		if err != nil {
			r.AddNote("tier %s: matrix generation failed: %v", tier.name, err)
			continue
		}
		f := formats.NewCSR(m)

		// Sequential baseline: window 0 disables gathering; each request
		// runs its own kernel call under client concurrency.
		seq := serve.NewCoalescer(context.Background(), f, 0, 1)
		seqRPS, _ := serveThroughput(seq, m.Cols, serveClients, o.Seed+100)
		seq.Close()

		// Coalesced path: the daemon's defaults (200us window, batch 8).
		co := serve.NewCoalescer(context.Background(), f, serve.DefaultWindow, serve.DefaultMaxBatch)
		coalRPS, meanBatch := serveThroughput(co, m.Cols, serveClients, o.Seed+200)
		co.Close()

		speedup := coalRPS / seqRPS
		r.AddRow(tier.name, fmt.Sprintf("%d", serveClients),
			fmt.Sprintf("%.0f", seqRPS), fmt.Sprintf("%.0f", coalRPS),
			fmt.Sprintf("%.2f", meanBatch), fmt.Sprintf("%.2fx", speedup))
		if tier.name == serveGateTier {
			gateSpeedup = speedup
		}
	}
	if gateSpeedup >= 0 {
		verdict := "PASS"
		if gateSpeedup < serveGateMin {
			verdict = "FAIL"
		}
		r.AddNote("acceptance gate (%s, %d concurrent clients): coalesced %.2fx sequential, floor %.2fx: %s",
			serveGateTier, serveClients, gateSpeedup, serveGateMin, verdict)
	} else {
		r.AddNote("acceptance gate tier %s did not run — no verdict", serveGateTier)
	}
	r.AddNote("method: closed-loop clients for %v per side after one warm round; base format Naive-CSR both sides; coalesced side uses the daemon defaults (window %v, max batch %d)",
		serveMeasure, serve.DefaultWindow, serve.DefaultMaxBatch)
	r.AddNote("host: GOMAXPROCS=%d, %d engine shard(s) over %d topology domain(s)",
		runtime.GOMAXPROCS(0), topo.Shards(), topo.NumDomains())
	return []*Report{r}
}
