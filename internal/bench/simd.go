package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/simd"
	"repro/internal/stats"
	"repro/internal/topo"
)

// simdFormats are the formats whose hot loops run through the dispatch
// table (internal/simd); the simd experiment A/B-tests exactly these. The
// untouched formats would measure identical code on both sides.
var simdFormats = []string{"Vec-CSR", "MKL-IE", "ELL", "SELL-C-s", "BCSR"}

// RunSIMD measures every dispatched format twice on every matrix tier —
// once with the accelerated kernels live, once forced onto the scalar
// references (the SPMV_NOSIMD path) — and reports scalar/simd speedups.
// Both sides run the SAME built format, warmed plans and worker budget;
// only the kernel dispatch toggles, so the ratio isolates the micro-
// kernels. k = 1 rows exercise the single-vector gather kernels, k = 8
// rows the fused broadcast-tile SpMM kernels.
func RunSIMD(o Options) []*Report {
	r := &Report{
		ID:     "simd",
		Title:  "SIMD dispatch A/B: accelerated kernels vs scalar references",
		Header: []string{"tier", "format", "k", "scalar_ms", "simd_ms", "speedup"},
	}
	if !simd.Available() {
		r.AddNote("no accelerated kernels on this host (level %s); nothing to A/B", simd.Level())
		return []*Report{r}
	}
	prev := simd.SetEnabled(true)
	defer simd.SetEnabled(prev)
	workers := exec.MaxWorkers()
	exec.Prestart()

	tierGeo := map[string][]float64{}
	var acceptGeo []float64
	for _, tier := range spmmTiers() {
		m, err := tier.build(o.Seed)
		if err != nil {
			r.AddNote("tier %s: matrix generation failed: %v", tier.name, err)
			continue
		}
		x := matrix.RandomVector(m.Cols, o.Seed+5)
		y := make([]float64, m.Rows)
		ys := make([]float64, m.Rows)
		const kMulti = 8
		xm := matrix.RandomVector(m.Cols*kMulti, o.Seed+6)
		ym := make([]float64, m.Rows*kMulti)
		yms := make([]float64, m.Rows*kMulti)
		for _, name := range simdFormats {
			b, ok := formats.Lookup(name)
			if !ok {
				continue
			}
			simd.SetEnabled(true) // build under live dispatch (SELL-C-s chunks to the vector width)
			f, err := b.Build(m)
			if err != nil {
				continue // e.g. slab formats refusing hostile structure
			}
			// Warm both dispatch modes, then cross-check them before timing.
			f.SpMVParallel(x, y, workers)
			f.MultiplyMany(ym, xm, kMulti)
			simd.SetEnabled(false)
			f.SpMVParallel(x, ys, workers)
			f.MultiplyMany(yms, xm, kMulti)
			simd.SetEnabled(true)
			if d := maxAbsDiff(y, ys); d > 1e-8 {
				r.AddNote("tier %s %s: simd/scalar k=1 divergence %g — excluded", tier.name, name, d)
				continue
			}
			if d := maxAbsDiff(ym, yms); d > 1e-8 {
				r.AddNote("tier %s %s: simd/scalar k=%d divergence %g — excluded", tier.name, name, kMulti, d)
				continue
			}
			type run struct {
				k  int
				fn func()
			}
			for _, rn := range []run{
				{1, func() { f.SpMVParallel(x, y, workers) }},
				{kMulti, func() { f.MultiplyMany(ym, xm, kMulti) }},
			} {
				simd.SetEnabled(false)
				scalarNs := spmmMeasureNs(rn.fn)
				simd.SetEnabled(true)
				simdNs := spmmMeasureNs(rn.fn)
				speedup := scalarNs / simdNs
				r.AddRow(tier.name, name, fmt.Sprintf("%d", rn.k),
					fmt.Sprintf("%.3f", scalarNs/1e6), fmt.Sprintf("%.3f", simdNs/1e6),
					fmt.Sprintf("%.2f", speedup))
				tierGeo[tier.name] = append(tierGeo[tier.name], speedup)
				if tier.name == "medium-600k" || tier.name == "large-2M" {
					acceptGeo = append(acceptGeo, speedup)
				}
			}
		}
	}
	for _, tier := range spmmTiers() {
		if s := tierGeo[tier.name]; len(s) > 0 {
			r.AddNote("tier %s geomean speedup: %.2fx over %d (format, k) pairs",
				tier.name, stats.GeoMean(s), len(s))
		}
	}
	if len(acceptGeo) > 0 {
		r.AddNote("acceptance gate (medium-600k + large-2M, all pairs): %.2fx geomean", stats.GeoMean(acceptGeo))
	}
	r.AddNote("method: min ns/op over 3 adaptive runs (>=%v each side) on the same built format; scalar side is the SPMV_NOSIMD dispatch path", spmmMinMeasure)
	r.AddNote("dispatch: level=%s width=%d features=[%s]; host: GOMAXPROCS=%d, %d shard(s) over %d domain(s)",
		simd.InstalledLevel(), simd.Width(), strings.Join(simd.Features(), " "),
		runtime.GOMAXPROCS(0), topo.Shards(), topo.NumDomains())
	return []*Report{r}
}

// DispatchReport summarizes the runtime SIMD dispatch state: the detected
// CPU feature set and the per-kernel table. It rides along with every
// spmv-bench run the way the shard report does, so kernel numbers are
// never read without knowing which kernels produced them.
func DispatchReport() *Report {
	r := &Report{
		ID:     "dispatch",
		Title:  "SIMD kernel dispatch",
		Header: []string{"kernel", "impl"},
	}
	for _, e := range simd.Table() {
		r.AddRow(e.Kernel, e.Impl)
	}
	state := "enabled"
	if !simd.Enabled() {
		state = "disabled (scalar references)"
	}
	r.AddNote("dispatch %s: active level=%s width=%d lanes; detected features=[%s]",
		state, simd.Level(), simd.Width(), strings.Join(simd.Features(), " "))
	r.AddNote("set %s=1 (or spmv.SetSIMD(false)) to force the scalar path", simd.EnvNoSIMD)
	return r
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
