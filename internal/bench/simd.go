package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/simd"
	"repro/internal/stats"
	"repro/internal/topo"
)

// simdFormats are the formats whose hot loops run through the dispatch
// table (internal/simd); the simd experiment A/B-tests exactly these. The
// untouched formats would measure identical code on both sides.
var simdFormats = []string{"Vec-CSR", "MKL-IE", "ELL", "SELL-C-s", "BCSR"}

// RunSIMD measures every dispatched format at every dispatch tier the
// host supports — scalar references, the AVX2 kernels, and (when
// detected) the AVX-512 kernels — on every matrix tier, and reports each
// accelerated tier's speedup over scalar. All tiers run the SAME built
// format, warmed plans and worker budget; only the dispatch table swaps
// between runs, so the ratios isolate the micro-kernels. k = 1 rows
// exercise the single-vector gather kernels, k = 8 rows the fused
// broadcast-tile SpMM kernels. The acceptance note gates AVX-512 against
// AVX2: the wider tier must not regress the geomean on the medium and
// large matrix tiers (PASS/FAIL; SKIP without AVX-512 hardware).
func RunSIMD(o Options) []*Report {
	r := &Report{
		ID:     "simd",
		Title:  "SIMD dispatch tiers: scalar vs AVX2 vs AVX-512",
		Header: []string{"tier", "format", "k", "scalar_ms", "avx2_ms", "avx512_ms", "avx2_x", "avx512_x"},
	}
	if !simd.Available() {
		r.AddNote("no accelerated kernels on this host (level %s); nothing to A/B", simd.Level())
		r.AddNote("acceptance gate avx512/avx2 (medium-600k + large-2M): SKIP (no accelerated kernels)")
		return []*Report{r}
	}
	prevOn := simd.SetEnabled(true)
	prevCap := simd.SetLevel("auto")
	defer func() {
		simd.SetLevel(prevCap)
		simd.SetEnabled(prevOn)
	}()
	has512 := simd.DetectedLevel() == "avx512"
	workers := exec.MaxWorkers()
	exec.Prestart()

	tierGeo := map[string][]float64{}
	var gateGeo []float64 // avx2_ns/avx512_ns on the gated matrix tiers
	for _, tier := range spmmTiers() {
		m, err := tier.build(o.Seed)
		if err != nil {
			r.AddNote("tier %s: matrix generation failed: %v", tier.name, err)
			continue
		}
		x := matrix.RandomVector(m.Cols, o.Seed+5)
		y := make([]float64, m.Rows)
		ys := make([]float64, m.Rows)
		const kMulti = 8
		xm := matrix.RandomVector(m.Cols*kMulti, o.Seed+6)
		ym := make([]float64, m.Rows*kMulti)
		yms := make([]float64, m.Rows*kMulti)
		for _, name := range simdFormats {
			// Build under the widest dispatch so structure follows the live
			// vector width (SELL-C-s chunks to 8 lanes under AVX-512).
			simd.SetLevel("auto")
			if has512 {
				simd.SetLevel("avx512")
			}
			b, ok := formats.Lookup(name)
			if !ok {
				continue
			}
			f, err := b.Build(m)
			if err != nil {
				continue // e.g. slab formats refusing hostile structure
			}
			// Warm every dispatch tier, cross-checking each against the
			// scalar references before timing.
			simd.SetLevel("scalar")
			f.SpMVParallel(x, ys, workers)
			f.MultiplyMany(yms, xm, kMulti)
			diverged := false
			levels := []string{"avx2"}
			if has512 {
				levels = append(levels, "avx512")
			}
			for _, lvl := range levels {
				simd.SetLevel(lvl)
				f.SpMVParallel(x, y, workers)
				f.MultiplyMany(ym, xm, kMulti)
				if d := maxAbsDiff(y, ys); d > 1e-8 {
					r.AddNote("tier %s %s: %s/scalar k=1 divergence %g — excluded", tier.name, name, lvl, d)
					diverged = true
				}
				if d := maxAbsDiff(ym, yms); d > 1e-8 {
					r.AddNote("tier %s %s: %s/scalar k=%d divergence %g — excluded", tier.name, name, lvl, kMulti, d)
					diverged = true
				}
			}
			if diverged {
				continue
			}
			type run struct {
				k  int
				fn func()
			}
			for _, rn := range []run{
				{1, func() { f.SpMVParallel(x, y, workers) }},
				{kMulti, func() { f.MultiplyMany(ym, xm, kMulti) }},
			} {
				simd.SetLevel("scalar")
				scalarNs := spmmMeasureNs(rn.fn)
				simd.SetLevel("avx2")
				avx2Ns := spmmMeasureNs(rn.fn)
				avx512Ms, avx512X := "-", "-"
				if has512 {
					simd.SetLevel("avx512")
					avx512Ns := spmmMeasureNs(rn.fn)
					avx512Ms = fmt.Sprintf("%.3f", avx512Ns/1e6)
					avx512X = fmt.Sprintf("%.2f", scalarNs/avx512Ns)
					tierGeo[tier.name] = append(tierGeo[tier.name], scalarNs/avx512Ns)
					if tier.name == "medium-600k" || tier.name == "large-2M" {
						gateGeo = append(gateGeo, avx2Ns/avx512Ns)
					}
				} else {
					tierGeo[tier.name] = append(tierGeo[tier.name], scalarNs/avx2Ns)
				}
				r.AddRow(tier.name, name, fmt.Sprintf("%d", rn.k),
					fmt.Sprintf("%.3f", scalarNs/1e6), fmt.Sprintf("%.3f", avx2Ns/1e6),
					avx512Ms, fmt.Sprintf("%.2f", scalarNs/avx2Ns), avx512X)
			}
		}
	}
	widest := "avx2"
	if has512 {
		widest = "avx512"
	}
	for _, tier := range spmmTiers() {
		if s := tierGeo[tier.name]; len(s) > 0 {
			r.AddNote("tier %s geomean %s speedup over scalar: %.2fx over %d (format, k) pairs",
				tier.name, widest, stats.GeoMean(s), len(s))
		}
	}
	switch {
	case !has512:
		r.AddNote("acceptance gate avx512/avx2 (medium-600k + large-2M): SKIP (detected level %s, no AVX-512)",
			simd.DetectedLevel())
	case len(gateGeo) == 0:
		r.AddNote("acceptance gate avx512/avx2 (medium-600k + large-2M): SKIP (no gated pairs measured)")
	default:
		g := stats.GeoMean(gateGeo)
		verdict := "PASS"
		if g < 1.0 {
			verdict = "FAIL"
		}
		r.AddNote("acceptance gate avx512/avx2 (medium-600k + large-2M): %.2fx geomean over %d pairs — %s",
			g, len(gateGeo), verdict)
	}
	r.AddNote("method: min ns/op over 3 adaptive runs (>=%v each tier) on the same built format; the dispatch table swaps between runs (%s)", spmmMinMeasure, simd.EnvLevel)
	r.AddNote("dispatch: level=%s detected=%s width=%d features=[%s]; host: GOMAXPROCS=%d, %d shard(s) over %d domain(s)",
		simd.InstalledLevel(), simd.DetectedLevel(), simd.Width(), strings.Join(simd.Features(), " "),
		runtime.GOMAXPROCS(0), topo.Shards(), topo.NumDomains())
	return []*Report{r}
}

// DispatchReport summarizes the runtime SIMD dispatch state: the detected
// CPU feature set and the per-kernel table. It rides along with every
// spmv-bench run the way the shard report does, so kernel numbers are
// never read without knowing which kernels produced them.
func DispatchReport() *Report {
	r := &Report{
		ID:     "dispatch",
		Title:  "SIMD kernel dispatch",
		Header: []string{"kernel", "impl"},
	}
	for _, e := range simd.Table() {
		r.AddRow(e.Kernel, e.Impl)
	}
	state := "enabled"
	if !simd.Enabled() {
		state = "disabled (scalar references)"
	}
	r.AddNote("dispatch %s: active level=%s detected=%s width=%d lanes; detected features=[%s]",
		state, simd.Level(), simd.DetectedLevel(), simd.Width(), strings.Join(simd.Features(), " "))
	r.AddNote("set %s=1 (or spmv.SetSIMD(false)) to force the scalar path; %s=scalar|avx2|avx512 caps the tier", simd.EnvNoSIMD, simd.EnvLevel)
	return r
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
