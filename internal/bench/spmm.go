package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/stats"
	"repro/internal/topo"
)

// DefaultRHS is the right-hand-side block width the spmm experiment
// measures when none is requested: wide enough that the fused kernels'
// nonzero reuse dominates, and the width block Krylov codes commonly run.
const DefaultRHS = 8

// spmmFormats are the formats with fused multi-vector kernels; the spmm
// experiment measures exactly these (formats on the by-column fallback
// would only measure the fallback's gather/scatter overhead).
var spmmFormats = []string{"Naive-CSR", "Vec-CSR", "ELL", "SELL-C-s", "BCSR", "DIA", "COO"}

// spmmAcceptanceFormats are the kernels the perf acceptance gate tracks on
// the medium tier (see docs/BENCHMARKS.md).
var spmmAcceptanceFormats = map[string]bool{"Naive-CSR": true, "ELL": true, "SELL-C-s": true}

// spmmTier is one matrix scale of the multi-vector benchmark, mirroring
// the engine-tier micro-benchmark scales of BENCH_exec.json plus a banded
// tier on which DIA builds.
type spmmTier struct {
	name  string
	build func(seed int64) (*matrix.CSR, error)
}

func spmmTiers() []spmmTier {
	genTier := func(rows int, avg, std, skew float64) func(int64) (*matrix.CSR, error) {
		return func(seed int64) (*matrix.CSR, error) {
			return gen.Generate(gen.Params{
				Rows: rows, Cols: rows,
				AvgNNZPerRow: avg, StdNNZPerRow: std,
				SkewCoeff: skew, BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.8,
				Seed: seed,
			})
		}
	}
	return []spmmTier{
		{"small-80k", genTier(8000, 10, 3, 4)},
		{"medium-600k", genTier(40000, 15, 4, 4)},
		{"large-2M", genTier(100000, 20, 5, 4)},
		{"banded-600k", func(int64) (*matrix.CSR, error) { return matrix.Tridiagonal(200000, 2, -1), nil }},
	}
}

// spmmMinMeasure is the wall-clock floor one timing sample must reach;
// samples double their iteration count until they do.
const spmmMinMeasure = 20 * time.Millisecond

// spmmMeasureNs returns the minimum ns per fn() call over three adaptive
// timing runs — the least-noisy estimator on shared hosts (the same
// min-of-N policy BENCH_exec.json records).
func spmmMeasureNs(fn func()) float64 {
	best := math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		iters := 1
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			elapsed := time.Since(start)
			if elapsed >= spmmMinMeasure || iters >= 1<<22 {
				if ns := float64(elapsed.Nanoseconds()) / float64(iters); ns < best {
					best = ns
				}
				break
			}
			iters *= 2
		}
	}
	return best
}

// RunSpMM measures the fused MultiplyMany kernels against their baseline —
// k sequential Multiply (SpMVParallel) calls on the same engine — and
// reports the per-vector speedup: (time of k sequential calls) / (time of
// one fused k-wide call). Both sides run the same matrices, the same
// worker hint and the same warmed plans, so the ratio isolates kernel
// fusion (nonzero reuse across the k vectors) from scheduling effects.
func RunSpMM(o Options) []*Report {
	k := o.RHS
	if k < 1 {
		k = DefaultRHS
	}
	// Both sides get the full worker budget: MultiplyMany has no worker
	// parameter (it always claims exec.MaxWorkers internally), so the
	// baseline must too or the ratio would conflate parallelism with
	// fusion. Options.Workers is deliberately ignored here.
	workers := exec.MaxWorkers()
	exec.Prestart()

	r := &Report{
		ID:     "spmm",
		Title:  fmt.Sprintf("Fused multi-vector SpMV (k=%d) vs %d sequential Multiply calls", k, k),
		Header: []string{"tier", "format", "k", "seq_ms", "fused_ms", "per_vec_speedup"},
	}
	tierGeo := map[string][]float64{}
	var acceptGeo []float64
	for _, tier := range spmmTiers() {
		m, err := tier.build(o.Seed)
		if err != nil {
			r.AddNote("tier %s: matrix generation failed: %v", tier.name, err)
			continue
		}
		x := matrix.RandomVector(m.Cols*k, o.Seed+3)
		y := make([]float64, m.Rows*k)
		// Baseline inputs: the k vectors as separate contiguous arrays, the
		// shape a sequential multi-solve already holds.
		xs := make([][]float64, k)
		ys := make([][]float64, k)
		for j := 0; j < k; j++ {
			xs[j] = make([]float64, m.Cols)
			ys[j] = make([]float64, m.Rows)
			for c := 0; c < m.Cols; c++ {
				xs[j][c] = x[c*k+j]
			}
		}
		for _, name := range spmmFormats {
			b, ok := formats.Lookup(name)
			if !ok {
				continue
			}
			f, err := b.Build(m)
			if err != nil {
				continue // e.g. DIA refuses scattered matrices
			}
			// Warm plans and pools so neither side pays first-call work.
			for j := 0; j < k; j++ {
				f.SpMVParallel(xs[j], ys[j], workers)
			}
			f.MultiplyMany(y, x, k)
			// Sanity: every fused vector — including the k%4 tail lanes —
			// must match its sequential baseline before being benchmarked.
			bad := 0.0
			for rr := 0; rr < m.Rows; rr++ {
				for j := 0; j < k; j++ {
					if d := math.Abs(y[rr*k+j] - ys[j][rr]); d > bad {
						bad = d
					}
				}
			}
			if bad > 1e-8 {
				r.AddNote("tier %s %s: fused result diverges from baseline by %g — excluded", tier.name, name, bad)
				continue
			}
			seqNs := spmmMeasureNs(func() {
				for j := 0; j < k; j++ {
					f.SpMVParallel(xs[j], ys[j], workers)
				}
			})
			fusedNs := spmmMeasureNs(func() {
				f.MultiplyMany(y, x, k)
			})
			speedup := seqNs / fusedNs
			r.AddRow(tier.name, name, fmt.Sprintf("%d", k),
				fmt.Sprintf("%.3f", seqNs/1e6), fmt.Sprintf("%.3f", fusedNs/1e6),
				fmt.Sprintf("%.2f", speedup))
			tierGeo[tier.name] = append(tierGeo[tier.name], speedup)
			if tier.name == "medium-600k" && spmmAcceptanceFormats[name] {
				acceptGeo = append(acceptGeo, speedup)
			}
		}
	}
	for _, tier := range spmmTiers() {
		if s := tierGeo[tier.name]; len(s) > 0 {
			r.AddNote("tier %s geomean per-vector speedup: %.2fx over %d formats",
				tier.name, stats.GeoMean(s), len(s))
		}
	}
	if len(acceptGeo) > 0 {
		r.AddNote("acceptance gate (medium-600k, CSR/ELL/SELL-C-s): %.2fx geomean per-vector speedup", stats.GeoMean(acceptGeo))
	}
	r.AddNote("method: min ns/op over 3 adaptive runs (>=%v each side); baseline is k sequential SpMVParallel calls with warmed plans and the full worker budget (exec.MaxWorkers=%d) both sides claim, so the ratio isolates kernel fusion", spmmMinMeasure, workers)
	r.AddNote("host: GOMAXPROCS=%d, %d engine shard(s) over %d topology domain(s)",
		runtime.GOMAXPROCS(0), topo.Shards(), topo.NumDomains())
	return []*Report{r}
}
