package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/topo"
	"repro/internal/update"
)

// updateFills are the overlay fill fractions (overlay entries relative to
// base nonzeros) the update experiment measures. Zero is the sanity
// anchor: an empty overlay must cost (almost) nothing over the bare base.
var updateFills = []float64{0, 0.001, 0.01, 0.05}

// updateGateFill and updateGateRatio define the acceptance gate: at 1%
// overlay fill the fused base+delta multiply must retain at least 0.85x
// of the pure-base throughput (see docs/BENCHMARKS.md).
const (
	updateGateFill  = 0.01
	updateGateRatio = 0.85
)

// updateTiers returns the matrix scales the update experiment runs; the
// spmm generator tiers minus the largest (update overhead is a ratio, not
// a bandwidth study).
func updateTiers() []spmmTier {
	all := spmmTiers()
	return all[:2] // small-80k, medium-600k
}

// RunUpdate measures the cost of the updatable overlay: fused base+delta
// multiply throughput at increasing overlay fills, relative to the bare
// base format on the same engine, at k = 1 and k = 8 — plus the
// freeze/rebuild split of one full compaction. The overlay entries are
// random never-before-seen cells (the worst case: no base-row locality),
// applied through the public Set path so the measured state is exactly
// what a live writer produces.
func RunUpdate(o Options) []*Report {
	k := o.RHS
	if k < 1 {
		k = DefaultRHS
	}
	workers := exec.MaxWorkers()
	exec.Prestart()

	r := &Report{
		ID:     "update",
		Title:  "Updatable overlay: fused base+delta multiply vs pure base",
		Header: []string{"tier", "fill", "k", "base_ms", "fused_ms", "retained"},
	}
	var gateWorst float64 = -1
	for _, tier := range updateTiers() {
		m, err := tier.build(o.Seed)
		if err != nil {
			r.AddNote("tier %s: matrix generation failed: %v", tier.name, err)
			continue
		}
		b, _ := formats.Lookup("Naive-CSR")
		base, err := b.Build(m)
		if err != nil {
			r.AddNote("tier %s: base build failed: %v", tier.name, err)
			continue
		}
		x1 := matrix.RandomVector(m.Cols, o.Seed+3)
		y1 := make([]float64, m.Rows)
		xk := matrix.RandomVector(m.Cols*k, o.Seed+5)
		yk := make([]float64, m.Rows*k)
		base.SpMVParallel(x1, y1, workers) // warm plans/pools
		base.MultiplyMany(yk, xk, k)
		baseNs1 := spmmMeasureNs(func() { base.SpMVParallel(x1, y1, workers) })
		baseNsK := spmmMeasureNs(func() { base.MultiplyMany(yk, xk, k) })

		for _, fill := range updateFills {
			u, err := update.New(m, update.Options{Format: "Naive-CSR", NoAutoCompact: true})
			if err != nil {
				r.AddNote("tier %s: updatable build failed: %v", tier.name, err)
				continue
			}
			n := int(fill * float64(m.NNZ()))
			rng := rand.New(rand.NewSource(o.Seed + 11))
			for i := 0; i < n; i++ {
				u.Set(rng.Intn(m.Rows), rng.Intn(m.Cols), 1+float64(i%7))
			}
			u.SpMVParallel(x1, y1, workers)
			u.MultiplyMany(yk, xk, k)
			fusedNs1 := spmmMeasureNs(func() { u.SpMVParallel(x1, y1, workers) })
			fusedNsK := spmmMeasureNs(func() { u.MultiplyMany(yk, xk, k) })
			for _, row := range []struct {
				k               int
				baseNs, fusedNs float64
			}{{1, baseNs1, fusedNs1}, {k, baseNsK, fusedNsK}} {
				retained := row.baseNs / row.fusedNs
				r.AddRow(tier.name, fmt.Sprintf("%.1f%%", fill*100), fmt.Sprintf("%d", row.k),
					fmt.Sprintf("%.3f", row.baseNs/1e6), fmt.Sprintf("%.3f", row.fusedNs/1e6),
					fmt.Sprintf("%.2f", retained))
				if fill == updateGateFill && (gateWorst < 0 || retained < gateWorst) {
					gateWorst = retained
				}
			}
			if fill == updateFills[len(updateFills)-1] {
				// One full compaction on the most-filled overlay: report the
				// writer-pause (freeze) vs total (freeze+merge+rebuild) split.
				start := time.Now()
				if err := u.Compact(); err != nil {
					r.AddNote("tier %s: compaction failed: %v", tier.name, err)
					continue
				}
				st := u.Stats()
				r.AddNote("tier %s: compaction of %d overlay entries: freeze (writers paused) %.3f ms, total %.3f ms (wall %.3f ms), base now %s/%d nnz",
					tier.name, n, float64(st.LastFreezeNs)/1e6, float64(st.LastCompactNs)/1e6,
					float64(time.Since(start).Nanoseconds())/1e6, st.BaseFormat, st.BaseNNZ)
			}
		}
	}
	if gateWorst >= 0 {
		verdict := "PASS"
		if gateWorst < updateGateRatio {
			verdict = "FAIL"
		}
		r.AddNote("acceptance gate (%.0f%% fill, all tiers and k): worst retained throughput %.2fx, floor %.2fx: %s",
			updateGateFill*100, gateWorst, updateGateRatio, verdict)
	}
	r.AddNote("method: min ns/op over 3 adaptive runs (>=%v each side); base is Naive-CSR both sides; overlay entries are random new cells applied via Set (active log, the steady write-path state)", spmmMinMeasure)
	r.AddNote("host: GOMAXPROCS=%d, %d engine shard(s) over %d topology domain(s)",
		runtime.GOMAXPROCS(0), topo.Shards(), topo.NumDomains())
	return []*Report{r}
}
