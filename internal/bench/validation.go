package bench

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/stats"
)

// RunTable2 renders the encoded testbed table (Table II).
func RunTable2(o Options) []*Report {
	r := &Report{ID: "table2", Title: "Testbeds (Table II)",
		Header: []string{"device", "class", "units", "freq GHz", "LLC MB", "mem BW GB/s", "LLC BW GB/s", "TDP W", "formats"}}
	for _, s := range o.devices() {
		r.AddRow(s.Name, s.Class.String(),
			fmt.Sprintf("%d", s.Units), fmt.Sprintf("%.2f", s.FreqGHz),
			fmt.Sprintf("%d", s.LLCBytes>>20), fmt.Sprintf("%.1f", s.MemBWGBs),
			fmt.Sprintf("%.0f", s.LLCBWGBs), fmt.Sprintf("%.0f", s.TDPWatts),
			fmt.Sprintf("%v", s.Formats))
	}
	return []*Report{r}
}

// RunTable3 renders the validation-suite features (Table III).
func RunTable3(Options) []*Report {
	r := &Report{ID: "table3", Title: "Validation suite (Table III)",
		Header: []string{"id", "matrix", "f1 MB", "f2 nnz/row", "f3 skew", "f4"}}
	for _, v := range dataset.TableIII() {
		r.AddRow(fmt.Sprintf("%d", v.ID), v.Name,
			fmt.Sprintf("%.2f", v.FootprintMB), fmt.Sprintf("%.2f", v.AvgNNZ),
			fmt.Sprintf("%.2f", v.Skew), v.Regularity)
	}
	return []*Report{r}
}

// validationPerf evaluates one device over the validation suite: for each
// matrix, the best-format performance of the matrix itself and of its
// friends.
type validationPerf struct {
	matrix  dataset.ValidationMatrix
	self    float64
	friends []float64
	roofMem float64
	roofLLC float64
	ok      bool
}

func runValidation(spec device.Spec, seed int64) []validationPerf {
	suite := dataset.TableIII()
	out := make([]validationPerf, 0, len(suite))
	for _, v := range suite {
		fv := v.Features()
		vp := validationPerf{matrix: v}
		_, res, ok := spec.BestFormat(fv)
		if ok {
			vp.self = res.GFLOPS
			vp.ok = true
		}
		for _, ffv := range v.Friends(0, seed) {
			if _, fr, fok := spec.BestFormat(ffv); fok {
				vp.friends = append(vp.friends, fr.GFLOPS)
			}
		}
		roof := spec.Roof()
		vp.roofMem = roof.MemoryBound(fv)
		vp.roofLLC = roof.LLCBound(fv)
		out = append(out, vp)
	}
	return out
}

// RunFig1 reproduces Fig. 1: per device, each validation matrix against the
// performance range of its artificial friends and the roofline bounds.
// Matrices infeasible on a device (FPGA capacity) are reported as such,
// echoing the 10 matrices that failed on the paper's FPGA.
func RunFig1(o Options) []*Report {
	var reports []*Report
	for _, spec := range o.devices() {
		r := &Report{ID: "fig1", Title: "Validation vs friends on " + spec.Name,
			Header: []string{"matrix", "GFLOPS", "friends med", "friends range", "roof mem", "roof LLC", "boxplot [log lo..hi]"}}
		failed := 0
		perfs := runValidation(spec, o.Seed)
		lo, hi := plotRange(perfs)
		for _, vp := range perfs {
			if !vp.ok {
				failed++
				r.AddRow(vp.matrix.Name, "FAILED", "-", "-",
					fmtG(vp.roofMem), fmtG(vp.roofLLC), "")
				continue
			}
			s := stats.Summarize(vp.friends)
			r.AddRow(vp.matrix.Name, fmtG(vp.self), fmtG(s.Median),
				fmt.Sprintf("[%s, %s]", fmtG(s.Min), fmtG(s.Max)),
				fmtG(vp.roofMem), fmtG(vp.roofLLC),
				stats.Boxplot(s, lo, hi, 32))
		}
		if failed > 0 {
			r.AddNote("%d matrices failed to run on %s (capacity/padding limits)", failed, spec.Name)
		}
		reports = append(reports, r)
	}
	return reports
}

func plotRange(perfs []validationPerf) (lo, hi float64) {
	lo, hi = 1e300, 0
	for _, vp := range perfs {
		for _, f := range vp.friends {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
	}
	if hi <= lo {
		return 0, 1
	}
	return lo, hi
}

// RunTable4 reproduces Table IV: per device, the MAPE between each
// validation matrix and its friends' median, and the APE against its best
// friend, averaged over the suite.
func RunTable4(o Options) []*Report {
	r := &Report{ID: "table4", Title: "Validation error (Table IV)",
		Header: []string{"device", "MAPE", "APE-best", "matrices"}}
	var allMAPE, allBest []float64
	for _, spec := range o.devices() {
		var mapes, bests []float64
		for _, vp := range runValidation(spec, o.Seed) {
			if !vp.ok || len(vp.friends) == 0 {
				continue
			}
			med := stats.Median(vp.friends)
			mapes = append(mapes, stats.APE(vp.self, med))
			bests = append(bests, stats.BestAPE(vp.self, vp.friends))
		}
		m := mean(mapes)
		b := mean(bests)
		allMAPE = append(allMAPE, m)
		allBest = append(allBest, b)
		r.AddRow(spec.Name, fmtPct(m), fmtPct(b), fmt.Sprintf("%d", len(mapes)))
	}
	r.AddRow("Average", fmtPct(mean(allMAPE)), fmtPct(mean(allBest)), "")
	r.AddNote("paper: average MAPE 17.51%%, average APE-best 8.58%%")
	return []*Report{r}
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
