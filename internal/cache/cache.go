// Package cache provides the memory-hierarchy substrate for the device
// models: a trace-driven set-associative LRU cache simulator, and a closed-
// form model of the x-vector hit rate during SpMV derived from the paper's
// locality features (avg_num_neigh for spatial locality, cross_row_sim for
// temporal locality, bw_scaled for the active working-set width). The two
// are cross-validated in the package tests.
package cache

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
)

// LineBytes is the cache line granularity used throughout the models.
const LineBytes = 64

// LRU is a set-associative cache with least-recently-used replacement,
// used to simulate x-vector accesses on small matrices.
type LRU struct {
	sets   int
	ways   int
	tags   []uint64 // sets x ways, tag 0 = empty
	stamps []uint64 // LRU clocks
	clock  uint64
	hits   uint64
	misses uint64
}

// NewLRU builds a cache of the given total size and associativity with
// LineBytes lines. Size is rounded down to a whole number of sets; a
// minimum of one set is kept.
func NewLRU(sizeBytes int64, ways int) *LRU {
	if ways < 1 {
		ways = 1
	}
	sets := int(sizeBytes / int64(LineBytes*ways))
	if sets < 1 {
		sets = 1
	}
	return &LRU{
		sets:   sets,
		ways:   ways,
		tags:   make([]uint64, sets*ways),
		stamps: make([]uint64, sets*ways),
	}
}

// Access touches the given byte address and reports whether it hit.
func (c *LRU) Access(addr uint64) bool {
	line := addr / LineBytes
	set := int(line % uint64(c.sets))
	tag := line/uint64(c.sets) + 1 // +1 so tag 0 means empty
	base := set * c.ways
	c.clock++
	victim := base
	oldest := ^uint64(0)
	for w := base; w < base+c.ways; w++ {
		if c.tags[w] == tag {
			c.stamps[w] = c.clock
			c.hits++
			return true
		}
		if c.stamps[w] < oldest {
			oldest = c.stamps[w]
			victim = w
		}
	}
	c.tags[victim] = tag
	c.stamps[victim] = c.clock
	c.misses++
	return false
}

// Hits returns the number of hits so far.
func (c *LRU) Hits() uint64 { return c.hits }

// Misses returns the number of misses so far.
func (c *LRU) Misses() uint64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and counters.
func (c *LRU) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}

// String describes the geometry.
func (c *LRU) String() string {
	return fmt.Sprintf("LRU{%d sets x %d ways x %dB = %dKiB}",
		c.sets, c.ways, LineBytes, int64(c.sets)*int64(c.ways)*LineBytes/1024)
}

// SimulateXHitRate replays the x-vector access stream of one SpMV pass over
// m through a simulated cache of the given size and returns the hit rate.
// Intended for small matrices in tests and ablations.
func SimulateXHitRate(m *matrix.CSR, cacheBytes int64, ways int) float64 {
	c := NewLRU(cacheBytes, ways)
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, col := range cols {
			c.Access(uint64(col) * 8)
		}
	}
	return c.HitRate()
}

// XVectorHitRate is the closed-form counterpart of SimulateXHitRate used by
// the analytical device models, built from the paper's locality features:
//
//   - spatial: a fraction p = avg_num_neigh/2 of accesses directly follow
//     their left neighbor; 7/8 of those stay inside a 64-byte line. Random
//     placements also land in resident lines with probability given by the
//     band's line density.
//   - temporal: a fraction cross_row_sim of a row's accesses revisit the
//     previous row's columns (within distance 1), which hit if the active
//     band working set (bw_scaled*cols*8 bytes) is cache-resident.
//   - band residency: sparse matrices concentrate accesses in a band that
//     shifts slowly from row to row; while the band fits in cache, each
//     x line is cold-missed once and every later touch hits, bounding the
//     miss rate at one per 8*avg_nz_row accesses of a line.
//   - streaming: when the whole vector fits comfortably in cache, every
//     access after the cold miss hits regardless of pattern.
//
// The model composes these as independent hit opportunities and is
// cross-validated against the LRU simulator in the package tests.
func XVectorHitRate(fv core.FeatureVector, cacheBytes int64) float64 {
	if fv.NNZ == 0 || fv.Cols == 0 || cacheBytes <= 0 {
		return 0
	}
	// Residency of the active band between consecutive rows.
	band := math.Max(fv.BWScaled*float64(fv.Cols)*8, float64(LineBytes))
	residency := clamp01(float64(cacheBytes) * 0.8 / band)

	// Spatial component: run continuations stay in-line 7/8 of the time.
	p := clamp01(fv.AvgNumNeigh / 2)
	spatial := p * 7.0 / 8.0

	// Random placements hit lines already touched in the current row pass:
	// with avg nonzeros spread over band/64 lines, the chance a new access
	// lands in a touched line grows with line density.
	lines := math.Max(band/LineBytes, 1)
	density := clamp01(fv.AvgNNZPerRow / lines)
	spatial = spatial + (1-spatial)*density*residency

	// Temporal component: similar next rows rehit the previous row's lines
	// while the band stays resident.
	temporal := clamp01(fv.CrossRowSim) * residency

	// Band residency: while the active band stays in cache, each line
	// misses only on first touch — one miss per ~8*avg accesses of a line.
	bandHit := residency * (1 - 1/(8*math.Max(fv.AvgNNZPerRow, 0.125)))

	// Whole-vector streaming residency: after the first of avg row passes
	// over a resident vector, everything hits.
	whole := clamp01(float64(cacheBytes) * 0.8 / (float64(fv.Cols) * 8))
	reuse := 1 - 1/math.Max(fv.AvgNNZPerRow, 1) // cold-miss share per column
	streaming := whole * reuse

	hit := spatial + (1-spatial)*temporal
	if bandHit > hit {
		hit = bandHit
	}
	if streaming > hit {
		hit = streaming
	}
	return clamp01(hit * 0.98) // never promise a perfect cache
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
