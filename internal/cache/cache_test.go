package cache

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU(1024, 2) // 8 sets x 2 ways
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("repeat access missed")
	}
	if !c.Access(8) {
		t.Error("same-line access missed")
	}
	if c.Access(64) {
		t.Error("next-line cold access hit")
	}
	if got := c.Hits(); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := c.Misses(); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// One set, two ways: three distinct lines mapping to the same set must
	// evict the least recently used.
	c := NewLRU(LineBytes*2, 2) // 1 set x 2 ways
	c.Access(0 * LineBytes)
	c.Access(1 * LineBytes)
	c.Access(0 * LineBytes) // refresh line 0
	c.Access(2 * LineBytes) // evicts line 1
	if !c.Access(0 * LineBytes) {
		t.Error("line 0 was evicted despite being recently used")
	}
	if c.Access(1 * LineBytes) {
		t.Error("line 1 should have been evicted")
	}
}

func TestLRUResetAndString(t *testing.T) {
	c := NewLRU(4096, 4)
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("Reset did not clear counters")
	}
	if c.Access(0) {
		t.Error("Reset did not clear contents")
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
	if c.HitRate() != 0.0 {
		_ = c.HitRate()
	}
}

func TestLRUFullyAssociativeSequential(t *testing.T) {
	// Streaming through 2x the cache size yields all misses on re-traversal.
	c := NewLRU(LineBytes*16, 16)
	for pass := 0; pass < 2; pass++ {
		for line := uint64(0); line < 32; line++ {
			c.Access(line * LineBytes)
		}
	}
	if c.Hits() != 0 {
		t.Errorf("LRU streaming over 2x capacity should never hit, got %d hits", c.Hits())
	}
}

func TestSimulateXHitRateDenseRow(t *testing.T) {
	// Fully dense rows walk x sequentially: 7/8 of accesses hit the line.
	d := matrix.NewDense(4, 512)
	for i := 0; i < 4; i++ {
		for j := 0; j < 512; j++ {
			d.Set(i, j, 1)
		}
	}
	m := matrix.FromDense(d)
	rate := SimulateXHitRate(m, 1<<20, 8)
	// First row: 7/8 in-line hits; later rows fully resident.
	if rate < 0.9 {
		t.Errorf("dense-row hit rate = %g, want > 0.9", rate)
	}
}

func TestSimulateXHitRateScattered(t *testing.T) {
	// Huge sparse random spread with a tiny cache: nearly all misses.
	m := matrix.Random(200, 1<<16, 0.001, 5)
	rate := SimulateXHitRate(m, 4096, 4)
	if rate > 0.3 {
		t.Errorf("scattered hit rate = %g, want < 0.3", rate)
	}
}

func TestXVectorHitRateBounds(t *testing.T) {
	fv := core.FeatureVector{Rows: 1000, Cols: 1000, NNZ: 10000,
		AvgNNZPerRow: 10, CrossRowSim: 0.5, AvgNumNeigh: 1.0, BWScaled: 0.3}
	for _, cacheB := range []int64{0, 1 << 10, 1 << 20, 1 << 30} {
		h := XVectorHitRate(fv, cacheB)
		if h < 0 || h >= 1 {
			t.Errorf("cache %d: hit rate %g outside [0,1)", cacheB, h)
		}
	}
	if XVectorHitRate(core.FeatureVector{}, 1<<20) != 0 {
		t.Error("empty matrix should have zero hit rate")
	}
}

func TestXVectorHitRateMonotoneInCache(t *testing.T) {
	fv := core.FeatureVector{Rows: 100000, Cols: 100000, NNZ: 2000000,
		AvgNNZPerRow: 20, CrossRowSim: 0.5, AvgNumNeigh: 0.5, BWScaled: 0.3}
	prev := -1.0
	for _, cacheB := range []int64{1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30} {
		h := XVectorHitRate(fv, cacheB)
		if h < prev {
			t.Errorf("hit rate decreased with larger cache: %g after %g", h, prev)
		}
		prev = h
	}
}

func TestXVectorHitRateLocalityOrdering(t *testing.T) {
	// The band must exceed the cache so locality, not residency, decides.
	base := core.FeatureVector{Rows: 1 << 21, Cols: 1 << 21, NNZ: 1 << 25,
		AvgNNZPerRow: 16, CrossRowSim: 0.05, AvgNumNeigh: 0.05, BWScaled: 0.8}
	cacheB := int64(8 << 20)
	loose := XVectorHitRate(base, cacheB)

	clustered := base
	clustered.AvgNumNeigh = 1.9
	if XVectorHitRate(clustered, cacheB) <= loose {
		t.Error("more clustering should raise the hit rate")
	}
	similar := base
	similar.CrossRowSim = 0.95
	similar.BWScaled = 0.005 // narrow resident band
	if XVectorHitRate(similar, cacheB) <= loose {
		t.Error("more cross-row similarity on a resident band should raise the hit rate")
	}
}

// TestAnalyticMatchesSimulation cross-validates the closed form against the
// LRU simulator on generated matrices across the locality grid.
func TestAnalyticMatchesSimulation(t *testing.T) {
	cases := []gen.Params{
		{Rows: 3000, Cols: 3000, AvgNNZPerRow: 10, StdNNZPerRow: 3, BWScaled: 0.1, CrossRowSim: 0.1, AvgNumNeigh: 0.1, Seed: 1},
		{Rows: 3000, Cols: 3000, AvgNNZPerRow: 10, StdNNZPerRow: 3, BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 2},
		{Rows: 3000, Cols: 3000, AvgNNZPerRow: 10, StdNNZPerRow: 3, BWScaled: 0.6, CrossRowSim: 0.9, AvgNumNeigh: 1.8, Seed: 3},
		{Rows: 3000, Cols: 3000, AvgNNZPerRow: 40, StdNNZPerRow: 10, BWScaled: 0.05, CrossRowSim: 0.5, AvgNumNeigh: 0.5, Seed: 4},
	}
	for i, p := range cases {
		m, err := gen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		fv := core.Extract(m)
		for _, cacheB := range []int64{16 << 10, 256 << 10, 4 << 20} {
			sim := SimulateXHitRate(m, cacheB, 8)
			analytic := XVectorHitRate(fv, cacheB)
			if math.Abs(sim-analytic) > 0.25 {
				t.Errorf("case %d cache %dKiB: simulated %.3f vs analytic %.3f",
					i, cacheB>>10, sim, analytic)
			}
		}
	}
}
