package cache

import "sync"

// DecisionKey identifies one auto-format decision context. A decision is
// only reusable when everything that influenced it recurs: the sparsity
// structure (matrix fingerprint), the device the ranking targeted, the
// RHS-count regime (k = 1 and k = 8 rank formats differently), and the
// execution-engine shard layout a micro-probe measured under.
type DecisionKey struct {
	Fingerprint uint64 // matrix.CSR.Fingerprint()
	Device      string // device.Spec.Name consulted for the ranking
	K           int    // right-hand-side count the choice targets
	Shards      int    // topo.Shards() at decision time
}

// Decision is one cached format choice.
type Decision struct {
	Format string // chosen format name
	Probed bool   // a micro-probe measurement backed the choice
}

// DecisionCache is a concurrency-safe store of auto-format decisions. The
// zero value is not usable; construct with NewDecisionCache. A plain
// mutex guards the map: every operation (including Get, which bumps the
// hit/miss counters) writes, so a reader/writer lock would buy nothing.
type DecisionCache struct {
	mu     sync.Mutex
	m      map[DecisionKey]Decision
	hits   uint64
	misses uint64
}

// NewDecisionCache returns an empty decision cache.
func NewDecisionCache() *DecisionCache {
	return &DecisionCache{m: make(map[DecisionKey]Decision)}
}

// Decisions is the process-wide cache the selection subsystem consults by
// default, so repeated Auto builds of the same matrix under the same
// (device, k, shards) context skip ranking and probing entirely.
var Decisions = NewDecisionCache()

// Get returns the cached decision for the key, if any.
func (c *DecisionCache) Get(k DecisionKey) (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return d, ok
}

// Put stores (or replaces) the decision for the key.
func (c *DecisionCache) Put(k DecisionKey, d Decision) {
	c.mu.Lock()
	c.m[k] = d
	c.mu.Unlock()
}

// Len returns the number of cached decisions.
func (c *DecisionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the cumulative hit and miss counts.
func (c *DecisionCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Clear drops every cached decision and resets the counters.
func (c *DecisionCache) Clear() {
	c.mu.Lock()
	c.m = make(map[DecisionKey]Decision)
	c.hits, c.misses = 0, 0
	c.mu.Unlock()
}
