package cache

import (
	"container/list"
	"sync"
)

// DecisionKey identifies one auto-format decision context. A decision is
// only reusable when everything that influenced it recurs: the sparsity
// structure (matrix fingerprint), the device the ranking targeted, the
// RHS-count regime (k = 1 and k = 8 rank formats differently), and the
// execution-engine shard layout a micro-probe measured under.
type DecisionKey struct {
	Fingerprint uint64 // matrix.CSR.Fingerprint()
	Device      string // device.Spec.Name consulted for the ranking
	K           int    // right-hand-side count the choice targets
	Shards      int    // topo.Shards() at decision time
}

// Decision is one cached format choice.
type Decision struct {
	Format string // chosen format name
	Probed bool   // a micro-probe measurement backed the choice
}

// DefaultDecisionCap bounds the in-memory decision cache: a long-running
// server seeing an endless stream of distinct matrices must not grow the
// map without bound. A few thousand entries cover any realistic working set
// of recurring matrices; colder decisions survive in the journal and
// re-warm on the next restart even after eviction.
const DefaultDecisionCap = 4096

// decisionEntry is one LRU node payload.
type decisionEntry struct {
	key DecisionKey
	dec Decision
}

// DecisionCache is a concurrency-safe, LRU-bounded store of auto-format
// decisions, optionally backed by a disk journal (AttachStore) so decisions
// survive process restarts. The zero value is not usable; construct with
// NewDecisionCache. A plain mutex guards all state: every operation
// (including Get, which bumps recency and the hit/miss counters) writes, so
// a reader/writer lock would buy nothing.
type DecisionCache struct {
	mu      sync.Mutex
	m       map[DecisionKey]*list.Element // value: *decisionEntry
	lru     *list.List                    // front = most recently used
	cap     int
	hits    uint64
	misses  uint64
	evicted uint64
	store   *Store
}

// NewDecisionCache returns an empty decision cache bounded at
// DefaultDecisionCap entries.
func NewDecisionCache() *DecisionCache {
	return &DecisionCache{
		m:   make(map[DecisionKey]*list.Element),
		lru: list.New(),
		cap: DefaultDecisionCap,
	}
}

// Decisions is the process-wide cache the selection subsystem consults by
// default, so repeated Auto builds of the same matrix under the same
// (device, k, shards) context skip ranking and probing entirely.
var Decisions = NewDecisionCache()

// SetCap changes the eviction bound. n <= 0 restores DefaultDecisionCap.
// Shrinking evicts least-recently-used entries immediately. Returns the
// previous cap.
func (c *DecisionCache) SetCap(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.cap
	if n <= 0 {
		n = DefaultDecisionCap
	}
	c.cap = n
	c.evictLocked()
	return prev
}

// Cap returns the current eviction bound.
func (c *DecisionCache) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// evictLocked drops least-recently-used entries until len <= cap.
func (c *DecisionCache) evictLocked() {
	for len(c.m) > c.cap {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*decisionEntry)
		delete(c.m, e.key)
		c.lru.Remove(back)
		c.evicted++
	}
}

// Get returns the cached decision for the key, if any, marking it most
// recently used.
func (c *DecisionCache) Get(k DecisionKey) (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return Decision{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*decisionEntry).dec, true
}

// Put stores (or replaces) the decision for the key, journaling it when a
// store is attached and evicting the least-recently-used entry past the
// cap. Eviction only trims memory: the journal keeps the decision for the
// next restart. The journal append happens under the cache lock so the
// journal's last-line-wins order always matches the in-memory winner of
// concurrent Puts (lock order is cache -> store; the store never calls
// back into the cache).
func (c *DecisionCache) Put(k DecisionKey, d Decision) {
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		el.Value.(*decisionEntry).dec = d
		c.lru.MoveToFront(el)
	} else {
		c.m[k] = c.lru.PushFront(&decisionEntry{key: k, dec: d})
		c.evictLocked()
	}
	st := c.store
	if st != nil {
		st.AppendDecision(k, d)
	}
	c.mu.Unlock()
	// Compaction (a journal rewrite with fsync) runs outside c.mu so it
	// never stalls concurrent Gets; the append order above is already
	// journaled, and a rewrite is content-neutral.
	if st != nil && st.NeedsCompact() {
		_ = st.Compact()
	}
}

// AttachStore binds the cache to an open journal: the store's decisions
// warm-load into memory (newest-first recency, respecting the cap) and
// every subsequent Put appends to the journal. Returns how many decisions
// were warm-loaded. Attaching a nil store detaches.
func (c *DecisionCache) AttachStore(st *Store) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
	if st == nil {
		return 0
	}
	keys, decs := st.Decisions()
	for i, k := range keys { // journal order: oldest first, so newest end up at the front
		if el, ok := c.m[k]; ok {
			el.Value.(*decisionEntry).dec = decs[i]
			c.lru.MoveToFront(el)
			continue
		}
		c.m[k] = c.lru.PushFront(&decisionEntry{key: k, dec: decs[i]})
	}
	c.evictLocked()
	return len(keys)
}

// Store returns the attached journal, or nil.
func (c *DecisionCache) Store() *Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// Len returns the number of cached decisions.
func (c *DecisionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the cumulative hit and miss counts.
func (c *DecisionCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evicted returns how many entries the LRU bound has dropped.
func (c *DecisionCache) Evicted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// InvalidateFingerprint drops every cached decision for the fingerprint,
// across all (device, k, shards) contexts at once — when a matrix's
// structure drifts, every regime's ranking of the dead structure drifts
// with it. Returns how many entries were dropped. Only memory is touched:
// journaled decisions for the dead fingerprint stay on disk and replay
// harmlessly (the drifted matrix hashes to a different fingerprint, so
// nothing ever looks the stale entries up) until a journal compaction
// rewrites them away.
func (c *DecisionCache) InvalidateFingerprint(fp uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, el := range c.m {
		if k.Fingerprint == fp {
			delete(c.m, k)
			c.lru.Remove(el)
			n++
		}
	}
	return n
}

// Clear drops every cached decision and resets the counters. The attached
// journal, if any, is untouched: Clear empties memory, not history.
func (c *DecisionCache) Clear() {
	c.mu.Lock()
	c.m = make(map[DecisionKey]*list.Element)
	c.lru.Init()
	c.hits, c.misses, c.evicted = 0, 0, 0
	c.mu.Unlock()
}
