package cache

import (
	"sync"
	"testing"
)

func TestDecisionCacheBasics(t *testing.T) {
	c := NewDecisionCache()
	key := DecisionKey{Fingerprint: 42, Device: "host", K: 8, Shards: 2}
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put(key, Decision{Format: "SELL-C-s", Probed: true})
	d, ok := c.Get(key)
	if !ok || d.Format != "SELL-C-s" || !d.Probed {
		t.Fatalf("got %+v ok=%v", d, ok)
	}
	// Every key component separates decisions.
	variants := []DecisionKey{
		{Fingerprint: 43, Device: "host", K: 8, Shards: 2},
		{Fingerprint: 42, Device: "AMD-EPYC-24", K: 8, Shards: 2},
		{Fingerprint: 42, Device: "host", K: 1, Shards: 2},
		{Fingerprint: 42, Device: "host", K: 8, Shards: 4},
	}
	for _, v := range variants {
		if _, ok := c.Get(v); ok {
			t.Errorf("key %+v should not alias the stored decision", v)
		}
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 5 {
		t.Errorf("stats = %d hits / %d misses, want 1/5", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	c.Clear()
	if c.Len() != 0 {
		t.Error("clear left entries")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("clear left counters")
	}
}

func TestDecisionCacheConcurrent(t *testing.T) {
	c := NewDecisionCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := DecisionKey{Fingerprint: uint64(i % 16), K: g % 3}
				c.Put(k, Decision{Format: "CSR"})
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Error("no decisions survived")
	}
}
