package cache

import (
	"sync"
	"testing"
)

func TestDecisionCacheBasics(t *testing.T) {
	c := NewDecisionCache()
	key := DecisionKey{Fingerprint: 42, Device: "host", K: 8, Shards: 2}
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put(key, Decision{Format: "SELL-C-s", Probed: true})
	d, ok := c.Get(key)
	if !ok || d.Format != "SELL-C-s" || !d.Probed {
		t.Fatalf("got %+v ok=%v", d, ok)
	}
	// Every key component separates decisions.
	variants := []DecisionKey{
		{Fingerprint: 43, Device: "host", K: 8, Shards: 2},
		{Fingerprint: 42, Device: "AMD-EPYC-24", K: 8, Shards: 2},
		{Fingerprint: 42, Device: "host", K: 1, Shards: 2},
		{Fingerprint: 42, Device: "host", K: 8, Shards: 4},
	}
	for _, v := range variants {
		if _, ok := c.Get(v); ok {
			t.Errorf("key %+v should not alias the stored decision", v)
		}
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 5 {
		t.Errorf("stats = %d hits / %d misses, want 1/5", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	c.Clear()
	if c.Len() != 0 {
		t.Error("clear left entries")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("clear left counters")
	}
}

// TestDecisionCacheLRUBound pins the memory bound of a long-running
// server: the cache must never exceed its cap, must evict in
// least-recently-used order, and Get must count as a use.
func TestDecisionCacheLRUBound(t *testing.T) {
	c := NewDecisionCache()
	if c.Cap() != DefaultDecisionCap {
		t.Fatalf("default cap = %d, want %d", c.Cap(), DefaultDecisionCap)
	}
	c.SetCap(3)
	key := func(i int) DecisionKey { return DecisionKey{Fingerprint: uint64(i), Device: "host", K: 1, Shards: 1} }
	for i := 0; i < 3; i++ {
		c.Put(key(i), Decision{Format: "CSR5"})
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("key 0 missing")
	}
	c.Put(key(3), Decision{Format: "COO"})
	if c.Len() != 3 {
		t.Fatalf("len = %d past cap 3", c.Len())
	}
	if _, ok := c.Get(key(1)); ok {
		t.Error("key 1 should have been evicted (least recently used)")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Errorf("key %d should have survived", i)
		}
	}
	if c.Evicted() != 1 {
		t.Errorf("evicted = %d, want 1", c.Evicted())
	}
	// Shrinking the cap evicts immediately; restoring the default re-opens
	// headroom.
	c.SetCap(1)
	if c.Len() != 1 {
		t.Errorf("len = %d after shrink to 1", c.Len())
	}
	if prev := c.SetCap(0); prev != 1 {
		t.Errorf("SetCap returned %d, want 1", prev)
	}
	if c.Cap() != DefaultDecisionCap {
		t.Errorf("cap = %d, want default restored", c.Cap())
	}
	// Re-putting an existing key must not grow the count.
	c.Put(key(3), Decision{Format: "ELL"})
	if d, _ := c.Get(key(3)); d.Format != "ELL" {
		t.Errorf("re-put did not replace: %+v", d)
	}
}

// TestDecisionCacheEvictionKeepsJournal: eviction trims memory only — an
// evicted decision must still re-load from the attached journal on the
// next restart.
func TestDecisionCacheEvictionKeepsJournal(t *testing.T) {
	st, dir := tempStore(t)
	c := NewDecisionCache()
	c.SetCap(2)
	c.AttachStore(st)
	for i := 0; i < 5; i++ {
		c.Put(dk(uint64(i), 1), Decision{Format: "CSR5"})
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	st.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	keys, _ := re.Decisions()
	if len(keys) != 5 {
		t.Fatalf("journal kept %d decisions, want all 5 despite eviction", len(keys))
	}
	// A fresh cache warm-loads the most recent ones within its cap.
	c2 := NewDecisionCache()
	c2.SetCap(2)
	if n := c2.AttachStore(re); n != 5 {
		t.Fatalf("warm-load reported %d, want 5", n)
	}
	if c2.Len() != 2 {
		t.Fatalf("warm-loaded len = %d, want cap 2", c2.Len())
	}
	for _, i := range []int{3, 4} {
		if _, ok := c2.Get(dk(uint64(i), 1)); !ok {
			t.Errorf("newest key %d should have survived the capped warm-load", i)
		}
	}
}

func TestDecisionCacheConcurrent(t *testing.T) {
	c := NewDecisionCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := DecisionKey{Fingerprint: uint64(i % 16), K: g % 3}
				c.Put(k, Decision{Format: "CSR"})
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Error("no decisions survived")
	}
}
