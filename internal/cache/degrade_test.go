package cache

// Graceful-degradation tests for the journal: every I/O failure mode —
// ENOSPC mid-append, a torn compaction rename, a broken flock, an
// unusable directory — must switch the store to memory-only with a
// recorded reason, leave the on-disk journal intact, and never surface an
// error to the selection path (zero failed Builds, zero failed
// multiplies).

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/failpoint"
)

// parseJournal re-reads the journal file raw and returns how many intact,
// schema-valid lines it holds. Degradation must never corrupt what a
// previous successful write put on disk.
func parseJournal(t *testing.T, path string) (lines int) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("journal unreadable after degradation: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("journal line corrupted after degradation: %q", sc.Text())
		}
		lines++
	}
	return lines
}

func enableFailpoint(t *testing.T, name, spec string) {
	t.Helper()
	failpoint.SetEnabled(true)
	if err := failpoint.Enable(name, spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		failpoint.Disable(name)
		failpoint.SetEnabled(false)
	})
}

// TestAppendENOSPCDegradesToMemoryOnly: a full disk mid-append flips the
// store to memory-only; the decision that hit the wall (and every later
// one) still serves from memory, and the journal on disk keeps every
// line written before the failure.
func TestAppendENOSPCDegradesToMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	k1 := DecisionKey{Fingerprint: 1, Device: "host", K: 1, Shards: 1}
	st.AppendDecision(k1, Decision{Format: "Naive-CSR"})
	linesBefore := parseJournal(t, st.Path())

	enableFailpoint(t, "cache.append", "enospc")
	k2 := DecisionKey{Fingerprint: 2, Device: "host", K: 1, Shards: 1}
	st.AppendDecision(k2, Decision{Format: "ELL"}) // hits injected ENOSPC

	deg, reason := st.Degraded()
	if !deg {
		t.Fatal("store not degraded after ENOSPC append")
	}
	if !strings.Contains(reason, "append") {
		t.Errorf("DegradedReason = %q, want append failure", reason)
	}
	stats := st.Stats()
	if !stats.Degraded || stats.DegradedReason != reason {
		t.Errorf("Stats degradation mismatch: %+v vs %q", stats, reason)
	}

	// Memory still serves both decisions, including the one whose journal
	// line was lost.
	keys, decs := st.Decisions()
	found := map[uint64]string{}
	for i, k := range keys {
		found[k.Fingerprint] = decs[i].Format
	}
	if found[1] != "Naive-CSR" || found[2] != "ELL" {
		t.Errorf("in-memory decisions after degradation = %v", found)
	}

	// Later appends are silent no-ops, not errors or panics.
	failpoint.Disable("cache.append") // disk "recovers"; degradation is sticky
	st.AppendDecision(DecisionKey{Fingerprint: 3}, Decision{Format: "COO"})
	if err := st.Compact(); err != nil {
		t.Errorf("Compact on degraded store = %v, want nil no-op", err)
	}

	// The on-disk journal is exactly what the successful writes left.
	if lines := parseJournal(t, st.Path()); lines != linesBefore {
		t.Errorf("journal has %d lines after degradation, want %d", lines, linesBefore)
	}
}

// TestTornRenameDegradesAndKeepsOldJournal: a compaction whose rename is
// torn away degrades the store; the pre-compaction journal survives
// intact on disk, the temp file is cleaned up, and a fresh Open replays
// the old contents.
func TestTornRenameDegradesAndKeepsOldJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	k := DecisionKey{Fingerprint: 11, Device: "host", K: 8, Shards: 2}
	st.AppendDecision(k, Decision{Format: "SELL-C-s", Probed: true})
	st.AppendDecision(k, Decision{Format: "ELL", Probed: true}) // supersedes: dead line
	linesBefore := parseJournal(t, st.Path())

	enableFailpoint(t, "cache.rename", "error")
	if err := st.Compact(); err == nil {
		t.Fatal("Compact with torn rename returned nil, want error")
	}
	deg, reason := st.Degraded()
	if !deg || !strings.Contains(reason, "compact") {
		t.Fatalf("degraded=%v reason=%q, want compact failure", deg, reason)
	}

	// Old journal intact, no temp litter.
	if lines := parseJournal(t, st.Path()); lines != linesBefore {
		t.Errorf("journal has %d lines after torn rename, want %d", lines, linesBefore)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind after torn rename", e.Name())
		}
	}

	// A fresh Open (next process) replays the surviving journal.
	failpoint.Disable("cache.rename")
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if deg, _ := re.Degraded(); deg {
		t.Error("fresh Open degraded; degradation must not persist across opens")
	}
	keys, decs := re.Decisions()
	if len(keys) != 1 || decs[0].Format != "ELL" {
		t.Errorf("replayed decisions = %v / %v, want the superseding ELL line", keys, decs)
	}
}

// TestFlockFailureDegrades: an flock error (not mere absence of locking)
// means journal mutation cannot be serialized against other processes, so
// the store goes memory-only rather than risk a torn interleaving.
func TestFlockFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()

	enableFailpoint(t, "cache.flock", "error")
	st.AppendDecision(DecisionKey{Fingerprint: 21}, Decision{Format: "COO"})
	deg, reason := st.Degraded()
	if !deg || !strings.Contains(reason, "flock") {
		t.Fatalf("degraded=%v reason=%q, want flock failure", deg, reason)
	}
	// The decision still serves from memory.
	keys, _ := st.Decisions()
	if len(keys) != 1 {
		t.Errorf("in-memory decisions = %d, want 1", len(keys))
	}
}

// TestUnusableDirIsMemoryOnly: Open on a path that cannot be a directory
// returns a working memory-only store (never an error), so persistence
// misconfiguration costs the journal, not the selection pipeline.
func TestUnusableDirIsMemoryOnly(t *testing.T) {
	base := t.TempDir()
	notADir := filepath.Join(base, "occupied")
	if err := os.WriteFile(notADir, []byte("a file, not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	// MkdirAll under a regular file fails with ENOTDIR for every uid,
	// including root (a chmod-based unwritable dir would not stop root).
	st, err := Open(filepath.Join(notADir, "cache"))
	if err != nil {
		t.Fatalf("Open on unusable dir = %v, want degraded store + nil error", err)
	}
	defer st.Close()
	deg, reason := st.Degraded()
	if !deg || !strings.Contains(reason, "create dir") {
		t.Fatalf("degraded=%v reason=%q, want create-dir failure", deg, reason)
	}

	// The store is fully usable in memory: appends, reads, compaction.
	k := DecisionKey{Fingerprint: 31, Device: "host", K: 1, Shards: 1}
	st.AppendDecision(k, Decision{Format: "Naive-CSR"})
	st.AppendExperience(Experience{Device: "host", K: 1, Best: "Naive-CSR"})
	keys, _ := st.Decisions()
	if len(keys) != 1 || len(st.Experiences()) != 1 {
		t.Errorf("memory-only store lost records: %d decisions, %d experiences",
			len(keys), len(st.Experiences()))
	}
	if err := st.Compact(); err != nil {
		t.Errorf("Compact on memory-only store = %v, want nil", err)
	}
}

// TestDegradedStoreBehindDecisionCache: the full selection-path contract —
// a DecisionCache whose attached journal degrades mid-run keeps serving
// Puts and Gets without a single error reaching the caller.
func TestDegradedStoreBehindDecisionCache(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	dc := NewDecisionCache()
	dc.AttachStore(st)
	defer dc.AttachStore(nil)

	k1 := DecisionKey{Fingerprint: 41, Device: "host", K: 1, Shards: 1}
	dc.Put(k1, Decision{Format: "ELL"})

	enableFailpoint(t, "cache.append", "enospc")
	k2 := DecisionKey{Fingerprint: 42, Device: "host", K: 1, Shards: 1}
	dc.Put(k2, Decision{Format: "COO"}) // journal append dies; Put must not care

	if d, ok := dc.Get(k1); !ok || d.Format != "ELL" {
		t.Errorf("Get(k1) = %v %v after degradation", d, ok)
	}
	if d, ok := dc.Get(k2); !ok || d.Format != "COO" {
		t.Errorf("Get(k2) = %v %v after degradation", d, ok)
	}
	if deg, _ := st.Degraded(); !deg {
		t.Error("attached store not degraded after injected ENOSPC")
	}
}
