//go:build !unix

package cache

import (
	"errors"
	"os"
)

// No flock outside unix: locking degrades to the documented best-effort
// last-writer-wins behavior.
func flockExclusive(*os.File) error { return errors.ErrUnsupported }

func flockUnlock(*os.File) {}
