package cache

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestAppendSurvivesForeignCompaction: when another handle compacts
// (renames over) the journal, a subsequent append through the old handle
// must land in the live file, not the unlinked inode. This is the inode
// re-check behind the best-effort cross-process story.
func TestAppendSurvivesForeignCompaction(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	st1.AppendExperience(Experience{Device: "host", K: 1, FV: core.FeatureVector{Rows: 10}, Best: "COO"})

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	st2.Close()

	// st1's handle now points at the pre-compaction inode; the append must
	// detect that and re-target the live file.
	st1.AppendExperience(Experience{Device: "host", K: 1, FV: core.FeatureVector{Rows: 20}, Best: "ELL"})
	st1.Close()

	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	exps := st3.Experiences()
	if len(exps) == 0 || exps[len(exps)-1].Best != "ELL" {
		t.Fatalf("append after foreign compaction lost: %+v", exps)
	}
}

// TestLockFileCreated: Open drops the sidecar lock file next to the
// journal (its presence is how cooperating processes find the lock).
func TestLockFileCreated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := os.Stat(filepath.Join(dir, lockName)); err != nil {
		t.Fatalf("lock file missing: %v", err)
	}
}
