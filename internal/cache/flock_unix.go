//go:build unix

package cache

import (
	"os"
	"syscall"
)

// flockExclusive takes a blocking exclusive flock on the sidecar lock
// file. flock is advisory and per-open-file-description, which is exactly
// the contract the journal needs: cooperating spmv processes serialize,
// everything else is unaffected.
func flockExclusive(f *os.File) error { return syscall.Flock(int(f.Fd()), syscall.LOCK_EX) }

func flockUnlock(f *os.File) { _ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN) }
