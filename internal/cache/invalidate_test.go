package cache

import "testing"

// TestInvalidateFingerprint: drift invalidation drops every regime of the
// fingerprint and nothing else, and keeps the LRU list consistent.
func TestInvalidateFingerprint(t *testing.T) {
	c := NewDecisionCache()
	c.Put(DecisionKey{Fingerprint: 1, Device: "host", K: 1, Shards: 1}, Decision{Format: "A"})
	c.Put(DecisionKey{Fingerprint: 1, Device: "host", K: 8, Shards: 1}, Decision{Format: "B"})
	c.Put(DecisionKey{Fingerprint: 1, Device: "gpu", K: 1, Shards: 4}, Decision{Format: "C"})
	c.Put(DecisionKey{Fingerprint: 2, Device: "host", K: 1, Shards: 1}, Decision{Format: "D"})

	if n := c.InvalidateFingerprint(1); n != 3 {
		t.Fatalf("dropped %d decisions, want 3", n)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d decisions, want 1", c.Len())
	}
	if _, ok := c.Get(DecisionKey{Fingerprint: 1, Device: "host", K: 1, Shards: 1}); ok {
		t.Fatal("invalidated decision still served")
	}
	if d, ok := c.Get(DecisionKey{Fingerprint: 2, Device: "host", K: 1, Shards: 1}); !ok || d.Format != "D" {
		t.Fatal("unrelated fingerprint was dropped")
	}
	if n := c.InvalidateFingerprint(99); n != 0 {
		t.Fatalf("unknown fingerprint dropped %d", n)
	}
	// The survivor must still cycle through the LRU without issue.
	c.Put(DecisionKey{Fingerprint: 3, Device: "host", K: 1, Shards: 1}, Decision{Format: "E"})
	if c.Len() != 2 {
		t.Fatalf("cache holds %d decisions, want 2", c.Len())
	}
}
