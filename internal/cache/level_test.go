package cache

import (
	"testing"

	"repro/internal/simd"
)

// TestJournalSurvivesLevelCap covers the cap/fingerprint interaction: a
// journal written under a SIMD level cap must not be invalidated when a
// later run on the same machine uses a different level — the host
// fingerprint tracks the detected hardware, and records are scoped to the
// dispatch level they were measured under, surviving other levels'
// compactions.
func TestJournalSurvivesLevelCap(t *testing.T) {
	if !simd.Available() {
		t.Skip("no accelerated kernels on this host")
	}
	dir := t.TempDir()
	prev := simd.SetLevel("avx2")
	defer simd.SetLevel(prev)

	// Run 1: capped at avx2, journal a decision and a tune winner.
	capped := HostFingerprint()
	k1 := DecisionKey{Fingerprint: 11, Device: "host", K: 1, Shards: 1}
	tk := TuneKey{Fingerprint: 11, Device: "host", K: 8, Param: "bcsr.block"}
	st1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st1.AppendDecision(k1, Decision{Format: "ELL"})
	st1.AppendTune(tk, "4x4")
	st1.Close()

	// Run 2: a different dispatch level on the same machine. The journal
	// must load without wholesale invalidation; the capped run's records
	// are not evidence here but must survive this run's compaction.
	simd.SetLevel("scalar")
	if got := HostFingerprint(); got != capped {
		t.Fatalf("host fingerprint changed with the cap: %q vs %q", got, capped)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := st2.Stats(); st.Invalidated {
		t.Fatalf("capped journal invalidated wholesale: %+v", st)
	} else if st.Foreign < 2 {
		t.Errorf("foreign (other-level) records carried = %d, want >= 2", st.Foreign)
	}
	if keys, _ := st2.Decisions(); len(keys) != 0 {
		t.Errorf("other level's decisions loaded as evidence: %+v", keys)
	}
	if keys, _ := st2.Tunes(); len(keys) != 0 {
		t.Errorf("other level's tunes loaded as evidence: %+v", keys)
	}
	k2 := DecisionKey{Fingerprint: 22, Device: "host", K: 1, Shards: 1}
	st2.AppendDecision(k2, Decision{Format: "Naive-CSR"})
	if err := st2.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	st2.Close()

	// Run 3: back under the cap — the capped records resurface, the
	// scalar run's are now the foreign ones.
	simd.SetLevel("avx2")
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st := st3.Stats(); st.Invalidated {
		t.Fatalf("journal invalidated after cross-level compaction: %+v", st)
	}
	keys, decs := st3.Decisions()
	if len(keys) != 1 || keys[0] != k1 || decs[0].Format != "ELL" {
		t.Errorf("capped decision lost across a scalar run's compaction: %+v %+v", keys, decs)
	}
	tkeys, tvals := st3.Tunes()
	if len(tkeys) != 1 || tkeys[0] != tk || tvals[0] != "4x4" {
		t.Errorf("capped tune lost across a scalar run's compaction: %+v %+v", tkeys, tvals)
	}
}

// TestTuneJournalRoundTrip exercises the "autotune" record kind end to
// end: journal winners, reopen, warm-load a TuneCache, and supersede a
// value.
func TestTuneJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTuneCache()
	tc.AttachStore(st)
	ka := TuneKey{Fingerprint: 7, Device: "host", K: 8, Param: "bcsr.block"}
	kb := TuneKey{Fingerprint: 7, Device: "host", K: 8, Param: "spmm.tile"}
	tc.Put(ka, "2x2")
	tc.Put(kb, "8")
	tc.Put(ka, "4x4") // supersedes 2x2: last line wins on reload
	st.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if st := re.Stats(); st.Tunes != 2 {
		t.Fatalf("reloaded %d tunes, want 2 (%+v)", st.Tunes, st)
	}
	warm := NewTuneCache()
	if n := warm.AttachStore(re); n != 2 {
		t.Fatalf("warm-loaded %d tunes, want 2", n)
	}
	if v, ok := warm.Get(ka); !ok || v != "4x4" {
		t.Errorf("bcsr.block = %q, %v; want 4x4 (superseding line must win)", v, ok)
	}
	if v, ok := warm.Get(kb); !ok || v != "8" {
		t.Errorf("spmm.tile = %q, %v; want 8", v, ok)
	}
}
