package cache

// Disk persistence for the selection subsystem: an append-only, versioned
// JSONL journal holding format decisions and probe-outcome experience
// records, so a restarted server resumes with everything previous processes
// learned instead of re-ranking and re-probing every matrix.
//
// Design constraints, in order:
//
//   - Crash safety over completeness. Records append one line at a time
//     with O_APPEND writes; a torn final line loses one record, never the
//     journal. Compaction writes a fresh temp file and renames it over the
//     old one atomically.
//   - Corruption tolerance. Load skips anything it cannot parse — torn
//     lines, garbage, records from a different schema version — and keeps
//     going. A damaged journal degrades to a smaller one; it never takes
//     the cache down and never fails a Build.
//   - Invalidation by key, not by trust. A header line pins the schema
//     version and a host fingerprint (OS/arch/CPU count). A journal written
//     by a different schema or machine is discarded wholesale: decisions
//     are measurements, and measurements from different hardware are not
//     evidence here.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/simd"
)

const (
	// SchemaVersion is the journal schema. Records carrying a different
	// version are skipped on load; a header carrying a different version
	// invalidates the whole journal.
	SchemaVersion = 1

	// EnvCacheDir overrides the journal directory without code changes.
	EnvCacheDir = "SPMV_CACHE_DIR"

	// journalName is the journal file inside the cache directory.
	journalName = "decisions.jsonl"

	// lockName is the sidecar flock file serializing cross-process journal
	// mutation (appends and compactions) among cooperating spmv processes.
	lockName = "decisions.lock"

	// maxJournalExperiences bounds how many experience records Load keeps
	// (most recent win): the online selector needs a working set, not an
	// unbounded history of every probe a long-lived server ever ran.
	maxJournalExperiences = 4096

	// maxJournalDecisions bounds the store's in-memory decision mirror
	// (and, through compaction, the journal itself) the same way: a few
	// multiples of the DecisionCache LRU cap, oldest dropped first. A
	// server streaming millions of distinct matrices must not grow the
	// persistence layer without bound either.
	maxJournalDecisions = 4 * DefaultDecisionCap

	// compactDeadMin is how many superseded (dead) journal lines accumulate
	// before an append triggers an automatic compaction.
	compactDeadMin = 1024

	// maxJournalTunes bounds the in-memory autotune mirror like
	// maxJournalDecisions bounds decisions.
	maxJournalTunes = 4 * DefaultTuneCap

	// maxForeignLines bounds how many other-level records a load carries
	// through compactions for the runs that can use them; overflow becomes
	// dead weight.
	maxForeignLines = 4096
)

// dirOverride is the SetDir override; guarded by dirMu.
var (
	dirMu       sync.Mutex
	dirOverride string
)

// SetDir overrides the cache directory programmatically. An empty dir
// restores the default resolution (SPMV_CACHE_DIR, then the user cache
// dir). Returns the previous override.
func SetDir(dir string) string {
	dirMu.Lock()
	defer dirMu.Unlock()
	prev := dirOverride
	dirOverride = dir
	return prev
}

// Configured reports whether a journal location has been explicitly
// chosen (SetDir override or SPMV_CACHE_DIR): the signal CLIs and the
// select experiment use to decide whether persistence is opted in.
func Configured() bool {
	dirMu.Lock()
	o := dirOverride
	dirMu.Unlock()
	return o != "" || os.Getenv(EnvCacheDir) != ""
}

// RemoveJournal deletes the journal file in dir — the cold-start switch.
// A missing journal is not an error.
func RemoveJournal(dir string) error {
	err := os.Remove(filepath.Join(dir, journalName))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// ConfigureFlags applies the CLIs' shared persistence flags: a non-empty
// dir overrides the journal location (-cache-dir), cold deletes the
// journal at the resolved location (-cold). Returns an error when cold
// has no journal to act on or the location is unusable.
func ConfigureFlags(dir string, cold bool) error {
	if dir != "" {
		SetDir(dir)
	}
	if Configured() {
		d, err := Dir()
		if err != nil {
			return fmt.Errorf("cache dir: %w", err)
		}
		if cold {
			if err := RemoveJournal(d); err != nil {
				return fmt.Errorf("cold start: %w", err)
			}
		}
	} else if cold {
		return fmt.Errorf("-cold needs a journal: give -cache-dir or set %s", EnvCacheDir)
	}
	return nil
}

// Dir resolves the journal directory: the SetDir override, then the
// SPMV_CACHE_DIR environment variable, then <user cache dir>/go-spmv.
func Dir() (string, error) {
	dirMu.Lock()
	o := dirOverride
	dirMu.Unlock()
	if o != "" {
		return o, nil
	}
	if env := os.Getenv(EnvCacheDir); env != "" {
		return env, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("cache: no user cache dir: %w", err)
	}
	return filepath.Join(base, "go-spmv"), nil
}

// HostFingerprint identifies the machine context a journal's measurements
// belong to — including the usable parallelism (GOMAXPROCS), because the
// host device model and every micro-probe run at that width: a decision
// probed under 2 workers is not evidence about a 32-worker process even
// on the same chip. The SIMD component is the *detected* hardware tier,
// not the dispatched one: a run capped with SPMV_SIMD_LEVEL=avx2 on an
// AVX-512 box is still the same machine, and its journal must not be
// invalidated wholesale when the next run lifts the cap. The cap's effect
// travels per record instead — every decision and experience line carries
// the dispatch level it was measured under (see EffectiveLevel), and load
// filters records from other levels without discarding them.
func HostFingerprint() string {
	return fmt.Sprintf("%s/%s/cpu%d/p%d/%s", runtime.GOOS, runtime.GOARCH,
		runtime.NumCPU(), runtime.GOMAXPROCS(0), simd.DetectedLevel())
}

// EffectiveLevel is the dispatch level measurements in this process are
// evidence for: "scalar" when acceleration is off (SPMV_NOSIMD or a
// scalar cap), otherwise the dispatched tier. Probe outcomes measured
// with AVX2 kernels are not evidence for a scalar-forced process, whose
// format ranking can differ — so records from other levels are skipped on
// load (but survive compaction for the run that can use them).
func EffectiveLevel() string {
	if !simd.Enabled() {
		return "scalar"
	}
	return simd.Level()
}

// Experience is one probe outcome: the feature vector of a matrix whose
// shortlist was micro-probed, and the format that measured fastest, in the
// (device, k) regime the probe targeted. The online selector consumes these
// as labeled k-NN samples.
type Experience struct {
	Device string             `json:"device"`
	K      int                `json:"k"`
	FV     core.FeatureVector `json:"fv"`
	Best   string             `json:"best"`
}

// record is one JSONL journal line. Kind selects which fields are live:
// "header" pins schema+host, "decision" carries a DecisionKey/Decision
// pair, "experience" carries a probe outcome, "autotune" a structural
// parameter winner (block shape, tile width) keyed like a decision plus
// the parameter name. Non-header records carry the dispatch level they
// were measured under (Lvl); load keeps only the current level's.
type record struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	Lvl  string `json:"lvl,omitempty"`

	// header
	Schema int    `json:"schema,omitempty"`
	Host   string `json:"host,omitempty"`

	// decision (FP/Device/K also key autotune records)
	FP     uint64 `json:"fp,omitempty"`
	Device string `json:"device,omitempty"`
	K      int    `json:"k,omitempty"`
	Shards int    `json:"shards,omitempty"`
	Format string `json:"format,omitempty"`
	Probed bool   `json:"probed,omitempty"`

	// autotune
	Param string `json:"param,omitempty"`
	Value string `json:"value,omitempty"`

	// experience
	Exp *Experience `json:"exp,omitempty"`
}

// StoreStats is a point-in-time summary of a journal, for CLI -json output.
type StoreStats struct {
	Path        string // journal file path
	Decisions   int    // live decisions loaded at open
	Experiences int    // experience records loaded at open
	Tunes       int    // autotune records loaded at open
	Foreign     int    // other-level records carried, not evidence here
	Appended    int    // records appended by this process
	Dead        int    // superseded lines awaiting compaction
	Invalidated bool   // open discarded a journal from another schema/host
	Skipped     int    // unparseable or foreign-version lines skipped at load

	// Degraded reports that an I/O failure (ENOSPC, torn rename, flock
	// error, unusable directory) switched the store to memory-only:
	// decisions and experiences keep serving from memory, nothing further
	// touches disk, and DegradedReason records the first failure. The
	// journal file on disk is left as the last successful write shaped it.
	Degraded       bool
	DegradedReason string
}

// Store is an open journal: decisions and experiences loaded at Open time
// plus an append handle for everything learned afterwards. A Store is safe
// for concurrent use within one process. Cross-process sharing is
// best-effort, two layers deep: O_APPEND keeps individual line writes
// intact (each record is one write call well under the pipe-atomicity
// bound), and an advisory flock on a sidecar lock file serializes loads,
// appends and compactions among cooperating processes — with an inode
// check before every append re-targeting the handle after another process
// compacted (renamed over) the journal, so post-compaction appends land in
// the live file instead of the unlinked inode. A compaction still rewrites
// from the compactor's own state: lines another process appended between
// that compactor's Open and its rewrite are dropped (their in-memory copy
// survives; its next process re-journals what it re-measures). On
// filesystems without flock the lock degrades to a no-op and only the
// O_APPEND guarantee remains.
type Store struct {
	mu   sync.Mutex
	path string
	f    *os.File
	lock *os.File // sidecar flock handle; nil when unavailable

	decisions   map[DecisionKey]Decision
	order       []DecisionKey // journal order of decisions (oldest first)
	experiences []Experience
	tunes       map[TuneKey]string
	tuneOrder   []TuneKey // journal order of tunes (oldest first)

	// lvl is the dispatch level this store's records are evidence for,
	// captured at Open (see EffectiveLevel); foreign holds raw lines from
	// other levels, skipped on load but rewritten by compaction.
	lvl     string
	foreign [][]byte

	dead        int // superseded decision lines in the file
	appended    int
	loadedDec   int
	loadedExp   int
	loadedTune  int
	headerOK    bool // a valid local header already leads the file
	invalidated bool
	skipped     int

	// degradedReason, when non-empty, records the first I/O failure that
	// switched the store to memory-only (see StoreStats.Degraded). Sticky:
	// a degraded store never touches disk again for its lifetime; the next
	// process re-opens and re-journals what it re-measures.
	degradedReason string
}

// degradeLocked switches the store to memory-only after an I/O failure:
// the append handle closes, the first failure is recorded, and every
// later append or compaction becomes a silent no-op while the in-memory
// decision and experience state keeps serving. Persistence is an
// accelerator — a full disk, a torn rename, or a broken lock must cost
// the journal, never a Build or a multiply. Callers hold s.mu.
func (s *Store) degradeLocked(op string, err error) {
	if s.degradedReason != "" {
		return
	}
	s.degradedReason = fmt.Sprintf("%s: %v", op, err)
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// Degraded reports whether an I/O failure switched the store to
// memory-only, and the recorded reason.
func (s *Store) Degraded() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degradedReason != "", s.degradedReason
}

// Open opens (creating if needed) the journal in dir, loads every record it
// can parse, and leaves the file positioned for appends. The load is
// corruption-tolerant: bad lines are skipped, a schema or host-fingerprint
// mismatch discards the journal's contents and starts it fresh. Open never
// fails: an unusable directory or journal file returns a memory-only store
// whose Stats record the DegradedReason — selection keeps its in-process
// cache and loses only persistence. The error return is kept for
// compatibility and is always nil.
func Open(dir string) (*Store, error) {
	path := filepath.Join(dir, journalName)
	s := &Store{
		path:      path,
		decisions: make(map[DecisionKey]Decision),
		tunes:     make(map[TuneKey]string),
		lvl:       EffectiveLevel(),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.degradeLocked("create dir", err)
		return s, nil
	}
	// Best-effort cross-process lock: held across the load and the initial
	// header/compaction so Open never reads a half-compacted journal from a
	// concurrent process. An unopenable lock file just disables locking.
	s.lock, _ = os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	unlock := s.flock()
	defer unlock()
	s.load(path)
	if s.degradedReason != "" {
		// The flock failed: what was loaded serves from memory, but this
		// store must not mutate a journal it cannot serialize access to.
		return s, nil
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.degradeLocked("open journal", err)
		return s, nil
	}
	s.f = f
	if s.invalidated {
		// Rewrite in place: drop the foreign-host/schema lines before this
		// process starts appending after them. Mere dead weight does NOT
		// compact at open: a second handle on a live journal (stats
		// readers, the select experiment's restart simulation) must never
		// rename the file out from under the owning appender — dead-weight
		// compaction runs on append, where the owner holds the pen.
		// A failed rewrite degrades the store (inside compactLocked).
		_ = s.compactLocked()
	} else if !s.headerOK {
		// Fresh journal: pin schema and host before the first record.
		s.appendLocked(record{V: SchemaVersion, Kind: "header", Schema: SchemaVersion, Host: HostFingerprint()})
	}
	return s, nil
}

// load reads the journal once, populating decisions/experiences. Never
// fails: an unreadable file is an empty journal.
func (s *Store) load(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	headerSeen := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			s.skipped++
			continue
		}
		switch {
		case r.Kind == "header":
			if headerSeen {
				continue
			}
			headerSeen = true
			if r.Schema != SchemaVersion || r.Host != HostFingerprint() {
				// Foreign journal: forget everything read so far and ignore
				// the rest; Open rewrites the file.
				s.decisions = make(map[DecisionKey]Decision)
				s.order = s.order[:0]
				s.experiences = s.experiences[:0]
				s.tunes = make(map[TuneKey]string)
				s.tuneOrder = s.tuneOrder[:0]
				s.foreign = s.foreign[:0]
				s.invalidated = true
				s.drain(sc)
				s.loadedDec, s.loadedExp = 0, 0
				return
			}
			s.headerOK = true
		case r.V != SchemaVersion:
			s.skipped++
		case r.Lvl != s.lvl:
			// Same machine, different dispatch level (a capped run's
			// records, or this run reading an uncapped journal): not
			// evidence here, but live for the run that measured them —
			// carried through compactions verbatim, bounded.
			if len(s.foreign) < maxForeignLines {
				s.foreign = append(s.foreign, append([]byte(nil), line...))
			} else {
				s.dead++
			}
		case r.Kind == "decision":
			k := DecisionKey{Fingerprint: r.FP, Device: r.Device, K: r.K, Shards: r.Shards}
			if _, seen := s.decisions[k]; seen {
				s.dead++ // the later line supersedes the earlier one
			} else {
				s.order = append(s.order, k)
			}
			s.decisions[k] = Decision{Format: r.Format, Probed: r.Probed}
			s.evictDecisionsLocked()
		case r.Kind == "experience" && r.Exp != nil:
			s.experiences = append(s.experiences, *r.Exp)
			if len(s.experiences) > maxJournalExperiences {
				s.dead += len(s.experiences) - maxJournalExperiences
				s.experiences = s.experiences[len(s.experiences)-maxJournalExperiences:]
			}
		case r.Kind == "autotune":
			k := TuneKey{Fingerprint: r.FP, Device: r.Device, K: r.K, Param: r.Param}
			if _, seen := s.tunes[k]; seen {
				s.dead++
			} else {
				s.tuneOrder = append(s.tuneOrder, k)
			}
			s.tunes[k] = r.Value
			s.evictTunesLocked()
		default:
			s.skipped++
		}
	}
	// A scanner error (torn tail, over-long line) just ends the load early.
	s.loadedDec = len(s.decisions)
	s.loadedExp = len(s.experiences)
	s.loadedTune = len(s.tunes)
}

// evictDecisionsLocked drops the oldest-journaled decisions past the
// in-memory bound; the dropped lines become dead weight the next
// compaction removes from the file. Callers hold s.mu (or own s during
// load).
func (s *Store) evictDecisionsLocked() {
	for len(s.order) > maxJournalDecisions {
		delete(s.decisions, s.order[0])
		s.order = s.order[1:]
		s.dead++
	}
}

// evictTunesLocked drops the oldest-journaled tunes past the in-memory
// bound, like evictDecisionsLocked. Callers hold s.mu (or own s during
// load).
func (s *Store) evictTunesLocked() {
	for len(s.tuneOrder) > maxJournalTunes {
		delete(s.tunes, s.tuneOrder[0])
		s.tuneOrder = s.tuneOrder[1:]
		s.dead++
	}
}

// drain consumes the rest of an invalidated journal so load can count what
// it is discarding (for StoreStats only).
func (s *Store) drain(sc *bufio.Scanner) {
	for sc.Scan() {
		s.skipped++
	}
}

// Decisions returns the decisions loaded at Open, in journal (oldest-first)
// order, for warm-loading an in-memory cache.
func (s *Store) Decisions() (keys []DecisionKey, decs []Decision) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys = make([]DecisionKey, len(s.order))
	decs = make([]Decision, len(s.order))
	for i, k := range s.order {
		keys[i] = k
		decs[i] = s.decisions[k]
	}
	return keys, decs
}

// Experiences returns the probe outcomes loaded at Open plus any appended
// since, oldest first.
func (s *Store) Experiences() []Experience {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Experience, len(s.experiences))
	copy(out, s.experiences)
	return out
}

// AppendDecision journals one decision. Identical re-puts are dropped;
// a changed decision for a known key marks the old line dead and may
// trigger an automatic compaction.
func (s *Store) AppendDecision(k DecisionKey, d Decision) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.decisions[k]; ok {
		if prev == d {
			return
		}
		s.dead++
	} else {
		s.order = append(s.order, k)
	}
	s.decisions[k] = d
	s.evictDecisionsLocked()
	s.appendLocked(record{
		V: SchemaVersion, Kind: "decision", Lvl: s.lvl,
		FP: k.Fingerprint, Device: k.Device, K: k.K, Shards: k.Shards,
		Format: d.Format, Probed: d.Probed,
	})
	// No auto-compaction here: AppendDecision runs under the decision
	// cache's mutex, and a journal rewrite (fsync + rename) there would
	// stall every concurrent Get. The cache triggers compaction after
	// releasing its lock (see DecisionCache.Put / NeedsCompact).
}

// Tunes returns the autotune winners loaded at Open, in journal order,
// for warm-loading an in-memory cache.
func (s *Store) Tunes() (keys []TuneKey, values []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys = make([]TuneKey, len(s.tuneOrder))
	values = make([]string, len(s.tuneOrder))
	for i, k := range s.tuneOrder {
		keys[i] = k
		values[i] = s.tunes[k]
	}
	return keys, values
}

// AppendTune journals one autotune winner. Identical re-puts are dropped;
// a changed value for a known key marks the old line dead.
func (s *Store) AppendTune(k TuneKey, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.tunes[k]; ok {
		if prev == value {
			return
		}
		s.dead++
	} else {
		s.tuneOrder = append(s.tuneOrder, k)
	}
	s.tunes[k] = value
	s.evictTunesLocked()
	s.appendLocked(record{
		V: SchemaVersion, Kind: "autotune", Lvl: s.lvl,
		FP: k.Fingerprint, Device: k.Device, K: k.K, Param: k.Param,
		Value: value,
	})
	// Like AppendDecision, no auto-compaction here: the tune cache calls
	// under its own mutex and triggers compaction after releasing it.
}

// NeedsCompact reports whether enough dead lines have accumulated that
// the owning appender should call Compact.
func (s *Store) NeedsCompact() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead >= compactDeadMin
}

// AppendExperience journals one probe outcome.
func (s *Store) AppendExperience(e Experience) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.experiences = append(s.experiences, e)
	if len(s.experiences) > maxJournalExperiences {
		s.dead += len(s.experiences) - maxJournalExperiences
		s.experiences = s.experiences[len(s.experiences)-maxJournalExperiences:]
	}
	s.appendLocked(record{V: SchemaVersion, Kind: "experience", Lvl: s.lvl, Exp: &e})
	if s.dead >= compactDeadMin {
		_ = s.compactLocked()
	}
}

// appendLocked writes one record as a single JSONL line. A write failure
// (ENOSPC, closed filesystem, injected fault) never propagates: persistence
// is an accelerator, and a full disk must not fail a Build — the store
// degrades to memory-only instead, recording the reason. Callers hold s.mu.
func (s *Store) appendLocked(r record) {
	if s.f == nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	b = append(b, '\n')
	unlock := s.flock()
	defer unlock()
	if s.f == nil {
		return // a flock failure degraded the store mid-call
	}
	if err := failpoint.Inject("cache.append"); err != nil {
		s.degradeLocked("append", err)
		return
	}
	s.refreshHandleLocked()
	if _, err := s.f.Write(b); err != nil {
		s.degradeLocked("append", err)
		return
	}
	if r.Kind != "header" {
		s.appended++
	}
}

// flock takes the cross-process journal lock (blocking, best-effort) and
// returns its release func. flock on an already-held descriptor is a
// harmless no-op conversion, so nested acquisitions (Open's header write,
// AppendExperience's auto-compaction) are safe — the inner release just
// drops the lock a little early. An flock *error* (not mere absence of the
// lock file) means journal mutation can no longer be serialized against
// other processes, so the store stops mutating the journal: it degrades to
// memory-only rather than risk interleaving a compaction with a foreign
// writer. Callers hold s.mu.
func (s *Store) flock() func() {
	if s.lock == nil {
		return func() {}
	}
	err := failpoint.Inject("cache.flock")
	if err == nil {
		err = flockExclusive(s.lock)
	}
	if err != nil {
		s.degradeLocked("flock", err)
		return func() {}
	}
	return func() { flockUnlock(s.lock) }
}

// refreshHandleLocked re-targets the append handle after another process
// compacted the journal: a rename-over leaves this handle on the unlinked
// inode, where appends would vanish. Comparing the path's inode with the
// handle's (os.SameFile) detects that and reopens. Callers hold s.mu and
// the cross-process lock.
func (s *Store) refreshHandleLocked() {
	pi, err := os.Stat(s.path)
	if err != nil {
		return
	}
	fi, err := s.f.Stat()
	if err == nil && os.SameFile(pi, fi) {
		return
	}
	if nf, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
		s.f.Close()
		s.f = nf
	}
}

// Compact rewrites the journal to hold exactly the live records: a fresh
// header, every current decision, every retained experience. The rewrite is
// atomic (temp file + rename), so a crash mid-compaction leaves the old
// journal intact. A failed compaction degrades the store to memory-only
// (the on-disk journal stays as the last successful write left it); on a
// store already degraded Compact is a no-op.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked runs the rewrite and folds any failure into degradation.
// Callers hold s.mu.
func (s *Store) compactLocked() error {
	if s.f == nil {
		return nil // memory-only: nothing on disk this store may rewrite
	}
	if err := s.rewriteLocked(); err != nil {
		s.degradeLocked("compact", err)
		return err
	}
	return nil
}

func (s *Store) rewriteLocked() error {
	unlock := s.flock()
	defer unlock()
	if s.f == nil {
		return nil // a flock failure degraded the store mid-call
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.path), journalName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	write := func(r record) error {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		_, err = w.Write(b)
		return err
	}
	if err := write(record{V: SchemaVersion, Kind: "header", Schema: SchemaVersion, Host: HostFingerprint()}); err != nil {
		tmp.Close()
		return err
	}
	for _, k := range s.order {
		d := s.decisions[k]
		if err := write(record{
			V: SchemaVersion, Kind: "decision", Lvl: s.lvl,
			FP: k.Fingerprint, Device: k.Device, K: k.K, Shards: k.Shards,
			Format: d.Format, Probed: d.Probed,
		}); err != nil {
			tmp.Close()
			return err
		}
	}
	for _, k := range s.tuneOrder {
		if err := write(record{
			V: SchemaVersion, Kind: "autotune", Lvl: s.lvl,
			FP: k.Fingerprint, Device: k.Device, K: k.K, Param: k.Param,
			Value: s.tunes[k],
		}); err != nil {
			tmp.Close()
			return err
		}
	}
	for _, e := range s.experiences {
		exp := e
		if err := write(record{V: SchemaVersion, Kind: "experience", Lvl: s.lvl, Exp: &exp}); err != nil {
			tmp.Close()
			return err
		}
	}
	// Other-level records ride along verbatim: they are live evidence for
	// the (capped or uncapped) run that measured them.
	for _, raw := range s.foreign {
		if _, err := w.Write(raw); err != nil {
			tmp.Close()
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// Torn-rename injection point: the temp file is complete and synced,
	// the rename never happens. The defer above removes the temp; the old
	// journal stays intact on disk.
	if err := failpoint.Inject("cache.rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return err
	}
	// Reopen the append handle on the new file.
	if s.f != nil {
		s.f.Close()
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.f = nil
		return err
	}
	s.f = f
	s.dead = 0
	s.headerOK = true
	// s.invalidated stays: it is the sticky "this open discarded a foreign
	// journal" report, not a live state flag.
	return nil
}

// Stats summarizes the journal for reports and CLI -json output.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Path:           s.path,
		Decisions:      s.loadedDec,
		Experiences:    s.loadedExp,
		Tunes:          s.loadedTune,
		Foreign:        len(s.foreign),
		Appended:       s.appended,
		Dead:           s.dead,
		Invalidated:    s.invalidated,
		Skipped:        s.skipped,
		Degraded:       s.degradedReason != "",
		DegradedReason: s.degradedReason,
	}
}

// Path returns the journal file path.
func (s *Store) Path() string { return s.path }

// Close flushes nothing (appends are unbuffered) and releases the file
// handle. A closed store drops further appends silently.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock != nil {
		s.lock.Close() // releases any held flock with the descriptor
		s.lock = nil
	}
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	if errors.Is(err, os.ErrClosed) {
		return nil
	}
	return err
}
