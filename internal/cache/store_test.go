package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, dir
}

func dk(fp uint64, k int) DecisionKey {
	return DecisionKey{Fingerprint: fp, Device: "host", K: k, Shards: 1}
}

func TestStoreRoundTrip(t *testing.T) {
	st, dir := tempStore(t)
	for i := 0; i < 20; i++ {
		st.AppendDecision(dk(uint64(i), 1+i%3), Decision{Format: fmt.Sprintf("F%d", i), Probed: i%2 == 0})
	}
	st.AppendExperience(Experience{
		Device: "host", K: 8,
		FV:   core.FeatureVector{Rows: 100, Cols: 100, NNZ: 1000, AvgNNZPerRow: 10, MemFootprintMB: 0.01},
		Best: "SELL-C-s",
	})
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	keys, decs := re.Decisions()
	if len(keys) != 20 {
		t.Fatalf("reloaded %d decisions, want 20", len(keys))
	}
	for i, k := range keys {
		want := Decision{Format: fmt.Sprintf("F%d", k.Fingerprint), Probed: k.Fingerprint%2 == 0}
		if decs[i] != want {
			t.Errorf("key %+v: reloaded %+v, want %+v", k, decs[i], want)
		}
	}
	exps := re.Experiences()
	if len(exps) != 1 || exps[0].Best != "SELL-C-s" || exps[0].K != 8 {
		t.Fatalf("experiences reloaded wrong: %+v", exps)
	}
	if exps[0].FV.NNZ != 1000 {
		t.Errorf("experience feature vector lost: %+v", exps[0].FV)
	}
	stats := re.Stats()
	if stats.Decisions != 20 || stats.Experiences != 1 || stats.Invalidated {
		t.Errorf("stats = %+v", stats)
	}
}

// TestStoreCorruptionTolerance covers the satellite checklist: truncated
// lines, binary garbage and foreign-version records must all load cleanly,
// keeping every parseable current-version record.
func TestStoreCorruptionTolerance(t *testing.T) {
	st, dir := tempStore(t)
	st.AppendDecision(dk(1, 1), Decision{Format: "CSR5"})
	st.AppendDecision(dk(2, 8), Decision{Format: "ELL", Probed: true})
	st.Close()

	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Binary garbage, a foreign-version decision, a valid decision, and a
	// torn (truncated mid-JSON, no newline) tail.
	fmt.Fprintf(f, "\x00\x7f\xffnot json at all\n")
	fmt.Fprintf(f, `{"v":99,"kind":"decision","fp":3,"device":"host","k":1,"shards":1,"format":"Ghost"}`+"\n")
	fmt.Fprintf(f, `{"v":%d,"kind":"decision","lvl":%q,"fp":4,"device":"host","k":1,"shards":1,"format":"COO"}`+"\n", SchemaVersion, EffectiveLevel())
	fmt.Fprintf(f, `{"v":%d,"kind":"decision","fp":5,"device":"ho`, SchemaVersion)
	f.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen corrupted: %v", err)
	}
	defer re.Close()
	keys, _ := re.Decisions()
	if len(keys) != 3 {
		t.Fatalf("loaded %d decisions from corrupted journal, want 3 (got %+v)", len(keys), keys)
	}
	if _, ok := find(keys, dk(3, 1)); ok {
		t.Error("foreign-version record must not load")
	}
	if _, ok := find(keys, dk(4, 1)); !ok {
		t.Error("valid record after garbage must load")
	}
	if st := re.Stats(); st.Skipped < 2 {
		t.Errorf("skipped = %d, want >= 2 (garbage + foreign version)", st.Skipped)
	}
}

func find(keys []DecisionKey, want DecisionKey) (int, bool) {
	for i, k := range keys {
		if k == want {
			return i, true
		}
	}
	return 0, false
}

// TestStoreHostInvalidation: a journal written by a different machine (or
// schema) is measurement data about other hardware — it must be discarded
// wholesale and the file rewritten.
func TestStoreHostInvalidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	lines := []string{
		fmt.Sprintf(`{"v":%d,"kind":"header","schema":%d,"host":"plan9/mips/cpu512"}`, SchemaVersion, SchemaVersion),
		fmt.Sprintf(`{"v":%d,"kind":"decision","fp":1,"device":"host","k":1,"shards":1,"format":"CSR5"}`, SchemaVersion),
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open foreign journal: %v", err)
	}
	keys, _ := st.Decisions()
	if len(keys) != 0 {
		t.Fatalf("foreign-host decisions leaked: %+v", keys)
	}
	if !st.Stats().Invalidated {
		t.Error("stats should report invalidation")
	}
	// The rewrite must leave a fresh local header so the next process
	// trusts its own appends.
	st.AppendDecision(dk(9, 1), Decision{Format: "COO"})
	st.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hdr record
	first := strings.SplitN(string(b), "\n", 2)[0]
	if err := json.Unmarshal([]byte(first), &hdr); err != nil || hdr.Kind != "header" || hdr.Host != HostFingerprint() {
		t.Fatalf("rewritten journal header = %q", first)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if keys, _ := re.Decisions(); len(keys) != 1 {
		t.Fatalf("post-invalidation append lost: %+v", keys)
	}
}

func TestStoreCompaction(t *testing.T) {
	st, dir := tempStore(t)
	// 50 keys re-decided 10 times each: 500 lines, 450 dead.
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 50; i++ {
			st.AppendDecision(dk(uint64(i), 1), Decision{Format: fmt.Sprintf("F%d-%d", i, rep)})
		}
	}
	path := filepath.Join(dir, journalName)
	before, _ := os.Stat(path)
	if err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the journal: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends must keep working on the renamed file.
	st.AppendDecision(dk(999, 1), Decision{Format: "COO"})
	st.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	keys, decs := re.Decisions()
	if len(keys) != 51 {
		t.Fatalf("reloaded %d decisions after compaction, want 51", len(keys))
	}
	for i, k := range keys {
		if k.Fingerprint == 999 {
			continue
		}
		if want := fmt.Sprintf("F%d-9", k.Fingerprint); decs[i].Format != want {
			t.Errorf("key %d: %q, want latest %q", k.Fingerprint, decs[i].Format, want)
		}
	}
}

// TestStoreConcurrentPutPersist drives concurrent Put traffic through a
// journal-attached cache; run with -race. Reload verifies every key
// resolves to some value that was actually written.
func TestStoreConcurrentPutPersist(t *testing.T) {
	st, dir := tempStore(t)
	c := NewDecisionCache()
	c.AttachStore(st)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := dk(uint64(i%16), g%3)
				c.Put(k, Decision{Format: fmt.Sprintf("F%d", g)})
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	st.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	keys, decs := re.Decisions()
	if len(keys) == 0 {
		t.Fatal("no decisions persisted")
	}
	for i := range decs {
		if !strings.HasPrefix(decs[i].Format, "F") {
			t.Fatalf("key %+v holds foreign value %+v", keys[i], decs[i])
		}
	}
}

func TestStoreExperienceWindow(t *testing.T) {
	st, dir := tempStore(t)
	for i := 0; i < maxJournalExperiences+50; i++ {
		st.AppendExperience(Experience{Device: "host", K: 1, Best: fmt.Sprintf("F%d", i)})
	}
	if got := len(st.Experiences()); got != maxJournalExperiences {
		t.Fatalf("in-memory window holds %d, want %d", got, maxJournalExperiences)
	}
	st.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	exps := re.Experiences()
	if len(exps) != maxJournalExperiences {
		t.Fatalf("reloaded %d experiences, want %d (most recent)", len(exps), maxJournalExperiences)
	}
	if exps[len(exps)-1].Best != fmt.Sprintf("F%d", maxJournalExperiences+49) {
		t.Errorf("newest experience lost: %+v", exps[len(exps)-1])
	}
}

func TestDirResolution(t *testing.T) {
	prev := SetDir("")
	defer SetDir(prev)
	t.Setenv(EnvCacheDir, "/tmp/spmv-env-dir")
	d, err := Dir()
	if err != nil || d != "/tmp/spmv-env-dir" {
		t.Fatalf("Dir with env = %q, %v", d, err)
	}
	SetDir("/tmp/spmv-set-dir")
	d, err = Dir()
	if err != nil || d != "/tmp/spmv-set-dir" {
		t.Fatalf("Dir with override = %q, %v (override must beat env)", d, err)
	}
	SetDir("")
	t.Setenv(EnvCacheDir, "")
	d, err = Dir()
	if err != nil {
		t.Skipf("no user cache dir in this environment: %v", err)
	}
	if !strings.HasSuffix(d, "go-spmv") {
		t.Errorf("default dir = %q, want .../go-spmv", d)
	}
}
