package cache

import (
	"container/list"
	"sync"
)

// TuneKey identifies one autotuned structural parameter: the matrix
// (fingerprint), the device the measurement targeted, the RHS-count
// regime, and the parameter name ("bcsr.block", "spmm.tile", ...). The
// dispatch level is not part of the key — the journal scopes records to
// the level they were measured under (see EffectiveLevel), and within a
// process only one level's records are loaded.
type TuneKey struct {
	Fingerprint uint64 // matrix.CSR.Fingerprint()
	Device      string // device.Spec.Name the measurement targeted
	K           int    // right-hand-side count the winner targets
	Param       string // parameter name, e.g. "bcsr.block"
}

// DefaultTuneCap bounds the in-memory tune cache; like decisions, colder
// winners survive in the journal and re-warm on the next restart.
const DefaultTuneCap = 4096

// tuneEntry is one LRU node payload.
type tuneEntry struct {
	key   TuneKey
	value string
}

// TuneCache is a concurrency-safe, LRU-bounded store of autotune winners
// (parameter name -> winning value, e.g. "bcsr.block" -> "4x4"),
// optionally journal-backed so tuning is paid once per fingerprint. The
// zero value is not usable; construct with NewTuneCache.
type TuneCache struct {
	mu      sync.Mutex
	m       map[TuneKey]*list.Element // value: *tuneEntry
	lru     *list.List                // front = most recently used
	cap     int
	hits    uint64
	misses  uint64
	evicted uint64
	store   *Store
}

// NewTuneCache returns an empty tune cache bounded at DefaultTuneCap.
func NewTuneCache() *TuneCache {
	return &TuneCache{
		m:   make(map[TuneKey]*list.Element),
		lru: list.New(),
		cap: DefaultTuneCap,
	}
}

// Tunes is the process-wide autotune cache the selection subsystem
// consults by default, so repeated Auto builds of the same matrix reuse
// measured block shapes and tile widths instead of re-sweeping.
var Tunes = NewTuneCache()

// SetCap changes the eviction bound. n <= 0 restores DefaultTuneCap.
// Returns the previous cap.
func (c *TuneCache) SetCap(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.cap
	if n <= 0 {
		n = DefaultTuneCap
	}
	c.cap = n
	c.evictLocked()
	return prev
}

// evictLocked drops least-recently-used entries until len <= cap.
func (c *TuneCache) evictLocked() {
	for len(c.m) > c.cap {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*tuneEntry)
		delete(c.m, e.key)
		c.lru.Remove(back)
		c.evicted++
	}
}

// Get returns the cached winner for the key, if any, marking it most
// recently used.
func (c *TuneCache) Get(k TuneKey) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return "", false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*tuneEntry).value, true
}

// Put stores (or replaces) the winner for the key, journaling it when a
// store is attached. Like DecisionCache.Put, the append runs under the
// cache lock so journal order matches the in-memory winner, and any
// compaction runs after the lock is released.
func (c *TuneCache) Put(k TuneKey, value string) {
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		el.Value.(*tuneEntry).value = value
		c.lru.MoveToFront(el)
	} else {
		c.m[k] = c.lru.PushFront(&tuneEntry{key: k, value: value})
		c.evictLocked()
	}
	st := c.store
	if st != nil {
		st.AppendTune(k, value)
	}
	c.mu.Unlock()
	if st != nil && st.NeedsCompact() {
		_ = st.Compact()
	}
}

// AttachStore binds the cache to an open journal: the store's tune
// records warm-load into memory and every subsequent Put appends.
// Returns how many winners were warm-loaded. Attaching nil detaches.
func (c *TuneCache) AttachStore(st *Store) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
	if st == nil {
		return 0
	}
	keys, values := st.Tunes()
	for i, k := range keys { // journal order: oldest first
		if el, ok := c.m[k]; ok {
			el.Value.(*tuneEntry).value = values[i]
			c.lru.MoveToFront(el)
			continue
		}
		c.m[k] = c.lru.PushFront(&tuneEntry{key: k, value: values[i]})
	}
	c.evictLocked()
	return len(keys)
}

// Store returns the attached journal, or nil.
func (c *TuneCache) Store() *Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// Len returns the number of cached winners.
func (c *TuneCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the cumulative hit and miss counts.
func (c *TuneCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// InvalidateFingerprint drops every cached winner for the fingerprint
// across all contexts, mirroring DecisionCache.InvalidateFingerprint.
func (c *TuneCache) InvalidateFingerprint(fp uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, el := range c.m {
		if k.Fingerprint == fp {
			delete(c.m, k)
			c.lru.Remove(el)
			n++
		}
	}
	return n
}

// Clear drops every cached winner and resets the counters; the attached
// journal is untouched.
func (c *TuneCache) Clear() {
	c.mu.Lock()
	c.m = make(map[TuneKey]*list.Element)
	c.lru.Init()
	c.hits, c.misses, c.evicted = 0, 0, 0
	c.mu.Unlock()
}
