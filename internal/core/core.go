// Package core implements the paper's primary contribution: the minimal
// matrix feature set of Section III-A that links sparse-matrix structure to
// the four classic SpMV performance bottlenecks, together with feature
// extraction, size-class labelling and feature-space arithmetic.
//
// The five features (plus the generator-internal scaled bandwidth) are:
//
//	f1  MemFootprintMB - CSR storage size, driver of memory-bandwidth intensity
//	f2  AvgNNZPerRow   - mean row length, driver of instruction-level parallelism
//	f3  SkewCoeff      - (max-avg)/avg row length, driver of load imbalance
//	f4a CrossRowSim    - adjacent-row column overlap, temporal locality on x
//	f4b AvgNumNeigh    - same-row adjacent-column clustering, spatial locality on x
//	    BWScaled       - mean row bandwidth / ncols, the generator's placement window
package core

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Bottleneck enumerates the four SpMV performance bottlenecks of Section II-A.
type Bottleneck int

// The four bottlenecks, in the paper's order.
const (
	BandwidthIntensity Bottleneck = iota // streaming traffic vs. memory bandwidth
	LowILP                               // short rows, loop overhead, poor vectorization
	LoadImbalance                        // uneven nonzeros per row vs. work distribution
	MemoryLatency                        // irregular accesses to the x vector
)

// String returns the conventional name of the bottleneck.
func (b Bottleneck) String() string {
	switch b {
	case BandwidthIntensity:
		return "memory-bandwidth intensity"
	case LowILP:
		return "low ILP"
	case LoadImbalance:
		return "load imbalance"
	case MemoryLatency:
		return "memory latency overheads"
	}
	return fmt.Sprintf("Bottleneck(%d)", int(b))
}

// FeatureVector is a point in the paper's feature space. It fully describes
// a matrix for the purposes of the performance analysis; the artificial
// generator maps a FeatureVector (plus a seed) back to a concrete matrix.
type FeatureVector struct {
	Rows, Cols     int
	NNZ            int64
	MemFootprintMB float64 // f1: CSR bytes / 2^20
	AvgNNZPerRow   float64 // f2
	SkewCoeff      float64 // f3: (max-avg)/avg
	CrossRowSim    float64 // f4.a in [0,1]
	AvgNumNeigh    float64 // f4.b in [0,2]
	BWScaled       float64 // row bandwidth / cols, in [0,1]
}

// NeighborDistance is the maximum column distance (left or right) at which a
// same-row or next-row element counts as a neighbor. The paper uses 1.
const NeighborDistance = 1

// Extract measures the full feature vector of a concrete matrix. It runs in
// O(nnz) time and O(cols/64) extra space.
func Extract(m *matrix.CSR) FeatureVector {
	fv := FeatureVector{
		Rows:           m.Rows,
		Cols:           m.Cols,
		NNZ:            int64(m.NNZ()),
		MemFootprintMB: m.FootprintMB(),
		AvgNNZPerRow:   m.AvgRowNNZ(),
	}
	if m.Rows == 0 || m.NNZ() == 0 {
		return fv
	}
	avg := fv.AvgNNZPerRow
	fv.SkewCoeff = (float64(m.MaxRowNNZ()) - avg) / avg
	fv.AvgNumNeigh = AvgNumNeighbors(m)
	fv.CrossRowSim = CrossRowSimilarity(m)
	fv.BWScaled = AvgRowBandwidthScaled(m)
	return fv
}

// AvgNumNeighbors computes f4.b: for every nonzero, count same-row elements
// within NeighborDistance columns (left or right), then average over all
// nonzeros. Because columns within a row are sorted and unique, each nonzero
// has at most 2 such neighbors, so the result lies in [0, 2].
func AvgNumNeighbors(m *matrix.CSR) float64 {
	if m.NNZ() == 0 {
		return 0
	}
	var neigh int64
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k]-cols[k-1] <= NeighborDistance {
				neigh += 2 // the pair contributes one neighbor to each side
			}
		}
	}
	return float64(neigh) / float64(m.NNZ())
}

// CrossRowSimilarity computes f4.a: for each row, the fraction of its
// elements that have at least one element in the NEXT row within
// NeighborDistance columns; averaged over rows that have a next row and at
// least one element. The result lies in [0, 1].
func CrossRowSimilarity(m *matrix.CSR) float64 {
	if m.Rows < 2 {
		return 0
	}
	var simSum float64
	counted := 0
	for i := 0; i < m.Rows-1; i++ {
		cur, _ := m.Row(i)
		next, _ := m.Row(i + 1)
		if len(cur) == 0 {
			continue
		}
		counted++
		if len(next) == 0 {
			continue
		}
		matched := 0
		j := 0
		for _, c := range cur {
			// Advance the next-row cursor past columns left of the window.
			for j < len(next) && next[j] < c-NeighborDistance {
				j++
			}
			if j < len(next) && next[j] <= c+NeighborDistance {
				matched++
			}
		}
		simSum += float64(matched) / float64(len(cur))
	}
	if counted == 0 {
		return 0
	}
	return simSum / float64(counted)
}

// AvgRowBandwidthScaled returns the mean row bandwidth (column span of each
// non-empty row) divided by the number of columns, the generator's bw_scaled
// parameter measured on a concrete matrix.
func AvgRowBandwidthScaled(m *matrix.CSR) float64 {
	if m.Cols == 0 {
		return 0
	}
	var sum float64
	counted := 0
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) == 0 {
			continue
		}
		counted++
		sum += float64(m.RowBandwidth(i))
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted) / float64(m.Cols)
}

// SizeClass labels one regularity subfeature range as in Table III, where
// each subfeature's range is split into three equal subranges and "Small"
// implies an irregular matrix.
type SizeClass int

// Size classes in increasing order of regularity.
const (
	Small SizeClass = iota
	Medium
	Large
)

// String returns the Table III letter for the class.
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "S"
	case Medium:
		return "M"
	case Large:
		return "L"
	}
	return "?"
}

// ClassifyRange places v within [lo, hi] split into three equal subranges.
// Values outside the range clamp to the nearest class.
func ClassifyRange(v, lo, hi float64) SizeClass {
	if hi <= lo {
		return Medium
	}
	t := (v - lo) / (hi - lo)
	switch {
	case t < 1.0/3:
		return Small
	case t < 2.0/3:
		return Medium
	default:
		return Large
	}
}

// NeighClass classifies the f4.b value over its [0, 2] range.
func (f FeatureVector) NeighClass() SizeClass { return ClassifyRange(f.AvgNumNeigh, 0, 2) }

// SimClass classifies the f4.a value over its [0, 1] range.
func (f FeatureVector) SimClass() SizeClass { return ClassifyRange(f.CrossRowSim, 0, 1) }

// RegularityLabel returns the two-letter Table III label, neighbor class
// first, e.g. "LS" for clustered but dissimilar rows.
func (f FeatureVector) RegularityLabel() string {
	return f.NeighClass().String() + f.SimClass().String()
}

// OperationalIntensity returns the CSR flop-per-byte ratio of the matrix:
// 2 flops per nonzero over the CSR bytes plus the streaming store of y.
// The x-vector traffic is excluded here and handled by the cache model.
func (f FeatureVector) OperationalIntensity() float64 {
	bytes := f.MemFootprintMB*(1<<20) + 8*float64(f.Rows)
	if bytes == 0 {
		return 0
	}
	return 2 * float64(f.NNZ) / bytes
}

// OperationalIntensityMulti returns the flop-per-byte ratio of a fused
// k-vector SpMM pass over the matrix: 2k flops per nonzero against the CSR
// stream (loaded once per pass, however many right-hand sides ride on it)
// plus the k-wide streaming of the X and Y blocks. For k = 1 the x-block
// term is folded into the cache model exactly as in OperationalIntensity;
// for k > 1 the blocks are dense streams and are charged here. This is the
// RHS-count axis of the feature space: intensity grows almost linearly in
// k until the block traffic itself dominates, which is why the format
// win-rate ordering flips between the k = 1 and k = 8 regimes.
func (f FeatureVector) OperationalIntensityMulti(k int) float64 {
	if k <= 1 {
		return f.OperationalIntensity()
	}
	bytes := f.MemFootprintMB*(1<<20) + 8*float64(k)*float64(f.Rows+f.Cols)
	if bytes == 0 {
		return 0
	}
	return 2 * float64(f.NNZ) * float64(k) / bytes
}

// Distance returns a dimensionless feature-space distance used to pick the
// nearest friend of a validation matrix: the RMS of per-feature relative (or
// range-scaled) differences.
func Distance(a, b FeatureVector) float64 {
	rel := func(x, y float64) float64 {
		den := math.Max(math.Abs(x), math.Abs(y))
		if den == 0 {
			return 0
		}
		return (x - y) / den
	}
	d1 := rel(a.MemFootprintMB, b.MemFootprintMB)
	d2 := rel(a.AvgNNZPerRow, b.AvgNNZPerRow)
	d3 := rel(a.SkewCoeff+1, b.SkewCoeff+1) // +1 so balanced matrices compare stably
	d4 := (a.CrossRowSim - b.CrossRowSim)   // already in [0,1]
	d5 := (a.AvgNumNeigh - b.AvgNumNeigh) / 2
	return math.Sqrt((d1*d1 + d2*d2 + d3*d3 + d4*d4 + d5*d5) / 5)
}

// Scale returns a copy of f with the footprint-bearing dimensions (rows,
// nnz, footprint) multiplied by s, keeping the per-row features unchanged.
// Used to run native experiments at reduced scale.
func (f FeatureVector) Scale(s float64) FeatureVector {
	g := f
	g.Rows = int(math.Max(1, float64(f.Rows)*s))
	g.Cols = int(math.Max(1, float64(f.Cols)*s))
	g.NNZ = int64(float64(f.NNZ) * s)
	g.MemFootprintMB = f.MemFootprintMB * s
	return g
}

// String formats the feature vector compactly.
func (f FeatureVector) String() string {
	return fmt.Sprintf("fv{%.1fMB nzr=%.1f skew=%.0f sim=%.2f neigh=%.2f bw=%.2f}",
		f.MemFootprintMB, f.AvgNNZPerRow, f.SkewCoeff, f.CrossRowSim, f.AvgNumNeigh, f.BWScaled)
}
