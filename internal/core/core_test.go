package core

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

func TestExtractIdentity(t *testing.T) {
	m := matrix.Identity(100)
	fv := Extract(m)
	if fv.AvgNNZPerRow != 1 {
		t.Errorf("AvgNNZPerRow = %g, want 1", fv.AvgNNZPerRow)
	}
	if fv.SkewCoeff != 0 {
		t.Errorf("SkewCoeff = %g, want 0 for perfectly balanced", fv.SkewCoeff)
	}
	if fv.AvgNumNeigh != 0 {
		t.Errorf("AvgNumNeigh = %g, want 0 (single entry per row)", fv.AvgNumNeigh)
	}
	// Diagonal: next row's entry is at distance 1 -> full cross-row similarity.
	if fv.CrossRowSim != 1 {
		t.Errorf("CrossRowSim = %g, want 1 for the identity", fv.CrossRowSim)
	}
}

func TestExtractDenseRow(t *testing.T) {
	// One row, all columns occupied: every interior element has 2 neighbors.
	d := matrix.NewDense(1, 50)
	for j := 0; j < 50; j++ {
		d.Set(0, j, 1)
	}
	fv := Extract(matrix.FromDense(d))
	want := float64(2*49) / 50 // 49 adjacent pairs contribute 2 each
	if !floatNear(fv.AvgNumNeigh, want, 1e-12) {
		t.Errorf("AvgNumNeigh = %g, want %g", fv.AvgNumNeigh, want)
	}
	if fv.BWScaled != 1 {
		t.Errorf("BWScaled = %g, want 1 for a full row", fv.BWScaled)
	}
}

func TestSkewCoeffDefinition(t *testing.T) {
	// Rows with 1,1,1,5 nonzeros: avg=2, max=5 -> skew=(5-2)/2=1.5.
	m := matrix.RandomRowSizes(4, 100, []int{1, 1, 1, 5}, 9)
	fv := Extract(m)
	if !floatNear(fv.SkewCoeff, 1.5, 1e-12) {
		t.Errorf("SkewCoeff = %g, want 1.5", fv.SkewCoeff)
	}
}

func TestCrossRowSimExtremes(t *testing.T) {
	// Two identical rows -> similarity 1.
	o := matrix.NewCOO(2, 10, 6)
	for _, c := range []int32{1, 4, 8} {
		o.Append(0, c, 1)
		o.Append(1, c, 1)
	}
	fv := Extract(o.ToCSR())
	if fv.CrossRowSim != 1 {
		t.Errorf("identical rows: CrossRowSim = %g, want 1", fv.CrossRowSim)
	}

	// Disjoint far-apart rows -> similarity 0.
	o2 := matrix.NewCOO(2, 100, 4)
	o2.Append(0, 10, 1)
	o2.Append(0, 20, 1)
	o2.Append(1, 50, 1)
	o2.Append(1, 90, 1)
	fv2 := Extract(o2.ToCSR())
	if fv2.CrossRowSim != 0 {
		t.Errorf("disjoint rows: CrossRowSim = %g, want 0", fv2.CrossRowSim)
	}
}

func TestCrossRowSimWindow(t *testing.T) {
	// Next-row element within distance 1 counts, beyond does not.
	o := matrix.NewCOO(2, 10, 2)
	o.Append(0, 5, 1)
	o.Append(1, 6, 1) // distance 1: neighbor
	if fv := Extract(o.ToCSR()); fv.CrossRowSim != 1 {
		t.Errorf("distance-1: CrossRowSim = %g, want 1", fv.CrossRowSim)
	}
	o2 := matrix.NewCOO(2, 10, 2)
	o2.Append(0, 5, 1)
	o2.Append(1, 7, 1) // distance 2: not a neighbor
	if fv := Extract(o2.ToCSR()); fv.CrossRowSim != 0 {
		t.Errorf("distance-2: CrossRowSim = %g, want 0", fv.CrossRowSim)
	}
}

func TestAvgNumNeighborsRange(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		m := matrix.Random(50, 50, 0.2, seed)
		fv := Extract(m)
		if fv.AvgNumNeigh < 0 || fv.AvgNumNeigh > 2 {
			t.Errorf("AvgNumNeigh = %g outside [0,2]", fv.AvgNumNeigh)
		}
		if fv.CrossRowSim < 0 || fv.CrossRowSim > 1 {
			t.Errorf("CrossRowSim = %g outside [0,1]", fv.CrossRowSim)
		}
		if fv.BWScaled < 0 || fv.BWScaled > 1 {
			t.Errorf("BWScaled = %g outside [0,1]", fv.BWScaled)
		}
	}
}

func TestEmptyAndTinyMatrices(t *testing.T) {
	empty, err := matrix.NewCSR(0, 0, []int32{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fv := Extract(empty)
	if fv.NNZ != 0 || fv.AvgNNZPerRow != 0 || fv.SkewCoeff != 0 {
		t.Error("empty matrix features not zero")
	}

	single := matrix.Identity(1)
	fv2 := Extract(single)
	if fv2.CrossRowSim != 0 {
		t.Error("single-row matrix should have zero cross-row similarity")
	}
}

func TestClassifyRange(t *testing.T) {
	cases := []struct {
		v    float64
		want SizeClass
	}{
		{0.0, Small}, {0.3, Small}, {0.4, Medium}, {0.6, Medium}, {0.7, Large}, {1.0, Large},
		{-1, Small}, {2, Large}, // clamped
	}
	for _, tc := range cases {
		if got := ClassifyRange(tc.v, 0, 1); got != tc.want {
			t.Errorf("ClassifyRange(%g) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestRegularityLabel(t *testing.T) {
	fv := FeatureVector{AvgNumNeigh: 1.9, CrossRowSim: 0.1}
	if got := fv.RegularityLabel(); got != "LS" {
		t.Errorf("RegularityLabel = %q, want LS", got)
	}
}

func TestOperationalIntensityBelowOne(t *testing.T) {
	// The paper: SpMV flop-per-byte ratio is below 1 for CSR.
	m := matrix.Random(200, 200, 0.1, 3)
	fv := Extract(m)
	oi := fv.OperationalIntensity()
	if oi <= 0 || oi >= 1 {
		t.Errorf("OperationalIntensity = %g, want in (0,1)", oi)
	}
}

func TestDistanceProperties(t *testing.T) {
	a := FeatureVector{MemFootprintMB: 100, AvgNNZPerRow: 20, SkewCoeff: 10, CrossRowSim: 0.5, AvgNumNeigh: 1}
	if d := Distance(a, a); d != 0 {
		t.Errorf("Distance(a,a) = %g, want 0", d)
	}
	b := a
	b.MemFootprintMB = 200
	if Distance(a, b) <= 0 {
		t.Error("distance to a different point should be positive")
	}
	if math.Abs(Distance(a, b)-Distance(b, a)) > 1e-15 {
		t.Error("distance not symmetric")
	}
	c := a
	c.MemFootprintMB = 1000
	if Distance(a, c) <= Distance(a, b) {
		t.Error("larger feature gap should give larger distance")
	}
}

func TestScale(t *testing.T) {
	a := FeatureVector{Rows: 1000, Cols: 1000, NNZ: 20000, MemFootprintMB: 64, AvgNNZPerRow: 20, SkewCoeff: 5}
	s := a.Scale(0.25)
	if s.Rows != 250 || s.NNZ != 5000 || s.MemFootprintMB != 16 {
		t.Errorf("Scale wrong: %+v", s)
	}
	if s.AvgNNZPerRow != a.AvgNNZPerRow || s.SkewCoeff != a.SkewCoeff {
		t.Error("Scale must keep per-row features")
	}
}

func TestOperationalIntensityMulti(t *testing.T) {
	fv := FeatureVector{Rows: 1000, Cols: 1000, NNZ: 20000, MemFootprintMB: 0.25}
	if got, want := fv.OperationalIntensityMulti(1), fv.OperationalIntensity(); got != want {
		t.Errorf("k=1 intensity %g != OperationalIntensity %g", got, want)
	}
	if got, want := fv.OperationalIntensityMulti(0), fv.OperationalIntensity(); got != want {
		t.Errorf("k=0 intensity %g != OperationalIntensity %g", got, want)
	}
	i1 := fv.OperationalIntensityMulti(1)
	i8 := fv.OperationalIntensityMulti(8)
	i64 := fv.OperationalIntensityMulti(64)
	if i8 <= i1 {
		t.Errorf("k=8 intensity %g should exceed k=1 %g (stream amortized)", i8, i1)
	}
	// Sublinear growth: the X/Y block traffic scales with k, so intensity
	// must grow slower than k itself.
	if i8 >= 8*i1 {
		t.Errorf("k=8 intensity %g grew linearly (k=1: %g); block traffic ignored", i8, i1)
	}
	if i64 <= i8 {
		t.Errorf("intensity should keep rising toward the block-traffic bound (k=64 %g vs k=8 %g)", i64, i8)
	}
	if (FeatureVector{}).OperationalIntensityMulti(8) != 0 {
		t.Error("empty feature vector should have zero intensity")
	}
}

func TestBottleneckStrings(t *testing.T) {
	for b, want := range map[Bottleneck]string{
		BandwidthIntensity: "memory-bandwidth intensity",
		LowILP:             "low ILP",
		LoadImbalance:      "load imbalance",
		MemoryLatency:      "memory latency overheads",
	} {
		if b.String() != want {
			t.Errorf("Bottleneck %d = %q, want %q", int(b), b.String(), want)
		}
	}
}

func floatNear(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
