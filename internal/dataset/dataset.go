// Package dataset defines the paper's matrix datasets: the Table I
// artificial feature grid in its three sizes (the ~3K "small", the 16200
// "medium" used for all cross-device analysis, and the 27K "large" used for
// the dataset-size ablation of Fig. 8), and the Table III validation suite
// of 45 widely used real matrices together with their ±30% artificial
// "friends".
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/core"
)

// Table I feature values.
var (
	// FootprintClasses are the f1 ranges in MiB.
	FootprintClasses = [3][2]float64{{4, 32}, {32, 512}, {512, 2048}}
	// AvgNNZValues are the f2 grid points.
	AvgNNZValues = []float64{5, 10, 20, 50, 100, 500}
	// SkewValues are the f3 grid points.
	SkewValues = []float64{0, 100, 1000, 10000}
	// SimValues are the f4.a grid points.
	SimValues = []float64{0.05, 0.5, 0.95}
	// NeighValues are the f4.b grid points.
	NeighValues = []float64{0.05, 0.5, 0.95, 1.4, 1.9}
	// BWValues are the generator's scaled-bandwidth settings.
	BWValues = []float64{0.05, 0.3, 0.6}
)

// Size selects one of the three dataset magnitudes of Section V-E.
type Size int

// Dataset sizes.
const (
	Small  Size = iota // ~3K matrices, SuiteSparse-sized
	Medium             // 16200 matrices, the paper's analysis dataset
	Large              // 27000 matrices, the Fig. 8 ablation
)

// String names the size.
func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return "unknown"
}

// footprintSamplesPerClass returns how many log-spaced footprints each
// class contributes: 1 -> 3240 points, 5 -> 16200, 25/3 -> 27000.
func (s Size) footprintSamplesPerClass() int {
	switch s {
	case Small:
		return 1
	case Large:
		return 8 // 24 footprints + one extra on the last class = 25
	default:
		return 5
	}
}

// Footprints returns the f1 sample values for the dataset size.
func (s Size) Footprints() []float64 {
	per := s.footprintSamplesPerClass()
	var out []float64
	for ci, class := range FootprintClasses {
		n := per
		if s == Large && ci == len(FootprintClasses)-1 {
			n = per + 1 // 25 total, giving the paper's 27000 points
		}
		lo, hi := class[0], class[1]
		for i := 0; i < n; i++ {
			// Log-spaced samples strictly inside the class.
			t := (float64(i) + 0.5) / float64(n)
			out = append(out, lo*math.Pow(hi/lo, t))
		}
	}
	return out
}

// Grid returns the full feature-space grid for the dataset size. Matrices
// are square; rows follow from footprint and average row length via the
// CSR byte formula.
func (s Size) Grid() []core.FeatureVector {
	var out []core.FeatureVector
	for _, mb := range s.Footprints() {
		for _, avg := range AvgNNZValues {
			for _, skew := range SkewValues {
				for _, sim := range SimValues {
					for _, neigh := range NeighValues {
						for _, bw := range BWValues {
							out = append(out, Point(mb, avg, skew, sim, neigh, bw))
						}
					}
				}
			}
		}
	}
	return out
}

// Point builds the feature vector of one grid configuration.
func Point(mb, avg, skew, sim, neigh, bw float64) core.FeatureVector {
	rows := int((mb*(1<<20) - 4) / (12*avg + 4))
	if rows < 1 {
		rows = 1
	}
	return core.FeatureVector{
		Rows: rows, Cols: rows,
		NNZ:            int64(math.Round(avg * float64(rows))),
		MemFootprintMB: mb,
		AvgNNZPerRow:   avg,
		SkewCoeff:      skew,
		CrossRowSim:    sim,
		AvgNumNeigh:    neigh,
		BWScaled:       bw,
	}
}

// GridSize returns the number of points without materializing the grid.
func (s Size) GridSize() int {
	return len(s.Footprints()) * len(AvgNNZValues) * len(SkewValues) *
		len(SimValues) * len(NeighValues) * len(BWValues)
}

// Sample returns a deterministic subsample of the grid of approximately n
// points, preserving the grid's coverage by striding.
func (s Size) Sample(n int, seed int64) []core.FeatureVector {
	grid := s.Grid()
	if n <= 0 || n >= len(grid) {
		return grid
	}
	rng := rand.New(rand.NewSource(seed))
	stride := len(grid) / n
	out := make([]core.FeatureVector, 0, n)
	for i := rng.Intn(stride); i < len(grid) && len(out) < n; i += stride {
		out = append(out, grid[i])
	}
	return out
}
