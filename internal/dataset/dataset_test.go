package dataset

import (
	"math"
	"testing"
)

func TestGridSizesMatchPaper(t *testing.T) {
	// Section V-E: ~3K, 16200 (Table I), and 27000 matrices.
	if got := Medium.GridSize(); got != 16200 {
		t.Errorf("medium grid = %d, want 16200", got)
	}
	if got := Large.GridSize(); got != 27000 {
		t.Errorf("large grid = %d, want 27000", got)
	}
	small := Small.GridSize()
	if small < 2500 || small > 4000 {
		t.Errorf("small grid = %d, want ~3K", small)
	}
	if len(Medium.Grid()) != Medium.GridSize() {
		t.Error("GridSize disagrees with the materialized grid")
	}
}

func TestFootprintsInsideClasses(t *testing.T) {
	for _, size := range []Size{Small, Medium, Large} {
		for _, mb := range size.Footprints() {
			if mb < FootprintClasses[0][0] || mb > FootprintClasses[2][1] {
				t.Errorf("%v: footprint %g outside Table I bounds", size, mb)
			}
		}
	}
}

func TestGridPointConsistency(t *testing.T) {
	for _, fv := range Small.Grid()[:200] {
		if fv.Rows <= 0 || fv.NNZ <= 0 {
			t.Fatalf("degenerate point %+v", fv)
		}
		// The CSR footprint formula must invert within rounding.
		impliedMB := (float64(fv.NNZ)*12 + float64(fv.Rows+1)*4) / (1 << 20)
		if math.Abs(impliedMB-fv.MemFootprintMB) > 0.02*fv.MemFootprintMB {
			t.Fatalf("footprint mismatch: point %g MB implies %g MB", fv.MemFootprintMB, impliedMB)
		}
		if fv.Rows != fv.Cols {
			t.Fatal("grid matrices must be square")
		}
	}
}

func TestSample(t *testing.T) {
	s := Medium.Sample(100, 7)
	if len(s) == 0 || len(s) > 110 {
		t.Errorf("sample size %d", len(s))
	}
	again := Medium.Sample(100, 7)
	for i := range s {
		if s[i] != again[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	full := Small.Sample(0, 1)
	if len(full) != Small.GridSize() {
		t.Error("n=0 should return the full grid")
	}
}

func TestTableIIIComplete(t *testing.T) {
	suite := TableIII()
	if len(suite) != 45 {
		t.Fatalf("validation suite = %d matrices, want 45", len(suite))
	}
	seen := map[string]bool{}
	prevMB := 0.0
	for i, v := range suite {
		if v.ID != i+1 {
			t.Errorf("%s: ID %d at position %d", v.Name, v.ID, i)
		}
		if seen[v.Name] {
			t.Errorf("duplicate matrix %s", v.Name)
		}
		seen[v.Name] = true
		if v.FootprintMB < prevMB {
			t.Errorf("%s: suite not ordered by footprint", v.Name)
		}
		prevMB = v.FootprintMB
		if len(v.Regularity) != 2 {
			t.Errorf("%s: bad regularity label %q", v.Name, v.Regularity)
		}
		for _, c := range v.Regularity {
			if c != 'S' && c != 'M' && c != 'L' {
				t.Errorf("%s: bad class letter %q", v.Name, c)
			}
		}
	}
	// Spot checks against the published table.
	if suite[0].Name != "scircuit" || suite[44].Name != "cage15" {
		t.Error("suite endpoints wrong")
	}
	if suite[37].Skew != 8006372.09 {
		t.Errorf("mawi skew = %g", suite[37].Skew)
	}
}

func TestValidationFeatures(t *testing.T) {
	v := TableIII()[0] // scircuit: 11.63 MB, 5.61 nnz/row, skew 61.95, MM
	fv := v.Features()
	if math.Abs(fv.MemFootprintMB-11.63) > 1e-9 || math.Abs(fv.SkewCoeff-61.95) > 1e-9 {
		t.Errorf("features %+v do not match the table", fv)
	}
	if math.Abs(fv.AvgNumNeigh-1.0) > 1e-9 {
		t.Errorf("M neighbor class midpoint = %g, want 1.0", fv.AvgNumNeigh)
	}
	if math.Abs(fv.CrossRowSim-0.5) > 1e-9 {
		t.Errorf("M similarity class midpoint = %g, want 0.5", fv.CrossRowSim)
	}
}

func TestFriendsWithinRange(t *testing.T) {
	v := TableIII()[10] // cant
	friends := v.Friends(0, 42)
	if len(friends) != FriendsPerMatrix {
		t.Fatalf("friends = %d, want %d", len(friends), FriendsPerMatrix)
	}
	for _, f := range friends {
		if f.MemFootprintMB < v.FootprintMB*(1-FriendRange)-1e-9 ||
			f.MemFootprintMB > v.FootprintMB*(1+FriendRange)+1e-9 {
			t.Errorf("friend footprint %g outside ±30%% of %g", f.MemFootprintMB, v.FootprintMB)
		}
		if f.AvgNNZPerRow < v.AvgNNZ*(1-FriendRange)-1e-9 ||
			f.AvgNNZPerRow > v.AvgNNZ*(1+FriendRange)+1e-9 {
			t.Errorf("friend avg %g outside ±30%% of %g", f.AvgNNZPerRow, v.AvgNNZ)
		}
		if f.CrossRowSim < 0 || f.CrossRowSim > 1 || f.AvgNumNeigh < 0 || f.AvgNumNeigh >= 2 {
			t.Errorf("friend regularity out of range: %+v", f)
		}
	}
	// Determinism.
	again := v.Friends(0, 42)
	for i := range friends {
		if friends[i] != again[i] {
			t.Fatal("friends not deterministic")
		}
	}
	// Different matrices get different friends.
	other := TableIII()[11].Friends(0, 42)
	if friends[0] == other[0] {
		t.Error("two matrices share identical friends")
	}
}
