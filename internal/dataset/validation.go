package dataset

import (
	"math/rand"

	"repro/internal/core"
)

// ValidationMatrix is one row of Table III: a widely used real matrix
// described by its published features. The regularity label holds the
// avg-num-neighbors class first and the cross-row-similarity class second;
// "S" (small) implies an irregular matrix.
type ValidationMatrix struct {
	ID          int
	Name        string
	FootprintMB float64 // f1
	AvgNNZ      float64 // f2
	Skew        float64 // f3
	Regularity  string  // f4, e.g. "MM", "LS"
}

// TableIII returns the 45-matrix validation suite with the features
// published in the paper.
func TableIII() []ValidationMatrix {
	return []ValidationMatrix{
		{1, "scircuit", 11.63, 5.61, 61.95, "MM"},
		{2, "mac_econ_fwd500", 15.36, 6.17, 6.14, "MS"},
		{3, "raefsky3", 17.12, 70.22, 0.14, "LL"},
		{4, "bbmat", 20.42, 45.73, 1.76, "LM"},
		{5, "conf5_4-8x8-15", 22.13, 39, 0, "LL"},
		{6, "mc2depi", 26.04, 3.99, 0, "LS"},
		{7, "rma10", 27.35, 50.69, 1.86, "LL"},
		{8, "cop20k_A", 30.5, 21.65, 2.74, "MM"},
		{9, "thermomech_dK", 33.35, 13.93, 0.44, "MM"},
		{10, "webbase-1M", 39.35, 3.11, 1512.43, "LS"},
		{11, "cant", 46.1, 64.17, 0.22, "LL"},
		{12, "ASIC_680k", 46.91, 5.67, 69710.56, "LM"},
		{13, "pdb1HYS", 49.86, 119.31, 0.71, "LL"},
		{14, "TSOPF_RS_b300_c3", 50.67, 104.74, 1, "LL"},
		{15, "Chebyshev4", 61.8, 78.94, 861.9, "LL"},
		{16, "consph", 69.1, 72.13, 0.12, "LL"},
		{17, "com-Youtube", 72.71, 5.27, 5460.3, "MS"},
		{18, "rajat30", 73.13, 9.59, 47421.8, "MM"},
		{19, "radiation", 88.26, 34.23, 101.18, "SS"},
		{20, "Stanford_Berkeley", 89.39, 11.1, 7519.69, "MM"},
		{21, "shipsec1", 89.95, 55.46, 0.84, "LL"},
		{22, "PR02R", 94.29, 50.82, 0.81, "LM"},
		{23, "gupta3", 106.76, 555.53, 25.41, "LL"},
		{24, "mip1", 118.73, 155.77, 425.24, "LL"},
		{25, "rail4284", 129.15, 2633.99, 20.33, "SL"},
		{26, "pwtk", 133.98, 53.39, 2.37, "LL"},
		{27, "crankseg_2", 162.16, 221.64, 14.44, "LL"},
		{28, "Si41Ge41H72", 172.5, 80.86, 7.19, "LM"},
		{29, "TSOPF_RS_b2383", 185.21, 424.22, 1.32, "LL"},
		{30, "in-2004", 198.88, 12.23, 632.78, "LL"},
		{31, "Ga41As41H72", 212.61, 68.96, 9.18, "LM"},
		{32, "eu-2005", 223.42, 22.3, 312.27, "LM"},
		{33, "wikipedia-20051105", 232.29, 12.08, 410.37, "SS"},
		{34, "human_gene1", 282.41, 1107.11, 6.17, "SS"},
		{35, "delaunay_n22", 304, 6, 2.83, "MS"},
		{36, "sx-stackoverflow", 424.58, 13.93, 2738.46, "SS"},
		{37, "dgreen", 442.43, 31.87, 4.87, "SS"},
		{38, "mawi_201512012345", 506.18, 2.05, 8006372.09, "LM"},
		{39, "ldoor", 536.04, 48.86, 0.58, "LL"},
		{40, "dielFilterV2real", 559.9, 41.94, 1.62, "MM"},
		{41, "circuit5M", 702.4, 10.71, 120504.85, "LM"},
		{42, "soc-LiveJournal1", 808.06, 14.23, 1424.81, "SS"},
		{43, "bone010", 823.92, 72.63, 0.12, "LL"},
		{44, "audikw_1", 892.25, 82.28, 3.19, "LL"},
		{45, "cage15", 1154.91, 19.24, 1.44, "LS"},
	}
}

// classMid maps a Table III class letter to the midpoint of its subrange.
func classMid(letter byte, lo, hi float64) float64 {
	span := (hi - lo) / 3
	switch letter {
	case 'S':
		return lo + span/2
	case 'M':
		return lo + span*1.5
	default: // 'L'
		return lo + span*2.5
	}
}

// Features converts the published row into a full feature vector. The
// paper publishes class labels rather than raw regularity values, so the
// subfeature midpoints stand in; the scaled bandwidth is not published and
// defaults to the grid midpoint.
func (v ValidationMatrix) Features() core.FeatureVector {
	neigh := classMid(v.Regularity[0], 0, 2)
	sim := classMid(v.Regularity[1], 0, 1)
	fv := Point(v.FootprintMB, v.AvgNNZ, v.Skew, sim, neigh, 0.3)
	return fv
}

// FriendsPerMatrix is the approximate number of artificial friends the
// paper generates per validation matrix.
const FriendsPerMatrix = 70

// FriendRange is the ± relative range friends explore around each feature.
const FriendRange = 0.30

// Friends generates the artificial companions of a validation matrix:
// feature vectors drawn uniformly within ±30% of each feature,
// deterministic in the suite seed and matrix ID.
func (v ValidationMatrix) Friends(n int, seed int64) []core.FeatureVector {
	if n <= 0 {
		n = FriendsPerMatrix
	}
	rng := rand.New(rand.NewSource(seed*1000003 + int64(v.ID)))
	base := v.Features()
	out := make([]core.FeatureVector, 0, n)
	for i := 0; i < n; i++ {
		perturb := func(x float64) float64 {
			return x * (1 + (rng.Float64()*2-1)*FriendRange)
		}
		mb := perturb(v.FootprintMB)
		avg := perturb(v.AvgNNZ)
		if avg < 1 {
			avg = 1
		}
		skew := perturb(v.Skew)
		sim := clampRange(perturb(base.CrossRowSim), 0, 1)
		neigh := clampRange(perturb(base.AvgNumNeigh), 0, 1.99)
		bw := clampRange(perturb(base.BWScaled), 0.01, 1)
		out = append(out, Point(mb, avg, skew, sim, neigh, bw))
	}
	return out
}

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
