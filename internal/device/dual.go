package device

// Dual-socket modeling, the multi-device execution behaviour the paper
// leaves for future work ("Shedding more light to multiple device execution
// behavior (e.g. dual CPU/socket) is left for future work", Section IV).

// NUMA efficiency knobs for the dual-socket extension.
const (
	// Fraction of x-vector gathers that cross the socket interconnect when
	// the matrix band spans both halves of an interleaved allocation.
	dualRemoteShare = 0.35
	// Remote accesses run at this fraction of local bandwidth.
	dualRemoteEff = 0.6
)

// Dual returns a two-socket variant of a CPU spec under first-touch NUMA
// placement: doubled cores, cache and local bandwidth, but cross-socket
// traffic at reduced efficiency, so the effective bandwidth scales by less
// than 2x. Non-CPU specs are returned unchanged (accelerators do not gang
// this way for a single SpMV).
func (s Spec) Dual() Spec {
	if s.Class != CPU {
		return s
	}
	d := s
	d.Name = s.Name + "-2S"
	d.Units = 2 * s.Units
	d.LLCBytes = 2 * s.LLCBytes
	// Effective DRAM bandwidth: local share at double rate, remote share
	// crossing the interconnect.
	scale := 2 * ((1 - dualRemoteShare) + dualRemoteShare*dualRemoteEff)
	d.MemBWGBs = s.MemBWGBs * scale
	d.LLCBWGBs = s.LLCBWGBs * 2
	d.TDPWatts = 2 * s.TDPWatts
	d.IdleWatts = 2 * s.IdleWatts
	return d
}
