package device

import "testing"

func TestDualSocketScaling(t *testing.T) {
	s, _ := ByName("AMD-EPYC-64")
	d := s.Dual()
	if d.Units != 2*s.Units || d.LLCBytes != 2*s.LLCBytes {
		t.Error("dual socket should double cores and LLC")
	}
	if d.MemBWGBs <= s.MemBWGBs || d.MemBWGBs >= 2*s.MemBWGBs {
		t.Errorf("dual bandwidth %.1f should lie strictly between 1x and 2x of %.1f",
			d.MemBWGBs, s.MemBWGBs)
	}
	if d.Name == s.Name {
		t.Error("dual spec must be distinguishable")
	}
}

func TestDualSocketSpeedupSubLinear(t *testing.T) {
	s, _ := ByName("AMD-EPYC-64")
	d := s.Dual()
	// A DRAM-bound matrix gains from the second socket, but less than 2x.
	fv := fvAt(2048, 20, 0)
	single := s.Estimate(fv, "Naive-CSR")
	dual := d.Estimate(fv, "Naive-CSR")
	speedup := dual.GFLOPS / single.GFLOPS
	if speedup <= 1.2 || speedup >= 2 {
		t.Errorf("dual-socket speedup = %.2fx, want in (1.2, 2)", speedup)
	}
	// Energy efficiency should not improve: double power for sub-2x gain.
	if dual.GFLOPSPerWatt() > single.GFLOPSPerWatt()*1.02 {
		t.Errorf("dual socket should not beat single on GFLOPS/W: %.3f vs %.3f",
			dual.GFLOPSPerWatt(), single.GFLOPSPerWatt())
	}
}

func TestDualNonCPUUnchanged(t *testing.T) {
	g, _ := ByName("Tesla-A100")
	if d := g.Dual(); d.Name != g.Name || d.Units != g.Units {
		t.Error("non-CPU specs must pass through Dual unchanged")
	}
}
