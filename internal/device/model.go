package device

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/formats"
	"repro/internal/roofline"
)

// Result is the model's prediction for one (device, matrix, format)
// configuration.
type Result struct {
	GFLOPS     float64
	Watts      float64
	Feasible   bool
	Reason     string          // why infeasible, when Feasible is false
	Bottleneck core.Bottleneck // dominant limiter of this configuration
}

// GFLOPSPerWatt returns the energy-efficiency metric of Fig. 2b.
func (r Result) GFLOPSPerWatt() float64 {
	if r.Watts <= 0 {
		return 0
	}
	return r.GFLOPS / r.Watts
}

// Model knobs. These are fixed constants of the reproduction, documented
// here rather than tuned per experiment.
const (
	// loop overhead charged per row, in unit-cycles; vectorized kernels
	// amortize loop control better.
	rowOverheadScalar = 4.0
	rowOverheadVector = 2.0

	// GPU parallelism ramp: nonzeros needed per CUDA core for half of full
	// device utilization (small matrices cannot fill the device).
	gpuRampPerUnit = 128.0

	// GPU gather sector size for x misses; CPUs fetch whole lines.
	gpuSectorBytes = 32.0

	// Fraction of the GPU L2 effectively available to x: the matrix stream
	// itself occupies most of the small L2.
	gpuXCacheShare = 0.125

	// Streaming efficiency of gather-heavy GPU kernels against the
	// measured copy bandwidth, plus fixed per-nonzero kernel overhead
	// traffic (descriptor reads, transaction slack); together these bring
	// the model in line with published cuSPARSE double-precision rates.
	gpuStreamEff          = 0.5
	gpuKernelOverheadByte = 8.0

	// SpMV streams reach only a fraction of the aggregate LLC bandwidth a
	// bandwidth benchmark measures (the paper's Table II numbers are
	// all-core aggregates; L3 slices are private per core complex), and
	// slightly less than STREAM's triad rate from DRAM because of the
	// irregular gather mixed into the stream.
	cpuLLCStreamEff  = 0.42
	cpuDRAMStreamEff = 0.85

	// GPUs hold high clocks regardless of stalls; power never falls below
	// this utilization share.
	gpuPowerFloor = 0.65

	// Fraction of the LLC usable by the working set before thrashing.
	llcUsable = 0.85

	// HBM-image inflation per unit of skew for the FPGA's 2D-partitioned
	// layout (capacity gate only; the execution units skip all-zero beats).
	fpgaLayoutSkewFactor = 0.02

	// measurement-noise stand-in: deterministic jitter amplitude.
	jitterAmp = 0.06
)

// Estimate predicts performance and power for a matrix described by its
// features, stored in the named format. Format traits are derived
// analytically via formats.EstimateTraits.
func (s Spec) Estimate(fv core.FeatureVector, formatName string) Result {
	return s.estimateMulti(fv, formatName, 1, true)
}

// fallbackMultiEff is the per-vector efficiency of the by-column SpMM
// fallback relative to k independent single-vector calls: the fallback
// pays a dense gather of X and scatter of Y per vector on top of the
// kernel proper.
const fallbackMultiEff = 0.92

// EstimateMulti predicts performance and power for a k-wide multi-vector
// SpMV (SpMM) pass in the named format — the RHS-count axis of the model.
// Result.GFLOPS counts all 2*k*nnz flops, so values are comparable across
// formats at fixed k and show the fusion speedup over Estimate directly.
//
// Formats with fused MultiplyMany kernels stream the matrix once per pass
// and reuse every loaded nonzero k times, so their arithmetic intensity
// (core.FeatureVector.OperationalIntensityMulti) — and modeled rate —
// grows with k until the X/Y block traffic dominates. Formats on the
// by-column fallback execute k sequential single-vector passes and keep
// their k = 1 rate minus the block copy overhead. This asymmetry is what
// flips the win-rate ordering between regimes (e.g. ELL's padding skip
// promotes it under SpMM; CSR5 falls behind its k = 1 rank).
func (s Spec) EstimateMulti(fv core.FeatureVector, formatName string, k int) Result {
	return s.estimateMulti(fv, formatName, k, true)
}

// RankMulti is EstimateMulti without the deterministic measurement-noise
// jitter: the selection subsystem ranks candidates by the model's central
// estimate (noise in the ranking input only scrambles near-ties), while
// the figure and evaluation paths keep the noisy variant that stands in
// for measured data.
func (s Spec) RankMulti(fv core.FeatureVector, formatName string, k int) Result {
	return s.estimateMulti(fv, formatName, k, false)
}

func (s Spec) estimateMulti(fv core.FeatureVector, formatName string, k int, noise bool) Result {
	if k < 1 {
		k = 1
	}
	if !formats.EstimateFeasible(formatName, fv) {
		return Result{Feasible: false, Reason: formatName + ": structure-hostile build rejected"}
	}
	tr, fused := formats.MultiTraits(formatName, fv, k)
	if k > 1 && !fused {
		r := s.estimateWithTraitsK(fv, tr, 1)
		if !r.Feasible {
			return r
		}
		r.GFLOPS *= fallbackMultiEff
		if noise {
			r.GFLOPS *= 1 + jitterK(s.Name, formatName, fv, k)*jitterAmp
		}
		return r
	}
	r := s.estimateWithTraitsK(fv, tr, k)
	if r.Feasible && noise {
		if k > 1 {
			r.GFLOPS *= 1 + jitterK(s.Name, formatName, fv, k)*jitterAmp
		} else {
			r.GFLOPS *= 1 + jitter(s.Name, formatName, fv)*jitterAmp
		}
	}
	return r
}

// EstimateWithTraits predicts performance and power from explicit traits
// (measured from a built format, or estimated).
func (s Spec) EstimateWithTraits(fv core.FeatureVector, tr formats.Traits) Result {
	return s.estimateWithTraitsK(fv, tr, 1)
}

// estimateWithTraitsK is EstimateWithTraits with the RHS-count axis; k = 1
// reproduces the single-vector model exactly. The FPGA model has no fused
// SpMM kernel (VSL runs the by-column fallback), so it only sees k = 1.
func (s Spec) estimateWithTraitsK(fv core.FeatureVector, tr formats.Traits, k int) Result {
	if fv.NNZ == 0 {
		return Result{Feasible: false, Reason: "empty matrix"}
	}
	if k < 1 {
		k = 1
	}
	switch s.Class {
	case GPU:
		return s.estimateGPU(fv, tr, k)
	case FPGA:
		return s.estimateFPGA(fv, tr)
	default:
		return s.estimateCPU(fv, tr, k)
	}
}

// streamBytes is the stored-matrix traffic per SpMV: values plus all
// metadata and padding.
func streamBytes(fv core.FeatureVector, tr formats.Traits) float64 {
	return float64(fv.NNZ) * (8 + tr.MetaBytesPerNNZ)
}

// imbalanceFactor models how much longer the slowest worker runs than the
// mean, given the format's distribution discipline and the matrix skew.
// The generator concentrates heavy rows at the matrix head, so row-granular
// blocks place nearly the whole heavy mass on one worker.
func imbalanceFactor(fv core.FeatureVector, tr formats.Traits, workers int) float64 {
	if workers <= 1 {
		return 1
	}
	p := float64(workers)
	switch tr.Balancing {
	case formats.ItemGranular:
		return 1
	case formats.NNZGranular:
		// Whole rows stay on one worker: a single giant row bounds balance.
		maxRowShare := (1 + fv.SkewCoeff) * fv.AvgNNZPerRow / math.Max(float64(fv.NNZ), 1)
		return math.Max(1, math.Min(maxRowShare*p, p))
	default: // RowGranular
		// Heavy-mass fraction of the exponential skew profile lands in one
		// row block.
		r := 1 + fv.SkewCoeff
		if r <= 1 {
			return 1
		}
		h := 1 - (1+math.Log(r))/r // nonzero mass above the mean row length
		if h < 0 {
			h = 0
		}
		return math.Min(h*p+(1-h), p)
	}
}

// rowOverheadColumnMajor is the residual per-row cost of a column-major
// slab sweep: rows run in the inner loop, so loop control amortizes over
// whole slab columns and only the y update remains per row.
const rowOverheadColumnMajor = 0.25

// ilpEfficiency models the low-ILP bottleneck: short rows spend cycles on
// loop control instead of FMAs. Fused k-wide kernels amortize loop control
// over a register tile of up to 4 vectors, so their effective per-flop
// overhead shrinks with min(k, 4); column-major slab sweeps (ELL-family
// k = 1 kernels) sidestep per-row loop control entirely, which is why ELL
// and HYB dominate short-row matrices despite identical traffic.
func ilpEfficiency(fv core.FeatureVector, tr formats.Traits, k int) float64 {
	overhead := rowOverheadScalar
	if tr.Vectorizable {
		overhead = rowOverheadVector
	}
	if k > 1 {
		tile := math.Min(float64(k), 4)
		overhead /= tile
	} else if tr.ColumnMajor {
		overhead = rowOverheadColumnMajor
	}
	avg := math.Max(fv.AvgNNZPerRow, 1)
	return avg / (avg + overhead)
}

// xBlockLineFactor scales per-miss x traffic with k: a k-wide row-major X
// block keeps one nonzero's k operands contiguous, so a miss fetches
// ceil(8k/line) lines instead of k scattered ones — for k <= 8 the same
// single line that a k = 1 gather pays.
func xBlockLineFactor(k int, grainBytes float64) float64 {
	return math.Max(1, 8*float64(k)/grainBytes)
}

func (s Spec) estimateCPU(fv core.FeatureVector, tr formats.Traits, k int) Result {
	kk := float64(k)
	hit := cache.XVectorHitRate(fv, s.LLCBytes)
	xBytes := float64(fv.NNZ) * (1 - hit) * cache.LineBytes * xBlockLineFactor(k, cache.LineBytes)
	yBytes := 16 * float64(fv.Rows) * kk // streamed out and written back
	total := streamBytes(fv, tr) + yBytes + xBytes

	// LLC residency decides which bandwidth the stream runs at; this is the
	// Fig. 3 cliff at the cache size.
	workingSet := streamBytes(fv, tr) + 8*float64(fv.Cols+fv.Rows)*kk
	resident := clamp01(llcUsable * float64(s.LLCBytes) / workingSet)
	tMem := total * (resident/(s.LLCBWGBs*cpuLLCStreamEff*1e9) +
		(1-resident)/(s.MemBWGBs*cpuDRAMStreamEff*1e9))

	lanes := 1.0
	if tr.Vectorizable {
		lanes = float64(s.LanesPerU)
	}
	ilp := ilpEfficiency(fv, tr, k)
	// Decode work (compressed formats) is scalar cycles per stored entry on
	// top of the FMA; it binds on few-core hosts and hides behind the
	// memory wall on bandwidth-starved many-core parts.
	tCompute := kk * float64(fv.NNZ) * (1 + tr.DecodeCycles) / (float64(s.Units) * lanes * s.FreqGHz * 1e9 * ilp)

	// Short rows break the stream into tiny bursts that defeat the
	// prefetchers, so even the memory-bound path degrades with low ILP —
	// the paper's ~2x row-length effect on CPUs (Fig 4).
	tMem /= ilp

	ifactor := imbalanceFactor(fv, tr, s.Units)
	t := math.Max(tMem, tCompute) * ifactor

	res := Result{Feasible: true}
	res.GFLOPS = 2 * kk * float64(fv.NNZ) / t / 1e9
	res.Bottleneck = classify(tMem, tCompute, ifactor, xBytes, total, ilp)

	// Cache-resident runs push the package toward its envelope (cores and
	// L3 fully busy); DRAM-bound runs idle the cores behind the memory
	// controllers, and imbalance idles the fast workers.
	busy := math.Max(tMem, tCompute)
	activity := math.Max(resident, math.Min(tCompute/busy, 1))
	util := (0.55 + 0.45*activity) / ifactor
	res.Watts = s.IdleWatts + (s.TDPWatts-s.IdleWatts)*clamp01(util)
	return res
}

func (s Spec) estimateGPU(fv core.FeatureVector, tr formats.Traits, k int) Result {
	kk := float64(k)
	// Device-memory capacity gate (matrix + vector blocks must fit).
	needed := streamBytes(fv, tr) + 8*kk*float64(fv.Rows+fv.Cols)
	if s.MemCapBytes > 0 && needed > float64(s.MemCapBytes) {
		return Result{Feasible: false, Reason: "matrix exceeds device memory"}
	}

	// The small L2 is mostly occupied by the matrix stream; x gets a slice.
	hit := cache.XVectorHitRate(fv, int64(float64(s.LLCBytes)*gpuXCacheShare))
	// Gathers fetch 32-byte sectors; clustered columns coalesce. A k-wide
	// block gathers ceil(8k/sector) contiguous sectors per miss.
	coalesce := 0.5 + 0.5*clamp01(fv.AvgNumNeigh/2)
	xBytes := float64(fv.NNZ) * (1 - hit) * gpuSectorBytes * xBlockLineFactor(k, gpuSectorBytes) / coalesce
	rowBytes := 8*float64(fv.Rows) + 8*kk*float64(fv.Rows) // row descriptors + y update
	total := streamBytes(fv, tr) + rowBytes + xBytes + gpuKernelOverheadByte*float64(fv.NNZ)

	// Parallelism ramp: the matrix must expose enough work to fill the
	// device (Fig. 3: GPUs favor large matrices, up to ~2x). A k-wide pass
	// exposes k times the work.
	work := kk * float64(fv.NNZ)
	util := work / (work + float64(s.Units)*gpuRampPerUnit)

	tMem := total / (s.MemBWGBs * 1e9 * gpuStreamEff * util)
	ilp := ilpEfficiency(fv, tr, k)
	tCompute := kk * float64(fv.NNZ) * (1 + tr.DecodeCycles) / (float64(s.Units) * s.FreqGHz * 1e9 * util * ilp)

	// Warp-level scheduling hides skew well for the balanced formats; the
	// row-granular ones still serialize giant rows on single warps.
	ifactor := imbalanceFactor(fv, tr, 64)
	ifactor = 1 + (ifactor-1)*0.5 // hardware schedulers absorb half the skew
	t := math.Max(tMem, tCompute) * ifactor

	res := Result{Feasible: true}
	res.GFLOPS = 2 * kk * float64(fv.NNZ) / t / 1e9
	res.Bottleneck = classify(tMem, tCompute, ifactor, xBytes, total, ilp)
	busy := math.Max(tMem, tCompute)
	putil := util * (0.5 + 0.5*math.Min(tCompute/busy, 1)) / ifactor
	if putil < gpuPowerFloor {
		putil = gpuPowerFloor
	}
	res.Watts = s.IdleWatts + (s.TDPWatts-s.IdleWatts)*clamp01(putil)
	return res
}

func (s Spec) estimateFPGA(fv core.FeatureVector, tr formats.Traits) Result {
	padded := float64(fv.NNZ) * (1 + tr.PaddingRatio)
	bytes := streamBytes(fv, tr)
	// The accelerator's 2D-partitioned HBM image pads every column in a
	// partition to the partition maximum, so row-length skew inflates the
	// stored layout far beyond the streamed entries. This is the capacity
	// failure that removed 10 of the paper's 45 validation matrices.
	layoutBytes := bytes * (1 + fpgaLayoutSkewFactor*fv.SkewCoeff)
	if s.MemCapBytes > 0 && layoutBytes > float64(s.MemCapBytes) {
		return Result{Feasible: false, Reason: "padded image exceeds HBM capacity"}
	}

	// The compute units consume one padded entry per lane-cycle; the HBM
	// channels stream the padded image. Skewed column loads stall the
	// channel pipelines (Fig. 5: up to ~4x).
	tPipe := padded / (float64(s.Units) * float64(s.LanesPerU) * s.FreqGHz * 1e9)
	tMem := bytes / (s.MemBWGBs * 1e9)
	skewStall := 1 + 3*fv.SkewCoeff/(fv.SkewCoeff+1000)
	t := math.Max(tPipe, tMem) * skewStall

	res := Result{Feasible: true}
	res.GFLOPS = 2 * float64(fv.NNZ) / t / 1e9
	switch {
	case skewStall > 1.5:
		res.Bottleneck = core.LoadImbalance
	case tr.PaddingRatio > 1:
		res.Bottleneck = core.LowILP // padding from short rows/columns
	default:
		res.Bottleneck = core.BandwidthIntensity
	}
	util := 0.3 + 0.35/skewStall
	res.Watts = s.IdleWatts + (s.TDPWatts-s.IdleWatts)*clamp01(util)
	return res
}

// classify attributes the dominant bottleneck, echoing Section II-A.
func classify(tMem, tCompute, ifactor, xBytes, total, ilp float64) core.Bottleneck {
	switch {
	case ifactor > 1.5:
		return core.LoadImbalance
	case xBytes > 0.4*total:
		return core.MemoryLatency
	case tCompute > tMem && ilp < 0.8:
		return core.LowILP
	default:
		return core.BandwidthIntensity
	}
}

// Roof returns the device's roofline description for Fig. 1.
func (s Spec) Roof() roofline.Roof {
	return roofline.Roof{
		PeakGFLOPS: s.PeakGFLOPS(),
		MemBWGBs:   s.MemBWGBs,
		LLCBWGBs:   s.LLCBWGBs,
		LLCBytes:   s.LLCBytes,
	}
}

// BestFormat evaluates every format available on the device and returns the
// best-performing feasible one, as the paper reports "best result achieved
// among tested formats". ok is false when no format is feasible.
func (s Spec) BestFormat(fv core.FeatureVector) (name string, best Result, ok bool) {
	return s.BestFormatK(fv, 1)
}

// BestFormatK is BestFormat on the k-wide SpMM axis: the exhaustive-search
// ground truth of the k-regime, against which the selection subsystem's
// retained performance is scored.
func (s Spec) BestFormatK(fv core.FeatureVector, k int) (name string, best Result, ok bool) {
	for _, f := range s.Formats {
		r := s.EstimateMulti(fv, f, k)
		if !r.Feasible {
			continue
		}
		if !ok || r.GFLOPS > best.GFLOPS {
			best = r
			name = f
			ok = true
		}
	}
	return name, best, ok
}

// jitterK is jitter with the RHS-count regime mixed in, so k = 1 and k = 8
// estimates of one configuration do not share their noise sample.
func jitterK(device, format string, fv core.FeatureVector, k int) float64 {
	return jitter(device, fmt.Sprintf("%s#k%d", format, k), fv)
}

// jitter returns a deterministic pseudo-random value in [-1, 1] derived
// from the configuration, standing in for run-to-run measurement noise.
func jitter(device, format string, fv core.FeatureVector) float64 {
	h := uint64(1469598103934665603)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for _, b := range []byte(device) {
		mix(b)
	}
	for _, b := range []byte(format) {
		mix(b)
	}
	for _, v := range []uint64{uint64(fv.NNZ), uint64(fv.Rows), math.Float64bits(fv.SkewCoeff),
		math.Float64bits(fv.CrossRowSim), math.Float64bits(fv.AvgNumNeigh), math.Float64bits(fv.MemFootprintMB)} {
		for i := 0; i < 8; i++ {
			mix(byte(v >> (8 * i)))
		}
	}
	return float64(int64(h))/math.MaxInt64*0.5 + float64(int64(h>>1))/math.MaxInt64*0.5
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
