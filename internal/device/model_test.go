package device

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/formats"
	"repro/internal/matrix"
)

// fvAt builds a square-matrix feature vector at the given footprint with
// otherwise friendly features.
func fvAt(mb, avg, skew float64) core.FeatureVector {
	rows := int(mb * (1 << 20) / (12*avg + 4))
	return core.FeatureVector{
		Rows: rows, Cols: rows,
		NNZ:            int64(float64(rows) * avg),
		MemFootprintMB: mb,
		AvgNNZPerRow:   avg,
		SkewCoeff:      skew,
		CrossRowSim:    0.5,
		AvgNumNeigh:    1.0,
		BWScaled:       0.3,
	}
}

func TestTestbedsComplete(t *testing.T) {
	specs := Testbeds()
	if len(specs) != 9 {
		t.Fatalf("testbeds = %d, want 9 (Table II)", len(specs))
	}
	classes := map[Class]int{}
	for _, s := range specs {
		classes[s.Class]++
		if s.Units <= 0 || s.MemBWGBs <= 0 || s.TDPWatts <= s.IdleWatts {
			t.Errorf("%s: implausible spec %+v", s.Name, s)
		}
		if len(s.Formats) == 0 {
			t.Errorf("%s: no formats", s.Name)
		}
		for _, f := range s.Formats {
			if _, ok := formats.Lookup(f); !ok {
				t.Errorf("%s: format %q not in registry", s.Name, f)
			}
		}
	}
	if classes[CPU] != 5 || classes[GPU] != 3 || classes[FPGA] != 1 {
		t.Errorf("class counts = %v, want 5 CPUs, 3 GPUs, 1 FPGA", classes)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Tesla-A100"); !ok {
		t.Error("A100 missing")
	}
	if _, ok := ByName("Tesla-H100"); ok {
		t.Error("found a device that is not in Table II")
	}
	if got := len(Names()); got != 9 {
		t.Errorf("Names() = %d entries", got)
	}
}

func TestCPULLCCliff(t *testing.T) {
	// Fig 3: CPU performance drops hard once the footprint exceeds the LLC;
	// the paper reports a gap above 7x for AMD-EPYC-64 (256 MB LLC).
	s, _ := ByName("AMD-EPYC-64")
	small := s.Estimate(fvAt(32, 20, 0), "Naive-CSR")
	large := s.Estimate(fvAt(2048, 20, 0), "Naive-CSR")
	if !small.Feasible || !large.Feasible {
		t.Fatal("estimates infeasible")
	}
	// The paper's 7x contrasts the full small vs large distributions,
	// which include irregular points whose x misses widen the gap; on a
	// single favorable matrix pair the model gives a compressed but still
	// multi-x cliff.
	gap := small.GFLOPS / large.GFLOPS
	if gap < 3.5 {
		t.Errorf("LLC cliff gap = %.2fx, want >= 3.5x", gap)
	}
	if large.Bottleneck != core.BandwidthIntensity {
		t.Errorf("large-matrix bottleneck = %v, want bandwidth", large.Bottleneck)
	}
}

func TestGPUFavorsLargeMatrices(t *testing.T) {
	// Fig 3: the A100 gains up to ~2x from small to large matrices. The
	// paper isolates this with favorable-featured (regular, balanced)
	// matrices — the dark boxplots — since irregularity separately drags
	// large matrices down.
	favorable := func(mb float64) core.FeatureVector {
		fv := fvAt(mb, 20, 0)
		fv.CrossRowSim = 0.95
		fv.AvgNumNeigh = 1.9
		fv.BWScaled = 0.05
		return fv
	}
	s, _ := ByName("Tesla-A100")
	small := s.Estimate(favorable(8), "Bal-CSR")
	large := s.Estimate(favorable(1024), "Bal-CSR")
	gap := large.GFLOPS / small.GFLOPS
	if gap < 1.3 || gap > 4 {
		t.Errorf("GPU large/small gap = %.2fx, want in [1.3, 4]", gap)
	}
}

func TestRowLengthImpact(t *testing.T) {
	// Fig 4: short rows cost ~2x on CPUs and GPUs in their favorable sizes.
	cpu, _ := ByName("AMD-EPYC-64")
	cShort := cpu.Estimate(fvAt(64, 5, 0), "Naive-CSR")
	cLong := cpu.Estimate(fvAt(64, 500, 0), "Naive-CSR")
	if gap := cLong.GFLOPS / cShort.GFLOPS; gap < 1.2 {
		t.Errorf("CPU row-length gap = %.2fx, want >= 1.2x", gap)
	}
	gpu, _ := ByName("Tesla-A100")
	gShort := gpu.Estimate(fvAt(1024, 5, 0), "Bal-CSR")
	gLong := gpu.Estimate(fvAt(1024, 500, 0), "Bal-CSR")
	if gap := gLong.GFLOPS / gShort.GFLOPS; gap < 1.2 {
		t.Errorf("GPU row-length gap = %.2fx, want >= 1.2x", gap)
	}
}

func TestImbalanceByFormatDiscipline(t *testing.T) {
	// Fig 5/7: row-granular formats collapse under skew; merge-path shrugs.
	s, _ := ByName("AMD-EPYC-24")
	balanced := fvAt(64, 20, 0)
	skewed := fvAt(64, 20, 1000)

	naiveDrop := s.Estimate(balanced, "Naive-CSR").GFLOPS / s.Estimate(skewed, "Naive-CSR").GFLOPS
	mergeDrop := s.Estimate(balanced, "Merge-CSR").GFLOPS / s.Estimate(skewed, "Merge-CSR").GFLOPS
	if naiveDrop < 2 {
		t.Errorf("naive CSR skew drop = %.2fx, want >= 2x", naiveDrop)
	}
	if mergeDrop > naiveDrop/2 {
		t.Errorf("merge CSR drop %.2fx should be far below naive %.2fx", mergeDrop, naiveDrop)
	}
	if got := s.Estimate(skewed, "Naive-CSR").Bottleneck; got != core.LoadImbalance {
		t.Errorf("skewed naive bottleneck = %v, want load imbalance", got)
	}
}

func TestIrregularityHurtsGPUMore(t *testing.T) {
	// Fig 6: irregularity costs GPUs up to ~2x on large matrices, CPUs ~1.3x.
	regular := fvAt(512, 20, 0)
	regular.CrossRowSim = 0.95
	regular.AvgNumNeigh = 1.9
	regular.BWScaled = 0.05
	irregular := fvAt(512, 20, 0)
	irregular.CrossRowSim = 0.05
	irregular.AvgNumNeigh = 0.05
	irregular.BWScaled = 0.6

	gpu, _ := ByName("Tesla-A100")
	gGap := gpu.Estimate(regular, "Bal-CSR").GFLOPS / gpu.Estimate(irregular, "Bal-CSR").GFLOPS
	if gGap < 1.4 {
		t.Errorf("GPU irregularity gap = %.2fx, want >= 1.4x", gGap)
	}
	if got := gpu.Estimate(irregular, "Bal-CSR").Bottleneck; got != core.MemoryLatency {
		t.Errorf("irregular GPU bottleneck = %v, want memory latency", got)
	}
}

func TestFPGACeilingAndEfficiency(t *testing.T) {
	// Takeaways 2/3: the FPGA cannot compete on throughput, but on
	// DRAM-bound matrices its GFLOPS/W beats the CPUs and the older GPUs.
	// The dataset-median ranking of Fig. 2b (FPGA first overall) is
	// asserted by the Fig 2 experiment in internal/bench.
	fv := fvAt(1024, 50, 0)
	fpga, _ := ByName("Alveo-U280")
	a100, _ := ByName("Tesla-A100")
	v100, _ := ByName("Tesla-V100")
	epyc, _ := ByName("AMD-EPYC-64")

	fr := fpga.Estimate(fv, "VSL")
	ar := a100.Estimate(fv, "Bal-CSR")
	vr := v100.Estimate(fv, "Bal-CSR")
	er := epyc.Estimate(fv, "Naive-CSR")
	if !fr.Feasible {
		t.Fatal("FPGA estimate infeasible")
	}
	if fr.GFLOPS >= ar.GFLOPS || fr.GFLOPS >= er.GFLOPS {
		t.Errorf("FPGA %.1f GFLOPS should trail the A100 %.1f and the big CPU %.1f",
			fr.GFLOPS, ar.GFLOPS, er.GFLOPS)
	}
	if fr.GFLOPSPerWatt() <= er.GFLOPSPerWatt() {
		t.Errorf("FPGA %.3f GFLOPS/W should beat the big CPU %.3f",
			fr.GFLOPSPerWatt(), er.GFLOPSPerWatt())
	}
	if fr.GFLOPSPerWatt() <= vr.GFLOPSPerWatt() {
		t.Errorf("FPGA %.3f GFLOPS/W should beat the V100 %.3f",
			fr.GFLOPSPerWatt(), vr.GFLOPSPerWatt())
	}
}

func TestFPGACapacityGate(t *testing.T) {
	// Very large matrices overflow the 8 GiB HBM after padding.
	fv := fvAt(6144, 5, 0)
	fpga, _ := ByName("Alveo-U280")
	r := fpga.Estimate(fv, "VSL")
	if r.Feasible {
		t.Error("6 GiB CSR matrix with heavy VSL padding should not fit 8 GiB HBM")
	}
	if r.Reason == "" {
		t.Error("infeasible result must carry a reason")
	}
}

func TestGPUMemoryGate(t *testing.T) {
	p100, _ := ByName("Tesla-P100") // 12 GiB
	huge := fvAt(14336, 50, 0)      // 14 GiB CSR
	if r := p100.Estimate(huge, "Bal-CSR"); r.Feasible {
		t.Error("14 GiB matrix should not fit the P100")
	}
	a100, _ := ByName("Tesla-A100") // 40 GiB
	if r := a100.Estimate(huge, "Bal-CSR"); !r.Feasible {
		t.Error("14 GiB matrix fits the A100")
	}
}

func TestCPUCompetitiveAtMediumSizes(t *testing.T) {
	// Takeaway 4: in 64-256 MB, AMD-EPYC-64 reaches >= ~50% of the A100.
	epyc, _ := ByName("AMD-EPYC-64")
	a100, _ := ByName("Tesla-A100")
	fv := fvAt(128, 50, 0)
	_, ce, ok1 := epyc.BestFormat(fv)
	_, ca, ok2 := a100.BestFormat(fv)
	if !ok1 || !ok2 {
		t.Fatal("best-format search failed")
	}
	ratio := ce.GFLOPS / ca.GFLOPS
	if ratio < 0.3 {
		t.Errorf("EPYC-64 at medium size reaches only %.0f%% of A100, want >= 30%%", ratio*100)
	}
	// And at very large sizes the GPU pulls far ahead.
	lv := fvAt(2048, 50, 0)
	_, le, _ := epyc.BestFormat(lv)
	_, la, _ := a100.BestFormat(lv)
	if le.GFLOPS/la.GFLOPS > 0.5 {
		t.Errorf("at 2 GB the GPU should lead clearly, CPU/GPU = %.2f", le.GFLOPS/la.GFLOPS)
	}
}

func TestBestFormatSkipsInfeasible(t *testing.T) {
	// A device offering ELL and Merge-CSR must fall back to Merge-CSR when
	// extreme skew makes ELL unbuildable.
	s, _ := ByName("AMD-EPYC-24")
	s.Formats = []string{"ELL", "Merge-CSR"}
	fv := fvAt(512, 10, 10000)
	fv.Rows, fv.Cols = 1<<24, 1<<24 // keep the nominal skew feasible shape-wise
	name, r, ok := s.BestFormat(fv)
	if !ok {
		t.Fatal("no feasible format found")
	}
	if name != "Merge-CSR" || !r.Feasible {
		t.Errorf("best = %q, want Merge-CSR fallback", name)
	}
	// The FPGA with only VSL has no fallback at all for oversized matrices.
	fpga, _ := ByName("Alveo-U280")
	if _, _, ok := fpga.BestFormat(fvAt(6144, 5, 0)); ok {
		t.Error("FPGA should have no feasible format for an oversized matrix")
	}
}

func TestEstimateDeterminism(t *testing.T) {
	s, _ := ByName("Tesla-V100")
	fv := fvAt(64, 20, 100)
	a := s.Estimate(fv, "CSR5")
	b := s.Estimate(fv, "CSR5")
	if a != b {
		t.Error("Estimate is not deterministic")
	}
	// Jitter differentiates devices and formats.
	c := s.Estimate(fv, "COO")
	if a.GFLOPS == c.GFLOPS {
		t.Error("different formats produced byte-identical GFLOPS (jitter missing?)")
	}
}

func TestEmptyMatrixInfeasible(t *testing.T) {
	s, _ := ByName("INTEL-XEON")
	if r := s.Estimate(core.FeatureVector{}, "Naive-CSR"); r.Feasible {
		t.Error("empty matrix should be infeasible")
	}
}

func TestPowerWithinEnvelope(t *testing.T) {
	for _, s := range Testbeds() {
		for _, mb := range []float64{8, 256, 1024} {
			for _, f := range s.Formats {
				r := s.Estimate(fvAt(mb, 20, 10), f)
				if !r.Feasible {
					continue
				}
				if r.Watts < s.IdleWatts-1e-9 || r.Watts > s.TDPWatts+1e-9 {
					t.Errorf("%s/%s at %gMB: power %.1fW outside [%.0f, %.0f]",
						s.Name, f, mb, r.Watts, s.IdleWatts, s.TDPWatts)
				}
				if r.GFLOPS <= 0 || math.IsNaN(r.GFLOPS) {
					t.Errorf("%s/%s: bad GFLOPS %g", s.Name, f, r.GFLOPS)
				}
			}
		}
	}
}

func TestModelBelowRoofline(t *testing.T) {
	// Fig 1 sanity: the model must respect each device's roofline within
	// the jitter amplitude.
	for _, s := range Testbeds() {
		if s.Class == FPGA {
			continue // padding-dominated pipeline, CSR roofline not meaningful
		}
		for _, mb := range []float64{8, 128, 1024} {
			fv := fvAt(mb, 20, 0)
			roof := s.Roof().LLCBound(fv)
			for _, f := range s.Formats {
				r := s.Estimate(fv, f)
				if !r.Feasible {
					continue
				}
				if r.GFLOPS > roof*(1+2*jitterAmp) {
					t.Errorf("%s/%s at %gMB: %.1f GFLOPS above LLC roof %.1f",
						s.Name, f, mb, r.GFLOPS, roof)
				}
			}
		}
	}
}

func TestNativeEngineMeasuresRealKernels(t *testing.T) {
	m := matrix.Random(2000, 2000, 0.01, 42)
	e := NativeEngine{Workers: 2, Iterations: 3}
	res := e.Run(m, mustBuilder(t, "Naive-CSR"))
	if res.BuildErr != nil {
		t.Fatal(res.BuildErr)
	}
	if res.GFLOPS <= 0 || res.Seconds <= 0 {
		t.Errorf("implausible native result %+v", res)
	}
	all := e.RunAll(m)
	if len(all) != len(formats.Registry()) {
		t.Errorf("RunAll returned %d results", len(all))
	}
}

func mustBuilder(t *testing.T, name string) formats.Builder {
	t.Helper()
	b, ok := formats.Lookup(name)
	if !ok {
		t.Fatalf("unknown builder %s", name)
	}
	return b
}

func TestMeasuredTraits(t *testing.T) {
	m := matrix.Random(500, 500, 0.02, 7)
	tr, fv, err := MeasuredTraits(m, "ELL")
	if err != nil {
		t.Fatal(err)
	}
	if fv.NNZ != int64(m.NNZ()) {
		t.Error("feature vector mismatch")
	}
	if tr.PaddingRatio < 0 {
		t.Error("negative padding")
	}
	if _, _, err := MeasuredTraits(m, "nope"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestHostSpecSane(t *testing.T) {
	h := HostSpec()
	if h.Units < 1 || len(h.Formats) != len(formats.Registry()) {
		t.Errorf("host spec %+v", h)
	}
}
