package device

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/formats"
)

// TestEstimateMultiK1Identity pins the refactoring invariant: the k-aware
// model at k = 1 (and k = 0) is exactly the single-vector model.
func TestEstimateMultiK1Identity(t *testing.T) {
	for _, s := range Testbeds() {
		for _, fv := range dataset.Small.Sample(40, 9) {
			for _, f := range s.Formats {
				want := s.Estimate(fv, f)
				for _, k := range []int{0, 1} {
					got := s.EstimateMulti(fv, f, k)
					if got != want {
						t.Fatalf("%s/%s k=%d: EstimateMulti %+v != Estimate %+v", s.Name, f, k, got, want)
					}
				}
			}
		}
	}
}

// TestEstimateMultiFusedGains checks the fused/fallback asymmetry: a fused
// format's aggregate k = 8 rate must exceed its k = 1 rate (the matrix
// stream is amortized over 8 vectors), while a fallback format must not
// gain beyond its k = 1 rate.
func TestEstimateMultiFusedGains(t *testing.T) {
	s, ok := ByName("AMD-EPYC-24")
	if !ok {
		t.Fatal("missing testbed")
	}
	fv := dataset.Point(256, 20, 0, 0.5, 0.5, 0.3)
	for _, f := range s.Formats {
		r1 := s.Estimate(fv, f)
		r8 := s.EstimateMulti(fv, f, 8)
		if !r1.Feasible || !r8.Feasible {
			continue
		}
		if formats.FusedMulti(f) {
			if r8.GFLOPS <= r1.GFLOPS*1.2 {
				t.Errorf("%s (fused): k=8 %.1f GFLOPS vs k=1 %.1f — expected a clear fusion gain",
					f, r8.GFLOPS, r1.GFLOPS)
			}
		} else {
			// jitter spans ±6% per regime, so allow ~13% slack.
			if r8.GFLOPS > r1.GFLOPS*1.15 {
				t.Errorf("%s (fallback): k=8 %.1f GFLOPS vs k=1 %.1f — fallback must not gain from k",
					f, r8.GFLOPS, r1.GFLOPS)
			}
		}
	}
}

// TestBestFormatKConsistent checks BestFormatK degenerates to BestFormat
// at k = 1 and returns a device-offered feasible format at k = 8.
func TestBestFormatKConsistent(t *testing.T) {
	for _, s := range Testbeds() {
		for _, fv := range dataset.Small.Sample(30, 13) {
			n1, r1, ok1 := s.BestFormat(fv)
			n1k, r1k, ok1k := s.BestFormatK(fv, 1)
			if ok1 != ok1k || n1 != n1k || r1 != r1k {
				t.Fatalf("%s: BestFormat != BestFormatK(1)", s.Name)
			}
			n8, r8, ok8 := s.BestFormatK(fv, 8)
			if !ok8 {
				continue
			}
			if !r8.Feasible {
				t.Fatalf("%s: best k=8 format %q infeasible", s.Name, n8)
			}
			offered := false
			for _, f := range s.Formats {
				if f == n8 {
					offered = true
				}
			}
			if !offered {
				t.Fatalf("%s: best k=8 format %q not offered", s.Name, n8)
			}
		}
	}
}
