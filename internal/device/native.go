package device

import (
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/simd"
)

// NativeResult reports a measured (not modeled) SpMV run on the host CPU.
type NativeResult struct {
	Format     string
	Workers    int
	Iterations int
	Seconds    float64 // total wall time of all iterations
	GFLOPS     float64
	BuildErr   error // non-nil when the format refused the matrix
}

// NativeEngine runs real format kernels on the host machine, the
// measurement path the paper used on its CPU testbeds (128 iterations,
// average performance).
type NativeEngine struct {
	Workers    int // 0: GOMAXPROCS
	Iterations int // 0: 16
	MinSeconds float64
}

// EffectiveWorkers resolves the worker count the engine's kernels can
// actually use: the configured count, defaulted to GOMAXPROCS and capped
// by the execution engine. Per-matrix grain shrinking may lower it further
// for small inputs.
func (e NativeEngine) EffectiveWorkers() int {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if mx := exec.MaxWorkers(); workers > mx {
		workers = mx
	}
	return workers
}

// Run measures one format on one matrix. The first product is verified
// against the CSR reference before timing.
func (e NativeEngine) Run(m *matrix.CSR, builder formats.Builder) NativeResult {
	workers := e.EffectiveWorkers()
	iters := e.Iterations
	if iters <= 0 {
		iters = 16
	}
	res := NativeResult{Format: builder.Name, Workers: workers, Iterations: iters}
	f, err := builder.Build(m)
	if err != nil {
		res.BuildErr = err
		return res
	}
	x := matrix.RandomVector(m.Cols, 12345)
	y := make([]float64, m.Rows)

	exec.Prestart()               // timed iterations must not pay pool startup
	f.SpMVParallel(x, y, workers) // warm-up, page-in, plan-cache fill

	start := time.Now()
	done := 0
	for done < iters || (e.MinSeconds > 0 && time.Since(start).Seconds() < e.MinSeconds) {
		f.SpMVParallel(x, y, workers)
		done++
	}
	res.Iterations = done
	res.Seconds = time.Since(start).Seconds()
	if res.Seconds > 0 {
		res.GFLOPS = 2 * float64(m.NNZ()) * float64(done) / res.Seconds / 1e9
	}
	return res
}

// RunAll measures every format in the registry on the matrix, returning
// results in registry order (including build failures).
func (e NativeEngine) RunAll(m *matrix.CSR) []NativeResult {
	var out []NativeResult
	for _, b := range formats.Registry() {
		out = append(out, e.Run(m, b))
	}
	return out
}

// HostSpec approximates the current machine as a Spec so modeled and native
// results can sit on the same axes. Bandwidths are rough laptop/server
// defaults scaled by the usable core count — a single core drives only a
// slice of the chip's aggregate bandwidth (one load/store unit, a few
// outstanding misses), so a capped-GOMAXPROCS host must not be modeled as
// compute-bound against full-chip bandwidth or every format's memory cost
// collapses out of the ranking. The native engine measures, it does not
// model.
func HostSpec() Spec {
	units := runtime.GOMAXPROCS(0)
	memBW := math.Min(20, 12*float64(units))
	llcBW := math.Min(200, 50*float64(units))
	// The modeled SIMD width is whatever the dispatch layer actually
	// detected and enabled — a scalar-forced host (SPMV_NOSIMD) is modeled
	// at one lane, not at a peak its kernels cannot reach.
	lanes := simd.Width()
	if lanes < 1 {
		lanes = 1
	}
	return Spec{
		Name:      "host",
		Class:     CPU,
		Units:     units,
		LanesPerU: lanes,
		FreqGHz:   2.5,
		LLCBytes:  32 << 20,
		MemBWGBs:  memBW, LLCBWGBs: llcBW,
		TDPWatts: 65, IdleWatts: 15,
		Formats: formatNames(),
	}
}

func formatNames() []string {
	var names []string
	for _, b := range formats.Registry() {
		names = append(names, b.Name)
	}
	return names
}

// MeasuredTraits builds the format for the matrix and returns its true
// structural traits plus the measured feature vector, grounding the model
// engine's analytic estimates.
func MeasuredTraits(m *matrix.CSR, formatName string) (formats.Traits, core.FeatureVector, error) {
	b, ok := formats.Lookup(formatName)
	if !ok {
		return formats.Traits{}, core.FeatureVector{}, &UnknownFormatError{formatName}
	}
	f, err := b.Build(m)
	if err != nil {
		return formats.Traits{}, core.FeatureVector{}, err
	}
	return f.Traits(), core.Extract(m), nil
}

// UnknownFormatError reports a format name absent from the registry.
type UnknownFormatError struct{ Name string }

// Error implements error.
func (e *UnknownFormatError) Error() string { return "device: unknown format " + e.Name }
