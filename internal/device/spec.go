// Package device models the paper's nine testbeds (Table II) and predicts
// SpMV performance and power for a (matrix features, storage format) pair
// on each of them.
//
// The paper measured real hardware; this reproduction cannot (no GPUs or
// FPGAs in a pure-Go environment), so per the substitution methodology in
// DESIGN.md each device is an analytical bottleneck model composed of the
// same four effects the paper analyzes:
//
//	memory-bandwidth intensity - stored stream + vector traffic against the
//	   measured LLC/DRAM (or HBM) bandwidths, with an LLC residency cliff;
//	low ILP                    - loop/SIMD efficiency falling with short rows;
//	load imbalance             - partition skew against the format's work
//	   distribution discipline;
//	memory latency             - x-vector cache misses from the locality
//	   features via internal/cache.
//
// The numbers in Testbeds come straight from Table II (core counts, cache
// sizes, measured STREAM bandwidths, HBM capacities); TDP/idle figures are
// nominal vendor values, used only for the energy-efficiency rankings.
package device

import "fmt"

// Class partitions the testbeds by architecture family.
type Class int

// Device classes.
const (
	CPU Class = iota
	GPU
	FPGA
)

// String names the class.
func (c Class) String() string {
	switch c {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case FPGA:
		return "FPGA"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Spec describes one testbed. Bandwidths are the paper's measured values
// (STREAM for CPUs, utilized-channel estimates for the FPGA).
type Spec struct {
	Name  string
	Class Class

	Units     int     // CPU cores, CUDA cores, or FPGA compute units
	LanesPerU int     // doubles processed per unit-cycle (SIMD width / PE lanes)
	FreqGHz   float64 // nominal clock

	LLCBytes int64   // last-level cache (L2 for GPUs)
	MemBWGBs float64 // measured DRAM/HBM bandwidth
	LLCBWGBs float64 // measured LLC bandwidth (0: no usable LLC roof)

	MemCapBytes int64 // device-memory capacity gate (0: host memory, no gate)

	TDPWatts  float64
	IdleWatts float64

	Formats []string // storage formats available on this testbed (Table II)
}

// PeakGFLOPS returns the nominal double-precision FMA peak.
func (s Spec) PeakGFLOPS() float64 {
	return float64(s.Units) * float64(s.LanesPerU) * s.FreqGHz * 2
}

// Testbeds returns the nine Table II machines. Vendor-library entries map
// onto this repository's format implementations: MKL-IE stands for every
// inspector-executor vendor CSR (Intel MKL, AOCL-Sparse, ARMPL), Bal-CSR
// for cuSPARSE's load-balanced CSR path, and VSL for the Vitis Sparse
// Library accelerator.
func Testbeds() []Spec {
	return []Spec{
		{
			Name: "AMD-EPYC-24", Class: CPU,
			Units: 24, LanesPerU: 4, FreqGHz: 2.8,
			LLCBytes: 128 << 20, MemBWGBs: 50, LLCBWGBs: 700,
			TDPWatts: 180, IdleWatts: 45,
			Formats: []string{"MKL-IE", "Naive-CSR", "Vec-CSR", "CSR5", "Merge-CSR", "SparseX", "SELL-C-s"},
		},
		{
			Name: "AMD-EPYC-64", Class: CPU,
			Units: 64, LanesPerU: 4, FreqGHz: 2.25,
			LLCBytes: 256 << 20, MemBWGBs: 105, LLCBWGBs: 878,
			TDPWatts: 225, IdleWatts: 60,
			Formats: []string{"MKL-IE", "Naive-CSR", "CSR5"},
		},
		{
			// The paper measured package power via the Altra hardware
			// monitor and found the Altra the only CPU to stand out on
			// power; the envelope below reflects that measured behaviour
			// rather than the nominal 250 W TDP.
			Name: "ARM-NEON", Class: CPU,
			Units: 80, LanesPerU: 2, FreqGHz: 3.3,
			LLCBytes: 80 << 20, MemBWGBs: 102, LLCBWGBs: 650,
			TDPWatts: 120, IdleWatts: 25,
			Formats: []string{"MKL-IE", "Naive-CSR", "Vec-CSR", "Merge-CSR", "SparseX", "SELL-C-s"},
		},
		{
			Name: "INTEL-XEON", Class: CPU,
			Units: 14, LanesPerU: 8, FreqGHz: 2.2,
			LLCBytes: 19<<20 + 256<<10, MemBWGBs: 55, LLCBWGBs: 300,
			TDPWatts: 105, IdleWatts: 30,
			Formats: []string{"MKL-IE", "Naive-CSR", "CSR5", "Merge-CSR", "SparseX", "SELL-C-s"},
		},
		{
			Name: "IBM-POWER9", Class: CPU,
			Units: 32, LanesPerU: 2, FreqGHz: 3.1, // 16 cores x 2 SMT threads
			LLCBytes: 80 << 20, MemBWGBs: 109, LLCBWGBs: 612,
			TDPWatts: 200, IdleWatts: 50, // the paper's pessimistic constant TDP
			Formats: []string{"Naive-CSR", "Bal-CSR", "Merge-CSR", "SparseX"},
		},
		{
			Name: "Tesla-P100", Class: GPU,
			Units: 3584, LanesPerU: 1, FreqGHz: 1.48,
			LLCBytes: 4 << 20, MemBWGBs: 464,
			MemCapBytes: 12 << 30,
			TDPWatts:    250, IdleWatts: 55,
			Formats: []string{"COO", "Bal-CSR", "HYB", "CSR5"},
		},
		{
			Name: "Tesla-V100", Class: GPU,
			Units: 5120, LanesPerU: 1, FreqGHz: 1.455,
			LLCBytes: 6 << 20, MemBWGBs: 760,
			MemCapBytes: 32 << 30,
			TDPWatts:    250, IdleWatts: 55,
			Formats: []string{"COO", "Bal-CSR", "HYB", "CSR5"},
		},
		{
			Name: "Tesla-A100", Class: GPU,
			Units: 6912, LanesPerU: 1, FreqGHz: 1.41,
			LLCBytes: 40 << 20, MemBWGBs: 1350,
			MemCapBytes: 40 << 30,
			TDPWatts:    250, IdleWatts: 55,
			Formats: []string{"COO", "Bal-CSR", "Merge-CSR"},
		},
		{
			// The paper's Table II lists Merge-CSR beside the Vitis library
			// as a host-side comparison point; the accelerator itself runs
			// only the VSL kernel, which is what this spec models — so
			// capacity failures surface as missing measurements, as in the
			// paper's Fig. 1.
			Name: "Alveo-U280", Class: FPGA,
			Units: 16, LanesPerU: 1, FreqGHz: 0.3,
			LLCBytes: 0, MemBWGBs: 287.5,
			MemCapBytes: 8 << 30,
			TDPWatts:    18, IdleWatts: 7,
			Formats: []string{"VSL"},
		},
	}
}

// ByName finds a testbed spec.
func ByName(name string) (Spec, bool) {
	for _, s := range Testbeds() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the testbed names in Table II order.
func Names() []string {
	specs := Testbeds()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
