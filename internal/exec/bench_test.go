package exec

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkDispatch compares the persistent pool's wake path against the
// seed-era spawn-per-call path at the dispatch layer itself (no kernel
// work), isolating the per-SpMV scheduling overhead the engine removes.
func BenchmarkDispatch(b *testing.B) {
	var sink int64
	body := func(w int) { atomic.AddInt64(&sink, 1) }
	for _, n := range []int{2, 4, 8} {
		p := NewPool(n)
		p.Prestart()
		b.Run(fmt.Sprintf("pool-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Run(n, body)
			}
		})
		b.Run(fmt.Sprintf("spawn-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spawnRun(n, body)
			}
		})
		p.Close()
	}
}
