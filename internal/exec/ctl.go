package exec

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Ctl is the per-call execution control a cancellable dispatch carries: a
// latched view of one context's cancellation, cheap enough for kernels to
// poll at partition-chunk granularity. A nil *Ctl is valid everywhere and
// means "not cancellable" — NewCtl returns nil for contexts that can never
// be cancelled, so the uncancellable path stays exactly the legacy path.
//
// The latch matters for two reasons. First, cost: once cancellation is
// observed, every later poll is one atomic load with no channel select.
// Second, containment: a panicking lane poisons the Ctl, so the sibling
// lanes of the same call stop at their next chunk boundary instead of
// finishing a sweep whose result will be discarded.
type Ctl struct {
	ctx       context.Context
	cancelled atomic.Bool
}

// NewCtl derives the control for one call from ctx. Contexts that cannot
// be cancelled (nil, Background, TODO) yield nil: zero per-chunk polling
// cost and the legacy dispatch path.
func NewCtl(ctx context.Context) *Ctl {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &Ctl{ctx: ctx}
}

// Cancelled reports (and latches) whether the call should stop. Safe on a
// nil receiver, safe concurrently; the unlatched path is one non-blocking
// channel select, the latched path one atomic load.
func (c *Ctl) Cancelled() bool {
	if c == nil {
		return false
	}
	if c.cancelled.Load() {
		return true
	}
	select {
	case <-c.ctx.Done():
		c.cancelled.Store(true)
		return true
	default:
		return false
	}
}

// Err returns the context's cancellation cause (context.Canceled or
// context.DeadlineExceeded), or nil when the call may proceed.
func (c *Ctl) Err() error {
	if c == nil {
		return nil
	}
	return c.ctx.Err()
}

// poison latches cancellation without a context event: a panicking lane
// calls it so sibling lanes of the same grant stop at their next chunk
// boundary ("poison only that call").
func (c *Ctl) poison() {
	if c != nil {
		c.cancelled.Store(true)
	}
}

// PanicError is a panic from one lane of a parallel dispatch, contained by
// the engine: the pool worker (or spawned goroutine) recovered, delivered
// its completion token, and the panic resurfaced on the calling goroutine
// — as this error from the Ctx entry points, or re-panicked with this
// value from the legacy ones. The shard stays serviceable either way; only
// the call that panicked is poisoned.
type PanicError struct {
	// Value is the original recovered panic value.
	Value any
	// Worker is the lane id that panicked.
	Worker int
	// Stack is the panicking lane's stack at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: panic on worker %d: %v", e.Worker, e.Value)
}

// Unwrap exposes an error panic value (an injected failpoint fault, a
// wrapped kernel error) to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// panicSlot holds the first contained panic of one dispatch.
type panicSlot struct {
	p atomic.Pointer[PanicError]
}

// record stores the first panic; later ones are dropped (the first is the
// root cause, the rest are usually the same fault on sibling lanes).
func (s *panicSlot) record(w int, v any, stack []byte) {
	s.p.CompareAndSwap(nil, &PanicError{Value: v, Worker: w, Stack: stack})
}

// take returns and clears the contained panic.
func (s *panicSlot) take() *PanicError { return s.p.Swap(nil) }
