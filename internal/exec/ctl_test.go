package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
)

func TestNewCtlNilForUncancellable(t *testing.T) {
	if c := NewCtl(nil); c != nil {
		t.Fatalf("NewCtl(nil) = %v, want nil", c)
	}
	if c := NewCtl(context.Background()); c != nil {
		t.Fatalf("NewCtl(Background) = %v, want nil", c)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if c := NewCtl(ctx); c == nil {
		t.Fatal("NewCtl(cancellable) = nil")
	}
}

func TestCtlCancelledLatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewCtl(ctx)
	if c.Cancelled() {
		t.Fatal("fresh Ctl reports cancelled")
	}
	cancel()
	if !c.Cancelled() {
		t.Fatal("cancelled Ctl reports live")
	}
	if !c.cancelled.Load() {
		t.Fatal("observation did not latch")
	}
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	// Nil receiver: always live, no error.
	var nilCtl *Ctl
	if nilCtl.Cancelled() || nilCtl.Err() != nil {
		t.Fatal("nil Ctl must be inert")
	}
}

func TestPoolContainsWorkerPanic(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	// A panic on a pool-worker lane (not the caller's lane) must not kill
	// the worker; it resurfaces on the caller as a *PanicError.
	func() {
		defer func() {
			r := recover()
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("recover() = %#v, want *PanicError", r)
			}
			if pe.Worker != 1 || pe.Value != "kernel fault" {
				t.Fatalf("PanicError = worker %d value %v", pe.Worker, pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("PanicError carries no stack")
			}
		}()
		p.Run(3, func(w int) {
			if w == 1 {
				panic("kernel fault")
			}
		})
	}()
	// The pool must remain fully serviceable on its parked workers.
	var total int64
	for i := 0; i < 50; i++ {
		p.Run(3, func(w int) { atomic.AddInt64(&total, 1) })
	}
	if total != 150 {
		t.Fatalf("post-panic runs executed %d shards, want 150", total)
	}
	if p.Size() != 2 {
		t.Fatalf("pool size %d after contained panic, want 2", p.Size())
	}
}

func TestSpawnRunContainsGoroutinePanic(t *testing.T) {
	pe := spawnRunE(4, func(w int) {
		if w == 3 {
			panic(errors.New("spawned fault"))
		}
	})
	if pe == nil || pe.Worker != 3 {
		t.Fatalf("spawnRunE = %v, want contained panic on worker 3", pe)
	}
	if !errors.Is(pe, pe.Unwrap()) || pe.Unwrap().Error() != "spawned fault" {
		t.Fatalf("Unwrap() = %v", pe.Unwrap())
	}
}

func TestRunCtxConvertsWorkerPanicToError(t *testing.T) {
	restore := SetMaxWorkers(8)
	defer SetMaxWorkers(restore)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := AcquireCtl(4, NewCtl(ctx))
	err := g.RunCtx(4, func(w int) {
		if w == 2 {
			panic("ctx kernel fault")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunCtx error = %v, want *PanicError", err)
	}
	if pe.Value != "ctx kernel fault" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	// The engine must serve subsequent calls on the same shards.
	var total int64
	for i := 0; i < 20; i++ {
		g := Acquire(4)
		g.Run(4, func(w int) { atomic.AddInt64(&total, 1) })
	}
	if total != 80 {
		t.Fatalf("post-panic dispatches ran %d shards, want 80", total)
	}
}

func TestRunCtxPoisonStopsSiblingLanes(t *testing.T) {
	restore := SetMaxWorkers(8)
	defer SetMaxWorkers(restore)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctl := NewCtl(ctx)
	g := AcquireCtl(4, ctl)
	err := g.RunCtx(4, func(w int) {
		if w == 0 {
			panic("poison")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if !ctl.Cancelled() {
		t.Fatal("panicking lane did not poison the Ctl")
	}
	// Poison is per call: a fresh Ctl over the same (live) context is clean.
	if NewCtl(ctx).Cancelled() {
		t.Fatal("poison leaked into the context")
	}
}

func TestRunCtxPreCancelledSkipsLanes(t *testing.T) {
	restore := SetMaxWorkers(8)
	defer SetMaxWorkers(restore)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	g := AcquireCtl(4, NewCtl(ctx))
	err := g.RunCtx(4, func(w int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d lanes ran on a pre-cancelled dispatch, want 0", ran.Load())
	}
}

func TestRunCtxNilCtlCompletes(t *testing.T) {
	restore := SetMaxWorkers(8)
	defer SetMaxWorkers(restore)
	var ran atomic.Int64
	g := AcquireCtl(4, nil)
	if err := g.RunCtx(4, func(w int) { ran.Add(1) }); err != nil {
		t.Fatalf("RunCtx = %v", err)
	}
	if ran.Load() != 4 {
		t.Fatalf("ran %d lanes, want 4", ran.Load())
	}
}

func TestRunCtxDeadlineReportsDeadlineExceeded(t *testing.T) {
	restore := SetMaxWorkers(8)
	defer SetMaxWorkers(restore)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	ctl := NewCtl(ctx)
	g := AcquireCtl(4, ctl)
	err := g.RunCtx(4, func(w int) {
		// Chunk-granularity polling, as a kernel would do it.
		for !ctl.Cancelled() {
			time.Sleep(100 * time.Microsecond)
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx = %v, want context.DeadlineExceeded", err)
	}
}

func TestExecWorkerFailpointSurfacesAsError(t *testing.T) {
	prev := failpoint.SetEnabled(true)
	defer func() {
		failpoint.SetEnabled(prev)
		failpoint.DisableAll()
	}()
	if err := failpoint.Enable("exec.worker", "panic*1"); err != nil {
		t.Fatal(err)
	}
	p := NewPool(2)
	defer p.Close()
	func() {
		defer func() {
			r := recover()
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("recover() = %#v, want *PanicError", r)
			}
			var inj *failpoint.Injected
			if !errors.As(pe, &inj) || inj.Site != "exec.worker" {
				t.Fatalf("contained value = %v, want injected exec.worker fault", pe)
			}
		}()
		p.Run(3, func(w int) {})
	}()
	// Site fired once (*1) and disarmed: the pool serves cleanly again.
	var total int64
	p.Run(3, func(w int) { atomic.AddInt64(&total, 1) })
	if total != 3 {
		t.Fatalf("post-failpoint run executed %d shards, want 3", total)
	}
}
