// Package exec is the persistent SpMV execution engine: a topology-sharded
// set of worker pools that format kernels dispatch onto, plus
// inspector-style execution plans that cache each format's partition (and
// per-worker scratch buffers) keyed by execution placement.
//
// The seed implementation paid a goroutine-spawn + sync.WaitGroup round
// trip and recomputed its sched partition on every SpMV call. For the
// iterative workloads this repository targets (CG solves, benchmark loops,
// persistent serving), that per-call overhead dwarfs the kernel itself on
// small and medium matrices. The engine follows the inspector-executor
// discipline of MKL-IE, SELL-C-sigma and merge-based SpMV: analyze once,
// execute many times.
//
// Four mechanisms deliver steady-state calls with zero scheduling work and
// at most one allocation (the kernel closure):
//
//   - Pool: worker goroutines park on per-worker wake channels and are
//     reused across calls. Waking a parked worker is a channel send, an
//     order of magnitude cheaper than spawning, and produces no garbage.
//     The caller participates as worker 0, so a pool dispatch of n shards
//     wakes only n-1 workers.
//   - Engine/Grant: the process-wide engine owns one pool shard per
//     topology domain (internal/topo; override with SPMV_SHARDS or
//     topo.SetShards). A call Acquires a grant, which routes it round-robin
//     to an idle shard, so independent concurrent SpMV calls run on
//     distinct shards' parked workers instead of falling back to spawned
//     goroutines the way the single-pool engine of PR 1 did. A single call
//     wider than one shard gang-schedules across every idle shard. Only
//     when every shard is busy does the engine fall back to plain spawned
//     goroutines, so it never deadlocks and never queues.
//   - Plan/PlanCache: a format computes its sched.Range partition (and any
//     carry/scratch buffers) once per PlanKey — the (shard, domain count,
//     worker count) placement a grant reports — and caches it inside the
//     format instance. Matrices are immutable after build, so plans never
//     invalidate. Keying by shard also gives each shard a private cached
//     scratch, so concurrent calls routed to distinct shards never contend
//     on one plan's buffers; ganged grants use a domain-split partition
//     whose row ranges are computed within each domain's contiguous slice
//     of the matrix (sched.DomainSplit).
//   - Workers: a serial fast-path cutoff. Parallelism below MinGrain work
//     items per worker costs more in wake latency than it saves, and worker
//     counts beyond the machine's parallelism only add overhead, so tiny
//     kernels run inline on the caller.
//
// On multi-domain machines each shard's workers lock their OS threads and
// pin to the shard's domain CPUs (best effort, Linux sched_setaffinity), so
// a shard's partition slice stays on the cores — and, under first-touch
// placement, near the memory — of one domain.
package exec

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/failpoint"
)

// MinGrain is the minimum number of work items (nonzeros, padded slots)
// per worker below which the engine shrinks the worker count: waking a
// worker costs on the order of a microsecond, which a sub-4k-item shard
// cannot amortize.
const MinGrain = 4096

// maxWorkers caps the worker count kernels actually use; 0 means
// runtime.GOMAXPROCS(0). Tests raise it to exercise parallel paths on
// small machines.
var maxWorkers atomic.Int64

// MaxWorkers returns the current worker-count cap.
func MaxWorkers() int {
	if n := maxWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetMaxWorkers overrides the worker-count cap; n <= 0 restores the
// GOMAXPROCS default. It returns the previous override (0 if none), so
// tests can restore it.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers returns the worker count the engine uses for a kernel over the
// given number of work items when the caller requested `requested` workers:
// at most MaxWorkers, at most one worker per MinGrain work items, and at
// least 1. A return of 1 is the serial fast path — kernels run inline
// without touching the pool.
func Workers(work int64, requested int) int {
	if mx := MaxWorkers(); requested > mx {
		requested = mx
	}
	if g := work / MinGrain; int64(requested) > g {
		requested = int(g)
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// Pool is a persistent worker pool — one shard of the engine, or a
// standalone pool for tests. The zero value is valid: workers start lazily
// on the first parallel Run. A Pool must not be copied after use.
type Pool struct {
	mu      sync.Mutex // held for the duration of one dispatch
	started bool
	closed  bool
	size    int // parked workers; excludes the caller
	pin     func()
	work    func(w int)
	wake    []chan int    // wake[i] carries the shard id worker i runs
	done    chan struct{} // one token per completed shard
	// panicked holds the first contained lane panic of the in-flight
	// dispatch: workers recover (so they survive and deliver their done
	// token) and the dispatcher resurfaces the panic on the calling
	// goroutine once the pool is consistent again.
	panicked panicSlot
}

// NewPool returns a pool with the given number of parked workers (the
// caller of Run always participates, so a size-N pool executes N+1 shards
// concurrently). size <= 0 selects the default sizing.
func NewPool(size int) *Pool {
	return &Pool{size: size}
}

// defaultPoolSize keeps enough parked workers for the machine, with a
// floor so tests exercising parallel carry logic get real goroutine
// interleaving even on single-core machines. Parked workers cost only
// their (small) stacks.
func defaultPoolSize() int {
	if n := runtime.GOMAXPROCS(0) - 1; n > 7 {
		return n
	}
	return 7
}

func (p *Pool) ensureStarted() {
	if p.started || p.closed {
		return
	}
	if p.size <= 0 {
		p.size = defaultPoolSize()
	}
	p.wake = make([]chan int, p.size)
	p.done = make(chan struct{}, p.size)
	for i := range p.wake {
		p.wake[i] = make(chan int, 1)
		go p.worker(p.wake[i])
	}
	p.started = true
}

// worker parks on its wake channel; each received shard id is one unit of
// work. The channel is captured at spawn so a later Close (which nils the
// pool's slices) cannot race with a worker that has not yet been scheduled.
func (p *Pool) worker(wake <-chan int) {
	if p.pin != nil {
		// Pinning is per OS thread; locking keeps this worker on the thread
		// whose affinity was set. The lock is never released, so the thread
		// dies with the worker when the pool closes.
		runtime.LockOSThread()
		p.pin()
	}
	for id := range wake {
		p.runShard(id)
		p.done <- struct{}{}
	}
}

// runShard executes one shard id with panic containment: a panicking
// kernel must not kill the worker goroutine (which would wedge the pool —
// its done token would never arrive) or the process. The recovered panic
// is parked on the pool and resurfaces on the dispatching goroutine once
// every lane of the call has completed.
func (p *Pool) runShard(id int) {
	defer func() {
		if r := recover(); r != nil {
			p.panicked.record(id, r, debug.Stack())
		}
	}()
	if err := failpoint.Inject("exec.worker"); err != nil {
		panic(err)
	}
	p.work(id)
}

// Run invokes f(0..n-1) and waits for completion. Shard 0 runs on the
// calling goroutine; shards beyond the pool size run inline after it. If
// the pool is busy — another Run is in flight, possibly from this very
// goroutine — the call falls back to spawned goroutines, so Run is safe to
// call concurrently and never deadlocks on nesting.
func (p *Pool) Run(n int, f func(w int)) {
	if n <= 1 {
		f(0)
		return
	}
	if !p.mu.TryLock() {
		spawnRun(n, f)
		return
	}
	p.runLocked(n, f)
}

// runLocked executes f(0..n-1) on the pool's parked workers plus the
// calling goroutine, re-panicking any contained worker panic on the
// caller. The caller must hold p.mu; runLocked releases it.
func (p *Pool) runLocked(n int, f func(w int)) {
	if pe := p.runLockedE(n, f); pe != nil {
		panic(pe)
	}
}

// runLockedE is runLocked returning a contained worker-lane panic instead
// of re-panicking, for dispatchers (RunCtx) that report it as an error.
// Panics on the calling goroutine's own lanes propagate unchanged either
// way. The caller must hold p.mu; runLockedE releases it.
func (p *Pool) runLockedE(n int, f func(w int)) (pe *PanicError) {
	if p.closed {
		// A Run or reshard raced a Close: a closed pool must never restart
		// its workers (they would be orphaned forever), so fall back to
		// spawning.
		p.mu.Unlock()
		return spawnRunE(n, f)
	}
	extra := 0
	defer func() {
		// Draining in a defer keeps the pool consistent even when a shard
		// run on the calling goroutine panics: every woken worker's done
		// token is consumed before the pool unlocks, so stale tokens can
		// never satisfy a later Run's wait. The contained-panic slot is
		// harvested before unlocking for the same reason — a later dispatch
		// must never observe this call's fault.
		for i := 0; i < extra; i++ {
			<-p.done
		}
		p.work = nil
		pe = p.panicked.take()
		p.mu.Unlock()
	}()
	p.ensureStarted()
	if extra = n - 1; extra > p.size {
		extra = p.size
	}
	p.work = f
	for i := 0; i < extra; i++ {
		p.wake[i] <- i + 1
	}
	f(0)
	for w := extra + 1; w < n; w++ {
		f(w)
	}
	return
}

// dispatch wakes up to max (capped at the pool size) workers with the
// consecutive shard ids lo, lo+1, ... and returns how many it woke, without
// waiting. The caller must hold p.mu and must later consume exactly that
// many done tokens via drain. This is the ganged half of a Grant.Run, where
// the goroutine that waits is executing on another shard.
func (p *Pool) dispatch(f func(w int), lo, max int) int {
	if p.closed {
		return 0 // ids fall back to the caller's inline leftover loop
	}
	p.ensureStarted()
	p.work = f
	k := max
	if k > p.size {
		k = p.size
	}
	for i := 0; i < k; i++ {
		p.wake[i] <- lo + i
	}
	return k
}

// drain consumes k done tokens (matching a prior dispatch), releases the
// pool, and returns any contained worker-lane panic from the dispatch.
// The slot is harvested before unlocking so a later dispatch on this pool
// can never observe this call's fault.
func (p *Pool) drain(k int) *PanicError {
	for i := 0; i < k; i++ {
		<-p.done
	}
	p.work = nil
	pe := p.panicked.take()
	p.mu.Unlock()
	return pe
}

// Prestart spins up the parked workers without running work, so the first
// timed kernel call does not pay pool construction. Prestarting a closed
// pool is a no-op: resurrecting it would orphan the new workers.
func (p *Pool) Prestart() {
	p.mu.Lock()
	p.ensureStarted()
	p.mu.Unlock()
}

// Size returns the number of parked workers (0 until started).
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		return 0
	}
	return p.size
}

// Close terminates the parked workers. Run must not be called after Close;
// it exists so tests, short-lived tools and engine reshards can release
// goroutines.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if !p.started {
		return
	}
	for _, c := range p.wake {
		close(c)
	}
	p.started = false
	p.wake = nil
}

// spawnFallbacks counts dispatches that found every shard busy and fell
// back to spawned goroutines (the seed-era path). Steady workloads sized to
// the shard count should keep this flat; see Stats.
var spawnFallbacks atomic.Uint64

// SpawnFallbacks returns the cumulative count of spawned-goroutine
// fallback dispatches.
func SpawnFallbacks() uint64 { return spawnFallbacks.Load() }

// spawnRun is the seed-era fallback: one fresh goroutine per shard. A
// contained goroutine panic re-panics on the caller, matching pool
// dispatch semantics.
func spawnRun(n int, f func(w int)) {
	if pe := spawnRunE(n, f); pe != nil {
		panic(pe)
	}
}

// spawnRunE runs the spawned fallback and returns a contained goroutine
// panic instead of letting it kill the process. The caller's own lane
// (shard 0) panics through unchanged — but only after every spawned
// goroutine has finished, so no goroutine outlives its dispatch.
func spawnRunE(n int, f func(w int)) *PanicError {
	var ps panicSlot
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(n - 1)
	for w := 1; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					ps.record(w, r, debug.Stack())
				}
			}()
			f(w)
		}(w)
	}
	f(0)
	wg.Wait()
	return ps.take()
}
