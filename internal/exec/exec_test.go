package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

func TestPoolRunsEveryShardOnce(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		counts := make([]int32, n)
		p.Run(n, func(w int) {
			atomic.AddInt32(&counts[w], 1)
		})
		for w, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: shard %d ran %d times", n, w, c)
			}
		}
	}
}

func TestPoolReuseAcrossManyRuns(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var total int64
	for i := 0; i < 500; i++ {
		p.Run(3, func(w int) { atomic.AddInt64(&total, int64(w)) })
	}
	if total != 500*3 {
		t.Fatalf("total %d, want %d", total, 500*3)
	}
	if p.Size() != 2 {
		t.Fatalf("pool size %d, want 2", p.Size())
	}
}

func TestPoolNestedRunFallsBackToSpawn(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var inner int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(2, func(w int) {
			// Nested Run from inside a worker must not deadlock: the pool
			// mutex is held, so this takes the spawn fallback.
			p.Run(2, func(int) { atomic.AddInt32(&inner, 1) })
		})
	}()
	<-done
	if inner != 4 {
		t.Fatalf("inner shards ran %d times, want 4", inner)
	}
}

func TestPoolRecoversFromCallerShardPanic(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the shard panic to propagate")
			}
		}()
		p.Run(3, func(w int) {
			if w == 0 {
				panic("shard 0 boom")
			}
		})
	}()
	// The pool must be fully drained: no stale done tokens may satisfy a
	// later Run's wait before its own workers finish.
	for i := 0; i < 50; i++ {
		counts := make([]int32, 3)
		p.Run(3, func(w int) { atomic.AddInt32(&counts[w], 1) })
		for w, c := range counts {
			if c != 1 {
				t.Fatalf("post-panic run %d: shard %d ran %d times", i, w, c)
			}
		}
	}
}

func TestPoolConcurrentCallers(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Run(3, func(int) { atomic.AddInt64(&total, 1) })
			}
		}()
	}
	wg.Wait()
	if total != 8*100*3 {
		t.Fatalf("total %d, want %d", total, 8*100*3)
	}
}

func TestPoolRunZeroAllocsWarm(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var sink int64
	f := func(w int) { atomic.AddInt64(&sink, int64(w)) }
	p.Run(4, f) // warm up: start workers
	allocs := testing.AllocsPerRun(100, func() {
		p.Run(4, f)
	})
	if allocs > 0 {
		t.Errorf("warm Run allocates %v times per call, want 0", allocs)
	}
}

func TestDefaultPoolRun(t *testing.T) {
	Prestart()
	var total int64
	Run(4, func(w int) { atomic.AddInt64(&total, int64(w)+1) })
	if total != 1+2+3+4 {
		t.Fatalf("total %d", total)
	}
}

func TestWorkersClamps(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	if got := Workers(100*MinGrain, 4); got != 4 {
		t.Errorf("ample work: got %d, want 4", got)
	}
	if got := Workers(100*MinGrain, 99); got != 8 {
		t.Errorf("MaxWorkers cap: got %d, want 8", got)
	}
	if got := Workers(2*MinGrain, 8); got != 2 {
		t.Errorf("grain cap: got %d, want 2", got)
	}
	if got := Workers(MinGrain-1, 8); got != 1 {
		t.Errorf("tiny work: got %d, want 1 (serial fast path)", got)
	}
	if got := Workers(100*MinGrain, 0); got != 1 {
		t.Errorf("requested 0: got %d, want 1", got)
	}
	if got := Workers(0, 5); got != 1 {
		t.Errorf("zero work: got %d, want 1", got)
	}
}

func TestSetMaxWorkersRestore(t *testing.T) {
	prev := SetMaxWorkers(3)
	if MaxWorkers() != 3 {
		t.Fatalf("override not applied")
	}
	SetMaxWorkers(prev)
	if MaxWorkers() != runtime.GOMAXPROCS(0) && prev == 0 {
		t.Fatalf("restore failed")
	}
}

func TestPlanCacheBuildsOncePerKey(t *testing.T) {
	c := NewPlanCache()
	var builds int32
	build := func(k PlanKey) *Plan {
		atomic.AddInt32(&builds, 1)
		return &Plan{Ranges: make([]sched.Range, k.Workers)}
	}
	key := PlanKey{Shard: 0, Domains: 1, Workers: 4}
	var wg sync.WaitGroup
	plans := make([]*Plan, 16)
	for g := range plans {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			plans[g] = c.Get(key, build)
		}(g)
	}
	wg.Wait()
	for _, pl := range plans[1:] {
		if pl != plans[0] {
			t.Fatal("concurrent Get returned different plans")
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	c.Get(PlanKey{Shard: 0, Domains: 1, Workers: 8}, build)
	if builds != 2 || c.Len() != 2 {
		t.Fatalf("second worker count: builds=%d len=%d", builds, c.Len())
	}
	// Placement, not just worker count, keys a plan: the same worker count
	// on another shard, or ganged over several domains, is a new plan.
	c.Get(PlanKey{Shard: 1, Domains: 1, Workers: 4}, build)
	c.Get(PlanKey{Shard: AnyShard, Domains: 2, Workers: 4}, build)
	if builds != 4 || c.Len() != 4 {
		t.Fatalf("per-placement keys: builds=%d len=%d, want 4 and 4", builds, c.Len())
	}
}

func TestPlanCacheWarmGetZeroAllocs(t *testing.T) {
	c := NewPlanCache()
	build := func(PlanKey) *Plan { return &Plan{} }
	key := PlanKey{Shard: 0, Domains: 1, Workers: 4}
	c.Get(key, build)
	allocs := testing.AllocsPerRun(100, func() {
		c.Get(key, build)
	})
	if allocs > 0 {
		t.Errorf("warm Get allocates %v times per call, want 0", allocs)
	}
}
