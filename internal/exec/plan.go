package exec

import (
	"sync"

	"repro/internal/sched"
)

// PlanKey identifies the execution placement a plan was built for — the
// value a Grant reports before the kernel runs.
type PlanKey struct {
	// Shard is the engine shard the dispatch landed on, or AnyShard for
	// gang-scheduled and spawn-fallback dispatches. Keying by shard gives
	// every shard its own cached scratch buffers, so concurrent calls
	// routed to distinct shards never contend on one plan's scratch (and
	// never pay the private-scratch allocation fallback).
	Shard int
	// Domains is the number of topology-domain slices the partition covers:
	// 1 for single-shard placements, the gang width for ganged ones. Plan
	// builders hand it to sched.DomainSplit so each worker's row range is
	// computed within its domain's contiguous slice of the matrix.
	Domains int
	// Workers is the worker count the partition splits across.
	Workers int
}

// Plan is the cached output of a format's inspector step for one placement:
// the row/nonzero partition and any per-worker scratch (merge-path carries,
// CSR5 segment bases, VSL partial vectors). Building a plan costs one
// partition computation; executing it costs nothing.
//
// Scratch buffers are shared by every call that uses the plan, so kernels
// that write scratch must hold the plan lock for the duration of the call —
// in practice via TryLock, building a private throwaway scratch when
// another call already holds it, so concurrent invocations with distinct
// output vectors keep full throughput (the seed behavior) and only pay the
// allocation when actual contention exists. Kernels without scratch (pure
// row-range partitions) skip the lock entirely. Shard-keyed plans make
// that contention rare: two calls only share a plan when they land on the
// same shard, which the engine's round-robin routing avoids while any
// shard is idle.
type Plan struct {
	// Ranges is the cached partition; one entry per worker.
	Ranges []sched.Range
	// DomainOff, when non-nil, is the per-domain offset table of Ranges for
	// a ganged placement: Ranges[DomainOff[j]:DomainOff[j+1]] belong to
	// domain j (the j-th enlisted shard). Grant.RunPlan dispatches each
	// domain's worker-id block by these offsets, so partitions that
	// collapsed ranges under skew still execute on their own domain's
	// shard. Plans without the table fall back to arithmetic id blocks.
	DomainOff []int
	// Scratch holds format-specific per-worker buffers.
	Scratch any

	mu sync.Mutex
}

// TryLock claims the plan's scratch without blocking; a false return means
// another call is mid-flight and the caller should use private scratch.
func (p *Plan) TryLock() bool { return p.mu.TryLock() }

// Unlock releases the scratch lock.
func (p *Plan) Unlock() { p.mu.Unlock() }

// PlanCache memoizes Plans by placement key inside a format instance. It is
// a single-pointer handle so formats can embed it by value; create it with
// NewPlanCache in the format constructor. Copies of the handle share the
// underlying store, which is what embedded-format copies made during
// construction want; a constructor deriving from an already-used format
// instance would need a fresh cache, since plans encode the partition
// policy of the format that built them.
type PlanCache struct {
	s *planStore
}

type planStore struct {
	mu    sync.RWMutex
	plans map[PlanKey]*Plan
}

// NewPlanCache returns an empty cache.
func NewPlanCache() PlanCache {
	return PlanCache{s: &planStore{plans: make(map[PlanKey]*Plan)}}
}

// Get returns the plan for the placement key, building and caching it on
// first use. The warm path is a read-locked map probe: no allocation, no
// partition work.
func (c PlanCache) Get(key PlanKey, build func(key PlanKey) *Plan) *Plan {
	c.s.mu.RLock()
	pl := c.s.plans[key]
	c.s.mu.RUnlock()
	if pl != nil {
		return pl
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if pl = c.s.plans[key]; pl == nil {
		pl = build(key)
		c.s.plans[key] = pl
	}
	return pl
}

// Len reports how many placements have cached plans.
func (c PlanCache) Len() int {
	c.s.mu.RLock()
	defer c.s.mu.RUnlock()
	return len(c.s.plans)
}
