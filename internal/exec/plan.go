package exec

import (
	"sync"

	"repro/internal/sched"
)

// Plan is the cached output of a format's inspector step for one worker
// count: the row/nonzero partition and any per-worker scratch (merge-path
// carries, CSR5 segment bases, VSL partial vectors). Building a plan costs
// one partition computation; executing it costs nothing.
//
// Scratch buffers are shared by every call that uses the plan, so kernels
// that write scratch must hold the plan lock for the duration of the call —
// in practice via TryLock, building a private throwaway scratch when
// another call already holds it, so concurrent invocations with distinct
// output vectors keep full throughput (the seed behavior) and only pay the
// allocation when actual contention exists. Kernels without scratch (pure
// row-range partitions) skip the lock entirely.
type Plan struct {
	// Ranges is the cached partition; one entry per worker.
	Ranges []sched.Range
	// Scratch holds format-specific per-worker buffers.
	Scratch any

	mu sync.Mutex
}

// TryLock claims the plan's scratch without blocking; a false return means
// another call is mid-flight and the caller should use private scratch.
func (p *Plan) TryLock() bool { return p.mu.TryLock() }

// Unlock releases the scratch lock.
func (p *Plan) Unlock() { p.mu.Unlock() }

// PlanCache memoizes Plans by worker count inside a format instance. It is
// a single-pointer handle so formats can embed it by value; create it with
// NewPlanCache in the format constructor. Copies of the handle share the
// underlying store, which is what embedded-format copies made during
// construction want; a constructor deriving from an already-used format
// instance would need a fresh cache, since plans encode the partition
// policy of the format that built them.
type PlanCache struct {
	s *planStore
}

type planStore struct {
	mu    sync.RWMutex
	plans map[int]*Plan
}

// NewPlanCache returns an empty cache.
func NewPlanCache() PlanCache {
	return PlanCache{s: &planStore{plans: make(map[int]*Plan)}}
}

// Get returns the plan for the worker count, building and caching it on
// first use. The warm path is a read-locked map probe: no allocation, no
// partition work.
func (c PlanCache) Get(workers int, build func(workers int) *Plan) *Plan {
	c.s.mu.RLock()
	pl := c.s.plans[workers]
	c.s.mu.RUnlock()
	if pl != nil {
		return pl
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if pl = c.s.plans[workers]; pl == nil {
		pl = build(workers)
		c.s.plans[workers] = pl
	}
	return pl
}

// Len reports how many worker counts have cached plans.
func (c PlanCache) Len() int {
	c.s.mu.RLock()
	defer c.s.mu.RUnlock()
	return len(c.s.plans)
}
