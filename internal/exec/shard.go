package exec

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/topo"
)

// AnyShard is the PlanKey shard id for dispatches not bound to a single
// shard: gang-scheduled calls and spawn fallbacks.
const AnyShard = -1

// maxGang bounds how many shards one grant can gang-schedule across. Eight
// covers every contemporary multi-socket topology; a machine with more
// domains simply runs the widest calls over the first eight idle shards,
// spawning goroutines for the remainder.
const maxGang = 8

// shard is one engine pool plus its dispatch statistics.
type shard struct {
	pool   *Pool
	id     int // shard index within the engine; orders ganged dispatches
	domain int // topo domain id the shard's workers prefer
	// capacity is the shard's effective parallel width in lanes. On
	// multi-domain machines it is the domain's CPU count, which may be
	// below the pool's parked-worker floor: the gang trigger compares the
	// requested workers against capacity, so a call wider than one domain
	// spreads across shards instead of stacking on one domain's pinned
	// CPUs. Where CPUs are unknown it is the full lane count (parked
	// workers plus the caller).
	capacity int

	runs     atomic.Uint64 // single-shard dispatches served
	gangRuns atomic.Uint64 // ganged dispatches this shard participated in
	busy     atomic.Int64  // cumulative nanoseconds spent serving dispatches
}

// Engine is the sharded execution engine: one worker-pool shard per
// topology domain (or per requested shard, see topo.Shards), each parking
// its workers independently. Independent concurrent SpMV calls are routed
// round-robin to idle shards; a single call wider than one shard
// gang-schedules across every idle shard. The zero value is valid and
// builds its shards lazily; when topo.Shards changes (SetShards or a new
// SPMV_SHARDS evaluation), the next dispatch rebuilds the shard set.
type Engine struct {
	mu    sync.Mutex // serializes rebuilds
	state atomic.Pointer[engineState]
	next  atomic.Uint32 // round-robin routing cursor
}

type engineState struct {
	shards []*shard
}

// shards returns the current shard set, (re)building it when the requested
// shard count changed. The warm path is one atomic load.
func (e *Engine) shards() []*shard {
	want := topo.Shards()
	if st := e.state.Load(); st != nil && len(st.shards) == want {
		return st.shards
	}
	return e.rebuild(want)
}

func (e *Engine) rebuild(want int) []*shard {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st := e.state.Load(); st != nil {
		if len(st.shards) == want {
			return st.shards
		}
		// Close waits for each old shard's in-flight dispatch (it takes the
		// pool mutex), so resharding never strands running work.
		for _, s := range st.shards {
			s.pool.Close()
		}
	}
	doms := topo.Assign(want)
	// Pinning only makes sense when every domain has at least one shard:
	// with fewer shards than domains (an undersharded override such as
	// -shards 1 on a dual-socket box), pinning would confine the whole
	// engine to the first domains' CPUs and leave the rest of the machine
	// idle, so those shards stay unpinned and machine-wide.
	pinned := topo.NumDomains() > 1 && want >= topo.NumDomains()
	shards := make([]*shard, want)
	for i := range shards {
		d := doms[i]
		cpus := 0
		if pinned {
			cpus = len(d.CPUs)
		}
		p := &Pool{size: shardPoolSize(cpus, want)}
		capacity := p.size + 1
		if pinned && len(d.CPUs) > 0 {
			dcpus := d.CPUs
			p.pin = func() { _ = topo.PinSelf(dcpus) } // best effort
			// Pinned workers share the domain's CPUs: cap the lanes the
			// dispatcher uses at the CPU count so a wide call gangs across
			// domains rather than stacking on one domain's cores (the
			// parked-worker floor can exceed small domains).
			if capacity = len(dcpus); capacity < 2 {
				capacity = 2 // always keep one real worker lane
			}
		}
		shards[i] = &shard{pool: p, id: i, domain: d.ID, capacity: capacity}
	}
	e.state.Store(&engineState{shards: shards})
	return shards
}

// shardPoolSize sizes one shard's parked workers from its domain's CPU
// count (GOMAXPROCS split across shards when the platform cannot say),
// with the same floor as defaultPoolSize so tests get real goroutine
// interleaving on small machines. Sizing shards to their domain is what
// makes dispatch topology-aware: a call that fits one domain's cores stays
// on one shard, and only wider calls gang across domains.
func shardPoolSize(cpus, shards int) int {
	if cpus == 0 {
		cpus = runtime.GOMAXPROCS(0) / shards
	}
	if n := cpus - 1; n > 7 {
		return n
	}
	return 7
}

// Grant is a claim on execution resources for one parallel dispatch,
// returned by Acquire. A grant pins down where the call will run before
// the kernel looks up its plan, so the plan can be cached per placement
// (PlanKey) and, for ganged grants, partitioned per domain. Every grant
// must be consumed by exactly one Run call.
type Grant struct {
	workers int
	shardID int
	np      int  // pools acquired; 0 = spawn fallback
	ctl     *Ctl // cancellation control for Ctx dispatches; nil = uncancellable
	pools   [maxGang]*shard
}

// Ctl returns the grant's cancellation control (nil for uncancellable
// grants). Kernels poll g.Ctl().Cancelled() at chunk granularity inside
// their partition loops; the nil receiver is valid and always reports
// false, so uncancellable kernels share the same code path.
func (g *Grant) Ctl() *Ctl { return g.ctl }

// Key returns the plan-cache key for this grant's placement.
func (g *Grant) Key() PlanKey {
	d := g.np
	if d < 1 {
		d = 1
	}
	return PlanKey{Shard: g.shardID, Domains: d, Workers: g.workers}
}

// ShardID returns the shard the grant landed on, or AnyShard for ganged
// and spawn-fallback grants.
func (g *Grant) ShardID() int { return g.shardID }

// Domains returns how many shards the grant spans: 1 for single-shard and
// fallback grants, the gang width for ganged grants.
func (g *Grant) Domains() int {
	if g.np < 1 {
		return 1
	}
	return g.np
}

// Acquire claims execution resources for a dispatch of up to `workers`
// shards. Routing walks the shards round-robin from a rotating cursor and
// takes the first idle one; if that shard's lanes (its parked workers plus
// the caller) cannot cover the request and other shards are idle, the
// grant gangs them in. When every shard is busy the grant is a spawn
// fallback, preserving the engine's never-queue, never-deadlock property.
func (e *Engine) Acquire(workers int) Grant {
	g := Grant{workers: workers, shardID: AnyShard}
	if workers <= 1 {
		return g
	}
	shards := e.shards()
	n := len(shards)
	// Modulo in uint32 space: the wrapping cursor must never go negative
	// through an int conversion on 32-bit platforms.
	start := int((e.next.Add(1) - 1) % uint32(n))
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		s := shards[idx]
		if s.pool.mu.TryLock() {
			if s.pool.closed {
				// A reshard raced this acquire; skip the dead pool.
				s.pool.mu.Unlock()
				continue
			}
			g.pools[0], g.np, g.shardID = s, 1, idx
			break
		}
	}
	if g.np == 0 {
		return g
	}
	if lanes := g.pools[0].capacity; lanes < workers && n > 1 {
		for i := 1; i < n && g.np < maxGang && lanes < workers; i++ {
			s := shards[(g.shardID+i)%n]
			if s.pool.mu.TryLock() {
				if s.pool.closed {
					s.pool.mu.Unlock()
					continue
				}
				g.pools[g.np] = s
				g.np++
				lanes += s.capacity
			}
		}
		if g.np > 1 {
			// Order the gang by shard index so the plan's domain slice j
			// always lands on the j-th lowest enlisted shard: the rotating
			// cursor acquires pools in varying order, and without this sort
			// the same matrix slice would migrate across sockets call to
			// call, defeating pinning and cross-call cache reuse.
			for i := 1; i < g.np; i++ {
				for k := i; k > 0 && g.pools[k].id < g.pools[k-1].id; k-- {
					g.pools[k], g.pools[k-1] = g.pools[k-1], g.pools[k]
				}
			}
			g.shardID = AnyShard
		}
	}
	return g
}

// AcquireCtl is Acquire for a cancellable dispatch: the returned grant
// carries ctl, which the Ctx run methods and chunk-polling kernels consult.
// A nil ctl yields a grant identical to Acquire's.
func (e *Engine) AcquireCtl(workers int, ctl *Ctl) Grant {
	g := e.Acquire(workers)
	g.ctl = ctl
	return g
}

// Run executes f(0..n-1) on the granted resources, waits for completion,
// and releases every acquired shard. n at most g.workers; fewer (a
// partition that collapsed ranges) is fine. Run consumes the grant: a
// deferred Release afterwards is a no-op. Ganged dispatches block ids
// arithmetically; kernels whose plan carries a per-domain offset table
// should use RunPlan so collapsed partitions stay on their own domain.
//
// A panic on a worker lane is contained by the engine (the shard stays
// serviceable) and re-panics here with a *PanicError value; a panic on the
// caller's own lane propagates unchanged. Callers that want an error
// instead use RunCtx.
func (g *Grant) Run(n int, f func(w int)) {
	if pe := g.runE(n, nil, f); pe != nil {
		panic(pe)
	}
}

// RunPlan executes f over a range-partitioned plan: f(0..len(pl.Ranges)-1),
// with ganged dispatches blocked by the plan's DomainOff table when present
// — range ids [DomainOff[j], DomainOff[j+1]) run on the j-th enlisted
// shard, exactly the domain the plan builder assigned them to. Like Run it
// waits, releases every acquired shard, and consumes the grant. Panic
// semantics match Run.
func (g *Grant) RunPlan(pl *Plan, f func(w int)) {
	if pe := g.runE(len(pl.Ranges), pl.DomainOff, f); pe != nil {
		panic(pe)
	}
}

// RunCtx is the cancellable, fault-isolated Run: it executes f(0..n-1),
// skips lanes that start after the grant's Ctl is cancelled, converts any
// lane panic (caller lane included) into a *PanicError return, and reports
// the context's error when the call was cancelled. Kernels bound the
// cancellation latency by polling g.Ctl().Cancelled() between chunks of
// their assigned range; RunCtx itself guarantees only that un-started
// lanes never begin. The shard remains serviceable after any failure.
func (g *Grant) RunCtx(n int, f func(w int)) error {
	return g.runCtx(n, nil, f)
}

// RunPlanCtx is RunPlan with RunCtx's cancellation and panic-to-error
// semantics.
func (g *Grant) RunPlanCtx(pl *Plan, f func(w int)) error {
	return g.runCtx(len(pl.Ranges), pl.DomainOff, f)
}

// runCtx wraps every lane of a dispatch with a cancellation gate and a
// panic trap, then reports the first fault as an error: a lane panic wins
// over plain cancellation (the panic is the root cause — it also poisons
// the Ctl so sibling lanes stop at their next chunk boundary), and a
// cancelled call reports the context's own error (context.Canceled or
// DeadlineExceeded).
func (g *Grant) runCtx(n int, off []int, f func(w int)) error {
	ctl := g.ctl
	var ps panicSlot
	wf := func(w int) {
		defer func() {
			if r := recover(); r != nil {
				ps.record(w, r, debug.Stack())
				ctl.poison()
			}
		}()
		if ctl.Cancelled() {
			return
		}
		f(w)
	}
	pe := g.runE(n, off, wf)
	if pe == nil {
		pe = ps.take()
	}
	if pe != nil {
		return pe
	}
	if err := ctl.Err(); err != nil && ctl.Cancelled() {
		return err
	}
	return nil
}

// gangBlocks fills blk[0..nb] with the worker-id block bounds per enlisted
// shard — shard j runs ids [blk[j], blk[j+1]) — and returns nb, the number
// of blocks. With a plan offset table (len(off)-1 domain slices, at most
// np), the blocks are the plan's own per-domain range groups; otherwise
// they are the arithmetic split of `workers` ids used when building plans
// for this placement. Bounds are clamped to n.
func gangBlocks(np, workers, n int, off []int, blk *[maxGang + 1]int) int {
	if len(off) >= 2 && len(off)-1 <= np {
		nb := len(off) - 1
		for j := 0; j <= nb; j++ {
			b := off[j]
			if b > n {
				b = n
			}
			blk[j] = b
		}
		return nb
	}
	for j := 0; j <= np; j++ {
		b := workers * j / np
		if b > n {
			b = n
		}
		blk[j] = b
	}
	return np
}

// runE is the shared implementation of every Run variant; off is the
// plan's per-domain offset table or nil for arithmetic gang blocks. It
// returns the first contained panic from a worker lane (pool worker or
// spawned overflow goroutine) — the callers decide whether that re-panics
// (Run/RunPlan) or becomes an error (RunCtx/RunPlanCtx). A panic on the
// caller's own lane unwinds through runE; the defers still drain every
// woken worker and release every pool, so the engine survives that too.
func (g *Grant) runE(n int, off []int, f func(w int)) (pe *PanicError) {
	np := g.np
	g.np = 0 // consumed; Release becomes a no-op
	if np == 0 {
		if n <= 1 {
			f(0)
			return nil
		}
		spawnFallbacks.Add(1)
		return spawnRunE(n, f)
	}
	if n <= 1 {
		// A collapsed partition: the shards were held but no workers run.
		// Still counts as served dispatches so the shards report reflects
		// real engine traffic.
		for j := 0; j < np; j++ {
			g.pools[j].pool.mu.Unlock()
			g.pools[j].runs.Add(1)
		}
		f(0)
		return nil
	}
	if np == 1 {
		s := g.pools[0]
		t0 := time.Now()
		if lanes := s.pool.size + 1; n > lanes {
			// A wide call landed on one shard because every other shard was
			// busy: spawn the overflow ids so they run concurrently instead
			// of serializing on the caller after its own lane (PR 1 spawned
			// the whole call in this situation).
			var ps panicSlot // contained panics from the overflow goroutines
			var wg sync.WaitGroup
			// Wait again in a defer: if a pooled lane panics, the spawned
			// goroutines must not be left writing y while the caller
			// unwinds and possibly retries with the same vector.
			defer wg.Wait()
			wg.Add(n - lanes)
			for w := lanes; w < n; w++ {
				go func(w int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							ps.record(w, r, debug.Stack())
						}
					}()
					f(w)
				}(w)
			}
			pe = s.pool.runLockedE(lanes, f)
			wg.Wait()
			if pe == nil {
				pe = ps.take()
			}
		} else {
			pe = s.pool.runLockedE(n, f)
		}
		s.busy.Add(int64(time.Since(t0)))
		s.runs.Add(1)
		return pe
	}
	// Ganged dispatch: shard j's workers take the consecutive id block
	// gangBlocks assigns them — the plan's own per-domain range group when
	// the plan carries an offset table, else the arithmetic block
	// [w*j/np, w*(j+1)/np) that sched.DomainSplit produces for this
	// placement (Domains=np, Workers=w) when no range collapses — so each
	// domain's slice of the matrix is walked by the shard pinned to that
	// domain. The caller runs id 0 as a lane of the first shard; ids a pool
	// cannot wake (its parked workers are fewer than its share) are spawned
	// so they still run concurrently.
	var blk [maxGang + 1]int
	nb := gangBlocks(np, g.workers, n, off, &blk)
	t0 := time.Now()
	var ps panicSlot // contained panics from spawned overflow goroutines
	var woken [maxGang]int
	defer func() {
		// Drain in a defer so a panicking caller shard still consumes every
		// done token before the pools unlock. Each drain harvests that
		// pool's contained-panic slot; the first fault across the gang (and
		// the overflow spawns) is the one reported.
		for j := 0; j < np; j++ {
			s := g.pools[j]
			if p := s.pool.drain(woken[j]); pe == nil {
				pe = p
			}
			s.gangRuns.Add(1)
		}
		if pe == nil {
			pe = ps.take()
		}
		d := int64(time.Since(t0))
		for j := 0; j < np; j++ {
			g.pools[j].busy.Add(d)
		}
	}()
	var spawned sync.WaitGroup
	// As with the drain defer above: a panicking caller lane must not leave
	// spawned overflow goroutines still writing y after the call unwinds.
	defer spawned.Wait()
	for j := 0; j < nb; j++ {
		lo := blk[j]
		hi := blk[j+1]
		if j == 0 {
			lo = 1 // the caller runs id 0, a lane of the first shard
		}
		if lo >= hi {
			continue
		}
		woken[j] = g.pools[j].pool.dispatch(f, lo, hi-lo)
		// Ids of this domain's block beyond the pool's parked workers are
		// spawned rather than handed to the next shard, so they never run
		// on another domain's pinned cores.
		for v := lo + woken[j]; v < hi; v++ {
			spawned.Add(1)
			go func(v int) {
				defer spawned.Done()
				defer func() {
					if r := recover(); r != nil {
						ps.record(v, r, debug.Stack())
					}
				}()
				f(v)
			}(v)
		}
	}
	f(0)
	spawned.Wait()
	return
}

// Release frees a grant's shards without running work. It is a no-op after
// Run; kernels defer it so a panic between Acquire and Run (a failing plan
// builder, a shape check in a nested call) can never leave a shard locked
// for the life of the process.
func (g *Grant) Release() {
	for j := 0; j < g.np; j++ {
		g.pools[j].pool.mu.Unlock()
	}
	g.np = 0
}

// ShardStat is one shard's identity and cumulative dispatch statistics.
type ShardStat struct {
	Shard    int           // shard index within the engine
	Domain   int           // topo domain id the shard's workers prefer
	Workers  int           // parked workers (the caller adds one lane)
	Runs     uint64        // single-shard dispatches served
	GangRuns uint64        // ganged dispatches participated in
	Busy     time.Duration // cumulative wall time serving dispatches
}

// EngineStats is a snapshot of the engine's dispatch counters.
type EngineStats struct {
	Shards         []ShardStat
	SpawnFallbacks uint64 // process-wide count of spawned-goroutine fallbacks
}

// Stats snapshots per-shard dispatch statistics.
func (e *Engine) Stats() EngineStats {
	shards := e.shards()
	st := EngineStats{
		Shards:         make([]ShardStat, len(shards)),
		SpawnFallbacks: SpawnFallbacks(),
	}
	for i, s := range shards {
		st.Shards[i] = ShardStat{
			Shard:    i,
			Domain:   s.domain,
			Workers:  s.pool.size,
			Runs:     s.runs.Load(),
			GangRuns: s.gangRuns.Load(),
			Busy:     time.Duration(s.busy.Load()),
		}
	}
	return st
}

// Prestart spins up every shard's parked workers so the first timed kernel
// call does not pay pool construction.
func (e *Engine) Prestart() {
	for _, s := range e.shards() {
		s.pool.Prestart()
	}
}

// defaultEngine is the process-wide engine all format kernels share.
var defaultEngine Engine

// Acquire claims resources for a workers-wide dispatch on the process-wide
// engine.
func Acquire(workers int) Grant { return defaultEngine.Acquire(workers) }

// AcquireCtl claims resources for a cancellable workers-wide dispatch on
// the process-wide engine.
func AcquireCtl(workers int, ctl *Ctl) Grant { return defaultEngine.AcquireCtl(workers, ctl) }

// Run executes f(0..n-1) on the process-wide engine and waits.
func Run(n int, f func(w int)) {
	g := Acquire(n)
	g.Run(n, f)
}

// Prestart spins up every shard of the process-wide engine.
func Prestart() { defaultEngine.Prestart() }

// Stats snapshots the process-wide engine's dispatch statistics.
func Stats() EngineStats { return defaultEngine.Stats() }
