package exec

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
	"repro/internal/topo"
)

// resetShards pins the engine to n shards for a test and restores the
// previous override (and engine state) on cleanup.
func resetShards(t *testing.T, n int) {
	t.Helper()
	prev := topo.SetShards(n)
	t.Cleanup(func() {
		topo.SetShards(prev)
		defaultEngine.shards() // rebuild now so later tests see a settled engine
	})
	defaultEngine.shards()
}

// TestConcurrentRunsLandOnDistinctShards is the acceptance property of the
// sharded dispatch: with two shards on a single-domain machine, two
// simultaneous SpMV-style Runs must both execute on parked pool workers —
// distinct shards, no spawned-goroutine fallback. The in-call barrier
// proves both dispatches are in flight at the same time, which the PR 1
// single pool could only serve by spawning.
func TestConcurrentRunsLandOnDistinctShards(t *testing.T) {
	resetShards(t, 2)
	Prestart()
	spawnsBefore := SpawnFallbacks()

	var ready sync.WaitGroup
	ready.Add(2)
	shardIDs := make([]int, 2)
	var counts [2][4]int32
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := Acquire(4)
			shardIDs[i] = g.ShardID()
			g.Run(4, func(w int) {
				if w == 0 {
					// Rendezvous: both calls must be running concurrently
					// before either may finish.
					ready.Done()
					ready.Wait()
				}
				atomic.AddInt32(&counts[i][w], 1)
			})
		}(i)
	}
	wg.Wait()

	for i := range counts {
		for w, c := range counts[i] {
			if c != 1 {
				t.Errorf("call %d: shard id %d ran %d times, want 1", i, w, c)
			}
		}
		if shardIDs[i] == AnyShard {
			t.Errorf("call %d did not land on a pool shard (id %d)", i, shardIDs[i])
		}
	}
	if shardIDs[0] == shardIDs[1] {
		t.Errorf("both calls landed on shard %d, want distinct shards", shardIDs[0])
	}
	if d := SpawnFallbacks() - spawnsBefore; d != 0 {
		t.Errorf("%d spawn fallbacks during concurrent dispatch, want 0", d)
	}
}

// TestGangScheduleSpansShards: a single call wider than one shard's lanes
// must enlist the other idle shards instead of running the overflow inline.
func TestGangScheduleSpansShards(t *testing.T) {
	resetShards(t, 3)
	Prestart()

	lanes := 0
	for _, s := range Stats().Shards {
		lanes += s.Workers
	}
	n := lanes + 1 // every parked worker plus the caller, no inline leftovers
	g := Acquire(n)
	if got := g.Domains(); got != 3 {
		t.Fatalf("Acquire(%d) spans %d shards, want 3", n, got)
	}
	if g.ShardID() != AnyShard {
		t.Fatalf("ganged grant reports shard %d, want AnyShard", g.ShardID())
	}
	if k := g.Key(); k.Domains != 3 || k.Workers != n || k.Shard != AnyShard {
		t.Fatalf("ganged key = %+v", k)
	}
	counts := make([]int32, n)
	g.Run(n, func(w int) { atomic.AddInt32(&counts[w], 1) })
	for w, c := range counts {
		if c != 1 {
			t.Fatalf("shard id %d ran %d times, want 1", w, c)
		}
	}
	gangs := uint64(0)
	for _, s := range Stats().Shards {
		gangs += s.GangRuns
	}
	if gangs < 3 {
		t.Errorf("gang runs recorded on %d shard participations, want >= 3", gangs)
	}
}

// TestAcquireFallsBackWhenAllShardsBusy: the engine must never queue — a
// dispatch finding every shard busy takes the seed-era spawn path and is
// counted.
func TestAcquireFallsBackWhenAllShardsBusy(t *testing.T) {
	resetShards(t, 1)
	Prestart()

	release := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Run(2, func(w int) {
			if w == 0 {
				close(running)
				<-release
			}
		})
	}()
	<-running
	spawnsBefore := SpawnFallbacks()
	var total int32
	Run(3, func(w int) { atomic.AddInt32(&total, 1) }) // must not deadlock
	close(release)
	wg.Wait()
	if total != 3 {
		t.Errorf("fallback run executed %d shards, want 3", total)
	}
	if d := SpawnFallbacks() - spawnsBefore; d != 1 {
		t.Errorf("spawn fallbacks delta = %d, want 1", d)
	}
}

// TestEngineReshardsOnSetShards: changing the shard count rebuilds the
// engine on the next dispatch, closing the old pools.
func TestEngineReshardsOnSetShards(t *testing.T) {
	resetShards(t, 2)
	if n := len(Stats().Shards); n != 2 {
		t.Fatalf("engine has %d shards, want 2", n)
	}
	topo.SetShards(3)
	var total int32
	Run(4, func(w int) { atomic.AddInt32(&total, 1) })
	if total != 4 {
		t.Fatalf("post-reshard run executed %d shards", total)
	}
	if n := len(Stats().Shards); n != 3 {
		t.Fatalf("engine has %d shards after SetShards(3), want 3", n)
	}
}

// TestGrantSingleRangeReleases: a grant consumed by a collapsed (n=1) run
// must still release its shard for the next caller.
func TestGrantSingleRangeReleases(t *testing.T) {
	resetShards(t, 1)
	g := Acquire(4)
	if g.ShardID() != 0 {
		t.Fatalf("grant on shard %d, want 0", g.ShardID())
	}
	ran := false
	g.Run(1, func(w int) { ran = w == 0 })
	if !ran {
		t.Fatal("collapsed run did not execute shard 0")
	}
	g2 := Acquire(4)
	if g2.ShardID() != 0 {
		t.Fatalf("shard not released: follow-up grant on %d", g2.ShardID())
	}
	g2.Run(2, func(int) {})
}

// TestGrantSerialKey: the spawn-fallback and sub-parallel grants report a
// single-domain AnyShard key, so all shards' fallback calls share a plan.
func TestGrantSerialKey(t *testing.T) {
	resetShards(t, 1)
	g := Grant{workers: 3, shardID: AnyShard}
	if k := g.Key(); k != (PlanKey{Shard: AnyShard, Domains: 1, Workers: 3}) {
		t.Fatalf("fallback key = %+v", k)
	}
	if g.Domains() != 1 {
		t.Fatalf("fallback Domains() = %d, want 1", g.Domains())
	}
}

// TestEngineRunZeroAllocsWarm: the sharded routing layer must not add
// allocations to the steady-state dispatch path.
func TestEngineRunZeroAllocsWarm(t *testing.T) {
	resetShards(t, 2)
	Prestart()
	var sink int64
	f := func(w int) { atomic.AddInt64(&sink, int64(w)) }
	Run(4, f)
	allocs := testing.AllocsPerRun(100, func() {
		Run(4, f)
	})
	if allocs > 0 {
		t.Errorf("warm engine Run allocates %v times per call, want 0", allocs)
	}
}

// TestGangRecoversFromCallerPanic: a panic on the caller's lane of a ganged
// dispatch must drain every enlisted shard before unlocking, leaving the
// engine consistent.
func TestGangRecoversFromCallerPanic(t *testing.T) {
	resetShards(t, 2)
	Prestart()
	lanes := 0
	for _, s := range Stats().Shards {
		lanes += s.Workers
	}
	n := lanes + 1
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the caller-lane panic to propagate")
			}
		}()
		g := Acquire(n)
		if g.Domains() != 2 {
			t.Fatalf("grant spans %d shards, want 2", g.Domains())
		}
		g.Run(n, func(w int) {
			if w == 0 {
				panic("caller lane boom")
			}
		})
	}()
	// Both shards must be idle and consistent again.
	for i := 0; i < 20; i++ {
		counts := make([]int32, n)
		g := Acquire(n)
		g.Run(n, func(w int) { atomic.AddInt32(&counts[w], 1) })
		for w, c := range counts {
			if c != 1 {
				t.Fatalf("post-panic run %d: shard id %d ran %d times", i, w, c)
			}
		}
	}
}

// TestStatsCountsDispatches: single-shard dispatches increment exactly one
// shard's run counter and accumulate busy time.
func TestStatsCountsDispatches(t *testing.T) {
	resetShards(t, 2)
	Prestart()
	before := Stats()
	for i := 0; i < 10; i++ {
		Run(4, func(int) {})
	}
	after := Stats()
	var dRuns uint64
	for i := range after.Shards {
		dRuns += after.Shards[i].Runs - before.Shards[i].Runs
		if after.Shards[i].Busy < before.Shards[i].Busy {
			t.Errorf("shard %d busy time went backwards", i)
		}
	}
	if dRuns != 10 {
		t.Errorf("run counters advanced by %d, want 10", dRuns)
	}
}

// TestGrantReleaseFreesShard: an acquired grant abandoned without Run
// (the panic-recovery path kernels reach via defer g.Release()) must free
// its shard; Release after Run must be a harmless no-op.
func TestGrantReleaseFreesShard(t *testing.T) {
	resetShards(t, 1)
	g := Acquire(4)
	if g.ShardID() != 0 {
		t.Fatalf("grant on shard %d, want 0", g.ShardID())
	}
	g.Release()
	g2 := Acquire(4)
	if g2.ShardID() != 0 {
		t.Fatal("shard still locked after Release")
	}
	g2.Run(2, func(int) {})
	g2.Release() // after Run: no-op, must not unlock an idle mutex
	g3 := Acquire(4)
	if g3.ShardID() != 0 {
		t.Fatal("released-after-run shard not reacquirable")
	}
	g3.Run(2, func(int) {})
}

// TestClosedPoolIsNeverResurrected: Prestart or Run racing a Close (as an
// engine reshard does) must not restart a closed pool's workers — they
// would be orphaned forever.
func TestClosedPoolIsNeverResurrected(t *testing.T) {
	p := NewPool(2)
	p.Prestart()
	p.Close()
	p.Prestart() // must not respawn workers
	if p.Size() != 0 {
		t.Fatalf("closed pool reports %d parked workers after Prestart", p.Size())
	}
	var total int32
	p.Run(3, func(int) { atomic.AddInt32(&total, 1) }) // spawn fallback path
	if total != 3 {
		t.Fatalf("run on closed pool executed %d shards, want 3", total)
	}
	if p.Size() != 0 {
		t.Fatalf("closed pool restarted by Run: %d parked workers", p.Size())
	}
}

// skewedRowPtr builds a CSR row-pointer array whose first row holds almost
// every nonzero, the shape that collapses sched's domain slicing.
func skewedRowPtr(rows, giant int) []int32 {
	ptr := make([]int32, rows+1)
	ptr[1] = int32(giant)
	for i := 2; i <= rows; i++ {
		ptr[i] = ptr[i-1] + 1
	}
	return ptr
}

// TestGangBlocksUsePlanOffsets is the gang-alignment regression (ROADMAP
// follow-up): under a collapsed partition the dispatch blocks must come
// from the plan's per-domain offset table, not the arithmetic
// workers*j/np split, which would shift a domain's ranges onto a
// neighboring shard.
func TestGangBlocksUsePlanOffsets(t *testing.T) {
	ptr := skewedRowPtr(12, 1_000_000)
	const np, workers = 2, 6
	ranges, off := sched.DomainSplitOff(ptr, np, workers, sched.NNZBalanced)
	n := len(ranges)
	if n >= workers {
		t.Fatalf("skew did not collapse the partition: %d ranges for %d workers", n, workers)
	}

	var blk [maxGang + 1]int
	nb := gangBlocks(np, workers, n, off, &blk)
	if nb != len(off)-1 {
		t.Fatalf("gangBlocks produced %d blocks, want %d (one per domain group)", nb, len(off)-1)
	}
	for j := 0; j < nb; j++ {
		if blk[j] != off[j] || blk[j+1] != off[j+1] {
			t.Errorf("block %d = [%d,%d), want the plan's [%d,%d)", j, blk[j], blk[j+1], off[j], off[j+1])
		}
	}

	// The arithmetic fallback must disagree on this placement — otherwise
	// the regression case has lost its teeth.
	var arith [maxGang + 1]int
	na := gangBlocks(np, workers, n, nil, &arith)
	if na != np {
		t.Fatalf("arithmetic gangBlocks produced %d blocks, want %d", na, np)
	}
	if arith[1] == blk[1] {
		t.Fatalf("arithmetic block boundary %d coincides with the plan offset; pick a harsher skew", arith[1])
	}
}

// TestRunPlanCollapsedGangCoverage: a ganged RunPlan over a collapsed,
// offset-carrying plan must still execute every range id exactly once and
// leave the engine reusable.
func TestRunPlanCollapsedGangCoverage(t *testing.T) {
	resetShards(t, 3)
	Prestart()

	lanes := 0
	for _, s := range Stats().Shards {
		lanes += s.Workers
	}
	workers := lanes + 1 // force a full gang across all three shards
	ptr := skewedRowPtr(64, 1_000_000)
	for i := 0; i < 5; i++ {
		g := Acquire(workers)
		np := g.Domains()
		ranges, off := sched.DomainSplitOff(ptr, np, workers, sched.NNZBalanced)
		pl := &Plan{Ranges: ranges, DomainOff: off}
		counts := make([]int32, len(ranges))
		g.RunPlan(pl, func(w int) { atomic.AddInt32(&counts[w], 1) })
		for w, c := range counts {
			if c != 1 {
				t.Fatalf("iteration %d: range id %d ran %d times, want 1", i, w, c)
			}
		}
	}
}

// TestWideCallOnBusyEngineSpawnsOverflow: a call wider than one shard's
// lanes that cannot gang (every other shard busy) must spawn its overflow
// ids so they run concurrently with the pooled lanes, not serially on the
// caller after its own lane.
func TestWideCallOnBusyEngineSpawnsOverflow(t *testing.T) {
	resetShards(t, 2)
	Prestart()

	release := make(chan struct{})
	running := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		g := Acquire(2)
		g.Run(2, func(w int) {
			if w == 0 {
				close(running)
				<-release
			}
		})
	}()
	<-running // exactly one shard is now busy

	lanes := Stats().Shards[0].Workers + 1
	n := lanes + 3 // forces the overflow-spawn branch
	g := Acquire(n)
	if g.Domains() != 1 {
		t.Fatalf("grant gangs %d shards while one is busy, want 1", g.Domains())
	}
	counts := make([]int32, n)
	var rendezvous sync.WaitGroup
	rendezvous.Add(n)
	g.Run(n, func(w int) {
		// Every id must be in flight at once: inline serial overflow would
		// deadlock here (and fail the test by timeout).
		rendezvous.Done()
		rendezvous.Wait()
		atomic.AddInt32(&counts[w], 1)
	})
	for w, c := range counts {
		if c != 1 {
			t.Errorf("id %d ran %d times, want 1", w, c)
		}
	}
	close(release)
	bg.Wait()
}
