package failpoint_test

// Chaos suite: random failpoint schedules driven against live workloads
// from every subsystem that declares a site — engine dispatch, the
// decision journal, MatrixMarket reads, and the update layer's
// freeze/rebuild — while readers and writers run concurrently. The
// invariants are the robustness contract, not exact outputs:
//
//   - no fault ever escapes as an uncontained panic or a wrong answer:
//     every operation either succeeds or returns (or panics with, for
//     legacy entry points) an error chaining to failpoint.ErrInjected;
//   - after the storm, with every site disarmed, all state is intact:
//     multiplies are exact, compaction folds, the journal parses.
//
// Run under -race (the CI chaos leg does).

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/failpoint"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/update"
)

// chaosSites is every failpoint site the chaos controller may arm, with
// the specs it randomizes over. exec.worker gets panic actions too: the
// containment layer must convert them; everything else returns errors.
var chaosSites = map[string][]string{
	"exec.worker":    {"error%5", "panic%3", "sleep:1%10", "error*1", "panic*2"},
	"cache.append":   {"enospc%40", "error%40", "enospc*1"},
	"cache.rename":   {"error%60", "error*1"},
	"cache.flock":    {"error%20"},
	"update.freeze":  {"error%50", "error*2"},
	"update.rebuild": {"error%50", "enospc%30", "error*1"},
	"mmio.read":      {"error%50", "enospc%50"},
}

// tolerateInjected runs fn, absorbing a panic only when it chains to an
// injected fault (legacy entry points re-panic contained worker faults;
// anything else is a real bug and re-panics).
func tolerateInjected(t *testing.T, fn func()) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if err, ok := r.(error); ok && errors.Is(err, failpoint.ErrInjected) {
			return
		}
		panic(r)
	}()
	fn()
}

// requireCleanOrInjected fails the test unless err is nil or an injected
// fault (possibly wrapped in a contained panic).
func requireCleanOrInjected(t *testing.T, op string, err error) {
	t.Helper()
	if err == nil || errors.Is(err, failpoint.ErrInjected) {
		return
	}
	t.Errorf("%s: non-injected error escaped: %v", op, err)
}

func TestChaosRandomFailpointSchedules(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) { chaosRound(t, seed) })
	}
}

func chaosRound(t *testing.T, seed int64) {
	prevEnabled := failpoint.SetEnabled(true)
	prevW := exec.SetMaxWorkers(8)
	defer func() {
		failpoint.DisableAll()
		failpoint.SetEnabled(prevEnabled)
		exec.SetMaxWorkers(prevW)
	}()

	duration := 400 * time.Millisecond
	if testing.Short() {
		duration = 120 * time.Millisecond
	}

	const writers = 4
	const rows = 128
	u, err := update.New(matrix.Identity(rows), update.Options{
		Format: "Naive-CSR", Shards: 4, MinCompact: 32, CompactRatio: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop sync.WaitGroup
	done := make(chan struct{})

	// Chaos controller: every few milliseconds rearm a random site with a
	// random spec, or disarm one.
	stop.Add(1)
	go func() {
		defer stop.Done()
		rng := rand.New(rand.NewSource(seed))
		names := make([]string, 0, len(chaosSites))
		for n := range chaosSites {
			names = append(names, n)
		}
		for {
			select {
			case <-done:
				return
			case <-time.After(time.Duration(1+rng.Intn(4)) * time.Millisecond):
			}
			name := names[rng.Intn(len(names))]
			if rng.Intn(4) == 0 {
				failpoint.Disable(name)
				continue
			}
			specs := chaosSites[name]
			if err := failpoint.Enable(name, specs[rng.Intn(len(specs))]); err != nil {
				t.Errorf("Enable(%s): %v", name, err)
			}
		}
	}()

	// Writers: each owns one diagonal cell, adding 1 per iteration and
	// counting locally — the ground truth for the post-storm check. The
	// write path has no failpoint site, so every Add must land.
	counts := make([]int, writers)
	for w := 0; w < writers; w++ {
		stop.Add(1)
		go func(w int) {
			defer stop.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				u.Add(w, w, 1)
				counts[w]++
			}
		}(w)
	}

	// Readers: cancellable multiplies through the engine. Cancelled or
	// fault-poisoned calls are fine; wrong answers and foreign errors are
	// not. Legacy SpMVParallel re-panics contained faults — tolerated.
	for r := 0; r < 2; r++ {
		stop.Add(1)
		go func(r int) {
			defer stop.Done()
			x := make([]float64, rows)
			y := make([]float64, rows)
			for i := range x {
				x[i] = 1
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				if r == 0 {
					tolerateInjected(t, func() { u.SpMVParallel(x, y, 4) })
				} else {
					s := u.Base()
					if cf, ok := s.(formats.ContextFormat); ok {
						requireCleanOrInjected(t, "SpMVCtx", cf.SpMVCtx(context.Background(), x, y, 4))
					}
				}
			}
		}(r)
	}

	// Compactor: explicit compactions racing the auto trigger; failures
	// must be injected ones, and the overlay must keep serving.
	stop.Add(1)
	go func() {
		defer stop.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(10 * time.Millisecond):
			}
			requireCleanOrInjected(t, "Compact", u.Compact())
		}
	}()

	// Journal writer: a private decision store hammered with appends and
	// compactions while cache.append/rename/flock faults fire. The store's
	// whole error surface is degradation — nothing here may fail.
	st0, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st0.Close()
	stop.Add(1)
	go func() {
		defer stop.Done()
		rng := rand.New(rand.NewSource(seed + 1000))
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			k := cache.DecisionKey{Fingerprint: uint64(rng.Intn(64)), Device: "host", K: 1, Shards: 1}
			st0.AppendDecision(k, cache.Decision{Format: "Naive-CSR", Probed: i%2 == 0})
			if i%16 == 0 {
				st0.AppendExperience(cache.Experience{Device: "host", K: 1, Best: "ELL"})
			}
			if i%64 == 0 {
				requireCleanOrInjected(t, "journal Compact", st0.Compact())
			}
		}
	}()

	// MatrixMarket reader: a load either parses exactly or reports the
	// injected fault — never a partial matrix.
	const mm = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 2.5\n"
	stop.Add(1)
	go func() {
		defer stop.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			m, err := matrix.ReadMatrixMarket(strings.NewReader(mm))
			if err != nil {
				requireCleanOrInjected(t, "ReadMatrixMarket", err)
				continue
			}
			if m.Rows != 2 || m.NNZ() != 2 {
				t.Errorf("ReadMatrixMarket returned partial matrix: %dx%d nnz=%d", m.Rows, m.Cols, m.NNZ())
			}
		}
	}()

	time.Sleep(duration)
	close(done)
	stop.Wait()

	// Storm over: disarm everything and verify nothing was corrupted.
	failpoint.DisableAll()
	failpoint.SetEnabled(false)

	if err := u.Compact(); err != nil {
		t.Fatalf("Compact after storm: %v", err)
	}
	st := u.Stats()
	if st.FrozenLen != 0 || st.ActiveLen != 0 {
		t.Errorf("overlay not folded after storm: frozen=%d active=%d", st.FrozenLen, st.ActiveLen)
	}
	x := make([]float64, rows)
	y := make([]float64, rows)
	for i := range x {
		x[i] = 1
	}
	u.SpMVParallel(x, y, 4)
	for w := 0; w < writers; w++ {
		if want := 1 + float64(counts[w]); y[w] != want {
			t.Errorf("diagonal %d = %v after storm, want %v (%d adds)", w, y[w], want, counts[w])
		}
	}
	for i := writers; i < rows; i++ {
		if y[i] != 1 {
			t.Errorf("untouched row %d = %v after storm, want 1", i, y[i])
		}
	}

	// Whatever the journal went through — degradation included — the file
	// on disk must still parse: a fresh Open replays it without complaint
	// and reports nothing skipped.
	re, err := cache.Open(strings.TrimSuffix(st0.Path(), "/decisions.jsonl"))
	if err != nil {
		t.Fatalf("reopen journal after storm: %v", err)
	}
	defer re.Close()
	rs := re.Stats()
	if rs.Degraded {
		t.Errorf("fresh Open degraded after storm: %s", rs.DegradedReason)
	}
	if rs.Skipped != 0 {
		t.Errorf("journal has %d unparseable lines after storm", rs.Skipped)
	}
}
