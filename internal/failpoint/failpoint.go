// Package failpoint is a zero-cost-when-disabled fault-injection
// framework: named sites in the production code (exec dispatch, journal
// appends, journal compaction, MatrixMarket reads, update rebuilds) call
// Inject, which returns nil until a test or operator arms the site.
//
// The disabled fast path is one atomic bool load — no map probe, no
// allocation, no lock — so sites can sit on dispatch boundaries of hot
// code (never inside kernel inner loops) without measurable cost; the CI
// bench-smoke A/B gate pins that cost at or below 2%.
//
// Activation has two layers. The framework arms when the SPMV_FAILPOINTS
// environment variable is non-empty or a test calls SetEnabled(true);
// individual sites then fire according to their spec, set either
// programmatically (Enable) or parsed from the variable itself:
//
//	SPMV_FAILPOINTS="1"                          // framework armed, no sites
//	SPMV_FAILPOINTS="cache.append=error"         // fail every journal append
//	SPMV_FAILPOINTS="exec.worker=panic*1,cache.append=enospc%50"
//
// Each site spec is action[:arg][*count][%percent]:
//
//	error        return ErrInjected
//	enospc       return a wrapped syscall.ENOSPC
//	panic        panic with an *Injected value (exec containment converts
//	             lane panics into errors on the grant)
//	sleep:MS     sleep MS milliseconds, return nil (latency injection)
//	*N           fire at most N times, then the site disarms
//	%P           fire with probability P percent per evaluation
//
// Sites are identified by stable dotted names; the site table in
// docs/ARCHITECTURE.md ("The robustness layer") lists every name the
// codebase currently declares. The chaos suite drives random schedules of
// these specs under -race.
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// EnvFailpoints arms the framework (and optionally configures sites)
// without code changes.
const EnvFailpoints = "SPMV_FAILPOINTS"

// ErrInjected is the sentinel every injected error wraps; callers assert
// provenance with errors.Is.
var ErrInjected = errors.New("failpoint: injected fault")

// Injected is the concrete injected fault: the site that fired and the
// underlying error it simulates (ErrInjected itself for plain "error"
// actions, syscall.ENOSPC for "enospc", ...). Panic actions panic with an
// *Injected so recover sites can recognize synthetic faults.
type Injected struct {
	Site string
	Err  error
}

// Error implements error.
func (e *Injected) Error() string { return fmt.Sprintf("failpoint %s: %v", e.Site, e.Err) }

// Unwrap exposes the simulated underlying error to errors.Is/As chains.
func (e *Injected) Unwrap() error { return e.Err }

// action is what a site does when it fires.
type action int

const (
	actError action = iota
	actENOSPC
	actPanic
	actSleep
)

// site is one armed failpoint.
type site struct {
	act     action
	sleepMs int
	pct     int          // fire probability in percent; 0 or 100 = always
	left    atomic.Int64 // remaining firings; negative = unlimited
	fired   atomic.Uint64
}

var (
	// enabled is the framework master switch; the Inject fast path loads
	// only this.
	enabled atomic.Bool

	mu    sync.Mutex
	sites map[string]*site

	// rngMu guards rng; probability evaluation is far off any fast path.
	rngMu sync.Mutex
	rng   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func init() {
	if v := os.Getenv(EnvFailpoints); v != "" {
		enabled.Store(true)
		_ = Configure(v)
	}
}

// Enabled reports whether the framework is armed.
func Enabled() bool { return enabled.Load() }

// SetEnabled arms or disarms the framework (tests and chaos drivers);
// returns the previous state. Disarming leaves site specs in place but
// inert.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Configure parses an SPMV_FAILPOINTS-style spec list and arms each site
// in it. Values without '=' ("1", "on") arm the framework with no sites.
// Unparseable entries are reported, not fatal: fault injection must never
// take the process down by itself.
func Configure(spec string) error {
	var bad []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" || !strings.Contains(part, "=") {
			continue
		}
		name, sp, _ := strings.Cut(part, "=")
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(sp)); err != nil {
			bad = append(bad, part)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("failpoint: unparseable specs: %s", strings.Join(bad, ", "))
	}
	return nil
}

// Enable arms one site with the given action[:arg][*count][%percent] spec.
// Enabling does not flip the framework master switch; call SetEnabled (or
// set SPMV_FAILPOINTS) for sites to actually fire.
func Enable(name, spec string) error {
	if name == "" || spec == "" {
		return fmt.Errorf("failpoint: empty site or spec")
	}
	s := &site{pct: 100}
	s.left.Store(-1)
	rest := spec
	if i := strings.IndexByte(rest, '%'); i >= 0 {
		p, err := strconv.Atoi(rest[i+1:])
		if err != nil || p < 0 || p > 100 {
			return fmt.Errorf("failpoint: bad probability in %q", spec)
		}
		s.pct = p
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '*'); i >= 0 {
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil || n < 0 {
			return fmt.Errorf("failpoint: bad count in %q", spec)
		}
		s.left.Store(int64(n))
		rest = rest[:i]
	}
	act, arg, _ := strings.Cut(rest, ":")
	switch act {
	case "error":
		s.act = actError
	case "enospc":
		s.act = actENOSPC
	case "panic":
		s.act = actPanic
	case "sleep":
		s.act = actSleep
		ms, err := strconv.Atoi(arg)
		if err != nil || ms < 0 {
			return fmt.Errorf("failpoint: bad sleep duration in %q", spec)
		}
		s.sleepMs = ms
	default:
		return fmt.Errorf("failpoint: unknown action %q", act)
	}
	mu.Lock()
	if sites == nil {
		sites = make(map[string]*site)
	}
	sites[name] = s
	mu.Unlock()
	return nil
}

// Disable disarms one site.
func Disable(name string) {
	mu.Lock()
	delete(sites, name)
	mu.Unlock()
}

// DisableAll disarms every site (chaos rounds reset with it).
func DisableAll() {
	mu.Lock()
	sites = nil
	mu.Unlock()
}

// Fired returns how many times the named site has fired since it was
// armed (0 for unarmed sites).
func Fired(name string) uint64 {
	mu.Lock()
	s := sites[name]
	mu.Unlock()
	if s == nil {
		return 0
	}
	return s.fired.Load()
}

// List returns the currently armed site names, sorted.
func List() []string {
	mu.Lock()
	names := make([]string, 0, len(sites))
	for n := range sites {
		names = append(names, n)
	}
	mu.Unlock()
	sort.Strings(names)
	return names
}

// Inject evaluates the named site. With the framework disarmed (the
// overwhelmingly common case) it is one atomic load and returns nil.
// Armed sites return an injected error, panic, or sleep per their spec.
func Inject(name string) error {
	if !enabled.Load() {
		return nil
	}
	return inject(name)
}

// inject is the armed slow path, kept out of Inject so the fast path
// stays inlinable.
func inject(name string) error {
	mu.Lock()
	s := sites[name]
	mu.Unlock()
	if s == nil {
		return nil
	}
	if s.pct < 100 {
		rngMu.Lock()
		roll := rng.Intn(100)
		rngMu.Unlock()
		if roll >= s.pct {
			return nil
		}
	}
	// Consume one firing; a raced decrement below zero means another
	// evaluation took the last one.
	for {
		left := s.left.Load()
		if left == 0 {
			return nil
		}
		if left < 0 {
			break // unlimited
		}
		if s.left.CompareAndSwap(left, left-1) {
			break
		}
	}
	s.fired.Add(1)
	switch s.act {
	case actError:
		return &Injected{Site: name, Err: ErrInjected}
	case actENOSPC:
		return &Injected{Site: name, Err: fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)}
	case actPanic:
		panic(&Injected{Site: name, Err: ErrInjected})
	case actSleep:
		time.Sleep(time.Duration(s.sleepMs) * time.Millisecond)
	}
	return nil
}
