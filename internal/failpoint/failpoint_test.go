package failpoint

import (
	"errors"
	"syscall"
	"testing"
)

// arm flips the master switch for one test and restores it afterwards.
func arm(t *testing.T) {
	t.Helper()
	prev := SetEnabled(true)
	t.Cleanup(func() {
		SetEnabled(prev)
		DisableAll()
	})
}

func TestDisabledIsInert(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if err := Enable("x", "error"); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	defer DisableAll()
	if err := Inject("x"); err != nil {
		t.Fatalf("disarmed framework fired: %v", err)
	}
	if Fired("x") != 0 {
		t.Fatalf("disarmed site counted a firing")
	}
}

func TestErrorAction(t *testing.T) {
	arm(t)
	if err := Enable("a.b", "error"); err != nil {
		t.Fatal(err)
	}
	err := Inject("a.b")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	var inj *Injected
	if !errors.As(err, &inj) || inj.Site != "a.b" {
		t.Fatalf("want *Injected with site a.b, got %#v", err)
	}
	if Fired("a.b") != 1 {
		t.Fatalf("fired = %d, want 1", Fired("a.b"))
	}
	if err := Inject("other"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestENOSPCAction(t *testing.T) {
	arm(t)
	if err := Enable("disk", "enospc"); err != nil {
		t.Fatal(err)
	}
	err := Inject("disk")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC in chain, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected in chain, got %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	arm(t)
	if err := Enable("boom", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("panic action did not panic")
		}
		inj, ok := r.(*Injected)
		if !ok || inj.Site != "boom" {
			t.Fatalf("panic value = %#v, want *Injected{Site: boom}", r)
		}
	}()
	_ = Inject("boom")
}

func TestCountModifier(t *testing.T) {
	arm(t)
	if err := Enable("limited", "error*2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if Inject("limited") == nil {
			t.Fatalf("firing %d did not inject", i)
		}
	}
	if err := Inject("limited"); err != nil {
		t.Fatalf("exhausted site fired: %v", err)
	}
	if Fired("limited") != 2 {
		t.Fatalf("fired = %d, want 2", Fired("limited"))
	}
}

func TestProbabilityBounds(t *testing.T) {
	arm(t)
	if err := Enable("never", "error%0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if Inject("never") != nil {
			t.Fatalf("0%% site fired")
		}
	}
	if err := Enable("always", "error%100"); err != nil {
		t.Fatal(err)
	}
	if Inject("always") == nil {
		t.Fatalf("100%% site did not fire")
	}
}

func TestConfigure(t *testing.T) {
	arm(t)
	if err := Configure("s1=error, s2=enospc*3%50"); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	got := List()
	if len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Fatalf("List = %v", got)
	}
	// Bare arming values and empty entries parse silently.
	if err := Configure("1"); err != nil {
		t.Fatalf("bare value: %v", err)
	}
	if err := Configure("x=notanaction"); err == nil {
		t.Fatalf("bad action accepted")
	}
}

func TestEnableRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"", "sleep", "sleep:x", "error%200", "error*-1", "zap"} {
		if err := Enable("s", spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	DisableAll()
}

func BenchmarkInjectDisabled(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	for i := 0; i < b.N; i++ {
		if Inject("bench.site") != nil {
			b.Fatal("fired")
		}
	}
}
