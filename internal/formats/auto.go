package formats

// fusedMulti names the formats whose MultiplyMany is a fused register-tiled
// kernel (every loaded nonzero feeds k FMAs); the rest run the by-column
// fallback, one single-vector kernel call per right-hand side.
var fusedMulti = map[string]bool{
	"Naive-CSR": true, "Vec-CSR": true, "Bal-CSR": true, "MKL-IE": true,
	"Merge-CSR": true, "ELL": true, "HYB": true, "SELL-C-s": true,
	"BCSR": true, "DIA": true, "COO": true,
}

// FusedMulti reports whether the named format multiplies a k-wide block of
// right-hand sides in one fused pass over the matrix. Fused formats gain
// arithmetic intensity with k (the matrix stream is amortized over k
// vectors); fallback formats keep their single-vector rate, which is why
// the k = 1 and k > 1 regimes rank formats differently.
func FusedMulti(name string) bool { return fusedMulti[name] }

// AutoChoice records how the selection subsystem arrived at a format
// choice. It is attached to the Auto wrapper so callers (CLIs, benchmarks,
// tests) can see the decision, not just its result.
type AutoChoice struct {
	Format    string             // chosen format name
	Device    string             // device spec consulted for the ranking
	K         int                // RHS-count regime of the decision
	Shards    int                // engine shard layout at decision time
	Shortlist []string           // model ranking, best first
	Probed    bool               // a micro-probe timed the shortlist
	Cached    bool               // decision came from the decision cache
	Learned   bool               // the experience base steered the shortlist
	ProbeNs   map[string]float64 // measured ns/op per probed candidate
	// Tuned records the autotuned structural parameters applied to the
	// built instance (e.g. "bcsr.block" -> "4x4", "spmm.tile" -> "8").
	Tuned map[string]string
	// VecWideRowMin is the wide-row cutoff the row-length inspector set on
	// the instance (0: inspector not applicable / not run).
	VecWideRowMin int
}

// Auto is the storage format produced by the selection subsystem: a thin
// wrapper that delegates every kernel to the concrete format the selector
// chose, carrying the decision record alongside. Numerically, an Auto is
// bit-identical to its chosen format — only Name is overridden so reports
// show the choice was automatic.
type Auto struct {
	Format
	choice AutoChoice
}

// NewAuto wraps the chosen concrete format with its decision record.
func NewAuto(f Format, choice AutoChoice) *Auto {
	choice.Format = f.Name()
	return &Auto{Format: f, choice: choice}
}

// Name identifies the wrapper and the concrete choice, e.g. "Auto[CSR5]".
func (a *Auto) Name() string { return "Auto[" + a.Format.Name() + "]" }

// Chosen returns the chosen concrete format's name.
func (a *Auto) Chosen() string { return a.Format.Name() }

// Choice returns the full decision record.
func (a *Auto) Choice() AutoChoice { return a.choice }

// Unwrap returns the chosen concrete format.
func (a *Auto) Unwrap() Format { return a.Format }
