package formats

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
)

func autoTestMatrix(t *testing.T) *matrix.CSR {
	t.Helper()
	m, err := gen.Generate(gen.Params{
		Rows: 3000, Cols: 3000,
		AvgNNZPerRow: 12, StdNNZPerRow: 4,
		SkewCoeff: 8, BWScaled: 0.4, CrossRowSim: 0.5, AvgNumNeigh: 0.9,
		Seed: 99,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return m
}

// TestAutoWrapperEquivalence verifies the Auto wrapper is numerically
// transparent for every registry format: wrapping adds a name and a
// decision record, nothing else — SpMV, SpMVParallel and MultiplyMany
// must be bit-identical to a separately built concrete instance.
func TestAutoWrapperEquivalence(t *testing.T) {
	m := autoTestMatrix(t)
	for _, b := range Registry() {
		inner, err := b.Build(m)
		if err != nil {
			continue // e.g. DIA refuses scattered sparsity
		}
		direct, err := b.Build(m)
		if err != nil {
			t.Fatalf("%s: second build failed: %v", b.Name, err)
		}
		a := NewAuto(inner, AutoChoice{K: 1, Device: "test"})
		if a.Chosen() != b.Name {
			t.Fatalf("Chosen() = %q, want %q", a.Chosen(), b.Name)
		}
		if want := "Auto[" + b.Name + "]"; a.Name() != want {
			t.Fatalf("Name() = %q, want %q", a.Name(), want)
		}
		if a.Unwrap() != inner {
			t.Fatalf("%s: Unwrap returned a different instance", b.Name)
		}
		x := matrix.RandomVector(m.Cols, 5)
		yA := make([]float64, m.Rows)
		yD := make([]float64, m.Rows)
		a.SpMV(x, yA)
		direct.SpMV(x, yD)
		for i := range yA {
			if yA[i] != yD[i] {
				t.Fatalf("%s: serial SpMV diverges at row %d", b.Name, i)
			}
		}
		a.SpMVParallel(x, yA, 4)
		direct.SpMVParallel(x, yD, 4)
		for i := range yA {
			if yA[i] != yD[i] {
				t.Fatalf("%s: parallel SpMV diverges at row %d", b.Name, i)
			}
		}
		for _, k := range []int{1, 4, 8} {
			xk := matrix.RandomVector(m.Cols*k, 7)
			ykA := make([]float64, m.Rows*k)
			ykD := make([]float64, m.Rows*k)
			a.MultiplyMany(ykA, xk, k)
			direct.MultiplyMany(ykD, xk, k)
			for i := range ykA {
				if ykA[i] != ykD[i] {
					t.Fatalf("%s k=%d: MultiplyMany diverges at %d", b.Name, k, i)
				}
			}
		}
	}
}

func TestFusedMultiMatchesKernels(t *testing.T) {
	// The fused set must cover exactly the formats whose MultiplyMany is
	// not the by-column fallback (see multi.go); drift here would skew the
	// k-regime device model.
	fused := []string{"Naive-CSR", "Vec-CSR", "Bal-CSR", "MKL-IE", "Merge-CSR",
		"ELL", "HYB", "SELL-C-s", "BCSR", "DIA", "COO"}
	fallback := []string{"CSR5", "SparseX", "VSL"}
	for _, n := range fused {
		if !FusedMulti(n) {
			t.Errorf("FusedMulti(%q) = false, want true", n)
		}
	}
	for _, n := range fallback {
		if FusedMulti(n) {
			t.Errorf("FusedMulti(%q) = true, want false", n)
		}
	}
	if len(fused)+len(fallback) != len(Registry()) {
		t.Errorf("fused+fallback = %d formats, registry has %d", len(fused)+len(fallback), len(Registry()))
	}
}

// TestMultiTraitsContract pins the k-aware trait presentation: identical to
// EstimateTraits at k = 1 and for every format without slab striding; the
// fused slab formats (ELL, SELL-C-s, HYB) diverge at k > 1 per the
// padding-skip and line-waste model in multitraits.go.
func TestMultiTraitsContract(t *testing.T) {
	m := autoTestMatrix(t)
	fv := core.Extract(m)
	slab := map[string]bool{"ELL": true, "SELL-C-s": true, "HYB": true}
	for _, b := range Registry() {
		for _, k := range []int{1, 8} {
			tr, fused := MultiTraits(b.Name, fv, k)
			if fused != FusedMulti(b.Name) {
				t.Errorf("%s: fused flag mismatch", b.Name)
			}
			if k == 1 || !slab[b.Name] {
				if tr != EstimateTraits(b.Name, fv) {
					t.Errorf("%s k=%d: MultiTraits must match EstimateTraits", b.Name, k)
				}
			}
		}
	}
	// Padding skip: the fused ELL and HYB kernels never touch tail padding.
	for _, name := range []string{"ELL", "HYB"} {
		tr, _ := MultiTraits(name, fv, 8)
		if tr.PaddingRatio != 0 {
			t.Errorf("%s k=8: padding %g, want 0 (rowLen table skips it)", name, tr.PaddingRatio)
		}
		if tr.MetaBytesPerNNZ <= 0 {
			t.Errorf("%s k=8: non-positive meta %g", name, tr.MetaBytesPerNNZ)
		}
	}
}
