package formats

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// BCSR is blocked CSR with fixed br x bc dense blocks (an extension from
// the paper's related work: register-blocking formats like those in
// SPARSITY/OSKI). Nonzeros are gathered into aligned dense blocks; blocks
// store no per-element indices, trading zero fill for metadata compression
// and unrollable inner loops.
type BCSR struct {
	rows, cols int
	br, bc     int
	nnz        int64
	blockRows  int
	rowPtr     []int32   // per block row, into blkCol
	blkCol     []int32   // block-column index per block
	val        []float64 // br*bc per block
	plans      exec.PlanCache
}

// MaxBCSRFillRatio bounds the zero fill: construction fails when the blocked
// image exceeds this multiple of the nonzero count.
const MaxBCSRFillRatio = 8.0

// NewBCSR builds blocked CSR with br x bc blocks aligned to the block grid.
func NewBCSR(m *matrix.CSR, br, bc int) (*BCSR, error) {
	if br < 1 || bc < 1 {
		return nil, fmt.Errorf("%w BCSR: block %dx%d", ErrBuild, br, bc)
	}
	blockRows := (m.Rows + br - 1) / br
	f := &BCSR{
		rows: m.Rows, cols: m.Cols, br: br, bc: bc, nnz: int64(m.NNZ()), blockRows: blockRows,
		plans: exec.NewPlanCache(),
	}
	f.rowPtr = make([]int32, blockRows+1)

	// Two passes: count distinct block columns per block row, then fill.
	blockOf := make(map[int32]int) // block column -> block index in current block row
	var totalBlocks int64
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			if m.NNZ() > 0 {
				fill := float64(totalBlocks*int64(br*bc)) / float64(m.NNZ())
				if fill > MaxBCSRFillRatio {
					return nil, fmt.Errorf("%w BCSR: fill ratio %.1f exceeds %.0f", ErrBuild, fill, MaxBCSRFillRatio)
				}
			}
			f.blkCol = make([]int32, totalBlocks)
			f.val = make([]float64, totalBlocks*int64(br*bc))
		}
		at := int32(0)
		for bi := 0; bi < blockRows; bi++ {
			clear(blockOf)
			for r := bi * br; r < (bi+1)*br && r < m.Rows; r++ {
				cols, vals := m.Row(r)
				for k, c := range cols {
					bj := c / int32(bc)
					idx, ok := blockOf[bj]
					if !ok {
						idx = int(at) + len(blockOf)
						blockOf[bj] = idx
						if pass == 1 {
							f.blkCol[idx] = bj
						}
					}
					if pass == 1 {
						inR := r - bi*br
						inC := int(c) - int(bj)*bc
						f.val[idx*br*bc+inR*bc+inC] = vals[k]
					}
				}
			}
			at += int32(len(blockOf))
			if pass == 0 {
				totalBlocks = int64(at)
			}
			if pass == 1 {
				f.rowPtr[bi+1] = at
			}
		}
	}
	// Block columns within a block row are in first-seen order, which is
	// sorted because CSR rows are sorted and rows are visited in order only
	// per row; normalize by sorting each block row's blocks.
	for bi := 0; bi < blockRows; bi++ {
		lo, hi := f.rowPtr[bi], f.rowPtr[bi+1]
		sortBlocks(f.blkCol[lo:hi], f.val[int(lo)*br*bc:int(hi)*br*bc], br*bc)
	}
	return f, nil
}

// sortBlocks sorts block columns ascending, moving the block value slabs of
// size blk alongside (insertion sort; block rows hold few blocks).
func sortBlocks(cols []int32, vals []float64, blk int) {
	tmp := make([]float64, blk)
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
			a := vals[j*blk : (j+1)*blk]
			b := vals[(j-1)*blk : j*blk]
			copy(tmp, a)
			copy(a, b)
			copy(b, tmp)
		}
	}
}

// Name implements Format.
func (f *BCSR) Name() string { return "BCSR" }

// Rows implements Format.
func (f *BCSR) Rows() int { return f.rows }

// Cols implements Format.
func (f *BCSR) Cols() int { return f.cols }

// NNZ implements Format.
func (f *BCSR) NNZ() int64 { return f.nnz }

// Bytes implements Format.
func (f *BCSR) Bytes() int64 {
	return int64(len(f.val))*8 + int64(len(f.blkCol))*4 + int64(len(f.rowPtr))*4
}

// Blocks returns the stored block count.
func (f *BCSR) Blocks() int { return len(f.blkCol) }

// Traits implements Format.
func (f *BCSR) Traits() Traits {
	pad := 0.0
	if f.nnz > 0 {
		pad = float64(int64(len(f.val))-f.nnz) / float64(f.nnz)
	}
	meta := 4.0
	if f.nnz > 0 {
		meta = float64(f.Bytes()-8*f.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: RowGranular, PaddingRatio: pad, MetaBytesPerNNZ: meta,
		Vectorizable: true, Preprocessed: true}
}

// maxStackBlockRows bounds the block heights served by the stack-resident
// row accumulators; taller blocks fall back to a heap buffer.
const maxStackBlockRows = 16

func (f *BCSR) blockRowRange(x, y []float64, lo, hi int) {
	if f.br == 2 && f.bc == 2 {
		f.blockRowRange2x2(x, y, lo, hi)
		return
	}
	br, bc := f.br, f.bc
	var sumsBuf [maxStackBlockRows]float64
	var sums []float64
	if br <= maxStackBlockRows {
		sums = sumsBuf[:br]
	} else {
		sums = make([]float64, br)
	}
	rowPtr, blkCol, val := f.rowPtr, f.blkCol, f.val
	blk := br * bc
	for bi := lo; bi < hi; bi++ {
		for r := range sums {
			sums[r] = 0
		}
		for b := int(rowPtr[bi]); b < int(rowPtr[bi+1]); b++ {
			baseCol := int(blkCol[b]) * bc
			off := b * blk
			if baseCol+bc <= f.cols {
				// Interior block: the whole x window is in range, no
				// per-element edge check.
				for r := 0; r < br; r++ {
					s := 0.0
					ro := off + r*bc
					for c := 0; c < bc; c++ {
						s += val[ro+c] * x[baseCol+c]
					}
					sums[r] += s
				}
				continue
			}
			for r := 0; r < br; r++ {
				s := 0.0
				for c := 0; c < bc; c++ {
					col := baseCol + c
					if col < f.cols {
						s += val[off+r*bc+c] * x[col]
					}
				}
				sums[r] += s
			}
		}
		for r := 0; r < br; r++ {
			row := bi*br + r
			if row < f.rows {
				y[row] = sums[r]
			}
		}
	}
}

// blockRowRange2x2 is the register-blocked micro-kernel for the default
// 2x2 geometry: both row sums live in registers, both x values load once
// per block, and only the matrix-edge block pays a column check.
func (f *BCSR) blockRowRange2x2(x, y []float64, lo, hi int) {
	rowPtr, blkCol, val := f.rowPtr, f.blkCol, f.val
	cols := f.cols
	for bi := lo; bi < hi; bi++ {
		var s0, s1 float64
		for b := int(rowPtr[bi]); b < int(rowPtr[bi+1]); b++ {
			baseCol := int(blkCol[b]) * 2
			off := b * 4
			if baseCol+2 <= cols {
				x0, x1 := x[baseCol], x[baseCol+1]
				s0 += val[off]*x0 + val[off+1]*x1
				s1 += val[off+2]*x0 + val[off+3]*x1
			} else {
				x0 := x[baseCol]
				s0 += val[off] * x0
				s1 += val[off+2] * x0
			}
		}
		row := bi * 2
		if row < f.rows {
			y[row] = s0
		}
		if row+1 < f.rows {
			y[row+1] = s1
		}
	}
}

// SpMV implements Format.
func (f *BCSR) SpMV(x, y []float64) {
	checkShape("BCSR", f.rows, f.cols, x, y)
	f.blockRowRange(x, y, 0, f.blockRows)
}

// SpMVParallel implements Format over nnz-balanced block rows.
func (f *BCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape("BCSR", f.rows, f.cols, x, y)
	workers = exec.Workers(f.nnz+int64(f.blockRows), workers)
	if workers <= 1 {
		f.blockRowRange(x, y, 0, f.blockRows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		return &exec.Plan{Ranges: sched.DomainSplit(f.rowPtr, k.Domains, k.Workers, sched.NNZBalanced)}
	})
	ranges := pl.Ranges
	g.Run(len(ranges), func(w int) {
		f.blockRowRange(x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}
