package formats

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/simd"
)

// BCSR is blocked CSR with fixed br x bc dense blocks (an extension from
// the paper's related work: register-blocking formats like those in
// SPARSITY/OSKI). Nonzeros are gathered into aligned dense blocks; blocks
// store no per-element indices, trading zero fill for metadata compression
// and unrollable inner loops.
type BCSR struct {
	rows, cols int
	br, bc     int
	nnz        int64
	blockRows  int
	rowPtr     []int32   // per block row, into blkCol
	blkCol     []int32   // block-column index per block
	val        []float64 // br*bc per block
	plans      exec.PlanCache
	// noWideTiles disables the 8-vector SpMM register tile (see CSR).
	noWideTiles bool
}

// SetWideTiles toggles the 8-vector SpMM register tile (WideTiler).
func (f *BCSR) SetWideTiles(on bool) { f.noWideTiles = !on }

// MaxBCSRFillRatio bounds the zero fill: construction fails when the blocked
// image exceeds this multiple of the nonzero count.
const MaxBCSRFillRatio = 8.0

// NewBCSR builds blocked CSR with br x bc blocks aligned to the block grid.
func NewBCSR(m *matrix.CSR, br, bc int) (*BCSR, error) {
	if br < 1 || bc < 1 {
		return nil, fmt.Errorf("%w BCSR: block %dx%d", ErrBuild, br, bc)
	}
	blockRows := (m.Rows + br - 1) / br
	f := &BCSR{
		rows: m.Rows, cols: m.Cols, br: br, bc: bc, nnz: int64(m.NNZ()), blockRows: blockRows,
		plans: exec.NewPlanCache(),
	}
	f.rowPtr = make([]int32, blockRows+1)

	// Two passes: count distinct block columns per block row, then fill.
	blockOf := make(map[int32]int) // block column -> block index in current block row
	var totalBlocks int64
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			if m.NNZ() > 0 {
				fill := float64(totalBlocks*int64(br*bc)) / float64(m.NNZ())
				if fill > MaxBCSRFillRatio {
					return nil, fmt.Errorf("%w BCSR: fill ratio %.1f exceeds %.0f", ErrBuild, fill, MaxBCSRFillRatio)
				}
			}
			f.blkCol = make([]int32, totalBlocks)
			f.val = make([]float64, totalBlocks*int64(br*bc))
		}
		at := int32(0)
		for bi := 0; bi < blockRows; bi++ {
			clear(blockOf)
			for r := bi * br; r < (bi+1)*br && r < m.Rows; r++ {
				cols, vals := m.Row(r)
				for k, c := range cols {
					bj := c / int32(bc)
					idx, ok := blockOf[bj]
					if !ok {
						idx = int(at) + len(blockOf)
						blockOf[bj] = idx
						if pass == 1 {
							f.blkCol[idx] = bj
						}
					}
					if pass == 1 {
						inR := r - bi*br
						inC := int(c) - int(bj)*bc
						f.val[idx*br*bc+inR*bc+inC] = vals[k]
					}
				}
			}
			at += int32(len(blockOf))
			if pass == 0 {
				totalBlocks = int64(at)
			}
			if pass == 1 {
				f.rowPtr[bi+1] = at
			}
		}
	}
	// Block columns within a block row are in first-seen order, which is
	// sorted because CSR rows are sorted and rows are visited in order only
	// per row; normalize by sorting each block row's blocks.
	for bi := 0; bi < blockRows; bi++ {
		lo, hi := f.rowPtr[bi], f.rowPtr[bi+1]
		sortBlocks(f.blkCol[lo:hi], f.val[int(lo)*br*bc:int(hi)*br*bc], br*bc)
	}
	return f, nil
}

// sortBlocks sorts block columns ascending, moving the block value slabs of
// size blk alongside (insertion sort; block rows hold few blocks).
func sortBlocks(cols []int32, vals []float64, blk int) {
	tmp := make([]float64, blk)
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
			a := vals[j*blk : (j+1)*blk]
			b := vals[(j-1)*blk : j*blk]
			copy(tmp, a)
			copy(a, b)
			copy(b, tmp)
		}
	}
}

// Name implements Format.
func (f *BCSR) Name() string { return "BCSR" }

// Rows implements Format.
func (f *BCSR) Rows() int { return f.rows }

// Cols implements Format.
func (f *BCSR) Cols() int { return f.cols }

// NNZ implements Format.
func (f *BCSR) NNZ() int64 { return f.nnz }

// Bytes implements Format.
func (f *BCSR) Bytes() int64 {
	return int64(len(f.val))*8 + int64(len(f.blkCol))*4 + int64(len(f.rowPtr))*4
}

// Blocks returns the stored block count.
func (f *BCSR) Blocks() int { return len(f.blkCol) }

// Traits implements Format.
func (f *BCSR) Traits() Traits {
	pad := 0.0
	if f.nnz > 0 {
		pad = float64(int64(len(f.val))-f.nnz) / float64(f.nnz)
	}
	meta := 4.0
	if f.nnz > 0 {
		meta = float64(f.Bytes()-8*f.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: RowGranular, PaddingRatio: pad, MetaBytesPerNNZ: meta,
		Vectorizable: true, Preprocessed: true}
}

// maxStackBlockRows bounds the block heights served by the stack-resident
// row accumulators; taller blocks fall back to a heap buffer.
const maxStackBlockRows = 16

func (f *BCSR) blockRowRange(x, y []float64, lo, hi int) {
	if f.br == 2 && f.bc == 2 {
		f.blockRowRange2x2(x, y, lo, hi)
		return
	}
	br, bc := f.br, f.bc
	var sumsBuf [maxStackBlockRows]float64
	var sums []float64
	if br <= maxStackBlockRows {
		sums = sumsBuf[:br]
	} else {
		sums = make([]float64, br)
	}
	rowPtr, blkCol, val := f.rowPtr, f.blkCol, f.val
	blk := br * bc
	for bi := lo; bi < hi; bi++ {
		for r := range sums {
			sums[r] = 0
		}
		for b := int(rowPtr[bi]); b < int(rowPtr[bi+1]); b++ {
			baseCol := int(blkCol[b]) * bc
			off := b * blk
			if baseCol+bc <= f.cols {
				// Interior block: the whole x window is in range, no
				// per-element edge check.
				for r := 0; r < br; r++ {
					s := 0.0
					ro := off + r*bc
					for c := 0; c < bc; c++ {
						s += val[ro+c] * x[baseCol+c]
					}
					sums[r] += s
				}
				continue
			}
			for r := 0; r < br; r++ {
				s := 0.0
				for c := 0; c < bc; c++ {
					col := baseCol + c
					if col < f.cols {
						s += val[off+r*bc+c] * x[col]
					}
				}
				sums[r] += s
			}
		}
		for r := 0; r < br; r++ {
			row := bi*br + r
			if row < f.rows {
				y[row] = sums[r]
			}
		}
	}
}

// blockRowRange2x2 is the register-blocked micro-kernel for the default
// 2x2 geometry: both row sums live in registers, both x values load once
// per block, and only the matrix-edge block pays a column check.
func (f *BCSR) blockRowRange2x2(x, y []float64, lo, hi int) {
	rowPtr, blkCol, val := f.rowPtr, f.blkCol, f.val
	cols := f.cols
	useSIMD := simd.Enabled()
	for bi := lo; bi < hi; bi++ {
		var s0, s1 float64
		b := int(rowPtr[bi])
		bEnd := int(rowPtr[bi+1])
		if useSIMD {
			// Dispatched path over the interior blocks. Block columns are
			// sorted ascending, so a matrix-edge block (x window past cols)
			// can only be the last one; it stays on the scalar loop below.
			nb := bEnd - b
			if nb > 0 && int(blkCol[bEnd-1])*2+2 > cols {
				nb--
			}
			if nb >= simdMinN {
				s0, s1 = simd.Bcsr2x2(val[b*4:], blkCol[b:], x, nb)
				b += nb
			}
		}
		for ; b < bEnd; b++ {
			baseCol := int(blkCol[b]) * 2
			off := b * 4
			if baseCol+2 <= cols {
				x0, x1 := x[baseCol], x[baseCol+1]
				s0 += val[off]*x0 + val[off+1]*x1
				s1 += val[off+2]*x0 + val[off+3]*x1
			} else {
				x0 := x[baseCol]
				s0 += val[off] * x0
				s1 += val[off+2] * x0
			}
		}
		row := bi * 2
		if row < f.rows {
			y[row] = s0
		}
		if row+1 < f.rows {
			y[row+1] = s1
		}
	}
}

// blockRowRangeMulti2x2 is the fused register-blocked micro-kernel for the
// default 2x2 geometry: per 4-vector tile both rows' partial sums live in
// eight registers, and each block's four values load once to feed sixteen
// FMAs.
func (f *BCSR) blockRowRangeMulti2x2(x, y []float64, k, lo, hi int) {
	rowPtr, blkCol, val := f.rowPtr, f.blkCol, f.val
	cols := f.cols
	useSIMD := simd.Enabled()
	wide := !f.noWideTiles && useSIMD && simd.Width() >= 8
	for bi := lo; bi < hi; bi++ {
		row := bi * 2
		bLo, bEnd := int(rowPtr[bi]), int(rowPtr[bi+1])
		// As in the single-vector kernel, only the last (sorted) block of a
		// block row can overhang the matrix edge; the dispatched tile kernel
		// covers the interior prefix and the scalar loop finishes the edge.
		nInterior := bEnd - bLo
		if useSIMD && nInterior > 0 && int(blkCol[bEnd-1])*2+2 > cols {
			nInterior--
		}
		t := 0
		if wide && nInterior >= simdMinN {
			// Wide tile: the dispatched kernel covers the interior prefix,
			// the (at most one) edge block finishes in Go with the same
			// per-lane pair-sum order — bit-identical throughout.
			for ; t+multiTile8 <= k; t += multiTile8 {
				lo8, hi8 := simd.Bcsr2x2Tile8(val[bLo*4:], blkCol[bLo:], x[t:], nInterior, k)
				for b := bLo + nInterior; b < bEnd; b++ {
					baseCol := int(blkCol[b]) * 2
					off := b * 4
					v0, v1, v2, v3 := val[off], val[off+1], val[off+2], val[off+3]
					x0 := x[baseCol*k+t : baseCol*k+t+8 : baseCol*k+t+8]
					if baseCol+2 <= cols {
						x1 := x[(baseCol+1)*k+t : (baseCol+1)*k+t+8 : (baseCol+1)*k+t+8]
						for u := 0; u < 8; u++ {
							lo8[u] += v0*x0[u] + v1*x1[u]
							hi8[u] += v2*x0[u] + v3*x1[u]
						}
					} else {
						for u := 0; u < 8; u++ {
							lo8[u] += v0 * x0[u]
							hi8[u] += v2 * x0[u]
						}
					}
				}
				if row < f.rows {
					copy(y[row*k+t:row*k+t+8], lo8[:])
				}
				if row+1 < f.rows {
					copy(y[(row+1)*k+t:(row+1)*k+t+8], hi8[:])
				}
			}
		}
		for ; t+multiTile <= k; t += multiTile {
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			bStart := bLo
			if useSIMD && nInterior >= simdMinN {
				dLo, dHi := simd.Bcsr2x2Tile(val[bLo*4:], blkCol[bLo:], x[t:], nInterior, k)
				s00, s01, s02, s03 = dLo[0], dLo[1], dLo[2], dLo[3]
				s10, s11, s12, s13 = dHi[0], dHi[1], dHi[2], dHi[3]
				bStart = bLo + nInterior
			}
			for b := bStart; b < bEnd; b++ {
				baseCol := int(blkCol[b]) * 2
				off := b * 4
				v0, v1, v2, v3 := val[off], val[off+1], val[off+2], val[off+3]
				x0 := x[baseCol*k+t : baseCol*k+t+4 : baseCol*k+t+4]
				if baseCol+2 <= cols {
					x1 := x[(baseCol+1)*k+t : (baseCol+1)*k+t+4 : (baseCol+1)*k+t+4]
					s00 += v0*x0[0] + v1*x1[0]
					s01 += v0*x0[1] + v1*x1[1]
					s02 += v0*x0[2] + v1*x1[2]
					s03 += v0*x0[3] + v1*x1[3]
					s10 += v2*x0[0] + v3*x1[0]
					s11 += v2*x0[1] + v3*x1[1]
					s12 += v2*x0[2] + v3*x1[2]
					s13 += v2*x0[3] + v3*x1[3]
				} else {
					s00 += v0 * x0[0]
					s01 += v0 * x0[1]
					s02 += v0 * x0[2]
					s03 += v0 * x0[3]
					s10 += v2 * x0[0]
					s11 += v2 * x0[1]
					s12 += v2 * x0[2]
					s13 += v2 * x0[3]
				}
			}
			if row < f.rows {
				yb := y[row*k+t : row*k+t+4 : row*k+t+4]
				yb[0], yb[1], yb[2], yb[3] = s00, s01, s02, s03
			}
			if row+1 < f.rows {
				yb := y[(row+1)*k+t : (row+1)*k+t+4 : (row+1)*k+t+4]
				yb[0], yb[1], yb[2], yb[3] = s10, s11, s12, s13
			}
		}
		for ; t < k; t++ {
			var s0, s1 float64
			for b := int(rowPtr[bi]); b < int(rowPtr[bi+1]); b++ {
				baseCol := int(blkCol[b]) * 2
				off := b * 4
				x0 := x[baseCol*k+t]
				s0 += val[off] * x0
				s1 += val[off+2] * x0
				if baseCol+2 <= cols {
					x1 := x[(baseCol+1)*k+t]
					s0 += val[off+1] * x1
					s1 += val[off+3] * x1
				}
			}
			if row < f.rows {
				y[row*k+t] = s0
			}
			if row+1 < f.rows {
				y[(row+1)*k+t] = s1
			}
		}
	}
}

// blockRowRangeMulti is the fused generic-geometry kernel: per block row
// and 4-vector tile the row accumulators live in a small buffer while each
// block's values load once per tile.
func (f *BCSR) blockRowRangeMulti(x, y []float64, k, lo, hi int) {
	if f.br == 2 && f.bc == 2 {
		f.blockRowRangeMulti2x2(x, y, k, lo, hi)
		return
	}
	br, bc := f.br, f.bc
	var sumsBuf [multiTile * maxStackBlockRows]float64
	var sums []float64
	if br <= maxStackBlockRows {
		sums = sumsBuf[:br*multiTile]
	} else {
		sums = make([]float64, br*multiTile)
	}
	rowPtr, blkCol, val := f.rowPtr, f.blkCol, f.val
	blk := br * bc
	for bi := lo; bi < hi; bi++ {
		for t := 0; t < k; t += multiTile {
			tw := k - t
			if tw > multiTile {
				tw = multiTile
			}
			for i := range sums {
				sums[i] = 0
			}
			for b := int(rowPtr[bi]); b < int(rowPtr[bi+1]); b++ {
				baseCol := int(blkCol[b]) * bc
				off := b * blk
				for cc := 0; cc < bc; cc++ {
					col := baseCol + cc
					if col >= f.cols {
						break // edge block: remaining columns out of range
					}
					xb := x[col*k+t : col*k+t+tw : col*k+t+tw]
					for r := 0; r < br; r++ {
						v := val[off+r*bc+cc]
						sb := sums[r*multiTile : r*multiTile+tw : r*multiTile+tw]
						for q, xq := range xb {
							sb[q] += v * xq
						}
					}
				}
			}
			for r := 0; r < br; r++ {
				row := bi*br + r
				if row >= f.rows {
					break
				}
				copy(y[row*k+t:row*k+t+tw], sums[r*multiTile:r*multiTile+tw])
			}
		}
	}
}

// SpMV implements Format.
func (f *BCSR) SpMV(x, y []float64) {
	checkShape("BCSR", f.rows, f.cols, x, y)
	f.blockRowRange(x, y, 0, f.blockRows)
}

// blockRowPlan builds (or fetches) the nnz-balanced block-row partition
// for the grant's placement, shared by the single- and multi-vector
// dispatches. Ranges partition block-row indices.
func (f *BCSR) blockRowPlan(g *exec.Grant) *exec.Plan {
	return f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		ranges, off := sched.DomainSplitOff(f.rowPtr, k.Domains, k.Workers, sched.NNZBalanced)
		return &exec.Plan{Ranges: ranges, DomainOff: off}
	})
}

// SpMVParallel implements Format over nnz-balanced block rows.
func (f *BCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape("BCSR", f.rows, f.cols, x, y)
	workers = exec.Workers(f.nnz+int64(f.blockRows), workers)
	if workers <= 1 {
		f.blockRowRange(x, y, 0, f.blockRows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.blockRowPlan(&g)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.blockRowRange(x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// MultiplyMany implements Format with the fused block kernel over the same
// block-row partition SpMVParallel uses.
func (f *BCSR) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti("BCSR", f.rows, f.cols, y, x, k)
	workers := exec.Workers((f.nnz+int64(f.blockRows))*int64(k), exec.MaxWorkers())
	if workers <= 1 {
		f.blockRowRangeMulti(x, y, k, 0, f.blockRows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.blockRowPlan(&g)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.blockRowRangeMulti(x, y, k, ranges[w].RowLo, ranges[w].RowHi)
	})
}
