package formats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// Boundary-condition tests for the parallel kernels' carry logic: rows
// spanning two or more workers, chunk boundaries landing exactly on row
// starts, and empty-row runs at partition edges.

// giantRowMatrix has one row holding frac of all nonzeros, forcing
// worker-boundary splits inside that row for item-granular kernels.
func giantRowMatrix(rows, giantLen int, seed int64) *matrix.CSR {
	sizes := make([]int, rows)
	for i := range sizes {
		sizes[i] = 2
	}
	sizes[rows/3] = giantLen
	return matrix.RandomRowSizes(rows, giantLen*2, sizes, seed)
}

func TestMergeCSRGiantRowAcrossManyWorkers(t *testing.T) {
	m := giantRowMatrix(64, 5000, 31)
	f := NewMergeCSR(m)
	x := matrix.RandomVector(m.Cols, 32)
	want := make([]float64, m.Rows)
	m.SpMV(x, want)
	for _, workers := range []int{2, 5, 16, 63} {
		got := make([]float64, m.Rows)
		f.SpMVParallel(x, got, workers)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("workers=%d: diff %g", workers, d)
		}
	}
}

func TestCSR5GiantRowAcrossManyWorkers(t *testing.T) {
	m := giantRowMatrix(64, 5000, 33)
	f, err := NewCSR5(m)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.RandomVector(m.Cols, 34)
	want := make([]float64, m.Rows)
	m.SpMV(x, want)
	for _, workers := range []int{2, 5, 16, 64} {
		got := make([]float64, m.Rows)
		f.SpMVParallel(x, got, workers)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("workers=%d: diff %g", workers, d)
		}
	}
}

func TestCOOGiantRowAcrossManyWorkers(t *testing.T) {
	m := giantRowMatrix(64, 5000, 35)
	f := NewCOO(m)
	x := matrix.RandomVector(m.Cols, 36)
	want := make([]float64, m.Rows)
	m.SpMV(x, want)
	for _, workers := range []int{2, 7, 32} {
		got := make([]float64, m.Rows)
		f.SpMVParallel(x, got, workers)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("workers=%d: diff %g", workers, d)
		}
	}
}

func TestCSR5TileBoundaryAlignment(t *testing.T) {
	// Matrices whose nnz is exactly, one less and one more than a multiple
	// of the tile size exercise the padding lanes of the last tile.
	for _, nnz := range []int{tileN - 1, tileN, tileN + 1, 3*tileN - 1, 3 * tileN} {
		sizes := make([]int, nnz) // one nonzero per row keeps counts exact
		for i := range sizes {
			sizes[i] = 1
		}
		m := matrix.RandomRowSizes(nnz, 64, sizes, int64(nnz))
		f, err := NewCSR5(m)
		if err != nil {
			t.Fatal(err)
		}
		x := matrix.RandomVector(m.Cols, 40)
		want := make([]float64, m.Rows)
		got := make([]float64, m.Rows)
		m.SpMV(x, want)
		f.SpMV(x, got)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("nnz=%d: serial diff %g", nnz, d)
		}
		f.SpMVParallel(x, got, 3)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("nnz=%d: parallel diff %g", nnz, d)
		}
	}
}

func TestCSR5EmptyRowRuns(t *testing.T) {
	// Long runs of empty rows between populated ones stress the segment
	// table (empty rows own no segment).
	o := matrix.NewCOO(500, 500, 0)
	for _, r := range []int32{0, 99, 100, 101, 499} {
		for c := int32(0); c < 30; c++ {
			o.Append(r, (c*17+r)%500, float64(r+1))
		}
	}
	m := o.ToCSR()
	f, err := NewCSR5(m)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.RandomVector(500, 41)
	want := make([]float64, 500)
	got := make([]float64, 500)
	m.SpMV(x, want)
	for _, workers := range []int{1, 2, 3} {
		f.SpMVParallel(x, got, workers)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("workers=%d: diff %g", workers, d)
		}
	}
}

func TestSELLCSLastChunkPartial(t *testing.T) {
	// Row counts that are not multiples of the chunk size leave a partial
	// final chunk whose missing lanes must stay silent.
	for _, rows := range []int{1, 7, 8, 9, 17} {
		m := matrix.Random(rows, 50, 0.3, int64(rows)+50)
		f, err := NewSELLCS(m, 8, 16)
		if err != nil {
			t.Fatal(err)
		}
		x := matrix.RandomVector(50, 42)
		want := make([]float64, rows)
		got := make([]float64, rows)
		m.SpMV(x, want)
		f.SpMV(x, got)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("rows=%d: diff %g", rows, d)
		}
	}
}

func TestSELLCSPermutationIsBijective(t *testing.T) {
	m := matrix.RandomRowSizes(100, 200, skewedSizes(100, 50), 43)
	f, err := NewSELLCS(m, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, m.Rows)
	for _, p := range f.perm {
		if seen[p] {
			t.Fatalf("row %d appears twice in the permutation", p)
		}
		seen[p] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("row %d missing from the permutation", i)
		}
	}
}

func TestVSLPartitionPaddingGrowsWithSpread(t *testing.T) {
	// A matrix with one dense column inside each partition forces every
	// other column in that partition to pad to its length.
	o := matrix.NewCOO(256, 256, 0)
	for r := int32(0); r < 256; r++ {
		o.Append(r, 0, 1) // column 0 is dense
	}
	for r := int32(0); r < 16; r++ {
		o.Append(r, 100, 1) // a companion column concentrated in one block
	}
	m := o.ToCSR()
	cfg := VSLConfig{Channels: 2, RowBlocks: 1, AccLatency: 8, CapacityBytes: 0}
	f, err := NewVSL(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Partition max is 256 (column 0), so column 100's 16 entries pad to 256.
	if f.PaddedEntries() < 512 {
		t.Errorf("padded entries = %d, want >= 512 (partition-max padding)", f.PaddedEntries())
	}
	// With 8 row blocks the padding shrinks: each block's max is 32.
	cfg.RowBlocks = 8
	f8, err := NewVSL(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f8.PaddedEntries() >= f.PaddedEntries() {
		t.Errorf("row blocking should reduce padding: %d vs %d",
			f8.PaddedEntries(), f.PaddedEntries())
	}
}

func TestVSLCorrectnessWithRowBlocks(t *testing.T) {
	m := matrix.Random(200, 180, 0.05, 44)
	for _, blocks := range []int{1, 3, 8} {
		f, err := NewVSL(m, VSLConfig{Channels: 4, RowBlocks: blocks, AccLatency: 8})
		if err != nil {
			t.Fatal(err)
		}
		x := matrix.RandomVector(180, 45)
		want := make([]float64, 200)
		got := make([]float64, 200)
		m.SpMV(x, want)
		f.SpMV(x, got)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("blocks=%d: serial diff %g", blocks, d)
		}
		f.SpMVParallel(x, got, 4)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("blocks=%d: parallel diff %g", blocks, d)
		}
	}
}

func TestHYBAllSpillAndNoSpill(t *testing.T) {
	m := matrix.Random(60, 60, 0.2, 46)
	x := matrix.RandomVector(60, 47)
	want := make([]float64, 60)
	m.SpMV(x, want)
	// Threshold larger than every row: pure ELL, empty spill.
	fAll, err := NewHYBThreshold(m, m.MaxRowNNZ())
	if err != nil {
		t.Fatal(err)
	}
	if fAll.SpillNNZ() != 0 {
		t.Errorf("spill = %d, want 0 at threshold=max", fAll.SpillNNZ())
	}
	got := make([]float64, 60)
	fAll.SpMVParallel(x, got, 4)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("no-spill diff %g", d)
	}
	// Threshold 0: pure COO.
	fNone, err := NewHYBThreshold(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	fNone.SpMVParallel(x, got, 4)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("all-spill diff %g", d)
	}
}

// Property: for arbitrary random matrices and worker counts, the three
// carry-based kernels (COO, Merge-CSR, CSR5) agree with the reference.
func TestQuickCarryKernels(t *testing.T) {
	f := func(seed uint32, rowsRaw, workersRaw uint8) bool {
		rows := int(rowsRaw%80) + 2
		workers := int(workersRaw%12) + 1
		m := matrix.Random(rows, rows, 0.15, int64(seed))
		x := matrix.RandomVector(rows, int64(seed)+1)
		want := make([]float64, rows)
		m.SpMV(x, want)

		coo := NewCOO(m)
		merge := NewMergeCSR(m)
		csr5, err := NewCSR5(m)
		if err != nil {
			return false
		}
		for _, k := range []Format{coo, merge, csr5} {
			got := make([]float64, rows)
			k.SpMVParallel(x, got, workers)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Bytes() is consistent with Traits().MetaBytesPerNNZ for every
// format: Bytes = nnz*(8 + meta) within rounding.
func TestQuickBytesTraitsConsistency(t *testing.T) {
	f := func(seed uint32) bool {
		m := matrix.Random(50, 50, 0.2, int64(seed))
		if m.NNZ() == 0 {
			return true
		}
		for _, b := range Registry() {
			fm, err := b.Build(m)
			if err != nil {
				continue
			}
			meta := fm.Traits().MetaBytesPerNNZ
			implied := float64(fm.NNZ())*(8+meta) - float64(fm.Bytes())
			// ELL-family estimates fold padding into meta; allow 15%.
			if math.Abs(implied) > 0.15*float64(fm.Bytes())+64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
