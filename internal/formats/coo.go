package formats

import (
	"repro/internal/matrix"
)

// COO stores the matrix as row-sorted coordinate triplets. It balances
// nonzeros perfectly across workers but pays 8 bytes of metadata per entry.
type COO struct {
	rows, cols int
	rowIdx     []int32
	colIdx     []int32
	val        []float64
}

// NewCOO builds the coordinate format from a CSR matrix.
func NewCOO(m *matrix.CSR) *COO {
	o := m.ToCOO()
	return &COO{rows: m.Rows, cols: m.Cols, rowIdx: o.RowIdx, colIdx: o.ColIdx, val: o.Val}
}

// Name implements Format.
func (f *COO) Name() string { return "COO" }

// Rows implements Format.
func (f *COO) Rows() int { return f.rows }

// Cols implements Format.
func (f *COO) Cols() int { return f.cols }

// NNZ implements Format.
func (f *COO) NNZ() int64 { return int64(len(f.val)) }

// Bytes implements Format: 8-byte value plus two 4-byte indices per entry.
func (f *COO) Bytes() int64 { return int64(len(f.val)) * 16 }

// Traits implements Format.
func (f *COO) Traits() Traits {
	return Traits{Balancing: NNZGranular, MetaBytesPerNNZ: 8}
}

// SpMV implements Format.
func (f *COO) SpMV(x, y []float64) {
	checkShape("COO", f.rows, f.cols, x, y)
	zero(y)
	for k := range f.val {
		y[f.rowIdx[k]] += f.val[k] * x[f.colIdx[k]]
	}
}

// SpMVParallel implements Format. Entries are row-sorted, so each worker
// takes a contiguous chunk; sums for rows straddling a chunk boundary are
// collected in per-worker carry slots and merged serially afterwards.
func (f *COO) SpMVParallel(x, y []float64, workers int) {
	checkShape("COO", f.rows, f.cols, x, y)
	if workers <= 1 || len(f.val) < 2*workers {
		f.SpMV(x, y)
		return
	}
	zero(y)
	n := len(f.val)
	type carry struct {
		firstRow, lastRow int32
		firstSum, lastSum float64
	}
	carries := make([]carry, workers)
	runWorkers(workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		if lo >= hi {
			carries[w] = carry{firstRow: -1, lastRow: -1}
			return
		}
		first := f.rowIdx[lo]
		last := f.rowIdx[hi-1]
		c := carry{firstRow: first, lastRow: last}
		if first == last {
			// The whole chunk is one row fragment; carry everything.
			sum := 0.0
			for k := lo; k < hi; k++ {
				sum += f.val[k] * x[f.colIdx[k]]
			}
			c.firstSum = sum
			c.lastRow = -1
			carries[w] = c
			return
		}
		k := lo
		for ; f.rowIdx[k] == first; k++ {
			c.firstSum += f.val[k] * x[f.colIdx[k]]
		}
		for k < hi && f.rowIdx[k] != last {
			row := f.rowIdx[k]
			sum := 0.0
			for k < hi && f.rowIdx[k] == row {
				sum += f.val[k] * x[f.colIdx[k]]
				k++
			}
			y[row] = sum // interior rows are fully owned by this worker
		}
		for ; k < hi; k++ {
			c.lastSum += f.val[k] * x[f.colIdx[k]]
		}
		carries[w] = c
	})
	for _, c := range carries {
		if c.firstRow >= 0 {
			y[c.firstRow] += c.firstSum
		}
		if c.lastRow >= 0 {
			y[c.lastRow] += c.lastSum
		}
	}
}
