package formats

import (
	"repro/internal/exec"
	"repro/internal/matrix"
)

// COO stores the matrix as row-sorted coordinate triplets. It balances
// nonzeros perfectly across workers but pays 8 bytes of metadata per entry.
type COO struct {
	rows, cols int
	rowIdx     []int32
	colIdx     []int32
	val        []float64
	plans      exec.PlanCache // SpMVParallel carry slots
	addPlans   exec.PlanCache // spmvAddParallel carry lists (HYB spill)
	mplans     exec.PlanCache // MultiplyMany k-wide carry slots
	maddPlans  exec.PlanCache // multiplyManyAdd k-wide carry lists (HYB spill)
}

// newCOOFromParts wraps pre-built triplet arrays (used by NewCOO and the
// HYB spill part).
func newCOOFromParts(rows, cols int, rowIdx, colIdx []int32, val []float64) *COO {
	return &COO{
		rows: rows, cols: cols, rowIdx: rowIdx, colIdx: colIdx, val: val,
		plans: exec.NewPlanCache(), addPlans: exec.NewPlanCache(),
		mplans: exec.NewPlanCache(), maddPlans: exec.NewPlanCache(),
	}
}

// NewCOO builds the coordinate format from a CSR matrix.
func NewCOO(m *matrix.CSR) *COO {
	o := m.ToCOO()
	return newCOOFromParts(m.Rows, m.Cols, o.RowIdx, o.ColIdx, o.Val)
}

// Name implements Format.
func (f *COO) Name() string { return "COO" }

// Rows implements Format.
func (f *COO) Rows() int { return f.rows }

// Cols implements Format.
func (f *COO) Cols() int { return f.cols }

// NNZ implements Format.
func (f *COO) NNZ() int64 { return int64(len(f.val)) }

// Bytes implements Format: 8-byte value plus two 4-byte indices per entry.
func (f *COO) Bytes() int64 { return int64(len(f.val)) * 16 }

// Traits implements Format.
func (f *COO) Traits() Traits {
	return Traits{Balancing: NNZGranular, MetaBytesPerNNZ: 8}
}

// SpMV implements Format. Entries are row-sorted, so each row's sum builds
// in a register and hits y once, instead of a load-add-store per entry.
func (f *COO) SpMV(x, y []float64) {
	checkShape("COO", f.rows, f.cols, x, y)
	zero(y)
	rowIdx, colIdx, val := f.rowIdx, f.colIdx, f.val
	n := len(val)
	k := 0
	for k < n {
		row := rowIdx[k]
		sum := 0.0
		for k < n && rowIdx[k] == row {
			sum += val[k] * x[colIdx[k]]
			k++
		}
		y[row] = sum
	}
}

// cooScratch is the plan-cached boundary-carry state: per worker, the first
// and last row its chunk touches (-1: none) and their partial sums.
type cooScratch struct {
	firstRow, lastRow []int32
	firstSum, lastSum []float64
}

// SpMVParallel implements Format. Entries are row-sorted, so each worker
// takes a contiguous chunk; sums for rows straddling a chunk boundary are
// collected in per-worker carry slots and merged serially afterwards.
func (f *COO) SpMVParallel(x, y []float64, workers int) {
	checkShape("COO", f.rows, f.cols, x, y)
	n := len(f.val)
	workers = exec.Workers(int64(n)+int64(f.rows), workers)
	if workers <= 1 || n < 2*workers {
		f.SpMV(x, y)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		return &exec.Plan{Scratch: &cooScratch{
			firstRow: make([]int32, k.Workers), lastRow: make([]int32, k.Workers),
			firstSum: make([]float64, k.Workers), lastSum: make([]float64, k.Workers),
		}}
	})
	sc := pl.Scratch.(*cooScratch)
	if pl.TryLock() {
		defer pl.Unlock()
	} else {
		// Another call on this plan is mid-flight: private carry slots keep
		// concurrent invocations fully parallel.
		sc = &cooScratch{
			firstRow: make([]int32, workers), lastRow: make([]int32, workers),
			firstSum: make([]float64, workers), lastSum: make([]float64, workers),
		}
	}
	zero(y)
	rowIdx, colIdx, val := f.rowIdx, f.colIdx, f.val
	// Entry chunks are contiguous and ordered, so consecutive worker ids —
	// which a ganged dispatch groups by shard — walk adjacent slabs.
	g.Run(workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		sc.firstRow[w], sc.lastRow[w] = -1, -1
		sc.firstSum[w], sc.lastSum[w] = 0, 0
		if lo >= hi {
			return
		}
		first := rowIdx[lo]
		last := rowIdx[hi-1]
		if first == last {
			// The whole chunk is one row fragment; carry everything.
			sum := 0.0
			for k := lo; k < hi; k++ {
				sum += val[k] * x[colIdx[k]]
			}
			sc.firstRow[w], sc.firstSum[w] = first, sum
			return
		}
		k := lo
		sum := 0.0
		for ; rowIdx[k] == first; k++ {
			sum += val[k] * x[colIdx[k]]
		}
		sc.firstRow[w], sc.firstSum[w] = first, sum
		for k < hi && rowIdx[k] != last {
			row := rowIdx[k]
			sum = 0
			for k < hi && rowIdx[k] == row {
				sum += val[k] * x[colIdx[k]]
				k++
			}
			y[row] = sum // interior rows are fully owned by this worker
		}
		sum = 0
		for ; k < hi; k++ {
			sum += val[k] * x[colIdx[k]]
		}
		sc.lastRow[w], sc.lastSum[w] = last, sum
	})
	for w := 0; w < workers; w++ {
		if r := sc.firstRow[w]; r >= 0 {
			y[r] += sc.firstSum[w]
		}
		if r := sc.lastRow[w]; r >= 0 {
			y[r] += sc.lastSum[w]
		}
	}
}

// cooRunInto accumulates entries [lo, hi) — all belonging to one row —
// times the k-wide x block into dst (the row's k partial sums), streaming
// the run once per 4-vector register tile.
func cooRunInto(colIdx []int32, val, x, dst []float64, k, lo, hi int) {
	t := 0
	for ; t+multiTile <= k; t += multiTile {
		var s0, s1, s2, s3 float64
		for j := lo; j < hi; j++ {
			vj := val[j]
			xb := x[int(colIdx[j])*k+t : int(colIdx[j])*k+t+4 : int(colIdx[j])*k+t+4]
			s0 += vj * xb[0]
			s1 += vj * xb[1]
			s2 += vj * xb[2]
			s3 += vj * xb[3]
		}
		dst[t] += s0
		dst[t+1] += s1
		dst[t+2] += s2
		dst[t+3] += s3
	}
	for ; t < k; t++ {
		var s float64
		for j := lo; j < hi; j++ {
			s += val[j] * x[int(colIdx[j])*k+t]
		}
		dst[t] += s
	}
}

// multiplyManySerial is the fused serial kernel: per row run, per tile,
// the run streams once with the tile's sums in registers.
func (f *COO) multiplyManySerial(x, y []float64, k int) {
	zero(y)
	rowIdx, colIdx, val := f.rowIdx, f.colIdx, f.val
	n := len(val)
	e := 0
	for e < n {
		row := int(rowIdx[e])
		re := e + 1
		for re < n && int(rowIdx[re]) == row {
			re++
		}
		cooRunInto(colIdx, val, x, y[row*k:row*k+k], k, e, re)
		e = re
	}
}

// cooMultiScratch is the plan-cached carry state of MultiplyMany: per
// worker, the first and last row its entry chunk touches (-1: none) and
// their k-wide partial sums. The sum buffers are sized workers*k for the
// largest k this plan has served and grow under the plan lock.
type cooMultiScratch struct {
	firstRow, lastRow []int32
	firstSum, lastSum []float64
}

// MultiplyMany implements Format with the fused run kernel: contiguous
// entry chunks per worker like SpMVParallel, with k-wide carry slots for
// the rows straddling chunk boundaries.
func (f *COO) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti("COO", f.rows, f.cols, y, x, k)
	n := len(f.val)
	workers := exec.Workers((int64(n)+int64(f.rows))*int64(k), exec.MaxWorkers())
	if workers <= 1 || n < 2*workers {
		f.multiplyManySerial(x, y, k)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.mplans.Get(g.Key(), func(kk exec.PlanKey) *exec.Plan {
		return &exec.Plan{Scratch: &cooMultiScratch{
			firstRow: make([]int32, kk.Workers), lastRow: make([]int32, kk.Workers),
		}}
	})
	sc := pl.Scratch.(*cooMultiScratch)
	if pl.TryLock() {
		defer pl.Unlock()
		if len(sc.firstSum) < workers*k {
			sc.firstSum = make([]float64, workers*k)
			sc.lastSum = make([]float64, workers*k)
		}
	} else {
		// Another call on this plan is mid-flight: private carry slots keep
		// concurrent invocations fully parallel.
		sc = &cooMultiScratch{
			firstRow: make([]int32, workers), lastRow: make([]int32, workers),
			firstSum: make([]float64, workers*k), lastSum: make([]float64, workers*k),
		}
	}
	zero(y)
	rowIdx, colIdx, val := f.rowIdx, f.colIdx, f.val
	// Entry chunks are contiguous and ordered, so consecutive worker ids —
	// which a ganged dispatch groups by shard — walk adjacent slabs.
	g.Run(workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		sc.firstRow[w], sc.lastRow[w] = -1, -1
		if lo >= hi {
			return
		}
		fs := sc.firstSum[w*k : w*k+k]
		ls := sc.lastSum[w*k : w*k+k]
		zero(fs)
		zero(ls)
		first := rowIdx[lo]
		last := rowIdx[hi-1]
		// Leading fragment: the first row may be shared with the previous
		// chunk, so its sums go to the carry slots (when the whole chunk is
		// one row this consumes everything).
		e := lo
		for e < hi && rowIdx[e] == first {
			e++
		}
		cooRunInto(colIdx, val, x, fs, k, lo, e)
		sc.firstRow[w] = first
		// Interior rows are fully owned by this worker.
		for e < hi && rowIdx[e] != last {
			row := int(rowIdx[e])
			re := e + 1
			for re < hi && int(rowIdx[re]) == row {
				re++
			}
			cooRunInto(colIdx, val, x, y[row*k:row*k+k], k, e, re)
			e = re
		}
		// Trailing fragment of the row cut by the chunk end.
		if e < hi {
			cooRunInto(colIdx, val, x, ls, k, e, hi)
			sc.lastRow[w] = last
		}
	})
	for w := 0; w < workers; w++ {
		if r := int(sc.firstRow[w]); r >= 0 {
			yb := y[r*k : r*k+k]
			fs := sc.firstSum[w*k : w*k+k]
			for t := range yb {
				yb[t] += fs[t]
			}
		}
		if r := int(sc.lastRow[w]); r >= 0 {
			yb := y[r*k : r*k+k]
			ls := sc.lastSum[w*k : w*k+k]
			for t := range yb {
				yb[t] += ls[t]
			}
		}
	}
}
