package formats

import (
	"repro/internal/matrix"
	"repro/internal/sched"
)

// CSR is the naive compressed-sparse-row format with row-block parallelism,
// the baseline every platform in the paper provides.
type CSR struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	val        []float64
}

// NewCSR wraps a CSR matrix (sharing its storage; the matrix must not be
// mutated while the format is in use).
func NewCSR(m *matrix.CSR) *CSR {
	return &CSR{rows: m.Rows, cols: m.Cols, rowPtr: m.RowPtr, colIdx: m.ColIdx, val: m.Val}
}

// Name implements Format.
func (f *CSR) Name() string { return "Naive-CSR" }

// Rows implements Format.
func (f *CSR) Rows() int { return f.rows }

// Cols implements Format.
func (f *CSR) Cols() int { return f.cols }

// NNZ implements Format.
func (f *CSR) NNZ() int64 { return int64(len(f.val)) }

// Bytes implements Format.
func (f *CSR) Bytes() int64 { return int64(len(f.val))*12 + int64(f.rows+1)*4 }

// Traits implements Format.
func (f *CSR) Traits() Traits {
	return Traits{Balancing: RowGranular, MetaBytesPerNNZ: metaPerNNZCSR(len(f.val), f.rows)}
}

func metaPerNNZCSR(nnz, rows int) float64 {
	if nnz == 0 {
		return 4
	}
	return 4 + 4*float64(rows+1)/float64(nnz)
}

func csrRowRange(rowPtr, colIdx []int32, val, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			sum += val[k] * x[colIdx[k]]
		}
		y[i] = sum
	}
}

// SpMV implements Format.
func (f *CSR) SpMV(x, y []float64) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows)
}

// SpMVParallel implements Format, splitting rows into equal-count blocks.
func (f *CSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	ranges := sched.RowBlocks(f.rowPtr, workers)
	runWorkers(len(ranges), func(w int) {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// VecCSR is CSR with a 4-way unrolled inner loop, standing in for the
// AVX2/NEON vectorized CSR kernels of the paper's CPU testbeds.
type VecCSR struct {
	CSR
}

// NewVecCSR builds the vectorized-CSR format.
func NewVecCSR(m *matrix.CSR) *VecCSR { return &VecCSR{*NewCSR(m)} }

// Name implements Format.
func (f *VecCSR) Name() string { return "Vec-CSR" }

// Traits implements Format.
func (f *VecCSR) Traits() Traits {
	t := f.CSR.Traits()
	t.Vectorizable = true
	return t
}

func vecCSRRowRange(rowPtr, colIdx []int32, val, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		start, end := int(rowPtr[i]), int(rowPtr[i+1])
		var s0, s1, s2, s3 float64
		k := start
		for ; k+4 <= end; k += 4 {
			s0 += val[k] * x[colIdx[k]]
			s1 += val[k+1] * x[colIdx[k+1]]
			s2 += val[k+2] * x[colIdx[k+2]]
			s3 += val[k+3] * x[colIdx[k+3]]
		}
		sum := (s0 + s1) + (s2 + s3)
		for ; k < end; k++ {
			sum += val[k] * x[colIdx[k]]
		}
		y[i] = sum
	}
}

// SpMV implements Format.
func (f *VecCSR) SpMV(x, y []float64) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	vecCSRRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows)
}

// SpMVParallel implements Format.
func (f *VecCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	ranges := sched.RowBlocks(f.rowPtr, workers)
	runWorkers(len(ranges), func(w int) {
		vecCSRRowRange(f.rowPtr, f.colIdx, f.val, x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// BalCSR is CSR with nonzero-balanced row partitioning (the paper's
// "Balanced-CSR": nonzero balancing at row resolution).
type BalCSR struct {
	CSR
}

// NewBalCSR builds the balanced-CSR format.
func NewBalCSR(m *matrix.CSR) *BalCSR { return &BalCSR{*NewCSR(m)} }

// Name implements Format.
func (f *BalCSR) Name() string { return "Bal-CSR" }

// Traits implements Format.
func (f *BalCSR) Traits() Traits {
	t := f.CSR.Traits()
	t.Balancing = NNZGranular
	return t
}

// SpMVParallel implements Format, splitting rows into blocks of near-equal
// nonzero count.
func (f *BalCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	ranges := sched.NNZBalanced(f.rowPtr, workers)
	runWorkers(len(ranges), func(w int) {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// InspectorCSR models the vendor inspector-executor CSR (Intel MKL-IE,
// AOCL-Sparse, ARMPL): the build step inspects the matrix and commits to an
// execution strategy — vectorized inner loops when rows are long enough and
// nonzero-balanced partitioning when row lengths are skewed.
type InspectorCSR struct {
	CSR
	vectorize bool
	balance   bool
}

// Inspection thresholds: rows shorter than vecMinRow on average do not repay
// unrolling; skew above balMinSkew makes row blocks lose to nnz balancing.
const (
	vecMinRow  = 8.0
	balMinSkew = 4.0
)

// NewInspectorCSR builds the inspector-executor CSR, analyzing the matrix.
func NewInspectorCSR(m *matrix.CSR) *InspectorCSR {
	f := &InspectorCSR{CSR: *NewCSR(m)}
	avg := m.AvgRowNNZ()
	f.vectorize = avg >= vecMinRow
	if avg > 0 {
		skew := (float64(m.MaxRowNNZ()) - avg) / avg
		f.balance = skew > balMinSkew
	}
	return f
}

// Name implements Format.
func (f *InspectorCSR) Name() string { return "MKL-IE" }

// Traits implements Format.
func (f *InspectorCSR) Traits() Traits {
	t := f.CSR.Traits()
	t.Preprocessed = true
	t.Vectorizable = f.vectorize
	if f.balance {
		t.Balancing = NNZGranular
	}
	return t
}

// SpMV implements Format.
func (f *InspectorCSR) SpMV(x, y []float64) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	if f.vectorize {
		vecCSRRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows)
	} else {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows)
	}
}

// SpMVParallel implements Format.
func (f *InspectorCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	var ranges []sched.Range
	if f.balance {
		ranges = sched.NNZBalanced(f.rowPtr, workers)
	} else {
		ranges = sched.RowBlocks(f.rowPtr, workers)
	}
	runWorkers(len(ranges), func(w int) {
		if f.vectorize {
			vecCSRRowRange(f.rowPtr, f.colIdx, f.val, x, y, ranges[w].RowLo, ranges[w].RowHi)
		} else {
			csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, ranges[w].RowLo, ranges[w].RowHi)
		}
	})
}
