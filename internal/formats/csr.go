package formats

import (
	"os"
	"strconv"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/simd"
)

// CSR is the naive compressed-sparse-row format with row-block parallelism,
// the baseline every platform in the paper provides.
type CSR struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	val        []float64
	plans      exec.PlanCache
	// noWideTiles disables the 8-vector SpMM register tile for this
	// instance (the autotuner sets it when the 4-wide tile measures faster
	// on the matrix). Zero value: wide tiles allowed whenever the
	// dispatched SIMD width is 8.
	noWideTiles bool
	// wideRowMin overrides the vectorized-CSR wide-path cutoff for this
	// instance (see VecWideRowMin); 0 falls through to the process-wide
	// setting. Set by the auto selector's row-length inspector.
	wideRowMin int
}

// SetWideTiles toggles the 8-vector SpMM register tile (WideTiler).
func (f *CSR) SetWideTiles(on bool) { f.noWideTiles = !on }

// SetWideRowMin sets this instance's vectorized wide-path cutoff; n <= 0
// restores the process-wide setting. Only the vectorized row kernels
// (Vec-CSR, MKL-IE with vectorization) consult it.
func (f *CSR) SetWideRowMin(n int) {
	if n < 0 {
		n = 0
	}
	f.wideRowMin = n
}

// NewCSR wraps a CSR matrix (sharing its storage; the matrix must not be
// mutated while the format is in use).
func NewCSR(m *matrix.CSR) *CSR {
	return &CSR{
		rows: m.Rows, cols: m.Cols, rowPtr: m.RowPtr, colIdx: m.ColIdx, val: m.Val,
		plans: exec.NewPlanCache(),
	}
}

// Name implements Format.
func (f *CSR) Name() string { return "Naive-CSR" }

// Rows implements Format.
func (f *CSR) Rows() int { return f.rows }

// Cols implements Format.
func (f *CSR) Cols() int { return f.cols }

// NNZ implements Format.
func (f *CSR) NNZ() int64 { return int64(len(f.val)) }

// Bytes implements Format.
func (f *CSR) Bytes() int64 { return int64(len(f.val))*12 + int64(f.rows+1)*4 }

// work is the engine's serial-cutoff measure: nonzeros plus a row visit each.
func (f *CSR) work() int64 { return int64(len(f.val)) + int64(f.rows) }

// Traits implements Format.
func (f *CSR) Traits() Traits {
	return Traits{Balancing: RowGranular, MetaBytesPerNNZ: metaPerNNZCSR(len(f.val), f.rows)}
}

func metaPerNNZCSR(nnz, rows int) float64 {
	if nnz == 0 {
		return 4
	}
	return 4 + 4*float64(rows+1)/float64(nnz)
}

// csrRowRange is the scalar CSR kernel. Rows are materialized as capped
// sub-slices so the compiler drops the val/colIdx bounds checks from the
// inner loop; only the x gather keeps its check (its index is data).
func csrRowRange(rowPtr, colIdx []int32, val, x, y []float64, lo, hi int) {
	end := int(rowPtr[lo])
	for i := lo; i < hi; i++ {
		start := end
		end = int(rowPtr[i+1])
		c := colIdx[start:end:end]
		v := val[start:end:end]
		v = v[:len(c)]
		sum := 0.0
		for k, ck := range c {
			sum += v[k] * x[ck]
		}
		y[i] = sum
	}
}

// SpMV implements Format.
func (f *CSR) SpMV(x, y []float64) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows)
}

// rangePlan builds (or fetches) the cached row partition for the grant's
// placement under the given policy, with the per-domain offset table that
// keeps ganged dispatches aligned when ranges collapse. Every CSR-array
// method — single- and multi-vector — shares this cache, so an instance
// computes each placement's partition exactly once.
func (f *CSR) rangePlan(g *exec.Grant, policy sched.Partitioner) *exec.Plan {
	return f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		ranges, off := sched.DomainSplitOff(f.rowPtr, k.Domains, k.Workers, policy)
		return &exec.Plan{Ranges: ranges, DomainOff: off}
	})
}

// SpMVParallel implements Format, splitting rows into equal-count blocks
// (per domain slice when the dispatch gangs across shards).
func (f *CSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	workers = exec.Workers(f.work(), workers)
	if workers <= 1 {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.rangePlan(&g, sched.RowBlocks)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// MultiplyMany implements Format with the fused row kernel over the same
// row partition SpMVParallel uses. Vec-CSR inherits it: the multi-vector
// tile already provides the register-level parallelism its single-vector
// kernel unrolls for.
func (f *CSR) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti(f.Name(), f.rows, f.cols, y, x, k)
	f.multiplyMany(y, x, k, sched.RowBlocks)
}

// multiplyMany dispatches the fused CSR kernel under the given partition
// policy; Bal-CSR and MKL-IE reuse it with nonzero-balanced splits.
func (f *CSR) multiplyMany(y, x []float64, k int, policy sched.Partitioner) {
	workers := exec.Workers(f.work()*int64(k), exec.MaxWorkers())
	if workers <= 1 {
		csrRowRangeMulti(f.rowPtr, f.colIdx, f.val, x, y, k, 0, f.rows, !f.noWideTiles)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.rangePlan(&g, policy)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		csrRowRangeMulti(f.rowPtr, f.colIdx, f.val, x, y, k, ranges[w].RowLo, ranges[w].RowHi, !f.noWideTiles)
	})
}

// VecCSR is CSR with an 8-way unrolled inner loop, standing in for the
// AVX2/NEON vectorized CSR kernels of the paper's CPU testbeds.
type VecCSR struct {
	CSR
}

// NewVecCSR builds the vectorized-CSR format.
func NewVecCSR(m *matrix.CSR) *VecCSR { return &VecCSR{*NewCSR(m)} }

// Name implements Format.
func (f *VecCSR) Name() string { return "Vec-CSR" }

// Traits implements Format.
func (f *VecCSR) Traits() Traits {
	t := f.CSR.Traits()
	t.Vectorizable = true
	return t
}

// defaultVecWideRowMin gates the widened 8-accumulator inner loop.
// Widening was evaluated for the usual latency-hiding rationale, but on
// gather-bound x86 parts the x-vector loads saturate the load ports long
// before the FP-add chain limits throughput, and the measured effect of
// the wide path was negative at every tested row length (avg 10, 20, 64
// and 256 nnz/row; 4-way + bounds-check elimination won throughout). The
// wide path therefore only engages for very long rows, where its reduction
// overhead is fully amortized.
//
// The cutoff is x86 tuning. Hosts with more load ports or cheaper gathers
// (wide-SVE ARM, POWER) may profit from the 8-accumulator path on much
// shorter rows: override without rebuilding via the SPMV_VEC_ROWMIN
// environment variable, or at runtime with SetVecWideRowMin. Re-tune by
// sweeping the cutoff over matrices with the row lengths above and keeping
// the fastest (see docs/BENCHMARKS.md for the measurement recipe).
const defaultVecWideRowMin = 512

// vecWideRowMin is the active cutoff; read once per kernel invocation.
var vecWideRowMin atomic.Int64

func init() {
	if n := envVecRowMin(); n > 0 {
		vecWideRowMin.Store(int64(n))
	}
}

// envVecRowMin parses the SPMV_VEC_ROWMIN override; 0 means unset or
// invalid. Both process startup and SetVecWideRowMin's restore path go
// through here, so the env rule cannot diverge between them.
func envVecRowMin() int {
	s := os.Getenv("SPMV_VEC_ROWMIN")
	if s == "" {
		return 0
	}
	if n, err := strconv.Atoi(s); err == nil && n > 0 {
		return n
	}
	return 0
}

// VecWideRowMin returns the row length at and above which the vectorized
// CSR kernels switch to the 8-accumulator wide path.
func VecWideRowMin() int {
	if n := vecWideRowMin.Load(); n > 0 {
		return int(n)
	}
	return defaultVecWideRowMin
}

// SetVecWideRowMin overrides the wide-path cutoff; n <= 0 restores the
// default (or the SPMV_VEC_ROWMIN environment override, re-read). It
// returns the previous override (0 if none) so tests and tuners can
// restore it.
func SetVecWideRowMin(n int) int {
	if n < 0 {
		n = 0
	}
	prev := int(vecWideRowMin.Swap(int64(n)))
	if n == 0 {
		if env := envVecRowMin(); env > 0 {
			vecWideRowMin.Store(int64(env))
		}
	}
	return prev
}

// vecCSRRowRange is the unrolled CSR kernel: four independent accumulators
// (eight for very long rows) hide the FP-add latency chain, short rows skip
// the unroll entirely, and capped sub-slices drop the val/colIdx bounds
// checks like the scalar kernel. wideMin is the per-instance wide-path
// cutoff; 0 falls through to the process-wide VecWideRowMin.
func vecCSRRowRange(rowPtr, colIdx []int32, val, x, y []float64, lo, hi, wideMin int) {
	if simd.Enabled() {
		// Dispatched path: the gather+FMA row dot-product. Like the wide
		// scalar path it reassociates the per-row sum (8 partial sums), a
		// tolerance Vec-CSR's contract already grants. Rows below the
		// dispatch cutoff keep an inlined sequential sum.
		end := int(rowPtr[lo])
		for i := lo; i < hi; i++ {
			start := end
			end = int(rowPtr[i+1])
			if end-start >= simdMinN {
				y[i] = simd.DotGather(val[start:end], colIdx[start:end], x)
				continue
			}
			c := colIdx[start:end:end]
			v := val[start:end:end]
			v = v[:len(c)]
			var s float64
			for j, cj := range c {
				s += v[j] * x[cj]
			}
			y[i] = s
		}
		return
	}
	if wideMin <= 0 {
		wideMin = VecWideRowMin()
	}
	end := int(rowPtr[lo])
	for i := lo; i < hi; i++ {
		start := end
		end = int(rowPtr[i+1])
		c := colIdx[start:end:end]
		v := val[start:end:end]
		v = v[:len(c)]
		n := len(c)
		var s0, s1, s2, s3 float64
		k := 0
		if n >= wideMin {
			var s4, s5, s6, s7 float64
			for ; k+8 <= n; k += 8 {
				s0 += v[k] * x[c[k]]
				s1 += v[k+1] * x[c[k+1]]
				s2 += v[k+2] * x[c[k+2]]
				s3 += v[k+3] * x[c[k+3]]
				s4 += v[k+4] * x[c[k+4]]
				s5 += v[k+5] * x[c[k+5]]
				s6 += v[k+6] * x[c[k+6]]
				s7 += v[k+7] * x[c[k+7]]
			}
			s0, s1, s2, s3 = s0+s4, s1+s5, s2+s6, s3+s7
		}
		for ; k+4 <= n; k += 4 {
			s0 += v[k] * x[c[k]]
			s1 += v[k+1] * x[c[k+1]]
			s2 += v[k+2] * x[c[k+2]]
			s3 += v[k+3] * x[c[k+3]]
		}
		sum := (s0 + s1) + (s2 + s3)
		for ; k < n; k++ {
			sum += v[k] * x[c[k]]
		}
		y[i] = sum
	}
}

// SpMV implements Format.
func (f *VecCSR) SpMV(x, y []float64) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	vecCSRRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows, f.wideRowMin)
}

// SpMVParallel implements Format.
func (f *VecCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	workers = exec.Workers(f.work(), workers)
	if workers <= 1 {
		vecCSRRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows, f.wideRowMin)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.rangePlan(&g, sched.RowBlocks)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		vecCSRRowRange(f.rowPtr, f.colIdx, f.val, x, y, ranges[w].RowLo, ranges[w].RowHi, f.wideRowMin)
	})
}

// BalCSR is CSR with nonzero-balanced row partitioning (the paper's
// "Balanced-CSR": nonzero balancing at row resolution).
type BalCSR struct {
	CSR
}

// NewBalCSR builds the balanced-CSR format.
func NewBalCSR(m *matrix.CSR) *BalCSR { return &BalCSR{*NewCSR(m)} }

// Name implements Format.
func (f *BalCSR) Name() string { return "Bal-CSR" }

// Traits implements Format.
func (f *BalCSR) Traits() Traits {
	t := f.CSR.Traits()
	t.Balancing = NNZGranular
	return t
}

// SpMVParallel implements Format, splitting rows into blocks of near-equal
// nonzero count.
func (f *BalCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	workers = exec.Workers(f.work(), workers)
	if workers <= 1 {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.rangePlan(&g, sched.NNZBalanced)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// MultiplyMany implements Format with the fused kernel over nonzero-
// balanced row blocks, this format's partition discipline.
func (f *BalCSR) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti(f.Name(), f.rows, f.cols, y, x, k)
	f.multiplyMany(y, x, k, sched.NNZBalanced)
}

// InspectorCSR models the vendor inspector-executor CSR (Intel MKL-IE,
// AOCL-Sparse, ARMPL): the build step inspects the matrix and commits to an
// execution strategy — vectorized inner loops when rows are long enough and
// nonzero-balanced partitioning when row lengths are skewed.
type InspectorCSR struct {
	CSR
	vectorize bool
	balance   bool
}

// Inspection thresholds: rows shorter than vecMinRow on average do not repay
// unrolling; skew above balMinSkew makes row blocks lose to nnz balancing.
const (
	vecMinRow  = 8.0
	balMinSkew = 4.0
)

// NewInspectorCSR builds the inspector-executor CSR, analyzing the matrix.
func NewInspectorCSR(m *matrix.CSR) *InspectorCSR {
	f := &InspectorCSR{CSR: *NewCSR(m)}
	avg := m.AvgRowNNZ()
	f.vectorize = avg >= vecMinRow
	if avg > 0 {
		skew := (float64(m.MaxRowNNZ()) - avg) / avg
		f.balance = skew > balMinSkew
	}
	return f
}

// Name implements Format.
func (f *InspectorCSR) Name() string { return "MKL-IE" }

// Traits implements Format.
func (f *InspectorCSR) Traits() Traits {
	t := f.CSR.Traits()
	t.Preprocessed = true
	t.Vectorizable = f.vectorize
	if f.balance {
		t.Balancing = NNZGranular
	}
	return t
}

func (f *InspectorCSR) rowRange(x, y []float64, lo, hi int) {
	if f.vectorize {
		vecCSRRowRange(f.rowPtr, f.colIdx, f.val, x, y, lo, hi, f.wideRowMin)
	} else {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, lo, hi)
	}
}

// SpMV implements Format.
func (f *InspectorCSR) SpMV(x, y []float64) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	f.rowRange(x, y, 0, f.rows)
}

// SpMVParallel implements Format.
func (f *InspectorCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	workers = exec.Workers(f.work(), workers)
	if workers <= 1 {
		f.rowRange(x, y, 0, f.rows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.rangePlan(&g, f.policy())
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.rowRange(x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// policy returns the partition discipline the inspection committed to.
func (f *InspectorCSR) policy() sched.Partitioner {
	if f.balance {
		return sched.NNZBalanced
	}
	return sched.RowBlocks
}

// MultiplyMany implements Format with the fused kernel under the inspected
// partition policy. The fused tile supersedes the single-vector
// vectorize choice: register-level parallelism comes from the 4-vector
// tile regardless of row length.
func (f *InspectorCSR) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti(f.Name(), f.rows, f.cols, y, x, k)
	f.multiplyMany(y, x, k, f.policy())
}
