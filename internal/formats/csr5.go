package formats

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// CSR5 implements the tile-based format of Liu & Vinter (ICS 2015). The
// nonzero stream is cut into 2D tiles of Omega lanes x Sigma entries; tile
// data is stored transposed (lane-interleaved) so a SIMD unit can process
// Omega lanes in lockstep, and per-tile descriptors (row-start bit flags and
// per-lane segment bases) drive a segmented sum that reassembles row results
// regardless of where rows start and end. Work is perfectly nonzero-balanced,
// at the cost of extra descriptor metadata — exactly the trade-off the paper
// describes for CSR5.
type CSR5 struct {
	rows, cols int
	nnz        int64

	// Segment s is the s-th non-empty row; segRow maps it back to the row
	// index, segStart[s] is the offset of its first nonzero.
	segRow   []int32
	segStart []int64

	tiles       int
	flags       []uint64 // Omega*Sigma bits per tile, bit k = entry k starts a row
	laneSegBase []int32  // per tile per lane: segment index before the lane's first entry
	colIdx      []int32  // transposed within each tile
	val         []float64
	plans       exec.PlanCache
}

// CSR5 tile geometry. Omega mirrors a 256-bit SIMD unit (4 doubles); Sigma
// is the per-lane depth.
const (
	Omega = 4
	Sigma = 16
	tileN = Omega * Sigma
)

// flagWordsPerTile is the number of uint64 bit-flag words each tile needs.
const flagWordsPerTile = (tileN + 63) / 64

// NewCSR5 builds the CSR5 format.
func NewCSR5(m *matrix.CSR) (*CSR5, error) {
	nnz := int64(m.NNZ())
	f := &CSR5{rows: m.Rows, cols: m.Cols, nnz: nnz, plans: exec.NewPlanCache()}

	// Enumerate non-empty rows as segments.
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) > 0 {
			f.segRow = append(f.segRow, int32(i))
			f.segStart = append(f.segStart, int64(m.RowPtr[i]))
		}
	}
	if nnz == 0 {
		return f, nil
	}

	f.tiles = int((nnz + tileN - 1) / tileN)
	f.flags = make([]uint64, f.tiles*flagWordsPerTile)
	f.laneSegBase = make([]int32, f.tiles*Omega)
	padded := int64(f.tiles) * tileN
	f.colIdx = make([]int32, padded)
	f.val = make([]float64, padded)

	// Row-start bit flags, indexed by position within the tile.
	for s := range f.segStart {
		g := f.segStart[s]
		t := g / tileN
		k := g % tileN
		f.flags[int(t)*flagWordsPerTile+int(k)/64] |= 1 << (uint(k) % 64)
	}

	// Per-lane segment bases via a two-pointer sweep over segment starts.
	seg := 0
	for t := 0; t < f.tiles; t++ {
		for c := 0; c < Omega; c++ {
			g := int64(t)*tileN + int64(c)*Sigma
			if g >= nnz {
				// Padding lanes point at the last segment with no flag.
				f.laneSegBase[t*Omega+c] = int32(len(f.segRow) - 1)
				continue
			}
			for seg+1 < len(f.segStart) && f.segStart[seg+1] <= g {
				seg++
			}
			base := seg
			if f.segStart[seg] == g {
				base-- // the lane's first entry starts this segment; the
				// running sum before it belongs to the previous one
			}
			f.laneSegBase[t*Omega+c] = int32(base)
		}
	}

	// Transposed tile storage: original in-tile position k = c*Sigma + r
	// lands at transposed slot r*Omega + c.
	for g := int64(0); g < nnz; g++ {
		t := g / tileN
		k := g % tileN
		c := k / Sigma
		r := k % Sigma
		at := t*tileN + r*Omega + c
		f.colIdx[at] = m.ColIdx[g]
		f.val[at] = m.Val[g]
	}
	return f, nil
}

// Name implements Format.
func (f *CSR5) Name() string { return "CSR5" }

// Rows implements Format.
func (f *CSR5) Rows() int { return f.rows }

// Cols implements Format.
func (f *CSR5) Cols() int { return f.cols }

// NNZ implements Format.
func (f *CSR5) NNZ() int64 { return f.nnz }

// Bytes implements Format: padded tile slabs plus descriptors and the
// segment tables.
func (f *CSR5) Bytes() int64 {
	return int64(len(f.val))*12 +
		int64(len(f.flags))*8 + int64(len(f.laneSegBase))*4 +
		int64(len(f.segRow))*4 + int64(len(f.segStart))*8
}

// Traits implements Format.
func (f *CSR5) Traits() Traits {
	pad := 0.0
	if f.nnz > 0 {
		pad = float64(int64(len(f.val))-f.nnz) / float64(f.nnz)
	}
	meta := 4.0
	if f.nnz > 0 {
		meta = float64(f.Bytes()-8*f.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: ItemGranular, PaddingRatio: pad, MetaBytesPerNNZ: meta,
		Vectorizable: true, Preprocessed: true}
}

// The kernel below exploits the tile-geometry fact that a tile's row-start
// flags fit exactly one uint64 word; this declaration fails to compile if
// Omega*Sigma stops being 64.
var _ [1]struct{} = [flagWordsPerTile]struct{}{}

// processTiles runs the segmented sum over tiles [tLo, tHi). Contributions
// to carryRow accumulate into the returned carry instead of y, so parallel
// callers can fix up rows straddling worker boundaries serially. Flushes to
// segments below minSeg are dropped: the only such flush is the zero-sum
// flush a lane emits when it begins exactly at a row start, and dropping it
// keeps workers from touching rows owned by their predecessor.
//
// Each lane extracts its Sigma flag bits from the tile's flag word once;
// lanes with no row start (the common case away from row boundaries) take a
// branch-free accumulate path over the bounds-check-free tile slab.
func (f *CSR5) processTiles(x, y []float64, tLo, tHi int, carryRow int32, minSeg int32) float64 {
	carry := 0.0
	segRow := f.segRow
	flush := func(seg int32, sum float64) {
		if seg < minSeg {
			return
		}
		row := segRow[seg]
		if row == carryRow {
			carry += sum
		} else {
			y[row] += sum
		}
	}
	for t := tLo; t < tHi; t++ {
		base := t * tileN
		fw := f.flags[t]
		cs := f.colIdx[base : base+tileN : base+tileN]
		vs := f.val[base : base+tileN : base+tileN]
		vs = vs[:len(cs)]
		for c := 0; c < Omega; c++ {
			seg := f.laneSegBase[t*Omega+c]
			bits := uint16(fw >> (uint(c) * Sigma))
			sum := 0.0
			if bits == 0 {
				for r := 0; r < Sigma; r++ {
					at := r*Omega + c
					sum += vs[at] * x[cs[at]]
				}
			} else {
				for r := 0; r < Sigma; r++ {
					if bits&(1<<uint(r)) != 0 {
						flush(seg, sum)
						seg++
						sum = 0
					}
					at := r*Omega + c
					sum += vs[at] * x[cs[at]]
				}
			}
			flush(seg, sum)
		}
	}
	return carry
}

// SpMV implements Format.
func (f *CSR5) SpMV(x, y []float64) {
	checkShape("CSR5", f.rows, f.cols, x, y)
	zero(y)
	f.processTiles(x, y, 0, f.tiles, -1, 0)
}

// csr5Scratch is the plan-cached executor state: per-worker tile bounds,
// the boundary segment each worker must not touch directly, and the carry
// accumulator slots.
type csr5Scratch struct {
	tLo, tHi []int
	carryRow []int32
	minSeg   []int32
	carry    []float64
}

// SpMVParallel implements Format: contiguous tile ranges per worker, with
// the first row of each range carried past the boundary. The tile split and
// boundary-segment searches run once per worker count and are cached.
func (f *CSR5) SpMVParallel(x, y []float64, workers int) {
	checkShape("CSR5", f.rows, f.cols, x, y)
	workers = exec.Workers(f.nnz, workers)
	if workers > f.tiles {
		workers = f.tiles
	}
	if workers <= 1 {
		f.SpMV(x, y)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		// The even tile split is already domain-contiguous: consecutive
		// worker ids — grouped by shard under a ganged dispatch — own
		// adjacent tile slabs, so no domain-aware re-split is needed.
		p := k.Workers
		sc := &csr5Scratch{
			tLo: make([]int, p), tHi: make([]int, p),
			carryRow: make([]int32, p), minSeg: make([]int32, p),
			carry: make([]float64, p),
		}
		for w := 0; w < p; w++ {
			sc.tLo[w] = f.tiles * w / p
			sc.tHi[w] = f.tiles * (w + 1) / p
			sc.carryRow[w] = -1
			if w > 0 && sc.tLo[w] < f.tiles {
				// The row containing the first entry of this range may have
				// started in the previous range.
				sc.minSeg[w] = int32(f.segOfEntry(int64(sc.tLo[w]) * tileN))
				sc.carryRow[w] = f.segRow[sc.minSeg[w]]
			}
		}
		return &exec.Plan{Scratch: sc}
	})
	sc := pl.Scratch.(*csr5Scratch)
	carry := sc.carry // tile bounds and boundary segments are read-only;
	if pl.TryLock() { // only the carry accumulators need exclusivity
		defer pl.Unlock()
	} else {
		carry = make([]float64, workers)
	}
	zero(y)
	g.Run(workers, func(w int) {
		carry[w] = f.processTiles(x, y, sc.tLo[w], sc.tHi[w], sc.carryRow[w], sc.minSeg[w])
	})
	for w := 0; w < workers; w++ {
		if sc.carryRow[w] >= 0 {
			y[sc.carryRow[w]] += carry[w]
		}
	}
}

// MultiplyMany implements Format one vector at a time: the segmented-sum
// descriptors would need k-wide lane carries and flush slots, heavy
// machinery for a format the multi-vector workloads do not favor.
func (f *CSR5) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti("CSR5", f.rows, f.cols, y, x, k)
	multiplyManyByColumn(f, y, x, k)
}

// segOfEntry returns the segment containing nonzero g (by binary search).
func (f *CSR5) segOfEntry(g int64) int {
	lo, hi := 0, len(f.segStart)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.segStart[mid] <= g {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// String describes the tile geometry.
func (f *CSR5) String() string {
	return fmt.Sprintf("CSR5{%d tiles of %dx%d}", f.tiles, Omega, Sigma)
}
