package formats

import (
	"context"

	"repro/internal/exec"
	"repro/internal/sched"
)

// cancelGrain is the approximate number of work items (nonzeros / padded
// slots, times the RHS count k) a lane processes between cancellation
// polls on the Ctx kernel paths. At typical SpMV rates of a few items per
// nanosecond, 1<<18 items bounds the poll interval — and therefore the
// cancellation latency — around a hundred microseconds per lane, while
// keeping the poll itself (one atomic load) far below measurement noise.
const cancelGrain = 1 << 18

// ctxGrain scales the per-poll chunk to the RHS count: a fused k-wide
// kernel does k times the work per matrix item, so the chunk shrinks to
// keep the wall-clock poll interval flat. The floor keeps degenerate k
// from turning the chunk loop itself into overhead.
func ctxGrain(k int) int64 {
	g := int64(cancelGrain) / int64(k)
	if g < exec.MinGrain {
		g = exec.MinGrain
	}
	return g
}

// chunkCtx invokes kern over [lo, hi) in sub-ranges of roughly grain work
// items, polling ctl for cancellation between sub-ranges. cum(i) is any
// monotone cumulative work measure — CSR passes its row pointer, ELL
// rows-times-width, SELL-C-s its chunk pointer — evaluated once per
// sub-range boundary, never in kernel inner loops. A nil ctl runs [lo, hi)
// in one call: the uncancellable path pays nothing.
func chunkCtx(ctl *exec.Ctl, lo, hi int, grain int64, cum func(i int) int64, kern func(lo, hi int)) {
	if ctl == nil {
		kern(lo, hi)
		return
	}
	for lo < hi {
		if ctl.Cancelled() {
			return
		}
		end := lo + 1
		start := cum(lo)
		for end < hi && cum(end)-start < grain {
			end++
		}
		kern(lo, end)
		lo = end
	}
}

// ctlErr reports the outcome of a serial chunked sweep: the context's
// error when the sweep stopped on cancellation, nil when it ran to
// completion (including on a nil ctl).
func ctlErr(ctl *exec.Ctl) error {
	if ctl.Cancelled() {
		return ctl.Err()
	}
	return nil
}

// ContextFormat is implemented by formats whose kernels natively honor a
// context: lanes poll cancellation at chunk granularity (see cancelGrain),
// so a cancelled call returns within a bounded latency instead of
// finishing its sweep. The CSR family, ELL and SELL-C-s implement it; the
// package-level SpMVCtx / MultiplyManyCtx helpers give every other format
// a documented run-to-completion fallback.
type ContextFormat interface {
	Format
	// SpMVCtx computes y = A*x in parallel under ctx. A cancelled or
	// expired context makes it return the context's error; y then holds a
	// partial result and must not be used.
	SpMVCtx(ctx context.Context, x, y []float64, workers int) error
	// MultiplyManyCtx computes Y = A*X for k right-hand sides under ctx,
	// with the same partial-result contract.
	MultiplyManyCtx(ctx context.Context, y, x []float64, k int) error
}

// SpMVCtx computes y = A*x under ctx for any format. Formats implementing
// ContextFormat stop at their next chunk boundary after cancellation;
// other formats check the context once before dispatch and then run their
// sweep to completion, so cancellation latency degrades to the sweep time
// but the result and error contract stay identical. In both cases a panic
// on a parallel worker lane is contained by the engine and returned as a
// *exec.PanicError instead of crashing the process.
func SpMVCtx(ctx context.Context, f Format, x, y []float64, workers int) error {
	if cf, ok := f.(ContextFormat); ok {
		return contain(func() error { return cf.SpMVCtx(ctx, x, y, workers) })
	}
	if ctl := exec.NewCtl(ctx); ctl.Cancelled() {
		return ctl.Err()
	}
	return contain(func() error { f.SpMVParallel(x, y, workers); return nil })
}

// MultiplyManyCtx computes Y = A*X for k right-hand sides under ctx for
// any format, with SpMVCtx's fallback and containment semantics.
func MultiplyManyCtx(ctx context.Context, f Format, y, x []float64, k int) error {
	if cf, ok := f.(ContextFormat); ok {
		return contain(func() error { return cf.MultiplyManyCtx(ctx, y, x, k) })
	}
	if ctl := exec.NewCtl(ctx); ctl.Cancelled() {
		return ctl.Err()
	}
	return contain(func() error { f.MultiplyMany(y, x, k); return nil })
}

// contain runs one dispatch and converts an engine-contained lane panic
// (re-panicked as *exec.PanicError by the legacy Run entry points) into an
// error, so the Ctx API never panics for worker faults. Other panics —
// shape-check programmer errors — propagate unchanged.
func contain(run func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*exec.PanicError)
			if !ok {
				panic(r)
			}
			err = pe
		}
	}()
	return run()
}

// --- CSR family ---

// rowCum is the CSR cumulative work measure: nonzeros plus a row visit
// each, matching work().
func (f *CSR) rowCum(i int) int64 { return int64(f.rowPtr[i]) + int64(i) }

// SpMVCtx implements ContextFormat.
func (f *CSR) SpMVCtx(ctx context.Context, x, y []float64, workers int) error {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	return f.spmvCtx(ctx, x, y, workers, sched.RowBlocks, func(lo, hi int) {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, lo, hi)
	})
}

// spmvCtx dispatches a chunk-polling single-vector sweep under the given
// partition policy; the CSR variants reuse it with their own kernels.
func (f *CSR) spmvCtx(ctx context.Context, x, y []float64, workers int, policy sched.Partitioner, kern func(lo, hi int)) error {
	ctl := exec.NewCtl(ctx)
	workers = exec.Workers(f.work(), workers)
	if workers <= 1 {
		chunkCtx(ctl, 0, f.rows, ctxGrain(1), f.rowCum, kern)
		return ctlErr(ctl)
	}
	g := exec.AcquireCtl(workers, ctl)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.rangePlan(&g, policy)
	ranges := pl.Ranges
	return g.RunPlanCtx(pl, func(w int) {
		chunkCtx(ctl, ranges[w].RowLo, ranges[w].RowHi, ctxGrain(1), f.rowCum, kern)
	})
}

// MultiplyManyCtx implements ContextFormat.
func (f *CSR) MultiplyManyCtx(ctx context.Context, y, x []float64, k int) error {
	checkShapeMulti(f.Name(), f.rows, f.cols, y, x, k)
	return f.multiplyManyCtx(ctx, y, x, k, sched.RowBlocks)
}

// multiplyManyCtx dispatches the chunk-polling fused kernel under the
// given partition policy; Bal-CSR and MKL-IE reuse it with their splits.
func (f *CSR) multiplyManyCtx(ctx context.Context, y, x []float64, k int, policy sched.Partitioner) error {
	ctl := exec.NewCtl(ctx)
	workers := exec.Workers(f.work()*int64(k), exec.MaxWorkers())
	kern := func(lo, hi int) {
		csrRowRangeMulti(f.rowPtr, f.colIdx, f.val, x, y, k, lo, hi, !f.noWideTiles)
	}
	if workers <= 1 {
		chunkCtx(ctl, 0, f.rows, ctxGrain(k), f.rowCum, kern)
		return ctlErr(ctl)
	}
	g := exec.AcquireCtl(workers, ctl)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.rangePlan(&g, policy)
	ranges := pl.Ranges
	return g.RunPlanCtx(pl, func(w int) {
		chunkCtx(ctl, ranges[w].RowLo, ranges[w].RowHi, ctxGrain(k), f.rowCum, kern)
	})
}

// SpMVCtx implements ContextFormat with the unrolled kernel.
func (f *VecCSR) SpMVCtx(ctx context.Context, x, y []float64, workers int) error {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	return f.spmvCtx(ctx, x, y, workers, sched.RowBlocks, func(lo, hi int) {
		vecCSRRowRange(f.rowPtr, f.colIdx, f.val, x, y, lo, hi, f.wideRowMin)
	})
}

// SpMVCtx implements ContextFormat over nonzero-balanced blocks.
func (f *BalCSR) SpMVCtx(ctx context.Context, x, y []float64, workers int) error {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	return f.spmvCtx(ctx, x, y, workers, sched.NNZBalanced, func(lo, hi int) {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, lo, hi)
	})
}

// MultiplyManyCtx implements ContextFormat over nonzero-balanced blocks.
func (f *BalCSR) MultiplyManyCtx(ctx context.Context, y, x []float64, k int) error {
	checkShapeMulti(f.Name(), f.rows, f.cols, y, x, k)
	return f.multiplyManyCtx(ctx, y, x, k, sched.NNZBalanced)
}

// SpMVCtx implements ContextFormat under the inspected execution strategy.
func (f *InspectorCSR) SpMVCtx(ctx context.Context, x, y []float64, workers int) error {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	return f.spmvCtx(ctx, x, y, workers, f.policy(), func(lo, hi int) {
		f.rowRange(x, y, lo, hi)
	})
}

// MultiplyManyCtx implements ContextFormat under the inspected partition.
func (f *InspectorCSR) MultiplyManyCtx(ctx context.Context, y, x []float64, k int) error {
	checkShapeMulti(f.Name(), f.rows, f.cols, y, x, k)
	return f.multiplyManyCtx(ctx, y, x, k, f.policy())
}

// SpMVCtx overrides the implementation promoted from the embedded CSR:
// Merge-CSR's plan cache holds merge-path item ranges (with carry scratch)
// under the very PlanKeys the inherited chunked row sweep would probe, so
// running it would misread those ranges as row bounds. Until a native
// merge-path Ctx kernel exists, Merge-CSR takes the documented
// run-to-completion fallback: cancellation is checked before dispatch
// only.
func (f *MergeCSR) SpMVCtx(ctx context.Context, x, y []float64, workers int) error {
	if ctl := exec.NewCtl(ctx); ctl.Cancelled() {
		return ctl.Err()
	}
	f.SpMVParallel(x, y, workers)
	return nil
}

// MultiplyManyCtx overrides the promoted CSR implementation for the same
// plan-cache reason as SpMVCtx (the fused path keeps its ranges in a
// second cache the inherited sweep does not use).
func (f *MergeCSR) MultiplyManyCtx(ctx context.Context, y, x []float64, k int) error {
	if ctl := exec.NewCtl(ctx); ctl.Cancelled() {
		return ctl.Err()
	}
	f.MultiplyMany(y, x, k)
	return nil
}

// --- ELL ---

// slotCum is the ELL cumulative work measure: every row costs exactly
// width padded slots.
func (f *ELL) slotCum(i int) int64 {
	w := int64(f.width)
	if w < 1 {
		w = 1
	}
	return int64(i) * w
}

// SpMVCtx implements ContextFormat.
func (f *ELL) SpMVCtx(ctx context.Context, x, y []float64, workers int) error {
	checkShape("ELL", f.rows, f.cols, x, y)
	ctl := exec.NewCtl(ctx)
	workers = exec.Workers(int64(len(f.val)), workers)
	kern := func(lo, hi int) { f.rowRange(x, y, lo, hi) }
	if workers <= 1 {
		chunkCtx(ctl, 0, f.rows, ctxGrain(1), f.slotCum, kern)
		return ctlErr(ctl)
	}
	g := exec.AcquireCtl(workers, ctl)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.evenRowPlan(&g)
	ranges := pl.Ranges
	return g.RunPlanCtx(pl, func(w int) {
		chunkCtx(ctl, ranges[w].RowLo, ranges[w].RowHi, ctxGrain(1), f.slotCum, kern)
	})
}

// MultiplyManyCtx implements ContextFormat.
func (f *ELL) MultiplyManyCtx(ctx context.Context, y, x []float64, k int) error {
	checkShapeMulti("ELL", f.rows, f.cols, y, x, k)
	ctl := exec.NewCtl(ctx)
	workers := exec.Workers(int64(len(f.val))*int64(k), exec.MaxWorkers())
	kern := func(lo, hi int) { f.rowRangeMulti(x, y, k, lo, hi) }
	if workers <= 1 {
		chunkCtx(ctl, 0, f.rows, ctxGrain(k), f.slotCum, kern)
		return ctlErr(ctl)
	}
	g := exec.AcquireCtl(workers, ctl)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.evenRowPlan(&g)
	ranges := pl.Ranges
	return g.RunPlanCtx(pl, func(w int) {
		chunkCtx(ctl, ranges[w].RowLo, ranges[w].RowHi, ctxGrain(k), f.slotCum, kern)
	})
}

// --- SELL-C-sigma ---

// SpMVCtx implements ContextFormat; sub-ranges are chunk indices and the
// chunk pointer is the cumulative padded-slot measure.
func (f *SELLCS) SpMVCtx(ctx context.Context, x, y []float64, workers int) error {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	ctl := exec.NewCtl(ctx)
	nChunks := len(f.chunkLen)
	workers = exec.Workers(int64(len(f.val)), workers)
	if workers > nChunks {
		workers = nChunks
	}
	cum := func(i int) int64 { return f.chunkPtr[i] }
	kern := func(lo, hi int) { f.chunkRange(x, y, lo, hi) }
	if workers <= 1 {
		chunkCtx(ctl, 0, nChunks, ctxGrain(1), cum, kern)
		return ctlErr(ctl)
	}
	g := exec.AcquireCtl(workers, ctl)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.chunkPlan(&g)
	ranges := pl.Ranges
	return g.RunPlanCtx(pl, func(w int) {
		chunkCtx(ctl, ranges[w].RowLo, ranges[w].RowHi, ctxGrain(1), cum, kern)
	})
}

// MultiplyManyCtx implements ContextFormat.
func (f *SELLCS) MultiplyManyCtx(ctx context.Context, y, x []float64, k int) error {
	checkShapeMulti(f.Name(), f.rows, f.cols, y, x, k)
	ctl := exec.NewCtl(ctx)
	nChunks := len(f.chunkLen)
	workers := exec.Workers(int64(len(f.val))*int64(k), exec.MaxWorkers())
	if workers > nChunks {
		workers = nChunks
	}
	cum := func(i int) int64 { return f.chunkPtr[i] }
	kern := func(lo, hi int) { f.chunkRangeMulti(x, y, k, lo, hi) }
	if workers <= 1 {
		chunkCtx(ctl, 0, nChunks, ctxGrain(k), cum, kern)
		return ctlErr(ctl)
	}
	g := exec.AcquireCtl(workers, ctl)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.chunkPlan(&g)
	ranges := pl.Ranges
	return g.RunPlanCtx(pl, func(w int) {
		chunkCtx(ctl, ranges[w].RowLo, ranges[w].RowHi, ctxGrain(k), cum, kern)
	})
}

// --- Auto ---

// SpMVCtx delegates to the chosen format, through the package helper so
// non-ContextFormat choices get the documented fallback.
func (a *Auto) SpMVCtx(ctx context.Context, x, y []float64, workers int) error {
	return SpMVCtx(ctx, a.Format, x, y, workers)
}

// MultiplyManyCtx delegates like SpMVCtx.
func (a *Auto) MultiplyManyCtx(ctx context.Context, y, x []float64, k int) error {
	return MultiplyManyCtx(ctx, a.Format, y, x, k)
}
