package formats

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/testutil"
)

// ctxFormats are the formats implementing ContextFormat: the CSR family,
// ELL and SELL-C-s poll cancellation at chunk granularity; Merge-CSR
// satisfies the interface with an explicit run-to-completion fallback
// (its plan cache cannot share the inherited chunked sweep). The rest go
// through the package-helper fallback.
var ctxFormats = map[string]bool{
	"Naive-CSR": true, "Vec-CSR": true, "Bal-CSR": true, "MKL-IE": true,
	"Merge-CSR": true, "ELL": true, "SELL-C-s": true,
}

// TestCtxKernelsMatchLegacy: under a live context, SpMVCtx and
// MultiplyManyCtx must produce bit-identical results to the legacy entry
// points for every registry format (native chunk-polling implementations
// and helper fallbacks alike).
func TestCtxKernelsMatchLegacy(t *testing.T) {
	prev := exec.SetMaxWorkers(8)
	defer exec.SetMaxWorkers(prev)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // live for the duration of the test

	ms := testutil.EngineMatrices(t)
	for name, m := range testutil.Degenerate() {
		ms[name] = m
	}
	for name, m := range ms {
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				if errors.Is(err, ErrBuild) {
					continue
				}
				t.Fatalf("%s on %s: %v", b.Name, name, err)
			}
			if _, native := f.(ContextFormat); native != ctxFormats[f.Name()] {
				t.Fatalf("%s: native ContextFormat = %v, want %v", f.Name(), native, ctxFormats[f.Name()])
			}
			x := matrix.RandomVector(m.Cols, 31)
			want := make([]float64, m.Rows)
			f.SpMVParallel(x, want, 8)
			got := make([]float64, m.Rows)
			for i := range got {
				got[i] = math.NaN()
			}
			if err := SpMVCtx(ctx, f, x, got, 8); err != nil {
				t.Fatalf("%s on %s: SpMVCtx: %v", f.Name(), name, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s on %s: SpMVCtx row %d = %v, want %v", f.Name(), name, i, got[i], want[i])
				}
			}
			const k = 5
			xk := matrix.RandomVector(m.Cols*k, 41)
			wantK := make([]float64, m.Rows*k)
			f.MultiplyMany(wantK, xk, k)
			gotK := make([]float64, m.Rows*k)
			for i := range gotK {
				gotK[i] = math.NaN()
			}
			if err := MultiplyManyCtx(ctx, f, gotK, xk, k); err != nil {
				t.Fatalf("%s on %s: MultiplyManyCtx: %v", f.Name(), name, err)
			}
			for i := range gotK {
				if gotK[i] != wantK[i] {
					t.Fatalf("%s on %s: MultiplyManyCtx slot %d = %v, want %v", f.Name(), name, i, gotK[i], wantK[i])
				}
			}
		}
	}
}

// TestCtxPreCancelledReturnsImmediately: a context cancelled before the
// call must return context.Canceled for every registry format, native and
// fallback alike, without touching y.
func TestCtxPreCancelledReturnsImmediately(t *testing.T) {
	prev := exec.SetMaxWorkers(8)
	defer exec.SetMaxWorkers(prev)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	m := matrix.Random(2000, 2000, 0.01, 3)
	x := matrix.RandomVector(m.Cols, 7)
	for _, b := range Registry() {
		f, err := b.Build(m)
		if err != nil {
			continue
		}
		y := make([]float64, m.Rows)
		if err := SpMVCtx(ctx, f, x, y, 8); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: SpMVCtx on cancelled ctx = %v, want context.Canceled", f.Name(), err)
		}
		yk := make([]float64, m.Rows*3)
		xk := matrix.RandomVector(m.Cols*3, 9)
		if err := MultiplyManyCtx(ctx, f, yk, xk, 3); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: MultiplyManyCtx on cancelled ctx = %v, want context.Canceled", f.Name(), err)
		}
	}
}

// TestCtxChunkingCoversAllRows drives the serial chunked path (workers
// forced to 1) so the chunk-boundary arithmetic itself is exercised:
// every row must be written exactly as the one-shot kernel writes it.
func TestCtxChunkingCoversAllRows(t *testing.T) {
	prev := exec.SetMaxWorkers(1)
	defer exec.SetMaxWorkers(prev)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Skewed row lengths so chunk boundaries land mid-matrix.
	rowNNZ := make([]int, 300)
	for i := range rowNNZ {
		rowNNZ[i] = 1 + (i%7)*20
	}
	m := matrix.RandomRowSizes(300, 400, rowNNZ, 11)
	x := matrix.RandomVector(m.Cols, 13)
	for _, name := range []string{"Naive-CSR", "Vec-CSR", "Bal-CSR", "MKL-IE", "ELL", "SELL-C-s"} {
		b, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing builder %s", name)
		}
		f, err := b.Build(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := make([]float64, m.Rows)
		f.SpMV(x, want)
		got := make([]float64, m.Rows)
		for i := range got {
			got[i] = math.NaN()
		}
		if err := f.(ContextFormat).SpMVCtx(ctx, x, got, 1); err != nil {
			t.Fatalf("%s: SpMVCtx: %v", name, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: serial chunked row %d = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestCtxWorkerPanicBecomesError: a panic inside a parallel Ctx dispatch
// must come back as a *exec.PanicError, and the format must serve the
// next call cleanly.
func TestCtxWorkerPanicBecomesError(t *testing.T) {
	prev := exec.SetMaxWorkers(8)
	defer exec.SetMaxWorkers(prev)
	m := matrix.Random(4000, 4000, 0.01, 5)
	f := NewCSR(m)
	x := matrix.RandomVector(m.Cols, 7)
	y := make([]float64, m.Rows)

	// Model a kernel fault on one lane of a cancellable dispatch.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := exec.AcquireCtl(4, exec.NewCtl(ctx))
	err := g.RunCtx(4, func(w int) {
		if w == 1 {
			panic("lane fault")
		}
	})
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *exec.PanicError", err)
	}
	// Subsequent legit call on the same format and engine must succeed.
	if err := SpMVCtx(ctx, f, x, y, 8); err != nil {
		t.Fatalf("post-fault SpMVCtx: %v", err)
	}
}
