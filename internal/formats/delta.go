package formats

import "repro/internal/matrix"

// DeltaCOO is the fused delta pass of the update layer: a sorted additive
// COO overlay whose kernels accumulate onto an existing y through the
// same execution-engine spill-add kernels HYB uses for its COO part. A
// base+delta multiply is therefore the base format's own sweep plus one
// nnz-parallel accumulation with boundary carries — never a second full
// pass over y.
type DeltaCOO struct {
	coo *COO
}

// NewDeltaCOO wraps a compacted (row-major sorted, duplicate-free)
// additive overlay. The overlay's arrays are retained, not copied; the
// caller must treat them as immutable for the wrapper's lifetime — the
// update layer publishes each frozen overlay once and never writes to it
// again.
func NewDeltaCOO(o *matrix.COO) *DeltaCOO {
	return &DeltaCOO{coo: newCOOFromParts(o.Rows, o.Cols, o.RowIdx, o.ColIdx, o.Val)}
}

// Len returns the overlay's entry count.
func (d *DeltaCOO) Len() int { return len(d.coo.val) }

// Bytes returns the overlay's storage footprint.
func (d *DeltaCOO) Bytes() int64 { return d.coo.Bytes() }

// AddSpMV accumulates overlay times x onto y (y is NOT zeroed). The pass
// runs nnz-parallel through the execution engine, dropping to the serial
// kernel below the engine's work cutoff or when workers <= 1.
func (d *DeltaCOO) AddSpMV(x, y []float64, workers int) {
	d.coo.spmvAddParallel(x, y, workers)
}

// AddMultiplyMany accumulates the overlay's k-wide product onto the
// row-major y block (y is NOT zeroed), mirroring AddSpMV's chunking so
// each vector's accumulation order matches k single-vector adds.
func (d *DeltaCOO) AddMultiplyMany(y, x []float64, k, workers int) {
	d.coo.multiplyManyAdd(x, y, k, workers)
}
