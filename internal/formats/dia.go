package formats

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// DIA stores the matrix by diagonals (offset = col - row), the classic
// format for banded PDE matrices mentioned in the paper's related work. It
// is an extension beyond the paper's evaluated set: excellent for stencils,
// unusable for scattered sparsity, which the build gate enforces.
type DIA struct {
	rows, cols int
	nnz        int64
	offsets    []int32   // diagonal offsets, ascending
	val        []float64 // len(offsets) x rows, diagonal-major
	plans      exec.PlanCache
}

// MaxDIAFillRatio bounds accepted padding: construction fails when the
// dense diagonal slabs would exceed this multiple of the nonzero count.
const MaxDIAFillRatio = 16.0

// NewDIA builds the diagonal format, failing for matrices whose nonzeros
// spread over too many diagonals.
func NewDIA(m *matrix.CSR) (*DIA, error) {
	seen := make(map[int32]bool)
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			seen[c-int32(i)] = true
		}
	}
	if m.NNZ() > 0 {
		slab := int64(len(seen)) * int64(m.Rows)
		if ratio := float64(slab) / float64(m.NNZ()); ratio > MaxDIAFillRatio {
			return nil, fmt.Errorf("%w DIA: %d diagonals over %d rows is %.1fx the nonzero count (max %.0fx)",
				ErrBuild, len(seen), m.Rows, ratio, MaxDIAFillRatio)
		}
	}
	f := &DIA{rows: m.Rows, cols: m.Cols, nnz: int64(m.NNZ()), plans: exec.NewPlanCache()}
	f.offsets = make([]int32, 0, len(seen))
	for off := range seen {
		f.offsets = append(f.offsets, off)
	}
	sort.Slice(f.offsets, func(a, b int) bool { return f.offsets[a] < f.offsets[b] })
	index := make(map[int32]int, len(f.offsets))
	for d, off := range f.offsets {
		index[off] = d
	}
	f.val = make([]float64, len(f.offsets)*m.Rows)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			d := index[c-int32(i)]
			f.val[d*m.Rows+i] = vals[k]
		}
	}
	return f, nil
}

// Name implements Format.
func (f *DIA) Name() string { return "DIA" }

// Rows implements Format.
func (f *DIA) Rows() int { return f.rows }

// Cols implements Format.
func (f *DIA) Cols() int { return f.cols }

// NNZ implements Format.
func (f *DIA) NNZ() int64 { return f.nnz }

// Bytes implements Format: dense diagonal slabs plus the offset list.
func (f *DIA) Bytes() int64 { return int64(len(f.val))*8 + int64(len(f.offsets))*4 }

// Diagonals returns the number of stored diagonals.
func (f *DIA) Diagonals() int { return len(f.offsets) }

// Traits implements Format.
func (f *DIA) Traits() Traits {
	pad := 0.0
	if f.nnz > 0 {
		pad = float64(int64(len(f.val))-f.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: RowGranular, PaddingRatio: pad,
		MetaBytesPerNNZ: 8 * pad, Vectorizable: true}
}

// rowRange sweeps diagonal by diagonal with the in-band row span hoisted
// out of the inner loop, so the kernel is three aligned sequential streams
// with no per-element branch. Rows accumulate their diagonals in ascending
// offset order, exactly like the row-major walk, so results are
// bit-identical.
func (f *DIA) rowRange(x, y []float64, lo, hi int) {
	rows, cols := f.rows, f.cols
	for j := lo; j < hi; j++ {
		y[j] = 0
	}
	for d, off := range f.offsets {
		o := int(off)
		iLo, iHi := lo, hi
		if o < 0 && iLo < -o {
			iLo = -o
		}
		if iHi > cols-o {
			iHi = cols - o
		}
		if iLo >= iHi {
			continue
		}
		base := d * rows
		v := f.val[base+iLo : base+iHi : base+iHi]
		xs := x[iLo+o : iHi+o : iHi+o]
		ys := y[iLo:iHi:iHi]
		xs = xs[:len(v)]
		ys = ys[:len(v)]
		for j, vj := range v {
			ys[j] += vj * xs[j]
		}
	}
}

// SpMV implements Format.
func (f *DIA) SpMV(x, y []float64) {
	checkShape("DIA", f.rows, f.cols, x, y)
	f.rowRange(x, y, 0, f.rows)
}

// SpMVParallel implements Format: rows carry identical diagonal work, so
// equal row blocks are balanced.
func (f *DIA) SpMVParallel(x, y []float64, workers int) {
	checkShape("DIA", f.rows, f.cols, x, y)
	workers = exec.Workers(int64(len(f.val)), workers)
	if workers <= 1 {
		f.rowRange(x, y, 0, f.rows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.evenRowPlan(&g)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.rowRange(x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// evenRowPlan builds (or fetches) the even row partition for the grant's
// placement, shared by the single- and multi-vector dispatches.
func (f *DIA) evenRowPlan(g *exec.Grant) *exec.Plan {
	return f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		ranges, off := sched.DomainEvenRowsOff(f.rows, k.Domains, k.Workers)
		return &exec.Plan{Ranges: ranges, DomainOff: off}
	})
}

// rowRangeMulti is the fused DIA kernel. Unlike the single-vector kernel
// it walks row-major: per row and 4-vector tile the partial sums live in
// registers (the diagonal sweep would pay a y load+store per slot per
// vector, which measured slower than the baseline it must beat). The
// per-element band check the single-vector kernel hoists comes back, but
// it is amortized over the tile's four FMAs and predicts perfectly away
// from the band edges; the stride-rows slab loads stay cheap because one
// cache line covers eight consecutive rows' entries of a diagonal. Per row
// the diagonals accumulate in ascending offset order, so each vector's
// result is bit-identical to the single-vector kernel's.
func (f *DIA) rowRangeMulti(x, y []float64, k, lo, hi int) {
	rows, cols := f.rows, f.cols
	offsets, val := f.offsets, f.val
	for i := lo; i < hi; i++ {
		yi := y[i*k : i*k+k : i*k+k]
		t := 0
		for ; t+multiTile <= k; t += multiTile {
			var s0, s1, s2, s3 float64
			for d, off := range offsets {
				c := i + int(off)
				if c < 0 || c >= cols {
					continue
				}
				vj := val[d*rows+i]
				xb := c*k + t
				s0 += vj * x[xb]
				s1 += vj * x[xb+1]
				s2 += vj * x[xb+2]
				s3 += vj * x[xb+3]
			}
			yi[t], yi[t+1], yi[t+2], yi[t+3] = s0, s1, s2, s3
		}
		for ; t < k; t++ {
			var s float64
			for d, off := range offsets {
				c := i + int(off)
				if c < 0 || c >= cols {
					continue
				}
				s += val[d*rows+i] * x[c*k+t]
			}
			yi[t] = s
		}
	}
}

// MultiplyMany implements Format with the fused diagonal kernel over the
// same even row partition SpMVParallel uses.
func (f *DIA) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti("DIA", f.rows, f.cols, y, x, k)
	workers := exec.Workers(int64(len(f.val))*int64(k), exec.MaxWorkers())
	if workers <= 1 {
		f.rowRangeMulti(x, y, k, 0, f.rows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.evenRowPlan(&g)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.rowRangeMulti(x, y, k, ranges[w].RowLo, ranges[w].RowHi)
	})
}
