package formats

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/sched"
)

// ELL stores the matrix as dense rows x width column-major arrays, padding
// every row to the length of the longest. It vectorizes well on balanced
// matrices and degrades badly under row-length skew (Section II-B.3).
type ELL struct {
	rows, cols int
	width      int
	nnz        int64
	colIdx     []int32   // rows*width, column-major: entry (i, k) at k*rows+i
	val        []float64 // same layout; padding entries hold value 0, col 0
}

// MaxELLPaddedEntries bounds the dense ELL allocation; construction fails
// beyond it, mirroring the memory blow-up that makes ELL unusable for
// heavily skewed matrices.
const MaxELLPaddedEntries = 1 << 28

// NewELL builds the ELL format. It fails when rows*maxRowLen exceeds
// MaxELLPaddedEntries.
func NewELL(m *matrix.CSR) (*ELL, error) {
	width := m.MaxRowNNZ()
	if width == 0 {
		width = 1
	}
	padded := int64(m.Rows) * int64(width)
	if padded > MaxELLPaddedEntries {
		return nil, fmt.Errorf("%w ELL: %d rows x width %d = %d padded entries (max %d)",
			ErrBuild, m.Rows, width, padded, int64(MaxELLPaddedEntries))
	}
	f := &ELL{
		rows: m.Rows, cols: m.Cols, width: width, nnz: int64(m.NNZ()),
		colIdx: make([]int32, padded),
		val:    make([]float64, padded),
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			f.colIdx[k*m.Rows+i] = c
			f.val[k*m.Rows+i] = vals[k]
		}
		// Padding slots keep colIdx 0 and val 0; 0*x[0] contributes nothing
		// for finite x.
	}
	return f, nil
}

// Name implements Format.
func (f *ELL) Name() string { return "ELL" }

// Rows implements Format.
func (f *ELL) Rows() int { return f.rows }

// Cols implements Format.
func (f *ELL) Cols() int { return f.cols }

// NNZ implements Format.
func (f *ELL) NNZ() int64 { return f.nnz }

// Width returns the padded row length.
func (f *ELL) Width() int { return f.width }

// Bytes implements Format: 12 bytes per padded slot.
func (f *ELL) Bytes() int64 { return int64(len(f.val)) * 12 }

// Traits implements Format.
func (f *ELL) Traits() Traits {
	pad := 0.0
	meta := 4.0
	if f.nnz > 0 {
		pad = float64(int64(len(f.val))-f.nnz) / float64(f.nnz)
		meta = float64(f.Bytes()-8*f.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: RowGranular, PaddingRatio: pad, MetaBytesPerNNZ: meta, Vectorizable: true}
}

func (f *ELL) rowRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := 0; k < f.width; k++ {
			at := k*f.rows + i
			sum += f.val[at] * x[f.colIdx[at]]
		}
		y[i] = sum
	}
}

// SpMV implements Format.
func (f *ELL) SpMV(x, y []float64) {
	checkShape("ELL", f.rows, f.cols, x, y)
	f.rowRange(x, y, 0, f.rows)
}

// SpMVParallel implements Format. Every row costs exactly width slots, so
// equal row blocks are perfectly balanced in stored work (the imbalance
// moved into the padding itself).
func (f *ELL) SpMVParallel(x, y []float64, workers int) {
	checkShape("ELL", f.rows, f.cols, x, y)
	ranges := sched.RowBlocks(syntheticRowPtr(f.rows), workers)
	runWorkers(len(ranges), func(w int) {
		f.rowRange(x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// syntheticRowPtr builds a trivial row pointer (one slot per row) for
// formats that partition by row count alone.
func syntheticRowPtr(rows int) []int32 {
	p := make([]int32, rows+1)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// HYB combines an ELL part holding the first k entries of every row with a
// COO part holding the spill, k set to the average row length
// (Section II-B.3). It keeps ELL's vectorization without its worst-case
// padding.
type HYB struct {
	rows, cols int
	nnz        int64
	ell        *ELL
	spill      *COO
}

// NewHYB builds the hybrid format with the threshold at the mean row length.
func NewHYB(m *matrix.CSR) (*HYB, error) {
	k := int(m.AvgRowNNZ() + 0.5)
	if k < 1 {
		k = 1
	}
	return NewHYBThreshold(m, k)
}

// NewHYBThreshold builds HYB with an explicit ELL width k (exposed for the
// ablation study of the split heuristic).
func NewHYBThreshold(m *matrix.CSR, k int) (*HYB, error) {
	if k < 0 {
		return nil, fmt.Errorf("%w HYB: negative threshold %d", ErrBuild, k)
	}
	padded := int64(m.Rows) * int64(k)
	if padded > MaxELLPaddedEntries {
		return nil, fmt.Errorf("%w HYB: threshold %d over %d rows exceeds padding bound", ErrBuild, k, m.Rows)
	}
	ellPart := &ELL{
		rows: m.Rows, cols: m.Cols, width: k,
		colIdx: make([]int32, padded),
		val:    make([]float64, padded),
	}
	spill := matrix.NewCOO(m.Rows, m.Cols, 0)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for j, c := range cols {
			if j < k {
				ellPart.colIdx[j*m.Rows+i] = c
				ellPart.val[j*m.Rows+i] = vals[j]
				ellPart.nnz++
			} else {
				spill.Append(int32(i), c, vals[j])
			}
		}
	}
	f := &HYB{
		rows: m.Rows, cols: m.Cols, nnz: int64(m.NNZ()),
		ell:   ellPart,
		spill: &COO{rows: m.Rows, cols: m.Cols, rowIdx: spill.RowIdx, colIdx: spill.ColIdx, val: spill.Val},
	}
	return f, nil
}

// Name implements Format.
func (f *HYB) Name() string { return "HYB" }

// Rows implements Format.
func (f *HYB) Rows() int { return f.rows }

// Cols implements Format.
func (f *HYB) Cols() int { return f.cols }

// NNZ implements Format.
func (f *HYB) NNZ() int64 { return f.nnz }

// Bytes implements Format.
func (f *HYB) Bytes() int64 { return f.ell.Bytes() + f.spill.Bytes() }

// SpillNNZ returns the number of entries in the COO spill part.
func (f *HYB) SpillNNZ() int64 { return f.spill.NNZ() }

// Traits implements Format.
func (f *HYB) Traits() Traits {
	pad := 0.0
	if f.nnz > 0 {
		pad = float64(int64(len(f.ell.val))-f.ell.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: NNZGranular, PaddingRatio: pad,
		MetaBytesPerNNZ: float64(f.Bytes()-8*f.nnz) / float64(max64(f.nnz, 1)), Vectorizable: true}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SpMV implements Format.
func (f *HYB) SpMV(x, y []float64) {
	checkShape("HYB", f.rows, f.cols, x, y)
	f.ell.SpMV(x, y)
	// Accumulate the spill on top of the ELL result.
	for k := range f.spill.val {
		y[f.spill.rowIdx[k]] += f.spill.val[k] * x[f.spill.colIdx[k]]
	}
}

// SpMVParallel implements Format: the ELL part runs row-parallel, then the
// COO spill runs nnz-parallel with boundary carries.
func (f *HYB) SpMVParallel(x, y []float64, workers int) {
	checkShape("HYB", f.rows, f.cols, x, y)
	f.ell.SpMVParallel(x, y, workers)
	f.spill.spmvAddParallel(x, y, workers)
}

// spmvAddParallel accumulates the COO product onto an existing y (used by
// HYB, which must not zero the ELL part's contribution).
func (f *COO) spmvAddParallel(x, y []float64, workers int) {
	n := len(f.val)
	if n == 0 {
		return
	}
	if workers <= 1 || n < 2*workers {
		for k := range f.val {
			y[f.rowIdx[k]] += f.val[k] * x[f.colIdx[k]]
		}
		return
	}
	type carry struct {
		row int32
		sum float64
	}
	carries := make([][]carry, workers)
	runWorkers(workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		var local []carry
		k := lo
		for k < hi {
			row := f.rowIdx[k]
			sum := 0.0
			for k < hi && f.rowIdx[k] == row {
				sum += f.val[k] * x[f.colIdx[k]]
				k++
			}
			// A row is unsafe if it may be shared with a neighboring chunk.
			sharedLeft := lo > 0 && f.rowIdx[lo-1] == row
			sharedRight := k == hi && hi < n && f.rowIdx[hi] == row
			if sharedLeft || sharedRight {
				local = append(local, carry{row, sum})
			} else {
				y[row] += sum
			}
		}
		carries[w] = local
	})
	for _, local := range carries {
		for _, c := range local {
			y[c.row] += c.sum
		}
	}
}
