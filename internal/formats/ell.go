package formats

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/simd"
)

// ELL stores the matrix as dense rows x width column-major arrays, padding
// every row to the length of the longest. It vectorizes well on balanced
// matrices and degrades badly under row-length skew (Section II-B.3).
type ELL struct {
	rows, cols int
	width      int
	nnz        int64
	colIdx     []int32   // rows*width, column-major: entry (i, k) at k*rows+i
	val        []float64 // same layout; padding entries hold value 0, col 0
	rowLen     []int32   // stored entries per row (excludes tail padding)
	plans      exec.PlanCache
	// noWideTiles disables the 8-vector SpMM register tile (see CSR).
	noWideTiles bool
}

// SetWideTiles toggles the 8-vector SpMM register tile (WideTiler).
func (f *ELL) SetWideTiles(on bool) { f.noWideTiles = !on }

// MaxELLPaddedEntries bounds the dense ELL allocation; construction fails
// beyond it, mirroring the memory blow-up that makes ELL unusable for
// heavily skewed matrices.
const MaxELLPaddedEntries = 1 << 28

// newELLShell allocates an empty ELL slab for the given geometry.
func newELLShell(rows, cols, width int) *ELL {
	padded := int64(rows) * int64(width)
	return &ELL{
		rows: rows, cols: cols, width: width,
		colIdx: make([]int32, padded),
		val:    make([]float64, padded),
		rowLen: make([]int32, rows),
		plans:  exec.NewPlanCache(),
	}
}

// NewELL builds the ELL format. It fails when rows*maxRowLen exceeds
// MaxELLPaddedEntries.
func NewELL(m *matrix.CSR) (*ELL, error) {
	width := m.MaxRowNNZ()
	if width == 0 {
		width = 1
	}
	padded := int64(m.Rows) * int64(width)
	if padded > MaxELLPaddedEntries {
		return nil, fmt.Errorf("%w ELL: %d rows x width %d = %d padded entries (max %d)",
			ErrBuild, m.Rows, width, padded, int64(MaxELLPaddedEntries))
	}
	f := newELLShell(m.Rows, m.Cols, width)
	f.nnz = int64(m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		f.rowLen[i] = int32(len(cols))
		for k, c := range cols {
			f.colIdx[k*m.Rows+i] = c
			f.val[k*m.Rows+i] = vals[k]
		}
		// Padding slots keep colIdx 0 and val 0; 0*x[0] contributes nothing
		// for finite x.
	}
	return f, nil
}

// Name implements Format.
func (f *ELL) Name() string { return "ELL" }

// Rows implements Format.
func (f *ELL) Rows() int { return f.rows }

// Cols implements Format.
func (f *ELL) Cols() int { return f.cols }

// NNZ implements Format.
func (f *ELL) NNZ() int64 { return f.nnz }

// Width returns the padded row length.
func (f *ELL) Width() int { return f.width }

// Bytes implements Format: 12 bytes per padded slot, plus the per-row
// length table the fused multi-vector kernel uses to skip tail padding.
func (f *ELL) Bytes() int64 { return int64(len(f.val))*12 + int64(len(f.rowLen))*4 }

// Traits implements Format.
func (f *ELL) Traits() Traits {
	pad := 0.0
	meta := 4.0
	if f.nnz > 0 {
		pad = float64(int64(len(f.val))-f.nnz) / float64(f.nnz)
		meta = float64(f.Bytes()-8*f.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: RowGranular, PaddingRatio: pad, MetaBytesPerNNZ: meta, Vectorizable: true, ColumnMajor: true}
}

// rowRange walks the slab column by column so every access is sequential —
// the row-by-row order of the seed kernel strode by `rows` elements and
// thrashed the cache. Per row the products still accumulate in ascending k
// order, so results are bit-identical to the row-major walk.
func (f *ELL) rowRange(x, y []float64, lo, hi int) {
	rows := f.rows
	yy := y[lo:hi:hi]
	for j := range yy {
		yy[j] = 0
	}
	if simd.Enabled() {
		// Dispatched path: one vectorized axpy-gather per slab column —
		// same column order, one mul-then-add per element, bit-identical.
		for k := 0; k < f.width; k++ {
			base := k * rows
			simd.AxpyGather(yy, f.val[base+lo:base+hi], f.colIdx[base+lo:base+hi], x)
		}
		return
	}
	for k := 0; k < f.width; k++ {
		base := k * rows
		c := f.colIdx[base+lo : base+hi : base+hi]
		v := f.val[base+lo : base+hi : base+hi]
		v = v[:len(c)]
		for j, cj := range c {
			yy[j] += v[j] * x[cj]
		}
	}
}

// SpMV implements Format.
func (f *ELL) SpMV(x, y []float64) {
	checkShape("ELL", f.rows, f.cols, x, y)
	f.rowRange(x, y, 0, f.rows)
}

// SpMVParallel implements Format. Every row costs exactly width slots, so
// equal row blocks are perfectly balanced in stored work (the imbalance
// moved into the padding itself).
func (f *ELL) SpMVParallel(x, y []float64, workers int) {
	checkShape("ELL", f.rows, f.cols, x, y)
	workers = exec.Workers(int64(len(f.val)), workers)
	if workers <= 1 {
		f.rowRange(x, y, 0, f.rows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.evenRowPlan(&g)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.rowRange(x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// evenRowPlan builds (or fetches) the even row partition for the grant's
// placement, shared by the single- and multi-vector dispatches.
func (f *ELL) evenRowPlan(g *exec.Grant) *exec.Plan {
	return f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		ranges, off := sched.DomainEvenRowsOff(f.rows, k.Domains, k.Workers)
		return &exec.Plan{Ranges: ranges, DomainOff: off}
	})
}

// rowRangeMulti is the fused ELL kernel. Unlike the single-vector kernel
// it walks the slab row-major with the row-length table bounding each
// walk: per row and 4-vector tile the partial sums live in registers, and
// tail padding — the bulk of a skewed matrix's slab, which the baseline
// must stream k times — is never touched at all. (Two alternatives
// measured slower: a row-tiled column sweep pays a y load+store per slot
// per vector, and a padded row-major walk wastes its loads on the padding
// it cannot skip.) The stride-rows slab loads stay cheap because one cache
// line covers eight consecutive rows' entries of a slab column. Per row
// the columns accumulate in ascending order and skipped padding
// contributes exactly +0.0, so each vector's result is bit-identical to
// the single-vector kernel's.
func (f *ELL) rowRangeMulti(x, y []float64, k, lo, hi int) {
	rows := f.rows
	colIdx, val, rowLen := f.colIdx, f.val, f.rowLen
	useSIMD := simd.Enabled()
	wide := !f.noWideTiles && useSIMD && simd.Width() >= 8
	for i := lo; i < hi; i++ {
		wi := int(rowLen[i])
		yi := y[i*k : i*k+k : i*k+k]
		t := 0
		if wide && wi >= simdMinN {
			for ; t+multiTile8 <= k; t += multiTile8 {
				d := simd.DotBcastTile8(val[i:], colIdx[i:], x[t:], rows, wi, k)
				copy(yi[t:t+multiTile8], d[:])
			}
		}
		if useSIMD && wi >= simdMinN {
			// Dispatched path: broadcast-tile over the strided slab row.
			// Per tile vector a sequential mul-then-add sum in ascending
			// column order — bit-identical.
			for ; t+multiTile <= k; t += multiTile {
				d := simd.DotBcastTile(val[i:], colIdx[i:], x[t:], rows, wi, k)
				yi[t], yi[t+1], yi[t+2], yi[t+3] = d[0], d[1], d[2], d[3]
			}
		}
		for ; t+multiTile <= k; t += multiTile {
			var s0, s1, s2, s3 float64
			at := i
			for kc := 0; kc < wi; kc++ {
				vj := val[at]
				xb := int(colIdx[at])*k + t
				at += rows
				s0 += vj * x[xb]
				s1 += vj * x[xb+1]
				s2 += vj * x[xb+2]
				s3 += vj * x[xb+3]
			}
			yi[t], yi[t+1], yi[t+2], yi[t+3] = s0, s1, s2, s3
		}
		for ; t < k; t++ {
			var s float64
			at := i
			for kc := 0; kc < wi; kc++ {
				s += val[at] * x[int(colIdx[at])*k+t]
				at += rows
			}
			yi[t] = s
		}
	}
}

// MultiplyMany implements Format with the fused slab kernel over the same
// even row partition SpMVParallel uses.
func (f *ELL) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti("ELL", f.rows, f.cols, y, x, k)
	workers := exec.Workers(int64(len(f.val))*int64(k), exec.MaxWorkers())
	if workers <= 1 {
		f.rowRangeMulti(x, y, k, 0, f.rows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.evenRowPlan(&g)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.rowRangeMulti(x, y, k, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// HYB combines an ELL part holding the first k entries of every row with a
// COO part holding the spill, k set to the average row length
// (Section II-B.3). It keeps ELL's vectorization without its worst-case
// padding.
type HYB struct {
	rows, cols int
	nnz        int64
	ell        *ELL
	spill      *COO
}

// SetWideTiles toggles the 8-vector SpMM register tile of the ELL part
// (the COO spill has no fused wide tile) — WideTiler.
func (f *HYB) SetWideTiles(on bool) { f.ell.SetWideTiles(on) }

// NewHYB builds the hybrid format with the threshold at the mean row length.
func NewHYB(m *matrix.CSR) (*HYB, error) {
	k := int(m.AvgRowNNZ() + 0.5)
	if k < 1 {
		k = 1
	}
	return NewHYBThreshold(m, k)
}

// NewHYBThreshold builds HYB with an explicit ELL width k (exposed for the
// ablation study of the split heuristic).
func NewHYBThreshold(m *matrix.CSR, k int) (*HYB, error) {
	if k < 0 {
		return nil, fmt.Errorf("%w HYB: negative threshold %d", ErrBuild, k)
	}
	if int64(m.Rows)*int64(k) > MaxELLPaddedEntries {
		return nil, fmt.Errorf("%w HYB: threshold %d over %d rows exceeds padding bound", ErrBuild, k, m.Rows)
	}
	ellPart := newELLShell(m.Rows, m.Cols, k)
	spill := matrix.NewCOO(m.Rows, m.Cols, 0)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for j, c := range cols {
			if j < k {
				ellPart.colIdx[j*m.Rows+i] = c
				ellPart.val[j*m.Rows+i] = vals[j]
				ellPart.nnz++
			} else {
				spill.Append(int32(i), c, vals[j])
			}
		}
		if n := len(cols); n < k {
			ellPart.rowLen[i] = int32(n)
		} else {
			ellPart.rowLen[i] = int32(k)
		}
	}
	f := &HYB{
		rows: m.Rows, cols: m.Cols, nnz: int64(m.NNZ()),
		ell:   ellPart,
		spill: newCOOFromParts(m.Rows, m.Cols, spill.RowIdx, spill.ColIdx, spill.Val),
	}
	return f, nil
}

// Name implements Format.
func (f *HYB) Name() string { return "HYB" }

// Rows implements Format.
func (f *HYB) Rows() int { return f.rows }

// Cols implements Format.
func (f *HYB) Cols() int { return f.cols }

// NNZ implements Format.
func (f *HYB) NNZ() int64 { return f.nnz }

// Bytes implements Format.
func (f *HYB) Bytes() int64 { return f.ell.Bytes() + f.spill.Bytes() }

// SpillNNZ returns the number of entries in the COO spill part.
func (f *HYB) SpillNNZ() int64 { return f.spill.NNZ() }

// Traits implements Format.
func (f *HYB) Traits() Traits {
	pad := 0.0
	if f.nnz > 0 {
		pad = float64(int64(len(f.ell.val))-f.ell.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: NNZGranular, PaddingRatio: pad,
		MetaBytesPerNNZ: float64(f.Bytes()-8*f.nnz) / float64(max64(f.nnz, 1)), Vectorizable: true, ColumnMajor: true}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SpMV implements Format.
func (f *HYB) SpMV(x, y []float64) {
	checkShape("HYB", f.rows, f.cols, x, y)
	f.ell.SpMV(x, y)
	f.spill.spmvAddSerial(x, y)
}

// spmvAddSerial accumulates the row-sorted COO product onto an existing y,
// building each row's sum in a register.
func (f *COO) spmvAddSerial(x, y []float64) {
	rowIdx, colIdx, val := f.rowIdx, f.colIdx, f.val
	n := len(val)
	k := 0
	for k < n {
		row := rowIdx[k]
		sum := 0.0
		for k < n && rowIdx[k] == row {
			sum += val[k] * x[colIdx[k]]
			k++
		}
		y[row] += sum
	}
}

// SpMVParallel implements Format: the ELL part runs row-parallel, then the
// COO spill runs nnz-parallel with boundary carries.
func (f *HYB) SpMVParallel(x, y []float64, workers int) {
	checkShape("HYB", f.rows, f.cols, x, y)
	f.ell.SpMVParallel(x, y, workers)
	f.spill.spmvAddParallel(x, y, workers)
}

// MultiplyMany implements Format with the fused two-phase kernel: the ELL
// part runs its fused slab kernel (rowLen table skipping tail padding),
// then the COO spill accumulates k-wide on top with the same entry
// chunking and boundary-carry merge order as the single-vector spill add —
// so each vector's result is bit-identical to the by-column fallback this
// kernel replaced (the ELL part is row-granular and the spill partitions
// by entry count alone, making every per-row accumulation order match).
func (f *HYB) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti("HYB", f.rows, f.cols, y, x, k)
	f.ell.MultiplyMany(y, x, k)
	f.spill.multiplyManyAdd(x, y, k, exec.MaxWorkers())
}

// multiplyManyAddSerial accumulates the row-sorted COO product of a k-wide
// block onto an existing Y: per row run, per 4-vector register tile, the
// run streams once — the k-wide twin of spmvAddSerial, accumulating each
// vector's row sum in the same ascending entry order.
func (f *COO) multiplyManyAddSerial(x, y []float64, k int) {
	rowIdx, colIdx, val := f.rowIdx, f.colIdx, f.val
	n := len(val)
	e := 0
	for e < n {
		row := int(rowIdx[e])
		re := e + 1
		for re < n && int(rowIdx[re]) == row {
			re++
		}
		cooRunInto(colIdx, val, x, y[row*k:row*k+k], k, e, re)
		e = re
	}
}

// cooMultiAddCarry is one deferred k-wide row contribution.
type cooMultiAddCarry struct {
	row  int32
	sums []float64 // k partial sums, backed by the scratch arena
}

// cooMultiAddScratch is the plan-cached carry state of multiplyManyAdd:
// per worker, the (at most two) boundary rows of its entry chunk with
// their k-wide partial sums. The arena is sized workers*2*k for the
// largest k this plan has served and grows under the plan lock.
type cooMultiAddScratch struct {
	carries [][]cooMultiAddCarry
	arena   []float64
}

// multiplyManyAdd accumulates the k-wide COO product onto an existing Y
// (used by HYB, which must not zero the ELL part's contribution). The
// entry chunks, serial cutoff and carry merge order deliberately mirror
// spmvAddParallel exactly — same workers, same boundaries — so each
// vector's accumulation order, and therefore its rounding, is identical to
// k single-vector spill adds.
func (f *COO) multiplyManyAdd(x, y []float64, k, workers int) {
	n := len(f.val)
	if n == 0 {
		return
	}
	workers = exec.Workers(int64(n), workers)
	if workers <= 1 || n < 2*workers {
		f.multiplyManyAddSerial(x, y, k)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.maddPlans.Get(g.Key(), func(kk exec.PlanKey) *exec.Plan {
		return &exec.Plan{Scratch: &cooMultiAddScratch{carries: make([][]cooMultiAddCarry, kk.Workers)}}
	})
	sc := pl.Scratch.(*cooMultiAddScratch)
	if pl.TryLock() {
		defer pl.Unlock()
		if len(sc.arena) < workers*2*k {
			sc.arena = make([]float64, workers*2*k)
		}
	} else {
		// Another call on this plan is mid-flight: private carry state keeps
		// concurrent invocations fully parallel.
		sc = &cooMultiAddScratch{
			carries: make([][]cooMultiAddCarry, workers),
			arena:   make([]float64, workers*2*k),
		}
	}
	rowIdx, colIdx, val := f.rowIdx, f.colIdx, f.val
	g.Run(workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		local := sc.carries[w][:0]
		arena := sc.arena[w*2*k : (w+1)*2*k]
		used := 0
		e := lo
		for e < hi {
			row := rowIdx[e]
			re := e + 1
			for re < hi && rowIdx[re] == row {
				re++
			}
			// A row is unsafe if it may be shared with a neighboring chunk.
			sharedLeft := lo > 0 && rowIdx[lo-1] == row
			sharedRight := re == hi && hi < n && rowIdx[hi] == row
			if sharedLeft || sharedRight {
				sums := arena[used*k : used*k+k]
				used++
				zero(sums)
				cooRunInto(colIdx, val, x, sums, k, e, re)
				local = append(local, cooMultiAddCarry{row, sums})
			} else {
				cooRunInto(colIdx, val, x, y[int(row)*k:int(row)*k+k], k, e, re)
			}
			e = re
		}
		sc.carries[w] = local
	})
	for _, local := range sc.carries {
		for _, c := range local {
			yb := y[int(c.row)*k : int(c.row)*k+k]
			for t, s := range c.sums {
				yb[t] += s
			}
		}
	}
}

// cooCarry is one deferred row contribution of the spill-add kernel.
type cooCarry struct {
	row int32
	sum float64
}

// cooAddScratch is the plan-cached carry state of spmvAddParallel: one
// reusable carry list per worker.
type cooAddScratch struct {
	carries [][]cooCarry
}

// spmvAddParallel accumulates the COO product onto an existing y (used by
// HYB, which must not zero the ELL part's contribution).
func (f *COO) spmvAddParallel(x, y []float64, workers int) {
	n := len(f.val)
	if n == 0 {
		return
	}
	workers = exec.Workers(int64(n), workers)
	if workers <= 1 || n < 2*workers {
		f.spmvAddSerial(x, y)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.addPlans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		return &exec.Plan{Scratch: &cooAddScratch{carries: make([][]cooCarry, k.Workers)}}
	})
	sc := pl.Scratch.(*cooAddScratch)
	if pl.TryLock() {
		defer pl.Unlock()
	} else {
		// Another call on this plan is mid-flight: private carry lists keep
		// concurrent invocations fully parallel.
		sc = &cooAddScratch{carries: make([][]cooCarry, workers)}
	}
	rowIdx, colIdx, val := f.rowIdx, f.colIdx, f.val
	g.Run(workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		local := sc.carries[w][:0]
		k := lo
		for k < hi {
			row := rowIdx[k]
			sum := 0.0
			for k < hi && rowIdx[k] == row {
				sum += val[k] * x[colIdx[k]]
				k++
			}
			// A row is unsafe if it may be shared with a neighboring chunk.
			sharedLeft := lo > 0 && rowIdx[lo-1] == row
			sharedRight := k == hi && hi < n && rowIdx[hi] == row
			if sharedLeft || sharedRight {
				local = append(local, cooCarry{row, sum})
			} else {
				y[row] += sum
			}
		}
		sc.carries[w] = local
	})
	for _, local := range sc.carries {
		for _, c := range local {
			y[c.row] += c.sum
		}
	}
}
