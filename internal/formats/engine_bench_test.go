package formats

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
)

// Engine-tier benchmarks: the iterative-workload shape the exec engine
// targets. Each op is one SpMVParallel call on a pre-built format, exactly
// what a CG loop issues thousands of times. The tiers separate matrices
// whose kernel time is dwarfed by per-call scheduling overhead (tiny/small,
// both under 1 MB as CSR) from those where the kernel dominates (large).
// BENCH_exec.json tracks these numbers before/after the exec engine.

type engineTier struct {
	name string
	rows int
	avg  float64
}

var engineTiers = []engineTier{
	{"tiny-8k", 1000, 8},     // ~8e3 nnz, ~0.1 MB
	{"small-80k", 8000, 10},  // ~8e4 nnz, ~1 MB
	{"large-2M", 100000, 20}, // ~2e6 nnz, ~24 MB
}

// engineFormats covers every registry format; build refusals (DIA and
// friends on scattered sparsity) are skipped per-subbenchmark.
func engineFormats() []string {
	var names []string
	for _, b := range Registry() {
		names = append(names, b.Name)
	}
	return names
}

func engineMatrix(b *testing.B, t engineTier) *matrix.CSR {
	b.Helper()
	m, err := gen.Generate(gen.Params{
		Rows: t.rows, Cols: t.rows,
		AvgNNZPerRow: t.avg, StdNNZPerRow: t.avg / 4,
		SkewCoeff: 10, BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 1.0,
		Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkEngineTier measures steady-state SpMVParallel across tiers and
// scheduling disciplines at a fixed worker count.
func BenchmarkEngineTier(b *testing.B) {
	const workers = 4
	for _, tier := range engineTiers {
		m := engineMatrix(b, tier)
		for _, name := range engineFormats() {
			fb, ok := Lookup(name)
			if !ok {
				b.Fatalf("unknown format %s", name)
			}
			f, err := fb.Build(m)
			x := matrix.RandomVector(m.Cols, 7)
			y := make([]float64, m.Rows)
			b.Run(fmt.Sprintf("%s/%s", tier.name, name), func(b *testing.B) {
				if err != nil {
					b.Skipf("build refused: %v", err)
				}
				f.SpMVParallel(x, y, workers) // warm up plans and pool
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f.SpMVParallel(x, y, workers)
				}
				b.StopTimer()
				gflops := 2 * float64(m.NNZ()) * float64(b.N) / b.Elapsed().Seconds() / 1e9
				b.ReportMetric(gflops, "GFLOPS")
			})
		}
	}
}
