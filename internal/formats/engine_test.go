package formats

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/testutil"
)

// engineTestMatrices are large enough that exec.Workers keeps multi-worker
// counts (the small matrices of formats_test.go all take the serial fast
// path now), and diverse enough to cross every kernel's special cases:
// skew for the carry logic, a >=vecWideRowMin row for the wide unrolled
// path, and a banded matrix that DIA accepts (testutil.EngineMatrices).
func engineTestMatrices(t *testing.T) map[string]*matrix.CSR {
	return testutil.EngineMatrices(t)
}

// TestEngineSerialParallelEquivalence is the engine-level correctness
// property: under a raised worker cap (so the pool genuinely runs multi-
// worker even on small machines), SpMVParallel must match SpMV for every
// registry format at several worker counts, within FP-reassociation
// tolerance. Run with -race this also exercises the carry/scratch sharing.
func TestEngineSerialParallelEquivalence(t *testing.T) {
	prev := exec.SetMaxWorkers(8)
	defer exec.SetMaxWorkers(prev)

	counts := []int{1, 3, runtime.NumCPU()}
	for name, m := range engineTestMatrices(t) {
		x := matrix.RandomVector(m.Cols, 77)
		want := make([]float64, m.Rows)
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				if errors.Is(err, ErrBuild) {
					continue
				}
				t.Fatalf("%s on %s: %v", b.Name, name, err)
			}
			f.SpMV(x, want)
			for _, workers := range counts {
				got := make([]float64, m.Rows)
				for i := range got {
					got[i] = math.NaN() // every row must be written
				}
				// Twice: the second call runs on the cached plan.
				f.SpMVParallel(x, got, workers)
				f.SpMVParallel(x, got, workers)
				if d := maxAbsDiff(got, want); d > 1e-8 || anyNaN(got) {
					t.Errorf("%s on %s with %d workers: differs from serial by %g (NaN=%v)",
						b.Name, name, workers, d, anyNaN(got))
				}
			}
		}
	}
}

// TestSpMVParallelAllocs is the steady-state acceptance gate: after the
// first call warms the plan cache and the pool, a parallel SpMV performs no
// partition recomputation and no goroutine spawns — at most the one kernel
// closure allocation per dispatch (HYB dispatches twice: its ELL phase and
// its COO spill phase).
func TestSpMVParallelAllocs(t *testing.T) {
	prev := exec.SetMaxWorkers(4)
	defer exec.SetMaxWorkers(prev)
	exec.Prestart()

	m, err := gen.Generate(gen.Params{
		Rows: 60000, Cols: 60000, AvgNNZPerRow: 10, StdNNZPerRow: 3,
		SkewCoeff: 10, BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.8, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.RandomVector(m.Cols, 7)
	y := make([]float64, m.Rows)
	for _, b := range Registry() {
		f, err := b.Build(m)
		if err != nil {
			if errors.Is(err, ErrBuild) {
				continue
			}
			t.Fatalf("%s: %v", b.Name, err)
		}
		limit := 1.0
		if b.Name == "HYB" {
			limit = 2 // two pooled phases, one closure each
		}
		f.SpMVParallel(x, y, 4) // warm plan cache and pool
		f.SpMVParallel(x, y, 4)
		allocs := testing.AllocsPerRun(10, func() {
			f.SpMVParallel(x, y, 4)
		})
		if allocs > limit {
			t.Errorf("%s: %v allocs per steady-state SpMVParallel, want <= %v",
				b.Name, allocs, limit)
		}
	}
}

// TestConcurrentSameInstanceCalls drives the contention path: several
// goroutines issue SpMVParallel on one format instance with distinct output
// vectors. Calls that lose the plan's TryLock must fall back to private
// scratch and still produce the serial result; with -race this also proves
// the cached scratch is never shared across in-flight calls.
func TestConcurrentSameInstanceCalls(t *testing.T) {
	prev := exec.SetMaxWorkers(8)
	defer exec.SetMaxWorkers(prev)

	m, err := gen.Generate(gen.Params{
		Rows: 20000, Cols: 20000, AvgNNZPerRow: 10, StdNNZPerRow: 3,
		SkewCoeff: 20, BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.8, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.RandomVector(m.Cols, 41)
	want := make([]float64, m.Rows)
	// Scratch-using formats are the ones with a contention fallback.
	for _, name := range []string{"COO", "Merge-CSR", "CSR5", "HYB", "VSL"} {
		b, _ := Lookup(name)
		f, err := b.Build(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f.SpMV(x, want)
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				y := make([]float64, m.Rows)
				for i := 0; i < 10; i++ {
					f.SpMVParallel(x, y, 4)
					if d := maxAbsDiff(y, want); d > 1e-8 {
						errs <- name
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for name := range errs {
			t.Errorf("%s: concurrent SpMVParallel diverged from serial", name)
		}
	}
}

// TestPlanCachePopulatesPerWorkerCount checks plans are keyed by worker
// count and reused, via the exported cache length of a representative
// format.
func TestPlanCachePopulatesPerWorkerCount(t *testing.T) {
	prev := exec.SetMaxWorkers(8)
	defer exec.SetMaxWorkers(prev)

	m := matrix.Tridiagonal(30000, 2, -1)
	f := NewCSR(m)
	x := matrix.RandomVector(m.Cols, 3)
	y := make([]float64, m.Rows)
	for i := 0; i < 3; i++ {
		f.SpMVParallel(x, y, 3)
	}
	if n := f.plans.Len(); n != 1 {
		t.Errorf("after repeated 3-worker calls: %d plans cached, want 1", n)
	}
	f.SpMVParallel(x, y, 5)
	if n := f.plans.Len(); n != 2 {
		t.Errorf("after a 5-worker call: %d plans cached, want 2", n)
	}
	f.SpMVParallel(x, y, 1) // serial fast path must not touch the cache
	if n := f.plans.Len(); n != 2 {
		t.Errorf("after a serial call: %d plans cached, want 2", n)
	}
}
