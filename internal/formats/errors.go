package formats

import (
	"errors"
	"fmt"
)

// Argument errors returned by the facade Multiply entry points and the
// serving layer's admission checks. They live here — below both the spmv
// facade (which aliases them) and internal/serve (which maps them to HTTP
// statuses) — so a served request and a linked-library call fail with the
// same identities; test with errors.Is.
var (
	// ErrNilFormat reports a nil Format argument.
	ErrNilFormat = errors.New("spmv: nil format")
	// ErrInvalidK reports a non-positive right-hand-side count.
	ErrInvalidK = errors.New("spmv: invalid k")
	// ErrDimension reports x or y vectors (nil, short, or long) that do
	// not match the matrix shape and k.
	ErrDimension = errors.New("spmv: dimension mismatch")
)

// CheckArgs validates the shared multiply arguments; the facade entry
// points and the serving layer reject bad calls here before any kernel or
// engine work.
func CheckArgs(f Format, y, x []float64, k int) error {
	if f == nil {
		return ErrNilFormat
	}
	if k <= 0 {
		return fmt.Errorf("%w: k = %d (want >= 1)", ErrInvalidK, k)
	}
	if len(x) != f.Cols()*k || len(y) != f.Rows()*k {
		return fmt.Errorf("%w: x %d y %d for %dx%d with k = %d",
			ErrDimension, len(x), len(y), f.Rows(), f.Cols(), k)
	}
	return nil
}
