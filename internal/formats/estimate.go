package formats

import (
	"math"

	"repro/internal/core"
)

// EstimateTraits predicts the Traits a format would have if built for a
// matrix with the given features, without materializing the matrix. The
// analytical device model uses these for full-dataset sweeps; tests
// cross-validate them against actually built formats on scaled matrices.
//
// The estimates follow the structural arithmetic of each format:
//
//   - ELL pads every row to the maximum, so its padding ratio equals the
//     skew coefficient ((max-avg)/avg) by definition.
//   - HYB splits at the mean row length; under the generator's exponential
//     skew profile with ratio R = 1+skew, the spilled (COO) fraction of
//     nonzeros approaches 1 - (1+ln R)/R, and the ELL padding mirrors it.
//   - SELL-C-sigma sorts rows within sigma-row windows, shrinking padding
//     to the within-window length variation.
//   - SparseX encodes horizontal runs: with neighbor probability
//     p = avg_num_neigh/2, run lengths are geometric and the fraction of
//     elements inside runs of length >= MinRunLen is p^3(4-3p).
//   - VSL pads every column stream to a multiple of the accumulator depth,
//     costing ~(depth-1)/2 slots per non-empty column.
//
// Unknown format names return a neutral CSR-like estimate.
func EstimateTraits(name string, fv core.FeatureVector) Traits {
	avg := math.Max(fv.AvgNNZPerRow, 1)
	skew := math.Max(fv.SkewCoeff, 0)
	// A row cannot exceed the column count: clamp the effective skew the
	// same way the generator must.
	if fv.Cols > 0 {
		if maxSkew := float64(fv.Cols)/avg - 1; skew > maxSkew {
			skew = math.Max(maxSkew, 0)
		}
	}
	csrMeta := 4 + 4/avg

	switch name {
	case "COO":
		return Traits{Balancing: NNZGranular, MetaBytesPerNNZ: 8}
	case "Naive-CSR":
		return Traits{Balancing: RowGranular, MetaBytesPerNNZ: csrMeta}
	case "Vec-CSR":
		return Traits{Balancing: RowGranular, MetaBytesPerNNZ: csrMeta, Vectorizable: true}
	case "Bal-CSR":
		return Traits{Balancing: NNZGranular, MetaBytesPerNNZ: csrMeta}
	case "MKL-IE":
		t := Traits{Balancing: RowGranular, MetaBytesPerNNZ: csrMeta, Preprocessed: true}
		t.Vectorizable = avg >= vecMinRow
		if skew > balMinSkew {
			t.Balancing = NNZGranular
		}
		return t
	case "ELL":
		// Padded slots cost a full 12 bytes each: meta = 12*(1+pad) - 8.
		pad := skew
		return Traits{Balancing: RowGranular, PaddingRatio: pad,
			MetaBytesPerNNZ: 4 + 12*pad, Vectorizable: true, ColumnMajor: true}
	case "HYB":
		spill := hybSpillFraction(skew)
		pad := spill + 0.12 // the distribution noise pads short rows too
		return Traits{Balancing: NNZGranular, PaddingRatio: pad,
			MetaBytesPerNNZ: 4*(1+pad) + 8*spill, Vectorizable: true, ColumnMajor: true}
	case "CSR5":
		// Tile descriptors: flags (8B) + lane bases (16B) per 64 entries,
		// plus the segment tables (12B per non-empty row).
		meta := 4 + 24.0/64 + 12/avg
		return Traits{Balancing: ItemGranular, MetaBytesPerNNZ: meta,
			Vectorizable: true, Preprocessed: true}
	case "Merge-CSR":
		return Traits{Balancing: ItemGranular, MetaBytesPerNNZ: csrMeta}
	case "SELL-C-s":
		pad := sellPadding(skew, fv.Rows)
		return Traits{Balancing: RowGranular, PaddingRatio: pad,
			MetaBytesPerNNZ: 4 + 12*pad + 4/avg, Vectorizable: true, Preprocessed: true}
	case "SparseX":
		p := math.Min(fv.AvgNumNeigh/2, 0.999)
		runFrac := math.Pow(p, 3) * (4 - 3*p)
		// The unit-stream decode costs roughly one extra byte of effective
		// traffic per nonzero, plus scalar decode work (DecodeCycles) that
		// binds on few-core hosts — so compression only pays off once runs
		// dominate and the stream is genuinely bandwidth-bound: SparseX's
		// large-compressible-matrix niche.
		meta := runFrac*1.0 + (1-runFrac)*3.0 + 12/avg + 1.0
		return Traits{Balancing: NNZGranular, MetaBytesPerNNZ: meta,
			DecodeCycles: spxDecodeCycles, Preprocessed: true}
	case "VSL":
		// Every column in a 2D partition pads to the partition's longest
		// column: roughly the accumulator depth (8) plus the upper tail of
		// the column-length distribution (~3 sigma) over the mean length,
		// worse when rows are dissimilar (more distinct short columns).
		// This is the hypersparsity blow-up of the paper's Fig 4 (up to
		// ~20x for short rows). The additional layout inflation under row
		// skew is a property of the HBM image only; the FPGA device model
		// applies it to the capacity gate.
		colLen := math.Max(avg, 1)
		pad := (8 + 3*math.Sqrt(colLen)) / colLen * (2 - fv.CrossRowSim) / 1.5
		return Traits{Balancing: NNZGranular, PaddingRatio: pad,
			MetaBytesPerNNZ: 8 + 16*pad, Vectorizable: true, ColumnMajor: true, Preprocessed: true}
	case "DIA":
		span := math.Max(fv.BWScaled*float64(fv.Cols), 1)
		// The closed form assumes every diagonal inside the mean band is
		// densely filled; the union of per-row offsets always carries some
		// slack diagonals, so the fill never reaches the ideal (floor 0.5).
		pad := math.Max(span/avg-1, 0.5)
		// The diagonal-major sweep rewrites its y range once per stored
		// diagonal. Most of that traffic is cache-resident, but the residue
		// per nonzero is what makes DIA lose to CSR on thin diagonals.
		meta := 8*pad + 4*(1+pad)
		return Traits{Balancing: RowGranular, PaddingRatio: pad,
			MetaBytesPerNNZ: meta, Vectorizable: true}
	case "BCSR":
		fill := math.Min(1+fv.AvgNumNeigh/2+0.5*fv.CrossRowSim, 4)
		pad := 4/fill - 1
		// A stored 2x2 block streams 32 value bytes plus a 4-byte block
		// column index whatever its fill, so per nonzero the kernel moves
		// 36/fill bytes — the padded values are traffic, not just slack,
		// which is what makes BCSR lose on low-fill matrices.
		return Traits{Balancing: RowGranular, PaddingRatio: pad,
			MetaBytesPerNNZ: 36/fill - 8, Vectorizable: true, Preprocessed: true}
	}
	return Traits{Balancing: RowGranular, MetaBytesPerNNZ: csrMeta}
}

// hybSpillFraction is the fraction of nonzeros above the mean row length
// under the generator's exponential skew profile with ratio R = 1+skew.
func hybSpillFraction(skew float64) float64 {
	r := 1 + skew
	if r <= 1 {
		return 0.06 // normal-noise spill only
	}
	f := 1 - (1+math.Log(r))/r
	return math.Max(f, 0.06)
}

// sellPadding estimates SELL-C-sigma padding. Sorting inside sigma-row
// windows leaves only chunk-granularity length variation: consecutive
// sorted rows differ by roughly the skew profile's decay across one chunk
// of C rows, so padding scales with skew*C/rows plus distribution noise.
func sellPadding(skew float64, rows int) float64 {
	if rows <= 0 {
		return 0.05
	}
	chunkShare := float64(DefaultChunkC()) / float64(rows)
	if chunkShare > 1 {
		chunkShare = 1
	}
	return math.Min(skew, 0.02+skew*chunkShare)
}

// EstimateFeasible reports whether a format can be built at all for the
// given features: the dense-slab formats refuse structurally hostile
// matrices instead of exploding.
func EstimateFeasible(name string, fv core.FeatureVector) bool {
	t := EstimateTraits(name, fv)
	switch name {
	case "ELL":
		padded := float64(fv.NNZ) * (1 + t.PaddingRatio)
		return padded <= MaxELLPaddedEntries
	case "DIA":
		return t.PaddingRatio+1 <= MaxDIAFillRatio
	case "BCSR":
		return t.PaddingRatio+1 <= MaxBCSRFillRatio
	}
	return true
}
