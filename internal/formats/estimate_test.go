package formats

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestEstimateTraitsAgainstBuilt cross-validates the analytic trait
// estimates against formats built on real generated matrices across a small
// feature grid. Exact for the index-arithmetic formats; banded tolerances
// for the heuristic ones.
func TestEstimateTraitsAgainstBuilt(t *testing.T) {
	grid := []core.FeatureVector{
		{MemFootprintMB: 0.5, AvgNNZPerRow: 10, SkewCoeff: 0, CrossRowSim: 0.2, AvgNumNeigh: 0.5, BWScaled: 0.3},
		{MemFootprintMB: 0.5, AvgNNZPerRow: 5, SkewCoeff: 50, CrossRowSim: 0.5, AvgNumNeigh: 1.0, BWScaled: 0.3},
		{MemFootprintMB: 1, AvgNNZPerRow: 50, SkewCoeff: 10, CrossRowSim: 0.8, AvgNumNeigh: 1.5, BWScaled: 0.6},
	}
	for gi, fv := range grid {
		p := gen.FromFeatures(fv, int64(100+gi))
		m, err := gen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		measured := core.Extract(m)
		for _, b := range Registry() {
			f, err := b.Build(m)
			if errors.Is(err, ErrBuild) {
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			got := f.Traits()
			est := EstimateTraits(b.Name, measured)
			if got.Balancing != est.Balancing {
				t.Errorf("grid %d %s: balancing %v, estimate %v", gi, b.Name, got.Balancing, est.Balancing)
			}
			if got.Vectorizable != est.Vectorizable {
				t.Errorf("grid %d %s: vectorizable %v, estimate %v", gi, b.Name, got.Vectorizable, est.Vectorizable)
			}
			// Padding ratio: exact-arithmetic formats within 15%+0.1; the
			// heuristic estimates within a factor-of-3 band.
			tight := map[string]bool{"COO": true, "Naive-CSR": true, "Vec-CSR": true,
				"Bal-CSR": true, "MKL-IE": true, "ELL": true, "Merge-CSR": true, "CSR5": true}
			if tight[b.Name] {
				if math.Abs(got.PaddingRatio-est.PaddingRatio) > 0.15*got.PaddingRatio+0.1 {
					t.Errorf("grid %d %s: padding %g, estimate %g", gi, b.Name, got.PaddingRatio, est.PaddingRatio)
				}
				if math.Abs(got.MetaBytesPerNNZ-est.MetaBytesPerNNZ) > 0.2*got.MetaBytesPerNNZ+0.5 {
					t.Errorf("grid %d %s: meta %g, estimate %g", gi, b.Name, got.MetaBytesPerNNZ, est.MetaBytesPerNNZ)
				}
			} else {
				lo, hi := est.PaddingRatio/3-0.4, est.PaddingRatio*3+0.4
				if got.PaddingRatio < lo || got.PaddingRatio > hi {
					t.Errorf("grid %d %s: padding %g outside band [%g,%g]", gi, b.Name, got.PaddingRatio, lo, hi)
				}
			}
		}
	}
}

func TestEstimateFeasible(t *testing.T) {
	friendly := core.FeatureVector{NNZ: 1e6, Rows: 1e5, Cols: 1e5, AvgNNZPerRow: 10, SkewCoeff: 0, BWScaled: 0.0001, AvgNumNeigh: 1.9, CrossRowSim: 0.9}
	hostileELL := core.FeatureVector{NNZ: 1e8, Rows: 1e7, Cols: 1e7, AvgNNZPerRow: 10, SkewCoeff: 10000}
	if !EstimateFeasible("ELL", friendly) {
		t.Error("ELL should be feasible for a balanced matrix")
	}
	if EstimateFeasible("ELL", hostileELL) {
		t.Error("ELL should be infeasible under extreme skew at scale")
	}
	scattered := core.FeatureVector{NNZ: 1e6, Rows: 1e5, Cols: 1e5, AvgNNZPerRow: 10, BWScaled: 0.6}
	if EstimateFeasible("DIA", scattered) {
		t.Error("DIA should be infeasible for wide-band scatter")
	}
	if !EstimateFeasible("Naive-CSR", hostileELL) {
		t.Error("CSR is always feasible")
	}
}

func TestEstimateSkewClampedByShape(t *testing.T) {
	// A 1000-column matrix cannot hold a row longer than 1000, so the
	// effective ELL padding clamps even if the nominal skew is 10000.
	fv := core.FeatureVector{Rows: 1000, Cols: 1000, NNZ: 10000, AvgNNZPerRow: 10, SkewCoeff: 10000}
	tr := EstimateTraits("ELL", fv)
	if tr.PaddingRatio > 99+1e-9 {
		t.Errorf("padding %g should clamp to cols/avg-1 = 99", tr.PaddingRatio)
	}
}

func TestEstimateUnknownFormat(t *testing.T) {
	tr := EstimateTraits("mystery", core.FeatureVector{AvgNNZPerRow: 10})
	if tr.Balancing != RowGranular || tr.MetaBytesPerNNZ < 4 {
		t.Errorf("unknown format estimate not CSR-like: %+v", tr)
	}
}
