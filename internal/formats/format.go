// Package formats implements the sparse storage formats and SpMV kernels
// evaluated by the paper: the state-of-practice formats COO, CSR (naive,
// vectorized, balanced, inspector-executor), ELL and HYB, the research
// formats CSR5, Merge-CSR, SELL-C-sigma and a SparseX-like compressed
// format, and a VSL-like column-major FPGA format — plus DIA and BCSR as
// extensions. Every format builds from a CSR matrix and provides serial and
// parallel double-precision SpMV kernels producing the same result as the
// CSR reference (up to floating-point reassociation).
//
// Each format also reports Traits — padding ratio, metadata volume, work
// distribution discipline — which ground the analytical device models in
// internal/device on actually-built structures.
package formats

import (
	"errors"
	"fmt"

	"repro/internal/matrix"
)

// Format is a built sparse-matrix representation with SpMV kernels.
type Format interface {
	// Name returns the format identifier, e.g. "CSR5" or "SELL-C-s".
	Name() string
	// Rows and Cols return the logical matrix shape.
	Rows() int
	Cols() int
	// NNZ returns the number of logical nonzeros (excluding padding).
	NNZ() int64
	// Bytes returns the total storage footprint in bytes, including
	// metadata and zero padding.
	Bytes() int64
	// SpMV computes y = A*x serially.
	SpMV(x, y []float64)
	// SpMVParallel computes y = A*x. workers is a parallelism hint: the
	// execution engine caps it at the machine's parallelism (see
	// exec.MaxWorkers) and shrinks it when the matrix is too small to
	// amortize worker wake-ups, falling back to the serial kernel for tiny
	// inputs. Partitions and scratch buffers are computed on first use per
	// worker count and cached inside the format instance, so steady-state
	// calls do zero scheduling work.
	SpMVParallel(x, y []float64, workers int)
	// MultiplyMany computes Y = A*X for a block of k dense right-hand
	// sides at once (SpMM). X and Y are row-major: X holds k values per
	// matrix column (len cols*k, X[c*k+t] is vector t's value for matrix
	// column c) and Y k values per matrix row (len rows*k). Hot formats
	// fuse the k products into one pass over the matrix — each loaded
	// nonzero feeds k FMAs instead of one, lifting arithmetic intensity
	// past the bandwidth wall single-vector SpMV hits — while the
	// remaining formats fall back to one kernel call per vector.
	// Parallelism, partition plans and scratch go through the same
	// execution engine and PlanKey placements as SpMVParallel.
	MultiplyMany(y, x []float64, k int)
	// Traits reports the structural characteristics of this instance.
	Traits() Traits
}

// WideTiler is implemented by formats whose fused SpMM kernels carry a
// selectable 8-vector register tile (engaged only when the dispatched
// SIMD width is 8). The autotuner toggles it per matrix: on matrices with
// short rows the wide tile's halved accumulator count can lose to the
// 4-vector tile. Instances default to wide tiles on.
type WideTiler interface {
	SetWideTiles(on bool)
}

// WideRowTuner is implemented by the CSR-family formats whose vectorized
// row kernels have a wide-path cutoff the selector's row-length inspector
// derives per matrix (see VecWideRowMin).
type WideRowTuner interface {
	SetWideRowMin(n int)
}

// Balancing classifies a format's work-distribution discipline.
type Balancing int

// Work-distribution disciplines, coarsest to finest.
const (
	RowGranular  Balancing = iota // equal row counts; skew-sensitive
	NNZGranular                   // equal nonzero counts over whole rows
	ItemGranular                  // merge-path style; splits inside rows
)

// String names the balancing discipline.
func (b Balancing) String() string {
	switch b {
	case RowGranular:
		return "row-granular"
	case NNZGranular:
		return "nnz-granular"
	case ItemGranular:
		return "item-granular"
	}
	return fmt.Sprintf("Balancing(%d)", int(b))
}

// Traits summarizes the structural cost profile of a built format instance.
// The analytical device model consumes these.
type Traits struct {
	// Balancing is the work-distribution discipline of the parallel kernel.
	Balancing Balancing
	// PaddingRatio is (stored entries - nnz) / nnz; zero for unpadded
	// formats, skew-sized for ELL-family formats.
	PaddingRatio float64
	// MetaBytesPerNNZ is the metadata traffic per stored nonzero (indices,
	// pointers, descriptors), excluding the 8-byte value itself.
	MetaBytesPerNNZ float64
	// Vectorizable reports whether the inner loop is laid out for SIMD
	// (column-major chunks, unrolled tiles).
	Vectorizable bool
	// ColumnMajor reports a slab layout whose single-vector kernel walks
	// rows in the INNER loop (ELL/HYB column sweeps, VSL column streams):
	// per-row loop control amortizes over the whole slab column, so the
	// short-row ILP penalty of row-major kernels does not apply at k = 1.
	ColumnMajor bool
	// DecodeCycles is the extra unit-cycles of scalar decode work per
	// stored entry beyond the FMA itself (compressed formats pay it to
	// expand their streams). It is compute cost, not traffic: on
	// bandwidth-starved many-core devices it hides behind the memory wall,
	// on few-core hosts it is the binding constraint.
	DecodeCycles float64
	// Preprocessed reports inspector-executor style build-time analysis,
	// which the paper excludes from kernel time but notes as a cost.
	Preprocessed bool
}

// ErrBuild wraps format construction failures (excessive padding, capacity).
var ErrBuild = errors.New("formats: cannot build")

// Builder constructs a format from a CSR matrix.
type Builder struct {
	Name  string
	Build func(m *matrix.CSR) (Format, error)
}

// Registry returns all format builders in a stable order: the
// state-of-practice formats first, then the research formats, then the
// extensions. The VSL builder uses the default HBM capacity.
func Registry() []Builder {
	return []Builder{
		{"COO", func(m *matrix.CSR) (Format, error) { return NewCOO(m), nil }},
		{"Naive-CSR", func(m *matrix.CSR) (Format, error) { return NewCSR(m), nil }},
		{"Vec-CSR", func(m *matrix.CSR) (Format, error) { return NewVecCSR(m), nil }},
		{"Bal-CSR", func(m *matrix.CSR) (Format, error) { return NewBalCSR(m), nil }},
		{"MKL-IE", func(m *matrix.CSR) (Format, error) { return NewInspectorCSR(m), nil }},
		{"ELL", func(m *matrix.CSR) (Format, error) { return NewELL(m) }},
		{"HYB", func(m *matrix.CSR) (Format, error) { return NewHYB(m) }},
		{"CSR5", func(m *matrix.CSR) (Format, error) { return NewCSR5(m) }},
		{"Merge-CSR", func(m *matrix.CSR) (Format, error) { return NewMergeCSR(m), nil }},
		{"SELL-C-s", func(m *matrix.CSR) (Format, error) { return NewSELLCS(m, DefaultChunkC(), DefaultSigma) }},
		{"SparseX", func(m *matrix.CSR) (Format, error) { return NewSPX(m), nil }},
		{"VSL", func(m *matrix.CSR) (Format, error) { return NewVSL(m, DefaultVSLConfig()) }},
		{"DIA", func(m *matrix.CSR) (Format, error) { return NewDIA(m) }},
		{"BCSR", func(m *matrix.CSR) (Format, error) { return NewBCSR(m, 2, 2) }},
	}
}

// Lookup returns the builder with the given name, or false.
func Lookup(name string) (Builder, bool) {
	for _, b := range Registry() {
		if b.Name == name {
			return b, true
		}
	}
	return Builder{}, false
}

// checkShape panics on kernel shape mismatches; calling SpMV with the wrong
// vector lengths is a programmer error.
func checkShape(name string, rows, cols int, x, y []float64) {
	if len(x) != cols || len(y) != rows {
		panic(fmt.Sprintf("formats: %s SpMV shape mismatch: x %d y %d for %dx%d",
			name, len(x), len(y), rows, cols))
	}
}

// zero clears a vector.
func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
