package formats

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/testutil"
)

// The matrix generators and comparison helpers live in internal/testutil —
// the shared randomized-equivalence harness — with thin aliases here so
// every test file in the package reads the same as before the extraction.
func testMatrices(t *testing.T) map[string]*matrix.CSR { return testutil.Matrices(t) }

func skewedSizes(rows, max int) []int { return testutil.SkewedSizes(rows, max) }

func uniformSizes(rows, n int) []int { return testutil.UniformSizes(rows, n) }

var (
	maxAbsDiff = testutil.MaxAbsDiff
	anyNaN     = testutil.AnyNaN
)

// TestAllFormatsMatchReference is the central correctness property: every
// registered format must reproduce the CSR reference product, serially and
// with several worker counts.
func TestAllFormatsMatchReference(t *testing.T) {
	mats := testMatrices(t)
	for name, m := range mats {
		x := matrix.RandomVector(m.Cols, 1000)
		// Dense-reference compare: the oracle multiplies through the dense
		// triple loop, so no sparse kernel is trusted on either side.
		want := testutil.Reference(m, x)
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				if errors.Is(err, ErrBuild) {
					continue // dense-slab formats may legitimately refuse
				}
				t.Fatalf("%s on %s: %v", b.Name, name, err)
			}
			if f.Rows() != m.Rows || f.Cols() != m.Cols || f.NNZ() != int64(m.NNZ()) {
				t.Errorf("%s on %s: shape/nnz mismatch", b.Name, name)
			}
			got := make([]float64, m.Rows)
			f.SpMV(x, got)
			if d := maxAbsDiff(got, want); d > testutil.TolSmall {
				t.Errorf("%s on %s: serial SpMV differs by %g", b.Name, name, d)
			}
			for _, workers := range []int{2, 3, 8, 64} {
				for i := range got {
					got[i] = math.NaN() // ensure every row is written
				}
				f.SpMVParallel(x, got, workers)
				if d := maxAbsDiff(got, want); d > testutil.TolSmall || anyNaN(got) {
					t.Errorf("%s on %s with %d workers: parallel SpMV differs by %g",
						b.Name, name, workers, d)
				}
			}
		}
	}
}

func TestRegistryNamesUniqueAndLookup(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Registry() {
		if seen[b.Name] {
			t.Errorf("duplicate format name %q", b.Name)
		}
		seen[b.Name] = true
		got, ok := Lookup(b.Name)
		if !ok || got.Name != b.Name {
			t.Errorf("Lookup(%q) failed", b.Name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted an unknown name")
	}
}

func TestFormatNamesMatchBuilders(t *testing.T) {
	m := matrix.Random(30, 30, 0.2, 8)
	for _, b := range Registry() {
		f, err := b.Build(m)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if f.Name() != b.Name {
			t.Errorf("builder %q produced format named %q", b.Name, f.Name())
		}
	}
}

func TestBytesPositiveAndOrdered(t *testing.T) {
	m := matrix.Random(100, 100, 0.1, 9)
	csrBytes := int64(m.NNZ())*12 + int64(m.Rows+1)*4
	for _, b := range Registry() {
		f, err := b.Build(m)
		if err != nil {
			continue
		}
		if f.Bytes() <= 0 {
			t.Errorf("%s: nonpositive Bytes %d", b.Name, f.Bytes())
		}
		if f.Name() == "Naive-CSR" && f.Bytes() != csrBytes {
			t.Errorf("CSR Bytes = %d, want %d", f.Bytes(), csrBytes)
		}
	}
}

func TestELLPaddingAndRejection(t *testing.T) {
	// Balanced matrix: no padding beyond the max row.
	m := matrix.RandomRowSizes(50, 100, uniformSizes(50, 4), 10)
	f, err := NewELL(m)
	if err != nil {
		t.Fatal(err)
	}
	if f.Width() != 4 {
		t.Errorf("ELL width = %d, want 4", f.Width())
	}
	if tr := f.Traits(); tr.PaddingRatio != 0 {
		t.Errorf("balanced ELL padding = %g, want 0", tr.PaddingRatio)
	}

	// Skewed matrix: padding ratio equals skew.
	sk := matrix.RandomRowSizes(64, 1000, skewedSizes(64, 640), 11)
	fs, err := NewELL(sk)
	if err != nil {
		t.Fatal(err)
	}
	nnz := float64(sk.NNZ())
	wantPad := (float64(64*640) - nnz) / nnz
	if tr := fs.Traits(); math.Abs(tr.PaddingRatio-wantPad) > 1e-9 {
		t.Errorf("skewed ELL padding = %g, want %g", tr.PaddingRatio, wantPad)
	}

	// Pathological matrix: must refuse to build.
	huge := matrix.NewCOO(1<<20, 1<<20, 2)
	huge.Append(0, 0, 1)
	for c := int32(0); c < 1000; c++ {
		huge.Append(5, c, 1)
	}
	if _, err := NewELL(huge.ToCSR()); !errors.Is(err, ErrBuild) {
		t.Errorf("ELL accepted a pathological matrix: %v", err)
	}
}

func TestHYBSplit(t *testing.T) {
	// Rows of size 2 with one size-20 row, threshold defaults near avg=2.
	sizes := uniformSizes(50, 2)
	sizes[7] = 20
	m := matrix.RandomRowSizes(50, 100, sizes, 12)
	f, err := NewHYB(m)
	if err != nil {
		t.Fatal(err)
	}
	if f.SpillNNZ() == 0 {
		t.Error("HYB spill empty despite a long row")
	}
	if f.SpillNNZ() >= int64(m.NNZ()) {
		t.Error("HYB spilled everything")
	}
	// Explicit threshold 0 spills all entries.
	f0, err := NewHYBThreshold(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f0.SpillNNZ() != int64(m.NNZ()) {
		t.Errorf("threshold 0: spill %d, want all %d", f0.SpillNNZ(), m.NNZ())
	}
	if _, err := NewHYBThreshold(m, -1); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestCSR5TileGeometry(t *testing.T) {
	m := matrix.Random(100, 100, 0.1, 13)
	f, err := NewCSR5(m)
	if err != nil {
		t.Fatal(err)
	}
	wantTiles := (m.NNZ() + tileN - 1) / tileN
	if f.tiles != wantTiles {
		t.Errorf("tiles = %d, want %d", f.tiles, wantTiles)
	}
	if !strings.Contains(f.String(), "tiles") {
		t.Error("String() should describe tiles")
	}
	// Traits must report the descriptor overhead.
	if tr := f.Traits(); tr.MetaBytesPerNNZ <= 4 {
		t.Errorf("CSR5 meta %g should exceed plain CSR's 4", tr.MetaBytesPerNNZ)
	}
}

func TestCSR5EmptyMatrix(t *testing.T) {
	m, err := matrix.NewCSR(5, 5, []int32{0, 0, 0, 0, 0, 0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewCSR5(m)
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{1, 1, 1, 1, 1}
	f.SpMV(make([]float64, 5), y)
	for _, v := range y {
		if v != 0 {
			t.Error("empty CSR5 SpMV must zero y")
		}
	}
}

func TestSELLCSPaddingShrinksWithSorting(t *testing.T) {
	// Alternating short/long rows: without sorting every chunk pads to the
	// long length; with sigma sorting, padding nearly vanishes.
	sizes := make([]int, 512)
	for i := range sizes {
		if i%2 == 0 {
			sizes[i] = 32
		} else {
			sizes[i] = 2
		}
	}
	m := matrix.RandomRowSizes(512, 2000, sizes, 14)
	unsorted, err := NewSELLCS(m, 8, 1) // sigma=1: no sorting
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := NewSELLCS(m, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.PaddedEntries() >= unsorted.PaddedEntries() {
		t.Errorf("sigma sorting did not reduce padding: %d vs %d",
			sorted.PaddedEntries(), unsorted.PaddedEntries())
	}
}

func TestSELLCSRejectsBadConfig(t *testing.T) {
	m := matrix.Identity(8)
	if _, err := NewSELLCS(m, 0, 8); err == nil {
		t.Error("chunk 0 accepted")
	}
	if _, err := NewSELLCS(m, 4, 0); err == nil {
		t.Error("sigma 0 accepted")
	}
}

func TestSPXCompression(t *testing.T) {
	// A matrix of long horizontal runs compresses well.
	o := matrix.NewCOO(100, 1000, 0)
	for i := int32(0); i < 100; i++ {
		for c := int32(0); c < 40; c++ {
			o.Append(i, 100+c, float64(c))
		}
	}
	runs := NewSPX(o.ToCSR())
	if r := runs.CompressionRatio(); r < 1.4 {
		t.Errorf("run-structured compression ratio = %g, want > 1.4", r)
	}
	// Scattered singletons with big gaps compress less but must stay valid.
	scattered := NewSPX(matrix.Random(100, 100000, 0.0002, 15))
	if r := scattered.CompressionRatio(); r > 1.6 {
		t.Errorf("scattered compression ratio = %g suspiciously high", r)
	}
}

func TestSPXDeltaWidths(t *testing.T) {
	// Columns with gaps needing 1, 2 and 4 byte deltas in one row.
	o := matrix.NewCOO(1, 1<<26, 0)
	cols := []int32{0, 10, 300, 70000, 1 << 25}
	for _, c := range cols {
		o.Append(0, c, 1)
	}
	m := o.ToCSR()
	f := NewSPX(m)
	x := make([]float64, m.Cols)
	for _, c := range cols {
		x[c] = float64(c)
	}
	y := make([]float64, 1)
	f.SpMV(x, y)
	want := 0.0
	for _, c := range cols {
		want += float64(c)
	}
	if math.Abs(y[0]-want) > 1e-9 {
		t.Errorf("delta decode: got %g, want %g", y[0], want)
	}
}

func TestVSLCapacityGate(t *testing.T) {
	m := matrix.Random(200, 200, 0.1, 16)
	cfg := DefaultVSLConfig()
	cfg.CapacityBytes = 100 // absurdly small
	if _, err := NewVSL(m, cfg); !errors.Is(err, ErrBuild) {
		t.Errorf("VSL ignored the capacity gate: %v", err)
	}
	cfg.CapacityBytes = 0 // disabled
	if _, err := NewVSL(m, cfg); err != nil {
		t.Errorf("VSL with disabled gate failed: %v", err)
	}
}

func TestVSLPadding(t *testing.T) {
	// Column streams pad to multiples of AccLatency.
	m := matrix.Identity(10) // every column has 1 entry -> pads to 8
	f, err := NewVSL(m, VSLConfig{Channels: 2, AccLatency: 8, CapacityBytes: 0})
	if err != nil {
		t.Fatal(err)
	}
	if f.PaddedEntries() != 80 {
		t.Errorf("padded entries = %d, want 80", f.PaddedEntries())
	}
	tr := f.Traits()
	if math.Abs(tr.PaddingRatio-7.0) > 1e-9 {
		t.Errorf("padding ratio = %g, want 7", tr.PaddingRatio)
	}
}

func TestDIAOnBandedAndScattered(t *testing.T) {
	banded := matrix.Tridiagonal(200, 2, -1)
	f, err := NewDIA(banded)
	if err != nil {
		t.Fatal(err)
	}
	if f.Diagonals() != 3 {
		t.Errorf("tridiagonal stored %d diagonals, want 3", f.Diagonals())
	}
	scattered := matrix.Random(300, 300, 0.01, 17)
	if _, err := NewDIA(scattered); !errors.Is(err, ErrBuild) {
		t.Error("DIA accepted a scattered matrix")
	}
}

func TestBCSRBlocksAndFillGate(t *testing.T) {
	// 2x2 dense blocks pack perfectly.
	o := matrix.NewCOO(8, 8, 0)
	for _, base := range []int32{0, 4} {
		for r := int32(0); r < 2; r++ {
			for c := int32(0); c < 2; c++ {
				o.Append(base+r, base+c, 1)
			}
		}
	}
	m := o.ToCSR()
	f, err := NewBCSR(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocks() != 2 {
		t.Errorf("blocks = %d, want 2", f.Blocks())
	}
	if tr := f.Traits(); tr.PaddingRatio != 0 {
		t.Errorf("dense blocks padding = %g, want 0", tr.PaddingRatio)
	}
	// Fully scattered: one entry per block, fill ratio 4 with 2x2; a sparse
	// diagonal-ish spread exceeding the gate must be refused.
	if _, err := NewBCSR(matrix.Random(400, 4000, 0.0005, 18), 4, 4); !errors.Is(err, ErrBuild) {
		t.Error("BCSR accepted a hostile fill ratio")
	}
	if _, err := NewBCSR(m, 0, 2); err == nil {
		t.Error("BCSR accepted block size 0")
	}
}

func TestInspectorCSRDecisions(t *testing.T) {
	longRows := matrix.RandomRowSizes(40, 400, uniformSizes(40, 30), 19)
	f := NewInspectorCSR(longRows)
	if !f.vectorize {
		t.Error("inspector should vectorize long rows")
	}
	if f.balance {
		t.Error("inspector should not balance a uniform matrix")
	}

	sizes := uniformSizes(40, 2)
	sizes[3] = 200
	skewed := matrix.RandomRowSizes(40, 400, sizes, 20)
	fs := NewInspectorCSR(skewed)
	if !fs.balance {
		t.Error("inspector should balance a skewed matrix")
	}
	if tr := fs.Traits(); tr.Balancing != NNZGranular || !tr.Preprocessed {
		t.Errorf("inspector traits wrong: %+v", tr)
	}
}

func TestTraitsBalancingString(t *testing.T) {
	for b, want := range map[Balancing]string{
		RowGranular: "row-granular", NNZGranular: "nnz-granular", ItemGranular: "item-granular",
	} {
		if b.String() != want {
			t.Errorf("%d: %q != %q", int(b), b.String(), want)
		}
	}
}

func TestShapePanics(t *testing.T) {
	m := matrix.Identity(8)
	for _, b := range Registry() {
		f, err := b.Build(m)
		if err != nil {
			continue
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: wrong-shape SpMV did not panic", b.Name)
				}
			}()
			f.SpMV(make([]float64, 7), make([]float64, 8))
		}()
	}
}
