package formats

import (
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
)

// hybTestMatrices spans the spill regimes: balanced (almost no spill),
// moderately and heavily skewed (spill-dominated), plus a matrix small
// enough to take the serial spill path.
func hybTestMatrices(t *testing.T) []*matrix.CSR {
	t.Helper()
	cfgs := []struct {
		rows      int
		avg, skew float64
		seed      int64
	}{
		{4000, 10, 0, 1},
		{4000, 8, 60, 2},
		{3000, 6, 800, 3},
		{50, 4, 3, 4}, // tiny: serial spill add
	}
	var out []*matrix.CSR
	for _, c := range cfgs {
		m, err := gen.Generate(gen.Params{
			Rows: c.rows, Cols: c.rows,
			AvgNNZPerRow: c.avg, StdNNZPerRow: c.avg * 0.4,
			SkewCoeff: c.skew, BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.8,
			Seed: c.seed,
		})
		if err != nil {
			t.Fatalf("generate %+v: %v", c, err)
		}
		out = append(out, m)
	}
	return out
}

// TestHYBMultiplyManyMatchesFallback is the bit-equivalence property test
// for the fused HYB kernel: across matrices and k regimes, the fused
// two-phase (ELL slab + k-wide spill carries) kernel must produce exactly
// the by-column fallback's bits — the fused spill add mirrors the
// single-vector chunking and carry merge order, so not even rounding may
// differ.
func TestHYBMultiplyManyMatchesFallback(t *testing.T) {
	for mi, m := range hybTestMatrices(t) {
		fused, err := NewHYB(m)
		if err != nil {
			t.Fatalf("matrix %d: %v", mi, err)
		}
		ref, err := NewHYB(m)
		if err != nil {
			t.Fatalf("matrix %d: %v", mi, err)
		}
		for _, k := range []int{1, 2, 4, 8, 17} {
			x := matrix.RandomVector(m.Cols*k, int64(100+mi))
			yFused := make([]float64, m.Rows*k)
			yRef := make([]float64, m.Rows*k)
			fused.MultiplyMany(yFused, x, k)
			multiplyManyByColumn(ref, yRef, x, k)
			for i := range yFused {
				if yFused[i] != yRef[i] {
					t.Fatalf("matrix %d k=%d: fused HYB diverges from fallback at %d (row %d, vec %d): %g != %g",
						mi, k, i, i/k, i%k, yFused[i], yRef[i])
				}
			}
		}
	}
}

// TestHYBMultiplyManySpillEdges pins the spill-add edge cases: no spill at
// all (every row fits the ELL width) and a spill run crossing many worker
// chunk boundaries (one giant row).
func TestHYBMultiplyManySpillEdges(t *testing.T) {
	// Uniform rows: threshold = mean = exact length, zero spill.
	uniform, err := gen.Generate(gen.Params{
		Rows: 1000, Cols: 1000, AvgNNZPerRow: 8, StdNNZPerRow: 0,
		BWScaled: 0.5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewHYB(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if f.SpillNNZ() != 0 {
		t.Logf("uniform matrix spilled %d entries (distribution noise)", f.SpillNNZ())
	}
	k := 8
	x := matrix.RandomVector(uniform.Cols*k, 5)
	y := make([]float64, uniform.Rows*k)
	f.MultiplyMany(y, x, k)
	ref, _ := NewHYB(uniform)
	yRef := make([]float64, uniform.Rows*k)
	multiplyManyByColumn(ref, yRef, x, k)
	for i := range y {
		if y[i] != yRef[i] {
			t.Fatalf("uniform k=%d: diverges at %d", k, i)
		}
	}

	// One giant row: its spill run spans every worker chunk, exercising the
	// carry merge across all boundaries.
	rows := 64
	giantLen := 20000
	rowPtr := make([]int32, rows+1)
	var colIdx []int32
	var val []float64
	for i := 0; i < rows; i++ {
		n := 2
		if i == 0 {
			n = giantLen
		}
		for j := 0; j < n; j++ {
			col := j
			if i > 0 {
				col = (i*7)%1000 + j*1000 // two increasing columns per short row
			}
			colIdx = append(colIdx, int32(col))
			val = append(val, float64(i+j%19)+0.25)
		}
		rowPtr[i+1] = int32(len(colIdx))
	}
	m, err := matrix.NewCSR(rows, giantLen, rowPtr, colIdx, val)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewHYB(m)
	if err != nil {
		t.Fatal(err)
	}
	gRef, _ := NewHYB(m)
	for _, k := range []int{1, 4, 17} {
		x := matrix.RandomVector(m.Cols*k, 11)
		y := make([]float64, m.Rows*k)
		yRef := make([]float64, m.Rows*k)
		g.MultiplyMany(y, x, k)
		multiplyManyByColumn(gRef, yRef, x, k)
		for i := range y {
			if y[i] != yRef[i] {
				t.Fatalf("giant-row k=%d: diverges at %d", k, i)
			}
		}
	}
}

// TestHYBMultiplyManyConcurrent drives the fused kernel from concurrent
// goroutines so the plan-cache TryLock fallback path runs under -race.
func TestHYBMultiplyManyConcurrent(t *testing.T) {
	m, err := gen.Generate(gen.Params{
		Rows: 8000, Cols: 8000, AvgNNZPerRow: 10, StdNNZPerRow: 4,
		SkewCoeff: 40, BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.8, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewHYB(m)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := NewHYB(m)
	const k = 4
	x := matrix.RandomVector(m.Cols*k, 33)
	want := make([]float64, m.Rows*k)
	multiplyManyByColumn(ref, want, x, k)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := make([]float64, m.Rows*k)
			for it := 0; it < 3; it++ {
				f.MultiplyMany(y, x, k)
			}
			for i := range y {
				if y[i] != want[i] {
					t.Errorf("concurrent fused HYB diverges at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
