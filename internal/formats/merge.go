package formats

import (
	"repro/internal/matrix"
	"repro/internal/sched"
)

// MergeCSR is the Merrill-Garland merge-based CSR SpMV (SC'16): standard CSR
// storage, but the parallel kernel splits the combined (row-ends + nonzeros)
// merge path into equal diagonals, so even a single giant row is divided
// between workers. Partial sums of rows cut by a boundary are fixed up
// serially afterwards.
type MergeCSR struct {
	CSR
}

// NewMergeCSR builds the merge-based CSR format.
func NewMergeCSR(m *matrix.CSR) *MergeCSR { return &MergeCSR{*NewCSR(m)} }

// Name implements Format.
func (f *MergeCSR) Name() string { return "Merge-CSR" }

// Traits implements Format.
func (f *MergeCSR) Traits() Traits {
	t := f.CSR.Traits()
	t.Balancing = ItemGranular
	return t
}

// SpMVParallel implements Format using merge-path decomposition.
func (f *MergeCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	if workers <= 1 {
		f.SpMV(x, y)
		return
	}
	ranges := sched.MergePath(f.rowPtr, workers)
	type carry struct {
		row int // row cut by this worker's end boundary, -1 if none
		sum float64
	}
	carries := make([]carry, len(ranges))
	runWorkers(len(ranges), func(w int) {
		r := ranges[w]
		k := r.NNZLo
		// Rows completed inside the range. The first row may have had its
		// head consumed by the previous worker; that head arrives via the
		// previous worker's carry in the serial fixup below.
		for i := r.RowLo; i < r.RowHi; i++ {
			end := int64(f.rowPtr[i+1])
			sum := 0.0
			for ; k < end; k++ {
				sum += f.val[k] * x[f.colIdx[k]]
			}
			y[i] = sum
		}
		// Trailing fragment of the row cut by the range end.
		c := carry{row: -1}
		if k < r.NNZHi {
			sum := 0.0
			for ; k < r.NNZHi; k++ {
				sum += f.val[k] * x[f.colIdx[k]]
			}
			c = carry{row: r.RowHi, sum: sum}
		}
		carries[w] = c
	})
	// Serial fixup: add the carried row fragments onto the rows that were
	// completed (or further carried) by subsequent workers.
	for _, c := range carries {
		if c.row >= 0 && c.row < f.rows {
			y[c.row] += c.sum
		}
	}
}
