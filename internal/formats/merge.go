package formats

import (
	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// MergeCSR is the Merrill-Garland merge-based CSR SpMV (SC'16): standard CSR
// storage, but the parallel kernel splits the combined (row-ends + nonzeros)
// merge path into equal diagonals, so even a single giant row is divided
// between workers. Partial sums of rows cut by a boundary are fixed up
// serially afterwards. The merge-path search runs once per worker count and
// is cached, along with the carry buffers, in the execution plan.
type MergeCSR struct {
	CSR
	// mplans caches MultiplyMany partitions separately: the embedded plans
	// cache stores merge-path ranges with carry scratch, while the fused
	// multi-vector path uses whole-row nonzero-balanced ranges without
	// scratch, and the two must not collide under one PlanKey.
	mplans exec.PlanCache
}

// mergeScratch is the plan-cached carry state: one slot per worker for the
// row cut by that worker's end boundary (-1 if none) and its partial sum.
type mergeScratch struct {
	row []int32
	sum []float64
}

// NewMergeCSR builds the merge-based CSR format.
func NewMergeCSR(m *matrix.CSR) *MergeCSR {
	return &MergeCSR{CSR: *NewCSR(m), mplans: exec.NewPlanCache()}
}

// Name implements Format.
func (f *MergeCSR) Name() string { return "Merge-CSR" }

// Traits implements Format.
func (f *MergeCSR) Traits() Traits {
	t := f.CSR.Traits()
	t.Balancing = ItemGranular
	return t
}

// SpMVParallel implements Format using merge-path decomposition.
func (f *MergeCSR) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	workers = exec.Workers(f.work(), workers)
	if workers <= 1 {
		csrRowRange(f.rowPtr, f.colIdx, f.val, x, y, 0, f.rows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		// Domain slices cut on whole-row boundaries, so a ganged dispatch
		// never carries a partial sum across shards; the merge-path split
		// runs within each domain's slice.
		ranges, off := sched.DomainSplitOff(f.rowPtr, k.Domains, k.Workers, sched.MergePath)
		return &exec.Plan{Ranges: ranges, DomainOff: off, Scratch: &mergeScratch{
			row: make([]int32, len(ranges)),
			sum: make([]float64, len(ranges)),
		}}
	})
	ranges := pl.Ranges
	sc := pl.Scratch.(*mergeScratch)
	if pl.TryLock() {
		defer pl.Unlock()
	} else {
		// Another call on this plan is mid-flight: private carries keep
		// concurrent invocations fully parallel.
		sc = &mergeScratch{row: make([]int32, len(ranges)), sum: make([]float64, len(ranges))}
	}
	rowPtr, colIdx, val := f.rowPtr, f.colIdx, f.val
	g.RunPlan(pl, func(w int) {
		r := ranges[w]
		k := r.NNZLo
		// Rows completed inside the range. The first row may have had its
		// head consumed by the previous worker; that head arrives via the
		// previous worker's carry in the serial fixup below.
		for i := r.RowLo; i < r.RowHi; i++ {
			end := int64(rowPtr[i+1])
			sum := 0.0
			for ; k < end; k++ {
				sum += val[k] * x[colIdx[k]]
			}
			y[i] = sum
		}
		// Trailing fragment of the row cut by the range end.
		sc.row[w] = -1
		if k < r.NNZHi {
			sum := 0.0
			for ; k < r.NNZHi; k++ {
				sum += val[k] * x[colIdx[k]]
			}
			sc.row[w] = int32(r.RowHi)
			sc.sum[w] = sum
		}
	})
	// Serial fixup: add the carried row fragments onto the rows that were
	// completed (or further carried) by subsequent workers.
	for w, row := range sc.row {
		if row >= 0 && int(row) < f.rows {
			y[row] += sc.sum[w]
		}
	}
}

// MultiplyMany implements Format with the fused CSR kernel over nonzero-
// balanced whole-row blocks rather than the merge path: a k-wide merge
// carry would cost k partial slots per boundary, and with every nonzero
// feeding k FMAs the imbalance a giant row causes is amortized k-fold,
// so row-resolution nonzero balancing is the better trade here.
func (f *MergeCSR) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti(f.Name(), f.rows, f.cols, y, x, k)
	workers := exec.Workers(f.work()*int64(k), exec.MaxWorkers())
	if workers <= 1 {
		csrRowRangeMulti(f.rowPtr, f.colIdx, f.val, x, y, k, 0, f.rows, !f.noWideTiles)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.mplans.Get(g.Key(), func(kk exec.PlanKey) *exec.Plan {
		ranges, off := sched.DomainSplitOff(f.rowPtr, kk.Domains, kk.Workers, sched.NNZBalanced)
		return &exec.Plan{Ranges: ranges, DomainOff: off}
	})
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		csrRowRangeMulti(f.rowPtr, f.colIdx, f.val, x, y, k, ranges[w].RowLo, ranges[w].RowHi, !f.noWideTiles)
	})
}
