package formats

// Multi-vector SpMV (SpMM): every format multiplies a block of k dense
// right-hand sides at once via Format.MultiplyMany. Single-vector SpMV is
// memory-bound — each matrix entry is loaded to feed exactly one FMA — so
// the fused kernels here stream the matrix once per register tile of 4
// vectors, reusing every loaded (value, column) pair k times the same way
// wide-SIMD formats reuse row structure (Kreutzer et al., SELL-C-sigma).
//
// Layout: X and Y are row-major blocks, k values per matrix column/row.
// X[c*k+t] is vector t's entry for matrix column c, so one nonzero's k
// x-operands are contiguous — a single gathered cache line serves the
// whole tile — and Y[r*k:(r+1)*k] is written once per row.
//
// The register tile is 4 wide (k unrolled in blocks of 4, tail of 1-3
// handled separately): 4 accumulators hide the FP-add latency chain
// without spilling, and the tile's x operands fit one 256-bit vector.
//
// Formats off the hot path (CSR5, SparseX, VSL) use the
// multiplyManyByColumn fallback: one existing kernel call per vector, with
// gather/scatter between the row-major block and contiguous temporaries.

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/simd"
)

// multiTile is the register-tile width of the fused kernels: k is unrolled
// in blocks of this many vectors.
const multiTile = 4

// multiTile8 is the wide register tile used when the dispatched SIMD width
// is 8 (AVX-512): one ZMM register holds the whole tile's x operands. The
// wide tile is per-instance tunable — see WideTiler — because doubling the
// tile halves the number of live accumulator sets and can lose to the
// 4-wide tile on matrices with short rows.
const multiTile8 = 8

// simdMinN is the minimum inner-loop trip count at which the dispatched
// micro-kernels (internal/simd) beat the inlined scalar loops. Below it —
// tridiagonal-style rows, near-empty chunks — the indirect call and gather
// setup cost more than the vector width saves, so call sites keep the
// scalar path regardless of dispatch state.
const simdMinN = 8

// checkShapeMulti panics on MultiplyMany shape mismatches; like checkShape,
// calling with wrong block shapes is a programmer error.
func checkShapeMulti(name string, rows, cols int, y, x []float64, k int) {
	if k < 1 {
		panic(fmt.Sprintf("formats: %s MultiplyMany: k = %d (want >= 1)", name, k))
	}
	if len(x) != cols*k || len(y) != rows*k {
		panic(fmt.Sprintf("formats: %s MultiplyMany shape mismatch: x %d y %d for %dx%d with k=%d",
			name, len(x), len(y), rows, cols, k))
	}
}

// multiplyManyByColumn is the correctness fallback for formats without a
// fused kernel: one right-hand side at a time, gathering each column of X
// into a contiguous vector for the format's existing parallel kernel and
// scattering the product back into Y. It allocates two dense temporaries
// per call — acceptable off the hot path, which is why the hot formats
// override it with fused kernels.
func multiplyManyByColumn(f Format, y, x []float64, k int) {
	rows, cols := f.Rows(), f.Cols()
	xj := make([]float64, cols)
	yj := make([]float64, rows)
	for t := 0; t < k; t++ {
		for c := 0; c < cols; c++ {
			xj[c] = x[c*k+t]
		}
		f.SpMVParallel(xj, yj, exec.MaxWorkers())
		for r := 0; r < rows; r++ {
			y[r*k+t] = yj[r]
		}
	}
}

// csrRowRangeMulti is the fused CSR kernel: rows [lo, hi) of the k-wide
// product. Each row's (value, column) stream is walked once per 4-vector
// tile with the tile's partial sums in registers, so every loaded nonzero
// feeds 4 FMAs; the 1-3 vector tail reruns the stream with a narrower
// accumulator set. wide enables the 8-vector tile when the dispatched
// SIMD width is 8.
func csrRowRangeMulti(rowPtr, colIdx []int32, val, x, y []float64, k, lo, hi int, wide bool) {
	useSIMD := simd.Enabled()
	wide = wide && useSIMD && simd.Width() >= 8
	for i := lo; i < hi; i++ {
		start := int(rowPtr[i])
		end := int(rowPtr[i+1])
		c := colIdx[start:end:end]
		v := val[start:end:end]
		v = v[:len(c)]
		yi := y[i*k : i*k+k : i*k+k]
		t := 0
		if wide && len(c) >= simdMinN {
			for ; t+multiTile8 <= k; t += multiTile8 {
				d := simd.DotBcastTile8(v, c, x[t:], 1, len(c), k)
				copy(yi[t:t+multiTile8], d[:])
			}
		}
		if useSIMD && len(c) >= simdMinN {
			// Dispatched path: broadcast-tile over the row's entry stream
			// (stride 1) — bit-identical per tile vector.
			for ; t+multiTile <= k; t += multiTile {
				d := simd.DotBcastTile(v, c, x[t:], 1, len(c), k)
				yi[t], yi[t+1], yi[t+2], yi[t+3] = d[0], d[1], d[2], d[3]
			}
		}
		for ; t+multiTile <= k; t += multiTile {
			var s0, s1, s2, s3 float64
			for j, cj := range c {
				vj := v[j]
				xb := x[int(cj)*k+t : int(cj)*k+t+4 : int(cj)*k+t+4]
				s0 += vj * xb[0]
				s1 += vj * xb[1]
				s2 += vj * xb[2]
				s3 += vj * xb[3]
			}
			yi[t], yi[t+1], yi[t+2], yi[t+3] = s0, s1, s2, s3
		}
		switch k - t {
		case 3:
			var s0, s1, s2 float64
			for j, cj := range c {
				vj := v[j]
				base := int(cj)*k + t
				s0 += vj * x[base]
				s1 += vj * x[base+1]
				s2 += vj * x[base+2]
			}
			yi[t], yi[t+1], yi[t+2] = s0, s1, s2
		case 2:
			var s0, s1 float64
			for j, cj := range c {
				vj := v[j]
				base := int(cj)*k + t
				s0 += vj * x[base]
				s1 += vj * x[base+1]
			}
			yi[t], yi[t+1] = s0, s1
		case 1:
			var s0 float64
			for j, cj := range c {
				s0 += v[j] * x[int(cj)*k+t]
			}
			yi[t] = s0
		}
	}
}
