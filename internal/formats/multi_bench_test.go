package formats

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// Multi-vector benchmarks: one op is one fused k-wide MultiplyMany call or
// its baseline — k sequential SpMVParallel calls — on a pre-built format.
// BENCH_spmm.json tracks the fused/sequential ratio via spmv-bench -rhs;
// these Go benchmarks keep the same kernels under `go test -bench` (and
// the CI bench-smoke step) so they cannot rot between perf PRs.

const benchRHS = 8

// multiBenchFormats are the fused hot-path formats (DIA is exercised by
// the banded matrix below; it refuses the scattered tier).
var multiBenchFormats = []string{"Naive-CSR", "Vec-CSR", "ELL", "SELL-C-s", "BCSR", "DIA", "COO"}

func benchmarkMulti(b *testing.B, m *matrix.CSR, matName string) {
	b.Helper()
	// The baseline gets the same worker budget MultiplyMany claims
	// internally, so the fused/seq ratio isolates kernel fusion rather
	// than a parallelism gap.
	workers := exec.MaxWorkers()
	k := benchRHS
	x := matrix.RandomVector(m.Cols*k, 7)
	y := make([]float64, m.Rows*k)
	xs := make([][]float64, k)
	ys := make([][]float64, k)
	for j := 0; j < k; j++ {
		xs[j] = make([]float64, m.Cols)
		ys[j] = make([]float64, m.Rows)
		for c := 0; c < m.Cols; c++ {
			xs[j][c] = x[c*k+j]
		}
	}
	for _, name := range multiBenchFormats {
		fb, ok := Lookup(name)
		if !ok {
			b.Fatalf("unknown format %s", name)
		}
		f, err := fb.Build(m)
		b.Run(fmt.Sprintf("%s/%s/fused", matName, name), func(b *testing.B) {
			if err != nil {
				b.Skipf("build refused: %v", err)
			}
			f.MultiplyMany(y, x, k) // warm up plans and pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.MultiplyMany(y, x, k)
			}
			b.StopTimer()
			gflops := 2 * float64(k) * float64(m.NNZ()) * float64(b.N) / b.Elapsed().Seconds() / 1e9
			b.ReportMetric(gflops, "GFLOPS")
		})
		b.Run(fmt.Sprintf("%s/%s/seq", matName, name), func(b *testing.B) {
			if err != nil {
				b.Skipf("build refused: %v", err)
			}
			f.SpMVParallel(xs[0], ys[0], workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					f.SpMVParallel(xs[j], ys[j], workers)
				}
			}
			b.StopTimer()
			gflops := 2 * float64(k) * float64(m.NNZ()) * float64(b.N) / b.Elapsed().Seconds() / 1e9
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// BenchmarkMultiplyMany measures the fused k=8 kernels against the
// sequential baseline on a scattered and a banded matrix.
func BenchmarkMultiplyMany(b *testing.B) {
	benchmarkMulti(b, engineMatrix(b, engineTiers[1]), engineTiers[1].name)
	benchmarkMulti(b, matrix.Tridiagonal(50000, 2, -1), "banded-150k")
}
