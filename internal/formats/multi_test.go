package formats

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/testutil"
)

// multiKs are the block widths the MultiplyMany property tests sweep: 1
// (degenerate), every tail size (2, 3), the register-tile width (4), tile
// plus tail (5), the benchmark width (8), and a prime past two tiles (17).
var multiKs = []int{1, 2, 3, 4, 5, 8, 17}

// multiplyManyWant is the specification: k independent Multiply calls
// through the format's own serial kernel, gathered from / scattered to the
// row-major block layout (testutil.MultiplyManyWant, shared with the
// updatable-matrix suite).
func multiplyManyWant(f Format, rows, cols int, x []float64, k int) []float64 {
	return testutil.MultiplyManyWant(f, rows, cols, x, k)
}

// degenerateMatrices are the empty and near-empty shapes every format must
// survive: no nonzeros, single entries, and empty-row runs at the edges.
func degenerateMatrices() map[string]*matrix.CSR { return testutil.Degenerate() }

// TestMultiplyManyEquivalence is the tentpole correctness property: for
// every registry format, MultiplyMany must equal k independent Multiply
// calls (within FP-reassociation tolerance) for every k in multiKs, on the
// engine test matrices — large enough that the parallel fused kernels
// genuinely dispatch — and on empty/degenerate shapes.
func TestMultiplyManyEquivalence(t *testing.T) {
	prev := exec.SetMaxWorkers(8)
	defer exec.SetMaxWorkers(prev)

	ms := engineTestMatrices(t)
	for name, m := range degenerateMatrices() {
		ms[name] = m
	}
	for name, m := range ms {
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				if errors.Is(err, ErrBuild) {
					continue
				}
				t.Fatalf("%s on %s: %v", b.Name, name, err)
			}
			for _, k := range multiKs {
				x := matrix.RandomVector(m.Cols*k, int64(13*k)+7)
				want := multiplyManyWant(f, m.Rows, m.Cols, x, k)
				got := make([]float64, m.Rows*k)
				for i := range got {
					got[i] = math.NaN() // every slot must be written
				}
				// Twice: the second call runs on the cached plan.
				f.MultiplyMany(got, x, k)
				f.MultiplyMany(got, x, k)
				if d := maxAbsDiff(got, want); d > 1e-8 || anyNaN(got) {
					t.Errorf("%s on %s with k=%d: differs from %d sequential calls by %g (NaN=%v)",
						b.Name, name, k, k, d, anyNaN(got))
				}
			}
		}
	}
}

// TestMultiplyManyShardedEquivalence is the gang-path property: with
// several shards and a worker cap wide enough that a fused call must
// gang-schedule (domain-split plans, offset-dispatched id blocks), every
// format still matches the sequential specification.
func TestMultiplyManyShardedEquivalence(t *testing.T) {
	prev := exec.SetMaxWorkers(32)
	defer exec.SetMaxWorkers(prev)
	setShards(t, 3)
	exec.Prestart()

	const k = 8
	for name, m := range engineTestMatrices(t) {
		x := matrix.RandomVector(m.Cols*k, 177)
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				if errors.Is(err, ErrBuild) {
					continue
				}
				t.Fatalf("%s on %s: %v", b.Name, name, err)
			}
			want := multiplyManyWant(f, m.Rows, m.Cols, x, k)
			got := make([]float64, m.Rows*k)
			for i := range got {
				got[i] = math.NaN()
			}
			f.MultiplyMany(got, x, k)
			f.MultiplyMany(got, x, k)
			if d := maxAbsDiff(got, want); d > 1e-8 || anyNaN(got) {
				t.Errorf("%s on %s ganged over 3 shards with k=%d: diff %g (NaN=%v)",
					b.Name, name, k, d, anyNaN(got))
			}
		}
	}
}

// TestMultiplyManyConcurrentCallers drives the contention path through the
// sharded engine: several goroutines issue MultiplyMany on one format
// instance with distinct outputs and distinct k. Calls that lose the
// plan's TryLock must fall back to private k-wide scratch and still be
// correct; with -race this also proves the cached carry buffers are never
// shared across in-flight calls.
func TestMultiplyManyConcurrentCallers(t *testing.T) {
	prev := exec.SetMaxWorkers(8)
	defer exec.SetMaxWorkers(prev)
	setShards(t, 2)
	exec.Prestart()

	m := matrix.RandomRowSizes(20000, 20000, skewedSizes(20000, 400), 91)
	// COO carries k-wide scratch; CSR and SELL-C-s cover the scratch-free
	// fused paths.
	for _, name := range []string{"COO", "Naive-CSR", "SELL-C-s"} {
		b, _ := Lookup(name)
		f, err := b.Build(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for gi := 0; gi < 8; gi++ {
			k := []int{3, 8}[gi%2] // distinct widths contend on one plan's scratch
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				x := matrix.RandomVector(m.Cols*k, int64(100+k))
				want := multiplyManyWant(f, m.Rows, m.Cols, x, k)
				y := make([]float64, m.Rows*k)
				for i := 0; i < 6; i++ {
					f.MultiplyMany(y, x, k)
					if d := maxAbsDiff(y, want); d > 1e-8 {
						errs <- name
						return
					}
				}
			}(k)
		}
		wg.Wait()
		close(errs)
		for name := range errs {
			t.Errorf("%s: concurrent MultiplyMany diverged from sequential calls", name)
		}
	}
}

// TestQuickMultiplyMany: for arbitrary small random matrices and widths,
// the fused kernels agree with the sequential specification. Complements
// the fixed-k sweep with randomized shapes (including very sparse ones
// with many empty rows).
func TestQuickMultiplyMany(t *testing.T) {
	prevW := exec.SetMaxWorkers(8)
	defer exec.SetMaxWorkers(prevW)
	fn := func(seed uint32, rowsRaw, kRaw uint8) bool {
		rows := int(rowsRaw%60) + 1
		k := int(kRaw%9) + 1
		m := matrix.Random(rows, rows+3, 0.1, int64(seed))
		x := matrix.RandomVector(m.Cols*k, int64(seed)+2)
		for _, name := range []string{"COO", "Naive-CSR", "Bal-CSR", "ELL", "SELL-C-s", "BCSR", "Merge-CSR"} {
			b, _ := Lookup(name)
			f, err := b.Build(m)
			if err != nil {
				continue
			}
			want := multiplyManyWant(f, m.Rows, m.Cols, x, k)
			got := make([]float64, m.Rows*k)
			f.MultiplyMany(got, x, k)
			if maxAbsDiff(got, want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMultiplyManyShapePanics: wrong block shapes and k < 1 are programmer
// errors and must panic, like the single-vector kernels.
func TestMultiplyManyShapePanics(t *testing.T) {
	m := matrix.Tridiagonal(100, 2, -1)
	f := NewCSR(m)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("k=0", func() { f.MultiplyMany(make([]float64, 0), make([]float64, 0), 0) })
	mustPanic("short x", func() { f.MultiplyMany(make([]float64, 200), make([]float64, 199), 2) })
	mustPanic("short y", func() { f.MultiplyMany(make([]float64, 199), make([]float64, 200), 2) })
}
