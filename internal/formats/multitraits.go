package formats

// MultiTraits: what a format's storage costs look like to a fused k-wide
// SpMM pass, which differs from the k = 1 view in two opposing ways the
// old model collapsed into "same traits":
//
//   - Padding skip. The fused ELL kernel walks rows through the rowLen
//     table and the fused HYB kernel inherits it, so tail padding — the
//     bulk of a skewed slab, which the single-vector kernel streams on
//     every call — is never touched at all.
//   - Column-stride line waste. The slab layouts are column-major (stride
//     = rows for ELL, = C for SELL chunks), so a fused row-major walk uses
//     one entry per loaded value line and relies on nearby rows (ELL) or
//     the other lanes and register tiles (SELL) re-hitting the line while
//     it is still cached. While the reuse window fits in cache the walk is
//     free; once the window spills — wide rows, giant skew-sorted chunks —
//     every reuse becomes its own memory transaction and the effective
//     stream inflates toward the line/entry ratio.
//
// Modeling both closes most of the model-only selection gap at k = 8: the
// old presentation over-penalized fused ELL on skewed-but-feasible
// matrices (charging padding the kernel skips) and over-promoted it on
// wide balanced rows (ignoring the spilled reuse window), and let SELL-C-s
// keep its compact k = 1 traits even when one giant chunk blows the slab
// far past any cache.

import (
	"math"

	"repro/internal/core"
)

// Line-waste model constants. These describe the fused kernels' reuse
// windows against a portable private-cache budget; like the device-model
// knobs they are fixed constants of the reproduction, not per-experiment
// tuning.
const (
	// multiReuseCacheBytes is the cache budget a fused slab walk can count
	// on for line reuse (roughly an L1D plus the hot half of a per-core L2
	// slice, shared with the streaming x block).
	multiReuseCacheBytes = 48 << 10

	// multiValLineEntries is the worst-case inflation of the value stream:
	// a 64-byte line holds 8 float64 slab entries, so a fully-spilled
	// window loads every line up to 8 times.
	multiValLineEntries = 8

	// multiXBytesPerEntry is the x-block traffic that competes for the
	// reuse cache per touched slab entry and k right-hand sides: a k-wide
	// row-major X block keeps one gather's operands on min(k, 8) doubles
	// of a single line.
	multiXBytesPerEntry = 8
)

// lineWaste maps a reuse-window size to the traffic inflation of a strided
// slab walk: 1 while the window fits the budget, growing linearly as the
// window spills, saturating at the line/entry ratio.
func lineWaste(windowBytes float64) float64 {
	w := windowBytes / multiReuseCacheBytes
	if w <= 1 {
		return 1
	}
	if w > multiValLineEntries {
		return multiValLineEntries
	}
	return w
}

// clampedRowShape mirrors EstimateTraits' geometry clamp: a row cannot be
// longer than the column count, so the effective skew caps at cols/avg-1.
func clampedRowShape(fv core.FeatureVector) (avg, skew float64) {
	avg = math.Max(fv.AvgNNZPerRow, 1)
	skew = math.Max(fv.SkewCoeff, 0)
	if fv.Cols > 0 {
		if maxSkew := float64(fv.Cols)/avg - 1; skew > maxSkew {
			skew = math.Max(maxSkew, 0)
		}
	}
	return avg, skew
}

// heavyRowShare estimates the fraction of nonzeros living in rows near the
// maximum length — the rows whose fused walk windows are skew-sized rather
// than avg-sized. Under the generator's exponential decay the heavy mass
// concentrates in the few longest rows, so the single max row's share is
// the right order.
func heavyRowShare(fv core.FeatureVector, avg, skew float64) float64 {
	if fv.NNZ <= 0 {
		return 0
	}
	share := avg * (1 + skew) / float64(fv.NNZ)
	if share > 1 {
		return 1
	}
	return share
}

// xWindowBytes is the per-entry x-block pressure on the reuse cache for a
// k-wide pass (a k > 8 block still gathers whole lines).
func xWindowBytes(k int) float64 {
	return multiXBytesPerEntry * math.Min(float64(k), 8)
}

// MultiTraits returns the traits the named format presents to a k-wide
// SpMM pass, plus whether that pass is fused. For k <= 1, and for every
// format without slab striding, the traits equal EstimateTraits; the fused
// slab formats (ELL, SELL-C-s, HYB's ELL part) get the padding-skip and
// line-waste corrections described above. The fused/fallback asymmetry in
// the second return value is what device.Spec.EstimateMulti turns into the
// k-regime ranking flip: fused formats amortize the matrix stream over k
// vectors, fallback formats do not.
func MultiTraits(name string, fv core.FeatureVector, k int) (Traits, bool) {
	tr := EstimateTraits(name, fv)
	fused := FusedMulti(name)
	if k <= 1 || !fused {
		return tr, fused
	}
	switch name {
	case "ELL":
		tr = ellMultiTraits(fv, k, tr)
	case "SELL-C-s":
		tr = sellMultiTraits(fv, k, tr)
	case "HYB":
		tr = hybMultiTraits(fv, k, tr)
	}
	return tr, fused
}

// ellMultiTraits models the fused ELL kernel: the rowLen table means only
// the nnz stored entries are ever touched (PaddingRatio drops to zero),
// but the row-major walk over the column-major slab strides by `rows`, so
// one value line serves 8 consecutive rows only while (a) a window of
// 8 rows x (slab + x-block) traffic stays cached and (b) the neighboring
// rows actually reach that slab column. Under skew the second condition is
// what bites: every nonzero sitting beyond the typical row length lives in
// slab columns its neighbors never touch, so its lines carry one useful
// entry each — the skipped padding comes back as dead line slack. That
// exclusive share is exactly the mass above the mean row length, i.e. the
// HYB spill fraction.
func ellMultiTraits(fv core.FeatureVector, k int, base Traits) Traits {
	avg, skew := clampedRowShape(fv)
	shared := lineWaste(multiValLineEntries * avg * (12 + xWindowBytes(k)))
	ex := hybSpillFraction(skew) // nnz share in columns only long rows reach
	waste := (1-ex)*shared + ex*multiValLineEntries
	// Touched stream: 12 bytes per stored nonzero inflated by the line
	// waste, plus the per-row length table. The fused kernel walks rows in
	// the OUTER loop (unlike the k = 1 column sweep), so ColumnMajor's
	// row-overhead exemption does not carry over.
	meta := 12*waste - 8 + 4/avg
	return Traits{
		Balancing:       base.Balancing,
		PaddingRatio:    0,
		MetaBytesPerNNZ: meta,
		Vectorizable:    base.Vectorizable,
		Preprocessed:    base.Preprocessed,
	}
}

// sellMultiTraits models the fused SELL-C-sigma kernel: lanes re-walk
// their chunk's slab once per lane and register tile, so a chunk's slab
// must stay cached across C * k/4 passes. Sigma-sorting keeps bulk chunks
// near avg width (the padding estimate already covers the touched slack —
// the fused kernel does stream chunk padding), but under heavy skew the
// giant rows share one chunk whose slab dwarfs any cache, and that chunk's
// share of the stream pays the full line waste.
func sellMultiTraits(fv core.FeatureVector, k int, base Traits) Traits {
	avg, skew := clampedRowShape(fv)
	slabPerRow := 12 * (1 + base.PaddingRatio) // chunk slab bytes per stored entry
	c := float64(DefaultChunkC())              // the chunk the registry actually builds
	bulk := lineWaste(c * avg * slabPerRow)
	heavy := lineWaste(c * avg * (1 + skew) * slabPerRow)
	hs := heavyRowShare(fv, avg, skew)
	waste := (1-hs)*bulk + hs*heavy
	tr := base
	tr.MetaBytesPerNNZ = (8+base.MetaBytesPerNNZ)*waste - 8
	return tr
}

// hybMultiTraits models the fused HYB kernel: the ELL part is width-capped
// at the mean row length (so its reuse window is avg-sized with no heavy
// tail — spill absorbed the skew) and skips its padding via the rowLen
// table; the COO spill part streams contiguously with no stride waste.
// Only the ELL-resident share of the stream pays the line waste.
func hybMultiTraits(fv core.FeatureVector, k int, base Traits) Traits {
	avg, skew := clampedRowShape(fv)
	spill := hybSpillFraction(skew)
	waste := lineWaste(multiValLineEntries * avg * (12 + xWindowBytes(k)))
	ellShare := 1 - spill
	// ELL-part entries: 12 bytes inflated by waste, padding skipped; spill
	// entries keep their 16-byte COO cost; the split row-length table and
	// the spill phase's k-wide y reload (the second pass reads and rewrites
	// Y on top of the ELL result) ride on top.
	meta := ellShare*12*waste + spill*16 - 8 + 4/avg + 16/avg
	tr := base
	tr.PaddingRatio = 0
	tr.MetaBytesPerNNZ = meta
	tr.ColumnMajor = false // the fused ELL-part walk is row-major
	return tr
}
