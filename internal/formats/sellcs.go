package formats

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/simd"
)

// SELLCS is the SELL-C-sigma format (Kreutzer et al., SISC 2014): rows are
// sorted by length inside windows of sigma rows, grouped into chunks of C
// rows, and each chunk is padded to its own maximum length and stored
// column-major. Sorting keeps chunk-local padding small; the permutation is
// undone when writing y.
type SELLCS struct {
	rows, cols int
	c, sigma   int
	nnz        int64
	perm       []int32 // perm[slot] = original row stored at this slot
	chunkPtr   []int64 // offset of each chunk's slab in colIdx/val
	chunkLen   []int32 // padded row length of each chunk
	colIdx     []int32
	val        []float64
	plans      exec.PlanCache
	// noWideTiles disables the 8-vector SpMM register tile (see CSR).
	noWideTiles bool
}

// SetWideTiles toggles the 8-vector SpMM register tile (WideTiler).
func (f *SELLCS) SetWideTiles(on bool) { f.noWideTiles = !on }

// Default SELL-C-sigma tuning, matching common CPU configurations.
const (
	DefaultChunk = 8
	DefaultSigma = 256
)

// DefaultChunkC returns the chunk size matched to the active SIMD
// dispatch: the detected hardware vector width when accelerated kernels
// are live (chunk lanes then map 1:1 onto SIMD lanes and the slab loads
// are exactly one vector wide), DefaultChunk otherwise. SELL-C-sigma was
// designed around C = vector width (Kreutzer et al.); the Registry builds
// "SELL-C-s" through this.
func DefaultChunkC() int {
	if w := simd.Width(); w >= 4 {
		return w
	}
	return DefaultChunk
}

// NewSELLCS builds SELL-C-sigma with chunk size c and sorting scope sigma.
func NewSELLCS(m *matrix.CSR, c, sigma int) (*SELLCS, error) {
	if c < 1 || sigma < 1 {
		return nil, fmt.Errorf("%w SELL-C-s: chunk %d sigma %d", ErrBuild, c, sigma)
	}
	if sigma%c != 0 && sigma != 1 {
		// Round sigma up to a multiple of c so chunks never straddle
		// sorting windows.
		sigma = ((sigma + c - 1) / c) * c
	}
	f := &SELLCS{rows: m.Rows, cols: m.Cols, c: c, sigma: sigma, nnz: int64(m.NNZ()),
		plans: exec.NewPlanCache()}

	// Permutation: sort rows by descending length within sigma windows.
	f.perm = make([]int32, m.Rows)
	for i := range f.perm {
		f.perm[i] = int32(i)
	}
	for lo := 0; lo < m.Rows; lo += sigma {
		hi := lo + sigma
		if hi > m.Rows {
			hi = m.Rows
		}
		window := f.perm[lo:hi]
		sort.SliceStable(window, func(a, b int) bool {
			return m.RowNNZ(int(window[a])) > m.RowNNZ(int(window[b]))
		})
	}

	nChunks := (m.Rows + c - 1) / c
	f.chunkPtr = make([]int64, nChunks+1)
	f.chunkLen = make([]int32, nChunks)
	var total int64
	for ch := 0; ch < nChunks; ch++ {
		maxLen := 0
		for s := ch * c; s < (ch+1)*c && s < m.Rows; s++ {
			if n := m.RowNNZ(int(f.perm[s])); n > maxLen {
				maxLen = n
			}
		}
		f.chunkPtr[ch] = total
		f.chunkLen[ch] = int32(maxLen)
		total += int64(maxLen) * int64(c)
	}
	f.chunkPtr[nChunks] = total
	if total > MaxELLPaddedEntries {
		return nil, fmt.Errorf("%w SELL-C-s: %d padded entries (max %d)", ErrBuild, total, int64(MaxELLPaddedEntries))
	}

	f.colIdx = make([]int32, total)
	f.val = make([]float64, total)
	for ch := 0; ch < nChunks; ch++ {
		base := f.chunkPtr[ch]
		for lane := 0; lane < c; lane++ {
			s := ch*c + lane
			if s >= m.Rows {
				continue
			}
			cols, vals := m.Row(int(f.perm[s]))
			for k, col := range cols {
				at := base + int64(k*c+lane)
				f.colIdx[at] = col
				f.val[at] = vals[k]
			}
		}
	}
	return f, nil
}

// Name implements Format.
func (f *SELLCS) Name() string { return "SELL-C-s" }

// Rows implements Format.
func (f *SELLCS) Rows() int { return f.rows }

// Cols implements Format.
func (f *SELLCS) Cols() int { return f.cols }

// NNZ implements Format.
func (f *SELLCS) NNZ() int64 { return f.nnz }

// Bytes implements Format: padded slabs plus the permutation and chunk
// descriptors.
func (f *SELLCS) Bytes() int64 {
	return int64(len(f.val))*12 + int64(len(f.perm))*4 + int64(len(f.chunkPtr))*8 + int64(len(f.chunkLen))*4
}

// PaddedEntries returns the slab slot count including padding.
func (f *SELLCS) PaddedEntries() int64 { return int64(len(f.val)) }

// Traits implements Format.
func (f *SELLCS) Traits() Traits {
	pad := 0.0
	meta := 4.0
	if f.nnz > 0 {
		pad = float64(int64(len(f.val))-f.nnz) / float64(f.nnz)
		meta = float64(f.Bytes()-8*f.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: RowGranular, PaddingRatio: pad,
		MetaBytesPerNNZ: meta, Vectorizable: true, Preprocessed: true}
}

// maxStackLanes bounds the chunk widths served by the stack-resident lane
// accumulators; wider chunks fall back to a heap buffer.
const maxStackLanes = 64

func (f *SELLCS) chunkRange(x, y []float64, chLo, chHi int) {
	c := f.c
	var sumsBuf [maxStackLanes]float64
	var sums []float64
	if c <= maxStackLanes {
		sums = sumsBuf[:c]
	} else {
		sums = make([]float64, c)
	}
	val, colIdx := f.val, f.colIdx
	useSIMD := simd.Enabled() && c%4 == 0
	wide8 := useSIMD && simd.Width() >= 8
	for ch := chLo; ch < chHi; ch++ {
		base := f.chunkPtr[ch]
		width := int(f.chunkLen[ch])
		for lane := range sums {
			sums[lane] = 0
		}
		slab := int64(width) * int64(c)
		cs := colIdx[base : base+slab : base+slab]
		vs := val[base : base+slab : base+slab]
		vs = vs[:len(cs)]
		if useSIMD && width >= simdMinN {
			// Dispatched path: each lane group sweeps the chunk slab with
			// stride c. Per lane a sequential sum in ascending column order
			// — bit-identical to the scalar lane loop. 8-lane groups go
			// through the wide kernel when the dispatched width allows
			// (its AVX2 fallback composes two 4-lane sweeps, still
			// bit-identical), the remainder through the 4-lane kernel.
			lg := 0
			if wide8 {
				for ; lg+8 <= c; lg += 8 {
					r := simd.LaneDot8(vs[lg:], cs[lg:], x, c, width)
					copy(sums[lg:lg+8], r[:])
				}
			}
			for ; lg+4 <= c; lg += 4 {
				r := simd.LaneDot4(vs[lg:], cs[lg:], x, c, width)
				sums[lg], sums[lg+1], sums[lg+2], sums[lg+3] = r[0], r[1], r[2], r[3]
			}
		} else {
			for k := 0; k < len(cs); k += c {
				for lane := 0; lane < c; lane++ {
					sums[lane] += vs[k+lane] * x[cs[k+lane]]
				}
			}
		}
		for lane := 0; lane < c; lane++ {
			s := ch*c + lane
			if s < f.rows {
				y[f.perm[s]] = sums[lane]
			}
		}
	}
}

// SpMV implements Format.
func (f *SELLCS) SpMV(x, y []float64) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	f.chunkRange(x, y, 0, len(f.chunkLen))
}

// SpMVParallel implements Format, distributing chunks across workers.
func (f *SELLCS) SpMVParallel(x, y []float64, workers int) {
	checkShape(f.Name(), f.rows, f.cols, x, y)
	nChunks := len(f.chunkLen)
	workers = exec.Workers(int64(len(f.val)), workers)
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		f.SpMV(x, y)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.chunkPlan(&g)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.chunkRange(x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// chunkPlan builds (or fetches) the chunk partition for the grant's
// placement. Ranges partition chunk indices (RowLo/RowHi are chunk
// bounds): chunks are contiguous slabs of sigma-sorted rows, so the domain
// split hands each shard adjacent slabs. Shared by the single- and
// multi-vector dispatches.
func (f *SELLCS) chunkPlan(g *exec.Grant) *exec.Plan {
	return f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		ranges, off := sched.DomainEvenRowsOff(len(f.chunkLen), k.Domains, k.Workers)
		return &exec.Plan{Ranges: ranges, DomainOff: off}
	})
}

// chunkRangeMulti is the fused SELL-C-sigma kernel. Within a chunk the
// lanes run lane-major per 4-vector tile: a lane's partial sums live in
// four registers while it strides through the chunk slab, and the slab —
// C lanes x the chunk's padded width — is small enough to stay in L1
// across the lanes and tiles that revisit it, so the strided walk costs
// cache hits, not memory traffic.
func (f *SELLCS) chunkRangeMulti(x, y []float64, k, chLo, chHi int) {
	c := f.c
	val, colIdx, rows := f.val, f.colIdx, f.rows
	useSIMD := simd.Enabled()
	wide := !f.noWideTiles && useSIMD && simd.Width() >= 8
	for ch := chLo; ch < chHi; ch++ {
		base := f.chunkPtr[ch]
		width := int(f.chunkLen[ch])
		slab := int64(width) * int64(c)
		cs := colIdx[base : base+slab : base+slab]
		vs := val[base : base+slab : base+slab]
		vs = vs[:len(cs)]
		for lane := 0; lane < c; lane++ {
			s := ch*c + lane
			if s >= rows {
				break // trailing lanes of the last partial chunk
			}
			row := int(f.perm[s])
			yb := y[row*k : row*k+k : row*k+k]
			t := 0
			if wide && width >= simdMinN {
				for ; t+multiTile8 <= k; t += multiTile8 {
					d := simd.DotBcastTile8(vs[lane:], cs[lane:], x[t:], c, width, k)
					copy(yb[t:t+multiTile8], d[:])
				}
			}
			if useSIMD && width >= simdMinN {
				// Dispatched path: broadcast-tile over the lane's strided
				// slab walk — bit-identical per tile vector.
				for ; t+multiTile <= k; t += multiTile {
					d := simd.DotBcastTile(vs[lane:], cs[lane:], x[t:], c, width, k)
					yb[t], yb[t+1], yb[t+2], yb[t+3] = d[0], d[1], d[2], d[3]
				}
			}
			for ; t+multiTile <= k; t += multiTile {
				var s0, s1, s2, s3 float64
				for kk := lane; kk < len(cs); kk += c {
					vj := vs[kk]
					xb := x[int(cs[kk])*k+t : int(cs[kk])*k+t+4 : int(cs[kk])*k+t+4]
					s0 += vj * xb[0]
					s1 += vj * xb[1]
					s2 += vj * xb[2]
					s3 += vj * xb[3]
				}
				yb[t], yb[t+1], yb[t+2], yb[t+3] = s0, s1, s2, s3
			}
			for ; t < k; t++ {
				var s0 float64
				for kk := lane; kk < len(cs); kk += c {
					s0 += vs[kk] * x[int(cs[kk])*k+t]
				}
				yb[t] = s0
			}
		}
	}
}

// MultiplyMany implements Format with the fused chunk kernel over the same
// chunk partition SpMVParallel uses.
func (f *SELLCS) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti(f.Name(), f.rows, f.cols, y, x, k)
	nChunks := len(f.chunkLen)
	workers := exec.Workers(int64(len(f.val))*int64(k), exec.MaxWorkers())
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		f.chunkRangeMulti(x, y, k, 0, nChunks)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.chunkPlan(&g)
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.chunkRangeMulti(x, y, k, ranges[w].RowLo, ranges[w].RowHi)
	})
}
