package formats

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// setShards pins the engine shard count for a test and restores it after.
func setShards(t *testing.T, n int) {
	t.Helper()
	prev := topo.SetShards(n)
	t.Cleanup(func() { topo.SetShards(prev) })
}

// TestEngineShardedEquivalence is the gang-path correctness property: with
// several shards and a worker count wide enough that a single call must
// gang-schedule across all of them (domain-split partitions, per-shard
// worker blocks), every format still matches its serial kernel on every
// engine test matrix. Run with -race this also proves the ganged dispatch
// never shares scratch across shards.
func TestEngineShardedEquivalence(t *testing.T) {
	prev := exec.SetMaxWorkers(32)
	defer exec.SetMaxWorkers(prev)
	setShards(t, 3)
	exec.Prestart()

	for name, m := range engineTestMatrices(t) {
		x := matrix.RandomVector(m.Cols, 77)
		want := make([]float64, m.Rows)
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				if errors.Is(err, ErrBuild) {
					continue
				}
				t.Fatalf("%s on %s: %v", b.Name, name, err)
			}
			f.SpMV(x, want)
			got := make([]float64, m.Rows)
			for i := range got {
				got[i] = math.NaN() // every row must be written
			}
			// Twice: the second call runs on the cached domain-split plan.
			f.SpMVParallel(x, got, 32)
			f.SpMVParallel(x, got, 32)
			if d := maxAbsDiff(got, want); d > 1e-8 || anyNaN(got) {
				t.Errorf("%s on %s ganged over 3 shards: differs from serial by %g (NaN=%v)",
					b.Name, name, d, anyNaN(got))
			}
		}
	}
}

// TestConcurrentCallersRouteToDistinctShards is the serving-path acceptance
// property: with two shards on a single-domain machine, two simultaneous
// SpMV calls on the same format instance both execute on parked pool
// workers — no spawned-goroutine fallback — and both produce the serial
// result. The rendezvous inside the kernel's worker 0 proves the calls
// overlap in time.
func TestConcurrentCallersRouteToDistinctShards(t *testing.T) {
	prev := exec.SetMaxWorkers(4)
	defer exec.SetMaxWorkers(prev)
	setShards(t, 2)
	exec.Prestart()

	m, err := gen.Generate(gen.Params{
		Rows: 30000, Cols: 30000, AvgNNZPerRow: 10, StdNNZPerRow: 3,
		SkewCoeff: 10, BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.8, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := NewCSR(m)
	x := matrix.RandomVector(m.Cols, 41)
	want := make([]float64, m.Rows)
	f.SpMV(x, want)
	// Warm both shards' plans so the measured runs do no partition work.
	ys := [2][]float64{make([]float64, m.Rows), make([]float64, m.Rows)}
	f.SpMVParallel(x, ys[0], 4)
	f.SpMVParallel(x, ys[1], 4)

	spawnsBefore := exec.SpawnFallbacks()
	var ready, wg sync.WaitGroup
	ready.Add(2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The rendezvous makes both calls hold their shard at once; a
			// single-pool engine could only serve this by spawning.
			ready.Done()
			ready.Wait()
			for iter := 0; iter < 50; iter++ {
				f.SpMVParallel(x, ys[i], 4)
			}
		}(i)
	}
	wg.Wait()
	for i := range ys {
		if d := maxAbsDiff(ys[i], want); d > 1e-8 {
			t.Errorf("concurrent caller %d diverged from serial by %g", i, d)
		}
	}
	// Routing may very occasionally race both callers onto one shard for a
	// single iteration; over 100 iterations the fallback count must stay
	// far below what a single-pool engine would show (which spawns on every
	// overlapping call).
	if d := exec.SpawnFallbacks() - spawnsBefore; d > 5 {
		t.Errorf("%d spawn fallbacks across 100 two-caller iterations, want ~0", d)
	}
}

// TestShardedSteadyStateAllocs: with two shards, the steady single-caller
// state stays at the engine's alloc budget (the one kernel closure per
// dispatch) even though round-robin routing alternates shards — each shard
// has its own cached plan and scratch.
func TestShardedSteadyStateAllocs(t *testing.T) {
	prev := exec.SetMaxWorkers(4)
	defer exec.SetMaxWorkers(prev)
	setShards(t, 2)
	exec.Prestart()

	m, err := gen.Generate(gen.Params{
		Rows: 60000, Cols: 60000, AvgNNZPerRow: 10, StdNNZPerRow: 3,
		SkewCoeff: 10, BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.8, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.RandomVector(m.Cols, 7)
	y := make([]float64, m.Rows)
	for _, b := range Registry() {
		f, err := b.Build(m)
		if err != nil {
			if errors.Is(err, ErrBuild) {
				continue
			}
			t.Fatalf("%s: %v", b.Name, err)
		}
		limit := 1.0
		if b.Name == "HYB" {
			limit = 2 // two pooled phases, one closure each
		}
		// Warm both shards' plans (round-robin visits each in turn).
		for i := 0; i < 4; i++ {
			f.SpMVParallel(x, y, 4)
		}
		allocs := testing.AllocsPerRun(10, func() {
			f.SpMVParallel(x, y, 4)
		})
		if allocs > limit {
			t.Errorf("%s: %v allocs per steady-state sharded SpMVParallel, want <= %v",
				b.Name, allocs, limit)
		}
	}
}
