package formats

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/simd"
)

// SIMD vs scalar dispatch equivalence: every registry format must produce
// the same product under both dispatch modes, on the same built format
// (only the kernel path toggles, never the layout).
//
// The accumulation-order contract (internal/simd): the ELL, SELL-C-s,
// BCSR and every fused multi kernel preserve the scalar accumulation
// order per output element, so their two modes must match BIT FOR BIT.
// Only the Vec-CSR row dot-product (and MKL-IE, which adopts the
// vectorized row kernel) runs the reassociating gather+FMA kernel, and
// Vec-CSR's scalar path already reassociates into 4/8 partial sums — those
// two get a small relative tolerance instead.

// reassocFormats are the formats allowed the relative tolerance.
var reassocFormats = map[string]bool{"Vec-CSR": true, "MKL-IE": true}

// simdEquivMatrices: a skewed general matrix (exercises gather tails,
// SELL chunk variation, HYB spill), and an odd-dimension banded one (BCSR
// edge blocks past the column bound, DIA-friendly structure).
func simdEquivMatrices(t *testing.T) map[string]*matrix.CSR {
	t.Helper()
	skewed, err := gen.Generate(gen.Params{
		Rows: 2000, Cols: 2000, AvgNNZPerRow: 14, StdNNZPerRow: 5,
		SkewCoeff: 10, BWScaled: 0.4, CrossRowSim: 0.4, AvgNumNeigh: 1.2, Seed: 77,
	})
	if err != nil {
		t.Fatalf("generate skewed: %v", err)
	}
	banded, err := gen.Generate(gen.Params{
		Rows: 1997, Cols: 1997, AvgNNZPerRow: 9, StdNNZPerRow: 2,
		SkewCoeff: 1, BWScaled: 0.02, CrossRowSim: 0.8, AvgNumNeigh: 1.8, Seed: 78,
	})
	if err != nil {
		t.Fatalf("generate banded: %v", err)
	}
	return map[string]*matrix.CSR{"skewed": skewed, "banded": banded}
}

func equalOrClose(name string, got, want []float64) (int, bool) {
	for i := range got {
		if got[i] == want[i] {
			continue
		}
		if !reassocFormats[name] {
			return i, false
		}
		diff := math.Abs(got[i] - want[i])
		scale := math.Max(math.Abs(got[i]), math.Abs(want[i]))
		if diff > 1e-12*scale {
			return i, false
		}
	}
	return 0, true
}

// TestSIMDScalarEquivalence runs every format's single-vector kernels
// (serial and parallel) under both dispatch modes and compares.
func TestSIMDScalarEquivalence(t *testing.T) {
	if !simd.Available() {
		t.Skip("no accelerated kernels on this host")
	}
	prev := simd.SetEnabled(true)
	defer simd.SetEnabled(prev)
	for mname, m := range simdEquivMatrices(t) {
		x := matrix.RandomVector(m.Cols, 4242)
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				continue // hostile structure for this format; covered elsewhere
			}
			ys := make([]float64, m.Rows)
			yv := make([]float64, m.Rows)
			for _, workers := range []int{1, 3} {
				simd.SetEnabled(true)
				f.SpMVParallel(x, yv, workers)
				simd.SetEnabled(false)
				f.SpMVParallel(x, ys, workers)
				simd.SetEnabled(true)
				if i, ok := equalOrClose(b.Name, yv, ys); !ok {
					t.Errorf("%s/%s workers=%d: y[%d] simd=%v scalar=%v",
						mname, b.Name, workers, i, yv[i], ys[i])
					break
				}
			}
		}
	}
}

// TestSIMDScalarEquivalenceMulti does the same for the k-wide fused
// kernels across the register-tile widths the dispatch layer tiles by.
func TestSIMDScalarEquivalenceMulti(t *testing.T) {
	if !simd.Available() {
		t.Skip("no accelerated kernels on this host")
	}
	prev := simd.SetEnabled(true)
	defer simd.SetEnabled(prev)
	for mname, m := range simdEquivMatrices(t) {
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				continue
			}
			for _, k := range []int{1, 4, 8} {
				x := matrix.RandomVector(m.Cols*k, 97)
				yv := make([]float64, m.Rows*k)
				ys := make([]float64, m.Rows*k)
				simd.SetEnabled(true)
				f.MultiplyMany(yv, x, k)
				simd.SetEnabled(false)
				f.MultiplyMany(ys, x, k)
				simd.SetEnabled(true)
				if i, ok := equalOrClose(b.Name, yv, ys); !ok {
					t.Errorf("%s/%s k=%d: y[%d] simd=%v scalar=%v",
						mname, b.Name, k, i, yv[i], ys[i])
				}
			}
		}
	}
}
