package formats

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/simd"
	"repro/internal/testutil"
)

// SIMD vs scalar dispatch equivalence: every registry format must produce
// the same product under both dispatch modes, on the same built format
// (only the kernel path toggles, never the layout).
//
// The accumulation-order contract (internal/simd): the ELL, SELL-C-s,
// BCSR and every fused multi kernel preserve the scalar accumulation
// order per output element, so their two modes must match BIT FOR BIT.
// Only the Vec-CSR row dot-product (and MKL-IE, which adopts the
// vectorized row kernel) runs the reassociating gather+FMA kernel, and
// Vec-CSR's scalar path already reassociates into 4/8 partial sums — those
// two get a small relative tolerance instead. The matrix pair and the
// bitwise-unless-reassociating policy live in internal/testutil, shared
// with the updatable-matrix suite.
func simdEquivMatrices(t *testing.T) map[string]*matrix.CSR {
	return testutil.SIMDEquivMatrices(t)
}

var equalOrClose = testutil.EqualOrClose

// TestSIMDScalarEquivalence runs every format's single-vector kernels
// (serial and parallel) under both dispatch modes and compares.
func TestSIMDScalarEquivalence(t *testing.T) {
	if !simd.Available() {
		t.Skip("no accelerated kernels on this host")
	}
	prev := simd.SetEnabled(true)
	defer simd.SetEnabled(prev)
	for mname, m := range simdEquivMatrices(t) {
		x := matrix.RandomVector(m.Cols, 4242)
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				continue // hostile structure for this format; covered elsewhere
			}
			ys := make([]float64, m.Rows)
			yv := make([]float64, m.Rows)
			for _, workers := range []int{1, 3} {
				simd.SetEnabled(true)
				f.SpMVParallel(x, yv, workers)
				simd.SetEnabled(false)
				f.SpMVParallel(x, ys, workers)
				simd.SetEnabled(true)
				if i, ok := equalOrClose(b.Name, yv, ys); !ok {
					t.Errorf("%s/%s workers=%d: y[%d] simd=%v scalar=%v",
						mname, b.Name, workers, i, yv[i], ys[i])
					break
				}
			}
		}
	}
}

// TestSIMDScalarEquivalenceMulti does the same for the k-wide fused
// kernels across the register-tile widths the dispatch layer tiles by.
func TestSIMDScalarEquivalenceMulti(t *testing.T) {
	if !simd.Available() {
		t.Skip("no accelerated kernels on this host")
	}
	prev := simd.SetEnabled(true)
	defer simd.SetEnabled(prev)
	for mname, m := range simdEquivMatrices(t) {
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				continue
			}
			for _, k := range []int{1, 4, 8} {
				x := matrix.RandomVector(m.Cols*k, 97)
				yv := make([]float64, m.Rows*k)
				ys := make([]float64, m.Rows*k)
				simd.SetEnabled(true)
				f.MultiplyMany(yv, x, k)
				simd.SetEnabled(false)
				f.MultiplyMany(ys, x, k)
				simd.SetEnabled(true)
				if i, ok := equalOrClose(b.Name, yv, ys); !ok {
					t.Errorf("%s/%s k=%d: y[%d] simd=%v scalar=%v",
						mname, b.Name, k, i, yv[i], ys[i])
				}
			}
		}
	}
}
