package formats

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/simd"
	"repro/internal/testutil"
)

// SIMD vs scalar dispatch equivalence: every registry format must produce
// the same product under both dispatch modes, on the same built format
// (only the kernel path toggles, never the layout).
//
// The accumulation-order contract (internal/simd): the ELL, SELL-C-s,
// BCSR and every fused multi kernel preserve the scalar accumulation
// order per output element, so their two modes must match BIT FOR BIT.
// Only the Vec-CSR row dot-product (and MKL-IE, which adopts the
// vectorized row kernel) runs the reassociating gather+FMA kernel, and
// Vec-CSR's scalar path already reassociates into 4/8 partial sums — those
// two get a small relative tolerance instead. The matrix pair and the
// bitwise-unless-reassociating policy live in internal/testutil, shared
// with the updatable-matrix suite.
func simdEquivMatrices(t *testing.T) map[string]*matrix.CSR {
	return testutil.SIMDEquivMatrices(t)
}

var equalOrClose = testutil.EqualOrClose

// TestSIMDScalarEquivalence runs every format's single-vector kernels
// (serial and parallel) under both dispatch modes and compares.
func TestSIMDScalarEquivalence(t *testing.T) {
	if !simd.Available() {
		t.Skip("no accelerated kernels on this host")
	}
	prev := simd.SetEnabled(true)
	defer simd.SetEnabled(prev)
	for mname, m := range simdEquivMatrices(t) {
		x := matrix.RandomVector(m.Cols, 4242)
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				continue // hostile structure for this format; covered elsewhere
			}
			ys := make([]float64, m.Rows)
			yv := make([]float64, m.Rows)
			for _, workers := range []int{1, 3} {
				simd.SetEnabled(true)
				f.SpMVParallel(x, yv, workers)
				simd.SetEnabled(false)
				f.SpMVParallel(x, ys, workers)
				simd.SetEnabled(true)
				if i, ok := equalOrClose(b.Name, yv, ys); !ok {
					t.Errorf("%s/%s workers=%d: y[%d] simd=%v scalar=%v",
						mname, b.Name, workers, i, yv[i], ys[i])
					break
				}
			}
		}
	}
}

// TestSIMDLevelEquivalence sweeps the tier cap (SetLevel) across every
// level the host clamps to, on every registry format, single- and
// multi-vector (k in {1,4,8}), over both the standard equivalence pair
// and the lane-unaligned tail matrices whose every row exercises the
// masked-tail / remainder paths. Each accelerated tier is compared
// against the scalar dispatch of the same built instance; the tolerance
// policy is evaluated while the tier is active, so the per-kernel
// reassociation rules (e.g. BCSR on the AVX-512 rung) apply exactly when
// that implementation is the one dispatched.
func TestSIMDLevelEquivalence(t *testing.T) {
	if !simd.Available() {
		t.Skip("no accelerated kernels on this host")
	}
	prevEnabled := simd.SetEnabled(true)
	defer simd.SetEnabled(prevEnabled)
	prevCap := simd.SetLevel("scalar")
	defer simd.SetLevel(prevCap)

	mats := simdEquivMatrices(t)
	for name, m := range testutil.UnalignedTailMatrices(t) {
		mats[name] = m
	}
	for _, level := range []string{"avx2", "avx512"} {
		simd.SetLevel(level)
		if simd.Level() == "scalar" {
			continue // host can't reach any accelerated tier
		}
		for mname, m := range mats {
			x := matrix.RandomVector(m.Cols, 4242)
			for _, b := range Registry() {
				f, err := b.Build(m)
				if err != nil {
					continue
				}
				// Single-vector, serial and parallel.
				yv := make([]float64, m.Rows)
				ys := make([]float64, m.Rows)
				for _, workers := range []int{1, 3} {
					simd.SetLevel(level)
					f.SpMVParallel(x, yv, workers)
					simd.SetLevel("scalar")
					f.SpMVParallel(x, ys, workers)
					simd.SetLevel(level)
					if i, ok := equalOrClose(b.Name, yv, ys); !ok {
						t.Errorf("%s/%s/%s workers=%d: y[%d] accel=%v scalar=%v",
							level, mname, b.Name, workers, i, yv[i], ys[i])
						break
					}
				}
				// Fused multi-vector across the register-tile widths.
				for _, k := range []int{1, 4, 8} {
					xk := matrix.RandomVector(m.Cols*k, 97)
					ykv := make([]float64, m.Rows*k)
					yks := make([]float64, m.Rows*k)
					simd.SetLevel(level)
					f.MultiplyMany(ykv, xk, k)
					simd.SetLevel("scalar")
					f.MultiplyMany(yks, xk, k)
					simd.SetLevel(level)
					if i, ok := equalOrClose(b.Name, ykv, yks); !ok {
						t.Errorf("%s/%s/%s k=%d: y[%d] accel=%v scalar=%v",
							level, mname, b.Name, k, i, ykv[i], yks[i])
					}
				}
			}
		}
	}
}

// TestSIMDScalarEquivalenceMulti does the same for the k-wide fused
// kernels across the register-tile widths the dispatch layer tiles by.
func TestSIMDScalarEquivalenceMulti(t *testing.T) {
	if !simd.Available() {
		t.Skip("no accelerated kernels on this host")
	}
	prev := simd.SetEnabled(true)
	defer simd.SetEnabled(prev)
	for mname, m := range simdEquivMatrices(t) {
		for _, b := range Registry() {
			f, err := b.Build(m)
			if err != nil {
				continue
			}
			for _, k := range []int{1, 4, 8} {
				x := matrix.RandomVector(m.Cols*k, 97)
				yv := make([]float64, m.Rows*k)
				ys := make([]float64, m.Rows*k)
				simd.SetEnabled(true)
				f.MultiplyMany(yv, x, k)
				simd.SetEnabled(false)
				f.MultiplyMany(ys, x, k)
				simd.SetEnabled(true)
				if i, ok := equalOrClose(b.Name, yv, ys); !ok {
					t.Errorf("%s/%s k=%d: y[%d] simd=%v scalar=%v",
						mname, b.Name, k, i, yv[i], ys[i])
				}
			}
		}
	}
}
