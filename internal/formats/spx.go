package formats

import (
	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// SPX is a SparseX-like compressed format (Elafrou et al., TOMS 2018): the
// build step detects substructures in each row and encodes them as units
// with minimal metadata, directly attacking memory-bandwidth intensity.
// Detected units:
//
//   - horizontal runs: >= MinRunLen consecutive columns stored as
//     (start, len) with no per-element indices;
//   - delta-compressed singletons: remaining elements stored as unsigned
//     column deltas in 1 or 2 bytes when they fit, 4 bytes otherwise.
//
// The full SparseX library also detects vertical, diagonal and block
// substructures; horizontal runs plus delta encoding capture the dominant
// compression on the row-major matrices this study generates, and the
// Traits report the achieved compression honestly.
type SPX struct {
	rows, cols int
	nnz        int64
	rowPtr     []int32 // unit-stream offset per row, into units
	units      []byte  // encoded unit stream
	val        []float64
	valPtr     []int64 // value offset per row
	nnzPtr     []int32 // value offsets as int32 for the partitioner
	bytesTotal int64
	plans      exec.PlanCache
}

// MinRunLen is the shortest column run encoded as a horizontal-run unit.
const MinRunLen = 4

// Unit opcodes in the encoded stream.
const (
	opRun     = iota // [op][u32 startCol][u16 len]
	opDelta8         // [op][u8 count][u32 firstCol][u8 deltas...]
	opDelta16        // like opDelta8 with u16 deltas
	opDelta32        // like opDelta8 with u32 deltas
)

// NewSPX builds the SparseX-like format from a CSR matrix.
func NewSPX(m *matrix.CSR) *SPX {
	f := &SPX{rows: m.Rows, cols: m.Cols, nnz: int64(m.NNZ()), plans: exec.NewPlanCache()}
	f.rowPtr = make([]int32, m.Rows+1)
	f.valPtr = make([]int64, m.Rows+1)
	f.val = append([]float64(nil), m.Val...)

	var stream []byte
	emitU16 := func(v uint16) { stream = append(stream, byte(v), byte(v>>8)) }
	emitU32 := func(v uint32) { stream = append(stream, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }

	for i := 0; i < m.Rows; i++ {
		f.rowPtr[i] = int32(len(stream))
		f.valPtr[i] = int64(m.RowPtr[i])
		cols, _ := m.Row(i)
		k := 0
		for k < len(cols) {
			// Measure the run of consecutive columns starting at k.
			run := 1
			for k+run < len(cols) && cols[k+run] == cols[k+run-1]+1 && run < 65535 {
				run++
			}
			if run >= MinRunLen {
				stream = append(stream, opRun)
				emitU32(uint32(cols[k]))
				emitU16(uint16(run))
				k += run
				continue
			}
			// Collect singletons until the next long run begins.
			start := k
			k += run
			for k < len(cols) {
				r := 1
				for k+r < len(cols) && cols[k+r] == cols[k+r-1]+1 {
					r++
				}
				if r >= MinRunLen {
					break
				}
				k += r
			}
			group := cols[start:k]
			// Choose the narrowest delta width that fits all gaps.
			width := byte(opDelta8)
			for j := 1; j < len(group); j++ {
				d := uint32(group[j] - group[j-1])
				if d > 0xFFFF {
					width = opDelta32
					break
				}
				if d > 0xFF && width == opDelta8 {
					width = opDelta16
				}
			}
			for off := 0; off < len(group); off += 255 {
				n := len(group) - off
				if n > 255 {
					n = 255
				}
				stream = append(stream, width, byte(n))
				emitU32(uint32(group[off]))
				for j := 1; j < n; j++ {
					d := uint32(group[off+j] - group[off+j-1])
					switch width {
					case opDelta8:
						stream = append(stream, byte(d))
					case opDelta16:
						emitU16(uint16(d))
					default:
						emitU32(d)
					}
				}
			}
		}
	}
	f.rowPtr[m.Rows] = int32(len(stream))
	f.valPtr[m.Rows] = int64(m.NNZ())
	f.units = stream
	f.nnzPtr = make([]int32, len(f.valPtr))
	for i, v := range f.valPtr {
		f.nnzPtr[i] = int32(v)
	}
	f.bytesTotal = int64(len(stream)) + int64(len(f.val))*8 +
		int64(len(f.rowPtr))*4 + int64(len(f.valPtr))*8
	return f
}

// Name implements Format.
func (f *SPX) Name() string { return "SparseX" }

// Rows implements Format.
func (f *SPX) Rows() int { return f.rows }

// Cols implements Format.
func (f *SPX) Cols() int { return f.cols }

// NNZ implements Format.
func (f *SPX) NNZ() int64 { return f.nnz }

// Bytes implements Format.
func (f *SPX) Bytes() int64 { return f.bytesTotal }

// CompressionRatio returns CSR bytes divided by SPX bytes (> 1 means SPX is
// smaller).
func (f *SPX) CompressionRatio() float64 {
	csr := f.nnz*12 + int64(f.rows+1)*4
	if f.bytesTotal == 0 {
		return 1
	}
	return float64(csr) / float64(f.bytesTotal)
}

// Traits implements Format.
func (f *SPX) Traits() Traits {
	meta := 4.0
	if f.nnz > 0 {
		meta = float64(f.bytesTotal-8*f.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: NNZGranular, MetaBytesPerNNZ: meta,
		DecodeCycles: spxDecodeCycles, Preprocessed: true}
}

// spxDecodeCycles is the scalar unit-decode work per stored entry the
// run-length expansion costs on top of the FMA (branch on unit header,
// delta add, bounds walk) — compute the device model charges against the
// clock, not the memory bus.
const spxDecodeCycles = 2.0

func (f *SPX) rowRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		s := int(f.rowPtr[i])
		end := int(f.rowPtr[i+1])
		v := f.valPtr[i]
		u := f.units
		for s < end {
			switch op := u[s]; op {
			case opRun:
				col := int32(uint32(u[s+1]) | uint32(u[s+2])<<8 | uint32(u[s+3])<<16 | uint32(u[s+4])<<24)
				n := int(uint16(u[s+5]) | uint16(u[s+6])<<8)
				s += 7
				for j := 0; j < n; j++ {
					sum += f.val[v] * x[col+int32(j)]
					v++
				}
			default: // delta groups
				n := int(u[s+1])
				col := int32(uint32(u[s+2]) | uint32(u[s+3])<<8 | uint32(u[s+4])<<16 | uint32(u[s+5])<<24)
				s += 6
				sum += f.val[v] * x[col]
				v++
				for j := 1; j < n; j++ {
					var d int32
					switch op {
					case opDelta8:
						d = int32(u[s])
						s++
					case opDelta16:
						d = int32(uint16(u[s]) | uint16(u[s+1])<<8)
						s += 2
					default:
						d = int32(uint32(u[s]) | uint32(u[s+1])<<8 | uint32(u[s+2])<<16 | uint32(u[s+3])<<24)
						s += 4
					}
					col += d
					sum += f.val[v] * x[col]
					v++
				}
			}
		}
		y[i] = sum
	}
}

// SpMV implements Format.
func (f *SPX) SpMV(x, y []float64) {
	checkShape("SparseX", f.rows, f.cols, x, y)
	f.rowRange(x, y, 0, f.rows)
}

// SpMVParallel implements Format with nonzero-balanced row partitions,
// using the value offsets as the balance measure.
func (f *SPX) SpMVParallel(x, y []float64, workers int) {
	checkShape("SparseX", f.rows, f.cols, x, y)
	workers = exec.Workers(f.nnz+int64(f.rows), workers)
	if workers <= 1 {
		f.rowRange(x, y, 0, f.rows)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	pl := f.plans.Get(g.Key(), func(k exec.PlanKey) *exec.Plan {
		ranges, off := sched.DomainSplitOff(f.nnzPtr, k.Domains, k.Workers, sched.NNZBalanced)
		return &exec.Plan{Ranges: ranges, DomainOff: off}
	})
	ranges := pl.Ranges
	g.RunPlan(pl, func(w int) {
		f.rowRange(x, y, ranges[w].RowLo, ranges[w].RowHi)
	})
}

// MultiplyMany implements Format one vector at a time: the compressed unit
// stream must be re-decoded per register tile, which costs more than the
// fused reuse saves, so SparseX stays off the multi-vector hot path.
func (f *SPX) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti("SparseX", f.rows, f.cols, y, x, k)
	multiplyManyByColumn(f, y, x, k)
}
