package formats

import (
	"testing"

	"repro/internal/matrix"
)

// TestSetVecWideRowMin covers the tuning hook for the 8-accumulator wide
// CSR path: the setter overrides and restores, and the vectorized kernel
// stays correct when the cutoff forces the wide path onto every row (the
// configuration a wider-load-port host would run).
func TestSetVecWideRowMin(t *testing.T) {
	// The process may have started with SPMV_VEC_ROWMIN set (the state the
	// tuning recipe in docs/BENCHMARKS.md creates); neutralize it so the
	// default-value assertions below hold, and restore on cleanup.
	t.Setenv("SPMV_VEC_ROWMIN", "")
	orig := SetVecWideRowMin(0)
	t.Cleanup(func() { SetVecWideRowMin(orig) })

	if got := VecWideRowMin(); got != defaultVecWideRowMin {
		t.Fatalf("default cutoff = %d, want %d", got, defaultVecWideRowMin)
	}
	if prev := SetVecWideRowMin(8); prev != 0 {
		t.Fatalf("first override returned previous %d, want 0", prev)
	}
	defer SetVecWideRowMin(0)
	if got := VecWideRowMin(); got != 8 {
		t.Fatalf("cutoff after SetVecWideRowMin(8) = %d, want 8", got)
	}

	// Rows of length 8..~70 now all take the wide path; the result must
	// still match the scalar reference.
	sizes := make([]int, 300)
	for i := range sizes {
		sizes[i] = 8 + i%64
	}
	m := matrix.RandomRowSizes(300, 500, sizes, 61)
	x := matrix.RandomVector(m.Cols, 62)
	want := make([]float64, m.Rows)
	m.SpMV(x, want)
	f := NewVecCSR(m)
	got := make([]float64, m.Rows)
	f.SpMV(x, got)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("wide path forced on short rows: diff %g", d)
	}

	if prev := SetVecWideRowMin(0); prev != 8 {
		t.Errorf("restore returned previous %d, want 8", prev)
	}
	if got := VecWideRowMin(); got != defaultVecWideRowMin {
		t.Errorf("cutoff after restore = %d, want default %d", got, defaultVecWideRowMin)
	}
}
