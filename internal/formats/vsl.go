package formats

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/matrix"
)

// VSL is a CSC-variant format modeled on the Xilinx Vitis Sparse Library
// design for the Alveo-U280 (Section II-B.4): the matrix is transposed to
// column-major order and split into 2D partitions — Channels column groups
// (the HBM pseudo-channels feeding the 16 execution units) x RowBlocks row
// blocks. Inside a partition every non-empty column segment is zero-padded
// to the partition's maximum segment length, rounded up to a multiple of
// AccLatency (the double-precision accumulation pipeline depth). This is
// the padding scheme whose blow-up on hypersparse and irregular matrices
// drives the paper's FPGA observations; construction fails when the padded
// image no longer fits the configured HBM capacity — the failure mode that
// removed 10 validation matrices from the paper's FPGA runs.
type VSL struct {
	rows, cols int
	nnz        int64
	channels   int

	// Per channel: a flattened padded stream of (rowIdx, value) pairs plus
	// the x-gather index per entry. Padding entries carry value 0.
	chRow [][]int32
	chCol [][]int32
	chVal [][]float64

	paddedEntries int64
	plans         exec.PlanCache
}

// VSLConfig controls the partition layout and the capacity gate.
type VSLConfig struct {
	Channels      int   // parallel execution units (16 on the Alveo-U280)
	RowBlocks     int   // 2D partition height count (1: column-only padding)
	AccLatency    int   // accumulator pipeline depth; streams pad to multiples of it
	CapacityBytes int64 // HBM capacity available for the padded matrix image
}

// DefaultVSLConfig mirrors the Alveo-U280: 16 units, 8 row blocks, 8-deep
// accumulation, 8 GiB of HBM.
func DefaultVSLConfig() VSLConfig {
	return VSLConfig{Channels: 16, RowBlocks: 8, AccLatency: 8, CapacityBytes: 8 << 30}
}

// NewVSL builds the VSL format, failing if the padded image exceeds the
// configured capacity.
func NewVSL(m *matrix.CSR, cfg VSLConfig) (*VSL, error) {
	if cfg.Channels < 1 || cfg.AccLatency < 1 {
		return nil, fmt.Errorf("%w VSL: config %+v", ErrBuild, cfg)
	}
	if cfg.RowBlocks < 1 {
		cfg.RowBlocks = 1
	}
	t := m.Transpose() // rows of t are columns of m
	f := &VSL{
		rows: m.Rows, cols: m.Cols, nnz: int64(m.NNZ()), channels: cfg.Channels,
		plans: exec.NewPlanCache(),
	}
	f.chRow = make([][]int32, cfg.Channels)
	f.chCol = make([][]int32, cfg.Channels)
	f.chVal = make([][]float64, cfg.Channels)

	blockOf := func(row int32) int {
		b := int(row) * cfg.RowBlocks / maxInt(m.Rows, 1)
		if b >= cfg.RowBlocks {
			b = cfg.RowBlocks - 1
		}
		return b
	}

	// Contiguous column blocks per channel keep x accesses streaming.
	for ch := 0; ch < cfg.Channels; ch++ {
		colLo := m.Cols * ch / cfg.Channels
		colHi := m.Cols * (ch + 1) / cfg.Channels
		var rowIdx, colIdx []int32
		var val []float64

		// Segment the channel's columns by row block and find each
		// partition's maximum segment length.
		segLen := make([][]int32, cfg.RowBlocks) // per block: per column length
		maxSeg := make([]int, cfg.RowBlocks)
		for b := range segLen {
			segLen[b] = make([]int32, colHi-colLo)
		}
		for c := colLo; c < colHi; c++ {
			rows, _ := t.Row(c)
			for _, r := range rows {
				segLen[blockOf(r)][c-colLo]++
			}
		}
		for b := 0; b < cfg.RowBlocks; b++ {
			for _, n := range segLen[b] {
				if int(n) > maxSeg[b] {
					maxSeg[b] = int(n)
				}
			}
			// Round the partition stride up to the accumulator depth.
			if maxSeg[b] > 0 {
				maxSeg[b] = (maxSeg[b] + cfg.AccLatency - 1) / cfg.AccLatency * cfg.AccLatency
			}
		}

		// Emit the padded streams partition by partition.
		for b := 0; b < cfg.RowBlocks; b++ {
			stride := maxSeg[b]
			if stride == 0 {
				continue
			}
			for c := colLo; c < colHi; c++ {
				n := int(segLen[b][c-colLo])
				if n == 0 {
					continue // fully empty segments occupy no stream slots
				}
				rows, vals := t.Row(c)
				for k, r := range rows {
					if blockOf(r) != b {
						continue
					}
					rowIdx = append(rowIdx, r)
					colIdx = append(colIdx, int32(c))
					val = append(val, vals[k])
				}
				for p := n; p < stride; p++ {
					rowIdx = append(rowIdx, 0)
					colIdx = append(colIdx, int32(c))
					val = append(val, 0)
				}
			}
		}
		f.chRow[ch] = rowIdx
		f.chCol[ch] = colIdx
		f.chVal[ch] = val
		f.paddedEntries += int64(len(val))
	}

	if bytes := f.Bytes(); cfg.CapacityBytes > 0 && bytes > cfg.CapacityBytes {
		return nil, fmt.Errorf("%w VSL: padded image %d bytes exceeds HBM capacity %d",
			ErrBuild, bytes, cfg.CapacityBytes)
	}
	return f, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name implements Format.
func (f *VSL) Name() string { return "VSL" }

// Rows implements Format.
func (f *VSL) Rows() int { return f.rows }

// Cols implements Format.
func (f *VSL) Cols() int { return f.cols }

// NNZ implements Format.
func (f *VSL) NNZ() int64 { return f.nnz }

// Bytes implements Format: 16 bytes per padded stream entry (value, row
// index, gather index).
func (f *VSL) Bytes() int64 { return f.paddedEntries * 16 }

// PaddedEntries returns the stream slot count including padding.
func (f *VSL) PaddedEntries() int64 { return f.paddedEntries }

// Traits implements Format.
func (f *VSL) Traits() Traits {
	pad := 0.0
	meta := 8.0
	if f.nnz > 0 {
		pad = float64(f.paddedEntries-f.nnz) / float64(f.nnz)
		meta = float64(f.Bytes()-8*f.nnz) / float64(f.nnz)
	}
	return Traits{Balancing: NNZGranular, PaddingRatio: pad,
		MetaBytesPerNNZ: meta, Vectorizable: true, ColumnMajor: true, Preprocessed: true}
}

// SpMV implements Format.
func (f *VSL) SpMV(x, y []float64) {
	checkShape("VSL", f.rows, f.cols, x, y)
	zero(y)
	for ch := 0; ch < f.channels; ch++ {
		row, col, val := f.chRow[ch], f.chCol[ch], f.chVal[ch]
		for k, v := range val {
			y[row[k]] += v * x[col[k]]
		}
	}
}

// vslScratch is the plan-cached per-worker partial result vectors. Reusing
// them across calls saves a rows-sized allocation per worker per call — the
// dominant per-call cost of the seed implementation.
type vslScratch struct {
	partials [][]float64
}

// SpMVParallel implements Format: channels run concurrently into private
// partial vectors (the hardware writes disjoint HBM banks), reduced at the
// end. Worker count above the channel count cannot help, as on the FPGA.
func (f *VSL) SpMVParallel(x, y []float64, workers int) {
	checkShape("VSL", f.rows, f.cols, x, y)
	workers = exec.Workers(f.paddedEntries+int64(f.rows), workers)
	if workers > f.channels {
		workers = f.channels
	}
	if workers <= 1 {
		f.SpMV(x, y)
		return
	}
	g := exec.Acquire(workers)
	defer g.Release() // no-op after Run; frees the shard if a plan build panics
	// Unlike the other formats, VSL deliberately keys its plan by worker
	// count alone (AnyShard): the scratch is workers x rows of partial
	// vectors, far too heavy to duplicate per placement. Shard-concurrent
	// calls then share one plan and the loser of TryLock pays the private
	// allocation — the right trade for megabyte-scale scratch.
	key := exec.PlanKey{Shard: exec.AnyShard, Domains: 1, Workers: workers}
	pl := f.plans.Get(key, func(k exec.PlanKey) *exec.Plan {
		sc := &vslScratch{partials: make([][]float64, k.Workers)}
		for w := range sc.partials {
			sc.partials[w] = make([]float64, f.rows)
		}
		return &exec.Plan{Scratch: sc}
	})
	sc := pl.Scratch.(*vslScratch)
	partials := sc.partials
	if pl.TryLock() {
		defer pl.Unlock()
	} else {
		// Another call on this plan is mid-flight: private partials keep
		// concurrent invocations fully parallel (the seed's per-call cost,
		// paid only under actual contention).
		partials = make([][]float64, workers)
		for w := range partials {
			partials[w] = make([]float64, f.rows)
		}
	}
	g.Run(workers, func(w int) {
		part := partials[w]
		zero(part)
		for ch := w; ch < f.channels; ch += workers {
			row, col, val := f.chRow[ch], f.chCol[ch], f.chVal[ch]
			for k, v := range val {
				part[row[k]] += v * x[col[k]]
			}
		}
	})
	zero(y)
	for _, part := range partials[:workers] {
		for i, v := range part {
			y[i] += v
		}
	}
}

// MultiplyMany implements Format one vector at a time: the FPGA design
// this format models streams one vector through the HBM channels, and a
// fused variant would multiply the already megabyte-scale partial-vector
// scratch by k.
func (f *VSL) MultiplyMany(y, x []float64, k int) {
	checkShapeMulti("VSL", f.rows, f.cols, y, x, k)
	multiplyManyByColumn(f, y, x, k)
}
