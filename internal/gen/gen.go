// Package gen implements the paper's artificial matrix generator
// (Section III-B, Listing 1). Given a target feature vector — average and
// standard deviation of nonzeros per row, skew coefficient, scaled bandwidth,
// cross-row similarity and average number of neighbors — it produces a
// concrete CSR matrix whose measured features approximate the request.
//
// The construction follows the paper:
//
//  1. Row sizes are drawn from the requested distribution
//     (normal N(avg, std) by default).
//  2. Skew is imposed with an exponentially decreasing profile
//     MAX * exp(-C*i/rows), where MAX = avg*(1+skew) and C is solved so the
//     profile's mean equals the requested average; the totals are then
//     re-balanced so the combined average matches exactly.
//  3. Nonzeros are placed row by row: first, column positions of the
//     previous row are duplicated with probability cross_row_sim; the rest
//     are placed uniformly inside a bandwidth window of bw_scaled*cols
//     columns; after every random placement, adjacent neighbors are appended
//     with probability avg_num_neigh/2 until the dice roll fails, which
//     yields geometric run lengths and an expected per-element neighbor
//     count of exactly avg_num_neigh.
//
// Generation is deterministic in Params.Seed and independent of the worker
// count: rows are split into fixed-size chunks, each driven by its own
// splitmix-derived PRNG stream.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/matrix"
)

// Distribution selects the base row-size distribution.
type Distribution int

// Supported row-size distributions.
const (
	Normal  Distribution = iota // N(avg, std), the paper's choice
	Uniform                     // uniform with matching mean and variance
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Normal:
		return "normal"
	case Uniform:
		return "uniform"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// Params mirrors the artificial_matrix_generation signature of Listing 1.
type Params struct {
	Rows, Cols   int
	AvgNNZPerRow float64
	StdNNZPerRow float64
	Dist         Distribution
	SkewCoeff    float64 // (max-avg)/avg target; 0 means balanced
	BWScaled     float64 // row bandwidth as a fraction of Cols, in (0,1]
	CrossRowSim  float64 // probability of duplicating previous-row columns
	AvgNumNeigh  float64 // target same-row neighbor count, in [0,2)
	Seed         int64
}

// chunkRows is the fixed generation chunk; results do not depend on the
// worker count because chunk boundaries depend only on Rows.
const chunkRows = 4096

// ErrParams reports an invalid generator configuration.
var ErrParams = errors.New("gen: invalid parameters")

// Validate checks parameter ranges.
func (p Params) Validate() error {
	switch {
	case p.Rows <= 0 || p.Cols <= 0:
		return fmt.Errorf("%w: shape %dx%d", ErrParams, p.Rows, p.Cols)
	case p.AvgNNZPerRow <= 0:
		return fmt.Errorf("%w: avg nnz/row %g", ErrParams, p.AvgNNZPerRow)
	case p.AvgNNZPerRow > float64(p.Cols):
		return fmt.Errorf("%w: avg nnz/row %g exceeds cols %d", ErrParams, p.AvgNNZPerRow, p.Cols)
	case p.StdNNZPerRow < 0:
		return fmt.Errorf("%w: std nnz/row %g", ErrParams, p.StdNNZPerRow)
	case p.SkewCoeff < 0:
		return fmt.Errorf("%w: skew %g", ErrParams, p.SkewCoeff)
	case p.BWScaled < 0 || p.BWScaled > 1:
		return fmt.Errorf("%w: bw_scaled %g outside [0,1]", ErrParams, p.BWScaled)
	case p.CrossRowSim < 0 || p.CrossRowSim > 1:
		return fmt.Errorf("%w: cross_row_sim %g outside [0,1]", ErrParams, p.CrossRowSim)
	case p.AvgNumNeigh < 0 || p.AvgNumNeigh >= 2:
		return fmt.Errorf("%w: avg_num_neigh %g outside [0,2)", ErrParams, p.AvgNumNeigh)
	}
	return nil
}

// MaxFeasibleSkew returns the largest skew coefficient reachable for the
// given shape: the longest possible row is Cols, so skew cannot exceed
// Cols/avg - 1.
func (p Params) MaxFeasibleSkew() float64 {
	return float64(p.Cols)/p.AvgNNZPerRow - 1
}

// RowsForFootprint returns the row count for which a square CSR matrix with
// the given average nonzeros per row occupies approximately mb MiB
// (12 bytes per nonzero + 4 per row-pointer entry, as in the paper's f1).
func RowsForFootprint(mb, avgNNZ float64) int {
	rows := (mb*(1<<20) - 4) / (12*avgNNZ + 4)
	if rows < 1 {
		return 1
	}
	return int(rows)
}

// FromFeatures derives generator parameters from a feature-space point:
// a square matrix sized so the CSR footprint matches fv.MemFootprintMB.
// The row-size standard deviation defaults to 30% of the average, matching
// the moderate spread used for the paper's dataset.
func FromFeatures(fv core.FeatureVector, seed int64) Params {
	rows := fv.Rows
	cols := fv.Cols
	if rows == 0 {
		rows = RowsForFootprint(fv.MemFootprintMB, fv.AvgNNZPerRow)
		cols = rows
	}
	return Params{
		Rows:         rows,
		Cols:         cols,
		AvgNNZPerRow: fv.AvgNNZPerRow,
		StdNNZPerRow: fv.AvgNNZPerRow * 0.3,
		Dist:         Normal,
		SkewCoeff:    fv.SkewCoeff,
		BWScaled:     fv.BWScaled,
		CrossRowSim:  fv.CrossRowSim,
		AvgNumNeigh:  fv.AvgNumNeigh,
		Seed:         seed,
	}
}

// Generate produces the artificial matrix for p using all available CPUs.
func Generate(p Params) (*matrix.CSR, error) {
	return GenerateParallel(p, runtime.GOMAXPROCS(0))
}

// GenerateParallel produces the artificial matrix using the given number of
// workers. The result is identical for every workers value.
func GenerateParallel(p Params, workers int) (*matrix.CSR, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}

	counts := rowCounts(p)
	rowPtr := make([]int32, p.Rows+1)
	var total int64
	for i, n := range counts {
		rowPtr[i] = int32(total)
		total += int64(n)
	}
	rowPtr[p.Rows] = int32(total)
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d nonzeros exceed int32 indexing", ErrParams, total)
	}

	m := &matrix.CSR{
		Rows:   p.Rows,
		Cols:   p.Cols,
		RowPtr: rowPtr,
		ColIdx: make([]int32, total),
		Val:    make([]float64, total),
	}

	nChunks := (p.Rows + chunkRows - 1) / chunkRows
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(chunk int) {
			defer wg.Done()
			defer func() { <-sem }()
			fillChunk(m, counts, p, chunk)
		}(c)
	}
	wg.Wait()
	return m, nil
}

// rowCounts assigns the number of nonzeros to every row: base distribution,
// skew profile, then exact re-balancing of the total.
func rowCounts(p Params) []int {
	rng := rand.New(rand.NewSource(splitmix(p.Seed, 0x9e3779b97f4a7c15)))
	counts := make([]int, p.Rows)
	maxRow := p.Cols

	draw := func(mean float64) int {
		var v float64
		switch p.Dist {
		case Uniform:
			half := p.StdNNZPerRow * math.Sqrt(3)
			v = mean + (rng.Float64()*2-1)*half
		default:
			v = mean + rng.NormFloat64()*p.StdNNZPerRow
		}
		n := int(math.Round(v))
		if n < 1 {
			n = 1
		}
		if n > maxRow {
			n = maxRow
		}
		return n
	}

	if p.SkewCoeff <= 0 {
		for i := range counts {
			counts[i] = draw(p.AvgNNZPerRow)
		}
	} else {
		// MAX*exp(-C*i/rows) profile with mean equal to the requested average.
		max := p.AvgNNZPerRow * (1 + p.SkewCoeff)
		if max > float64(maxRow) {
			max = float64(maxRow) // infeasible skew clamps at a full row
		}
		c := solveDecayConstant(max / p.AvgNNZPerRow)
		for i := range counts {
			mean := max * math.Exp(-c*float64(i)/float64(p.Rows))
			counts[i] = draw(mean)
		}
		counts[0] = int(math.Round(max)) // pin the maximum so measured skew matches
	}

	rebalance(counts, int64(math.Round(p.AvgNNZPerRow*float64(p.Rows))), maxRow, rng)
	return counts
}

// solveDecayConstant returns C such that the discrete mean of exp(-C*t) on
// [0,1), i.e. (1-exp(-C))/C, equals 1/ratio. ratio = MAX/avg >= 1.
func solveDecayConstant(ratio float64) float64 {
	if ratio <= 1 {
		return 0
	}
	target := 1 / ratio
	lo, hi := 1e-9, 1.0
	for (1-math.Exp(-hi))/hi > target {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if (1-math.Exp(-mid))/mid > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// rebalance nudges individual rows by one element at a time until the total
// equals want, respecting the [1, maxRow] bounds and never touching row 0
// (which pins the skew maximum).
func rebalance(counts []int, want int64, maxRow int, rng *rand.Rand) {
	var total int64
	for _, n := range counts {
		total += int64(n)
	}
	if len(counts) <= 1 {
		return
	}
	for attempts := 0; total != want && attempts < 64*len(counts); attempts++ {
		i := 1 + rng.Intn(len(counts)-1)
		if total < want && counts[i] < maxRow {
			counts[i]++
			total++
		} else if total > want && counts[i] > 1 {
			counts[i]--
			total--
		}
	}
}

// fillChunk places the nonzeros for one chunk of rows. Each chunk has an
// independent PRNG stream and carries its own bandwidth-window random walk;
// cross-row duplication references the previous row inside the chunk only,
// so chunk boundaries are seams of slightly reduced similarity (negligible
// at the 4096-row chunk size).
func fillChunk(m *matrix.CSR, counts []int, p Params, chunk int) {
	rng := rand.New(rand.NewSource(splitmix(p.Seed, uint64(chunk)+1)))
	lo := chunk * chunkRows
	hi := lo + chunkRows
	if hi > p.Rows {
		hi = p.Rows
	}

	window := int(math.Round(p.BWScaled * float64(p.Cols)))
	if window < 1 {
		window = 1
	}
	// A slow random walk of the window anchor produces a banded structure
	// whose measured bandwidth tracks the request.
	step := p.Cols / 256
	if step < 1 {
		step = 1
	}
	start := 0
	if p.Cols > window {
		start = rng.Intn(p.Cols - window + 1)
	}

	pNeigh := p.AvgNumNeigh / 2
	set := make(map[int32]struct{}, 256)
	var prev []int32

	for i := lo; i < hi; i++ {
		n := counts[i]
		w := window
		// Spread correction: k uniform draws in a window of width w span
		// w*(k-1)/(k+1) on average; widen so the measured bandwidth matches.
		if n >= 2 {
			w = int(float64(w) * float64(n+1) / float64(n-1))
		}
		if w < n {
			w = n
		}
		if w > p.Cols {
			w = p.Cols
		}
		if p.Cols > w {
			start += rng.Intn(2*step+1) - step
			if start < 0 {
				start = 0
			}
			if start > p.Cols-w {
				start = p.Cols - w
			}
		} else {
			start = 0
		}

		clear(set)
		// Step 1: duplicate previous-row columns with probability sim.
		// Per-column duplication fragments the previous row's neighbor
		// runs, so each duplicate also rolls the clustering dice and
		// extends rightward — keeping the two locality features
		// independent targets even when both are high.
		for _, c := range prev {
			if len(set) >= n {
				break
			}
			if rng.Float64() < p.CrossRowSim {
				set[c] = struct{}{}
				for len(set) < n && rng.Float64() < pNeigh {
					c++
					if int(c) >= p.Cols {
						break
					}
					if _, dup := set[c]; dup {
						break
					}
					set[c] = struct{}{}
				}
			}
		}
		// Step 2: random placement in the window with neighbor clustering.
		misses := 0
		for len(set) < n {
			c := int32(start + rng.Intn(w))
			if _, dup := set[c]; dup {
				misses++
				if misses > 8*w+64 {
					fillLinear(set, n, start, w)
					break
				}
				continue
			}
			set[c] = struct{}{}
			for len(set) < n && rng.Float64() < pNeigh {
				c++
				if int(c) >= start+w {
					break
				}
				if _, dup := set[c]; dup {
					break
				}
				set[c] = struct{}{}
			}
		}

		// Commit the row sorted, with uniform values in [-0.5, 0.5).
		base := m.RowPtr[i]
		cols := m.ColIdx[base : base+int32(n)]
		k := 0
		for c := range set {
			cols[k] = c
			k++
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		vals := m.Val[base : base+int32(n)]
		for k := range vals {
			vals[k] = rng.Float64() - 0.5
		}
		prev = cols
	}
}

// fillLinear deterministically tops a row up to n entries when random
// placement keeps colliding (nearly full window).
func fillLinear(set map[int32]struct{}, n, start, w int) {
	for c := int32(start); len(set) < n && int(c) < start+w; c++ {
		set[c] = struct{}{}
	}
	// The window itself may be too small if duplicated columns fell outside
	// it; spill to the left of the window as a last resort.
	for c := int32(start) - 1; len(set) < n && c >= 0; c-- {
		set[c] = struct{}{}
	}
}

// splitmix is the SplitMix64 mixing function, used to derive independent
// PRNG streams for chunks from the user seed.
func splitmix(seed int64, salt uint64) int64 {
	z := uint64(seed) + salt*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
