package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/matrix"
)

func mustGenerate(t *testing.T, p Params) *matrix.CSR {
	t.Helper()
	m, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate(%+v): %v", p, err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("generated matrix invalid: %v", err)
	}
	return m
}

func baseParams() Params {
	return Params{
		Rows: 4000, Cols: 4000,
		AvgNNZPerRow: 20, StdNNZPerRow: 5,
		BWScaled: 0.3, CrossRowSim: 0.2, AvgNumNeigh: 0.5,
		Seed: 42,
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Rows = 0 },
		func(p *Params) { p.Cols = -1 },
		func(p *Params) { p.AvgNNZPerRow = 0 },
		func(p *Params) { p.AvgNNZPerRow = 1e9 },
		func(p *Params) { p.StdNNZPerRow = -1 },
		func(p *Params) { p.SkewCoeff = -1 },
		func(p *Params) { p.BWScaled = 1.5 },
		func(p *Params) { p.CrossRowSim = -0.1 },
		func(p *Params) { p.AvgNumNeigh = 2.0 },
	}
	for i, mutate := range cases {
		p := baseParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	if err := baseParams().Validate(); err != nil {
		t.Errorf("Validate rejected good params: %v", err)
	}
}

func TestGenerateAvgNNZ(t *testing.T) {
	p := baseParams()
	m := mustGenerate(t, p)
	fv := core.Extract(m)
	if math.Abs(fv.AvgNNZPerRow-p.AvgNNZPerRow) > 0.05*p.AvgNNZPerRow {
		t.Errorf("AvgNNZPerRow = %g, want ~%g", fv.AvgNNZPerRow, p.AvgNNZPerRow)
	}
}

func TestGenerateSkew(t *testing.T) {
	for _, skew := range []float64{0, 10, 100} {
		p := baseParams()
		p.SkewCoeff = skew
		m := mustGenerate(t, p)
		fv := core.Extract(m)
		// Measured skew should track the request. With skew 0 the normal
		// noise gives a small positive skew; allow a slack floor.
		if skew == 0 {
			if fv.SkewCoeff > 3 {
				t.Errorf("skew 0: measured %g, want < 3", fv.SkewCoeff)
			}
			continue
		}
		if math.Abs(fv.SkewCoeff-skew) > 0.2*skew {
			t.Errorf("skew %g: measured %g", skew, fv.SkewCoeff)
		}
	}
}

func TestGenerateInfeasibleSkewClamps(t *testing.T) {
	p := baseParams()
	p.Rows, p.Cols = 500, 500
	p.AvgNNZPerRow = 20
	p.SkewCoeff = 10000 // max row would be 200020 > 500 cols
	m := mustGenerate(t, p)
	fv := core.Extract(m)
	maxSkew := p.MaxFeasibleSkew()
	if fv.SkewCoeff > maxSkew+1 {
		t.Errorf("measured skew %g exceeds feasibility bound %g", fv.SkewCoeff, maxSkew)
	}
	if m.MaxRowNNZ() != 500 {
		t.Errorf("clamped max row = %d, want full row 500", m.MaxRowNNZ())
	}
}

func TestGenerateCrossRowSim(t *testing.T) {
	for _, sim := range []float64{0.05, 0.5, 0.95} {
		p := baseParams()
		p.CrossRowSim = sim
		p.AvgNumNeigh = 0.05
		p.BWScaled = 0.5
		m := mustGenerate(t, p)
		fv := core.Extract(m)
		if math.Abs(fv.CrossRowSim-sim) > 0.15 {
			t.Errorf("sim %g: measured %g", sim, fv.CrossRowSim)
		}
	}
}

func TestGenerateNeighbors(t *testing.T) {
	for _, neigh := range []float64{0.05, 0.5, 0.95, 1.4, 1.9} {
		p := baseParams()
		p.AvgNumNeigh = neigh
		p.CrossRowSim = 0.05
		m := mustGenerate(t, p)
		fv := core.Extract(m)
		if math.Abs(fv.AvgNumNeigh-neigh) > 0.2 {
			t.Errorf("neigh %g: measured %g", neigh, fv.AvgNumNeigh)
		}
	}
}

func TestGenerateNeighborsUnderSimilarity(t *testing.T) {
	// The two locality features must stay independently controllable:
	// heavy cross-row duplication must not destroy neighbor clustering.
	for _, neigh := range []float64{0.5, 1.4, 1.9} {
		p := baseParams()
		p.AvgNumNeigh = neigh
		p.CrossRowSim = 0.5
		m := mustGenerate(t, p)
		fv := core.Extract(m)
		if math.Abs(fv.AvgNumNeigh-neigh) > 0.35 {
			t.Errorf("neigh %g at sim 0.5: measured %g", neigh, fv.AvgNumNeigh)
		}
	}
}

func TestGenerateBandwidth(t *testing.T) {
	for _, bw := range []float64{0.05, 0.3, 0.6} {
		p := baseParams()
		p.BWScaled = bw
		p.CrossRowSim = 0 // duplication widens spans across the walk
		m := mustGenerate(t, p)
		fv := core.Extract(m)
		if math.Abs(fv.BWScaled-bw) > 0.35*bw+0.02 {
			t.Errorf("bw %g: measured %g", bw, fv.BWScaled)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := baseParams()
	a := mustGenerate(t, p)
	b := mustGenerate(t, p)
	if !a.Equal(b) {
		t.Error("same seed produced different matrices")
	}
	p.Seed = 43
	c := mustGenerate(t, p)
	if a.Equal(c) {
		t.Error("different seeds produced identical matrices")
	}
}

func TestGenerateWorkerInvariance(t *testing.T) {
	p := baseParams()
	p.Rows = chunkRows*2 + 500 // straddle several chunks
	serial, err := GenerateParallel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := GenerateParallel(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(parallel) {
		t.Error("worker count changed the generated matrix")
	}
}

func TestGenerateFootprintTarget(t *testing.T) {
	for _, mb := range []float64{1, 4, 16} {
		fv := core.FeatureVector{MemFootprintMB: mb, AvgNNZPerRow: 20, BWScaled: 0.3}
		p := FromFeatures(fv, 7)
		m := mustGenerate(t, p)
		got := m.FootprintMB()
		if math.Abs(got-mb) > 0.1*mb {
			t.Errorf("footprint target %g MB: got %g MB", mb, got)
		}
	}
}

func TestRowsForFootprint(t *testing.T) {
	rows := RowsForFootprint(4, 20)
	// 4 MiB / (12*20+4) bytes per row.
	want := int(4 * (1 << 20) / 244)
	if math.Abs(float64(rows-want)) > 2 {
		t.Errorf("RowsForFootprint = %d, want ~%d", rows, want)
	}
	if RowsForFootprint(0.000001, 100) != 1 {
		t.Error("tiny footprint should clamp to 1 row")
	}
}

func TestGenerateTinyMatrix(t *testing.T) {
	p := Params{Rows: 1, Cols: 1, AvgNNZPerRow: 1, Seed: 1, BWScaled: 1}
	m := mustGenerate(t, p)
	if m.NNZ() != 1 {
		t.Errorf("1x1 matrix NNZ = %d, want 1", m.NNZ())
	}
}

func TestGenerateDenseWindow(t *testing.T) {
	// Rows nearly as long as the matrix is wide force the collision path.
	p := Params{Rows: 64, Cols: 64, AvgNNZPerRow: 60, StdNNZPerRow: 4,
		BWScaled: 0.1, CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 3}
	m := mustGenerate(t, p)
	fv := core.Extract(m)
	if math.Abs(fv.AvgNNZPerRow-60) > 4 {
		t.Errorf("dense window: avg nnz/row = %g, want ~60", fv.AvgNNZPerRow)
	}
}

func TestGenerateUniformDistribution(t *testing.T) {
	p := baseParams()
	p.Dist = Uniform
	p.StdNNZPerRow = 3
	m := mustGenerate(t, p)
	fv := core.Extract(m)
	if math.Abs(fv.AvgNNZPerRow-p.AvgNNZPerRow) > 1 {
		t.Errorf("uniform dist: avg = %g, want ~%g", fv.AvgNNZPerRow, p.AvgNNZPerRow)
	}
	// Uniform rows are bounded: max <= avg + std*sqrt(3) + rounding.
	bound := p.AvgNNZPerRow + p.StdNNZPerRow*math.Sqrt(3) + 1
	if float64(m.MaxRowNNZ()) > bound {
		t.Errorf("uniform dist: max row %d exceeds bound %g", m.MaxRowNNZ(), bound)
	}
}

func TestSolveDecayConstant(t *testing.T) {
	for _, ratio := range []float64{1.5, 2, 11, 101, 1001} {
		c := solveDecayConstant(ratio)
		mean := (1 - math.Exp(-c)) / c
		if math.Abs(mean-1/ratio) > 1e-6/ratio+1e-12 {
			t.Errorf("ratio %g: C=%g gives mean %g, want %g", ratio, c, mean, 1/ratio)
		}
	}
	if solveDecayConstant(1) != 0 {
		t.Error("ratio 1 should give C=0")
	}
}

func TestGenerateSpMVCorrectness(t *testing.T) {
	// The generated matrix must behave like any other matrix.
	p := baseParams()
	p.Rows, p.Cols = 300, 300
	m := mustGenerate(t, p)
	d := m.ToDense()
	x := matrix.RandomVector(300, 9)
	y1 := make([]float64, 300)
	y2 := make([]float64, 300)
	m.SpMV(x, y1)
	d.SpMV(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-9 {
			t.Fatalf("SpMV mismatch at %d", i)
		}
	}
}

// Property: generation never violates CSR invariants and hits the exact
// requested total nonzero count for arbitrary small parameter draws.
func TestQuickGenerateInvariants(t *testing.T) {
	f := func(seed uint32, rowsRaw, avgRaw uint8, simRaw, neighRaw, bwRaw uint8) bool {
		rows := int(rowsRaw%200) + 10
		avg := float64(avgRaw%8) + 1
		p := Params{
			Rows: rows, Cols: rows,
			AvgNNZPerRow: avg,
			StdNNZPerRow: avg / 3,
			SkewCoeff:    0,
			BWScaled:     0.1 + float64(bwRaw%90)/100,
			CrossRowSim:  float64(simRaw%100) / 100,
			AvgNumNeigh:  float64(neighRaw%190) / 100,
			Seed:         int64(seed),
		}
		m, err := Generate(p)
		if err != nil {
			return false
		}
		if m.Validate() != nil {
			return false
		}
		want := int(math.Round(avg * float64(rows)))
		return m.NNZ() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
