package matrix

import (
	"fmt"
	"sort"
)

// COO is a sparse matrix in coordinate (triplet) format: entry k lives at
// (RowIdx[k], ColIdx[k]) with value Val[k]. Entries may be in any order and
// may contain duplicates until Compact is called.
type COO struct {
	Rows, Cols int
	RowIdx     []int32
	ColIdx     []int32
	Val        []float64
}

// NewCOO returns an empty COO matrix with capacity for nnz entries.
func NewCOO(rows, cols, nnz int) *COO {
	return &COO{
		Rows:   rows,
		Cols:   cols,
		RowIdx: make([]int32, 0, nnz),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// NNZ returns the number of stored entries, counting duplicates.
func (m *COO) NNZ() int { return len(m.Val) }

// Append adds one entry. It panics if the coordinates are out of range,
// since that is a programmer error at assembly time.
func (m *COO) Append(r, c int32, v float64) {
	if r < 0 || int(r) >= m.Rows || c < 0 || int(c) >= m.Cols {
		panic(fmt.Sprintf("matrix: COO entry (%d,%d) out of range %dx%d", r, c, m.Rows, m.Cols))
	}
	m.RowIdx = append(m.RowIdx, r)
	m.ColIdx = append(m.ColIdx, c)
	m.Val = append(m.Val, v)
}

// Compact sorts entries into row-major order and merges duplicates by
// addition. It returns the number of merged duplicates.
//
// The compaction is delta-log friendly: one linear scan finds the longest
// already-sorted duplicate-free prefix and leaves it in place, so a log
// assembled by appending t new entries onto a previously compacted run
// costs O(n + t log t) instead of re-sorting all n entries. An already
// compact matrix (the common case for frozen overlays) is a pure scan
// with no mutation at all. The tail sort is stable and the run merge
// consumes the prefix first on equal cells, so duplicates accumulate in
// append order — Compact is deterministic bit for bit.
func (m *COO) Compact() int {
	n := len(m.Val)
	if n <= 1 {
		return 0
	}
	// Longest strictly increasing (row-major) prefix: sorted AND unique.
	p := 1
	for p < n && (m.RowIdx[p-1] < m.RowIdx[p] ||
		(m.RowIdx[p-1] == m.RowIdx[p] && m.ColIdx[p-1] < m.ColIdx[p])) {
		p++
	}
	if p == n {
		return 0
	}
	sort.Stable(cooTail{m, p})
	// Merge the two sorted runs into fresh arrays (the shrink on duplicate
	// merge makes a safe in-place merge more trouble than the copy).
	rowOut := make([]int32, 0, n)
	colOut := make([]int32, 0, n)
	valOut := make([]float64, 0, n)
	merged := 0
	push := func(r, c int32, v float64) {
		if k := len(valOut); k > 0 && rowOut[k-1] == r && colOut[k-1] == c {
			valOut[k-1] += v
			merged++
			return
		}
		rowOut = append(rowOut, r)
		colOut = append(colOut, c)
		valOut = append(valOut, v)
	}
	i, j := 0, p
	for i < p && j < n {
		// Prefix first on equal cells: its entries were appended (and any
		// earlier Compact accumulated them) before everything in the tail.
		if m.RowIdx[i] < m.RowIdx[j] ||
			(m.RowIdx[i] == m.RowIdx[j] && m.ColIdx[i] <= m.ColIdx[j]) {
			push(m.RowIdx[i], m.ColIdx[i], m.Val[i])
			i++
		} else {
			push(m.RowIdx[j], m.ColIdx[j], m.Val[j])
			j++
		}
	}
	for ; i < p; i++ {
		push(m.RowIdx[i], m.ColIdx[i], m.Val[i])
	}
	for ; j < n; j++ {
		push(m.RowIdx[j], m.ColIdx[j], m.Val[j])
	}
	m.RowIdx = rowOut
	m.ColIdx = colOut
	m.Val = valOut
	return merged
}

// cooTail sorts the unsorted tail [base:] of a COO log by (row, col).
// Used with sort.Stable so entries for one cell keep their append order.
type cooTail struct {
	m    *COO
	base int
}

func (o cooTail) Len() int { return len(o.m.Val) - o.base }
func (o cooTail) Less(i, j int) bool {
	m := o.m
	a, b := o.base+i, o.base+j
	if m.RowIdx[a] != m.RowIdx[b] {
		return m.RowIdx[a] < m.RowIdx[b]
	}
	return m.ColIdx[a] < m.ColIdx[b]
}
func (o cooTail) Swap(i, j int) {
	m := o.m
	a, b := o.base+i, o.base+j
	m.RowIdx[a], m.RowIdx[b] = m.RowIdx[b], m.RowIdx[a]
	m.ColIdx[a], m.ColIdx[b] = m.ColIdx[b], m.ColIdx[a]
	m.Val[a], m.Val[b] = m.Val[b], m.Val[a]
}

// ToCSR converts the COO matrix to CSR, compacting it first.
func (m *COO) ToCSR() *CSR {
	m.Compact()
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int32, m.Rows+1),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	for _, r := range m.RowIdx {
		c.RowPtr[r+1]++
	}
	for i := 0; i < m.Rows; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	return c
}

// ToCOO converts a CSR matrix to coordinate format.
func (m *CSR) ToCOO() *COO {
	o := NewCOO(m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			o.RowIdx = append(o.RowIdx, int32(i))
			o.ColIdx = append(o.ColIdx, m.ColIdx[k])
			o.Val = append(o.Val, m.Val[k])
		}
	}
	return o
}

// SpMV computes y = A*x using the triplet entries. y is zeroed first.
func (m *COO) SpMV(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("matrix: COO SpMV shape mismatch: x %d y %d for %dx%d", len(x), len(y), m.Rows, m.Cols))
	}
	for i := range y {
		y[i] = 0
	}
	for k := range m.Val {
		y[m.RowIdx[k]] += m.Val[k] * x[m.ColIdx[k]]
	}
}
