package matrix

import (
	"fmt"
	"sort"
)

// COO is a sparse matrix in coordinate (triplet) format: entry k lives at
// (RowIdx[k], ColIdx[k]) with value Val[k]. Entries may be in any order and
// may contain duplicates until Compact is called.
type COO struct {
	Rows, Cols int
	RowIdx     []int32
	ColIdx     []int32
	Val        []float64
}

// NewCOO returns an empty COO matrix with capacity for nnz entries.
func NewCOO(rows, cols, nnz int) *COO {
	return &COO{
		Rows:   rows,
		Cols:   cols,
		RowIdx: make([]int32, 0, nnz),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// NNZ returns the number of stored entries, counting duplicates.
func (m *COO) NNZ() int { return len(m.Val) }

// Append adds one entry. It panics if the coordinates are out of range,
// since that is a programmer error at assembly time.
func (m *COO) Append(r, c int32, v float64) {
	if r < 0 || int(r) >= m.Rows || c < 0 || int(c) >= m.Cols {
		panic(fmt.Sprintf("matrix: COO entry (%d,%d) out of range %dx%d", r, c, m.Rows, m.Cols))
	}
	m.RowIdx = append(m.RowIdx, r)
	m.ColIdx = append(m.ColIdx, c)
	m.Val = append(m.Val, v)
}

// Compact sorts entries into row-major order and merges duplicates by
// addition. It returns the number of merged duplicates.
func (m *COO) Compact() int {
	sort.Sort(cooOrder{m})
	merged := 0
	w := 0
	for k := 0; k < len(m.Val); k++ {
		if w > 0 && m.RowIdx[w-1] == m.RowIdx[k] && m.ColIdx[w-1] == m.ColIdx[k] {
			m.Val[w-1] += m.Val[k]
			merged++
			continue
		}
		m.RowIdx[w] = m.RowIdx[k]
		m.ColIdx[w] = m.ColIdx[k]
		m.Val[w] = m.Val[k]
		w++
	}
	m.RowIdx = m.RowIdx[:w]
	m.ColIdx = m.ColIdx[:w]
	m.Val = m.Val[:w]
	return merged
}

type cooOrder struct{ m *COO }

func (o cooOrder) Len() int { return len(o.m.Val) }
func (o cooOrder) Less(i, j int) bool {
	if o.m.RowIdx[i] != o.m.RowIdx[j] {
		return o.m.RowIdx[i] < o.m.RowIdx[j]
	}
	return o.m.ColIdx[i] < o.m.ColIdx[j]
}
func (o cooOrder) Swap(i, j int) {
	m := o.m
	m.RowIdx[i], m.RowIdx[j] = m.RowIdx[j], m.RowIdx[i]
	m.ColIdx[i], m.ColIdx[j] = m.ColIdx[j], m.ColIdx[i]
	m.Val[i], m.Val[j] = m.Val[j], m.Val[i]
}

// ToCSR converts the COO matrix to CSR, compacting it first.
func (m *COO) ToCSR() *CSR {
	m.Compact()
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int32, m.Rows+1),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	for _, r := range m.RowIdx {
		c.RowPtr[r+1]++
	}
	for i := 0; i < m.Rows; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	return c
}

// ToCOO converts a CSR matrix to coordinate format.
func (m *CSR) ToCOO() *COO {
	o := NewCOO(m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			o.RowIdx = append(o.RowIdx, int32(i))
			o.ColIdx = append(o.ColIdx, m.ColIdx[k])
			o.Val = append(o.Val, m.Val[k])
		}
	}
	return o
}

// SpMV computes y = A*x using the triplet entries. y is zeroed first.
func (m *COO) SpMV(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("matrix: COO SpMV shape mismatch: x %d y %d for %dx%d", len(x), len(y), m.Rows, m.Cols))
	}
	for i := range y {
		y[i] = 0
	}
	for k := range m.Val {
		y[m.RowIdx[k]] += m.Val[k] * x[m.ColIdx[k]]
	}
}
