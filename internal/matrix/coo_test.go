package matrix

import (
	"testing"
	"testing/quick"
)

func TestCOOToCSRRoundTrip(t *testing.T) {
	m := Random(25, 31, 0.2, 11)
	back := m.ToCOO().ToCSR()
	if !m.Equal(back) {
		t.Error("CSR -> COO -> CSR changed the matrix")
	}
}

func TestCOOCompactMergesDuplicates(t *testing.T) {
	o := NewCOO(2, 2, 4)
	o.Append(1, 1, 1)
	o.Append(0, 0, 2)
	o.Append(1, 1, 3)
	o.Append(0, 1, 4)
	merged := o.Compact()
	if merged != 1 {
		t.Errorf("merged = %d, want 1", merged)
	}
	if o.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", o.NNZ())
	}
	d := o.ToCSR().ToDense()
	if d.At(1, 1) != 4 || d.At(0, 0) != 2 || d.At(0, 1) != 4 {
		t.Errorf("wrong merged data: %+v", d.Data)
	}
}

func TestCOOCompactOrdering(t *testing.T) {
	o := NewCOO(3, 3, 3)
	o.Append(2, 0, 1)
	o.Append(0, 2, 2)
	o.Append(1, 1, 3)
	o.Compact()
	for k := 1; k < o.NNZ(); k++ {
		if o.RowIdx[k] < o.RowIdx[k-1] {
			t.Fatal("rows not sorted after Compact")
		}
	}
}

func TestCOOAppendPanicsOutOfRange(t *testing.T) {
	o := NewCOO(2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("Append out of range did not panic")
		}
	}()
	o.Append(2, 0, 1)
}

func TestCOOSpMVMatchesCSR(t *testing.T) {
	m := Random(40, 40, 0.15, 12)
	o := m.ToCOO()
	x := RandomVector(40, 13)
	y1 := make([]float64, 40)
	y2 := make([]float64, 40)
	m.SpMV(x, y1)
	o.SpMV(x, y2)
	vecAlmostEqual(t, y1, y2, 1e-12)
}

func TestCOOSpMVZeroesOutput(t *testing.T) {
	m := Identity(4).ToCOO()
	x := []float64{1, 2, 3, 4}
	y := []float64{99, 99, 99, 99}
	m.SpMV(x, y)
	vecAlmostEqual(t, y, x, 0)
}

// Property: CSR -> COO -> CSR is the identity for arbitrary matrices.
func TestQuickCOORoundTrip(t *testing.T) {
	f := func(seedRaw uint32, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		m := Random(n, n, 0.25, int64(seedRaw))
		return m.Equal(m.ToCOO().ToCSR())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
