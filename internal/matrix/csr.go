// Package matrix provides the sparse-matrix substrate used throughout the
// repository: CSR and COO storage, conversions, a dense reference
// implementation, MatrixMarket I/O and structural queries.
//
// Conventions: values are float64 (the paper evaluates double precision),
// indices are int32 so the CSR memory-footprint formula matches the paper's
// 12*nnz + 4*(rows+1) bytes. Column indices within a row are kept sorted and
// unique; every constructor and conversion either establishes or preserves
// this invariant.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in Compressed Sparse Row format.
//
// RowPtr has length Rows+1; the column indices and values of row i live in
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]]. Column
// indices within a row are strictly increasing.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float64
}

// ErrDimension reports an impossible matrix shape.
var ErrDimension = errors.New("matrix: invalid dimensions")

// NewCSR constructs a CSR matrix from raw components after validating the
// structural invariants. The slices are retained, not copied.
func NewCSR(rows, cols int, rowPtr, colIdx []int32, val []float64) (*CSR, error) {
	m := &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// NNZ returns the number of stored nonzero entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// Row returns the column indices and values of row i, backed by the matrix
// storage (no copy).
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// FootprintBytes returns the CSR storage size in bytes, the paper's f1
// feature before scaling to MiB: 8 bytes per value, 4 per column index and
// 4 per row-pointer entry.
func (m *CSR) FootprintBytes() int64 {
	return int64(m.NNZ())*12 + int64(m.Rows+1)*4
}

// FootprintMB returns the CSR storage size in MiB (the paper's f1 unit).
func (m *CSR) FootprintMB() float64 {
	return float64(m.FootprintBytes()) / (1 << 20)
}

// Validate checks all structural invariants: monotone row pointers, in-range
// sorted unique column indices, and consistent slice lengths.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("%w: %dx%d", ErrDimension, m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("matrix: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("matrix: ColIdx length %d != Val length %d", len(m.ColIdx), len(m.Val))
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if int(m.RowPtr[m.Rows]) != len(m.Val) {
		return fmt.Errorf("matrix: RowPtr[last] = %d, want nnz %d", m.RowPtr[m.Rows], len(m.Val))
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("matrix: row %d has negative length", i)
		}
		prev := int32(-1)
		for k := lo; k < hi; k++ {
			c := m.ColIdx[k]
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("matrix: row %d column %d out of range [0,%d)", i, c, m.Cols)
			}
			if c <= prev {
				return fmt.Errorf("matrix: row %d columns not strictly increasing at %d", i, c)
			}
			prev = c
		}
	}
	return nil
}

// SpMV computes y = A*x with the canonical serial CSR kernel. It is the
// correctness reference for every storage format in internal/formats.
// len(x) must be Cols and len(y) must be Rows.
func (m *CSR) SpMV(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("matrix: SpMV shape mismatch: x %d y %d for %dx%d", len(x), len(y), m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
}

// MaxRowNNZ returns the maximum number of stored entries in any row
// (0 for an empty matrix).
func (m *CSR) MaxRowNNZ() int {
	max := 0
	for i := 0; i < m.Rows; i++ {
		if n := m.RowNNZ(i); n > max {
			max = n
		}
	}
	return max
}

// MinRowNNZ returns the minimum number of stored entries in any row.
func (m *CSR) MinRowNNZ() int {
	if m.Rows == 0 {
		return 0
	}
	min := math.MaxInt
	for i := 0; i < m.Rows; i++ {
		if n := m.RowNNZ(i); n < min {
			min = n
		}
	}
	return min
}

// AvgRowNNZ returns the mean number of stored entries per row, the paper's
// f2 feature.
func (m *CSR) AvgRowNNZ() float64 {
	if m.Rows == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.Rows)
}

// RowBandwidth returns the column span (max-min+1) of row i, or 0 for an
// empty row.
func (m *CSR) RowBandwidth(i int) int {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	if lo == hi {
		return 0
	}
	return int(m.ColIdx[hi-1]-m.ColIdx[lo]) + 1
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int32(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// Equal reports whether two matrices have identical shape and stored
// structure, with values compared exactly.
func (m *CSR) Equal(o *CSR) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.NNZ() != o.NNZ() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for k := range m.ColIdx {
		if m.ColIdx[k] != o.ColIdx[k] || m.Val[k] != o.Val[k] {
			return false
		}
	}
	return true
}

// SortRows sorts the column indices (and matching values) within each row and
// merges duplicate entries by addition, restoring the CSR invariant for data
// assembled in arbitrary order. It returns the number of merged duplicates.
func (m *CSR) SortRows() int {
	merged := 0
	w := int32(0) // write cursor into the compacted arrays
	newPtr := make([]int32, m.Rows+1)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		row := rowView{m.ColIdx[lo:hi], m.Val[lo:hi]}
		sort.Sort(row)
		newPtr[i] = w
		for k := lo; k < hi; k++ {
			if w > newPtr[i] && m.ColIdx[w-1] == m.ColIdx[k] {
				m.Val[w-1] += m.Val[k]
				merged++
				continue
			}
			m.ColIdx[w] = m.ColIdx[k]
			m.Val[w] = m.Val[k]
			w++
		}
	}
	newPtr[m.Rows] = w
	m.RowPtr = newPtr
	m.ColIdx = m.ColIdx[:w]
	m.Val = m.Val[:w]
	return merged
}

type rowView struct {
	col []int32
	val []float64
}

func (r rowView) Len() int           { return len(r.col) }
func (r rowView) Less(i, j int) bool { return r.col[i] < r.col[j] }
func (r rowView) Swap(i, j int) {
	r.col[i], r.col[j] = r.col[j], r.col[i]
	r.val[i], r.val[j] = r.val[j], r.val[i]
}

// Transpose returns the transpose of the matrix in CSR form (equivalently,
// the CSC view of the original), used by column-oriented formats such as the
// FPGA VSL format.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows}
	t.RowPtr = make([]int32, m.Cols+1)
	t.ColIdx = make([]int32, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	// Count entries per column.
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	cursor := append([]int32(nil), t.RowPtr[:m.Cols]...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			at := cursor[c]
			t.ColIdx[at] = int32(i)
			t.Val[at] = m.Val[k]
			cursor[c]++
		}
	}
	return t
}

// String summarizes the matrix shape and density.
func (m *CSR) String() string {
	return fmt.Sprintf("CSR %dx%d nnz=%d (%.2f MiB, %.2f nnz/row)",
		m.Rows, m.Cols, m.NNZ(), m.FootprintMB(), m.AvgRowNNZ())
}
