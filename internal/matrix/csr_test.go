package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(1, scale)
}

func vecAlmostEqual(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if !almostEqual(got[i], want[i], tol) {
			t.Fatalf("element %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestNewCSRValid(t *testing.T) {
	m, err := NewCSR(2, 3,
		[]int32{0, 2, 3},
		[]int32{0, 2, 1},
		[]float64{1, 2, 3})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 1 {
		t.Errorf("RowNNZ = %d,%d want 2,1", m.RowNNZ(0), m.RowNNZ(1))
	}
}

func TestNewCSRRejectsBadRowPtr(t *testing.T) {
	cases := []struct {
		name   string
		rowPtr []int32
	}{
		{"wrong length", []int32{0, 3}},
		{"nonzero start", []int32{1, 2, 3}},
		{"wrong end", []int32{0, 2, 2}},
		{"decreasing", []int32{0, 3, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCSR(2, 3, tc.rowPtr, []int32{0, 1, 2}, []float64{1, 2, 3}); err == nil {
				t.Errorf("NewCSR accepted invalid RowPtr %v", tc.rowPtr)
			}
		})
	}
}

func TestNewCSRRejectsBadColumns(t *testing.T) {
	// Out of range column.
	if _, err := NewCSR(1, 2, []int32{0, 1}, []int32{2}, []float64{1}); err == nil {
		t.Error("accepted out-of-range column")
	}
	// Negative column.
	if _, err := NewCSR(1, 2, []int32{0, 1}, []int32{-1}, []float64{1}); err == nil {
		t.Error("accepted negative column")
	}
	// Duplicate column within a row.
	if _, err := NewCSR(1, 3, []int32{0, 2}, []int32{1, 1}, []float64{1, 2}); err == nil {
		t.Error("accepted duplicate column")
	}
	// Unsorted columns within a row.
	if _, err := NewCSR(1, 3, []int32{0, 2}, []int32{2, 0}, []float64{1, 2}); err == nil {
		t.Error("accepted unsorted columns")
	}
}

func TestCSRFootprint(t *testing.T) {
	m := Identity(1000)
	want := int64(1000*12 + 1001*4)
	if got := m.FootprintBytes(); got != want {
		t.Errorf("FootprintBytes = %d, want %d", got, want)
	}
	if got := m.FootprintMB(); !almostEqual(got, float64(want)/(1<<20), 1e-12) {
		t.Errorf("FootprintMB = %g", got)
	}
}

func TestCSRSpMVIdentity(t *testing.T) {
	m := Identity(64)
	x := RandomVector(64, 1)
	y := make([]float64, 64)
	m.SpMV(x, y)
	vecAlmostEqual(t, y, x, 0)
}

func TestCSRSpMVAgainstDense(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		m := Random(37, 29, 0.2, seed)
		d := m.ToDense()
		x := RandomVector(29, seed+100)
		y1 := make([]float64, 37)
		y2 := make([]float64, 37)
		m.SpMV(x, y1)
		d.SpMV(x, y2)
		vecAlmostEqual(t, y1, y2, 1e-12)
	}
}

func TestCSRSpMVShapePanics(t *testing.T) {
	m := Identity(4)
	defer func() {
		if recover() == nil {
			t.Error("SpMV with wrong x length did not panic")
		}
	}()
	m.SpMV(make([]float64, 3), make([]float64, 4))
}

func TestCSRRowStats(t *testing.T) {
	m := RandomRowSizes(4, 100, []int{1, 5, 3, 1}, 7)
	if got := m.MaxRowNNZ(); got != 5 {
		t.Errorf("MaxRowNNZ = %d, want 5", got)
	}
	if got := m.MinRowNNZ(); got != 1 {
		t.Errorf("MinRowNNZ = %d, want 1", got)
	}
	if got := m.AvgRowNNZ(); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("AvgRowNNZ = %g, want 2.5", got)
	}
}

func TestCSRRowBandwidth(t *testing.T) {
	m, err := NewCSR(3, 10,
		[]int32{0, 3, 3, 4},
		[]int32{2, 5, 9, 0},
		[]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.RowBandwidth(0); got != 8 {
		t.Errorf("RowBandwidth(0) = %d, want 8", got)
	}
	if got := m.RowBandwidth(1); got != 0 {
		t.Errorf("RowBandwidth(1) = %d, want 0 for empty row", got)
	}
	if got := m.RowBandwidth(2); got != 1 {
		t.Errorf("RowBandwidth(2) = %d, want 1", got)
	}
}

func TestCSRCloneIndependent(t *testing.T) {
	m := Random(10, 10, 0.3, 4)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Val[0] = 42
	if m.Val[0] == 42 {
		t.Error("clone shares value storage with original")
	}
}

func TestCSRSortRowsMergesDuplicates(t *testing.T) {
	m := &CSR{Rows: 2, Cols: 5,
		RowPtr: []int32{0, 4, 6},
		ColIdx: []int32{3, 1, 3, 0, 4, 4},
		Val:    []float64{1, 2, 10, 3, 4, 5},
	}
	merged := m.SortRows()
	if merged != 2 {
		t.Errorf("merged = %d, want 2", merged)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid after SortRows: %v", err)
	}
	d := m.ToDense()
	if d.At(0, 3) != 11 || d.At(0, 1) != 2 || d.At(0, 0) != 3 || d.At(1, 4) != 9 {
		t.Errorf("wrong merged values: %+v", d.Data)
	}
}

func TestCSRTranspose(t *testing.T) {
	m := Random(20, 15, 0.25, 9)
	tr := m.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatalf("transpose invalid: %v", err)
	}
	d := m.ToDense()
	dt := tr.ToDense()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if d.At(i, j) != dt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCSRTransposeInvolution(t *testing.T) {
	m := Random(30, 30, 0.15, 10)
	tt := m.Transpose().Transpose()
	if !m.Equal(tt) {
		t.Error("transpose of transpose differs from original")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m, err := NewCSR(0, 0, []int32{0}, nil, nil)
	if err != nil {
		t.Fatalf("NewCSR empty: %v", err)
	}
	if m.NNZ() != 0 || m.AvgRowNNZ() != 0 || m.MaxRowNNZ() != 0 || m.MinRowNNZ() != 0 {
		t.Error("empty matrix stats not all zero")
	}
	m.SpMV(nil, nil) // must not panic
}

func TestMatrixWithEmptyRows(t *testing.T) {
	m, err := NewCSR(3, 3, []int32{0, 0, 1, 1}, []int32{2}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	m.SpMV(x, y)
	vecAlmostEqual(t, y, []float64{0, 21, 0}, 0)
}

// Property: transpose preserves nnz and swaps shape for arbitrary random
// matrices.
func TestQuickTransposeShape(t *testing.T) {
	f := func(seedRaw uint32, rowsRaw, colsRaw uint8) bool {
		rows := int(rowsRaw%40) + 1
		cols := int(colsRaw%40) + 1
		m := Random(rows, cols, 0.2, int64(seedRaw))
		tr := m.Transpose()
		return tr.Rows == cols && tr.Cols == rows && tr.NNZ() == m.NNZ() && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: SpMV is linear, A(ax+by) = a*Ax + b*Ay.
func TestQuickSpMVLinearity(t *testing.T) {
	f := func(seedRaw uint32) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := rng.Intn(30) + 2
		m := Random(n, n, 0.3, int64(seedRaw)+1)
		x1 := RandomVector(n, int64(seedRaw)+2)
		x2 := RandomVector(n, int64(seedRaw)+3)
		a, b := rng.Float64(), rng.Float64()
		comb := make([]float64, n)
		for i := range comb {
			comb[i] = a*x1[i] + b*x2[i]
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		yc := make([]float64, n)
		m.SpMV(x1, y1)
		m.SpMV(x2, y2)
		m.SpMV(comb, yc)
		for i := range yc {
			if !almostEqual(yc[i], a*y1[i]+b*y2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
