package matrix

// Dense is a row-major dense matrix used as a brute-force oracle in tests.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zeroed rows x cols dense matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// ToDense expands a CSR matrix into dense form. Intended for small matrices
// in tests; it allocates Rows*Cols floats.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, int(m.ColIdx[k]), m.Val[k])
		}
	}
	return d
}

// FromDense builds a CSR matrix from the nonzero entries of d.
func FromDense(d *Dense) *CSR {
	o := NewCOO(d.Rows, d.Cols, 0)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if v := d.At(i, j); v != 0 {
				o.Append(int32(i), int32(j), v)
			}
		}
	}
	return o.ToCSR()
}

// SpMV computes y = D*x by the naive triple loop.
func (d *Dense) SpMV(x, y []float64) {
	for i := 0; i < d.Rows; i++ {
		sum := 0.0
		row := d.Data[i*d.Cols : (i+1)*d.Cols]
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
}
