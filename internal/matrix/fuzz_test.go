package matrix

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadMatrixMarket is the untrusted-input contract of the reader: on
// arbitrary bytes it must either return an error or a structurally valid
// CSR — never panic, and never allocate proportionally to a declared size
// the stream does not back (the run lowers MMMaxDim so a hostile header
// is rejected long before it could hurt, which is exactly the knob a
// service parsing uploads would use). Accepted inputs must survive a
// write/re-read round trip bit for bit.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 2.5\n3 2 -1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n3 3 2\n2 1\n3 3\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate integer general\n2 4 3\n1 1 7\n1 4 -2\n2 3 5\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n5 5 10\n1 1 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real symmetric\n99999999 99999999 99999999\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		defer func(prev int) { MMMaxDim = prev }(MMMaxDim)
		MMMaxDim = 1 << 12

		m, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking or over-allocating is not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted input produced an invalid CSR: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("write back: %v", err)
		}
		m2, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if m.Rows != m2.Rows || m.Cols != m2.Cols || m.NNZ() != m2.NNZ() {
			t.Fatalf("round trip changed shape: %v -> %v", m, m2)
		}
		for i := range m.RowPtr {
			if m.RowPtr[i] != m2.RowPtr[i] {
				t.Fatalf("round trip changed RowPtr[%d]", i)
			}
		}
		for k := range m.Val {
			// Bit comparison: %.17g round-trips every float64 exactly, and it
			// must keep doing so for -0, infinities and NaN alike.
			if m.ColIdx[k] != m2.ColIdx[k] ||
				math.Float64bits(m.Val[k]) != math.Float64bits(m2.Val[k]) {
				t.Fatalf("round trip changed entry %d: (%d, %x) -> (%d, %x)", k,
					m.ColIdx[k], math.Float64bits(m.Val[k]),
					m2.ColIdx[k], math.Float64bits(m2.Val[k]))
			}
		}
	})
}

// FuzzCOOCompact pins the Compact contract the delta log depends on:
// after any append sequence — with arbitrary interleaved intermediate
// Compact calls, which exercise the sorted-prefix fast path — the log
// holds exactly one entry per touched cell, in strictly increasing
// row-major order, with the value equal (bit for bit) to the left-fold
// sum of that cell's appends in program order. A second Compact must be a
// pure no-op (idempotence).
func FuzzCOOCompact(f *testing.F) {
	f.Add([]byte{4, 4, 1, 1, 10, 1, 1, 246, 0, 3, 80})
	f.Add([]byte{1, 1, 0, 0, 1, 0, 0, 2, 0, 0, 3})
	f.Add([]byte{16, 16, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{3, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		rows := int(data[0]%16) + 1
		cols := int(data[1]%16) + 1
		entries := data[2:]
		type cell struct{ r, c int32 }
		o := NewCOO(rows, cols, 0)
		acc := map[cell]float64{}
		for e := 0; e+3 <= len(entries); e += 3 {
			r := int32(int(entries[e]) % rows)
			c := int32(int(entries[e+1]) % cols)
			v := float64(int8(entries[e+2])) / 8
			o.Append(r, c, v)
			acc[cell{r, c}] += v
			if entries[e]&7 == 0 {
				o.Compact() // interleaved compactions must not change the outcome
			}
		}
		o.Compact()

		if len(o.Val) != len(acc) {
			t.Fatalf("%d entries after Compact, want one per touched cell (%d)", len(o.Val), len(acc))
		}
		for k := range o.Val {
			if k > 0 {
				if o.RowIdx[k-1] > o.RowIdx[k] ||
					(o.RowIdx[k-1] == o.RowIdx[k] && o.ColIdx[k-1] >= o.ColIdx[k]) {
					t.Fatalf("ordering violated at %d: (%d,%d) then (%d,%d)", k,
						o.RowIdx[k-1], o.ColIdx[k-1], o.RowIdx[k], o.ColIdx[k])
				}
			}
			want, ok := acc[cell{o.RowIdx[k], o.ColIdx[k]}]
			if !ok {
				t.Fatalf("entry (%d,%d) was never appended", o.RowIdx[k], o.ColIdx[k])
			}
			if math.Float64bits(want) != math.Float64bits(o.Val[k]) {
				t.Fatalf("cell (%d,%d) = %x, want append-order sum %x",
					o.RowIdx[k], o.ColIdx[k], math.Float64bits(o.Val[k]), math.Float64bits(want))
			}
		}

		rowBefore := append([]int32(nil), o.RowIdx...)
		colBefore := append([]int32(nil), o.ColIdx...)
		valBefore := append([]float64(nil), o.Val...)
		if m := o.Compact(); m != 0 {
			t.Fatalf("second Compact merged %d entries", m)
		}
		for k := range valBefore {
			if o.RowIdx[k] != rowBefore[k] || o.ColIdx[k] != colBefore[k] ||
				math.Float64bits(o.Val[k]) != math.Float64bits(valBefore[k]) {
				t.Fatalf("second Compact changed entry %d", k)
			}
		}

		if err := o.ToCSR().Validate(); err != nil {
			t.Fatalf("compacted log converts to invalid CSR: %v", err)
		}
	})
}
