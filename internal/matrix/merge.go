package matrix

import "fmt"

// MergeCOO returns a new CSR with the additive delta overlay applied to m:
// every delta entry adds onto its base cell, creating the cell when the
// base has no entry there. A cell the delta touches whose merged value is
// exactly zero is dropped — that is how the update layer expresses
// deletion (it appends the exact negation of the current value). Base
// cells the delta does not touch are copied bit for bit, including stored
// zeros. m is not modified; delta is compacted in place first (a pure
// scan when it is already sorted and duplicate-free, as frozen overlays
// are).
func (m *CSR) MergeCOO(delta *COO) *CSR {
	if delta.Rows != m.Rows || delta.Cols != m.Cols {
		panic(fmt.Sprintf("matrix: MergeCOO shape mismatch: delta %dx%d for %dx%d",
			delta.Rows, delta.Cols, m.Rows, m.Cols))
	}
	delta.Compact()
	nd := delta.NNZ()
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int32, m.Rows+1),
		ColIdx: make([]int32, 0, m.NNZ()+nd),
		Val:    make([]float64, 0, m.NNZ()+nd),
	}
	d := 0
	for i := 0; i < m.Rows; i++ {
		k, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k < hi || (d < nd && int(delta.RowIdx[d]) == i) {
			switch {
			case d >= nd || int(delta.RowIdx[d]) != i || (k < hi && m.ColIdx[k] < delta.ColIdx[d]):
				// Base-only cell: copied untouched.
				out.ColIdx = append(out.ColIdx, m.ColIdx[k])
				out.Val = append(out.Val, m.Val[k])
				k++
			case k < hi && m.ColIdx[k] == delta.ColIdx[d]:
				// Both: add, dropping an exact-zero result (deletion).
				if v := m.Val[k] + delta.Val[d]; v != 0 {
					out.ColIdx = append(out.ColIdx, m.ColIdx[k])
					out.Val = append(out.Val, v)
				}
				k++
				d++
			default:
				// Delta-only cell: created unless it nets to exactly zero.
				if delta.Val[d] != 0 {
					out.ColIdx = append(out.ColIdx, delta.ColIdx[d])
					out.Val = append(out.Val, delta.Val[d])
				}
				d++
			}
		}
		out.RowPtr[i+1] = int32(len(out.Val))
	}
	return out
}
