package matrix

import (
	"math/rand"
	"testing"
)

// TestMergeCOOAgainstDense: merging an additive overlay must equal the
// dense computation cell by cell, for random bases and random deltas that
// mix adds onto existing cells, new cells, and exact cancellations.
func TestMergeCOOAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		rows, cols := rng.Intn(20)+1, rng.Intn(20)+1
		base := Random(rows, cols, 0.2, int64(trial)+5)
		want := base.ToDense()
		delta := NewCOO(rows, cols, 0)
		for e := 0; e < rng.Intn(40); e++ {
			r, c := int32(rng.Intn(rows)), int32(rng.Intn(cols))
			var v float64
			switch rng.Intn(3) {
			case 0: // plain add
				v = float64(rng.Intn(9) - 4)
			case 1: // exact cancellation of whatever is there now (deletion)
				v = -want.At(int(r), int(c))
			case 2: // add onto a fresh or existing cell with a dyadic value
				v = float64(rng.Intn(16)) / 4
			}
			delta.Append(r, c, v)
			want.Set(int(r), int(c), want.At(int(r), int(c))+v)
		}
		got := base.MergeCOO(delta)
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: merged CSR invalid: %v", trial, err)
		}
		gd := got.ToDense()
		for i := range want.Data {
			if gd.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: cell %d = %v, want %v", trial, i, gd.Data[i], want.Data[i])
			}
		}
		// Deletion contract: no delta-touched cell survives with value zero.
		for i := 0; i < rows; i++ {
			for k := got.RowPtr[i]; k < got.RowPtr[i+1]; k++ {
				if got.Val[k] == 0 && touchedBy(delta, int32(i), got.ColIdx[k]) {
					t.Fatalf("trial %d: delta-touched zero cell (%d,%d) kept", trial, i, got.ColIdx[k])
				}
			}
		}
	}
}

func touchedBy(d *COO, r, c int32) bool {
	for k := range d.Val {
		if d.RowIdx[k] == r && d.ColIdx[k] == c {
			return true
		}
	}
	return false
}

// TestMergeCOOUntouchedBitwise: rows the delta never touches must be
// copied bit for bit, and an empty delta must reproduce the base exactly.
func TestMergeCOOUntouchedBitwise(t *testing.T) {
	base := Random(50, 60, 0.15, 9)
	if got := base.MergeCOO(NewCOO(50, 60, 0)); !got.Equal(base) {
		t.Fatal("empty delta changed the matrix")
	}
	delta := NewCOO(50, 60, 0)
	delta.Append(10, 3, 1.5)
	delta.Append(10, 59, -2)
	got := base.MergeCOO(delta)
	for i := 0; i < 50; i++ {
		if i == 10 {
			continue
		}
		bc, bv := base.Row(i)
		gc, gv := got.Row(i)
		if len(bc) != len(gc) {
			t.Fatalf("untouched row %d changed length", i)
		}
		for k := range bc {
			if bc[k] != gc[k] || bv[k] != gv[k] {
				t.Fatalf("untouched row %d changed at %d", i, k)
			}
		}
	}
}

// TestMergeCOOShapePanics: a mismatched overlay is a programmer error.
func TestMergeCOOShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Identity(4).MergeCOO(NewCOO(5, 4, 0))
}

// TestCompactSortedPrefixFastPath: a compacted log with appended tail must
// keep the prefix in place (no re-sort of the whole log) and merge the
// runs in append order. The behavioral pin: intermediate Compact calls
// never change the final accumulated values versus one big Compact,
// because duplicates always accumulate in global append order.
func TestCompactSortedPrefixFastPath(t *testing.T) {
	build := func(compactEvery int) *COO {
		o := NewCOO(16, 16, 0)
		rng := rand.New(rand.NewSource(7))
		for e := 0; e < 300; e++ {
			o.Append(int32(rng.Intn(16)), int32(rng.Intn(16)), float64(rng.Intn(32))/8)
			if compactEvery > 0 && e%compactEvery == compactEvery-1 {
				o.Compact()
			}
		}
		o.Compact()
		return o
	}
	once := build(0)
	incremental := build(20)
	if len(once.Val) != len(incremental.Val) {
		t.Fatalf("nnz %d != %d", len(once.Val), len(incremental.Val))
	}
	for k := range once.Val {
		if once.RowIdx[k] != incremental.RowIdx[k] || once.ColIdx[k] != incremental.ColIdx[k] ||
			once.Val[k] != incremental.Val[k] {
			t.Fatalf("entry %d differs: (%d,%d)=%v vs (%d,%d)=%v", k,
				once.RowIdx[k], once.ColIdx[k], once.Val[k],
				incremental.RowIdx[k], incremental.ColIdx[k], incremental.Val[k])
		}
	}
	// Second Compact on a compacted log: pure scan, nothing merged.
	if m := once.Compact(); m != 0 {
		t.Fatalf("idempotence: second Compact merged %d", m)
	}
}
