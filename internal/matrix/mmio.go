package matrix

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/failpoint"
)

// MatrixMarket I/O for the "matrix coordinate" container, the interchange
// format used by SuiteSparse and the paper's validation suite. Supported
// qualifiers: real/integer/pattern x general/symmetric. Pattern entries read
// as value 1; symmetric matrices are expanded to full storage on read.

// ErrMMFormat reports a malformed MatrixMarket stream.
var ErrMMFormat = errors.New("matrix: invalid MatrixMarket input")

// MMMaxDim caps the row and column counts ReadMatrixMarket accepts from a
// size line. The CSR row-pointer array is allocated from the declared row
// count alone, so an adversarial (or corrupt) header could otherwise
// demand gigabytes before a single entry is read. The default admits any
// SuiteSparse matrix; services parsing untrusted uploads should lower it
// (the fuzz harness runs with a much smaller cap).
var MMMaxDim = 1 << 28

// mmPreallocCap bounds the entry storage preallocated from the declared
// nnz. A header may declare billions of entries and then supply none;
// beyond this cap the triplet arrays grow by append as entries actually
// arrive, trading a few reallocations for a bounded up-front footprint.
const mmPreallocCap = 1 << 20

// ReadMatrixMarket parses a MatrixMarket coordinate stream into CSR.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	// I/O fault injection: models the stream dying mid-read (NFS drop,
	// truncated download). The chaos suite drives it to assert a failed
	// load surfaces as an error and never a partial matrix.
	if err := failpoint.Inject("mmio.read"); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty input", ErrMMFormat)
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("%w: bad banner %q", ErrMMFormat, sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("%w: unsupported container %q (only coordinate)", ErrMMFormat, header[2])
	}
	field, symmetry := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("%w: unsupported field %q", ErrMMFormat, field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("%w: unsupported symmetry %q", ErrMMFormat, symmetry)
	}

	// Skip comments, then read the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("%w: missing size line", ErrMMFormat)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("%w: bad size line %q", ErrMMFormat, line)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("%w: negative size", ErrMMFormat)
	}
	if rows > MMMaxDim || cols > MMMaxDim || rows > math.MaxInt32 || cols > math.MaxInt32 {
		return nil, fmt.Errorf("%w: size %dx%d exceeds MMMaxDim %d", ErrMMFormat, rows, cols, MMMaxDim)
	}

	// Preallocation is capped, never trusted: the declared nnz (doubled for
	// symmetric expansion) is only a hint, and a hint past the cap would
	// let a short malicious header demand an unbounded allocation. The cap
	// is applied before the doubling, which also forecloses int overflow.
	capHint := nnz
	if capHint > mmPreallocCap {
		capHint = mmPreallocCap
	}
	if symmetry == "symmetric" {
		capHint *= 2
	}
	o := NewCOO(rows, cols, capHint)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("%w: short entry %q", ErrMMFormat, line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("%w: bad row in %q", ErrMMFormat, line)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("%w: bad col in %q", ErrMMFormat, line)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad value in %q", ErrMMFormat, line)
			}
		}
		// MatrixMarket is 1-based.
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrMMFormat, i, j, rows, cols)
		}
		o.Append(int32(i-1), int32(j-1), v)
		if symmetry == "symmetric" && i != j {
			o.Append(int32(j-1), int32(i-1), v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("%w: expected %d entries, got %d", ErrMMFormat, nnz, read)
	}
	return o.ToCSR(), nil
}

// WriteMatrixMarket writes m as a general real coordinate MatrixMarket stream.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[k]+1, m.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
