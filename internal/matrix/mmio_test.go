package matrix

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := Random(17, 23, 0.2, 21)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !m.Equal(back) {
		t.Error("round trip changed the matrix")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
1 1 2.0
2 1 -1.0
3 3 5.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (symmetric expansion)", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 1) != -1 || d.At(1, 0) != -1 {
		t.Error("symmetric mirror entry missing")
	}
	if d.At(0, 0) != 2 || d.At(2, 2) != 5 {
		t.Error("diagonal entries wrong")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	if d.At(0, 1) != 1 || d.At(1, 0) != 1 {
		t.Error("pattern entries should read as 1")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad banner", "hello\n1 1 1\n1 1 1\n"},
		{"array container", "%%MatrixMarket matrix array real general\n1 1\n1.0\n"},
		{"complex field", "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"},
		{"missing size", "%%MatrixMarket matrix coordinate real general\n"},
		{"short entry", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n"},
		{"out of range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"},
		{"zero index", "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n"},
		{"truncated", "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"},
		{"bad value", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadMatrixMarket(strings.NewReader(tc.in)); err == nil {
				t.Errorf("accepted malformed input %q", tc.in)
			}
		})
	}
}

func TestMatrixMarketIntegerField(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 2
1 1 3
2 2 -4
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	if d.At(0, 0) != 3 || d.At(1, 1) != -4 {
		t.Error("integer values wrong")
	}
}
