package matrix

import "math/rand"

// Pattern helpers produce small structured matrices for tests and examples.

// Identity returns the n x n identity matrix.
func Identity(n int) *CSR {
	m := &CSR{Rows: n, Cols: n,
		RowPtr: make([]int32, n+1),
		ColIdx: make([]int32, n),
		Val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = int32(i + 1)
		m.ColIdx[i] = int32(i)
		m.Val[i] = 1
	}
	return m
}

// Tridiagonal returns the n x n matrix with d on the diagonal and e on both
// off-diagonals, the classic 1-D Laplacian shape.
func Tridiagonal(n int, d, e float64) *CSR {
	o := NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		if i > 0 {
			o.Append(int32(i), int32(i-1), e)
		}
		o.Append(int32(i), int32(i), d)
		if i < n-1 {
			o.Append(int32(i), int32(i+1), e)
		}
	}
	return o.ToCSR()
}

// Laplacian2D returns the 5-point stencil Laplacian on an nx x ny grid
// (rows = cols = nx*ny), a common PDE workload shape.
func Laplacian2D(nx, ny int) *CSR {
	n := nx * ny
	o := NewCOO(n, n, 5*n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := y*nx + x
			o.Append(int32(i), int32(i), 4)
			if x > 0 {
				o.Append(int32(i), int32(i-1), -1)
			}
			if x < nx-1 {
				o.Append(int32(i), int32(i+1), -1)
			}
			if y > 0 {
				o.Append(int32(i), int32(i-nx), -1)
			}
			if y < ny-1 {
				o.Append(int32(i), int32(i+nx), -1)
			}
		}
	}
	return o.ToCSR()
}

// Random returns a rows x cols matrix where each entry is present with
// probability density, with values uniform in [-1, 1). Deterministic in seed.
func Random(rows, cols int, density float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	o := NewCOO(rows, cols, int(float64(rows*cols)*density)+1)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				o.Append(int32(i), int32(j), rng.Float64()*2-1)
			}
		}
	}
	return o.ToCSR()
}

// RandomRowSizes returns a rows x cols matrix where row i holds exactly
// rowNNZ[i] entries at distinct random columns. Deterministic in seed.
func RandomRowSizes(rows, cols int, rowNNZ []int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, n := range rowNNZ {
		total += n
	}
	m := &CSR{Rows: rows, Cols: cols,
		RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, 0, total),
		Val:    make([]float64, 0, total),
	}
	seen := make(map[int32]bool, 64)
	for i := 0; i < rows; i++ {
		n := rowNNZ[i]
		if n > cols {
			n = cols
		}
		for c := range seen {
			delete(seen, c)
		}
		for len(seen) < n {
			seen[int32(rng.Intn(cols))] = true
		}
		cs := make([]int32, 0, n)
		for c := range seen {
			cs = append(cs, c)
		}
		sortInt32(cs)
		for _, c := range cs {
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, rng.Float64()*2-1)
		}
		m.RowPtr[i+1] = int32(len(m.Val))
	}
	return m
}

func sortInt32(s []int32) {
	// Insertion sort is fine for the short per-row slices used here.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// RandomVector returns an n-vector with entries uniform in [-1, 1),
// deterministic in seed.
func RandomVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}
