package matrix

import "testing"

func TestTridiagonalStructure(t *testing.T) {
	m := Tridiagonal(5, 2, -1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 13 { // 3*5 - 2
		t.Errorf("NNZ = %d, want 13", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 0) != 2 || d.At(0, 1) != -1 || d.At(4, 3) != -1 {
		t.Error("wrong tridiagonal values")
	}
}

func TestLaplacian2DRowSums(t *testing.T) {
	m := Laplacian2D(4, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior rows sum to zero; boundary rows are positive.
	x := make([]float64, 16)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 16)
	m.SpMV(x, y)
	interior := 1*4 + 1 // grid point (1,1)
	if y[interior] != 0 {
		t.Errorf("interior row sum = %g, want 0", y[interior])
	}
	if y[0] <= 0 {
		t.Errorf("corner row sum = %g, want > 0", y[0])
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(20, 20, 0.3, 5)
	b := Random(20, 20, 0.3, 5)
	if !a.Equal(b) {
		t.Error("Random with the same seed differs")
	}
	c := Random(20, 20, 0.3, 6)
	if a.Equal(c) {
		t.Error("Random with different seeds produced identical matrices")
	}
}

func TestRandomRowSizesExact(t *testing.T) {
	sizes := []int{0, 3, 7, 1}
	m := RandomRowSizes(4, 50, sizes, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, want := range sizes {
		if got := m.RowNNZ(i); got != want {
			t.Errorf("row %d has %d entries, want %d", i, got, want)
		}
	}
}

func TestRandomRowSizesClampsToCols(t *testing.T) {
	m := RandomRowSizes(1, 4, []int{10}, 3)
	if got := m.RowNNZ(0); got != 4 {
		t.Errorf("row 0 has %d entries, want clamp to 4", got)
	}
}

func TestRandomVectorDeterminism(t *testing.T) {
	a := RandomVector(10, 1)
	b := RandomVector(10, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomVector with same seed differs")
		}
	}
}
