package matrix

// Fingerprint returns a deterministic 64-bit structural hash of the matrix:
// shape, nonzero count, the row-pointer profile and a stride sample of the
// column indices. Values are excluded on purpose — SpMV kernel timing (and
// therefore format selection) depends only on the sparsity structure, so
// two matrices that differ only in values fingerprint identically and can
// share a cached format decision. The hash touches at most ~16Ki entries
// regardless of matrix size, so fingerprinting a multi-GiB matrix stays
// microsecond-scale.
func (m *CSR) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
		budget   = 8192 // per-array entries hashed at most
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(m.Rows))
	mix(uint64(m.Cols))
	mix(uint64(m.NNZ()))
	strideOver := func(n int) int {
		if n <= budget {
			return 1
		}
		return n / budget
	}
	for i, st := 0, strideOver(len(m.RowPtr)); i < len(m.RowPtr); i += st {
		mix(uint64(m.RowPtr[i]))
	}
	if n := len(m.ColIdx); n > 0 {
		st := strideOver(n)
		for i := 0; i < n; i += st {
			mix(uint64(m.ColIdx[i]))
		}
		mix(uint64(m.ColIdx[n-1])) // always pin the tail
	}
	return h
}

// RowSample returns a sub-matrix of approximately maxRows rows taken at a
// fixed stride across the full row range, keeping each sampled row's column
// structure (and the column dimension) intact. Stride sampling preserves
// the row-length distribution — including the heavy head a skewed generator
// concentrates at low row indices — so kernels on the sample exhibit the
// same balance and locality behaviour as on the full matrix, at a fraction
// of the footprint. A maxRows of zero, negative, or >= Rows returns m
// itself (no copy).
func (m *CSR) RowSample(maxRows int) *CSR {
	if maxRows <= 0 || maxRows >= m.Rows {
		return m
	}
	stride := (m.Rows + maxRows - 1) / maxRows
	rows := make([]int, 0, maxRows+1)
	for i := 0; i < m.Rows; i += stride {
		rows = append(rows, i)
	}
	s := &CSR{Rows: len(rows), Cols: m.Cols}
	s.RowPtr = make([]int32, len(rows)+1)
	nnz := 0
	for si, i := range rows {
		nnz += m.RowNNZ(i)
		s.RowPtr[si+1] = int32(nnz)
	}
	s.ColIdx = make([]int32, 0, nnz)
	s.Val = make([]float64, 0, nnz)
	for _, i := range rows {
		cols, vals := m.Row(i)
		s.ColIdx = append(s.ColIdx, cols...)
		s.Val = append(s.Val, vals...)
	}
	return s
}
