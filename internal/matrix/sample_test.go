package matrix

import "testing"

func sampleTestMatrix(t *testing.T) *CSR {
	t.Helper()
	m := Tridiagonal(1000, 2, -1)
	return m
}

func TestFingerprintStableAndStructural(t *testing.T) {
	m := sampleTestMatrix(t)
	fp := m.Fingerprint()
	if fp == 0 {
		t.Fatal("zero fingerprint")
	}
	if m.Fingerprint() != fp {
		t.Fatal("fingerprint not deterministic")
	}
	// Values do not change the structure, so not the fingerprint.
	c := m.Clone()
	for i := range c.Val {
		c.Val[i] *= 3.5
	}
	if c.Fingerprint() != fp {
		t.Error("value change altered the structural fingerprint")
	}
	// Structure changes do.
	c2 := m.Clone()
	c2.ColIdx[len(c2.ColIdx)-1]-- // move the last entry one column left
	if c2.Fingerprint() == fp {
		t.Error("structural change kept the fingerprint")
	}
	if Tridiagonal(999, 2, -1).Fingerprint() == fp {
		t.Error("different shape kept the fingerprint")
	}
	// Degenerate matrices fingerprint without panicking.
	empty, err := NewCSR(0, 0, []int32{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = empty.Fingerprint()
}

func TestRowSample(t *testing.T) {
	m := sampleTestMatrix(t)
	s := m.RowSample(100)
	if s.Rows < 100 || s.Rows > 101 {
		t.Fatalf("sampled %d rows, want ~100", s.Rows)
	}
	if s.Cols != m.Cols {
		t.Fatalf("sample changed cols: %d != %d", s.Cols, m.Cols)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("sample invalid: %v", err)
	}
	// Sampled rows are exact copies of their originals (stride order).
	stride := (m.Rows + 99) / 100
	for si := 0; si < s.Rows; si++ {
		wantCols, wantVals := m.Row(si * stride)
		gotCols, gotVals := s.Row(si)
		if len(gotCols) != len(wantCols) {
			t.Fatalf("row %d: %d entries, want %d", si, len(gotCols), len(wantCols))
		}
		for j := range gotCols {
			if gotCols[j] != wantCols[j] || gotVals[j] != wantVals[j] {
				t.Fatalf("row %d entry %d differs", si, j)
			}
		}
	}
	// No-op cases return the receiver.
	if m.RowSample(0) != m || m.RowSample(m.Rows) != m || m.RowSample(m.Rows*2) != m {
		t.Error("no-op sample should return the original matrix")
	}
}
