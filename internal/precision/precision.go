// Package precision implements the precision study the paper defers to
// future work ("we use double precision ... and leave the study of other
// precision levels for future work", Section IV): CSR SpMV kernels at
// single precision and in a mixed scheme (float32 storage with float64
// accumulation), plus the traffic accounting that predicts their speedup
// on bandwidth-bound devices.
//
// The value of lower precision for SpMV is almost entirely traffic: a
// float32 CSR matrix moves 8 bytes per nonzero (4 value + 4 index) instead
// of 12, a 1.5x reduction that bandwidth-bound SpMV converts directly into
// throughput. The mixed kernel keeps that traffic while restoring most of
// the accumulation accuracy.
package precision

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/sched"
)

// CSR32 is a single-precision CSR matrix.
type CSR32 struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float32
}

// FromCSR converts a double-precision matrix, rounding values to float32.
func FromCSR(m *matrix.CSR) *CSR32 {
	f := &CSR32{
		Rows: m.Rows, Cols: m.Cols,
		RowPtr: m.RowPtr, ColIdx: m.ColIdx,
		Val: make([]float32, len(m.Val)),
	}
	for i, v := range m.Val {
		f.Val[i] = float32(v)
	}
	return f
}

// NNZ returns the stored nonzero count.
func (m *CSR32) NNZ() int { return len(m.Val) }

// Bytes returns the storage footprint: 8 bytes per nonzero plus row
// pointers, against CSR's 12.
func (m *CSR32) Bytes() int64 { return int64(m.NNZ())*8 + int64(m.Rows+1)*4 }

// SpMV32 computes y = A*x entirely in single precision.
func (m *CSR32) SpMV32(x, y []float32) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("precision: SpMV32 shape mismatch: x %d y %d for %dx%d",
			len(x), len(y), m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		var sum float32
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
}

// SpMVMixed computes y = A*x with float32 storage and float64 accumulation,
// the scheme HBM FPGA accelerators favor (fixed traffic, wide accumulators).
func (m *CSR32) SpMVMixed(x []float32, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("precision: SpMVMixed shape mismatch: x %d y %d for %dx%d",
			len(x), len(y), m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += float64(m.Val[k]) * float64(x[m.ColIdx[k]])
		}
		y[i] = sum
	}
}

// SpMV32Parallel is the nnz-balanced parallel single-precision kernel.
func (m *CSR32) SpMV32Parallel(x, y []float32, workers int) {
	ranges := sched.NNZBalanced(m.RowPtr, workers)
	done := make(chan struct{}, len(ranges))
	for w := range ranges {
		go func(r sched.Range) {
			for i := r.RowLo; i < r.RowHi; i++ {
				var sum float32
				for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
					sum += m.Val[k] * x[m.ColIdx[k]]
				}
				y[i] = sum
			}
			done <- struct{}{}
		}(ranges[w])
	}
	for range ranges {
		<-done
	}
}

// TrafficRatio returns the bandwidth-bound speedup bound of single over
// double precision for this matrix: double bytes / single bytes, counting
// the matrix stream and both vectors once.
func TrafficRatio(m *matrix.CSR) float64 {
	double := float64(m.FootprintBytes()) + 8*float64(m.Rows+m.Cols)
	single := float64(int64(m.NNZ())*8+int64(m.Rows+1)*4) + 4*float64(m.Rows+m.Cols)
	if single == 0 {
		return 1
	}
	return double / single
}

// Comparison holds the per-precision error and traffic of one matrix.
type Comparison struct {
	TrafficRatio   float64 // bandwidth-bound fp32 speedup bound
	MaxRelErr32    float64 // worst relative error of pure float32
	MaxRelErrMixed float64 // worst relative error of the mixed scheme
}

// Compare runs all three kernels on the matrix with a shared random x and
// reports the achievable traffic gain and the accuracy cost.
func Compare(m *matrix.CSR, seed int64) Comparison {
	x64 := matrix.RandomVector(m.Cols, seed)
	x32 := make([]float32, m.Cols)
	for i, v := range x64 {
		x32[i] = float32(v)
	}
	want := make([]float64, m.Rows)
	m.SpMV(x64, want)

	m32 := FromCSR(m)
	y32 := make([]float32, m.Rows)
	m32.SpMV32(x32, y32)
	yMixed := make([]float64, m.Rows)
	m32.SpMVMixed(x32, yMixed)

	c := Comparison{TrafficRatio: TrafficRatio(m)}
	for i := range want {
		c.MaxRelErr32 = math.Max(c.MaxRelErr32, relErr(want[i], float64(y32[i])))
		c.MaxRelErrMixed = math.Max(c.MaxRelErrMixed, relErr(want[i], yMixed[i]))
	}
	return c
}

func relErr(want, got float64) float64 {
	scale := math.Max(math.Abs(want), 1e-30)
	return math.Abs(got-want) / scale
}
