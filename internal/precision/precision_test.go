package precision

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
)

func testMatrix(t *testing.T) *matrix.CSR {
	t.Helper()
	m, err := gen.Generate(gen.Params{
		Rows: 3000, Cols: 3000, AvgNNZPerRow: 15, StdNNZPerRow: 4,
		BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromCSRRoundsValues(t *testing.T) {
	m := matrix.Identity(4)
	m.Val[0] = 1.0000000001 // not representable in float32
	f := FromCSR(m)
	if f.Val[0] != 1.0 {
		t.Errorf("Val[0] = %v, want rounded 1.0", f.Val[0])
	}
	if f.NNZ() != 4 {
		t.Errorf("NNZ = %d", f.NNZ())
	}
}

func TestBytesReduction(t *testing.T) {
	m := testMatrix(t)
	f := FromCSR(m)
	ratio := float64(m.FootprintBytes()) / float64(f.Bytes())
	// 12 bytes/nnz vs 8 bytes/nnz: asymptotically 1.5x.
	if ratio < 1.4 || ratio > 1.55 {
		t.Errorf("storage ratio = %.3f, want ~1.5", ratio)
	}
}

func TestSpMV32MatchesWithinSinglePrecision(t *testing.T) {
	m := testMatrix(t)
	c := Compare(m, 9)
	if c.MaxRelErr32 > 1e-3 {
		t.Errorf("float32 relative error %g too large", c.MaxRelErr32)
	}
	if c.MaxRelErr32 == 0 {
		t.Error("float32 should not be bit-exact against float64")
	}
}

func TestMixedBeatsPureSingle(t *testing.T) {
	// Long rows amplify accumulation error; mixed precision restores it.
	sizes := make([]int, 50)
	for i := range sizes {
		sizes[i] = 2000
	}
	m := matrix.RandomRowSizes(50, 4000, sizes, 11)
	c := Compare(m, 12)
	if c.MaxRelErrMixed >= c.MaxRelErr32 {
		t.Errorf("mixed error %g should beat pure float32 %g", c.MaxRelErrMixed, c.MaxRelErr32)
	}
}

func TestTrafficRatioBounds(t *testing.T) {
	m := testMatrix(t)
	r := TrafficRatio(m)
	if r < 1.3 || r > 1.6 {
		t.Errorf("traffic ratio = %.3f, want within (1.3, 1.6)", r)
	}
}

func TestParallelMatchesSerial32(t *testing.T) {
	m := testMatrix(t)
	f := FromCSR(m)
	x := make([]float32, m.Cols)
	for i := range x {
		x[i] = float32(i%7) - 3
	}
	serial := make([]float32, m.Rows)
	parallel := make([]float32, m.Rows)
	f.SpMV32(x, serial)
	f.SpMV32Parallel(x, parallel, 8)
	for i := range serial {
		if d := math.Abs(float64(serial[i] - parallel[i])); d > 1e-4 {
			t.Fatalf("row %d: serial %g parallel %g", i, serial[i], parallel[i])
		}
	}
}

func TestShapePanics(t *testing.T) {
	f := FromCSR(matrix.Identity(4))
	for name, fn := range map[string]func(){
		"SpMV32":    func() { f.SpMV32(make([]float32, 3), make([]float32, 4)) },
		"SpMVMixed": func() { f.SpMVMixed(make([]float32, 3), make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with wrong shape did not panic", name)
				}
			}()
			fn()
		}()
	}
}
