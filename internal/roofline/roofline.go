// Package roofline implements the Williams-Waterman-Patterson roofline
// model used in Fig. 1 of the paper: per-matrix attainable-performance
// bounds from the CSR arithmetic intensity against each device's measured
// DRAM and last-level-cache bandwidths.
package roofline

import (
	"math"

	"repro/internal/core"
)

// Roof describes one device's performance ceilings.
type Roof struct {
	PeakGFLOPS float64 // compute ceiling
	MemBWGBs   float64 // measured DRAM/HBM bandwidth
	LLCBWGBs   float64 // measured last-level-cache bandwidth (0 if none)
	LLCBytes   int64   // last-level-cache capacity
}

// Bound returns the attainable GFLOP/s at arithmetic intensity ai
// (flops/byte) against the given bandwidth ceiling.
func (r Roof) Bound(ai, bwGBs float64) float64 {
	return math.Min(r.PeakGFLOPS, ai*bwGBs)
}

// CSRIntensity returns the arithmetic intensity of CSR SpMV for the matrix:
// 2 flops per nonzero over the CSR bytes plus one streaming pass of x and y.
func CSRIntensity(fv core.FeatureVector) float64 {
	bytes := fv.MemFootprintMB*(1<<20) + 8*float64(fv.Rows) + 8*float64(fv.Cols)
	if bytes <= 0 {
		return 0
	}
	return 2 * float64(fv.NNZ) / bytes
}

// MemoryBound is the paper's "Roofline Memory" point: the DRAM-bandwidth
// ceiling at the matrix's CSR intensity.
func (r Roof) MemoryBound(fv core.FeatureVector) float64 {
	return r.Bound(CSRIntensity(fv), r.MemBWGBs)
}

// LLCBound is the paper's "Roofline LLC" point: the cache-bandwidth ceiling,
// reachable only by matrices whose working set fits the LLC. Devices
// without a usable LLC roof return the memory bound.
func (r Roof) LLCBound(fv core.FeatureVector) float64 {
	if r.LLCBWGBs <= 0 {
		return r.MemoryBound(fv)
	}
	return r.Bound(CSRIntensity(fv), r.LLCBWGBs)
}

// Applicable returns the tighter-but-correct roof for the matrix: the LLC
// bound when the whole working set is cache-resident, the memory bound
// otherwise.
func (r Roof) Applicable(fv core.FeatureVector) float64 {
	workingSet := fv.MemFootprintMB*(1<<20) + 8*float64(fv.Rows+fv.Cols)
	if r.LLCBytes > 0 && workingSet <= 0.8*float64(r.LLCBytes) {
		return r.LLCBound(fv)
	}
	return r.MemoryBound(fv)
}
