package roofline

import (
	"math"
	"testing"

	"repro/internal/core"
)

func testRoof() Roof {
	return Roof{PeakGFLOPS: 1000, MemBWGBs: 100, LLCBWGBs: 800, LLCBytes: 128 << 20}
}

func fvMB(mb float64) core.FeatureVector {
	rows := int(mb * (1 << 20) / 244) // avg 20 nnz/row
	return core.FeatureVector{Rows: rows, Cols: rows, NNZ: int64(rows * 20),
		MemFootprintMB: mb, AvgNNZPerRow: 20}
}

func TestBoundRegimes(t *testing.T) {
	r := testRoof()
	// Memory-bound region: low intensity.
	if got := r.Bound(0.1, r.MemBWGBs); got != 10 {
		t.Errorf("Bound(0.1) = %g, want 10", got)
	}
	// Compute-bound region: intensity past the ridge.
	if got := r.Bound(100, r.MemBWGBs); got != 1000 {
		t.Errorf("Bound(100) = %g, want peak 1000", got)
	}
}

func TestCSRIntensityBelowOne(t *testing.T) {
	oi := CSRIntensity(fvMB(64))
	if oi <= 0 || oi >= 1 {
		t.Errorf("CSR intensity = %g, want in (0,1) per the paper", oi)
	}
	if CSRIntensity(core.FeatureVector{}) != 0 {
		t.Error("empty matrix intensity should be 0")
	}
}

func TestLLCBoundAboveMemoryBound(t *testing.T) {
	r := testRoof()
	fv := fvMB(16)
	if r.LLCBound(fv) <= r.MemoryBound(fv) {
		t.Error("LLC roof must sit above the memory roof")
	}
	// Without an LLC bandwidth the LLC bound falls back to memory.
	r.LLCBWGBs = 0
	if r.LLCBound(fv) != r.MemoryBound(fv) {
		t.Error("no-LLC fallback broken")
	}
}

func TestApplicableSwitchesAtCapacity(t *testing.T) {
	r := testRoof() // 128 MB LLC
	small := fvMB(16)
	large := fvMB(1024)
	if got, want := r.Applicable(small), r.LLCBound(small); got != want {
		t.Errorf("small matrix roof = %g, want LLC bound %g", got, want)
	}
	if got, want := r.Applicable(large), r.MemoryBound(large); got != want {
		t.Errorf("large matrix roof = %g, want memory bound %g", got, want)
	}
}

func TestBoundMonotoneInIntensity(t *testing.T) {
	r := testRoof()
	prev := -1.0
	for ai := 0.01; ai < 100; ai *= 2 {
		b := r.Bound(ai, r.MemBWGBs)
		if b < prev {
			t.Fatalf("bound decreased at ai=%g", ai)
		}
		prev = b
	}
	if !math.IsNaN(r.Bound(math.NaN(), r.MemBWGBs)) {
		t.Skip("NaN propagates; nothing to assert")
	}
}
