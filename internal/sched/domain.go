package sched

// Domain-split partitioners: the two-level work distribution the sharded
// execution engine uses when one SpMV call gang-schedules across several
// topology domains. Rows are first sliced into `domains` contiguous spans
// of near-equal nonzero count (always on whole-row boundaries, so no carry
// ever crosses a domain), then the base policy splits each span among that
// domain's share of the workers. The resulting ranges are ordered domain by
// domain, matching the engine's id assignment: consecutive worker ids land
// on one shard's workers, so each domain's slice of the matrix is walked by
// the cores pinned to that domain.

// Partitioner is a single-level row partition policy: RowBlocks,
// NNZBalanced or MergePath.
type Partitioner func(rowPtr []int32, p int) []Range

// DomainSplit partitions rows over `domains` topology domains with
// `workers` total workers, applying `inner` within each domain's slice.
// domains <= 1 degenerates to the plain single-level policy, so kernels
// can call it unconditionally. Fewer ranges than workers may be returned
// (degenerate slices collapse, like the single-level policies). Callers
// that dispatch ganged placements should prefer DomainSplitOff, whose
// offset table keeps collapsed partitions on their own domain's shard.
func DomainSplit(rowPtr []int32, domains, workers int, inner Partitioner) []Range {
	ranges, _ := DomainSplitOff(rowPtr, domains, workers, inner)
	return ranges
}

// DomainSplitOff is DomainSplit plus the per-domain offset table into the
// returned ranges: ranges[off[j]:off[j+1]] are domain j's ranges, with
// len(off)-1 the number of domain slices actually produced (heavy skew can
// collapse slices, so it may be below the requested domain count). The
// execution engine dispatches gang id blocks by these offsets instead of
// arithmetic workers*j/domains blocks, so a collapsed partition's ranges
// still run on the shard pinned to their domain.
func DomainSplitOff(rowPtr []int32, domains, workers int, inner Partitioner) ([]Range, []int) {
	if workers < 1 {
		workers = 1
	}
	if domains > workers {
		domains = workers
	}
	if domains <= 1 {
		out := inner(rowPtr, workers)
		return out, []int{0, len(out)}
	}
	slices := NNZBalanced(rowPtr, domains)
	d := len(slices) // heavy skew can collapse domain slices
	if d <= 1 {
		out := inner(rowPtr, workers)
		return out, []int{0, len(out)}
	}
	out := make([]Range, 0, workers)
	off := make([]int, 1, d+1)
	for i, s := range slices {
		p := workers*(i+1)/d - workers*i/d // fair share of the workers
		if p < 1 {
			p = 1
		}
		for _, r := range inner(rebase(rowPtr, s), p) {
			if r.RowLo == r.RowHi && r.NNZLo == r.NNZHi {
				continue // empty slice artifact
			}
			out = append(out, Range{
				RowLo: r.RowLo + s.RowLo, RowHi: r.RowHi + s.RowLo,
				NNZLo: r.NNZLo + s.NNZLo, NNZHi: r.NNZHi + s.NNZLo,
			})
		}
		off = append(off, len(out))
	}
	return out, off
}

// rebase copies the row-pointer span covered by s into a zero-based
// sub-array, the shape every Partitioner expects. DomainSplit runs once per
// placement at plan-build time, so the copy is never on a kernel path.
func rebase(rowPtr []int32, s Range) []int32 {
	sub := make([]int32, s.Rows()+1)
	base := rowPtr[s.RowLo]
	for i := range sub {
		sub[i] = rowPtr[s.RowLo+i] - base
	}
	return sub
}

// DomainEvenRows is the domain-split counterpart of EvenRows, for formats
// whose per-row work is uniform by construction (ELL, DIA): rows are cut
// into `domains` contiguous near-equal spans, each split evenly among its
// share of the workers. Like EvenRows, the NNZ fields count rows.
func DomainEvenRows(rows, domains, workers int) []Range {
	ranges, _ := DomainEvenRowsOff(rows, domains, workers)
	return ranges
}

// DomainEvenRowsOff is DomainEvenRows plus the per-domain offset table into
// the returned ranges (see DomainSplitOff).
func DomainEvenRowsOff(rows, domains, workers int) ([]Range, []int) {
	if workers < 1 {
		workers = 1
	}
	if domains > workers {
		domains = workers
	}
	if domains <= 1 {
		out := EvenRows(rows, workers)
		return out, []int{0, len(out)}
	}
	if rows == 0 {
		return []Range{{0, 0, 0, 0}}, []int{0, 1}
	}
	out := make([]Range, 0, workers)
	off := make([]int, 1, domains+1)
	for i := 0; i < domains; i++ {
		dLo := rows * i / domains
		dHi := rows * (i + 1) / domains
		p := workers*(i+1)/domains - workers*i/domains
		if p < 1 {
			p = 1
		}
		for _, r := range EvenRows(dHi-dLo, p) {
			if r.RowLo == r.RowHi {
				continue
			}
			out = append(out, Range{
				RowLo: r.RowLo + dLo, RowHi: r.RowHi + dLo,
				NNZLo: r.NNZLo + int64(dLo), NNZHi: r.NNZHi + int64(dLo),
			})
		}
		off = append(off, len(out))
	}
	return out, off
}
