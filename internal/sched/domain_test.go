package sched

import "testing"

var domainCounts = []int{1, 2, 3, 4, 8}

// TestDomainSplitRowGranularProperties: with a row-granular inner policy,
// a domain-split partition must satisfy the same contract as the
// single-level policy — contiguous full-row coverage, row-pointer
// consistency, NNZ conservation — for every domain count.
func TestDomainSplitRowGranularProperties(t *testing.T) {
	inners := map[string]Partitioner{"RowBlocks": RowBlocks, "NNZBalanced": NNZBalanced}
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		for innerName, inner := range inners {
			for _, d := range domainCounts {
				for _, p := range propertyWorkerCounts {
					ranges := DomainSplit(ptr, d, p, inner)
					checkRowGranular(t, "DomainSplit/"+innerName, shape, ptr, p, ranges)
				}
			}
		}
	}
}

// TestDomainSplitMergePathProperties: with the item-granular inner policy,
// coverage and contiguity must hold globally (domain boundaries are
// whole-row cuts, so the merge path restarts cleanly at each).
func TestDomainSplitMergePathProperties(t *testing.T) {
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		rows := len(ptr) - 1
		nnz := int64(ptr[rows])
		for _, d := range domainCounts {
			for _, p := range propertyWorkerCounts {
				ranges := DomainSplit(ptr, d, p, MergePath)
				if len(ranges) == 0 {
					t.Fatalf("%s d=%d p=%d: no ranges", shape, d, p)
				}
				if len(ranges) > max(p, 1) {
					t.Errorf("%s d=%d p=%d: %d ranges exceed worker count", shape, d, p, len(ranges))
				}
				if ranges[0].RowLo != 0 || ranges[0].NNZLo != 0 {
					t.Errorf("%s d=%d p=%d: first range not at origin: %+v", shape, d, p, ranges[0])
				}
				last := ranges[len(ranges)-1]
				if rows > 0 && (last.RowHi != rows || last.NNZHi != nnz) {
					t.Errorf("%s d=%d p=%d: last range ends at (%d,%d), want (%d,%d)",
						shape, d, p, last.RowHi, last.NNZHi, rows, nnz)
				}
				var work int64
				for i, r := range ranges {
					if r.RowLo > r.RowHi || r.NNZLo > r.NNZHi {
						t.Errorf("%s d=%d p=%d: range %d not monotone: %+v", shape, d, p, i, r)
					}
					if i > 0 && (ranges[i-1].RowHi != r.RowLo || ranges[i-1].NNZHi != r.NNZLo) {
						t.Errorf("%s d=%d p=%d: discontiguous at range %d", shape, d, p, i)
					}
					work += int64(r.Rows()) + r.NNZ()
				}
				if rows > 0 && work != int64(rows)+nnz {
					t.Errorf("%s d=%d p=%d: work not conserved: %d, want %d",
						shape, d, p, work, int64(rows)+nnz)
				}
			}
		}
	}
}

// TestDomainSplitAlignsDomainBoundaries: each domain boundary of the
// two-level partition must coincide with a boundary of the standalone
// domain slicing, so a ganged dispatch really hands each shard a
// contiguous whole-row slab.
func TestDomainSplitAlignsDomainBoundaries(t *testing.T) {
	lens := propertyShapes()["uniform"]
	ptr := rowPtrFrom(lens)
	const d, workers = 4, 8
	slices := NNZBalanced(ptr, d)
	ranges := DomainSplit(ptr, d, workers, RowBlocks)
	cuts := map[int]bool{}
	for _, r := range ranges {
		cuts[r.RowLo] = true
	}
	for _, s := range slices {
		if !cuts[s.RowLo] {
			t.Errorf("domain slice start row %d is not a range boundary", s.RowLo)
		}
	}
}

// TestDomainSplitSingleDomainMatchesInner: domains <= 1 must be byte-for-
// byte the single-level policy, the invariant that keeps single-shard
// dispatch identical to the pre-shard engine.
func TestDomainSplitSingleDomainMatchesInner(t *testing.T) {
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		for _, p := range propertyWorkerCounts {
			got := DomainSplit(ptr, 1, p, NNZBalanced)
			want := NNZBalanced(ptr, p)
			if len(got) != len(want) {
				t.Fatalf("%s p=%d: %d ranges, want %d", shape, p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s p=%d: range %d = %+v, want %+v", shape, p, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDomainSplitOffTable: the offset table must bracket exactly the
// ranges produced for each domain slice — off[0] = 0, off monotone,
// off[len(off)-1] = len(ranges) — and each domain's range group must cover
// precisely that domain's row slice. This is the contract the engine's
// ganged dispatch relies on to place collapsed partitions.
func TestDomainSplitOffTable(t *testing.T) {
	inners := map[string]Partitioner{"RowBlocks": RowBlocks, "NNZBalanced": NNZBalanced, "MergePath": MergePath}
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		for innerName, inner := range inners {
			for _, d := range domainCounts {
				for _, p := range propertyWorkerCounts {
					ranges, off := DomainSplitOff(ptr, d, p, inner)
					if len(off) < 2 || off[0] != 0 || off[len(off)-1] != len(ranges) {
						t.Fatalf("%s/%s d=%d p=%d: bad offset table %v for %d ranges",
							shape, innerName, d, p, off, len(ranges))
					}
					for j := 1; j < len(off); j++ {
						if off[j] < off[j-1] {
							t.Fatalf("%s/%s d=%d p=%d: offsets not monotone: %v", shape, innerName, d, p, off)
						}
					}
					// Domain groups must be contiguous whole-row slabs: group
					// j ends where group j+1 starts.
					for j := 0; j+1 < len(off)-1; j++ {
						if off[j+1] == off[j] || off[j+2] == off[j+1] {
							continue // collapsed group (empty matrix artifact)
						}
						endJ := ranges[off[j+1]-1].RowHi
						startNext := ranges[off[j+1]].RowLo
						if endJ != startNext {
							t.Errorf("%s/%s d=%d p=%d: domain %d ends at row %d, domain %d starts at %d",
								shape, innerName, d, p, j, endJ, j+1, startNext)
						}
					}
				}
			}
		}
	}
}

// TestDomainSplitOffPathologicalSkew is the gang-alignment regression: a
// giant first row swallows several domains' fair shares, collapsing the
// domain slicing, and the offset table must reflect the collapsed groups —
// the arithmetic workers*j/domains blocks the engine used to dispatch with
// would hand domain 1's ranges to domain 0's shard here.
func TestDomainSplitOffPathologicalSkew(t *testing.T) {
	// Row 0: 1e6 nonzeros; rows 1..11: one each.
	lens := make([]int, 12)
	lens[0] = 1_000_000
	for i := 1; i < len(lens); i++ {
		lens[i] = 1
	}
	ptr := rowPtrFrom(lens)
	const domains, workers = 3, 6
	ranges, off := DomainSplitOff(ptr, domains, workers, NNZBalanced)
	if len(off)-1 >= domains {
		t.Fatalf("skew did not collapse the domain slicing: %d groups, offsets %v", len(off)-1, off)
	}
	// The giant row must sit alone in the first group.
	if off[1]-off[0] != 1 || ranges[0].RowHi != 1 {
		t.Fatalf("first domain group = ranges[%d:%d] (%+v), want the giant row alone",
			off[0], off[1], ranges[off[0]:off[1]])
	}
	// The arithmetic block for shard 0 (workers*1/groups ids) would cover
	// ranges beyond the giant row — the misplacement this table fixes.
	groups := len(off) - 1
	if arith := workers * 1 / groups; arith <= off[1] {
		t.Fatalf("skew case lost its teeth: arithmetic block end %d no longer exceeds offset %d",
			arith, off[1])
	}
}

func TestDomainEvenRowsProperties(t *testing.T) {
	for _, rows := range []int{0, 1, 2, 5, 63, 64, 1000} {
		for _, d := range domainCounts {
			for _, p := range propertyWorkerCounts {
				ranges := DomainEvenRows(rows, d, p)
				if len(ranges) == 0 {
					t.Fatalf("rows=%d d=%d p=%d: no ranges", rows, d, p)
				}
				if len(ranges) > max(p, 1) {
					t.Errorf("rows=%d d=%d p=%d: %d ranges exceed worker count", rows, d, p, len(ranges))
				}
				if ranges[0].RowLo != 0 || ranges[len(ranges)-1].RowHi != rows {
					t.Errorf("rows=%d d=%d p=%d: span [%d,%d), want [0,%d)", rows, d, p,
						ranges[0].RowLo, ranges[len(ranges)-1].RowHi, rows)
				}
				for i, r := range ranges {
					if i > 0 && ranges[i-1].RowHi != r.RowLo {
						t.Errorf("rows=%d d=%d p=%d: gap at range %d", rows, d, p, i)
					}
					if rows > 0 && r.Rows() == 0 {
						t.Errorf("rows=%d d=%d p=%d: empty range %d", rows, d, p, i)
					}
				}
			}
		}
	}
}
