package sched

import "testing"

var domainCounts = []int{1, 2, 3, 4, 8}

// TestDomainSplitRowGranularProperties: with a row-granular inner policy,
// a domain-split partition must satisfy the same contract as the
// single-level policy — contiguous full-row coverage, row-pointer
// consistency, NNZ conservation — for every domain count.
func TestDomainSplitRowGranularProperties(t *testing.T) {
	inners := map[string]Partitioner{"RowBlocks": RowBlocks, "NNZBalanced": NNZBalanced}
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		for innerName, inner := range inners {
			for _, d := range domainCounts {
				for _, p := range propertyWorkerCounts {
					ranges := DomainSplit(ptr, d, p, inner)
					checkRowGranular(t, "DomainSplit/"+innerName, shape, ptr, p, ranges)
				}
			}
		}
	}
}

// TestDomainSplitMergePathProperties: with the item-granular inner policy,
// coverage and contiguity must hold globally (domain boundaries are
// whole-row cuts, so the merge path restarts cleanly at each).
func TestDomainSplitMergePathProperties(t *testing.T) {
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		rows := len(ptr) - 1
		nnz := int64(ptr[rows])
		for _, d := range domainCounts {
			for _, p := range propertyWorkerCounts {
				ranges := DomainSplit(ptr, d, p, MergePath)
				if len(ranges) == 0 {
					t.Fatalf("%s d=%d p=%d: no ranges", shape, d, p)
				}
				if len(ranges) > max(p, 1) {
					t.Errorf("%s d=%d p=%d: %d ranges exceed worker count", shape, d, p, len(ranges))
				}
				if ranges[0].RowLo != 0 || ranges[0].NNZLo != 0 {
					t.Errorf("%s d=%d p=%d: first range not at origin: %+v", shape, d, p, ranges[0])
				}
				last := ranges[len(ranges)-1]
				if rows > 0 && (last.RowHi != rows || last.NNZHi != nnz) {
					t.Errorf("%s d=%d p=%d: last range ends at (%d,%d), want (%d,%d)",
						shape, d, p, last.RowHi, last.NNZHi, rows, nnz)
				}
				var work int64
				for i, r := range ranges {
					if r.RowLo > r.RowHi || r.NNZLo > r.NNZHi {
						t.Errorf("%s d=%d p=%d: range %d not monotone: %+v", shape, d, p, i, r)
					}
					if i > 0 && (ranges[i-1].RowHi != r.RowLo || ranges[i-1].NNZHi != r.NNZLo) {
						t.Errorf("%s d=%d p=%d: discontiguous at range %d", shape, d, p, i)
					}
					work += int64(r.Rows()) + r.NNZ()
				}
				if rows > 0 && work != int64(rows)+nnz {
					t.Errorf("%s d=%d p=%d: work not conserved: %d, want %d",
						shape, d, p, work, int64(rows)+nnz)
				}
			}
		}
	}
}

// TestDomainSplitAlignsDomainBoundaries: each domain boundary of the
// two-level partition must coincide with a boundary of the standalone
// domain slicing, so a ganged dispatch really hands each shard a
// contiguous whole-row slab.
func TestDomainSplitAlignsDomainBoundaries(t *testing.T) {
	lens := propertyShapes()["uniform"]
	ptr := rowPtrFrom(lens)
	const d, workers = 4, 8
	slices := NNZBalanced(ptr, d)
	ranges := DomainSplit(ptr, d, workers, RowBlocks)
	cuts := map[int]bool{}
	for _, r := range ranges {
		cuts[r.RowLo] = true
	}
	for _, s := range slices {
		if !cuts[s.RowLo] {
			t.Errorf("domain slice start row %d is not a range boundary", s.RowLo)
		}
	}
}

// TestDomainSplitSingleDomainMatchesInner: domains <= 1 must be byte-for-
// byte the single-level policy, the invariant that keeps single-shard
// dispatch identical to the pre-shard engine.
func TestDomainSplitSingleDomainMatchesInner(t *testing.T) {
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		for _, p := range propertyWorkerCounts {
			got := DomainSplit(ptr, 1, p, NNZBalanced)
			want := NNZBalanced(ptr, p)
			if len(got) != len(want) {
				t.Fatalf("%s p=%d: %d ranges, want %d", shape, p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s p=%d: range %d = %+v, want %+v", shape, p, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDomainEvenRowsProperties(t *testing.T) {
	for _, rows := range []int{0, 1, 2, 5, 63, 64, 1000} {
		for _, d := range domainCounts {
			for _, p := range propertyWorkerCounts {
				ranges := DomainEvenRows(rows, d, p)
				if len(ranges) == 0 {
					t.Fatalf("rows=%d d=%d p=%d: no ranges", rows, d, p)
				}
				if len(ranges) > max(p, 1) {
					t.Errorf("rows=%d d=%d p=%d: %d ranges exceed worker count", rows, d, p, len(ranges))
				}
				if ranges[0].RowLo != 0 || ranges[len(ranges)-1].RowHi != rows {
					t.Errorf("rows=%d d=%d p=%d: span [%d,%d), want [0,%d)", rows, d, p,
						ranges[0].RowLo, ranges[len(ranges)-1].RowHi, rows)
				}
				for i, r := range ranges {
					if i > 0 && ranges[i-1].RowHi != r.RowLo {
						t.Errorf("rows=%d d=%d p=%d: gap at range %d", rows, d, p, i)
					}
					if rows > 0 && r.Rows() == 0 {
						t.Errorf("rows=%d d=%d p=%d: empty range %d", rows, d, p, i)
					}
				}
			}
		}
	}
}
