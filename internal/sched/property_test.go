package sched

import (
	"math/rand"
	"testing"
)

// Property tests for the three partitioners: over a grid of adversarial
// row-length distributions and worker counts, every policy must (a) tile
// the row space contiguously, (b) keep bounds monotone and consistent with
// the row-pointer array, (c) conserve the nonzero count, and (d) never
// dispatch an empty range when there is work to split.

// rowPtrFrom builds a CSR row-pointer array from row lengths.
func rowPtrFrom(lens []int) []int32 {
	ptr := make([]int32, len(lens)+1)
	for i, n := range lens {
		ptr[i+1] = ptr[i] + int32(n)
	}
	return ptr
}

// propertyShapes enumerates row-length distributions that have historically
// broken partitioners: uniform, head-heavy and tail-heavy skew, giant
// single rows, empty-row stretches, all-empty and single-row matrices.
func propertyShapes() map[string][]int {
	shapes := map[string][]int{
		"single-row":    {37},
		"single-empty":  {0},
		"two-rows":      {5, 3},
		"all-empty":     make([]int, 40),
		"uniform":       nil,
		"head-giant":    nil,
		"tail-giant":    nil,
		"middle-giant":  nil,
		"empty-run":     nil,
		"random-sparse": nil,
	}
	uniform := make([]int, 100)
	for i := range uniform {
		uniform[i] = 7
	}
	shapes["uniform"] = uniform

	headGiant := make([]int, 64)
	for i := range headGiant {
		headGiant[i] = 1
	}
	headGiant[0] = 100000
	shapes["head-giant"] = headGiant

	tailGiant := make([]int, 64)
	for i := range tailGiant {
		tailGiant[i] = 1
	}
	tailGiant[63] = 100000
	shapes["tail-giant"] = tailGiant

	middleGiant := make([]int, 101)
	middleGiant[50] = 50000
	shapes["middle-giant"] = middleGiant

	emptyRun := make([]int, 90)
	for i := 0; i < 30; i++ {
		emptyRun[i] = 4
		emptyRun[60+i] = 4
	}
	shapes["empty-run"] = emptyRun

	rng := rand.New(rand.NewSource(99))
	randomSparse := make([]int, 300)
	for i := range randomSparse {
		if rng.Intn(3) == 0 {
			randomSparse[i] = rng.Intn(40)
		}
	}
	shapes["random-sparse"] = randomSparse
	return shapes
}

var propertyWorkerCounts = []int{1, 2, 3, 7, 8, 64, 1000}

// checkRowGranular verifies the shared contract of RowBlocks and
// NNZBalanced: contiguous full-row coverage, monotone bounds, row-pointer
// consistency, and NNZ conservation.
func checkRowGranular(t *testing.T, policy, shape string, ptr []int32, p int, ranges []Range) {
	t.Helper()
	rows := len(ptr) - 1
	if len(ranges) == 0 {
		t.Fatalf("%s/%s p=%d: no ranges", policy, shape, p)
	}
	if len(ranges) > max(p, 1) {
		t.Errorf("%s/%s p=%d: %d ranges exceed worker count", policy, shape, p, len(ranges))
	}
	if ranges[0].RowLo != 0 {
		t.Errorf("%s/%s p=%d: first range starts at row %d", policy, shape, p, ranges[0].RowLo)
	}
	if last := ranges[len(ranges)-1]; last.RowHi != rows {
		t.Errorf("%s/%s p=%d: last range ends at row %d, want %d", policy, shape, p, last.RowHi, rows)
	}
	var nnzSum int64
	for i, r := range ranges {
		if r.RowLo > r.RowHi {
			t.Errorf("%s/%s p=%d: range %d bounds inverted: %+v", policy, shape, p, i, r)
		}
		if i > 0 && ranges[i-1].RowHi != r.RowLo {
			t.Errorf("%s/%s p=%d: gap between range %d and %d", policy, shape, p, i-1, i)
		}
		if r.NNZLo != int64(ptr[r.RowLo]) || r.NNZHi != int64(ptr[r.RowHi]) {
			t.Errorf("%s/%s p=%d: range %d nnz bounds inconsistent with rowPtr: %+v", policy, shape, p, i, r)
		}
		if rows > 0 && p > 0 && r.Rows() == 0 && len(ranges) > 1 {
			t.Errorf("%s/%s p=%d: empty range %d dispatched: %+v", policy, shape, p, i, r)
		}
		nnzSum += r.NNZ()
	}
	if total := int64(ptr[rows]); nnzSum != total {
		t.Errorf("%s/%s p=%d: nnz not conserved: ranges hold %d, matrix has %d", policy, shape, p, nnzSum, total)
	}
}

func TestRowBlocksProperties(t *testing.T) {
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		for _, p := range propertyWorkerCounts {
			checkRowGranular(t, "RowBlocks", shape, ptr, p, RowBlocks(ptr, p))
		}
	}
}

func TestNNZBalancedProperties(t *testing.T) {
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		for _, p := range propertyWorkerCounts {
			checkRowGranular(t, "NNZBalanced", shape, ptr, p, NNZBalanced(ptr, p))
		}
	}
}

func TestEvenRowsProperties(t *testing.T) {
	for _, rows := range []int{0, 1, 2, 5, 63, 64, 1000} {
		for _, p := range propertyWorkerCounts {
			ranges := EvenRows(rows, p)
			if len(ranges) == 0 {
				t.Fatalf("rows=%d p=%d: no ranges", rows, p)
			}
			if ranges[0].RowLo != 0 || ranges[len(ranges)-1].RowHi != rows {
				t.Errorf("rows=%d p=%d: span [%d,%d), want [0,%d)", rows, p,
					ranges[0].RowLo, ranges[len(ranges)-1].RowHi, rows)
			}
			for i, r := range ranges {
				if i > 0 && ranges[i-1].RowHi != r.RowLo {
					t.Errorf("rows=%d p=%d: gap at range %d", rows, p, i)
				}
				if rows > 0 && r.Rows() == 0 {
					t.Errorf("rows=%d p=%d: empty range %d", rows, p, i)
				}
			}
		}
	}
}

// TestMergePathProperties verifies the item-granular contract: contiguity
// in both coordinates, monotone growth, full coverage of the combined
// (rows + nnz) work, and no zero-work ranges.
func TestMergePathProperties(t *testing.T) {
	for shape, lens := range propertyShapes() {
		ptr := rowPtrFrom(lens)
		rows := len(ptr) - 1
		nnz := int64(ptr[rows])
		for _, p := range propertyWorkerCounts {
			ranges := MergePath(ptr, p)
			if len(ranges) == 0 {
				t.Fatalf("MergePath/%s p=%d: no ranges", shape, p)
			}
			if ranges[0].RowLo != 0 || ranges[0].NNZLo != 0 {
				t.Errorf("MergePath/%s p=%d: first range not at origin: %+v", shape, p, ranges[0])
			}
			last := ranges[len(ranges)-1]
			if rows > 0 && (last.RowHi != rows || last.NNZHi != nnz) {
				t.Errorf("MergePath/%s p=%d: last range ends at (%d,%d), want (%d,%d)",
					shape, p, last.RowHi, last.NNZHi, rows, nnz)
			}
			var work int64
			for i, r := range ranges {
				if r.RowLo > r.RowHi || r.NNZLo > r.NNZHi {
					t.Errorf("MergePath/%s p=%d: range %d not monotone: %+v", shape, p, i, r)
				}
				if i > 0 && (ranges[i-1].RowHi != r.RowLo || ranges[i-1].NNZHi != r.NNZLo) {
					t.Errorf("MergePath/%s p=%d: discontiguous at range %d", shape, p, i)
				}
				w := int64(r.Rows()) + r.NNZ()
				if rows > 0 && w == 0 {
					t.Errorf("MergePath/%s p=%d: zero-work range %d dispatched: %+v", shape, p, i, r)
				}
				work += w
			}
			if rows > 0 && work != int64(rows)+nnz {
				t.Errorf("MergePath/%s p=%d: work not conserved: %d, want %d", shape, p, work, int64(rows)+nnz)
			}
		}
	}
}
