// Package sched provides the work-distribution policies that storage formats
// use to split SpMV across parallel workers, together with imbalance
// metrics. Three disciplines are implemented, mirroring the format families
// in the paper:
//
//   - RowBlocks: contiguous equal row ranges (naive CSR scheduling);
//     vulnerable to load imbalance under row-length skew.
//   - NNZBalanced: contiguous row ranges holding near-equal nonzero counts
//     (the "Balanced-CSR" / inspector-executor discipline).
//   - MergePath: the Merrill-Garland merge-based split of the combined
//     (rows + nonzeros) work items, which bounds per-worker work even when
//     single rows exceed the fair share.
package sched

import "sort"

// Range is a half-open span of rows assigned to one worker, plus the span of
// nonzeros it covers (NNZLo/NNZHi are offsets into the CSR value array).
type Range struct {
	RowLo, RowHi int
	NNZLo, NNZHi int64
}

// Rows returns the number of rows in the range.
func (r Range) Rows() int { return r.RowHi - r.RowLo }

// NNZ returns the number of nonzeros covered by the range.
func (r Range) NNZ() int64 { return r.NNZHi - r.NNZLo }

// RowBlocks splits rows into p contiguous blocks of near-equal row count.
func RowBlocks(rowPtr []int32, p int) []Range {
	rows := len(rowPtr) - 1
	if p < 1 {
		p = 1
	}
	if p > rows && rows > 0 {
		p = rows
	}
	if rows == 0 {
		return []Range{{0, 0, 0, 0}}
	}
	out := make([]Range, p)
	for w := 0; w < p; w++ {
		lo := rows * w / p
		hi := rows * (w + 1) / p
		out[w] = Range{
			RowLo: lo, RowHi: hi,
			NNZLo: int64(rowPtr[lo]), NNZHi: int64(rowPtr[hi]),
		}
	}
	return out
}

// EvenRows splits rows into p contiguous blocks of near-equal row count
// without consulting a row-pointer array, for formats whose per-row work is
// uniform by construction (ELL, DIA). The NNZ fields count rows, so
// Imbalance still reflects the distribution.
func EvenRows(rows, p int) []Range {
	if p < 1 {
		p = 1
	}
	if p > rows && rows > 0 {
		p = rows
	}
	if rows == 0 {
		return []Range{{0, 0, 0, 0}}
	}
	out := make([]Range, p)
	for w := 0; w < p; w++ {
		lo := rows * w / p
		hi := rows * (w + 1) / p
		out[w] = Range{RowLo: lo, RowHi: hi, NNZLo: int64(lo), NNZHi: int64(hi)}
	}
	return out
}

// NNZBalanced splits rows into p contiguous blocks with near-equal nonzero
// counts, found by binary search over the row-pointer array. A worker always
// receives whole rows, so a single huge row still lands on one worker.
// Under heavy skew fewer than p blocks may be produced: a block that would
// receive no rows (its whole fair share was swallowed by a predecessor's
// giant row) is collapsed rather than dispatched as an empty worker.
func NNZBalanced(rowPtr []int32, p int) []Range {
	rows := len(rowPtr) - 1
	if p < 1 {
		p = 1
	}
	if rows == 0 {
		return []Range{{0, 0, 0, 0}}
	}
	nnz := int64(rowPtr[rows])
	out := make([]Range, 0, p)
	prevRow := 0
	for w := 0; w < p; w++ {
		target := nnz * int64(w+1) / int64(p)
		// First row whose end passes the target.
		hi := sort.Search(rows, func(i int) bool { return int64(rowPtr[i+1]) >= target })
		hi++ // convert to exclusive row bound
		if hi > rows {
			hi = rows
		}
		if w == p-1 {
			hi = rows
		}
		if hi <= prevRow {
			continue // degenerate: no rows left for this worker
		}
		out = append(out, Range{
			RowLo: prevRow, RowHi: hi,
			NNZLo: int64(rowPtr[prevRow]), NNZHi: int64(rowPtr[hi]),
		})
		prevRow = hi
	}
	return out
}

// MergeCoord is a position on the merge path: the next row to consume and
// the next nonzero to consume.
type MergeCoord struct {
	Row int
	NNZ int64
}

// MergePathSearch locates the merge-path coordinate at the given diagonal:
// the split point where (row progress + nonzero progress) equals diagonal,
// following CUB's merge-based SpMV decomposition. rowEnd[i] = RowPtr[i+1].
func MergePathSearch(diagonal int64, rowPtr []int32, rows int) MergeCoord {
	lo := diagonal - int64(rowPtr[rows]) // minimum row progress at this diagonal
	if lo < 0 {
		lo = 0
	}
	hi := diagonal
	if hi > int64(rows) {
		hi = int64(rows)
	}
	// Binary search for the first row r in [lo, hi] such that
	// RowPtr[r+1] > diagonal - (r+1), i.e. the row list "wins" the merge.
	for lo < hi {
		mid := (lo + hi) / 2
		if int64(rowPtr[mid+1]) <= diagonal-mid-1 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return MergeCoord{Row: int(lo), NNZ: diagonal - lo}
}

// MergePath splits the combined (rows + nnz) work items into p equal
// diagonals. Unlike the row-granular policies, a worker range may begin or
// end in the middle of a row; kernels carry partial sums across boundaries.
// Ranges covering zero work items (p exceeding rows+nnz) are collapsed
// rather than dispatched as empty workers.
func MergePath(rowPtr []int32, p int) []Range {
	rows := len(rowPtr) - 1
	if p < 1 {
		p = 1
	}
	if rows == 0 {
		return []Range{{0, 0, 0, 0}}
	}
	nnz := int64(rowPtr[rows])
	total := int64(rows) + nnz
	if int64(p) > total {
		p = int(total)
	}
	out := make([]Range, 0, p)
	prev := MergeCoord{}
	for w := 0; w < p; w++ {
		diag := total * int64(w+1) / int64(p)
		next := MergePathSearch(diag, rowPtr, rows)
		if next == prev {
			continue // zero-work diagonal span
		}
		out = append(out, Range{RowLo: prev.Row, RowHi: next.Row, NNZLo: prev.NNZ, NNZHi: next.NNZ})
		prev = next
	}
	return out
}

// Imbalance returns max worker work divided by mean worker work, where work
// is the nonzero count (plus one per row to account for loop overhead).
// 1.0 is perfect balance; the paper's skewed matrices drive this up for
// row-granular policies.
func Imbalance(ranges []Range) float64 {
	if len(ranges) == 0 {
		return 1
	}
	var total, max int64
	for _, r := range ranges {
		work := r.NNZ() + int64(r.Rows())
		total += work
		if work > max {
			max = work
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(ranges))
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}
