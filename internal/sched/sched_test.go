package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// checkCoverage asserts the ranges tile [0, rows) x [0, nnz) without gaps or
// overlaps, in order.
func checkCoverage(t *testing.T, ranges []Range, rowPtr []int32) {
	t.Helper()
	rows := len(rowPtr) - 1
	nnz := int64(rowPtr[rows])
	if len(ranges) == 0 {
		t.Fatal("no ranges")
	}
	if ranges[0].RowLo != 0 || ranges[0].NNZLo != 0 {
		t.Fatalf("first range starts at (%d,%d), want (0,0)", ranges[0].RowLo, ranges[0].NNZLo)
	}
	last := ranges[len(ranges)-1]
	if last.RowHi != rows || last.NNZHi != nnz {
		t.Fatalf("last range ends at (%d,%d), want (%d,%d)", last.RowHi, last.NNZHi, rows, nnz)
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].RowLo != ranges[i-1].RowHi || ranges[i].NNZLo != ranges[i-1].NNZHi {
			t.Fatalf("gap/overlap between range %d and %d: %+v -> %+v", i-1, i, ranges[i-1], ranges[i])
		}
	}
}

func skewedRowPtr(rows, hugeLen int) []int32 {
	// Row 0 holds hugeLen nonzeros, the rest hold 1 each.
	ptr := make([]int32, rows+1)
	ptr[1] = int32(hugeLen)
	for i := 1; i < rows; i++ {
		ptr[i+1] = ptr[i] + 1
	}
	return ptr
}

func TestRowBlocksCoverage(t *testing.T) {
	m := matrix.Random(101, 50, 0.2, 1)
	for _, p := range []int{1, 2, 3, 7, 16, 101, 500} {
		checkCoverage(t, RowBlocks(m.RowPtr, p), m.RowPtr)
	}
}

func TestNNZBalancedCoverage(t *testing.T) {
	m := matrix.Random(101, 50, 0.2, 2)
	for _, p := range []int{1, 2, 3, 7, 16, 200} {
		checkCoverage(t, NNZBalanced(m.RowPtr, p), m.RowPtr)
	}
}

func TestMergePathCoverage(t *testing.T) {
	m := matrix.Random(101, 50, 0.2, 3)
	for _, p := range []int{1, 2, 3, 7, 16, 200} {
		checkCoverage(t, MergePath(m.RowPtr, p), m.RowPtr)
	}
}

func TestRowBlocksImbalanceOnSkew(t *testing.T) {
	ptr := skewedRowPtr(64, 10000)
	rb := Imbalance(RowBlocks(ptr, 8))
	if rb < 4 {
		t.Errorf("row blocks on skewed matrix: imbalance %g, want >= 4", rb)
	}
}

func TestNNZBalancedBeatsRowBlocksOnSkew(t *testing.T) {
	// Moderate skew, no single row dominates: nnz balancing must win.
	rows := 1024
	ptr := make([]int32, rows+1)
	for i := 0; i < rows; i++ {
		n := 1
		if i < 64 {
			n = 100
		}
		ptr[i+1] = ptr[i] + int32(n)
	}
	rb := Imbalance(RowBlocks(ptr, 8))
	nb := Imbalance(NNZBalanced(ptr, 8))
	mp := Imbalance(MergePath(ptr, 8))
	if nb >= rb {
		t.Errorf("nnz-balanced imbalance %g not better than row blocks %g", nb, rb)
	}
	// The work metric counts one item per row, which nnz balancing does not
	// optimize; it stays within 2x while row blocks exceed it.
	if nb > 2 {
		t.Errorf("nnz-balanced imbalance %g, want <= 2", nb)
	}
	if mp > 1.05 {
		t.Errorf("merge path imbalance %g, want ~1 (it splits rows+nnz exactly)", mp)
	}
}

func TestMergePathHandlesGiantRow(t *testing.T) {
	// One row holds nearly all nonzeros: row-granular policies can't split
	// it, merge path can.
	ptr := skewedRowPtr(64, 100000)
	ranges := NNZBalanced(ptr, 8)
	mp := Imbalance(MergePath(ptr, 8))
	// Row granularity cannot split the giant row: one worker carries almost
	// everything, so the effective speedup over the requested 8 workers is
	// poor even though the degenerate empty ranges are collapsed.
	var total, max int64
	for _, r := range ranges {
		if r.Rows() == 0 {
			t.Errorf("empty range %+v dispatched", r)
		}
		work := r.NNZ() + int64(r.Rows())
		total += work
		if work > max {
			max = work
		}
	}
	if eff := float64(max) * 8 / float64(total); eff < 6 {
		t.Errorf("nnz-balanced should be imbalanced on a giant row, got effective imbalance %g", eff)
	}
	if mp > 1.1 {
		t.Errorf("merge path imbalance %g, want ~1", mp)
	}
}

func TestMergePathSearchEndpoints(t *testing.T) {
	ptr := []int32{0, 2, 5, 9}
	start := MergePathSearch(0, ptr, 3)
	if start.Row != 0 || start.NNZ != 0 {
		t.Errorf("diag 0 -> %+v, want origin", start)
	}
	end := MergePathSearch(int64(3)+9, ptr, 3)
	if end.Row != 3 || end.NNZ != 9 {
		t.Errorf("diag end -> %+v, want (3,9)", end)
	}
}

func TestMergePathMonotone(t *testing.T) {
	m := matrix.Random(57, 40, 0.3, 5)
	rows := m.Rows
	total := int64(rows) + int64(m.NNZ())
	prev := MergeCoord{}
	for d := int64(0); d <= total; d++ {
		c := MergePathSearch(d, m.RowPtr, rows)
		if c.Row < prev.Row || c.NNZ < prev.NNZ {
			t.Fatalf("merge path not monotone at diag %d: %+v after %+v", d, c, prev)
		}
		if int64(c.Row)+c.NNZ != d {
			t.Fatalf("diag %d: row+nnz = %d", d, int64(c.Row)+c.NNZ)
		}
		prev = c
	}
}

func TestEmptyMatrixPartitions(t *testing.T) {
	ptr := []int32{0}
	for _, f := range []func([]int32, int) []Range{RowBlocks, NNZBalanced, MergePath} {
		ranges := f(ptr, 4)
		if len(ranges) == 0 {
			t.Fatal("no ranges for empty matrix")
		}
		for _, r := range ranges {
			if r.Rows() != 0 || r.NNZ() != 0 {
				t.Errorf("empty matrix produced nonempty range %+v", r)
			}
		}
	}
}

func TestImbalanceDegenerate(t *testing.T) {
	if Imbalance(nil) != 1 {
		t.Error("Imbalance(nil) != 1")
	}
	if Imbalance([]Range{{0, 0, 0, 0}}) != 1 {
		t.Error("Imbalance of empty work != 1")
	}
}

// Property: all three policies yield valid coverage on arbitrary matrices
// and worker counts.
func TestQuickPartitionCoverage(t *testing.T) {
	f := func(seed uint32, rowsRaw, pRaw uint8) bool {
		rows := int(rowsRaw%120) + 1
		p := int(pRaw%32) + 1
		m := matrix.Random(rows, rows, 0.15, int64(seed))
		for _, policy := range []func([]int32, int) []Range{RowBlocks, NNZBalanced, MergePath} {
			ranges := policy(m.RowPtr, p)
			if ranges[0].RowLo != 0 || ranges[0].NNZLo != 0 {
				return false
			}
			last := ranges[len(ranges)-1]
			if last.RowHi != rows || last.NNZHi != int64(m.NNZ()) {
				return false
			}
			for i := 1; i < len(ranges); i++ {
				if ranges[i].RowLo != ranges[i-1].RowHi || ranges[i].NNZLo != ranges[i-1].NNZHi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
