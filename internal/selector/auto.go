package selector

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// DefaultShortlist is how many candidate formats the model ranking keeps
// for a possible micro-probe: the paper's analysis shows the best format
// is almost always within the model's top few, so probing more buys
// little and costs linearly.
const DefaultShortlist = 3

// autoProbeMinNNZ is the matrix size below which BuildAuto skips probing:
// tiny matrices run in the serial fast path where every format costs
// about the same, and the probe's timing floor would dominate the build.
const autoProbeMinNNZ = 1 << 14

// AutoOptions configures BuildAuto.
type AutoOptions struct {
	// K is the expected right-hand-side count of the workload (0 or 1:
	// single-vector SpMV). The k = 1 and k > 1 regimes rank formats
	// differently, so a block solver should pass its block width.
	K int
	// Device names the testbed whose model ranks candidates; "" targets
	// the host (device.HostSpec), which offers all fourteen formats.
	Device string
	// Shortlist is how many formats the model ranking keeps (0: 3).
	Shortlist int
	// Probe refines the model's choice by timing the shortlist on a
	// row-sampled sub-matrix through the execution engine and picking the
	// measured winner. Costs a few milliseconds per candidate; worth it
	// for any matrix that will be multiplied more than a handful of times.
	Probe bool
	// SampleRows overrides the probe sub-matrix row budget (0: 8192).
	SampleRows int
	// Cache overrides the decision cache (nil: the process-wide
	// cache.Decisions). Decisions are keyed by (matrix fingerprint,
	// device, k, shards), so repeated builds of one matrix under one
	// context skip ranking and probing.
	Cache *cache.DecisionCache
	// NoCache disables decision caching entirely (benchmarks that must
	// observe the full pipeline every time).
	NoCache bool
	// NoLearn disables the online-learned experience base for this build:
	// neither consulting past probe outcomes nor recording new ones. The
	// model-only baselines use it so their numbers reflect the analytical
	// model alone.
	NoLearn bool
	// Learned overrides the experience base consulted and fed by this
	// build (nil: the process-wide default). Sessions with private
	// journals pass their own so measured winners — and mispredictions —
	// stay session-local.
	Learned *Learned
	// Shards overrides the execution-context shard count recorded in the
	// decision key (0: the live topo.Shards()). The engine's pool layout
	// is process-wide hardware state; this field only scopes which cached
	// decisions the build may reuse.
	Shards int
	// Tune enables the structural-parameter micro-autotuner: the BCSR
	// block geometry and the fused SpMM register-tile width are measured
	// on the probe's row-sampled harness (winners journaled per
	// fingerprint), and the Vec-CSR wide-row cutoff is derived from the
	// sampled row-length distribution. Like Probe, worth it for matrices
	// multiplied more than a handful of times.
	Tune bool
	// Tunes overrides the autotune cache (nil: the process-wide
	// cache.Tunes). Sessions pass their own so tuned winners stay
	// session-local.
	Tunes *cache.TuneCache
}

// BuildAuto selects a storage format for the matrix and builds it: the
// paper's feature analysis driving execution. The pipeline is
//
//  1. extract the five-feature vector (core.Extract);
//  2. consult the decision cache keyed by (fingerprint, device, k, shards)
//     — warm-loaded from the disk journal when persistence is on, so a
//     restarted process reuses every decision its predecessors made;
//  3. on a miss, shortlist candidates by the k-regime device model
//     (device.Spec.EstimateMulti ranking, plus the RulesK pick), and let
//     the online-learned experience base promote the measured winner of a
//     nearby matrix to the front of the shortlist;
//  4. optionally micro-probe the shortlist — time each candidate on a
//     row-sampled sub-matrix through the execution engine — keep the
//     measured winner, and record the outcome as a labeled sample so the
//     next decision starts smarter;
//  5. build the winner, falling down the shortlist (and ultimately to
//     Naive-CSR) if a build refuses the matrix, and cache the decision.
//
// The returned Auto delegates every kernel to the chosen format and
// carries the decision record. BuildAuto lives here rather than in
// internal/formats because selection consults the device models, which
// themselves build on formats' trait estimates.
func BuildAuto(m *matrix.CSR, o AutoOptions) (*formats.Auto, error) {
	return BuildAutoCtx(context.Background(), m, o)
}

// BuildAutoCtx is BuildAuto honoring a context: the selection aborts with
// the context's error at its stage boundaries — before ranking, and
// between micro-probe candidates (a candidate's timed runs finish, so a
// cancelled selection returns within one candidate's probe budget, a few
// milliseconds). The decision cache and experience base are only written
// for selections that ran to completion; an aborted selection leaves no
// partial state behind.
func BuildAutoCtx(ctx context.Context, m *matrix.CSR, o AutoOptions) (*formats.Auto, error) {
	if o.Cache == nil {
		// The env-configured journal opt-in binds to the process-wide
		// default cache; a build with a private cache (a Session) must not
		// trigger — or be affected by — the global attachment.
		maybeAttachEnvJournal()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := o.K
	if k < 1 {
		k = 1
	}
	spec := device.HostSpec()
	if o.Device != "" {
		s, ok := device.ByName(o.Device)
		if !ok {
			return nil, fmt.Errorf("selector: unknown device %q", o.Device)
		}
		spec = s
	}
	dc := o.Cache
	if dc == nil {
		dc = cache.Decisions
	}
	lrn := o.Learned
	if lrn == nil {
		lrn = defaultLearned
	}
	shards := o.Shards
	if shards <= 0 {
		shards = topo.Shards()
	}
	choice := formats.AutoChoice{
		Device: spec.Name,
		K:      k,
		Shards: shards,
	}

	key := cache.DecisionKey{
		Fingerprint: m.Fingerprint(),
		Device:      spec.Name,
		K:           k,
		Shards:      choice.Shards,
	}
	if !o.NoCache {
		if d, ok := dc.Get(key); ok {
			if f, err := buildByName(m, d.Format); err == nil {
				choice.Cached = true
				choice.Probed = d.Probed
				choice.Shortlist = []string{d.Format}
				if o.Tune {
					// Journaled tune winners re-apply on the cached path;
					// un-swept parameters are measured now, once.
					f = applyTuning(ctx, m, f, k, o, &choice)
				}
				return formats.NewAuto(f, choice), nil
			}
			// A cached format that no longer builds (should not happen for
			// an identical fingerprint) falls through to fresh selection.
		}
	}

	fv := core.Extract(m)
	n := o.Shortlist
	if n <= 0 {
		n = DefaultShortlist
	}
	shortlist := Shortlist(spec, fv, k, n)
	if len(shortlist) == 0 {
		// Degenerate matrix (empty, or hostile to every model): CSR always
		// builds and is never a bad worst case.
		shortlist = []string{"Naive-CSR"}
	}
	if !o.NoLearn {
		// A measured winner of a nearby matrix outranks the analytical
		// model: promote it to the front (it becomes the pick when no probe
		// runs, and a probed candidate otherwise).
		if name, ok := lrn.pick(spec.Name, k, fv); ok {
			shortlist = promote(shortlist, name)
			choice.Learned = true
		}
	}
	choice.Shortlist = shortlist

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pick := shortlist[0]
	var prebuilt formats.Format
	if o.Probe && m.NNZ() >= autoProbeMinNNZ && len(shortlist) > 1 {
		winner, built, results := probe(ctx, m, shortlist, ProbeOptions{K: k, SampleRows: o.SampleRows})
		if err := ctx.Err(); err != nil {
			// The probe stopped early; its partial measurements must not
			// become a cached decision or a learned sample.
			return nil, err
		}
		if winner != "" {
			pick = winner
			prebuilt = built // non-nil when the probe ran on the full matrix
			choice.Probed = true
			choice.ProbeNs = make(map[string]float64, len(results))
			for _, r := range results {
				if r.Err == nil {
					choice.ProbeNs[r.Format] = r.NsPerOp
				}
			}
			if !o.NoLearn {
				observeWinner(dc, lrn, spec.Name, k, fv, winner)
			}
		}
	}

	f := prebuilt
	if f == nil {
		var err error
		f, err = buildFirst(m, pick, shortlist)
		if err != nil {
			return nil, err
		}
	}
	if !o.NoCache {
		dc.Put(key, cache.Decision{Format: f.Name(), Probed: choice.Probed})
	}
	if o.Tune {
		f = applyTuning(ctx, m, f, k, o, &choice)
	}
	return formats.NewAuto(f, choice), nil
}

// applyTuning runs the structural-parameter autotuner and the wide-row
// inspector for the built format, recording what was tuned in the choice.
// The format may be replaced (BCSR block-shape rebuilds).
func applyTuning(ctx context.Context, m *matrix.CSR, f formats.Format, k int, o AutoOptions, choice *formats.AutoChoice) formats.Format {
	tc := o.Tunes
	if tc == nil {
		tc = cache.Tunes
	}
	if m.NNZ() >= autoProbeMinNNZ {
		var tuned map[string]string
		f, tuned = autotune(ctx, m, f, choice.Device, k, o.SampleRows, tc)
		if len(tuned) > 0 {
			choice.Tuned = tuned
		}
	}
	if wrt, ok := f.(formats.WideRowTuner); ok && f.Traits().Vectorizable {
		n := vecWideRowMinFor(m)
		wrt.SetWideRowMin(n)
		choice.VecWideRowMin = n
	}
	return f
}

// promote moves name to the front of the shortlist, inserting it when the
// model ranking missed it entirely.
func promote(shortlist []string, name string) []string {
	out := make([]string, 0, len(shortlist)+1)
	out = append(out, name)
	for _, s := range shortlist {
		if s != name {
			out = append(out, s)
		}
	}
	return out
}

// buildByName builds one named format for the matrix.
func buildByName(m *matrix.CSR, name string) (formats.Format, error) {
	b, ok := formats.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("selector: unknown format %q", name)
	}
	return b.Build(m)
}

// buildFirst builds pick, falling down the rest of the shortlist and
// finally to Naive-CSR when builders refuse the concrete matrix (trait
// estimates are feature-level; the built structure can still exceed a
// padding cap).
func buildFirst(m *matrix.CSR, pick string, shortlist []string) (formats.Format, error) {
	tried := map[string]bool{}
	order := append([]string{pick}, shortlist...)
	order = append(order, "Naive-CSR")
	var lastErr error
	for _, name := range order {
		if tried[name] {
			continue
		}
		tried[name] = true
		f, err := buildByName(m, name)
		if err == nil {
			return f, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("selector: no candidate builds: %w", lastErr)
}
