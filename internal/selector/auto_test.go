package selector

import (
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
)

func genMatrix(t *testing.T, rows int, avg, skew float64, seed int64) *matrix.CSR {
	t.Helper()
	m, err := gen.Generate(gen.Params{
		Rows: rows, Cols: rows,
		AvgNNZPerRow: avg, StdNNZPerRow: avg * 0.3,
		SkewCoeff: skew, BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 0.9,
		Seed: seed,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return m
}

// TestBuildAutoEquivalence checks the contract that matters to users: the
// Auto format computes exactly what building its chosen format directly
// would compute, at every k.
func TestBuildAutoEquivalence(t *testing.T) {
	for _, skew := range []float64{0, 50, 2000} {
		m := genMatrix(t, 4000, 10, skew, 21)
		for _, k := range []int{1, 4, 8} {
			a, err := BuildAuto(m, AutoOptions{K: k, NoCache: true})
			if err != nil {
				t.Fatalf("skew=%g k=%d: %v", skew, k, err)
			}
			b, ok := formats.Lookup(a.Chosen())
			if !ok {
				t.Fatalf("chose unknown format %q", a.Chosen())
			}
			direct, err := b.Build(m)
			if err != nil {
				t.Fatalf("direct build of chosen %s: %v", a.Chosen(), err)
			}
			x := matrix.RandomVector(m.Cols*k, 3)
			yA := make([]float64, m.Rows*k)
			yD := make([]float64, m.Rows*k)
			a.MultiplyMany(yA, x, k)
			direct.MultiplyMany(yD, x, k)
			for i := range yA {
				if yA[i] != yD[i] {
					t.Fatalf("skew=%g k=%d: Auto diverges from %s at %d", skew, k, a.Chosen(), i)
				}
			}
		}
	}
}

func TestBuildAutoDegenerate(t *testing.T) {
	// Empty matrix: no format is model-feasible; Auto must still build
	// (CSR fallback) and multiply to zeros.
	empty, err := matrix.NewCSR(3, 3, []int32{0, 0, 0, 0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildAuto(empty, AutoOptions{NoCache: true})
	if err != nil {
		t.Fatalf("empty matrix: %v", err)
	}
	y := []float64{1, 2, 3}
	a.SpMV([]float64{1, 1, 1}, y)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("empty product y[%d] = %g", i, v)
		}
	}

	// Single row holding every nonzero.
	single, err := matrix.NewCSR(1, 5, []int32{0, 3}, []int32{0, 2, 4}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err = BuildAuto(single, AutoOptions{K: 8, NoCache: true})
	if err != nil {
		t.Fatalf("single row: %v", err)
	}
	x := matrix.RandomVector(5*8, 1)
	yk := make([]float64, 1*8)
	a.MultiplyMany(yk, x, 8)

	// Heavy skew: one giant row among short ones.
	skewed := genMatrix(t, 3000, 6, 400, 4)
	a, err = BuildAuto(skewed, AutoOptions{K: 8, Probe: true, NoCache: true})
	if err != nil {
		t.Fatalf("heavy skew: %v", err)
	}
	if a.Chosen() == "" {
		t.Fatal("no format chosen")
	}
}

func TestBuildAutoCachesDecision(t *testing.T) {
	m := genMatrix(t, 3000, 10, 5, 8)
	dc := cache.NewDecisionCache()
	a1, err := BuildAuto(m, AutoOptions{K: 8, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Choice().Cached {
		t.Error("first build should not be a cache hit")
	}
	if dc.Len() != 1 {
		t.Fatalf("cache holds %d decisions, want 1", dc.Len())
	}
	a2, err := BuildAuto(m, AutoOptions{K: 8, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Choice().Cached {
		t.Error("second build should hit the decision cache")
	}
	if a2.Chosen() != a1.Chosen() {
		t.Errorf("cached decision %q != original %q", a2.Chosen(), a1.Chosen())
	}
	// A different k is a different regime and must not share the entry.
	a3, err := BuildAuto(m, AutoOptions{K: 1, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	if a3.Choice().Cached {
		t.Error("k=1 must not hit the k=8 decision")
	}
	if dc.Len() != 2 {
		t.Errorf("cache holds %d decisions, want 2", dc.Len())
	}
}

func TestBuildAutoUnknownDevice(t *testing.T) {
	m := genMatrix(t, 1000, 8, 0, 2)
	if _, err := BuildAuto(m, AutoOptions{Device: "no-such-testbed"}); err == nil {
		t.Fatal("unknown device should error")
	}
}

func TestBuildAutoDeviceRestrictsChoice(t *testing.T) {
	m := genMatrix(t, 2000, 10, 0, 3)
	a, err := BuildAuto(m, AutoOptions{Device: "Alveo-U280", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	// The FPGA offers only VSL; the choice must come from its format list
	// (or the CSR build fallback if VSL refuses the concrete matrix).
	if got := a.Chosen(); got != "VSL" && got != "Naive-CSR" {
		t.Errorf("Alveo choice = %q, want VSL (or the CSR fallback)", got)
	}
}

// TestBuildAutoConcurrent exercises the decision cache and the built
// kernels from concurrent goroutines; run with -race.
func TestBuildAutoConcurrent(t *testing.T) {
	m := genMatrix(t, 6000, 10, 20, 13)
	dc := cache.NewDecisionCache()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := 1 + (g%2)*7 // alternate k=1 and k=8
			a, err := BuildAuto(m, AutoOptions{K: k, Cache: dc})
			if err != nil {
				errs <- err
				return
			}
			x := matrix.RandomVector(m.Cols*k, int64(g))
			y := make([]float64, m.Rows*k)
			a.MultiplyMany(y, x, k)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if dc.Len() > 2 {
		t.Errorf("cache holds %d decisions for 2 regimes", dc.Len())
	}
}

func TestProbePicksAWinner(t *testing.T) {
	m := genMatrix(t, 20000, 12, 10, 5)
	winner, results := Probe(m, []string{"Naive-CSR", "Vec-CSR", "SELL-C-s"}, ProbeOptions{K: 1})
	if winner == "" {
		t.Fatal("probe found no winner")
	}
	if len(results) != 3 {
		t.Fatalf("probe returned %d results, want 3", len(results))
	}
	for _, r := range results {
		if r.Err == nil && r.NsPerOp <= 0 {
			t.Errorf("%s: non-positive measurement", r.Format)
		}
	}
}

func TestShortlistRanksAndIncludesRules(t *testing.T) {
	s := epyc(t)
	fv := dataset.Point(128, 20, 10, 0.5, 0.9, 0.3)
	for _, k := range []int{1, 8} {
		sl := Shortlist(s, fv, k, 3)
		if len(sl) < 3 {
			t.Fatalf("k=%d: shortlist %v too short", k, sl)
		}
		// Best-first: the noise-free ranking estimates must be
		// non-increasing over the ranked prefix (the appended RulesK pick
		// may rank anywhere).
		prev := s.RankMulti(fv, sl[0], k).GFLOPS
		for _, name := range sl[1:3] {
			g := s.RankMulti(fv, name, k).GFLOPS
			if g > prev+1e-9 {
				t.Errorf("k=%d: shortlist not ranked: %v", k, sl)
			}
			prev = g
		}
		ruled := RulesK(s, fv, k)
		found := false
		for _, name := range sl {
			if name == ruled {
				found = true
			}
		}
		if !found && s.RankMulti(fv, ruled, k).Feasible {
			t.Errorf("k=%d: shortlist %v misses the rules pick %q", k, sl, ruled)
		}
	}
}
