package selector

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/matrix"
)

// retainedGate is the competitive threshold from the format-selection
// literature (see the package comment): Auto must retain at least this
// mean fraction of exhaustive-search performance per k-regime.
const retainedGate = 0.90

// TestModelSelectorRetainedGateK verifies the deterministic half of the
// accuracy gate: on the device model, the trained selector must retain
// >= 90% of exhaustive-search performance in BOTH RHS regimes — the k = 8
// ordering differs from k = 1 (fused kernels promoted), so a selector
// trained on the wrong regime would fail here.
func TestModelSelectorRetainedGateK(t *testing.T) {
	s := epyc(t)
	train := dataset.Medium.Sample(1500, 7)
	test := dataset.Medium.Sample(400, 11)
	for _, k := range []int{1, 8} {
		knn := TrainK(s, train, 5, k)
		if knn.Len() == 0 {
			t.Fatalf("k=%d: empty training set (%d dropped)", k, knn.Dropped())
		}
		ev := EvaluateK(s, test, k, func(fv core.FeatureVector) string {
			name, _ := knn.Predict(fv)
			return name
		})
		if ev.Retained < retainedGate {
			t.Errorf("k=%d: trained selector retains %.3f, gate is %.2f", k, ev.Retained, retainedGate)
		}
	}
}

// TestModelRegimesDiffer pins the reason the selection subsystem is
// k-aware at all: the model's best format must differ between k = 1 and
// k = 8 on a meaningful share of the feature space (fallback formats hold
// their k = 1 rank, fused ones overtake them).
func TestModelRegimesDiffer(t *testing.T) {
	s := epyc(t)
	points := dataset.Medium.Sample(400, 19)
	differ, n := 0, 0
	for _, fv := range points {
		n1, _, ok1 := s.BestFormatK(fv, 1)
		n8, _, ok8 := s.BestFormatK(fv, 8)
		if !ok1 || !ok8 {
			continue
		}
		n++
		if n1 != n8 {
			differ++
		}
	}
	if n == 0 {
		t.Fatal("no labelable points")
	}
	if differ == 0 {
		t.Error("k=1 and k=8 agree everywhere; the RHS axis is inert")
	}
}

// TestAutoRetainedGate is the CI accuracy regression gate on real
// kernels: over a small synthetic suite, the probe-backed Auto path must
// retain >= 90% of the performance of the measured-best format, on
// average, at k = 1 and k = 8. One re-measurement is allowed per regime:
// the gate compares two wall-clock timings, and shared CI hosts jitter.
func TestAutoRetainedGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	type cfg struct {
		rows      int
		avg, skew float64
		seed      int64
	}
	suite := []cfg{
		{30000, 8, 0, 1},
		{30000, 20, 50, 2},
		{20000, 50, 5, 3},
		{40000, 10, 500, 4},
		{25000, 30, 0, 5},
		{35000, 15, 100, 6},
	}
	var mats []*matrix.CSR
	for _, c := range suite {
		m, err := gen.Generate(gen.Params{
			Rows: c.rows, Cols: c.rows,
			AvgNNZPerRow: c.avg, StdNNZPerRow: c.avg * 0.3,
			SkewCoeff: c.skew, BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 0.9,
			Seed: c.seed,
		})
		if err != nil {
			t.Fatalf("generate %+v: %v", c, err)
		}
		mats = append(mats, m)
	}
	exec.Prestart()
	for _, k := range []int{1, 8} {
		mean := gateMeanRetained(t, mats, k)
		if mean < retainedGate {
			// One retry: re-measure the whole regime before failing.
			t.Logf("k=%d: mean retained %.3f below gate on first pass; re-measuring", k, mean)
			if remeasured := gateMeanRetained(t, mats, k); remeasured > mean {
				mean = remeasured
			}
		}
		t.Logf("k=%d: Auto mean retained %.3f over %d matrices", k, mean, len(mats))
		if mean < retainedGate {
			t.Errorf("k=%d: Auto retains %.3f of exhaustive-search performance, gate is %.2f",
				k, mean, retainedGate)
		}
	}
}

// gateMeanRetained measures every host format and the Auto pick on each
// matrix and returns the mean retained performance for the regime.
func gateMeanRetained(t *testing.T, mats []*matrix.CSR, k int) float64 {
	t.Helper()
	var sum float64
	var n int
	for _, m := range mats {
		a, err := BuildAuto(m, AutoOptions{K: k, Probe: true, NoCache: true})
		if err != nil {
			t.Fatalf("k=%d: BuildAuto: %v", k, err)
		}
		perf := gateMeasure(m, k)
		pickNs, ok := perf[a.Chosen()]
		if !ok || pickNs <= 0 {
			t.Fatalf("k=%d: pick %q not measurable", k, a.Chosen())
		}
		best := math.Inf(1)
		for _, ns := range perf {
			if ns < best {
				best = ns
			}
		}
		sum += best / pickNs
		n++
	}
	if n == 0 {
		t.Fatal("no matrices measured")
	}
	return sum / float64(n)
}

// gateMeasure times one k-wide multiply in every buildable host format:
// min ns/op over 3 adaptive rounds with an 8ms floor (deliberately more
// patient than the probe — this is the ground truth side of the gate).
func gateMeasure(m *matrix.CSR, k int) map[string]float64 {
	perf := map[string]float64{}
	workers := exec.MaxWorkers()
	x := matrix.RandomVector(m.Cols*k, 31)
	y := make([]float64, m.Rows*k)
	for _, name := range device.HostSpec().Formats {
		f, err := buildByName(m, name)
		if err != nil {
			continue
		}
		run := func() {
			if k > 1 {
				f.MultiplyMany(y, x, k)
			} else {
				f.SpMVParallel(x, y, workers)
			}
		}
		run()
		perf[name] = measureNs(run, 8*time.Millisecond, 3)
	}
	return perf
}
