package selector

// Online learning: the selection subsystem records every micro-probe
// outcome as a labeled feature-space sample and consults those samples on
// later decisions, so the ranking improves with use — the SMART-style
// reuse-measured-history loop the autotuning literature shows selection
// quality hinges on. Experience lives in a per-(device, k) k-NN base,
// persists in the same journal as the decision cache, and warm-loads on
// startup, so a restarted server keeps everything its predecessors
// measured.
//
// The experience base is an instantiable type (Learned) so callers that
// need isolation — one Session per journal, the server's registry, tests —
// can hold their own; the package-level functions operate on a process-wide
// default instance the facade uses.

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
)

const (
	// learnKNN is the vote width of the experience k-NN: probe outcomes are
	// sparse and high-signal, so a narrow vote tracks them closely.
	learnKNN = 3
	// learnMaxSamples bounds each regime's experience window.
	learnMaxSamples = 2048
	// LearnMaxDist is how far (core.Distance) the nearest recorded probe
	// outcome may be from a new matrix and still steer its shortlist;
	// beyond it the analytical model decides alone. The threshold sits at
	// roughly "same footprint class, similar row profile".
	LearnMaxDist = 0.15
)

// regimeKey partitions experience: a winner measured on one device in one
// RHS regime says nothing about another.
type regimeKey struct {
	device string
	k      int
}

// Learned is one experience base: the per-(device, k) k-NN samples of
// measured probe winners. Safe for concurrent use. Distinct instances
// share nothing, so two sessions with separate journals learn — and
// mispredict — independently.
type Learned struct {
	mu   sync.Mutex
	base map[regimeKey]*Nearest
}

// NewLearned returns an empty experience base.
func NewLearned() *Learned {
	return &Learned{base: map[regimeKey]*Nearest{}}
}

// defaultLearned is the process-wide experience base the package-level
// functions (and any AutoOptions without a Learned override) operate on.
var defaultLearned = NewLearned()

// DefaultLearned returns the process-wide experience base the facade's
// default session consults.
func DefaultLearned() *Learned { return defaultLearned }

// probeRuns counts micro-probe invocations process-wide; the persistence CI
// gate asserts a warm restart performs zero.
var probeRuns atomic.Int64

// ProbeCount returns how many micro-probe sweeps this process has run.
func ProbeCount() int64 { return probeRuns.Load() }

// regime returns (creating on demand) the experience base for a regime.
func (l *Learned) regime(device string, k int) *Nearest {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := regimeKey{device, k}
	n, ok := l.base[key]
	if !ok {
		n = NewOnline(learnKNN, learnMaxSamples)
		l.base[key] = n
	}
	return n
}

// Len reports how many experience samples the regime holds.
func (l *Learned) Len(device string, k int) int {
	l.mu.Lock()
	n, ok := l.base[regimeKey{device, k}]
	l.mu.Unlock()
	if !ok {
		return 0
	}
	return n.Len()
}

// Reset drops every in-memory experience sample (tests and benchmark
// harnesses that need a cold selector, and journal re-attachment).
func (l *Learned) Reset() {
	l.mu.Lock()
	l.base = map[regimeKey]*Nearest{}
	l.mu.Unlock()
}

// observe records one measured probe outcome into the in-memory k-NN base.
func (l *Learned) observe(device string, k int, fv core.FeatureVector, best string, weight float64) {
	l.regime(device, k).Observe(Sample{FV: fv, Best: best, Weight: weight})
}

// pick consults the regime's experience base; ok only when a recorded
// outcome lies within LearnMaxDist of the new matrix.
func (l *Learned) pick(device string, k int, fv core.FeatureVector) (string, bool) {
	l.mu.Lock()
	n, ok := l.base[regimeKey{device, k}]
	l.mu.Unlock()
	if !ok {
		return "", false
	}
	return n.PredictNear(fv, LearnMaxDist)
}

// WarmLoad replays a journal's experience records into the base, returning
// how many were loaded. Called when a store is attached so a restarted
// process resumes with its predecessors' measurements. Replayed samples
// are age-decayed: the newest record enters at full weight and each
// experienceHalfLife records of age halve the vote, so stale history
// biases — not dictates — future shortlists.
func (l *Learned) WarmLoad(st *cache.Store) int {
	if st == nil {
		return 0
	}
	exps := st.Experiences()
	last := len(exps) - 1
	for i, e := range exps {
		age := float64(last - i)
		w := math.Exp2(-age / experienceHalfLife)
		l.observe(e.Device, e.K, e.FV, e.Best, w)
	}
	return len(exps)
}

// LearnedLen reports how many experience samples the default base holds
// for the regime.
func LearnedLen(device string, k int) int { return defaultLearned.Len(device, k) }

// ResetLearned drops every in-memory experience sample of the default base.
func ResetLearned() { defaultLearned.Reset() }

// observeWinner records one measured probe outcome: into the given
// in-memory k-NN base immediately, and into the journal behind the
// decision cache (when one is attached) for the next process.
func observeWinner(dc *cache.DecisionCache, lrn *Learned, device string, k int, fv core.FeatureVector, best string) {
	lrn.observe(device, k, fv, best, 0)
	if st := dc.Store(); st != nil {
		st.AppendExperience(cache.Experience{Device: device, K: k, FV: fv, Best: best})
	}
}

// experienceHalfLife is the age (in journal records) at which a replayed
// experience sample's vote weight halves. The journal is append-only, so
// record order IS measurement order: a winner measured 256 probes ago —
// possibly under different load, thermals, or a since-changed kernel —
// still votes, but two fresh confirmations outvote it.
const experienceHalfLife = 256

// WarmLoad replays a journal's experience records into the default base.
func WarmLoad(st *cache.Store) int { return defaultLearned.WarmLoad(st) }

// Persist opens (or creates) the decision journal in dir and binds it to
// the process-wide selection state: the decision cache warm-loads and
// journals through it, and the experience base is re-baselined to the
// journal's probe history (reset, then replayed — re-invoking Persist, or
// switching directories, must not stack a second copy of every sample
// into the k-NN vote). An empty dir resolves the default location
// (SPMV_CACHE_DIR, then the user cache dir — see cache.Dir). Returns the
// open store.
//
// Persist configures the DEFAULT session's state — the one the package
// facade uses. Callers that need isolated journals (one per server
// registry, concurrent writers) should hold their own cache and Learned
// via AutoOptions, as internal/session does.
func Persist(dir string) (*cache.Store, error) {
	if dir != "" {
		cache.SetDir(dir)
	}
	d, err := cache.Dir()
	if err != nil {
		return nil, err
	}
	st, err := cache.Open(d)
	if err != nil {
		return nil, err
	}
	// Attach the new store BEFORE closing the old: a concurrent Put must
	// never land on an already-closed handle (its append would be dropped
	// without error).
	old := cache.Decisions.Store()
	cache.Decisions.AttachStore(st)
	cache.Tunes.AttachStore(st)
	if old != nil {
		old.Close()
	}
	ResetLearned()
	WarmLoad(st)
	return st, nil
}

// Unpersist turns persistence back off: the journal detaches from the
// process-wide decision cache (closing its file handle) and the directory
// override clears. In-memory state — cached decisions, learned samples —
// stays; only the disk binding goes. With SPMV_CACHE_DIR still set in the
// environment, a later Persist (or env auto-attach, which fires at most
// once per process) would re-enable it.
func Unpersist() {
	if st := cache.Decisions.Store(); st != nil {
		cache.Decisions.AttachStore(nil)
		cache.Tunes.AttachStore(nil)
		st.Close()
	}
	cache.SetDir("")
}

// envAttachOnce arms the configuration opt-in: the first selection of a
// process with a journal location chosen (SPMV_CACHE_DIR, or a
// cache.SetDir override such as the CLIs' -cache-dir flag) attaches the
// journal transparently, so servers and CLIs get persistence with zero
// further code. Without a configured location (and without an explicit
// Persist call) nothing touches disk.
var envAttachOnce sync.Once

func maybeAttachEnvJournal() {
	envAttachOnce.Do(func() {
		if !cache.Configured() {
			return
		}
		if cache.Decisions.Store() != nil {
			return
		}
		_, _ = Persist("") // best-effort: an unusable dir just disables persistence
	})
}
