package selector

// Online learning: the selection subsystem records every micro-probe
// outcome as a labeled feature-space sample and consults those samples on
// later decisions, so the ranking improves with use — the SMART-style
// reuse-measured-history loop the autotuning literature shows selection
// quality hinges on. Experience lives in a per-(device, k) k-NN base,
// persists in the same journal as the decision cache, and warm-loads on
// startup, so a restarted server keeps everything its predecessors
// measured.

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
)

const (
	// learnKNN is the vote width of the experience k-NN: probe outcomes are
	// sparse and high-signal, so a narrow vote tracks them closely.
	learnKNN = 3
	// learnMaxSamples bounds each regime's experience window.
	learnMaxSamples = 2048
	// LearnMaxDist is how far (core.Distance) the nearest recorded probe
	// outcome may be from a new matrix and still steer its shortlist;
	// beyond it the analytical model decides alone. The threshold sits at
	// roughly "same footprint class, similar row profile".
	LearnMaxDist = 0.15
)

// regimeKey partitions experience: a winner measured on one device in one
// RHS regime says nothing about another.
type regimeKey struct {
	device string
	k      int
}

var learnedMu sync.Mutex
var learnedBase = map[regimeKey]*Nearest{}

// probeRuns counts micro-probe invocations process-wide; the persistence CI
// gate asserts a warm restart performs zero.
var probeRuns atomic.Int64

// ProbeCount returns how many micro-probe sweeps this process has run.
func ProbeCount() int64 { return probeRuns.Load() }

// learnedFor returns (creating on demand) the experience base for a regime.
func learnedFor(device string, k int) *Nearest {
	learnedMu.Lock()
	defer learnedMu.Unlock()
	key := regimeKey{device, k}
	n, ok := learnedBase[key]
	if !ok {
		n = NewOnline(learnKNN, learnMaxSamples)
		learnedBase[key] = n
	}
	return n
}

// LearnedLen reports how many experience samples the regime holds.
func LearnedLen(device string, k int) int {
	learnedMu.Lock()
	n, ok := learnedBase[regimeKey{device, k}]
	learnedMu.Unlock()
	if !ok {
		return 0
	}
	return n.Len()
}

// ResetLearned drops every in-memory experience sample (tests and
// benchmark harnesses that need a cold selector).
func ResetLearned() {
	learnedMu.Lock()
	learnedBase = map[regimeKey]*Nearest{}
	learnedMu.Unlock()
}

// observeWinner records one measured probe outcome: into the in-memory
// k-NN base immediately, and into the journal behind the decision cache
// (when one is attached) for the next process.
func observeWinner(dc *cache.DecisionCache, device string, k int, fv core.FeatureVector, best string) {
	learnedFor(device, k).Observe(Sample{FV: fv, Best: best})
	if st := dc.Store(); st != nil {
		st.AppendExperience(cache.Experience{Device: device, K: k, FV: fv, Best: best})
	}
}

// learnedPick consults the regime's experience base; ok only when a
// recorded outcome lies within LearnMaxDist of the new matrix.
func learnedPick(device string, k int, fv core.FeatureVector) (string, bool) {
	learnedMu.Lock()
	n, ok := learnedBase[regimeKey{device, k}]
	learnedMu.Unlock()
	if !ok {
		return "", false
	}
	return n.PredictNear(fv, LearnMaxDist)
}

// experienceHalfLife is the age (in journal records) at which a replayed
// experience sample's vote weight halves. The journal is append-only, so
// record order IS measurement order: a winner measured 256 probes ago —
// possibly under different load, thermals, or a since-changed kernel —
// still votes, but two fresh confirmations outvote it.
const experienceHalfLife = 256

// WarmLoad replays a journal's experience records into the in-memory base,
// returning how many were loaded. Called when a store is attached so a
// restarted process resumes with its predecessors' measurements. Replayed
// samples are age-decayed: the newest record enters at full weight and
// each experienceHalfLife records of age halve the vote, so stale history
// biases — not dictates — future shortlists.
func WarmLoad(st *cache.Store) int {
	if st == nil {
		return 0
	}
	exps := st.Experiences()
	last := len(exps) - 1
	for i, e := range exps {
		age := float64(last - i)
		w := math.Exp2(-age / experienceHalfLife)
		learnedFor(e.Device, e.K).Observe(Sample{FV: e.FV, Best: e.Best, Weight: w})
	}
	return len(exps)
}

// Persist opens (or creates) the decision journal in dir and binds it to
// the process-wide selection state: the decision cache warm-loads and
// journals through it, and the experience base is re-baselined to the
// journal's probe history (reset, then replayed — re-invoking Persist, or
// switching directories, must not stack a second copy of every sample
// into the k-NN vote). An empty dir resolves the default location
// (SPMV_CACHE_DIR, then the user cache dir — see cache.Dir). Returns the
// open store.
func Persist(dir string) (*cache.Store, error) {
	if dir != "" {
		cache.SetDir(dir)
	}
	d, err := cache.Dir()
	if err != nil {
		return nil, err
	}
	st, err := cache.Open(d)
	if err != nil {
		return nil, err
	}
	// Attach the new store BEFORE closing the old: a concurrent Put must
	// never land on an already-closed handle (its append would be dropped
	// without error).
	old := cache.Decisions.Store()
	cache.Decisions.AttachStore(st)
	if old != nil {
		old.Close()
	}
	ResetLearned()
	WarmLoad(st)
	return st, nil
}

// Unpersist turns persistence back off: the journal detaches from the
// process-wide decision cache (closing its file handle) and the directory
// override clears. In-memory state — cached decisions, learned samples —
// stays; only the disk binding goes. With SPMV_CACHE_DIR still set in the
// environment, a later Persist (or env auto-attach, which fires at most
// once per process) would re-enable it.
func Unpersist() {
	if st := cache.Decisions.Store(); st != nil {
		cache.Decisions.AttachStore(nil)
		st.Close()
	}
	cache.SetDir("")
}

// envAttachOnce arms the configuration opt-in: the first selection of a
// process with a journal location chosen (SPMV_CACHE_DIR, or a
// cache.SetDir override such as the CLIs' -cache-dir flag) attaches the
// journal transparently, so servers and CLIs get persistence with zero
// further code. Without a configured location (and without an explicit
// Persist call) nothing touches disk.
var envAttachOnce sync.Once

func maybeAttachEnvJournal() {
	envAttachOnce.Do(func() {
		if !cache.Configured() {
			return
		}
		if cache.Decisions.Store() != nil {
			return
		}
		_, _ = Persist("") // best-effort: an unusable dir just disables persistence
	})
}
