package selector

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

// TestWeightedVote: sample weights scale the k-NN vote, and non-positive
// weights mean full weight (zero-value compatibility for live Observe).
func TestWeightedVote(t *testing.T) {
	fv := core.FeatureVector{Rows: 1000, Cols: 1000, NNZ: 12000, AvgNNZPerRow: 12}
	n := TrainSamples([]Sample{
		{FV: fv, Best: "COO", Weight: 0.2},
		{FV: fv, Best: "COO", Weight: 0.2},
		{FV: fv, Best: "ELL", Weight: 1},
	}, 3)
	if name, ok := n.Predict(fv); !ok || name != "ELL" {
		t.Fatalf("weighted vote = %q,%v; want the full-weight ELL to beat two 0.2 COO votes", name, ok)
	}
	n = TrainSamples([]Sample{
		{FV: fv, Best: "COO"},
		{FV: fv, Best: "COO"},
		{FV: fv, Best: "ELL"},
	}, 3)
	if name, ok := n.Predict(fv); !ok || name != "COO" {
		t.Fatalf("unweighted vote = %q,%v; want the 2-1 COO majority", name, ok)
	}
}

// TestWarmLoadAgesExperience: journal replay decays vote weight by record
// age, so a stale measured majority cannot outvote fresh evidence. The
// regime of interest holds two old "COO" wins and one fresh "ELL" win;
// with three half-lives of other regimes' records between them, the fresh
// sample must win the vote it would lose 2-1 at equal weight.
func TestWarmLoadAgesExperience(t *testing.T) {
	dir := t.TempDir()
	st, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fv := core.FeatureVector{Rows: 20000, Cols: 20000, NNZ: 240000, AvgNNZPerRow: 12, SkewCoeff: 9}
	st.AppendExperience(cache.Experience{Device: "host", K: 8, FV: fv, Best: "COO"})
	st.AppendExperience(cache.Experience{Device: "host", K: 8, FV: fv, Best: "COO"})
	for i := 0; i < 3*experienceHalfLife; i++ {
		st.AppendExperience(cache.Experience{Device: "aging-filler", K: 1, FV: fv, Best: "COO"})
	}
	st.AppendExperience(cache.Experience{Device: "host", K: 8, FV: fv, Best: "ELL"})

	ResetLearned()
	defer ResetLearned()
	if n := WarmLoad(st); n == 0 {
		t.Fatal("nothing replayed")
	}
	name, ok := defaultLearned.pick("host", 8, fv)
	if !ok || name != "ELL" {
		t.Fatalf("aged pick = %q,%v; want fresh ELL to outvote the stale COO majority", name, ok)
	}
}
