package selector

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/matrix"
)

// TestPersistRoundTripZeroProbes is the satellite acceptance test: a full
// save -> restart -> load cycle must reproduce identical decisions with
// zero micro-probes. "Restart" is simulated with fresh DecisionCache and
// Store instances over the same directory — exactly what a new process
// does.
func TestPersistRoundTripZeroProbes(t *testing.T) {
	dir := t.TempDir()
	mats := []*matrix.CSR{
		genMatrix(t, 20000, 12, 10, 5),
		genMatrix(t, 24000, 8, 200, 6),
		genMatrix(t, 18000, 30, 0, 7),
	}

	// Cold process: probe-backed decisions, journaled.
	st1, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dc1 := cache.NewDecisionCache()
	dc1.AttachStore(st1)
	var cold []string
	for _, m := range mats {
		for _, k := range []int{1, 8} {
			a, err := BuildAuto(m, AutoOptions{K: k, Probe: true, Cache: dc1, NoLearn: true})
			if err != nil {
				t.Fatal(err)
			}
			if a.Choice().Cached {
				t.Fatal("cold build must not be a cache hit")
			}
			cold = append(cold, a.Chosen())
		}
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm process: same directory, fresh in-memory state.
	st2, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	dc2 := cache.NewDecisionCache()
	if n := dc2.AttachStore(st2); n != len(cold) {
		t.Fatalf("warm-loaded %d decisions, want %d", n, len(cold))
	}
	probesBefore := ProbeCount()
	i := 0
	for _, m := range mats {
		for _, k := range []int{1, 8} {
			a, err := BuildAuto(m, AutoOptions{K: k, Probe: true, Cache: dc2, NoLearn: true})
			if err != nil {
				t.Fatal(err)
			}
			if !a.Choice().Cached {
				t.Errorf("matrix %d k=%d: warm build missed the persistent cache", i/2, k)
			}
			if a.Chosen() != cold[i] {
				t.Errorf("matrix %d k=%d: warm decision %q != cold %q", i/2, k, a.Chosen(), cold[i])
			}
			i++
		}
	}
	if got := ProbeCount() - probesBefore; got != 0 {
		t.Errorf("warm restart ran %d micro-probes, want 0", got)
	}
}

// TestLearnedExperiencePersists: probe outcomes recorded in one "process"
// must warm-load into the experience base of the next.
func TestLearnedExperiencePersists(t *testing.T) {
	dir := t.TempDir()
	st1, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dc1 := cache.NewDecisionCache()
	dc1.AttachStore(st1)
	m := genMatrix(t, 20000, 12, 10, 9)
	a, err := BuildAuto(m, AutoOptions{K: 8, Probe: true, Cache: dc1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Choice().Probed {
		t.Skip("probe skipped (matrix under probe floor); nothing to persist")
	}
	st1.Close()

	st2, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	exps := st2.Experiences()
	if len(exps) == 0 {
		t.Fatal("probe outcome not journaled as experience")
	}
	last := exps[len(exps)-1]
	if last.K != 8 || last.Best != a.Chosen() {
		t.Errorf("journaled experience %+v, want winner %q at k=8", last, a.Chosen())
	}
	ResetLearned()
	defer ResetLearned()
	if n := WarmLoad(st2); n != len(exps) {
		t.Fatalf("WarmLoad replayed %d, want %d", n, len(exps))
	}
	if LearnedLen(last.Device, 8) == 0 {
		t.Error("experience base empty after warm-load")
	}
	// The warmed base steers a fresh (uncached, unprobed) decision on the
	// same matrix to the measured winner.
	fresh, err := BuildAuto(m, AutoOptions{K: 8, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Choice().Learned {
		t.Error("learned experience did not steer the shortlist")
	}
	if fresh.Chosen() != a.Chosen() {
		t.Errorf("learned pick %q != measured winner %q", fresh.Chosen(), a.Chosen())
	}
}

// TestPersistReinvokeNoDuplicates: re-invoking Persist (config reload,
// directory switch) must re-baseline the experience base to the journal,
// not stack a second copy of every sample into the k-NN vote.
func TestPersistReinvokeNoDuplicates(t *testing.T) {
	dir := t.TempDir()
	prevDir := cache.SetDir("")
	defer func() {
		cache.SetDir(prevDir)
		if st := cache.Decisions.Store(); st != nil {
			cache.Decisions.AttachStore(nil)
			st.Close()
		}
		ResetLearned()
	}()
	st, err := Persist(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.AppendExperience(cache.Experience{Device: "host", K: 8, Best: "ELL"})
	st.AppendExperience(cache.Experience{Device: "host", K: 8, Best: "ELL"})
	if _, err := Persist(dir); err != nil {
		t.Fatal(err)
	}
	if got := LearnedLen("host", 8); got != 2 {
		t.Fatalf("after re-Persist the base holds %d samples, want 2 (journal contents, not stacked copies)", got)
	}
}

// TestObserveImprovesNearest pins the incremental-learning contract on
// Nearest itself: observing a labeled point changes a nearby prediction.
func TestObserveImprovesNearest(t *testing.T) {
	n := NewOnline(3, 8)
	fv := core.FeatureVector{Rows: 1000, Cols: 1000, NNZ: 10000,
		MemFootprintMB: 0.5, AvgNNZPerRow: 10, SkewCoeff: 2, CrossRowSim: 0.5, AvgNumNeigh: 1}
	if _, ok := n.Predict(fv); ok {
		t.Fatal("empty online selector must not predict")
	}
	n.Observe(Sample{FV: fv, Best: "SELL-C-s"})
	got, ok := n.PredictNear(fv, LearnMaxDist)
	if !ok || got != "SELL-C-s" {
		t.Fatalf("PredictNear after Observe = %q, %v", got, ok)
	}
	// A far-away point must not borrow the experience.
	far := core.FeatureVector{Rows: 1, Cols: 1e6, NNZ: 5e6,
		MemFootprintMB: 4000, AvgNNZPerRow: 5e6, SkewCoeff: 0, CrossRowSim: 0, AvgNumNeigh: 0}
	if _, ok := n.PredictNear(far, LearnMaxDist); ok {
		t.Error("PredictNear generalized past its distance gate")
	}
	// The window drops the oldest sample.
	for i := 0; i < 8; i++ {
		n.Observe(Sample{FV: far, Best: "COO"})
	}
	if n.Len() != 8 {
		t.Errorf("window len = %d, want 8", n.Len())
	}
	if got, _ := n.PredictNear(far, LearnMaxDist); got != "COO" {
		t.Errorf("windowed base predicts %q, want COO", got)
	}
}
