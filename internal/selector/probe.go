package selector

import (
	"context"
	"math"
	"time"

	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/matrix"
)

// Probe defaults.
const (
	// DefaultProbeRows is the row budget of the probe sub-matrix: large
	// enough that the parallel kernels leave the serial fast path and the
	// row-length distribution survives sampling, small enough that probing
	// three candidates costs milliseconds, not a solve iteration.
	DefaultProbeRows = 8192
	// defaultProbeMinTime is the wall-clock floor one timing sample must
	// reach; samples double their iteration count until they do.
	defaultProbeMinTime = 2 * time.Millisecond
	// defaultProbeRounds is the number of adaptive timing runs per
	// candidate; the minimum over rounds is kept (the least-noisy
	// estimator on shared hosts, the BENCH_exec.json policy).
	defaultProbeRounds = 2
)

// ProbeOptions configures the micro-probe.
type ProbeOptions struct {
	K          int           // RHS-count regime; k > 1 times MultiplyMany (0/1: SpMV)
	SampleRows int           // probe sub-matrix row budget (0: DefaultProbeRows)
	MinTime    time.Duration // per-sample wall-clock floor (0: 2ms)
	Rounds     int           // timing runs per candidate, min kept (0: 2)
}

// ProbeResult is one candidate's measured micro-benchmark.
type ProbeResult struct {
	Format  string
	NsPerOp float64 // min ns per kernel call on the sub-matrix (0 when Err != nil)
	Err     error   // build failure on the sub-matrix
}

// Probe times the candidate formats on a row-sampled sub-matrix through
// the execution engine and returns the measured winner. The sub-matrix
// keeps the full column dimension and a stride sample of the rows, so
// balance and x-locality behaviour carry over from the full matrix while
// build plus timing stays in the low milliseconds per candidate. Results
// are returned in candidate order; winner is "" when every candidate
// failed to build.
func Probe(m *matrix.CSR, candidates []string, o ProbeOptions) (winner string, results []ProbeResult) {
	winner, _, results = probe(context.Background(), m, candidates, o)
	return winner, results
}

// ProbeCtx is Probe honoring a context: the candidate loop checks it
// between candidates (a candidate's timed runs finish once started), so a
// cancelled probe returns within one candidate's timing budget. The
// partial results measured before cancellation are returned with the
// context's error; winner is the best of those, which an aborting caller
// should discard.
func ProbeCtx(ctx context.Context, m *matrix.CSR, candidates []string, o ProbeOptions) (winner string, results []ProbeResult, err error) {
	winner, _, results = probe(ctx, m, candidates, o)
	return winner, results, ctx.Err()
}

// probe is Probe plus build reuse: when the row budget covers the whole
// matrix (RowSample returns m itself), the probe already built every
// candidate at full cost, so the winner's built instance is returned for
// the caller to use directly instead of rebuilding it. A cancelled ctx
// stops the candidate loop at the next boundary.
func probe(ctx context.Context, m *matrix.CSR, candidates []string, o ProbeOptions) (winner string, built formats.Format, results []ProbeResult) {
	probeRuns.Add(1)
	k := o.K
	if k < 1 {
		k = 1
	}
	sampleRows := o.SampleRows
	if sampleRows <= 0 {
		sampleRows = DefaultProbeRows
	}
	minTime := o.MinTime
	if minTime <= 0 {
		minTime = defaultProbeMinTime
	}
	rounds := o.Rounds
	if rounds <= 0 {
		rounds = defaultProbeRounds
	}
	sub := m.RowSample(sampleRows)
	workers := exec.MaxWorkers()
	exec.Prestart() // probes must not time pool construction

	x := matrix.RandomVector(sub.Cols*k, 9001)
	y := make([]float64, sub.Rows*k)
	bestNs := math.Inf(1)
	for _, name := range candidates {
		if ctx.Err() != nil {
			break
		}
		b, ok := formats.Lookup(name)
		if !ok {
			continue
		}
		f, err := b.Build(sub)
		if err != nil {
			results = append(results, ProbeResult{Format: name, Err: err})
			continue
		}
		run := func() {
			if k > 1 {
				f.MultiplyMany(y, x, k)
			} else {
				f.SpMVParallel(x, y, workers)
			}
		}
		run() // warm plans, scratch, pages
		ns := measureNs(run, minTime, rounds)
		results = append(results, ProbeResult{Format: name, NsPerOp: ns})
		if ns < bestNs {
			bestNs = ns
			winner = name
			if sub == m {
				built = f
			}
		}
	}
	return winner, built, results
}

// measureNs returns the minimum ns per fn() call over the given number of
// adaptive timing runs, each doubling its iteration count until it spans
// minTime of wall clock.
func measureNs(fn func(), minTime time.Duration, rounds int) float64 {
	best := math.Inf(1)
	for rep := 0; rep < rounds; rep++ {
		iters := 1
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			elapsed := time.Since(start)
			if elapsed >= minTime || iters >= 1<<22 {
				if ns := float64(elapsed.Nanoseconds()) / float64(iters); ns < best {
					best = ns
				}
				break
			}
			iters *= 2
		}
	}
	return best
}
