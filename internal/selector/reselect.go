package selector

import (
	"context"

	"repro/internal/cache"
	"repro/internal/formats"
	"repro/internal/matrix"
)

// Reselect re-runs automatic format selection after structure drift: the
// compactor of an updatable matrix folds its delta overlay into a fresh
// CSR whose structure — and therefore best format — may differ from the
// base it replaces. Every cached decision for the predecessor fingerprint
// is invalidated first (all (device, k, shards) regimes at once; they all
// ranked the dead structure), then BuildAuto selects for the successor
// matrix. Returns the built choice and how many stale decisions were
// dropped.
//
// The cheap-re-decision contract rides on the persistence layer: when the
// successor structure has been seen before — a matrix compacting back to
// a shape a prior process already probed, replayed from the journal — the
// decision comes from the cache with zero micro-probes, exactly like any
// warm restart.
func Reselect(oldFingerprint uint64, m *matrix.CSR, o AutoOptions) (*formats.Auto, int, error) {
	return ReselectCtx(context.Background(), oldFingerprint, m, o)
}

// ReselectCtx is Reselect honoring a context, for compaction rebuilds
// that must stop on shutdown: stale decisions for the dead fingerprint
// are invalidated unconditionally (they are wrong regardless of whether
// this rebuild completes), then BuildAutoCtx selects under ctx.
func ReselectCtx(ctx context.Context, oldFingerprint uint64, m *matrix.CSR, o AutoOptions) (*formats.Auto, int, error) {
	dc := o.Cache
	if dc == nil {
		dc = cache.Decisions
	}
	dropped := dc.InvalidateFingerprint(oldFingerprint)
	f, err := BuildAutoCtx(ctx, m, o)
	return f, dropped, err
}
