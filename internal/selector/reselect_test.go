package selector

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// TestReselectInvalidatesDriftedDecisions: after structure drift, Reselect
// must drop every cached regime of the predecessor fingerprint and cache a
// fresh decision for the successor.
func TestReselectInvalidatesDriftedDecisions(t *testing.T) {
	dc := cache.NewDecisionCache()
	m1 := matrix.Random(300, 300, 0.05, 3)
	a1, err := BuildAuto(m1, AutoOptions{Cache: dc, NoLearn: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildAuto(m1, AutoOptions{K: 8, Cache: dc, NoLearn: true}); err != nil {
		t.Fatal(err)
	}
	if dc.Len() != 2 {
		t.Fatalf("cache holds %d decisions, want 2 (k=1 and k=8)", dc.Len())
	}

	// Drift: densify a band of rows, changing the structural fingerprint.
	o := m1.ToCOO()
	for r := int32(0); r < 40; r++ {
		for c := int32(0); c < 200; c += 2 {
			o.Append(r, c, 0.5)
		}
	}
	m2 := o.ToCSR()
	if m2.Fingerprint() == m1.Fingerprint() {
		t.Fatal("drifted matrix kept its fingerprint; test is vacuous")
	}

	a2, dropped, err := Reselect(m1.Fingerprint(), m2, AutoOptions{Cache: dc, NoLearn: true})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("Reselect dropped %d stale decisions, want 2", dropped)
	}
	oldKey := cache.DecisionKey{
		Fingerprint: m1.Fingerprint(), Device: a1.Choice().Device, K: 1, Shards: topo.Shards(),
	}
	if _, ok := dc.Get(oldKey); ok {
		t.Fatal("stale decision for the predecessor fingerprint still cached")
	}
	newKey := cache.DecisionKey{
		Fingerprint: m2.Fingerprint(), Device: a2.Choice().Device, K: 1, Shards: topo.Shards(),
	}
	if d, ok := dc.Get(newKey); !ok || d.Format != a2.Chosen() {
		t.Fatalf("successor decision not cached (ok=%v)", ok)
	}
}
