// Package selector implements a feature-based storage-format selector, the
// application the paper positions its feature set for ("a rather high
// number of features have been used to train proper predictors for SpMV
// performance", Section III-A — this package shows the minimal five-feature
// set suffices for the selection task).
//
// Two selectors are provided:
//
//   - Rules: a hand-written decision list encoding the paper's takeaways
//     (footprint picks the bandwidth regime, skew picks the balancing
//     discipline, locality picks compressed formats);
//   - Nearest: a k-nearest-neighbor predictor trained on labeled feature
//     points (labels from the device model or from native measurements).
//
// Accuracy is judged against exhaustive search with the usual metric for
// format selection: the performance retained by the predicted format
// relative to the best format (>= 90% is competitive in the literature).
package selector

import (
	"sort"

	"repro/internal/core"
	"repro/internal/device"
)

// Rules picks a format for the device using the paper's qualitative
// takeaways. It needs no training and serves as the interpretable baseline.
func Rules(spec device.Spec, fv core.FeatureVector) string {
	has := func(name string) bool {
		for _, f := range spec.Formats {
			if f == name {
				return true
			}
		}
		return false
	}
	pick := func(names ...string) string {
		for _, n := range names {
			if has(n) {
				return n
			}
		}
		return spec.Formats[0]
	}

	switch {
	case fv.SkewCoeff > 500:
		// Heavy imbalance: item-granular formats first (Takeaway 7).
		return pick("Merge-CSR", "CSR5", "MKL-IE", "Bal-CSR", "COO", "VSL")
	case fv.AvgNumNeigh >= 1.4 && fv.MemFootprintMB >= 256:
		// Large clustered matrices: compression attacks the bandwidth
		// bottleneck (SparseX's niche).
		return pick("SparseX", "SELL-C-s", "MKL-IE", "Bal-CSR", "VSL")
	case fv.AvgNNZPerRow < 8:
		// Short rows: avoid padding-happy formats; balanced CSR variants
		// amortize row overheads best.
		return pick("Merge-CSR", "MKL-IE", "Bal-CSR", "CSR5", "Naive-CSR", "COO", "VSL")
	case fv.SkewCoeff <= 100 && fv.AvgNNZPerRow >= 50:
		// Long balanced rows: vectorized/ELL-style formats shine.
		return pick("SELL-C-s", "Vec-CSR", "MKL-IE", "HYB", "Bal-CSR", "VSL")
	default:
		return pick("MKL-IE", "Bal-CSR", "CSR5", "Merge-CSR", "Naive-CSR", "VSL")
	}
}

// Sample is one labeled training point.
type Sample struct {
	FV   core.FeatureVector
	Best string
}

// Nearest is a k-nearest-neighbor format selector over the normalized
// feature space.
type Nearest struct {
	k       int
	samples []Sample
}

// Train builds a k-NN selector by labelling the given feature points with
// the device model's best format. k defaults to 5.
func Train(spec device.Spec, points []core.FeatureVector, k int) *Nearest {
	if k <= 0 {
		k = 5
	}
	n := &Nearest{k: k}
	for _, fv := range points {
		if name, _, ok := spec.BestFormat(fv); ok {
			n.samples = append(n.samples, Sample{FV: fv, Best: name})
		}
	}
	return n
}

// TrainSamples builds the selector from pre-labeled samples (e.g. native
// measurements).
func TrainSamples(samples []Sample, k int) *Nearest {
	if k <= 0 {
		k = 5
	}
	return &Nearest{k: k, samples: samples}
}

// Len returns the training-set size.
func (n *Nearest) Len() int { return len(n.samples) }

// Predict returns the majority format among the k nearest training points,
// with ties broken lexicographically. ok is false with no training data.
func (n *Nearest) Predict(fv core.FeatureVector) (string, bool) {
	if len(n.samples) == 0 {
		return "", false
	}
	type cand struct {
		d    float64
		name string
	}
	cands := make([]cand, len(n.samples))
	for i, s := range n.samples {
		cands[i] = cand{core.Distance(fv, s.FV), s.Best}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].name < cands[b].name
	})
	k := n.k
	if k > len(cands) {
		k = len(cands)
	}
	votes := map[string]int{}
	for _, c := range cands[:k] {
		votes[c.name]++
	}
	best, bestVotes := "", -1
	for name, v := range votes {
		if v > bestVotes || (v == bestVotes && name < best) {
			best, bestVotes = name, v
		}
	}
	return best, true
}

// Evaluation summarizes selector quality over a test set.
type Evaluation struct {
	N           int     // evaluated points
	Exact       float64 // fraction predicting exactly the best format
	Retained    float64 // mean performance retained vs the best format
	RetainedP10 float64 // 10th percentile of retained performance
}

// Evaluate scores a selector function against exhaustive search on the
// device model.
func Evaluate(spec device.Spec, points []core.FeatureVector, predict func(core.FeatureVector) string) Evaluation {
	var ev Evaluation
	var retained []float64
	for _, fv := range points {
		bestName, best, ok := spec.BestFormat(fv)
		if !ok || best.GFLOPS <= 0 {
			continue
		}
		name := predict(fv)
		got := spec.Estimate(fv, name)
		if !got.Feasible {
			retained = append(retained, 0)
			ev.N++
			continue
		}
		if name == bestName {
			ev.Exact++
		}
		retained = append(retained, got.GFLOPS/best.GFLOPS)
		ev.N++
	}
	if ev.N == 0 {
		return ev
	}
	ev.Exact /= float64(ev.N)
	sum := 0.0
	for _, r := range retained {
		sum += r
	}
	ev.Retained = sum / float64(len(retained))
	sort.Float64s(retained)
	ev.RetainedP10 = retained[len(retained)/10]
	return ev
}
