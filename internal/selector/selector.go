// Package selector implements a feature-based storage-format selector, the
// application the paper positions its feature set for ("a rather high
// number of features have been used to train proper predictors for SpMV
// performance", Section III-A — this package shows the minimal five-feature
// set suffices for the selection task).
//
// Two selectors are provided:
//
//   - Rules: a hand-written decision list encoding the paper's takeaways
//     (footprint picks the bandwidth regime, skew picks the balancing
//     discipline, locality picks compressed formats);
//   - Nearest: a k-nearest-neighbor predictor trained on labeled feature
//     points (labels from the device model or from native measurements).
//
// Accuracy is judged against exhaustive search with the usual metric for
// format selection: the performance retained by the predicted format
// relative to the best format (>= 90% is competitive in the literature).
package selector

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/formats"
)

// rulesOrder returns the decision list's format preference order for the
// feature point, encoding the paper's qualitative takeaways: footprint
// picks the bandwidth regime, skew picks the balancing discipline,
// locality picks compressed formats.
func rulesOrder(fv core.FeatureVector) []string {
	switch {
	case fv.SkewCoeff > 500:
		// Heavy imbalance: item-granular formats first (Takeaway 7).
		return []string{"Merge-CSR", "CSR5", "MKL-IE", "Bal-CSR", "COO", "VSL"}
	case fv.AvgNumNeigh >= 1.4 && fv.MemFootprintMB >= 256:
		// Large clustered matrices: compression attacks the bandwidth
		// bottleneck (SparseX's niche).
		return []string{"SparseX", "SELL-C-s", "MKL-IE", "Bal-CSR", "VSL"}
	case fv.AvgNNZPerRow < 8:
		// Short rows: avoid padding-happy formats; balanced CSR variants
		// amortize row overheads best.
		return []string{"Merge-CSR", "MKL-IE", "Bal-CSR", "CSR5", "Naive-CSR", "COO", "VSL"}
	case fv.SkewCoeff <= 100 && fv.AvgNNZPerRow >= 50:
		// Long balanced rows: vectorized/ELL-style formats shine.
		return []string{"SELL-C-s", "Vec-CSR", "MKL-IE", "HYB", "Bal-CSR", "VSL"}
	default:
		return []string{"MKL-IE", "Bal-CSR", "CSR5", "Merge-CSR", "Naive-CSR", "VSL"}
	}
}

// pickFrom returns the first name in order the device offers and the
// filter (if any) accepts; "" when none qualifies.
func pickFrom(spec device.Spec, order []string, accept func(string) bool) string {
	has := func(name string) bool {
		for _, f := range spec.Formats {
			if f == name {
				return true
			}
		}
		return false
	}
	for _, n := range order {
		if has(n) && (accept == nil || accept(n)) {
			return n
		}
	}
	return ""
}

// Rules picks a format for the device using the paper's qualitative
// takeaways. It needs no training and serves as the interpretable baseline.
func Rules(spec device.Spec, fv core.FeatureVector) string {
	if n := pickFrom(spec, rulesOrder(fv), nil); n != "" {
		return n
	}
	return spec.Formats[0]
}

// RulesK picks a format for the k-wide SpMM regime: the same decision list
// as Rules, but for k > 1 formats with fused MultiplyMany kernels are
// preferred within each family — a fused format's rate grows with k while
// a by-column-fallback format keeps its single-vector rate, so under SpMM
// the fused runner-up usually beats the fallback front-runner (the
// win-rate flip PR 3 measured for ELL and Merge-CSR).
func RulesK(spec device.Spec, fv core.FeatureVector, k int) string {
	order := rulesOrder(fv)
	if k > 1 {
		if n := pickFrom(spec, order, formats.FusedMulti); n != "" {
			return n
		}
	}
	if n := pickFrom(spec, order, nil); n != "" {
		return n
	}
	return spec.Formats[0]
}

// Shortlist ranks the device's formats for the k-regime by the model's
// noise-free central estimate (device.Spec.RankMulti — the jittered
// variant would scramble near-ties) and returns the top-n feasible names,
// best first. The RulesK pick is appended when the model ranking misses
// it, so the shortlist always carries one entry from the interpretable
// decision list — cheap insurance against a model blind spot when the
// shortlist is probed.
func Shortlist(spec device.Spec, fv core.FeatureVector, k, n int) []string {
	if n < 1 {
		n = 1
	}
	type cand struct {
		name   string
		gflops float64
	}
	var cands []cand
	for _, f := range spec.Formats {
		r := spec.RankMulti(fv, f, k)
		if !r.Feasible {
			continue
		}
		cands = append(cands, cand{f, r.GFLOPS})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].gflops != cands[b].gflops {
			return cands[a].gflops > cands[b].gflops
		}
		return cands[a].name < cands[b].name
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]string, 0, n+1)
	for _, c := range cands {
		out = append(out, c.name)
	}
	if len(out) > 0 {
		ruled := RulesK(spec, fv, k)
		found := false
		for _, name := range out {
			if name == ruled {
				found = true
			}
		}
		if !found && spec.RankMulti(fv, ruled, k).Feasible {
			out = append(out, ruled)
		}
	}
	return out
}

// Sample is one labeled training point. Weight scales its vote in the
// k-NN majority (<= 0 means 1): the warm-load path ages journal replays so
// a stale measured winner cannot outvote fresh evidence forever, while
// live Observe calls enter at full weight.
type Sample struct {
	FV     core.FeatureVector
	Best   string
	Weight float64
}

// Nearest is a k-nearest-neighbor format selector over the normalized
// feature space. It is safe for concurrent Predict/Observe: the online
// selection path feeds probe outcomes in (Observe) while other goroutines
// consult it.
type Nearest struct {
	mu      sync.RWMutex
	k       int
	samples []Sample
	limit   int // Observe drops the oldest sample past this bound (0: unbounded)
	dropped int
}

// Train builds a k-NN selector by labelling the given feature points with
// the device model's best format. k defaults to 5. Points the device model
// cannot label (no feasible format, e.g. past a capacity gate) are
// dropped; Dropped reports how many, so a thin training set is visible to
// the caller instead of silently degrading accuracy.
func Train(spec device.Spec, points []core.FeatureVector, k int) *Nearest {
	return TrainK(spec, points, k, 1)
}

// TrainK is Train on the k-wide SpMM axis: labels come from
// device.Spec.BestFormatK, so a selector trained with rhs = 8 learns the
// k = 8 win-rate ordering (fused kernels promoted, fallback formats
// demoted) rather than the single-vector one.
func TrainK(spec device.Spec, points []core.FeatureVector, k, rhs int) *Nearest {
	if k <= 0 {
		k = 5
	}
	if rhs < 1 {
		rhs = 1
	}
	n := &Nearest{k: k}
	for _, fv := range points {
		if name, _, ok := spec.BestFormatK(fv, rhs); ok {
			n.samples = append(n.samples, Sample{FV: fv, Best: name})
		} else {
			n.dropped++
		}
	}
	return n
}

// Dropped returns how many training points the device model could not
// label (and were therefore excluded from the training set).
func (n *Nearest) Dropped() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.dropped
}

// TrainSamples builds the selector from pre-labeled samples (e.g. native
// measurements).
func TrainSamples(samples []Sample, k int) *Nearest {
	if k <= 0 {
		k = 5
	}
	return &Nearest{k: k, samples: samples}
}

// NewOnline returns an empty selector meant to be fed incrementally via
// Observe. limit bounds the sample window (oldest dropped first; 0 keeps
// everything) so a long-running server's experience base stays a working
// set instead of an unbounded history.
func NewOnline(k, limit int) *Nearest {
	if k <= 0 {
		k = 5
	}
	return &Nearest{k: k, limit: limit}
}

// Observe adds one labeled point to the training set — the online-learning
// hook: every measured probe winner lands here, so the k-NN ranking
// sharpens with every decision the subsystem makes.
func (n *Nearest) Observe(s Sample) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.samples = append(n.samples, s)
	if n.limit > 0 && len(n.samples) > n.limit {
		n.samples = n.samples[len(n.samples)-n.limit:]
	}
}

// Len returns the training-set size.
func (n *Nearest) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.samples)
}

// Predict returns the majority format among the k nearest training points,
// with ties broken lexicographically. ok is false with no training data.
func (n *Nearest) Predict(fv core.FeatureVector) (string, bool) {
	name, _, ok := n.predict(fv)
	return name, ok
}

// PredictNear is Predict gated by relevance: it answers only when the
// nearest training point lies within maxDist in feature space. Experience
// generalizes to matrices like the ones actually measured; far from any
// sample, the caller should fall back to the analytical model instead of
// extrapolating.
func (n *Nearest) PredictNear(fv core.FeatureVector, maxDist float64) (string, bool) {
	name, d, ok := n.predict(fv)
	if !ok || d > maxDist {
		return "", false
	}
	return name, true
}

// predict returns the k-NN majority vote and the distance to the single
// nearest sample.
func (n *Nearest) predict(fv core.FeatureVector) (string, float64, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.samples) == 0 {
		return "", 0, false
	}
	type cand struct {
		d    float64
		name string
		w    float64
	}
	cands := make([]cand, len(n.samples))
	for i, s := range n.samples {
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		cands[i] = cand{core.Distance(fv, s.FV), s.Best, w}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].name < cands[b].name
	})
	k := n.k
	if k > len(cands) {
		k = len(cands)
	}
	votes := map[string]float64{}
	for _, c := range cands[:k] {
		votes[c.name] += c.w
	}
	best, bestVotes := "", -1.0
	for name, v := range votes {
		if v > bestVotes || (v == bestVotes && name < best) {
			best, bestVotes = name, v
		}
	}
	return best, cands[0].d, true
}

// Evaluation summarizes selector quality over a test set.
type Evaluation struct {
	N           int     // evaluated points
	Exact       float64 // fraction predicting exactly the best format
	Retained    float64 // mean performance retained vs the best format
	RetainedP10 float64 // 10th percentile of retained performance
}

// Evaluate scores a selector function against exhaustive search on the
// device model.
func Evaluate(spec device.Spec, points []core.FeatureVector, predict func(core.FeatureVector) string) Evaluation {
	return EvaluateK(spec, points, 1, predict)
}

// EvaluateK scores a selector function for the k-wide SpMM regime: the
// ground truth is device.Spec.BestFormatK and predictions are rated at
// the same k, so the score reflects the regime the selector targets.
func EvaluateK(spec device.Spec, points []core.FeatureVector, k int, predict func(core.FeatureVector) string) Evaluation {
	var ev Evaluation
	var retained []float64
	for _, fv := range points {
		bestName, best, ok := spec.BestFormatK(fv, k)
		if !ok || best.GFLOPS <= 0 {
			continue
		}
		name := predict(fv)
		got := spec.EstimateMulti(fv, name, k)
		if !got.Feasible {
			retained = append(retained, 0)
			ev.N++
			continue
		}
		if name == bestName {
			ev.Exact++
		}
		retained = append(retained, got.GFLOPS/best.GFLOPS)
		ev.N++
	}
	if ev.N == 0 {
		return ev
	}
	ev.Exact /= float64(ev.N)
	sum := 0.0
	for _, r := range retained {
		sum += r
	}
	ev.Retained = sum / float64(len(retained))
	sort.Float64s(retained)
	// A true 10th percentile needs at least 10 samples; below that, report
	// the minimum — the pessimistic reading of a thin test set — instead of
	// an index that silently aliases a higher percentile.
	if len(retained) < 10 {
		ev.RetainedP10 = retained[0]
	} else {
		ev.RetainedP10 = retained[len(retained)/10]
	}
	return ev
}
