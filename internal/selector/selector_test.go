package selector

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
)

func epyc(t *testing.T) device.Spec {
	t.Helper()
	s, ok := device.ByName("AMD-EPYC-24")
	if !ok {
		t.Fatal("missing testbed")
	}
	return s
}

func TestRulesPicksAvailableFormats(t *testing.T) {
	for _, spec := range device.Testbeds() {
		for _, fv := range dataset.Small.Sample(50, 3) {
			name := Rules(spec, fv)
			found := false
			for _, f := range spec.Formats {
				if f == name {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: rules picked %q, not offered by the device", spec.Name, name)
			}
		}
	}
}

func TestRulesEncodeTakeaways(t *testing.T) {
	s := epyc(t)
	skewed := dataset.Point(128, 20, 10000, 0.5, 0.5, 0.3)
	if got := Rules(s, skewed); got != "Merge-CSR" {
		t.Errorf("skewed pick = %q, want Merge-CSR (item-granular first)", got)
	}
	clustered := dataset.Point(512, 50, 0, 0.9, 1.9, 0.3)
	if got := Rules(s, clustered); got != "SparseX" {
		t.Errorf("large clustered pick = %q, want SparseX", got)
	}
	longRows := dataset.Point(64, 100, 0, 0.5, 1.0, 0.3)
	if got := Rules(s, longRows); got != "SELL-C-s" {
		t.Errorf("long balanced rows pick = %q, want SELL-C-s", got)
	}
}

func TestRulesRetainPerformance(t *testing.T) {
	s := epyc(t)
	points := dataset.Medium.Sample(600, 5)
	ev := Evaluate(s, points, func(fv core.FeatureVector) string { return Rules(s, fv) })
	if ev.N < 500 {
		t.Fatalf("evaluated only %d points", ev.N)
	}
	if ev.Retained < 0.80 {
		t.Errorf("rules retain %.1f%% of best performance, want >= 80%%", ev.Retained*100)
	}
}

func TestNearestBeatsRules(t *testing.T) {
	s := epyc(t)
	train := dataset.Medium.Sample(1500, 7)
	test := dataset.Medium.Sample(400, 11)
	knn := Train(s, train, 5)
	if knn.Len() == 0 {
		t.Fatal("empty training set")
	}
	evKNN := Evaluate(s, test, func(fv core.FeatureVector) string {
		name, _ := knn.Predict(fv)
		return name
	})
	evRules := Evaluate(s, test, func(fv core.FeatureVector) string { return Rules(s, fv) })
	if evKNN.Retained < evRules.Retained-0.02 {
		t.Errorf("k-NN retains %.3f, rules %.3f; k-NN should be at least comparable",
			evKNN.Retained, evRules.Retained)
	}
	if evKNN.Retained < 0.90 {
		t.Errorf("k-NN retains %.1f%%, want >= 90%% (competitive with the literature)",
			evKNN.Retained*100)
	}
	if evKNN.RetainedP10 <= 0 {
		t.Error("10th percentile retained should be positive")
	}
}

func TestNearestEmptyAndTies(t *testing.T) {
	empty := TrainSamples(nil, 3)
	if _, ok := empty.Predict(core.FeatureVector{}); ok {
		t.Error("empty selector should report not-ok")
	}
	tied := TrainSamples([]Sample{
		{core.FeatureVector{MemFootprintMB: 1}, "B"},
		{core.FeatureVector{MemFootprintMB: 2}, "A"},
	}, 2)
	name, ok := tied.Predict(core.FeatureVector{MemFootprintMB: 1.5})
	if !ok || name != "A" {
		t.Errorf("tie should break lexicographically: got %q", name)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	s := epyc(t)
	ev := Evaluate(s, nil, func(core.FeatureVector) string { return "Naive-CSR" })
	if ev.N != 0 || ev.Retained != 0 {
		t.Errorf("empty evaluation should be zero: %+v", ev)
	}
}
