package selector

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/formats"
)

func epyc(t *testing.T) device.Spec {
	t.Helper()
	s, ok := device.ByName("AMD-EPYC-24")
	if !ok {
		t.Fatal("missing testbed")
	}
	return s
}

func TestRulesPicksAvailableFormats(t *testing.T) {
	for _, spec := range device.Testbeds() {
		for _, fv := range dataset.Small.Sample(50, 3) {
			name := Rules(spec, fv)
			found := false
			for _, f := range spec.Formats {
				if f == name {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: rules picked %q, not offered by the device", spec.Name, name)
			}
		}
	}
}

func TestRulesEncodeTakeaways(t *testing.T) {
	s := epyc(t)
	skewed := dataset.Point(128, 20, 10000, 0.5, 0.5, 0.3)
	if got := Rules(s, skewed); got != "Merge-CSR" {
		t.Errorf("skewed pick = %q, want Merge-CSR (item-granular first)", got)
	}
	clustered := dataset.Point(512, 50, 0, 0.9, 1.9, 0.3)
	if got := Rules(s, clustered); got != "SparseX" {
		t.Errorf("large clustered pick = %q, want SparseX", got)
	}
	longRows := dataset.Point(64, 100, 0, 0.5, 1.0, 0.3)
	if got := Rules(s, longRows); got != "SELL-C-s" {
		t.Errorf("long balanced rows pick = %q, want SELL-C-s", got)
	}
}

func TestRulesRetainPerformance(t *testing.T) {
	s := epyc(t)
	points := dataset.Medium.Sample(600, 5)
	ev := Evaluate(s, points, func(fv core.FeatureVector) string { return Rules(s, fv) })
	if ev.N < 500 {
		t.Fatalf("evaluated only %d points", ev.N)
	}
	if ev.Retained < 0.80 {
		t.Errorf("rules retain %.1f%% of best performance, want >= 80%%", ev.Retained*100)
	}
}

func TestNearestBeatsRules(t *testing.T) {
	s := epyc(t)
	train := dataset.Medium.Sample(1500, 7)
	test := dataset.Medium.Sample(400, 11)
	knn := Train(s, train, 5)
	if knn.Len() == 0 {
		t.Fatal("empty training set")
	}
	evKNN := Evaluate(s, test, func(fv core.FeatureVector) string {
		name, _ := knn.Predict(fv)
		return name
	})
	evRules := Evaluate(s, test, func(fv core.FeatureVector) string { return Rules(s, fv) })
	if evKNN.Retained < evRules.Retained-0.02 {
		t.Errorf("k-NN retains %.3f, rules %.3f; k-NN should be at least comparable",
			evKNN.Retained, evRules.Retained)
	}
	if evKNN.Retained < 0.90 {
		t.Errorf("k-NN retains %.1f%%, want >= 90%% (competitive with the literature)",
			evKNN.Retained*100)
	}
	if evKNN.RetainedP10 <= 0 {
		t.Error("10th percentile retained should be positive")
	}
}

func TestNearestEmptyAndTies(t *testing.T) {
	empty := TrainSamples(nil, 3)
	if _, ok := empty.Predict(core.FeatureVector{}); ok {
		t.Error("empty selector should report not-ok")
	}
	tied := TrainSamples([]Sample{
		{FV: core.FeatureVector{MemFootprintMB: 1}, Best: "B"},
		{FV: core.FeatureVector{MemFootprintMB: 2}, Best: "A"},
	}, 2)
	name, ok := tied.Predict(core.FeatureVector{MemFootprintMB: 1.5})
	if !ok || name != "A" {
		t.Errorf("tie should break lexicographically: got %q", name)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	s := epyc(t)
	ev := Evaluate(s, nil, func(core.FeatureVector) string { return "Naive-CSR" })
	if ev.N != 0 || ev.Retained != 0 {
		t.Errorf("empty evaluation should be zero: %+v", ev)
	}
}

func TestTrainReportsDroppedPoints(t *testing.T) {
	s := epyc(t)
	points := dataset.Small.Sample(20, 3)
	labelable := len(points)
	// Unlabelable points: empty matrices have no feasible format.
	points = append(points, core.FeatureVector{}, core.FeatureVector{Rows: 10, Cols: 10})
	knn := Train(s, points, 3)
	if knn.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", knn.Dropped())
	}
	if knn.Len() != labelable {
		t.Errorf("Len() = %d, want %d", knn.Len(), labelable)
	}
	if TrainSamples(nil, 3).Dropped() != 0 {
		t.Error("TrainSamples should drop nothing")
	}
}

func TestRetainedP10SmallTestSets(t *testing.T) {
	s := epyc(t)
	// 3 points (< 10): RetainedP10 must be the minimum retained value,
	// not a silent alias of a higher percentile.
	points := dataset.Small.Sample(3, 5)
	if len(points) != 3 {
		t.Fatalf("sampled %d points, want 3", len(points))
	}
	// Predict the worst feasible format for the first point only, so the
	// retained values are not all equal.
	worst := func(fv core.FeatureVector) string {
		name, g := "", -1.0
		for _, f := range s.Formats {
			r := s.Estimate(fv, f)
			if r.Feasible && (g < 0 || r.GFLOPS < g) {
				name, g = f, r.GFLOPS
			}
		}
		return name
	}
	first := true
	ev := Evaluate(s, points, func(fv core.FeatureVector) string {
		if first {
			first = false
			return worst(fv)
		}
		name, _, _ := s.BestFormat(fv)
		return name
	})
	if ev.N == 0 {
		t.Fatal("nothing evaluated")
	}
	if ev.RetainedP10 > ev.Retained {
		t.Errorf("P10 %.3f above mean %.3f on a 3-point set — must report the minimum", ev.RetainedP10, ev.Retained)
	}
}

func TestRulesKPrefersFusedFormats(t *testing.T) {
	for _, spec := range device.Testbeds() {
		for _, fv := range dataset.Small.Sample(40, 17) {
			name := RulesK(spec, fv, 8)
			offered := false
			for _, f := range spec.Formats {
				if f == name {
					offered = true
				}
			}
			if !offered {
				t.Fatalf("%s: RulesK picked %q, not offered", spec.Name, name)
			}
			// When the device offers any fused format from the decision
			// list, the k=8 pick must be fused.
			order := rulesOrder(fv)
			hasFused := pickFrom(spec, order, formats.FusedMulti) != ""
			if hasFused && !formats.FusedMulti(name) {
				t.Fatalf("%s fv=%s: RulesK(8) picked fallback %q with fused options available",
					spec.Name, fv, name)
			}
		}
	}
	// k=1 must be exactly Rules.
	s := epyc(t)
	for _, fv := range dataset.Small.Sample(40, 23) {
		if RulesK(s, fv, 1) != Rules(s, fv) {
			t.Fatal("RulesK(1) must equal Rules")
		}
	}
}
