package selector

// Micro-autotuning of structural format parameters. The device model and
// probe pick WHICH format to build; the tuner picks the width-dependent
// knobs INSIDE the winner that hard-coded defaults used to fix: the BCSR
// block geometry and the fused SpMM register-tile width, both measured on
// the same row-sampled sub-matrix harness the micro-probe uses, plus the
// Vec-CSR wide-row cutoff, derived (not timed) from the sampled
// row-length distribution. Winners persist through the journal as
// "autotune" records keyed by (fingerprint, device, k, parameter), so a
// matrix pays each sweep once per machine context.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/simd"
)

// Autotuned parameter names (cache.TuneKey.Param).
const (
	// ParamBCSRBlock is the BCSR block geometry, value "BRxBC".
	ParamBCSRBlock = "bcsr.block"
	// ParamSpMMTile is the fused SpMM register-tile width, "4" or "8".
	// Only swept when the dispatched SIMD width is 8 — below that the
	// 8-wide tile never engages and the settings are identical.
	ParamSpMMTile = "spmm.tile"
)

// bcsrShapes are the block geometries the tuner sweeps. 2x2 is the
// default and the only shape with a dispatched micro-kernel; the wider
// shapes trade the SIMD kernel for denser value blocks and fewer index
// loads, which wins on strongly block-structured matrices.
var bcsrShapes = []struct {
	br, bc int
	name   string
}{
	{2, 2, "2x2"}, {4, 4, "4x4"}, {2, 4, "2x4"}, {4, 2, "4x2"},
}

// vecRowLenSamples bounds the stride sample of the row-length
// distribution the wide-row inspector reads.
const vecRowLenSamples = 4096

// autotune applies the parameter sweeps relevant to the chosen format,
// consulting (and feeding) the tune cache so each sweep is measured once
// per (fingerprint, device, k). It may replace f — a BCSR instance is
// rebuilt when a non-default block shape wins — and returns the tuned
// parameter map for the decision record. A cancelled ctx skips any sweep
// not yet cached; already-known winners still apply.
func autotune(ctx context.Context, m *matrix.CSR, f formats.Format, dev string, k, sampleRows int, tc *cache.TuneCache) (formats.Format, map[string]string) {
	tuned := make(map[string]string)
	fp := m.Fingerprint()
	if sampleRows <= 0 {
		sampleRows = DefaultProbeRows
	}

	if f.Name() == "BCSR" {
		key := cache.TuneKey{Fingerprint: fp, Device: dev, K: k, Param: ParamBCSRBlock}
		shape, ok := tc.Get(key)
		if !ok && ctx.Err() == nil {
			if shape = tuneBCSRShape(ctx, m, k, sampleRows); shape != "" {
				tc.Put(key, shape)
			}
		}
		if shape != "" {
			if shape != "2x2" {
				if br, bc, err := parseBlockShape(shape); err == nil {
					if nf, err := formats.NewBCSR(m, br, bc); err == nil {
						f = nf
					}
				}
			}
			tuned[ParamBCSRBlock] = shape
		}
	}

	if wt, ok := f.(formats.WideTiler); ok && k >= 8 && simd.Enabled() && simd.Width() >= 8 {
		key := cache.TuneKey{Fingerprint: fp, Device: dev, K: k, Param: ParamSpMMTile}
		tile, ok2 := tc.Get(key)
		if !ok2 && ctx.Err() == nil {
			if tile = tuneSpMMTile(ctx, m, f.Name(), k, sampleRows); tile != "" {
				tc.Put(key, tile)
			}
		}
		if tile != "" {
			wt.SetWideTiles(tile == "8")
			tuned[ParamSpMMTile] = tile
		}
	}
	return f, tuned
}

// parseBlockShape parses a "BRxBC" tune value.
func parseBlockShape(s string) (br, bc int, err error) {
	if _, err = fmt.Sscanf(s, "%dx%d", &br, &bc); err != nil {
		return 0, 0, err
	}
	if br < 1 || bc < 1 {
		return 0, 0, fmt.Errorf("selector: bad block shape %q", s)
	}
	return br, bc, nil
}

// tuneBCSRShape times each block geometry on the row-sampled sub-matrix
// (the probe harness: warmed runs, adaptive iteration, min over rounds)
// and returns the winner's name, or "" when no shape builds.
func tuneBCSRShape(ctx context.Context, m *matrix.CSR, k, sampleRows int) string {
	sub := m.RowSample(sampleRows)
	workers := exec.MaxWorkers()
	exec.Prestart()
	x := matrix.RandomVector(sub.Cols*k, 9001)
	y := make([]float64, sub.Rows*k)
	best := math.Inf(1)
	winner := ""
	for _, s := range bcsrShapes {
		if ctx.Err() != nil {
			break
		}
		f, err := formats.NewBCSR(sub, s.br, s.bc)
		if err != nil {
			continue // fill-ratio cap refused this geometry on the sample
		}
		run := func() {
			if k > 1 {
				f.MultiplyMany(y, x, k)
			} else {
				f.SpMVParallel(x, y, workers)
			}
		}
		run() // warm plans, scratch, pages
		if ns := measureNs(run, defaultProbeMinTime, defaultProbeRounds); ns < best {
			best = ns
			winner = s.name
		}
	}
	return winner
}

// tuneSpMMTile times the chosen format's fused SpMM kernel on the
// sub-matrix with the 8-wide register tile on and off, returning "8" or
// "4" (ties keep the wide tile: one kernel call covers two narrow ones).
func tuneSpMMTile(ctx context.Context, m *matrix.CSR, name string, k, sampleRows int) string {
	if ctx.Err() != nil {
		return ""
	}
	b, ok := formats.Lookup(name)
	if !ok {
		return ""
	}
	sub := m.RowSample(sampleRows)
	f, err := b.Build(sub)
	if err != nil {
		return ""
	}
	wt, ok := f.(formats.WideTiler)
	if !ok {
		return ""
	}
	exec.Prestart()
	x := matrix.RandomVector(sub.Cols*k, 9001)
	y := make([]float64, sub.Rows*k)
	run := func() { f.MultiplyMany(y, x, k) }
	wt.SetWideTiles(true)
	run()
	ns8 := measureNs(run, defaultProbeMinTime, defaultProbeRounds)
	wt.SetWideTiles(false)
	run()
	ns4 := measureNs(run, defaultProbeMinTime, defaultProbeRounds)
	if ns8 <= ns4 {
		return "8"
	}
	return "4"
}

// vecWideRowMinFor derives the vectorized-CSR wide-path cutoff from a
// stride sample of the matrix's row-length distribution: the
// 8-accumulator path only pays off when rows are long enough to amortize
// its reduction, so the cutoff follows the sampled 90th-percentile row
// length (4x p90, clamped to [128, 512] — the upper clamp is the measured
// x86 default, see formats.VecWideRowMin). Matrices whose long tail
// already clears the default keep it; uniformly short-row matrices lower
// the cutoff so their rare wide rows still take the wide path.
func vecWideRowMinFor(m *matrix.CSR) int {
	rows := m.Rows
	if rows == 0 {
		return 0
	}
	stride := rows/vecRowLenSamples + 1
	lens := make([]int, 0, rows/stride+1)
	for i := 0; i < rows; i += stride {
		lens = append(lens, int(m.RowPtr[i+1]-m.RowPtr[i]))
	}
	sort.Ints(lens)
	p90 := lens[len(lens)*9/10]
	cut := 4 * p90
	if cut > 512 {
		cut = 512
	}
	if cut < 128 {
		cut = 128
	}
	return cut
}
