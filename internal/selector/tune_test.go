package selector

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/formats"
	"repro/internal/matrix"
)

// TestAutotuneBCSRJournalsWinner checks the BCSR block-geometry sweep runs
// once, caches its winner, and the cached path re-applies it without
// re-measuring.
func TestAutotuneBCSRJournalsWinner(t *testing.T) {
	m := genMatrix(t, 8000, 12, 0, 77)
	f, err := formats.NewBCSR(m, 2, 2)
	if err != nil {
		t.Fatalf("build BCSR: %v", err)
	}
	tc := cache.NewTuneCache()
	_, tuned := autotune(context.Background(), m, f, "host", 1, 0, tc)
	shape, ok := tuned[ParamBCSRBlock]
	if !ok || shape == "" {
		t.Fatalf("no BCSR block shape tuned: %+v", tuned)
	}
	if _, _, err := parseBlockShape(shape); err != nil {
		t.Fatalf("winner %q does not parse: %v", shape, err)
	}
	key := cache.TuneKey{Fingerprint: m.Fingerprint(), Device: "host", K: 1, Param: ParamBCSRBlock}
	if v, ok := tc.Get(key); !ok || v != shape {
		t.Fatalf("winner not cached: got %q, %v; want %q", v, ok, shape)
	}

	// Second call must hit the cache: zero additional misses.
	_, missBefore := tc.Stats()
	f2, err := formats.NewBCSR(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, tuned2 := autotune(context.Background(), m, f2, "host", 1, 0, tc)
	if tuned2[ParamBCSRBlock] != shape {
		t.Fatalf("cached re-apply picked %q, first sweep picked %q", tuned2[ParamBCSRBlock], shape)
	}
	if _, missAfter := tc.Stats(); missAfter != missBefore {
		t.Fatalf("cached path re-swept: misses %d -> %d", missBefore, missAfter)
	}
}

// TestBuildAutoTuneRecordsChoice checks the end-to-end wiring: Tune: true
// populates the decision record and sets the wide-row cutoff on
// CSR-family picks.
func TestBuildAutoTuneRecordsChoice(t *testing.T) {
	m := genMatrix(t, 8000, 12, 0, 78)
	tc := cache.NewTuneCache()
	a, err := BuildAuto(m, AutoOptions{K: 8, NoCache: true, NoLearn: true, Tune: true, Tunes: tc})
	if err != nil {
		t.Fatal(err)
	}
	c := a.Choice()
	if _, ok := a.Unwrap().(formats.WideRowTuner); ok && a.Unwrap().Traits().Vectorizable {
		if c.VecWideRowMin < 128 || c.VecWideRowMin > 512 {
			t.Errorf("VecWideRowMin = %d, want within [128, 512]", c.VecWideRowMin)
		}
	}
	// Whatever was tuned must round-trip the cached decision path too.
	dc := cache.NewDecisionCache()
	a1, err := BuildAuto(m, AutoOptions{K: 8, NoLearn: true, Tune: true, Tunes: tc, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := BuildAuto(m, AutoOptions{K: 8, NoLearn: true, Tune: true, Tunes: tc, Cache: dc})
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Choice().Cached {
		t.Fatalf("second build missed the decision cache")
	}
	if got, want := a2.Choice().VecWideRowMin, a1.Choice().VecWideRowMin; got != want {
		t.Errorf("cached path VecWideRowMin = %d, fresh path %d", got, want)
	}
	for p, v := range a1.Choice().Tuned {
		if a2.Choice().Tuned[p] != v {
			t.Errorf("cached path lost tuned %s=%q: %+v", p, v, a2.Choice().Tuned)
		}
	}
}

// TestVecWideRowMinFor pins the inspector's clamping behavior on known
// row-length distributions.
func TestVecWideRowMinFor(t *testing.T) {
	short := genMatrix(t, 6000, 4, 0, 11) // p90 tiny -> lower clamp
	if got := vecWideRowMinFor(short); got != 128 {
		t.Errorf("short rows: cutoff = %d, want 128 (lower clamp)", got)
	}
	// A dense slab with 300 nnz/row: 4*p90 > 512 -> upper clamp.
	rows := 512
	ptr := make([]int32, rows+1)
	var idx []int32
	var val []float64
	for i := 0; i < rows; i++ {
		ptr[i] = int32(len(idx))
		for j := 0; j < 300; j++ {
			idx = append(idx, int32(j))
			val = append(val, 1)
		}
	}
	ptr[rows] = int32(len(idx))
	long, err := matrix.NewCSR(rows, rows, ptr, idx, val)
	if err != nil {
		t.Fatal(err)
	}
	if got := vecWideRowMinFor(long); got != 512 {
		t.Errorf("long rows: cutoff = %d, want 512 (upper clamp)", got)
	}
	if got := vecWideRowMinFor(&matrix.CSR{}); got != 0 {
		t.Errorf("empty matrix: cutoff = %d, want 0", got)
	}
}
