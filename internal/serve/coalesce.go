package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/failpoint"
	"repro/internal/formats"
)

// Coalescing defaults: flush a matrix's gathered requests when the batch
// reaches DefaultMaxBatch single-vector multiplies or DefaultWindow after
// the first request armed the window, whichever comes first — the
// inference-serving recipe. Eight is where the fused MultiplyMany kernels'
// per-vector gain flattens (BENCH_spmm.json); 200µs is well under one
// medium-matrix sweep, so a lone request's added latency stays below one
// kernel time.
const (
	DefaultWindow   = 200 * time.Microsecond
	DefaultMaxBatch = 8
)

// pending is one admitted multiply waiting for its batch to flush.
type pending struct {
	x    []float64
	ctx  context.Context
	done chan batchResult // buffered: a flush never blocks on a gone caller
}

// batchResult is what a flush delivers to each request of its batch.
type batchResult struct {
	y     []float64
	batch int // how many requests the serving kernel call carried
	err   error
}

// CoalescerStats is a point-in-time view of one matrix's batching.
type CoalescerStats struct {
	Requests    uint64  `json:"requests"`     // admitted multiplies
	Batches     uint64  `json:"batches"`      // kernel calls issued
	Coalesced   uint64  `json:"coalesced"`    // requests served in a batch of > 1
	FlushFull   uint64  `json:"flush_full"`   // flushes at MaxBatch
	FlushWindow uint64  `json:"flush_window"` // flushes at the window deadline
	FlushDrain  uint64  `json:"flush_drain"`  // flushes forced by shutdown drain
	MeanBatch   float64 `json:"mean_batch"`   // Requests / Batches
}

// Coalescer gathers concurrent single-vector multiply requests against one
// hosted matrix into fused MultiplyMany calls: the first request of a
// batch arms a window timer, and the batch flushes when it fills to
// maxBatch or the window lapses, whichever is first. k waiting users cost
// one matrix sweep instead of k (~3.3x aggregate at k = 8 per
// BENCH_spmm.json) at a bounded latency premium. All methods are safe for
// concurrent use.
type Coalescer struct {
	f          formats.Format
	rows, cols int
	window     time.Duration
	maxBatch   int
	// base is the server-lifetime context batched kernel calls run under:
	// one request's cancellation must not kill its batch siblings'
	// results, so per-request contexts only govern admission and the
	// caller's own wait. Cancelling base (shutdown past the drain
	// deadline) cancels in-flight kernels, and every waiter gets the
	// typed cancellation.
	base context.Context

	mu     sync.Mutex
	batch  []*pending
	gen    uint64 // bumped per takeLocked; stale window timers no-op
	timer  *time.Timer
	closed bool

	// blocks recycles the gather/scatter staging blocks across flushes.
	blocks sync.Pool

	requests    atomic.Uint64
	batches     atomic.Uint64
	coalesced   atomic.Uint64
	flushFull   atomic.Uint64
	flushWindow atomic.Uint64
	flushDrain  atomic.Uint64
}

// NewCoalescer wraps a built format (plain or updatable) for coalesced
// serving. base is the server-lifetime context (nil: context.Background).
// window <= 0 or maxBatch <= 1 disables gathering: every request runs its
// own single-vector kernel — the sequential baseline the batching gate
// measures against.
func NewCoalescer(base context.Context, f formats.Format, window time.Duration, maxBatch int) *Coalescer {
	if base == nil {
		base = context.Background()
	}
	return &Coalescer{
		f:        f,
		rows:     f.Rows(),
		cols:     f.Cols(),
		window:   window,
		maxBatch: maxBatch,
		base:     base,
	}
}

// Multiply computes y = A*x for one request, batching it with concurrent
// requests against the same matrix. It returns the result vector and the
// size of the kernel batch that served it. The caller's context governs
// its own wait: a cancelled caller returns its context error immediately
// while the batch completes for its siblings. Admission rejects a
// mismatched vector length with formats.ErrDimension — the serving layer
// maps it to a typed 400, never a 500.
func (c *Coalescer) Multiply(ctx context.Context, x []float64) ([]float64, int, error) {
	if len(x) != c.cols {
		return nil, 0, fmt.Errorf("%w: x has %d entries, matrix has %d columns",
			formats.ErrDimension, len(x), c.cols)
	}

	if c.maxBatch <= 1 || c.window <= 0 {
		// Coalescing off: serve directly under the caller's context.
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, 0, ErrShuttingDown
		}
		c.requests.Add(1)
		c.batches.Add(1)
		y := make([]float64, c.rows)
		if err := formats.SpMVCtx(ctx, c.f, x, y, exec.MaxWorkers()); err != nil {
			return nil, 0, err
		}
		return y, 1, nil
	}

	p := &pending{x: x, ctx: ctx, done: make(chan batchResult, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrShuttingDown
	}
	c.requests.Add(1)
	c.batch = append(c.batch, p)
	if len(c.batch) >= c.maxBatch {
		b := c.takeLocked()
		c.mu.Unlock()
		c.flushFull.Add(1)
		c.flush(b) // the filling request runs the flush: no handoff latency
	} else {
		if len(c.batch) == 1 {
			gen := c.gen
			c.timer = time.AfterFunc(c.window, func() { c.onWindow(gen) })
		}
		c.mu.Unlock()
	}

	select {
	case r := <-p.done:
		return r.y, r.batch, r.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// takeLocked detaches the current batch and invalidates its window timer.
func (c *Coalescer) takeLocked() []*pending {
	b := c.batch
	c.batch = nil
	c.gen++
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return b
}

// onWindow flushes the batch the timer was armed for; a stale generation
// means that batch already flushed full (or drained) and a new one may be
// gathering — leave it its own full window.
func (c *Coalescer) onWindow(gen uint64) {
	c.mu.Lock()
	if gen != c.gen {
		c.mu.Unlock()
		return
	}
	b := c.takeLocked()
	c.mu.Unlock()
	if len(b) > 0 {
		c.flushWindow.Add(1)
		c.flush(b)
	}
}

// flush serves one detached batch: gather the k request vectors into one
// row-major block, run the fused kernel once, scatter each request's
// column back out. Errors — injected faults at the serve.flush site,
// contained kernel panics, base-context cancellation during shutdown —
// propagate to every request of the batch; each admitted request always
// receives exactly one response.
func (c *Coalescer) flush(b []*pending) {
	k := len(b)
	c.batches.Add(1)
	if k > 1 {
		c.coalesced.Add(uint64(k))
	}
	// Fault-injection point at the dispatch boundary (never inside a
	// kernel): a fired site fails the whole batch with provenance, the
	// way a fused-kernel dispatch fault would.
	if err := failpoint.Inject("serve.flush"); err != nil {
		for _, p := range b {
			p.done <- batchResult{batch: k, err: err}
		}
		return
	}
	if k == 1 {
		// A lone request keeps its own context end to end: nothing shares
		// its kernel call, so its cancellation may cancel the sweep.
		p := b[0]
		y := make([]float64, c.rows)
		err := formats.SpMVCtx(c.mergedCtx(p.ctx), c.f, p.x, y, exec.MaxWorkers())
		if err != nil {
			y = nil
		}
		p.done <- batchResult{y: y, batch: 1, err: err}
		return
	}
	// Gather into the kernel's row-major X[col*k+t] with col as the outer
	// loop: the block is written sequentially and each request vector is
	// read sequentially (k parallel read streams), instead of k full
	// strided passes over the block — the difference is most of the
	// coalescing win on memory-bound matrices.
	x := c.getBlock(c.cols * k)
	for col := 0; col < c.cols; col++ {
		base := col * k
		for t, p := range b {
			x[base+t] = p.x[col]
		}
	}
	y := c.getBlock(c.rows * k)
	err := formats.MultiplyManyCtx(c.base, c.f, y, x, k)
	if err != nil {
		for _, p := range b {
			p.done <- batchResult{batch: k, err: err}
		}
		c.putBlock(x)
		c.putBlock(y)
		return
	}
	// Scatter with the same orientation: sequential read of Y[r*k+t],
	// k sequential write streams.
	outs := make([][]float64, k)
	for t := range outs {
		outs[t] = make([]float64, c.rows)
	}
	for r := 0; r < c.rows; r++ {
		base := r * k
		for t := range outs {
			outs[t][r] = y[base+t]
		}
	}
	for t, p := range b {
		p.done <- batchResult{y: outs[t], batch: k, err: nil}
	}
	c.putBlock(x)
	c.putBlock(y)
}

// getBlock leases a gather/scatter block of at least n entries from the
// coalescer's pool; flush-rate allocations of multi-megabyte blocks are
// pure overhead on the serving path.
func (c *Coalescer) getBlock(n int) []float64 {
	if v := c.blocks.Get(); v != nil {
		b := v.([]float64)
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

func (c *Coalescer) putBlock(b []float64) { c.blocks.Put(b[:cap(b)]) }

// mergedCtx returns the request context unless the server-lifetime base
// context is already cancelled, which must override it (shutdown hard
// deadline).
func (c *Coalescer) mergedCtx(reqCtx context.Context) context.Context {
	if c.base.Err() != nil {
		return c.base
	}
	return reqCtx
}

// Close drains the coalescer: the gathering batch (if any) flushes
// immediately and every later Multiply is refused with ErrShuttingDown.
// Requests admitted before Close still receive their response — the
// serve-job SIGTERM gate asserts none hang.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	b := c.takeLocked()
	c.mu.Unlock()
	if len(b) > 0 {
		c.flushDrain.Add(1)
		c.flush(b)
	}
}

// Stats returns cumulative batching counters.
func (c *Coalescer) Stats() CoalescerStats {
	s := CoalescerStats{
		Requests:    c.requests.Load(),
		Batches:     c.batches.Load(),
		Coalesced:   c.coalesced.Load(),
		FlushFull:   c.flushFull.Load(),
		FlushWindow: c.flushWindow.Load(),
		FlushDrain:  c.flushDrain.Load(),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.Requests) / float64(s.Batches)
	}
	return s
}
