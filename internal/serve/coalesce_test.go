package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/formats"
	"repro/internal/matrix"
)

// refSpMV is the scalar reference the coalescer's answers are checked
// against.
func refSpMV(m *matrix.CSR, x []float64) []float64 {
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var acc float64
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			acc += m.Val[p] * x[m.ColIdx[p]]
		}
		y[r] = acc
	}
	return y
}

func testMatrix(t *testing.T) *matrix.CSR {
	t.Helper()
	return matrix.Random(300, 300, 0.02, 42)
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
			return false
		}
	}
	return true
}

// Eight concurrent requests under a generous window must coalesce into
// one fused kernel call, and every caller must get the same answer the
// scalar reference gives for its own vector.
func TestCoalescerBatchesConcurrentRequests(t *testing.T) {
	m := testMatrix(t)
	co := NewCoalescer(context.Background(), formats.NewCSR(m), 100*time.Millisecond, 8)
	defer co.Close()

	const n = 8
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = matrix.RandomVector(m.Cols, int64(i+1))
	}
	var wg sync.WaitGroup
	batches := make([]int, n)
	errs := make([]error, n)
	ys := make([][]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ys[i], batches[i], errs[i] = co.Multiply(context.Background(), xs[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if want := refSpMV(m, xs[i]); !almostEqual(ys[i], want) {
			t.Fatalf("request %d: wrong result", i)
		}
	}
	st := co.Stats()
	if st.Requests != n {
		t.Fatalf("requests = %d, want %d", st.Requests, n)
	}
	if st.Coalesced == 0 {
		t.Fatalf("no request was coalesced: %+v", st)
	}
	if st.Batches >= n {
		t.Fatalf("batches = %d: nothing fused across %d requests", st.Batches, n)
	}
}

// A partial batch must flush when the window lapses, not wait for
// maxBatch.
func TestCoalescerWindowFlush(t *testing.T) {
	m := testMatrix(t)
	co := NewCoalescer(context.Background(), formats.NewCSR(m), 5*time.Millisecond, 64)
	defer co.Close()

	x := matrix.RandomVector(m.Cols, 7)
	start := time.Now()
	y, batch, err := co.Multiply(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("window flush took %v", elapsed)
	}
	if batch != 1 {
		t.Fatalf("batch = %d, want 1 (lone request)", batch)
	}
	if want := refSpMV(m, x); !almostEqual(y, want) {
		t.Fatal("wrong result")
	}
	if st := co.Stats(); st.FlushWindow != 1 {
		t.Fatalf("flushWindow = %d, want 1: %+v", st.FlushWindow, st)
	}
}

// window <= 0 or maxBatch <= 1 is the sequential baseline: every request
// runs its own kernel call immediately.
func TestCoalescerDirectPath(t *testing.T) {
	m := testMatrix(t)
	co := NewCoalescer(context.Background(), formats.NewCSR(m), 0, 8)
	defer co.Close()

	x := matrix.RandomVector(m.Cols, 3)
	y, batch, err := co.Multiply(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if batch != 1 {
		t.Fatalf("batch = %d, want 1", batch)
	}
	if want := refSpMV(m, x); !almostEqual(y, want) {
		t.Fatal("wrong result")
	}
	st := co.Stats()
	if st.Requests != 1 || st.Batches != 1 || st.Coalesced != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// A mismatched vector is refused at admission with the typed dimension
// error — the single error table maps it to 400, never 500.
func TestCoalescerDimensionMismatch(t *testing.T) {
	m := testMatrix(t)
	co := NewCoalescer(context.Background(), formats.NewCSR(m), DefaultWindow, DefaultMaxBatch)
	defer co.Close()

	_, _, err := co.Multiply(context.Background(), make([]float64, m.Cols+1))
	if !errors.Is(err, formats.ErrDimension) {
		t.Fatalf("err = %v, want formats.ErrDimension", err)
	}
	if status, code := StatusOf(err); status != 400 || code != "dimension_mismatch" {
		t.Fatalf("StatusOf = %d/%s, want 400/dimension_mismatch", status, code)
	}
	if st := co.Stats(); st.Requests != 0 {
		t.Fatalf("refused request counted: %+v", st)
	}
}

// A caller whose context dies while waiting gets its context error
// immediately; the batch still completes for its siblings.
func TestCoalescerCallerCancellation(t *testing.T) {
	m := testMatrix(t)
	co := NewCoalescer(context.Background(), formats.NewCSR(m), 50*time.Millisecond, 64)
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := co.Multiply(ctx, matrix.RandomVector(m.Cols, 1))
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it join the gathering batch
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if status, code := StatusOf(err); status != StatusCanceled || code != "canceled" {
			t.Fatalf("StatusOf = %d/%s, want 499/canceled", status, code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled caller hung")
	}

	// A sibling admitted to the same batch still gets its answer.
	x := matrix.RandomVector(m.Cols, 2)
	y, _, err := co.Multiply(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if want := refSpMV(m, x); !almostEqual(y, want) {
		t.Fatal("sibling result corrupted by cancellation")
	}
}

// Close must flush the gathering batch (every admitted request answered)
// and refuse later requests with the typed shutdown error.
func TestCoalescerCloseDrainsPendingBatch(t *testing.T) {
	m := testMatrix(t)
	// A window far longer than the test: only Close can flush.
	co := NewCoalescer(context.Background(), formats.NewCSR(m), time.Hour, 64)

	const n = 3
	type out struct {
		y   []float64
		err error
	}
	outs := make(chan out, n)
	xs := make([][]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = matrix.RandomVector(m.Cols, int64(100+i))
		go func(i int) {
			y, _, err := co.Multiply(context.Background(), xs[i])
			outs <- out{y, err}
		}(i)
	}
	// Wait until all n are actually gathered before draining.
	deadline := time.Now().Add(5 * time.Second)
	for co.Stats().Requests < n {
		if time.Now().After(deadline) {
			t.Fatal("requests never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	co.Close()

	for i := 0; i < n; i++ {
		select {
		case o := <-outs:
			if o.err != nil {
				t.Fatalf("drained request errored: %v", o.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("request hung across Close — drain broken")
		}
	}
	if st := co.Stats(); st.FlushDrain != 1 {
		t.Fatalf("flushDrain = %d, want 1: %+v", st.FlushDrain, st)
	}

	_, _, err := co.Multiply(context.Background(), xs[0])
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-Close err = %v, want ErrShuttingDown", err)
	}
	if status, code := StatusOf(err); status != 503 || code != "shutting_down" {
		t.Fatalf("StatusOf = %d/%s, want 503/shutting_down", status, code)
	}
}

// A fault injected at the serve.flush dispatch boundary must fail every
// request of the batch with provenance — and the coalescer stays usable.
func TestCoalescerFlushFailpoint(t *testing.T) {
	m := testMatrix(t)
	co := NewCoalescer(context.Background(), formats.NewCSR(m), 5*time.Millisecond, 8)
	defer co.Close()

	prev := failpoint.SetEnabled(true)
	defer failpoint.SetEnabled(prev)
	if err := failpoint.Enable("serve.flush", "error*1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("serve.flush")

	_, _, err := co.Multiply(context.Background(), matrix.RandomVector(m.Cols, 9))
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err = %v, want failpoint.ErrInjected", err)
	}
	if status, code := StatusOf(err); status != 500 || code != "injected_fault" {
		t.Fatalf("StatusOf = %d/%s, want 500/injected_fault", status, code)
	}

	// The site disarmed (*1): the next request succeeds.
	x := matrix.RandomVector(m.Cols, 10)
	y, _, err := co.Multiply(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if want := refSpMV(m, x); !almostEqual(y, want) {
		t.Fatal("wrong result after failpoint recovery")
	}
}

// Cancelling the server-lifetime base context (the drain hard deadline)
// must turn in-flight waiters loose with the typed cancellation rather
// than leaving them hung.
func TestCoalescerBaseCancelUnblocksWaiters(t *testing.T) {
	m := testMatrix(t)
	base, abort := context.WithCancel(context.Background())
	co := NewCoalescer(base, formats.NewCSR(m), time.Hour, 64)

	errc := make(chan error, 1)
	go func() {
		// Caller context = base: when base dies the wait unblocks even
		// though the hour-long window never fires.
		_, _, err := co.Multiply(base, matrix.RandomVector(m.Cols, 1))
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for co.Stats().Requests < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	abort()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung past base cancellation")
	}
	co.Close()
}
