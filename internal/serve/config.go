package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"
)

// Config is the daemon's configuration. Resolution order is flag > env >
// file > default: main applies a config file first, then ApplyEnv, then
// only the flags the user actually set (flag.Visit) — each layer
// overwriting the one below.
type Config struct {
	// Addr is the listen address (host:port; ":0" picks a free port and
	// the daemon prints the bound address).
	Addr string `json:"addr"`
	// Window is the coalescing window armed by the first request of a
	// batch; 0 disables batching (every request runs alone).
	Window time.Duration `json:"-"`
	// MaxBatch flushes a batch early when it gathers this many requests.
	MaxBatch int `json:"max_batch"`
	// CacheDir is the selection journal directory; empty is memory-only.
	CacheDir string `json:"cache_dir"`
	// Shards scopes the session's decision keys; 0 uses the live topology.
	Shards int `json:"shards"`
	// K is the default right-hand-side regime hint for uploads.
	K int `json:"k"`
	// Probe lets uploads micro-probe the selection shortlist by default.
	Probe bool `json:"probe"`
	// DrainTimeout bounds graceful shutdown: past it, in-flight kernels
	// are cancelled and waiters get the typed cancellation.
	DrainTimeout time.Duration `json:"-"`

	// JSON carries durations as strings ("200us", "5s").
	WindowStr string `json:"window,omitempty"`
	DrainStr  string `json:"drain_timeout,omitempty"`
}

// DefaultConfig returns the built-in defaults.
func DefaultConfig() Config {
	return Config{
		Addr:         ":8097",
		Window:       DefaultWindow,
		MaxBatch:     DefaultMaxBatch,
		DrainTimeout: 5 * time.Second,
	}
}

// ApplyFile overlays cfg with the JSON config file at path. A missing
// path is not an error (the file layer is optional); a present but
// malformed file is.
func (c *Config) ApplyFile(path string) error {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("serve: config file: %w", err)
	}
	// Decode over the current values so absent keys keep them.
	if err := json.Unmarshal(data, c); err != nil {
		return fmt.Errorf("serve: config file %s: %w", path, err)
	}
	if c.WindowStr != "" {
		d, err := time.ParseDuration(c.WindowStr)
		if err != nil {
			return fmt.Errorf("serve: config file %s: window: %w", path, err)
		}
		c.Window = d
	}
	if c.DrainStr != "" {
		d, err := time.ParseDuration(c.DrainStr)
		if err != nil {
			return fmt.Errorf("serve: config file %s: drain_timeout: %w", path, err)
		}
		c.DrainTimeout = d
	}
	return nil
}

// ApplyEnv overlays cfg with SPMV_SERVE_* environment variables via
// lookup (nil: os.LookupEnv). SPMV_CACHE_DIR is shared with the library
// facade on purpose: the daemon journals where the tools do.
func (c *Config) ApplyEnv(lookup func(string) (string, bool)) error {
	if lookup == nil {
		lookup = os.LookupEnv
	}
	if v, ok := lookup("SPMV_SERVE_ADDR"); ok {
		c.Addr = v
	}
	if v, ok := lookup("SPMV_SERVE_WINDOW"); ok {
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("serve: SPMV_SERVE_WINDOW: %w", err)
		}
		c.Window = d
	}
	if v, ok := lookup("SPMV_SERVE_MAXBATCH"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("serve: SPMV_SERVE_MAXBATCH: %w", err)
		}
		c.MaxBatch = n
	}
	if v, ok := lookup("SPMV_SERVE_DRAIN"); ok {
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("serve: SPMV_SERVE_DRAIN: %w", err)
		}
		c.DrainTimeout = d
	}
	if v, ok := lookup("SPMV_SERVE_K"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("serve: SPMV_SERVE_K: %w", err)
		}
		c.K = n
	}
	if v, ok := lookup("SPMV_SERVE_SHARDS"); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("serve: SPMV_SERVE_SHARDS: %w", err)
		}
		c.Shards = n
	}
	if v, ok := lookup("SPMV_SERVE_PROBE"); ok {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("serve: SPMV_SERVE_PROBE: %w", err)
		}
		c.Probe = b
	}
	if v, ok := lookup("SPMV_CACHE_DIR"); ok {
		c.CacheDir = v
	}
	return nil
}
