package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Resolution order is flag > env > file > default. The file and env
// layers are exercised here; the flag layer is main's flag.Visit overlay
// (cmd/spmv-serve), which by construction only touches flags the user
// set.
func TestConfigResolutionOrder(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.json")
	body := `{"addr": "127.0.0.1:7001", "max_batch": 4, "window": "1ms", "cache_dir": "/tmp/file-layer"}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	if err := cfg.ApplyFile(path); err != nil {
		t.Fatal(err)
	}
	// File layer overrides defaults; untouched keys keep defaults.
	if cfg.Addr != "127.0.0.1:7001" || cfg.MaxBatch != 4 || cfg.Window != time.Millisecond {
		t.Fatalf("file layer: %+v", cfg)
	}
	if cfg.DrainTimeout != DefaultConfig().DrainTimeout {
		t.Fatalf("file layer clobbered drain timeout: %v", cfg.DrainTimeout)
	}

	// Env layer overrides the file where set, leaves the rest.
	env := map[string]string{
		"SPMV_SERVE_ADDR":   "127.0.0.1:7002",
		"SPMV_SERVE_WINDOW": "300us",
		"SPMV_SERVE_DRAIN":  "7s",
		"SPMV_SERVE_K":      "8",
		"SPMV_SERVE_PROBE":  "true",
		"SPMV_CACHE_DIR":    "/tmp/env-layer",
	}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	if err := cfg.ApplyEnv(lookup); err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != "127.0.0.1:7002" || cfg.Window != 300*time.Microsecond ||
		cfg.DrainTimeout != 7*time.Second || cfg.K != 8 || !cfg.Probe ||
		cfg.CacheDir != "/tmp/env-layer" {
		t.Fatalf("env layer: %+v", cfg)
	}
	if cfg.MaxBatch != 4 {
		t.Fatalf("env layer clobbered file max_batch: %d", cfg.MaxBatch)
	}
}

func TestConfigMissingFileIsOptional(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.ApplyFile(filepath.Join(t.TempDir(), "nope.json")); err != nil {
		t.Fatalf("missing file must be skipped: %v", err)
	}
	if cfg != DefaultConfig() {
		t.Fatalf("missing file mutated config: %+v", cfg)
	}
}

func TestConfigRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"window": "eleventy"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if err := cfg.ApplyFile(bad); err == nil {
		t.Fatal("bad duration in file accepted")
	}

	for k, v := range map[string]string{
		"SPMV_SERVE_WINDOW":   "eleventy",
		"SPMV_SERVE_MAXBATCH": "lots",
		"SPMV_SERVE_DRAIN":    "x",
		"SPMV_SERVE_K":        "k",
		"SPMV_SERVE_SHARDS":   "?",
		"SPMV_SERVE_PROBE":    "maybe",
	} {
		cfg := DefaultConfig()
		one := map[string]string{k: v}
		lookup := func(key string) (string, bool) { s, ok := one[key]; return s, ok }
		if err := cfg.ApplyEnv(lookup); err == nil {
			t.Fatalf("%s=%q accepted", k, v)
		}
	}
}
