package serve

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/exec"
	"repro/internal/failpoint"
	"repro/internal/formats"
	"repro/internal/gen"
)

// Serving-layer errors. Together with the library's typed errors
// (formats.ErrDimension and friends, context cancellation, contained
// kernel panics, injected faults) they map to HTTP statuses in exactly
// one place: StatusOf. Handlers never invent status codes.
var (
	// ErrNotFound reports a fingerprint no hosted matrix answers to.
	ErrNotFound = errors.New("serve: matrix not found")
	// ErrNotUpdatable reports a cell update against a plain-hosted matrix.
	ErrNotUpdatable = errors.New("serve: matrix is not hosted as updatable")
	// ErrShuttingDown reports a request admitted after drain began.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrBadRequest reports an unparseable or out-of-range request body.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrConflict reports an upload whose structure collides with a hosted
	// matrix but whose values differ: the structural fingerprint cannot
	// address both. Delete the incumbent first, or mutate it via the
	// updatable cell endpoints.
	ErrConflict = errors.New("serve: fingerprint collision with different values")
)

// StatusCanceled mirrors nginx's 499 "client closed request": the typed
// status a multiply cancelled mid-flight (caller gone, or drain deadline
// reached during shutdown) answers with. Not a standard HTTP status, but
// the de-facto one for exactly this case.
const StatusCanceled = 499

// StatusOf is the single table mapping an error to its HTTP status and a
// stable machine-readable code for the response envelope. Library errors
// a client caused — dimension mismatches on an Updatable host, bad k,
// invalid generator parameters — are 4xx, never a leaked 500; faults the
// client cannot fix — contained kernel panics, injected I/O faults — are
// 5xx with provenance preserved in the message.
func StatusOf(err error) (status int, code string) {
	var pe *exec.PanicError
	switch {
	case err == nil:
		return http.StatusOK, ""
	case errors.Is(err, formats.ErrDimension):
		return http.StatusBadRequest, "dimension_mismatch"
	case errors.Is(err, formats.ErrInvalidK):
		return http.StatusBadRequest, "invalid_k"
	case errors.Is(err, gen.ErrParams):
		return http.StatusBadRequest, "invalid_generator"
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, ErrNotUpdatable):
		return http.StatusConflict, "not_updatable"
	case errors.Is(err, ErrConflict):
		return http.StatusConflict, "fingerprint_conflict"
	case errors.Is(err, formats.ErrBuild):
		return http.StatusUnprocessableEntity, "unbuildable"
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable, "shutting_down"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return StatusCanceled, "canceled"
	case errors.As(err, &pe):
		return http.StatusInternalServerError, "kernel_panic"
	case errors.Is(err, failpoint.ErrInjected):
		return http.StatusInternalServerError, "injected_fault"
	case errors.Is(err, formats.ErrNilFormat):
		return http.StatusInternalServerError, "internal"
	default:
		return http.StatusInternalServerError, "internal"
	}
}
