package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/failpoint"
	"repro/internal/formats"
	"repro/internal/gen"
)

// The single error→status table, exercised with wrapped errors the way
// handlers actually produce them.
func TestStatusOfTable(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{nil, 200, ""},
		{fmt.Errorf("%w: x has 7 entries", formats.ErrDimension), 400, "dimension_mismatch"},
		{formats.ErrInvalidK, 400, "invalid_k"},
		{fmt.Errorf("%w: shape -1x10", gen.ErrParams), 400, "invalid_generator"},
		{fmt.Errorf("%w: bad json", ErrBadRequest), 400, "bad_request"},
		{fmt.Errorf("%w: 0123456789abcdef", ErrNotFound), 404, "not_found"},
		{ErrNotUpdatable, 409, "not_updatable"},
		{ErrConflict, 409, "fingerprint_conflict"},
		{fmt.Errorf("%w: ELL too wide", formats.ErrBuild), 422, "unbuildable"},
		{ErrShuttingDown, 503, "shutting_down"},
		{context.DeadlineExceeded, 504, "deadline_exceeded"},
		{context.Canceled, StatusCanceled, "canceled"},
		{fmt.Errorf("wrap: %w", context.Canceled), StatusCanceled, "canceled"},
		{&exec.PanicError{}, 500, "kernel_panic"},
		{fmt.Errorf("site: %w", failpoint.ErrInjected), 500, "injected_fault"},
		{formats.ErrNilFormat, 500, "internal"},
		{errors.New("anything else"), 500, "internal"},
	}
	for _, c := range cases {
		status, code := StatusOf(c.err)
		if status != c.status || code != c.code {
			t.Errorf("StatusOf(%v) = %d/%s, want %d/%s", c.err, status, code, c.status, c.code)
		}
	}
}
