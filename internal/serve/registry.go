package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/selector"
	"repro/internal/session"
	"repro/internal/update"
)

// UploadSpec describes one matrix to host: either an inline MatrixMarket
// body or a generator parameter set (exactly one), plus hosting options.
type UploadSpec struct {
	// Name is a human label carried in listings; optional.
	Name string `json:"name,omitempty"`
	// MatrixMarket is an inline MatrixMarket coordinate stream.
	MatrixMarket string `json:"matrixmarket,omitempty"`
	// Generator builds an artificial matrix instead (Listing 1 of the
	// paper; the same parameter set spmv-gen takes).
	Generator *gen.Params `json:"generator,omitempty"`
	// Updatable hosts the matrix behind a concurrent delta overlay
	// (spmv.NewUpdatable): the cell endpoints accept Set/Delete and
	// multiplies observe a consistent prefix of the update order.
	Updatable bool `json:"updatable,omitempty"`
	// K hints the right-hand-side regime to format selection (0: the
	// registry session's default). Coalesced batches are capped
	// independently by the server's max-batch configuration.
	K int `json:"k,omitempty"`
	// Probe lets selection micro-probe its shortlist for this matrix.
	Probe bool `json:"probe,omitempty"`
	// Tune lets selection autotune structural parameters (BCSR block
	// geometry, fused SpMM tile width, Vec-CSR wide-row cutoff); winners
	// show up in Info.Tuned and on GET /v1/info.
	Tune bool `json:"tune,omitempty"`
}

// Hosted is one matrix the registry serves, addressed by the structural
// fingerprint of its sparsity pattern (PR 4's matrix.CSR.Fingerprint).
type Hosted struct {
	fp       uint64
	valSum   uint64
	name     string
	created  time.Time
	m        *matrix.CSR
	upd      *update.Updatable // non-nil when hosted updatable
	surface  formats.Format    // what multiplies dispatch on (auto or upd)
	chosenAt string            // format chosen at build; updatables drift
	co       *Coalescer
}

// FP returns the fingerprint key clients address this matrix by
// (zero-padded lowercase hex of the structural hash).
func (h *Hosted) FP() string { return fpKey(h.fp) }

// Updatable returns the delta overlay when hosted updatable, else nil.
func (h *Hosted) Updatable() *update.Updatable { return h.upd }

// Coalescer returns the matrix's batching front end.
func (h *Hosted) Coalescer() *Coalescer { return h.co }

// Info is the wire description of a hosted matrix.
type Info struct {
	Fingerprint string         `json:"fingerprint"`
	Name        string         `json:"name,omitempty"`
	Rows        int            `json:"rows"`
	Cols        int            `json:"cols"`
	NNZ         int64          `json:"nnz"`
	Format      string         `json:"format"`
	Updatable   bool           `json:"updatable"`
	Created     time.Time      `json:"created"`
	Batching    CoalescerStats `json:"batching"`
	// Tuned reports the autotuned structural parameters of the build
	// (e.g. "bcsr.block" -> "4x4"); empty when tuning was off or nothing
	// applied to the chosen format.
	Tuned map[string]string `json:"tuned,omitempty"`
	// VecWideRowMin is the inspector-derived wide-row cutoff (0: n/a).
	VecWideRowMin int `json:"vecWideRowMin,omitempty"`
}

// Info snapshots the hosted matrix's wire description.
func (h *Hosted) Info() Info {
	info := Info{
		Fingerprint: h.FP(),
		Name:        h.name,
		Rows:        h.surface.Rows(),
		Cols:        h.surface.Cols(),
		NNZ:         h.surface.NNZ(),
		Format:      h.chosenAt,
		Updatable:   h.upd != nil,
		Created:     h.created,
		Batching:    h.co.Stats(),
	}
	if h.upd != nil {
		st := h.upd.Stats()
		info.Format = st.BaseFormat // compaction re-selects; report live
		info.NNZ = h.upd.NNZ()
	}
	if a, ok := h.surface.(*formats.Auto); ok {
		c := a.Choice()
		info.Tuned = c.Tuned
		info.VecWideRowMin = c.VecWideRowMin
	}
	return info
}

// Registry hosts matrices for the serving layer: upload/build once,
// address by fingerprint, multiply through a per-matrix coalescer. All
// methods are safe for concurrent use.
type Registry struct {
	sess     *session.Session
	base     context.Context
	window   time.Duration
	maxBatch int

	mu     sync.Mutex
	m      map[uint64]*Hosted
	closed bool
}

// NewRegistry builds a registry serving under the given session (nil: the
// process default session) and server-lifetime context. window/maxBatch
// configure every hosted matrix's coalescer.
func NewRegistry(base context.Context, sess *session.Session, window time.Duration, maxBatch int) *Registry {
	if base == nil {
		base = context.Background()
	}
	if sess == nil {
		sess = session.Default()
	}
	return &Registry{
		sess:     sess,
		base:     base,
		window:   window,
		maxBatch: maxBatch,
		m:        make(map[uint64]*Hosted),
	}
}

// Session returns the selection session the registry builds under.
func (r *Registry) Session() *session.Session { return r.sess }

// fpKey renders a fingerprint the way clients address it.
func fpKey(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// parseFP parses a client fingerprint key.
func parseFP(s string) (uint64, error) {
	var fp uint64
	if _, err := fmt.Sscanf(strings.ToLower(s), "%16x", &fp); err != nil || len(s) != 16 {
		return 0, fmt.Errorf("%w: fingerprint %q (want 16 hex digits)", ErrBadRequest, s)
	}
	return fp, nil
}

// valueSum hashes the value array (FNV-1a over the bit patterns): the
// structural fingerprint deliberately ignores values, so the registry
// needs this second hash to detect an upload that reuses a hosted
// structure with different numbers — which must conflict, not silently
// serve the incumbent's values.
func valueSum(m *matrix.CSR) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range m.Val {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= (bits >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return h
}

// Upload builds and hosts the matrix described by spec, returning the
// hosted entry and whether it was created by this call. Re-uploading an
// identical matrix (structure and values) is idempotent and returns the
// incumbent; a structural collision with different values is ErrConflict.
func (r *Registry) Upload(ctx context.Context, spec UploadSpec) (*Hosted, bool, error) {
	m, err := r.buildMatrix(spec)
	if err != nil {
		return nil, false, err
	}
	fp := m.Fingerprint()
	vs := valueSum(m)

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, false, ErrShuttingDown
	}
	if h, ok := r.m[fp]; ok {
		r.mu.Unlock()
		if h.valSum != vs {
			return nil, false, fmt.Errorf("%w: %s", ErrConflict, fpKey(fp))
		}
		return h, false, nil
	}
	r.mu.Unlock()

	// Build outside the lock: selection may probe for milliseconds and
	// must not stall unrelated lookups. A concurrent identical upload may
	// also build; the second insert loses and its build is discarded.
	h, err := r.host(ctx, spec, m, fp, vs)
	if err != nil {
		return nil, false, err
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, false, ErrShuttingDown
	}
	if prev, ok := r.m[fp]; ok {
		r.mu.Unlock()
		if prev.valSum != vs {
			return nil, false, fmt.Errorf("%w: %s", ErrConflict, fpKey(fp))
		}
		return prev, false, nil
	}
	r.m[fp] = h
	r.mu.Unlock()
	return h, true, nil
}

// buildMatrix materializes the upload's matrix from exactly one source.
func (r *Registry) buildMatrix(spec UploadSpec) (*matrix.CSR, error) {
	switch {
	case spec.MatrixMarket != "" && spec.Generator != nil:
		return nil, fmt.Errorf("%w: give matrixmarket or generator, not both", ErrBadRequest)
	case spec.MatrixMarket != "":
		m, err := matrix.ReadMatrixMarket(strings.NewReader(spec.MatrixMarket))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return m, nil
	case spec.Generator != nil:
		return gen.Generate(*spec.Generator)
	default:
		return nil, fmt.Errorf("%w: give matrixmarket or generator", ErrBadRequest)
	}
}

// host runs format selection (and the updatable wrap) for one new matrix.
func (r *Registry) host(ctx context.Context, spec UploadSpec, m *matrix.CSR, fp, vs uint64) (*Hosted, error) {
	h := &Hosted{fp: fp, valSum: vs, name: spec.Name, created: time.Now(), m: m}
	if spec.Updatable {
		u, err := r.sess.NewUpdatable(m, update.Options{K: spec.K, Probe: spec.Probe})
		if err != nil {
			return nil, err
		}
		h.upd = u
		h.surface = u
		h.chosenAt = u.Stats().BaseFormat
	} else {
		a, err := r.sess.AutoCtx(ctx, m, selector.AutoOptions{K: spec.K, Probe: spec.Probe, Tune: spec.Tune})
		if err != nil {
			return nil, err
		}
		h.surface = a
		h.chosenAt = a.Chosen()
	}
	h.co = NewCoalescer(r.base, h.surface, r.window, r.maxBatch)
	return h, nil
}

// Get finds a hosted matrix by its fingerprint key.
func (r *Registry) Get(fpStr string) (*Hosted, error) {
	fp, err := parseFP(fpStr)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	h, ok := r.m[fp]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, fpKey(fp))
	}
	return h, nil
}

// Delete unhosts a matrix. In-flight requests drain (the coalescer
// flushes and then refuses); the entry leaves the address space at once.
func (r *Registry) Delete(fpStr string) error {
	fp, err := parseFP(fpStr)
	if err != nil {
		return err
	}
	r.mu.Lock()
	h, ok := r.m[fp]
	delete(r.m, fp)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, fpKey(fp))
	}
	h.co.Close()
	return nil
}

// List snapshots every hosted matrix's description, oldest first.
func (r *Registry) List() []Info {
	r.mu.Lock()
	hs := make([]*Hosted, 0, len(r.m))
	for _, h := range r.m {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	sort.Slice(hs, func(a, b int) bool {
		if hs[a].created.Equal(hs[b].created) {
			return hs[a].fp < hs[b].fp
		}
		return hs[a].created.Before(hs[b].created)
	})
	out := make([]Info, len(hs))
	for i, h := range hs {
		out[i] = h.Info()
	}
	return out
}

// Len returns how many matrices are hosted.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// Close drains every hosted matrix and refuses further uploads. Every
// admitted request still receives its response.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	hs := make([]*Hosted, 0, len(r.m))
	for _, h := range r.m {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	for _, h := range hs {
		h.co.Close()
	}
}
