package serve

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/session"
)

func memSession(t *testing.T) *session.Session {
	t.Helper()
	s, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mmBody(t *testing.T, m *matrix.CSR) string {
	t.Helper()
	var buf bytes.Buffer
	if err := matrix.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRegistryUploadIdempotentAndConflict(t *testing.T) {
	r := NewRegistry(context.Background(), memSession(t), DefaultWindow, DefaultMaxBatch)
	defer r.Close()

	m := matrix.Random(120, 120, 0.05, 5)
	spec := UploadSpec{Name: "m1", MatrixMarket: mmBody(t, m)}
	h, created, err := r.Upload(context.Background(), spec)
	if err != nil || !created {
		t.Fatalf("first upload: created=%v err=%v", created, err)
	}

	// Bit-identical re-upload is idempotent: same incumbent, not created.
	h2, created, err := r.Upload(context.Background(), spec)
	if err != nil || created {
		t.Fatalf("re-upload: created=%v err=%v", created, err)
	}
	if h2 != h {
		t.Fatal("re-upload returned a different host")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}

	// Same structure, different values: the fingerprint cannot address
	// both — typed conflict, and the incumbent's values stay live.
	m3 := &matrix.CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx,
		Val: append([]float64(nil), m.Val...)}
	m3.Val[0] += 1.5
	_, _, err = r.Upload(context.Background(), UploadSpec{MatrixMarket: mmBody(t, m3)})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	if status, code := StatusOf(err); status != 409 || code != "fingerprint_conflict" {
		t.Fatalf("StatusOf = %d/%s, want 409/fingerprint_conflict", status, code)
	}
}

func TestRegistryGeneratorUpload(t *testing.T) {
	r := NewRegistry(context.Background(), memSession(t), DefaultWindow, DefaultMaxBatch)
	defer r.Close()

	h, created, err := r.Upload(context.Background(), UploadSpec{
		Name:      "gen",
		Generator: &gen.Params{Rows: 200, Cols: 200, AvgNNZPerRow: 6, StdNNZPerRow: 2, BWScaled: 0.5, Seed: 11},
	})
	if err != nil || !created {
		t.Fatalf("generator upload: created=%v err=%v", created, err)
	}
	info := h.Info()
	if info.Rows != 200 || info.Cols != 200 || info.NNZ == 0 || info.Format == "" {
		t.Fatalf("bad info %+v", info)
	}

	// Invalid generator params surface as the typed 400.
	_, _, err = r.Upload(context.Background(), UploadSpec{
		Generator: &gen.Params{Rows: -1, Cols: 10, AvgNNZPerRow: 2},
	})
	if !errors.Is(err, gen.ErrParams) {
		t.Fatalf("err = %v, want gen.ErrParams", err)
	}
	if status, code := StatusOf(err); status != 400 || code != "invalid_generator" {
		t.Fatalf("StatusOf = %d/%s, want 400/invalid_generator", status, code)
	}
}

func TestRegistryUploadSpecValidation(t *testing.T) {
	r := NewRegistry(context.Background(), memSession(t), DefaultWindow, DefaultMaxBatch)
	defer r.Close()

	m := matrix.Random(30, 30, 0.1, 1)
	for _, spec := range []UploadSpec{
		{}, // no source
		{MatrixMarket: mmBody(t, m), Generator: &gen.Params{Rows: 2, Cols: 2, AvgNNZPerRow: 1}},
		{MatrixMarket: "not a matrixmarket stream"},
	} {
		if _, _, err := r.Upload(context.Background(), spec); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("spec %+v: err = %v, want ErrBadRequest", spec, err)
		}
	}
}

func TestRegistryLookupDeleteNotFound(t *testing.T) {
	r := NewRegistry(context.Background(), memSession(t), DefaultWindow, DefaultMaxBatch)
	defer r.Close()

	m := matrix.Random(80, 80, 0.05, 2)
	h, _, err := r.Upload(context.Background(), UploadSpec{MatrixMarket: mmBody(t, m)})
	if err != nil {
		t.Fatal(err)
	}

	got, err := r.Get(h.FP())
	if err != nil || got != h {
		t.Fatalf("Get(%s): %v %v", h.FP(), got, err)
	}
	if _, err := r.Get("00000000deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing fp: err = %v, want ErrNotFound", err)
	}
	if _, err := r.Get("nonsense"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad fp: err = %v, want ErrBadRequest", err)
	}

	if err := r.Delete(h.FP()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(h.FP()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-delete Get: err = %v, want ErrNotFound", err)
	}
	if err := r.Delete(h.FP()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: err = %v, want ErrNotFound", err)
	}
	// The deleted host's coalescer drained: multiplies refuse.
	if _, _, err := h.co.Multiply(context.Background(), make([]float64, 80)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("deleted host multiply: err = %v, want ErrShuttingDown", err)
	}
}

// Concurrent identical uploads race build-outside-the-lock: exactly one
// wins the insert, everyone gets the same host back.
func TestRegistryConcurrentIdenticalUploads(t *testing.T) {
	r := NewRegistry(context.Background(), memSession(t), DefaultWindow, DefaultMaxBatch)
	defer r.Close()

	body := mmBody(t, matrix.Random(150, 150, 0.03, 9))
	const n = 8
	hs := make([]*Hosted, n)
	createds := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, created, err := r.Upload(context.Background(), UploadSpec{MatrixMarket: body})
			if err != nil {
				t.Errorf("upload %d: %v", i, err)
				return
			}
			hs[i], createds[i] = h, created
		}(i)
	}
	wg.Wait()

	wins := 0
	for i := 0; i < n; i++ {
		if createds[i] {
			wins++
		}
		if hs[i] != hs[0] {
			t.Fatal("concurrent uploads returned distinct hosts")
		}
	}
	if wins != 1 {
		t.Fatalf("created wins = %d, want exactly 1", wins)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryUpdatableHostServesUpdates(t *testing.T) {
	r := NewRegistry(context.Background(), memSession(t), 2*time.Millisecond, 4)
	defer r.Close()

	m := matrix.Random(100, 100, 0.05, 3)
	h, _, err := r.Upload(context.Background(), UploadSpec{MatrixMarket: mmBody(t, m), Updatable: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Updatable() == nil {
		t.Fatal("host is not updatable")
	}

	x := make([]float64, 100)
	x[7] = 1 // y = column 7
	y1, _, err := h.co.Multiply(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	h.Updatable().Set(0, 7, y1[0]+41)
	y2, _, err := h.co.Multiply(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if diff := y2[0] - y1[0]; diff < 40.9 || diff > 41.1 {
		t.Fatalf("update not visible through coalescer: y1[0]=%v y2[0]=%v", y1[0], y2[0])
	}

	// applyCells: bounds violations are the typed 400, never a panic/500.
	if _, err := applyCells(h, []CellOp{{Row: 1000, Col: 0, Val: 1}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range cell: err = %v, want ErrBadRequest", err)
	}
	n, err := applyCells(h, []CellOp{{Row: 1, Col: 1, Val: 2}, {Row: 2, Col: 2, Delete: true}})
	if err != nil || n != 2 {
		t.Fatalf("applyCells: n=%d err=%v", n, err)
	}

	// A plain host refuses cell ops with the typed conflict.
	plain, _, err := r.Upload(context.Background(), UploadSpec{
		Generator: &gen.Params{Rows: 50, Cols: 50, AvgNNZPerRow: 3, StdNNZPerRow: 1, BWScaled: 0.5, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, cellErr := applyCells(plain, []CellOp{{Row: 0, Col: 0, Val: 1}})
	if !errors.Is(cellErr, ErrNotUpdatable) {
		t.Fatalf("plain host cells: err = %v, want ErrNotUpdatable", cellErr)
	}
	if status, code := StatusOf(cellErr); status != 409 || code != "not_updatable" {
		t.Fatalf("StatusOf = %d/%s, want 409/not_updatable", status, code)
	}
}

func TestRegistryCloseRefusesUploads(t *testing.T) {
	r := NewRegistry(context.Background(), memSession(t), DefaultWindow, DefaultMaxBatch)
	m := matrix.Random(40, 40, 0.1, 6)
	if _, _, err := r.Upload(context.Background(), UploadSpec{MatrixMarket: mmBody(t, m)}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	_, _, err := r.Upload(context.Background(), UploadSpec{MatrixMarket: mmBody(t, matrix.Random(41, 41, 0.1, 6))})
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-close upload: err = %v, want ErrShuttingDown", err)
	}
}
