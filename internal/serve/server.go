// Package serve is the matrix-hosting layer behind cmd/spmv-serve: a
// registry of built matrices addressed by structural fingerprint, a
// per-matrix batch coalescer that gathers concurrent single-vector
// multiplies into fused MultiplyMany calls, and the HTTP surface tying
// them together. Every response uses one JSON envelope and every error
// maps to its HTTP status through exactly one table (StatusOf).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/session"
	"repro/internal/simd"
)

// envelope is the uniform response shape: {"ok":true,"data":...} or
// {"ok":false,"error":{"code":...,"message":...}}.
type envelope struct {
	OK    bool       `json:"ok"`
	Data  any        `json:"data,omitempty"`
	Error *wireError `json:"error,omitempty"`
}

type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// MultiplyRequest is the body of POST /v1/matrices/{fp}/multiply.
type MultiplyRequest struct {
	X []float64 `json:"x"`
}

// MultiplyResponse carries the result vector and how it was served.
type MultiplyResponse struct {
	Y     []float64 `json:"y"`
	Batch int       `json:"batch"` // size of the kernel batch that served it
}

// CellOp is one entry of POST /v1/matrices/{fp}/cells: set a value or
// delete (structurally zero) a cell of an updatable-hosted matrix.
type CellOp struct {
	Row    int     `json:"row"`
	Col    int     `json:"col"`
	Val    float64 `json:"val"`
	Delete bool    `json:"delete,omitempty"`
}

// UploadResponse answers an upload with the address to multiply against.
type UploadResponse struct {
	Info    Info `json:"info"`
	Created bool `json:"created"` // false: idempotent re-upload of an incumbent
}

// Server is the HTTP daemon: a Registry plus routing, the response
// envelope, and a drain-bounded graceful shutdown.
type Server struct {
	reg   *Registry
	cfg   Config
	http  *http.Server
	lis   net.Listener
	base  context.Context
	abort context.CancelFunc // cancels base: the drain hard deadline

	mu   sync.Mutex
	done chan struct{} // closed when Serve returns
}

// NewServer wires a server from cfg. The session is built from the
// config's CacheDir/K/Probe/Shards; pass a non-nil sess to share one
// (e.g. the default session) instead.
func NewServer(cfg Config, sess *session.Session) (*Server, error) {
	if sess == nil {
		var err error
		sess, err = session.New(session.Options{
			CacheDir: cfg.CacheDir,
			K:        cfg.K,
			Probe:    cfg.Probe,
			Shards:   cfg.Shards,
		})
		if err != nil {
			return nil, err
		}
	}
	base, abort := context.WithCancel(context.Background())
	s := &Server{
		reg:   NewRegistry(base, sess, cfg.Window, cfg.MaxBatch),
		cfg:   cfg,
		base:  base,
		abort: abort,
		done:  make(chan struct{}),
	}
	s.http = &http.Server{
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// Registry exposes the server's registry (tests drive it directly).
func (s *Server) Registry() *Registry { return s.reg }

// routes builds the method+wildcard mux (Go 1.22 patterns).
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/matrices", s.handleUpload)
	mux.HandleFunc("GET /v1/matrices", s.handleList)
	mux.HandleFunc("GET /v1/matrices/{fp}", s.handleGet)
	mux.HandleFunc("DELETE /v1/matrices/{fp}", s.handleDelete)
	mux.HandleFunc("POST /v1/matrices/{fp}/multiply", s.handleMultiply)
	mux.HandleFunc("POST /v1/matrices/{fp}/cells", s.handleCells)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	return mux
}

// Listen binds the configured address. Call before Serve to learn the
// bound address (Addr) when the config asked for ":0".
func (s *Server) Listen() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.lis = lis
	return nil
}

// Addr returns the bound listen address (after Listen).
func (s *Server) Addr() string {
	if s.lis == nil {
		return s.cfg.Addr
	}
	return s.lis.Addr().String()
}

// Serve accepts connections until Shutdown. It returns nil on graceful
// shutdown, the listener error otherwise.
func (s *Server) Serve() error {
	if s.lis == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	defer close(s.done)
	err := s.http.Serve(s.lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server gracefully: stop accepting, wait for
// in-flight handlers (window timers still fire, so gathered batches
// flush and answer), then close the registry so the last gathering
// batches flush. Past the drain timeout the base context is cancelled:
// in-flight kernels cancel and their waiters get the typed cancellation
// — every admitted request gets a response, none hang.
func (s *Server) Shutdown(ctx context.Context) error {
	drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()

	// Hard deadline: when the drain window lapses, cancel the
	// server-lifetime context so batched kernels stop cooperatively.
	stop := context.AfterFunc(drainCtx, s.abort)
	defer stop()

	err := s.http.Shutdown(drainCtx)
	s.reg.Close()
	if s.reg.sess != nil && !s.reg.sess.IsDefault() {
		s.reg.sess.Close()
	}
	return err
}

// writeEnvelope emits the uniform response shape with StatusOf's status.
func writeEnvelope(w http.ResponseWriter, data any, err error) {
	status, code := StatusOf(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	env := envelope{OK: err == nil, Data: data}
	if err != nil {
		env.Error = &wireError{Code: code, Message: err.Error()}
	}
	json.NewEncoder(w).Encode(env)
}

// decodeBody decodes a JSON request body, mapping failures to the typed
// bad request (size-capped: matrices arrive inline).
func decodeBody(r *http.Request, dst any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
	if err != nil {
		return fmt.Errorf("%w: read body: %v", ErrBadRequest, err)
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeEnvelope(w, map[string]any{"status": "ok", "matrices": s.reg.Len()}, nil)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var spec UploadSpec
	if err := decodeBody(r, &spec); err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	h, created, err := s.reg.Upload(r.Context(), spec)
	if err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(envelope{OK: true, Data: UploadResponse{Info: h.Info(), Created: created}})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeEnvelope(w, s.reg.List(), nil)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	h, err := s.reg.Get(r.PathValue("fp"))
	if err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	writeEnvelope(w, h.Info(), nil)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Delete(r.PathValue("fp")); err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	writeEnvelope(w, map[string]string{"deleted": r.PathValue("fp")}, nil)
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	h, err := s.reg.Get(r.PathValue("fp"))
	if err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	var req MultiplyRequest
	if err := decodeBody(r, &req); err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	y, batch, err := h.co.Multiply(r.Context(), req.X)
	if err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	writeEnvelope(w, MultiplyResponse{Y: y, Batch: batch}, nil)
}

func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	h, err := s.reg.Get(r.PathValue("fp"))
	if err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	var ops []CellOp
	if err := decodeBody(r, &ops); err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	applied, err := applyCells(h, ops)
	if err != nil {
		writeEnvelope(w, nil, err)
		return
	}
	writeEnvelope(w, map[string]any{"applied": applied, "nnz": h.upd.NNZ()}, nil)
}

// applyCells validates and applies cell updates against an updatable
// host. Bounds are checked up front — Updatable.Set panics on
// out-of-range indices, and a client typo must be a typed 400, not a
// contained panic's 500. Ops before the offending one stay applied (the
// response says how many).
func applyCells(h *Hosted, ops []CellOp) (int, error) {
	if h.upd == nil {
		return 0, fmt.Errorf("%w: %s", ErrNotUpdatable, h.FP())
	}
	rows, cols := h.surface.Rows(), h.surface.Cols()
	applied := 0
	for i, op := range ops {
		if op.Row < 0 || op.Row >= rows || op.Col < 0 || op.Col >= cols {
			return applied, fmt.Errorf("%w: cells[%d] (%d,%d) outside %dx%d",
				ErrBadRequest, i, op.Row, op.Col, rows, cols)
		}
		if op.Delete {
			h.upd.Delete(op.Row, op.Col)
		} else {
			h.upd.Set(op.Row, op.Col, op.Val)
		}
		applied++
	}
	return applied, nil
}

// MatrixTuning is one hosted matrix's autotuned parameters as reported
// by GET /v1/info; only tuned matrices appear.
type MatrixTuning struct {
	Fingerprint   string            `json:"fingerprint"`
	Format        string            `json:"format"`
	Params        map[string]string `json:"params,omitempty"`
	VecWideRowMin int               `json:"vecWideRowMin,omitempty"`
}

// InfoResponse is GET /v1/info: the SIMD dispatch report — which
// instruction-set tier serves each kernel on this host and under what cap
// — plus the autotuned structural parameters of the hosted matrices. It
// is the record that makes the daemon's numbers attributable to the host
// ISA.
type InfoResponse struct {
	Level    string            `json:"level"`    // dispatched tier (cap applied)
	Detected string            `json:"detected"` // hardware tier, ignoring the cap
	Width    int               `json:"width"`    // float64 lanes of the widest dispatched kernel
	Enabled  bool              `json:"enabled"`
	Features []string          `json:"features,omitempty"`
	Kernels  []simd.KernelInfo `json:"kernels"`
	Tuned    []MatrixTuning    `json:"tuned,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	resp := InfoResponse{
		Level:    simd.Level(),
		Detected: simd.DetectedLevel(),
		Width:    simd.Width(),
		Enabled:  simd.Enabled(),
		Features: simd.Features(),
		Kernels:  simd.Table(),
	}
	for _, in := range s.reg.List() {
		if len(in.Tuned) == 0 && in.VecWideRowMin == 0 {
			continue
		}
		resp.Tuned = append(resp.Tuned, MatrixTuning{
			Fingerprint:   in.Fingerprint,
			Format:        in.Format,
			Params:        in.Tuned,
			VecWideRowMin: in.VecWideRowMin,
		})
	}
	writeEnvelope(w, resp, nil)
}

// StatsResponse is GET /v1/stats: per-matrix batching plus totals.
type StatsResponse struct {
	Matrices []Info         `json:"matrices"`
	Totals   CoalescerStats `json:"totals"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.List()
	var tot CoalescerStats
	for _, in := range infos {
		tot.Requests += in.Batching.Requests
		tot.Batches += in.Batching.Batches
		tot.Coalesced += in.Batching.Coalesced
		tot.FlushFull += in.Batching.FlushFull
		tot.FlushWindow += in.Batching.FlushWindow
		tot.FlushDrain += in.Batching.FlushDrain
	}
	if tot.Batches > 0 {
		tot.MeanBatch = float64(tot.Requests) / float64(tot.Batches)
	}
	writeEnvelope(w, StatsResponse{Matrices: infos, Totals: tot}, nil)
}
