package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/session"
)

// bootServer starts a server on a loopback ephemeral port and returns its
// base URL plus a shutdown func.
func bootServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	sess, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(cfg, sess)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	return s, "http://" + s.Addr()
}

// call POSTs (or GETs when body is nil) and decodes the envelope.
func call(t *testing.T, method, url string, body any) (int, envelope) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("%s %s: undecodable envelope: %v", method, url, err)
	}
	return resp.StatusCode, env
}

// remarshal re-decodes envelope data into a typed struct.
func remarshal(t *testing.T, data any, dst any) {
	t.Helper()
	b, err := json.Marshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, dst); err != nil {
		t.Fatal(err)
	}
}

// The full happy path over real HTTP: health, upload, lookup, batched
// multiply, updatable cell set visible in the next multiply, typed 400 on
// a wrong-length vector, 404 on an unknown fingerprint, delete.
func TestServerEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 2 * time.Millisecond
	s, base := bootServer(t, cfg)
	defer s.Shutdown(context.Background())

	status, env := call(t, "GET", base+"/v1/healthz", nil)
	if status != 200 || !env.OK {
		t.Fatalf("healthz: %d %+v", status, env)
	}

	m := matrix.Random(200, 200, 0.03, 21)
	status, env = call(t, "POST", base+"/v1/matrices",
		UploadSpec{Name: "e2e", MatrixMarket: mmBody(t, m), Updatable: true})
	if status != 201 || !env.OK {
		t.Fatalf("upload: %d %+v", status, env)
	}
	var up UploadResponse
	remarshal(t, env.Data, &up)
	if !up.Created || up.Info.Fingerprint == "" || !up.Info.Updatable {
		t.Fatalf("upload response %+v", up)
	}
	fp := up.Info.Fingerprint

	// Idempotent re-upload: 200, created=false, same fingerprint.
	status, env = call(t, "POST", base+"/v1/matrices",
		UploadSpec{Name: "e2e", MatrixMarket: mmBody(t, m), Updatable: true})
	if status != 200 || !env.OK {
		t.Fatalf("re-upload: %d %+v", status, env)
	}

	x := make([]float64, 200)
	x[3] = 1
	status, env = call(t, "POST", base+"/v1/matrices/"+fp+"/multiply", MultiplyRequest{X: x})
	if status != 200 || !env.OK {
		t.Fatalf("multiply: %d %+v", status, env)
	}
	var mr MultiplyResponse
	remarshal(t, env.Data, &mr)
	if len(mr.Y) != 200 || mr.Batch < 1 {
		t.Fatalf("multiply response: len(y)=%d batch=%d", len(mr.Y), mr.Batch)
	}

	// Cell update, then the same multiply must see it.
	status, env = call(t, "POST", base+"/v1/matrices/"+fp+"/cells",
		[]CellOp{{Row: 0, Col: 3, Val: mr.Y[0] + 17}})
	if status != 200 || !env.OK {
		t.Fatalf("cells: %d %+v", status, env)
	}
	status, env = call(t, "POST", base+"/v1/matrices/"+fp+"/multiply", MultiplyRequest{X: x})
	if status != 200 {
		t.Fatalf("multiply after set: %d %+v", status, env)
	}
	var mr2 MultiplyResponse
	remarshal(t, env.Data, &mr2)
	if diff := mr2.Y[0] - mr.Y[0]; diff < 16.9 || diff > 17.1 {
		t.Fatalf("cell set not visible: before=%v after=%v", mr.Y[0], mr2.Y[0])
	}

	// Wrong-length vector: typed 400, dimension_mismatch code in the
	// envelope — never a leaked 500.
	status, env = call(t, "POST", base+"/v1/matrices/"+fp+"/multiply",
		MultiplyRequest{X: make([]float64, 7)})
	if status != 400 || env.OK || env.Error == nil || env.Error.Code != "dimension_mismatch" {
		t.Fatalf("short vector: %d %+v", status, env)
	}

	// Unknown fingerprint: typed 404.
	status, env = call(t, "POST", base+"/v1/matrices/0123456789abcdef/multiply", MultiplyRequest{X: x})
	if status != 404 || env.Error == nil || env.Error.Code != "not_found" {
		t.Fatalf("unknown fp: %d %+v", status, env)
	}

	// Malformed body: typed 400.
	req, _ := http.NewRequest("POST", base+"/v1/matrices", bytes.NewReader([]byte("{nope")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}

	// List and stats see the one matrix and its traffic.
	status, env = call(t, "GET", base+"/v1/stats", nil)
	if status != 200 {
		t.Fatalf("stats: %d", status)
	}
	var st StatsResponse
	remarshal(t, env.Data, &st)
	if len(st.Matrices) != 1 || st.Totals.Requests == 0 {
		t.Fatalf("stats: %+v", st)
	}

	status, env = call(t, "DELETE", base+"/v1/matrices/"+fp, nil)
	if status != 200 || !env.OK {
		t.Fatalf("delete: %d %+v", status, env)
	}
	status, _ = call(t, "GET", base+"/v1/matrices/"+fp, nil)
	if status != 404 {
		t.Fatalf("get after delete: %d, want 404", status)
	}
}

// Shutdown while requests are in flight: every admitted request receives
// a response — a result or a typed cancellation — and none hang. This is
// the SIGTERM drain contract the serve CI job asserts end to end.
func TestServerShutdownDrainsInFlight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 20 * time.Millisecond // wide window: shutdown hits mid-gather
	cfg.DrainTimeout = 2 * time.Second
	s, base := bootServer(t, cfg)

	m := matrix.Random(400, 400, 0.02, 31)
	_, env := call(t, "POST", base+"/v1/matrices", UploadSpec{MatrixMarket: mmBody(t, m)})
	var up UploadResponse
	remarshal(t, env.Data, &up)
	url := base + "/v1/matrices/" + up.Info.Fingerprint + "/multiply"

	const n = 6
	type result struct {
		status int
		ok     bool
	}
	results := make(chan result, n)
	var started sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		go func(i int) {
			b, _ := json.Marshal(MultiplyRequest{X: matrix.RandomVector(400, int64(i))})
			started.Done()
			resp, err := http.Post(url, "application/json", bytes.NewReader(b))
			if err != nil {
				// Connection torn down without a response would be a drain
				// violation; report it as such.
				results <- result{status: -1}
				return
			}
			defer resp.Body.Close()
			var env envelope
			ok := json.NewDecoder(resp.Body).Decode(&env) == nil
			results <- result{status: resp.StatusCode, ok: ok && (env.OK || env.Error != nil)}
		}(i)
	}
	started.Wait()
	time.Sleep(5 * time.Millisecond) // requests reach the gathering window
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	for i := 0; i < n; i++ {
		select {
		case r := <-results:
			if r.status == -1 {
				t.Fatal("request torn down without a response during drain")
			}
			if !r.ok {
				t.Fatalf("response without a valid envelope (status %d)", r.status)
			}
			switch r.status {
			case 200, StatusCanceled, 503:
			default:
				t.Fatalf("drained request answered %d, want 200/499/503", r.status)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("request hung across shutdown — drain broken")
		}
	}
}

// After Shutdown returns, the listener is closed: new connections fail
// rather than hang.
func TestServerShutdownClosesListener(t *testing.T) {
	s, base := bootServer(t, DefaultConfig())
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// The envelope encoder: ok responses carry data and no error; error
// responses carry the code/message pair and ok=false.
func TestEnvelopeShape(t *testing.T) {
	s, base := bootServer(t, DefaultConfig())
	defer s.Shutdown(context.Background())

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["ok"]; !ok {
		t.Fatal(`envelope missing "ok"`)
	}
	if _, ok := raw["error"]; ok {
		t.Fatal(`ok envelope carries "error"`)
	}

	resp2, err := http.Get(base + "/v1/matrices/zzzz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp2.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.OK || env.Error == nil || env.Error.Code != "bad_request" || env.Error.Message == "" {
		t.Fatalf("error envelope: %+v", env)
	}
}

// Sanity for the fingerprint parser corner cases.
func TestParseFP(t *testing.T) {
	for _, bad := range []string{"", "123", "0123456789abcdefg", "0123456789abcde", "xyzzyxyzzyxyzzyx"} {
		if _, err := parseFP(bad); err == nil {
			t.Fatalf("parseFP(%q) accepted", bad)
		}
	}
	fp, err := parseFP(fmt.Sprintf("%016x", uint64(0xdeadbeef)))
	if err != nil || fp != 0xdeadbeef {
		t.Fatalf("parseFP round-trip: %x %v", fp, err)
	}
}

// TestServerInfoEndpoint checks GET /v1/info reports the dispatch table
// and, once a tuned matrix is hosted, its autotuned parameters.
func TestServerInfoEndpoint(t *testing.T) {
	cfg := DefaultConfig()
	s, base := bootServer(t, cfg)
	defer s.Shutdown(context.Background())

	status, env := call(t, "GET", base+"/v1/info", nil)
	if status != 200 || !env.OK {
		t.Fatalf("info: %d %+v", status, env)
	}
	var info InfoResponse
	remarshal(t, env.Data, &info)
	if info.Level == "" || info.Detected == "" || info.Width < 1 {
		t.Fatalf("dispatch report incomplete: %+v", info)
	}
	if len(info.Kernels) == 0 {
		t.Fatalf("no kernel table in %+v", info)
	}
	for _, k := range info.Kernels {
		if k.Kernel == "" || k.Impl == "" {
			t.Fatalf("blank kernel row %+v", k)
		}
	}

	// Host a matrix large enough for the tuner and ask for tuning; its
	// parameters must show up in the report.
	m := matrix.Random(3000, 3000, 0.004, 7)
	status, env = call(t, "POST", base+"/v1/matrices",
		UploadSpec{Name: "tuned", MatrixMarket: mmBody(t, m), Tune: true})
	if status != 201 || !env.OK {
		t.Fatalf("upload: %d %+v", status, env)
	}
	_, env = call(t, "GET", base+"/v1/info", nil)
	remarshal(t, env.Data, &info)
	if len(info.Tuned) != 1 {
		t.Fatalf("tuned matrices = %+v, want one entry", info.Tuned)
	}
	tu := info.Tuned[0]
	if tu.Fingerprint == "" || tu.Format == "" {
		t.Fatalf("tuning entry incomplete: %+v", tu)
	}
	if tu.VecWideRowMin == 0 && len(tu.Params) == 0 {
		t.Fatalf("tuning entry carries nothing: %+v", tu)
	}
}
