// Package session scopes the selection subsystem's mutable state — the
// decision cache, the disk journal, the online-learned experience base,
// and the execution-context shard count — into an instantiable Session,
// replacing the package-global SetShards/SetCacheDir facade state that
// concurrent hosts (one server registry per journal, tests, multi-tenant
// embedders) would otherwise fight over.
//
// Two sessions share nothing: each owns its DecisionCache, its journal
// Store (opened directly on the session's directory, never through the
// process-wide cache.SetDir override), and its Learned experience base.
// Decisions, probe outcomes, and learned samples made under one session
// are invisible to every other — the ROADMAP-flagged "concurrent writers
// sharing one journal" fix.
//
// The process-wide default session (Default) is a view over the legacy
// globals — cache.Decisions, the selector's default experience base,
// topo.Shards() — so the spmv facade's package-level functions remain
// exactly a thin wrapper over it: code written against SetCacheDir keeps
// its behavior bit for bit.
package session

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/selector"
	"repro/internal/topo"
	"repro/internal/update"
)

// Options configures a Session.
type Options struct {
	// CacheDir is the journal directory for persistent decisions and probe
	// outcomes. Empty means memory-only: the session still has its own
	// isolated decision cache and experience base, but nothing touches
	// disk. Unlike the facade's SetCacheDir, the directory is opened
	// directly — no process-global override is installed.
	CacheDir string
	// K is the default right-hand-side regime hint for Auto builds under
	// this session (0 or 1: single-vector SpMV).
	K int
	// Probe lets Auto builds micro-probe their shortlist by default.
	Probe bool
	// Shards overrides the execution-context shard count recorded in this
	// session's decision keys (0: the live topo.Shards()). The engine's
	// pool layout itself is process-wide hardware state.
	Shards int
}

// Session is one isolated selection context. All methods are safe for
// concurrent use.
type Session struct {
	opts    Options
	dc      *cache.DecisionCache
	tunes   *cache.TuneCache
	store   *cache.Store // nil when memory-only
	learned *selector.Learned

	// def marks the default session, whose state is the legacy process
	// globals rather than private instances.
	def bool
}

// New opens a session. With a CacheDir, the journal is opened (creating
// the directory as needed), existing decisions warm-load into the
// session's cache and experience replays into its learned base — the same
// restart contract the process-wide persistence layer gives the facade,
// scoped to this session.
func New(o Options) (*Session, error) {
	s := &Session{
		opts:    o,
		dc:      cache.NewDecisionCache(),
		tunes:   cache.NewTuneCache(),
		learned: selector.NewLearned(),
	}
	if o.CacheDir != "" {
		st, err := cache.Open(o.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("session: open journal: %w", err)
		}
		s.store = st
		s.dc.AttachStore(st)
		s.tunes.AttachStore(st)
		s.learned.WarmLoad(st)
	}
	return s, nil
}

var (
	defOnce sync.Once
	defSess *Session
)

// Default returns the process-wide default session: a view over the
// legacy globals (cache.Decisions, the selector's default experience
// base, topo.Shards()). The spmv facade's package-level Auto, SetShards
// and SetCacheDir delegate here, so facade callers and Default() callers
// observe one shared state.
func Default() *Session {
	defOnce.Do(func() {
		defSess = &Session{def: true}
	})
	return defSess
}

// IsDefault reports whether this is the process-wide default session.
func (s *Session) IsDefault() bool { return s.def }

// Cache returns the session's decision cache (the process-wide
// cache.Decisions for the default session).
func (s *Session) Cache() *cache.DecisionCache {
	if s.def {
		return cache.Decisions
	}
	return s.dc
}

// Tunes returns the session's autotune cache (the process-wide
// cache.Tunes for the default session).
func (s *Session) Tunes() *cache.TuneCache {
	if s.def {
		return cache.Tunes
	}
	return s.tunes
}

// Learned returns the session's experience base.
func (s *Session) Learned() *selector.Learned {
	if s.def {
		return selector.DefaultLearned()
	}
	return s.learned
}

// Store returns the session's journal, or nil when memory-only. The
// default session reports whatever journal the facade has attached.
func (s *Session) Store() *cache.Store {
	if s.def {
		return cache.Decisions.Store()
	}
	return s.store
}

// Shards returns the execution-context shard count recorded in this
// session's decision keys: the session override when set, else the live
// engine topology.
func (s *Session) Shards() int {
	if !s.def && s.opts.Shards > 0 {
		return s.opts.Shards
	}
	return topo.Shards()
}

// autoOptions scopes o to this session: the session's cache, learned
// base and shard context replace the globals, and the session's default
// K/Probe fill unset fields. The default session passes nil overrides so
// selection runs on the legacy global path unchanged.
func (s *Session) autoOptions(o selector.AutoOptions) selector.AutoOptions {
	if o.K == 0 {
		o.K = s.opts.K
	}
	if !o.Probe {
		o.Probe = s.opts.Probe
	}
	if s.def {
		return o
	}
	o.Cache = s.dc
	o.Tunes = s.tunes
	o.Learned = s.learned
	if o.Shards == 0 {
		o.Shards = s.opts.Shards
	}
	return o
}

// Auto selects and builds a format under this session's state; see
// selector.BuildAuto.
func (s *Session) Auto(m *matrix.CSR, o selector.AutoOptions) (*formats.Auto, error) {
	return selector.BuildAuto(m, s.autoOptions(o))
}

// AutoCtx is Auto honoring a context.
func (s *Session) AutoCtx(ctx context.Context, m *matrix.CSR, o selector.AutoOptions) (*formats.Auto, error) {
	return selector.BuildAutoCtx(ctx, m, s.autoOptions(o))
}

// NewUpdatable wraps m in a concurrently updatable form whose base
// (re-)selection runs under this session's state; see update.New.
func (s *Session) NewUpdatable(m *matrix.CSR, o update.Options) (*update.Updatable, error) {
	if o.K == 0 {
		o.K = s.opts.K
	}
	if !o.Probe {
		o.Probe = s.opts.Probe
	}
	if !s.def {
		if o.Cache == nil {
			o.Cache = s.dc
		}
		if o.Learned == nil {
			o.Learned = s.learned
		}
	}
	return update.New(m, o)
}

// Close detaches and closes the session's journal, if any. The session's
// in-memory caches stay usable (memory-only) afterwards. Closing the
// default session is a no-op: its journal belongs to the facade
// (UnsetCacheDir detaches it).
func (s *Session) Close() error {
	if s.def || s.store == nil {
		return nil
	}
	st := s.store
	s.store = nil
	s.dc.AttachStore(nil)
	s.tunes.AttachStore(nil)
	return st.Close()
}
