package session

import (
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/matrix"
	"repro/internal/selector"
	"repro/internal/topo"
	"repro/internal/update"
)

func testMatrix() *matrix.CSR { return matrix.Random(300, 300, 0.02, 77) }

// Two sessions with distinct cache directories journal independently:
// a decision made under one is invisible to the other, on disk and in
// memory — the "concurrent writers sharing one journal" fix.
func TestSessionsJournalIndependently(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")

	sa, err := New(Options{CacheDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := New(Options{CacheDir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	m := testMatrix()
	if _, err := sa.Auto(m, selector.AutoOptions{}); err != nil {
		t.Fatal(err)
	}

	if sa.Cache().Len() == 0 {
		t.Fatal("session A cached no decision")
	}
	if sb.Cache().Len() != 0 {
		t.Fatalf("session A's decision leaked into session B (len %d)", sb.Cache().Len())
	}
	keysA, _ := sa.Store().Decisions()
	if len(keysA) == 0 {
		t.Fatal("session A journaled nothing")
	}
	keysB, _ := sb.Store().Decisions()
	if len(keysB) != 0 {
		t.Fatalf("session A's decision leaked into session B's journal (%d entries)", len(keysB))
	}

	// A's journal warm-loads into a fresh session on the same dir; B's
	// stays empty.
	sa.Close()
	sa2, err := New(Options{CacheDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	defer sa2.Close()
	if sa2.Cache().Len() == 0 {
		t.Fatal("restarted session on A's dir did not warm-load")
	}
}

// Sessions never touch the process-global selection state: decisions go
// to the session cache and probe outcomes feed the session's experience
// base, not the defaults.
func TestSessionIsolatedFromGlobals(t *testing.T) {
	globalBefore := cache.Decisions.Len()

	s, err := New(Options{CacheDir: filepath.Join(t.TempDir(), "s")})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, err := s.Auto(testMatrix(), selector.AutoOptions{Probe: true})
	if err != nil {
		t.Fatal(err)
	}
	ch := a.Choice()

	if got := cache.Decisions.Len(); got != globalBefore {
		t.Fatalf("session build grew the global decision cache: %d -> %d", globalBefore, got)
	}
	if ch.Probed {
		if s.Learned().Len(ch.Device, ch.K) == 0 {
			t.Fatal("probe outcome missing from the session's experience base")
		}
		if got := selector.LearnedLen(ch.Device, ch.K); got != 0 {
			t.Fatalf("probe outcome leaked into the global experience base: %d", got)
		}
	}
}

// The default session is a view over the legacy globals: the facade's
// package-level state and Default() observe one shared world, so code
// written against SetShards/SetCacheDir keeps its behavior.
func TestDefaultSessionIsTheLegacyGlobals(t *testing.T) {
	d := Default()
	if !d.IsDefault() {
		t.Fatal("Default() not marked default")
	}
	if d.Cache() != cache.Decisions {
		t.Fatal("default session cache is not the global decision cache")
	}
	if d.Learned() != selector.DefaultLearned() {
		t.Fatal("default session learned base is not the global one")
	}

	// topo.SetShards (the facade's SetShards) is visible through the
	// default session, and a scoped session override wins over it.
	prev := topo.SetShards(3)
	defer topo.SetShards(prev)
	if d.Shards() != 3 {
		t.Fatalf("default session shards = %d, want 3", d.Shards())
	}
	scoped, err := New(Options{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer scoped.Close()
	if scoped.Shards() != 5 {
		t.Fatalf("scoped session shards = %d, want 5", scoped.Shards())
	}

	// Closing the default session must not detach the facade's journal.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Cache() != cache.Decisions {
		t.Fatal("closing the default session broke the global view")
	}
}

// A session without a cache dir is memory-only but fully functional.
func TestMemoryOnlySession(t *testing.T) {
	s, err := New(Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Store() != nil {
		t.Fatal("memory-only session has a store")
	}
	a, err := s.Auto(testMatrix(), selector.AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The session's default K threads into selection context.
	if a.Choice().K != 4 {
		t.Fatalf("session default K not applied: %+v", a.Choice())
	}
	if s.Cache().Len() == 0 {
		t.Fatal("memory-only session cached nothing")
	}
}

// An updatable built under a session re-selects under that session's
// state, not the globals.
func TestSessionUpdatable(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	globalBefore := cache.Decisions.Len()
	u, err := s.NewUpdatable(testMatrix(), update.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u.Set(0, 0, 1.25)
	y := make([]float64, 300)
	x := make([]float64, 300)
	x[0] = 2
	u.SpMV(x, y)
	if y[0] < 2.49 || y[0] > 2.51 {
		t.Fatalf("y[0] = %v, want 2.5", y[0])
	}
	if got := cache.Decisions.Len(); got != globalBefore {
		t.Fatalf("session updatable grew the global decision cache: %d -> %d", globalBefore, got)
	}
}
