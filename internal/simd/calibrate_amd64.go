package simd

import "time"

// Install-time calibration of the AVX-512 rung: 512-bit execution can
// downclock the core or stall on gather ports, so each ZMM kernel must
// beat its AVX2 counterpart on a synthetic workload before it replaces
// it ("win-or-stay-at-AVX2"). The workloads mirror the kernels' real
// shapes (streaming val/idx, gathered x resident in L1/L2); timings take
// the best of calRounds rounds so scheduler noise only ever flatters the
// incumbent. Winners are computed once per process: SetLevel re-installs
// from the cached verdicts.

const (
	calElems  = 4096 // streamed elements / blocks per timed call
	calXLen   = 2048 // gathered x vector length
	calRounds = 3
	calIters  = 8
	// calMargin is the win threshold: the ZMM kernel must be at least this
	// factor of the AVX2 time (2% faster) — ties stay at AVX2.
	calMargin = 0.98
)

// calWin caches the per-kernel calibration verdicts (name -> ZMM wins).
var calWin map[string]bool

// calSink defeats dead-code elimination of the timed kernels.
var calSink float64

// calWinner reports (computing on first use) whether the named kernel's
// AVX-512 implementation beat AVX2 in calibration. Callers hold setMu or
// run during init.
func calWinner(name string) bool {
	if calWin == nil {
		calWin = calibrate()
	}
	return calWin[name]
}

func calibrate() map[string]bool {
	val := make([]float64, calElems*4) // 4x: the BCSR workloads read 4 doubles per block
	for i := range val {
		val[i] = 1.0 + float64(i%17)*0.25
	}
	const k = 8
	x := make([]float64, calXLen*k) // k-pitched so the tile kernels stay in range
	for i := range x {
		x[i] = 0.5 + float64(i%29)*0.125
	}
	idx := make([]int32, calElems*4)
	for i := range idx {
		idx[i] = int32((i * 37) % calXLen)
	}
	// Block columns for the BCSR kernels: base = bc*2*k + k + 8 must stay
	// inside x, so bound bc accordingly.
	bcBound := (calXLen*k - k - 8) / (2 * k)
	bc := make([]int32, calElems)
	for i := range bc {
		bc[i] = int32((i * 13) % bcBound)
	}

	lanes8 := calElems / 8 // strided rows for the 8-lane kernels

	cases := []struct {
		name string
		a, b func() // a: AVX2 incumbent, b: AVX-512 challenger
	}{
		{kernelNames[kDotGather],
			func() { calSink += dotGatherAVX2(&val[0], &idx[0], &x[0], calElems) },
			func() { calSink += dotGatherAVX512(&val[0], &idx[0], &x[0], calElems) }},
		{kernelNames[kAxpyGather],
			func() { axpyGatherAVX2(&val[calElems], &val[0], &idx[0], &x[0], calElems) },
			func() { axpyGatherAVX512(&val[calElems], &val[0], &idx[0], &x[0], calElems) }},
		{kernelNames[kLaneDot8],
			func() { s := laneDot8AVX2(&val[0], &idx[0], &x[0], 8, lanes8); calSink += s[0] },
			func() { s := laneDot8AVX512(&val[0], &idx[0], &x[0], 8, lanes8); calSink += s[0] }},
		{kernelNames[kBcsr2x2],
			func() { s0, s1 := bcsr2x2AVX2(&val[0], &bc[0], &x[0], calElems); calSink += s0 + s1 },
			func() { s0, s1 := bcsr2x2AVX512(&val[0], &bc[0], &x[0], calElems); calSink += s0 + s1 }},
		{kernelNames[kTile8],
			func() { d := dotBcastTile8AVX2(&val[0], &idx[0], &x[0], 1, calElems, k); calSink += d[0] },
			func() { d := dotBcastTile8AVX512(&val[0], &idx[0], &x[0], 1, calElems, k); calSink += d[0] }},
		{kernelNames[kBcsrTile8],
			func() { lo, _ := bcsr2x2Tile8AVX2(&val[0], &bc[0], &x[0], calElems, k); calSink += lo[0] },
			func() { lo, _ := bcsr2x2Tile8AVX512(&val[0], &bc[0], &x[0], calElems, k); calSink += lo[0] }},
	}

	win := make(map[string]bool, len(cases))
	for _, c := range cases {
		c.a() // warm both paths (page-in, branch predictors, ZMM power-up)
		c.b()
		win[c.name] = float64(calTime(c.b)) <= calMargin*float64(calTime(c.a))
	}
	return win
}

// calTime returns the best-of-rounds duration of calIters calls.
func calTime(f func()) time.Duration {
	best := time.Duration(1 << 62)
	for r := 0; r < calRounds; r++ {
		t0 := time.Now()
		for i := 0; i < calIters; i++ {
			f()
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}
