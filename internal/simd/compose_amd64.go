package simd

import "unsafe"

// AVX2 implementations of the 8-wide dispatch entries, composed from two
// 4-lane halves of the native AVX2 kernels. They exist so call sites can
// be tier-agnostic: a format that asks for an 8-lane group or an 8-vector
// tile gets native ZMM code on the AVX-512 tier and these bit-identical
// compositions on AVX2 (each half preserves its scalar accumulation
// order, and the halves touch disjoint lanes).

func addF64(p *float64, n int) *float64 {
	return (*float64)(unsafe.Add(unsafe.Pointer(p), uintptr(n)*8))
}

func addI32(p *int32, n int) *int32 {
	return (*int32)(unsafe.Add(unsafe.Pointer(p), uintptr(n)*4))
}

func laneDot8AVX2(val *float64, idx *int32, x *float64, stride, n int) (sums [8]float64) {
	a := laneDot4AVX2(val, idx, x, stride, n)
	b := laneDot4AVX2(addF64(val, 4), addI32(idx, 4), x, stride, n)
	copy(sums[:4], a[:])
	copy(sums[4:], b[:])
	return sums
}

func dotBcastTile8AVX2(val *float64, idx *int32, x *float64, stride, n, k int) (dst [8]float64) {
	a := dotBcastTileAVX2(val, idx, x, stride, n, k)
	b := dotBcastTileAVX2(val, idx, addF64(x, 4), stride, n, k)
	copy(dst[:4], a[:])
	copy(dst[4:], b[:])
	return dst
}

func bcsr2x2Tile8AVX2(val *float64, blkCol *int32, x *float64, n, k int) (lo, hi [8]float64) {
	loA, hiA := bcsr2x2TileAVX2(val, blkCol, x, n, k)
	loB, hiB := bcsr2x2TileAVX2(val, blkCol, addF64(x, 4), n, k)
	copy(lo[:4], loA[:])
	copy(lo[4:], loB[:])
	copy(hi[:4], hiA[:])
	copy(hi[4:], hiB[:])
	return lo, hi
}
