package simd

// Runtime CPU-feature detection via CPUID/XGETBV. golang.org/x/sys/cpu
// would do the same probing, but the repo carries no dependencies; the two
// instructions below are all the surface we need.

// cpuid executes CPUID with the given leaf/subleaf (detect_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the OS-enabled extended-state mask (requires the
// OSXSAVE CPUID bit, which the caller checks first).
func xgetbv() (eax, edx uint32)

func detect() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	hasAVX := ecx1&bitAVX != 0
	hasFMA := ecx1&bitFMA != 0
	// AVX registers are usable only when the OS saves/restores YMM state:
	// XCR0 bits 1 (SSE) and 2 (YMM). AVX-512 additionally needs bits 5-7
	// (opmask, ZMM-low, ZMM-high).
	ymmOS, zmmOS := false, false
	if ecx1&bitOSXSAVE != 0 {
		xcr0, _ := xgetbv()
		ymmOS = xcr0&0x06 == 0x06
		zmmOS = ymmOS && xcr0&0xe0 == 0xe0
	}
	var avx2, avx512f bool
	if maxID >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		avx2 = ebx7&(1<<5) != 0
		avx512f = ebx7&(1<<16) != 0
	}
	if hasAVX && ymmOS {
		features = append(features, "avx")
	}
	if hasFMA {
		features = append(features, "fma")
	}
	if avx2 && ymmOS {
		features = append(features, "avx2")
	}
	if avx512f && zmmOS {
		features = append(features, "avx512f")
	}
	if hasAVX && avx2 && hasFMA && ymmOS {
		installAVX2()
		hasAccel = true
		level = "avx2"
		width = 4
	}
}

// installAVX2 points the dispatch table at the assembly kernels. Installed
// once, before init returns; never swapped afterwards (the kill switch
// gates callers, not the table).
func installAVX2() {
	dotGather = dotGatherAVX2
	axpyGather = axpyGatherAVX2
	laneDot4 = laneDot4AVX2
	bcsr2x2 = bcsr2x2AVX2
	dotBcastTile = dotBcastTileAVX2
	bcsr2x2Tile = bcsr2x2TileAVX2
}
