package simd

// Runtime CPU-feature detection via CPUID/XGETBV. golang.org/x/sys/cpu
// would do the same probing, but the repo carries no dependencies; the two
// instructions below are all the surface we need.

// cpuid executes CPUID with the given leaf/subleaf (detect_amd64.s).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the OS-enabled extended-state mask (requires the
// OSXSAVE CPUID bit, which the caller checks first).
func xgetbv() (eax, edx uint32)

// can records the hardware+OS capability ladder filled by detect.
var can struct {
	avx2   bool
	avx512 bool
}

func detect() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	hasAVX := ecx1&bitAVX != 0
	hasFMA := ecx1&bitFMA != 0
	// AVX registers are usable only when the OS saves/restores YMM state:
	// XCR0 bits 1 (SSE) and 2 (YMM). AVX-512 additionally needs bits 5-7
	// (opmask, ZMM-low, ZMM-high).
	ymmOS, zmmOS := false, false
	if ecx1&bitOSXSAVE != 0 {
		xcr0, _ := xgetbv()
		ymmOS = xcr0&0x06 == 0x06
		zmmOS = ymmOS && xcr0&0xe0 == 0xe0
	}
	var avx2, avx512f bool
	if maxID >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		avx2 = ebx7&(1<<5) != 0
		avx512f = ebx7&(1<<16) != 0
	}
	if hasAVX && ymmOS {
		features = append(features, "avx")
	}
	if hasFMA {
		features = append(features, "fma")
	}
	if avx2 && ymmOS {
		features = append(features, "avx2")
	}
	if avx512f && zmmOS {
		features = append(features, "avx512f")
	}
	can.avx2 = hasAVX && avx2 && hasFMA && ymmOS
	can.avx512 = can.avx2 && avx512f && zmmOS
	switch {
	case can.avx512:
		detected = "avx512"
	case can.avx2:
		detected = "avx2"
	}
}

// tierRank orders the cap ladder for clamping.
func tierRank(t string) int {
	switch t {
	case "avx2":
		return 1
	case "avx512", "auto":
		return 2
	}
	return 0
}

// install (re)builds the dispatch table under a cap ("auto", "scalar",
// "avx2", "avx512"), clamped to the detected capability. The AVX-512 rung
// is per-kernel: under "auto" each ZMM kernel must beat its AVX2
// counterpart in the install-time calibration to be installed ("avx512"
// skips calibration and forces the full tier — the operator pinned it).
// Callers hold setMu (or run before init returns); the table must not be
// swapped under in-flight kernels.
func install(cap string) {
	installScalar()
	hasAccel = false
	level, width = "scalar", 1
	if !can.avx2 || tierRank(cap) < 1 {
		return
	}
	installAVX2()
	hasAccel = true
	level, width = "avx2", 4
	if !can.avx512 || tierRank(cap) < 2 {
		return
	}
	forced := cap == "avx512"
	any := false
	for _, k := range avx512Kernels() {
		if forced || calWinner(k.name) {
			k.install()
			kernelImpl[k.idx] = "avx512"
			any = true
		}
	}
	if any {
		level, width = "avx512", 8
	}
}

// installScalar resets every table entry to its portable reference.
func installScalar() {
	dotGather = dotGatherScalar
	axpyGather = axpyGatherScalar
	laneDot4 = laneDot4Scalar
	laneDot8 = laneDot8Scalar
	bcsr2x2 = bcsr2x2Scalar
	dotBcastTile = dotBcastTileScalar
	dotBcastTile8 = dotBcastTile8Scalar
	bcsr2x2Tile = bcsr2x2TileScalar
	bcsr2x2Tile8 = bcsr2x2Tile8Scalar
	for i := range kernelImpl {
		kernelImpl[i] = "scalar"
	}
}

// installAVX2 points the dispatch table at the AVX2 assembly kernels. The
// three 8-wide entries get the bit-identical two-halves compositions, so
// call sites can stay tier-agnostic.
func installAVX2() {
	dotGather = dotGatherAVX2
	axpyGather = axpyGatherAVX2
	laneDot4 = laneDot4AVX2
	laneDot8 = laneDot8AVX2
	bcsr2x2 = bcsr2x2AVX2
	dotBcastTile = dotBcastTileAVX2
	dotBcastTile8 = dotBcastTile8AVX2
	bcsr2x2Tile = bcsr2x2TileAVX2
	bcsr2x2Tile8 = bcsr2x2Tile8AVX2
	for i := range kernelImpl {
		kernelImpl[i] = "avx2"
	}
}

// avx512Candidate is one rung of the AVX-512 ladder: the kernel it
// upgrades and how to point the table at the ZMM implementation.
type avx512Candidate struct {
	idx     int
	name    string
	install func()
}

// avx512Kernels lists the six kernels with native ZMM implementations.
// LaneDot4 and the 4-wide tiles have none: their data simply is not 8
// lanes wide, so they stay at AVX2 under every cap.
func avx512Kernels() []avx512Candidate {
	return []avx512Candidate{
		{kDotGather, kernelNames[kDotGather], func() { dotGather = dotGatherAVX512 }},
		{kAxpyGather, kernelNames[kAxpyGather], func() { axpyGather = axpyGatherAVX512 }},
		{kLaneDot8, kernelNames[kLaneDot8], func() { laneDot8 = laneDot8AVX512 }},
		{kBcsr2x2, kernelNames[kBcsr2x2], func() { bcsr2x2 = bcsr2x2AVX512 }},
		{kTile8, kernelNames[kTile8], func() { dotBcastTile8 = dotBcastTile8AVX512 }},
		{kBcsrTile8, kernelNames[kBcsrTile8], func() { bcsr2x2Tile8 = bcsr2x2Tile8AVX512 }},
	}
}
