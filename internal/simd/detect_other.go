//go:build !amd64

package simd

// detect is a no-op off amd64: the dispatch table keeps the portable
// scalar references and the package stays in "scalar" mode. Adding a new
// ISA (e.g. NEON) means an arch-specific detect that probes the CPU and
// installs its kernels, exactly like detect_amd64.go.
func detect() {}

// install is a no-op off amd64: there is no tier to cap, the table never
// leaves the scalar references.
func install(string) {}
