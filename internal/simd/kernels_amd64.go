package simd

// AVX2/FMA kernel entry points (kernels_amd64.s). All of them trust their
// index arguments — see the package's index-trust contract — and preserve
// the scalar accumulation order except dotGatherAVX2 (multi-accumulator
// FMA, documented ULP tolerance).

//go:noescape
func dotGatherAVX2(val *float64, idx *int32, x *float64, n int) float64

//go:noescape
func axpyGatherAVX2(y, val *float64, idx *int32, x *float64, n int)

//go:noescape
func laneDot4AVX2(val *float64, idx *int32, x *float64, stride, n int) (sums [4]float64)

//go:noescape
func bcsr2x2AVX2(val *float64, blkCol *int32, x *float64, n int) (s0, s1 float64)

//go:noescape
func dotBcastTileAVX2(val *float64, idx *int32, x *float64, stride, n, k int) (dst [4]float64)

//go:noescape
func bcsr2x2TileAVX2(val *float64, blkCol *int32, x *float64, n, k int) (lo, hi [4]float64)
