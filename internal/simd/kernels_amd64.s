#include "textflag.h"

// AVX2/FMA micro-kernels for the SpMV inner loops.
//
// Conventions:
//   - Gathers load x through sign-extended 32-bit column indices
//     (VPMOVSXDQ + VGATHERQPD). The all-ones gather mask is rebuilt with
//     VPCMPEQQ before EVERY gather — the instruction zeroes its mask.
//   - Kernels that promise bit-identity to the scalar path use separate
//     VMULPD/VADDPD (no FMA contraction) and preserve the scalar
//     accumulation order per output element.
//   - VZEROUPPER before every RET that follows YMM use (SSE/AVX
//     transition stalls otherwise).

// func dotGatherAVX2(val *float64, idx *int32, x *float64, n int) float64
//
// CSR row dot-product: sum(val[j] * x[idx[j]]). Eight partial sums in two
// YMM accumulators, FMA, pairwise reduction — reassociates vs the scalar
// sequential sum (documented ULP tolerance).
TEXT ·dotGatherAVX2(SB), NOSPLIT, $0-40
	MOVQ   val+0(FP), SI
	MOVQ   idx+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   n+24(FP), CX
	VXORPD Y0, Y0, Y0              // acc0
	VXORPD Y1, Y1, Y1              // acc1
	XORQ   AX, AX                  // j
	MOVQ   CX, BX
	ANDQ   $-8, BX                 // n &^ 7
	JZ     group4

loop8:
	VPMOVSXDQ  (DI)(AX*4), Y2      // idx[j..j+3] -> int64
	VPCMPEQQ   Y4, Y4, Y4          // gather mask (all ones)
	VXORPD     Y5, Y5, Y5
	VGATHERQPD Y4, (DX)(Y2*8), Y5  // x[idx[j..j+3]]
	VFMADD231PD (SI)(AX*8), Y5, Y0 // acc0 += val * x

	VPMOVSXDQ  16(DI)(AX*4), Y2    // idx[j+4..j+7]
	VPCMPEQQ   Y4, Y4, Y4
	VXORPD     Y6, Y6, Y6
	VGATHERQPD Y4, (DX)(Y2*8), Y6
	VFMADD231PD 32(SI)(AX*8), Y6, Y1

	ADDQ $8, AX
	CMPQ AX, BX
	JLT  loop8

group4:
	TESTQ $4, CX                   // one remaining 4-group?
	JZ    reduce
	VPMOVSXDQ  (DI)(AX*4), Y2
	VPCMPEQQ   Y4, Y4, Y4
	VXORPD     Y5, Y5, Y5
	VGATHERQPD Y4, (DX)(Y2*8), Y5
	VFMADD231PD (SI)(AX*8), Y5, Y0
	ADDQ $4, AX

reduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0        // [a0+a2, a1+a3]
	VUNPCKHPD    X0, X0, X1
	VADDSD       X1, X0, X0        // (a0+a2)+(a1+a3)

tail:
	CMPQ AX, CX
	JGE  done
	MOVLQSX (DI)(AX*4), R9
	VMOVSD  (SI)(AX*8), X2
	VFMADD231SD (DX)(R9*8), X2, X0
	ADDQ $1, AX
	JMP  tail

done:
	VZEROUPPER
	MOVSD X0, ret+32(FP)
	RET

// func axpyGatherAVX2(y, val *float64, idx *int32, x *float64, n int)
//
// ELL slab column sweep: y[j] += val[j] * x[idx[j]]. One mul-then-add per
// element in element order — bit-identical to the scalar sweep.
TEXT ·axpyGatherAVX2(SB), NOSPLIT, $0-40
	MOVQ y+0(FP), R8
	MOVQ val+8(FP), SI
	MOVQ idx+16(FP), DI
	MOVQ x+24(FP), DX
	MOVQ n+32(FP), CX
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-4, BX
	JZ   tail

loop4:
	VPMOVSXDQ  (DI)(AX*4), Y2
	VPCMPEQQ   Y4, Y4, Y4
	VXORPD     Y5, Y5, Y5
	VGATHERQPD Y4, (DX)(Y2*8), Y5
	VMULPD     (SI)(AX*8), Y5, Y5  // val * x
	VADDPD     (R8)(AX*8), Y5, Y5  // + y
	VMOVUPD    Y5, (R8)(AX*8)
	ADDQ $4, AX
	CMPQ AX, BX
	JLT  loop4

tail:
	CMPQ AX, CX
	JGE  done
	MOVLQSX (DI)(AX*4), R9
	VMOVSD  (SI)(AX*8), X2
	VMULSD  (DX)(R9*8), X2, X2
	VADDSD  (R8)(AX*8), X2, X2
	VMOVSD  X2, (R8)(AX*8)
	ADDQ $1, AX
	JMP  tail

done:
	VZEROUPPER
	RET

// func laneDot4AVX2(val *float64, idx *int32, x *float64, stride, n int) (sums [4]float64)
//
// SELL-C-sigma chunk sweep: four independent lane sums accumulated over n
// strided columns, returned by value. Each lane accumulates sequentially
// in ascending column order — bit-identical to the scalar lane loop.
TEXT ·laneDot4AVX2(SB), NOSPLIT, $0-72
	MOVQ   val+0(FP), SI
	MOVQ   idx+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   stride+24(FP), R10
	MOVQ   n+32(FP), CX
	VXORPD Y0, Y0, Y0
	MOVQ   R10, R11
	SHLQ   $3, R10                 // stride * 8 (val step, bytes)
	SHLQ   $2, R11                 // stride * 4 (idx step, bytes)
	TESTQ  CX, CX
	JZ     done

loop:
	VPMOVSXDQ  (DI), Y2
	VPCMPEQQ   Y4, Y4, Y4
	VXORPD     Y5, Y5, Y5
	VGATHERQPD Y4, (DX)(Y2*8), Y5
	VMULPD     (SI), Y5, Y5
	VADDPD     Y5, Y0, Y0
	ADDQ R10, SI
	ADDQ R11, DI
	DECQ CX
	JNZ  loop

done:
	LEAQ    sums+40(FP), R8
	VMOVUPD Y0, (R8)
	VZEROUPPER
	RET

// func bcsr2x2AVX2(val *float64, blkCol *int32, x *float64, n int) (s0, s1 float64)
//
// BCSR block-row sweep over n interior 2x2 blocks. Per block the scalar
// kernel computes s += (v_lo*x0 + v_hi*x1); VHADDPD reproduces exactly
// that pairing — bit-identical.
TEXT ·bcsr2x2AVX2(SB), NOSPLIT, $0-48
	MOVQ   val+0(FP), SI
	MOVQ   blkCol+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   n+24(FP), CX
	VXORPD X0, X0, X0              // [s0, s1]
	TESTQ  CX, CX
	JZ     done

loop:
	MOVLQSX (DI), AX               // bj
	SHLQ    $4, AX                 // bj*2 doubles = bj*16 bytes
	VMOVUPD (DX)(AX*1), X1         // [x0, x1]
	VMULPD  (SI), X1, X2           // [v0*x0, v1*x1]
	VMULPD  16(SI), X1, X3         // [v2*x0, v3*x1]
	VHADDPD X3, X2, X2             // [v0x0+v1x1, v2x0+v3x1]
	VADDPD  X2, X0, X0
	ADDQ $32, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  loop

done:
	VMOVSD    X0, s0+32(FP)
	VPERMILPD $1, X0, X0
	VMOVSD    X0, s1+40(FP)
	RET

// func dotBcastTileAVX2(val *float64, idx *int32, x *float64, stride, n, k int) (dst [4]float64)
//
// Fused SpMM register tile: dst[t] = sum of val[j*stride] * X[idx[j*stride], t]
// for the 4 tile vectors t, returned by value. x is pre-offset to the tile
// start. Each lane is an independent sequential mul-then-add sum —
// bit-identical.
TEXT ·dotBcastTileAVX2(SB), NOSPLIT, $0-80
	MOVQ   val+0(FP), SI
	MOVQ   idx+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   stride+24(FP), R10
	MOVQ   n+32(FP), CX
	MOVQ   k+40(FP), R12
	SHLQ   $3, R12                 // k * 8: X row pitch in bytes
	MOVQ   R10, R11
	SHLQ   $3, R10                 // stride * 8
	SHLQ   $2, R11                 // stride * 4
	VXORPD Y0, Y0, Y0
	TESTQ  CX, CX
	JZ     done

loop:
	MOVLQSX      (DI), AX
	IMULQ        R12, AX           // idx * k * 8
	VMOVUPD      (DX)(AX*1), Y1    // X tile row
	VBROADCASTSD (SI), Y2
	VMULPD       Y1, Y2, Y2
	VADDPD       Y2, Y0, Y0
	ADDQ R10, SI
	ADDQ R11, DI
	DECQ CX
	JNZ  loop

done:
	LEAQ    dst+48(FP), R8
	VMOVUPD Y0, (R8)
	VZEROUPPER
	RET

// func bcsr2x2TileAVX2(val *float64, blkCol *int32, x *float64, n, k int) (lo, hi [4]float64)
//
// BCSR SpMM tile: 2 block rows x 4 tile vectors over n interior 2x2
// blocks, returned by value (lo is block row 0's tile, hi row 1's). x is
// pre-offset to the tile start. Per lane: d += (v_lo*x0 + v_hi*x1) —
// bit-identical.
TEXT ·bcsr2x2TileAVX2(SB), NOSPLIT, $0-104
	MOVQ   val+0(FP), SI
	MOVQ   blkCol+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   n+24(FP), CX
	MOVQ   k+32(FP), R12
	SHLQ   $3, R12                 // k * 8: X row pitch in bytes
	VXORPD Y0, Y0, Y0              // row 0 tile
	VXORPD Y1, Y1, Y1              // row 1 tile
	TESTQ  CX, CX
	JZ     done

loop:
	MOVLQSX (DI), AX
	ADDQ    AX, AX                 // bj*2
	IMULQ   R12, AX                // byte offset of X row bj*2
	VMOVUPD (DX)(AX*1), Y2         // x0 tile
	ADDQ    R12, AX
	VMOVUPD (DX)(AX*1), Y3         // x1 tile

	VBROADCASTSD (SI), Y4          // v0
	VBROADCASTSD 8(SI), Y5         // v1
	VMULPD       Y2, Y4, Y4
	VMULPD       Y3, Y5, Y5
	VADDPD       Y5, Y4, Y4        // v0*x0 + v1*x1
	VADDPD       Y4, Y0, Y0

	VBROADCASTSD 16(SI), Y4        // v2
	VBROADCASTSD 24(SI), Y5        // v3
	VMULPD       Y2, Y4, Y4
	VMULPD       Y3, Y5, Y5
	VADDPD       Y5, Y4, Y4
	VADDPD       Y4, Y1, Y1

	ADDQ $32, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  loop

done:
	LEAQ    lo+40(FP), R8
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, 32(R8)
	VZEROUPPER
	RET
